// etsqp_cli — interactive SQL shell over the sharded serving core.
//
//   etsqp_cli --demo demo.tsfile     generate a demo TsFile (Table II data)
//   etsqp_cli <file.tsfile>          open a TsFile and run SQL on it
//
// Inside the shell:
//   .series              list series (with their owning shard)
//   .stats               execution counters of the last query (per-stage
//                        breakdown when .profile is on)
//   .profile [on|off]    collect per-stage ExecStats for every query
//   .mode simd|scalar    switch the engine (IoTDB-SIMD vs IoTDB)
//   .threads N           worker threads
//   .shards N            reshard the database to N shards
//   .tenant <name>       run subsequent queries as this tenant
//   .tenants             per-tenant admission counters
//   .cache               result-cache counters
//   .cache budget <B>    set the result-cache byte budget (0 = off)
//   .cache clear         drop every cached result
//   .pool                process-wide executor pool counters (workers,
//                        tasks, steals, parks)
//   .ingest <wal.log>    enable streaming ingest: open + replay the WAL at
//                        that path (per shard), attach it, seal pages in
//                        the background
//   .ingest              ingest/WAL/seal counters
//   .checkpoint <file>   flush + save per-shard TsFiles + truncate the WAL
//   .calibrate <file>    load (or measure + save) the per-shard
//                        scheduler-registry cost calibration caches
//   .compact [shard]     one synchronous compaction pass (all shards, or
//                        just one): adaptive per-page re-encoding, page
//                        merging, tombstone/TTL drop, out-of-order
//                        reconciliation. Enables compaction on first use.
//   .compaction          cumulative compaction counters
//   .delete <series> <t0> <t1>   tombstone [t0, t1]: masked at query time,
//                        dropped at the next compaction pass
//   .ttl <series> <ns>   retention TTL in nanoseconds (0 = off); points
//                        older than last_time - ns are masked
//   SELECT ...;          any Table III dialect statement
//   EXPLAIN [ANALYZE] SELECT ...;   show the compiled Pipe plan (ANALYZE
//                        appends the serving-layer block: shard, cache,
//                        admission)
//   .quit

#include <cstdio>
#include <cstring>
#include <string>

#include "db/database.h"
#include "db/iotdb_lite.h"
#include "exec/explain.h"
#include "exec/scheduler_registry.h"
#include "exec/thread_pool.h"
#include "workload/generators.h"

namespace {

using namespace etsqp;

int MakeDemo(const char* path) {
  db::IotDbLite dbi;
  for (const workload::Dataset& ds : workload::MakeAllDatasets(0.02)) {
    storage::SeriesStore::SeriesOptions opt;
    auto names = workload::LoadDataset(ds, opt, dbi.store());
    if (!names.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   names.status().ToString().c_str());
      return 1;
    }
  }
  Status st = dbi.Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s — try: etsqp_cli %s\n", path, path);
  return 0;
}

void PrintResult(const exec::QueryResult& qr, size_t max_rows = 20) {
  for (const std::string& name : qr.column_names) {
    std::printf("%-20s", name.c_str());
  }
  std::printf("\n");
  size_t rows = qr.num_rows();
  for (size_t r = 0; r < std::min(rows, max_rows); ++r) {
    for (const auto& col : qr.columns) {
      std::printf("%-20.6g", col[r]);
    }
    std::printf("\n");
  }
  if (rows > max_rows) {
    std::printf("... (%zu rows total)\n", rows);
  } else {
    std::printf("(%zu rows)\n", rows);
  }
}

/// `.cmd arg` -> "arg" (empty when absent).
std::string ArgOf(const std::string& cmd, size_t prefix_len) {
  std::string arg = cmd.size() > prefix_len ? cmd.substr(prefix_len) : "";
  while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
  return arg;
}

void PrintCompactionStats(const metrics::CompactionStats& cs) {
  double win = cs.bytes_in > 0
                   ? (1.0 - static_cast<double>(cs.bytes_out) /
                                static_cast<double>(cs.bytes_in)) *
                         100.0
                   : 0.0;
  std::printf(
      "compaction: runs=%llu series=%llu pages %llu->%llu (reencoded=%llu)\n"
      "            bytes %llu->%llu (%.1f%% smaller) dropped=%llu "
      "tombstones=%llu\n"
      "            ooo_merged=%llu aborted=%llu time=%.3f ms\n",
      static_cast<unsigned long long>(cs.runs),
      static_cast<unsigned long long>(cs.series_compacted),
      static_cast<unsigned long long>(cs.pages_in),
      static_cast<unsigned long long>(cs.pages_out),
      static_cast<unsigned long long>(cs.pages_reencoded),
      static_cast<unsigned long long>(cs.bytes_in),
      static_cast<unsigned long long>(cs.bytes_out), win,
      static_cast<unsigned long long>(cs.deleted_points_dropped),
      static_cast<unsigned long long>(cs.tombstones_resolved),
      static_cast<unsigned long long>(cs.ooo_points_merged),
      static_cast<unsigned long long>(cs.installs_aborted),
      static_cast<double>(cs.nanos) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    return MakeDemo(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <file.tsfile>\n"
                 "       %s --demo <file.tsfile>\n",
                 argv[0], argv[0]);
    return 2;
  }

  db::Database::Options options;
  options.mode = db::Database::Mode::kSimd;
  options.threads = 2;
  options.shards = 1;
  options.cache_budget_bytes = 16 << 20;  // interactive default: cache on
  db::Database dbx(options);
  Status st = dbx.Load(argv[1]);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  size_t series_count = 0;
  for (int k = 0; k < dbx.num_shards(); ++k) {
    series_count += dbx.shard_store(k)->SeriesNames().size();
  }
  std::printf("opened %s (%zu series, %d shard%s). Type .series, SQL, or "
              ".quit\n",
              argv[1], series_count, dbx.num_shards(),
              dbx.num_shards() == 1 ? "" : "s");

  std::string tenant = "default";
  bool compaction_enabled = false;
  exec::QueryStats last_stats;
  char line[1024];
  while (std::printf("etsqp[%s]> ", tenant.c_str()), std::fflush(stdout),
         std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string cmd(line);
    while (!cmd.empty() && (cmd.back() == '\n' || cmd.back() == ' ')) {
      cmd.pop_back();
    }
    if (cmd.empty()) continue;
    if (cmd == ".quit" || cmd == ".exit") break;
    if (cmd == ".series") {
      for (int k = 0; k < dbx.num_shards(); ++k) {
        const storage::SeriesStore& store = *dbx.shard_store(k);
        for (const std::string& name : store.SeriesNames()) {
          auto s = store.GetSeries(name);
          std::printf("  %-30s shard %-3d %10llu points %10llu bytes\n",
                      name.c_str(), k,
                      static_cast<unsigned long long>(
                          s.value()->total_points),
                      static_cast<unsigned long long>(
                          store.EncodedBytes(name)));
        }
      }
      continue;
    }
    if (cmd == ".stats") {
      std::fputs(exec::RenderStats(last_stats).c_str(), stdout);
      metrics::CompactionStats cs = dbx.compaction_stats();
      if (!cs.empty()) PrintCompactionStats(cs);
      continue;
    }
    if (cmd == ".pool") {
      exec::ThreadPool& pool = exec::ThreadPool::Global();
      metrics::PoolStats ps = pool.stats();
      std::printf(
          "pool: workers=%d (started %llu total) tasks=%llu steals=%llu "
          "parks=%llu parked=%.3f ms\n",
          pool.workers_running(),
          static_cast<unsigned long long>(pool.threads_started()),
          static_cast<unsigned long long>(ps.tasks),
          static_cast<unsigned long long>(ps.steals),
          static_cast<unsigned long long>(ps.parks),
          static_cast<double>(ps.park_nanos) / 1e6);
      continue;
    }
    if (cmd.rfind(".ingest", 0) == 0) {
      std::string arg = ArgOf(cmd, 7);
      if (!arg.empty()) {
        db::Database::IngestConfig cfg;
        cfg.wal_path = arg;
        cfg.background_seal = true;
        Status ist = dbx.EnableIngest(cfg);
        if (!ist.ok()) {
          std::printf("error: %s\n", ist.ToString().c_str());
          continue;
        }
        const storage::Wal::ReplayStats& rec = dbx.last_recovery();
        std::printf(
            "ingest on: WAL %s x%d shard%s (recovered %llu records / %llu "
            "points, dropped %llu), background sealing enabled\n",
            arg.c_str(), dbx.num_shards(), dbx.num_shards() == 1 ? "" : "s",
            static_cast<unsigned long long>(rec.records_applied),
            static_cast<unsigned long long>(rec.points_applied),
            static_cast<unsigned long long>(rec.records_dropped));
        continue;
      }
      metrics::IngestStats is = dbx.ingest_stats();
      std::printf(
          "ingest: points=%llu batches=%llu rejected=%llu tail=%llu\n"
          "ooo:    accepted=%llu pending=%llu  deletes: ranges=%llu\n"
          "seal:   pages=%llu background=%llu time=%.3f ms\n"
          "wal:    records=%llu bytes=%llu fsyncs=%llu sync=%.3f ms\n"
          "recovery: records=%llu points=%llu dropped=%llu\n",
          static_cast<unsigned long long>(is.points_appended),
          static_cast<unsigned long long>(is.append_batches),
          static_cast<unsigned long long>(is.rejected_batches),
          static_cast<unsigned long long>(is.tail_points),
          static_cast<unsigned long long>(is.ooo_points),
          static_cast<unsigned long long>(is.ooo_pending),
          static_cast<unsigned long long>(is.delete_ranges),
          static_cast<unsigned long long>(is.pages_sealed),
          static_cast<unsigned long long>(is.background_seals),
          static_cast<double>(is.seal_nanos) / 1e6,
          static_cast<unsigned long long>(is.wal_records),
          static_cast<unsigned long long>(is.wal_bytes),
          static_cast<unsigned long long>(is.wal_fsyncs),
          static_cast<double>(is.wal_sync_nanos) / 1e6,
          static_cast<unsigned long long>(is.recovered_records),
          static_cast<unsigned long long>(is.recovered_points),
          static_cast<unsigned long long>(is.dropped_wal_records));
      continue;
    }
    if (cmd.rfind(".checkpoint", 0) == 0) {
      std::string arg = ArgOf(cmd, 11);
      if (arg.empty()) {
        std::printf("usage: .checkpoint <file.tsfile>\n");
        continue;
      }
      Status cst = dbx.Checkpoint(arg);
      std::printf("%s\n", cst.ok() ? ("checkpointed to " + arg).c_str()
                                   : cst.ToString().c_str());
      continue;
    }
    if (cmd.rfind(".calibrate", 0) == 0) {
      std::string arg = ArgOf(cmd, 10);
      if (arg.empty()) {
        std::printf("usage: .calibrate <file.calib>\n");
        continue;
      }
      Status cst = dbx.Calibrate(arg);
      if (cst.ok()) {
        std::printf(
            "calibration attached: %s x%d shard%s (%zu measured costs)\n",
            arg.c_str(), dbx.num_shards(), dbx.num_shards() == 1 ? "" : "s",
            dbx.calibration() ? dbx.calibration()->size() : 0);
      } else {
        std::printf("error: %s\n", cst.ToString().c_str());
      }
      continue;
    }
    if (cmd == ".compaction") {
      PrintCompactionStats(dbx.compaction_stats());
      continue;
    }
    if (cmd.rfind(".compact", 0) == 0) {
      std::string arg = ArgOf(cmd, 8);
      int shard = arg.empty() ? -1 : std::atoi(arg.c_str());
      if (!compaction_enabled) {
        Status est = dbx.EnableCompaction();
        if (!est.ok()) {
          std::printf("error: %s\n", est.ToString().c_str());
          continue;
        }
        compaction_enabled = true;
      }
      metrics::CompactionStats before = dbx.compaction_stats();
      Status pst = dbx.Compact(shard);
      if (!pst.ok()) {
        std::printf("error: %s\n", pst.ToString().c_str());
        continue;
      }
      metrics::CompactionStats after = dbx.compaction_stats();
      std::printf(
          "compacted %s: %llu series, pages %llu->%llu, bytes %llu->%llu\n",
          shard < 0 ? "all shards" : ("shard " + arg).c_str(),
          static_cast<unsigned long long>(after.series_compacted -
                                          before.series_compacted),
          static_cast<unsigned long long>(after.pages_in - before.pages_in),
          static_cast<unsigned long long>(after.pages_out - before.pages_out),
          static_cast<unsigned long long>(after.bytes_in - before.bytes_in),
          static_cast<unsigned long long>(after.bytes_out - before.bytes_out));
      continue;
    }
    if (cmd.rfind(".delete", 0) == 0) {
      std::string arg = ArgOf(cmd, 7);
      char name[512];
      long long t0 = 0;
      long long t1 = 0;
      if (std::sscanf(arg.c_str(), "%511s %lld %lld", name, &t0, &t1) != 3) {
        std::printf("usage: .delete <series> <t0> <t1>\n");
        continue;
      }
      Status dst = dbx.DeleteRange(name, t0, t1);
      std::printf("%s\n", dst.ok() ? "deleted (masked until next .compact)"
                                   : dst.ToString().c_str());
      continue;
    }
    if (cmd.rfind(".ttl", 0) == 0) {
      std::string arg = ArgOf(cmd, 4);
      char name[512];
      long long ns = 0;
      if (std::sscanf(arg.c_str(), "%511s %lld", name, &ns) != 2) {
        std::printf("usage: .ttl <series> <nanos>  (0 disables)\n");
        continue;
      }
      Status tst = dbx.SetTtl(name, ns);
      std::printf("%s\n", tst.ok() ? "ttl set" : tst.ToString().c_str());
      continue;
    }
    if (cmd.rfind(".profile", 0) == 0) {
      bool on = cmd.find("off") == std::string::npos;
      dbx.SetCollectStats(on);
      std::printf("profile: %s\n", on ? "on" : "off");
      continue;
    }
    if (cmd.rfind(".mode", 0) == 0) {
      db::Database::Mode mode = cmd.find("scalar") != std::string::npos
                                    ? db::Database::Mode::kScalar
                                    : db::Database::Mode::kSimd;
      dbx.SetMode(mode);
      std::printf("engine: %s\n", mode == db::Database::Mode::kSimd
                                      ? "IoTDB-SIMD"
                                      : "IoTDB");
      continue;
    }
    if (cmd.rfind(".threads", 0) == 0) {
      dbx.SetThreads(std::max(1, std::atoi(cmd.c_str() + 8)));
      std::printf("threads: %d\n", dbx.threads());
      continue;
    }
    if (cmd.rfind(".shards", 0) == 0) {
      int n = std::atoi(cmd.c_str() + 7);
      if (n < 1) {
        std::printf("usage: .shards N  (N >= 1)\n");
        continue;
      }
      Status rst = dbx.Reshard(n);
      if (rst.ok()) {
        std::printf("resharded to %d shard%s\n", dbx.num_shards(),
                    dbx.num_shards() == 1 ? "" : "s");
      } else {
        std::printf("error: %s\n", rst.ToString().c_str());
      }
      continue;
    }
    if (cmd == ".tenants") {
      for (const auto& [name, ts] : dbx.tenant_stats()) {
        std::printf(
            "  %-16s admitted=%llu rejected(queue=%llu, memory=%llu) "
            "waited=%.3f ms active=%d queued=%d\n",
            name.c_str(), static_cast<unsigned long long>(ts.admitted),
            static_cast<unsigned long long>(ts.rejected_queue),
            static_cast<unsigned long long>(ts.rejected_memory),
            static_cast<double>(ts.wait_nanos) / 1e6, ts.active, ts.queued);
      }
      continue;
    }
    if (cmd.rfind(".tenant", 0) == 0) {
      std::string arg = ArgOf(cmd, 7);
      if (arg.empty()) {
        std::printf("tenant: %s\n", tenant.c_str());
        continue;
      }
      tenant = arg;
      std::printf("tenant: %s\n", tenant.c_str());
      continue;
    }
    if (cmd.rfind(".cache", 0) == 0) {
      std::string arg = ArgOf(cmd, 6);
      if (arg == "clear") {
        dbx.ClearCache();
        std::printf("cache cleared\n");
        continue;
      }
      if (arg.rfind("budget", 0) == 0) {
        dbx.SetCacheBudget(static_cast<size_t>(
            std::strtoull(ArgOf(arg, 6).c_str(), nullptr, 10)));
      } else if (!arg.empty()) {
        std::printf("usage: .cache | .cache budget <bytes> | .cache clear\n");
        continue;
      }
      db::ResultCache::Stats cs = dbx.cache_stats();
      std::printf(
          "cache: hits=%llu misses=%llu evictions=%llu entries=%llu "
          "bytes=%llu/%llu%s\n",
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.evictions),
          static_cast<unsigned long long>(cs.entries),
          static_cast<unsigned long long>(cs.bytes),
          static_cast<unsigned long long>(cs.budget_bytes),
          cs.budget_bytes == 0 ? " (off)" : "");
      continue;
    }
    auto result = dbx.Query(tenant, cmd);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result.value().explain_text.empty()) {
      std::fputs(result.value().explain_text.c_str(), stdout);
    } else {
      PrintResult(result.value());
    }
    last_stats = result.value().stats;
  }
  return 0;
}
