// etsqp_cli — interactive SQL shell over a TsFile.
//
//   etsqp_cli --demo demo.tsfile     generate a demo TsFile (Table II data)
//   etsqp_cli <file.tsfile>          open a TsFile and run SQL on it
//
// Inside the shell:
//   .series              list series
//   .stats               execution counters of the last query (per-stage
//                        breakdown when .profile is on)
//   .profile [on|off]    collect per-stage ExecStats for every query
//   .mode simd|scalar    switch the engine (IoTDB-SIMD vs IoTDB)
//   .threads N           worker threads
//   .pool                process-wide executor pool counters (workers,
//                        tasks, steals, parks)
//   .ingest <wal.log>    enable streaming ingest: open + replay the WAL at
//                        that path, attach it, seal pages in the background
//   .ingest              ingest/WAL/seal counters
//   .checkpoint <file>   flush + save a TsFile + truncate the WAL
//   .calibrate <file>    load (or measure + save) the scheduler-registry
//                        cost calibration cache and attach it
//   SELECT ...;          any Table III dialect statement
//   EXPLAIN [ANALYZE] SELECT ...;   show the compiled Pipe plan
//   .quit

#include <cstdio>
#include <cstring>
#include <string>

#include "db/iotdb_lite.h"
#include "exec/explain.h"
#include "exec/scheduler_registry.h"
#include "exec/thread_pool.h"
#include "workload/generators.h"

namespace {

using namespace etsqp;

int MakeDemo(const char* path) {
  db::IotDbLite dbi;
  for (const workload::Dataset& ds : workload::MakeAllDatasets(0.02)) {
    storage::SeriesStore::SeriesOptions opt;
    auto names = workload::LoadDataset(ds, opt, dbi.store());
    if (!names.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   names.status().ToString().c_str());
      return 1;
    }
  }
  Status st = dbi.Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s — try: etsqp_cli %s\n", path, path);
  return 0;
}

void PrintResult(const exec::QueryResult& qr, size_t max_rows = 20) {
  for (const std::string& name : qr.column_names) {
    std::printf("%-20s", name.c_str());
  }
  std::printf("\n");
  size_t rows = qr.num_rows();
  for (size_t r = 0; r < std::min(rows, max_rows); ++r) {
    for (const auto& col : qr.columns) {
      std::printf("%-20.6g", col[r]);
    }
    std::printf("\n");
  }
  if (rows > max_rows) {
    std::printf("... (%zu rows total)\n", rows);
  } else {
    std::printf("(%zu rows)\n", rows);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    return MakeDemo(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <file.tsfile>\n"
                 "       %s --demo <file.tsfile>\n",
                 argv[0], argv[0]);
    return 2;
  }

  db::IotDbLite::Mode mode = db::IotDbLite::Mode::kSimd;
  int threads = 2;
  db::IotDbLite dbi(mode, threads);
  Status st = dbi.Load(argv[1]);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("opened %s (%zu series). Type .series, SQL, or .quit\n",
              argv[1], dbi.store()->SeriesNames().size());

  exec::QueryStats last_stats;
  char line[1024];
  while (std::printf("etsqp> "), std::fflush(stdout),
         std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string cmd(line);
    while (!cmd.empty() && (cmd.back() == '\n' || cmd.back() == ' ')) {
      cmd.pop_back();
    }
    if (cmd.empty()) continue;
    if (cmd == ".quit" || cmd == ".exit") break;
    if (cmd == ".series") {
      for (const std::string& name : dbi.store()->SeriesNames()) {
        auto s = dbi.store()->GetSeries(name);
        std::printf("  %-30s %10llu points %10llu bytes\n", name.c_str(),
                    static_cast<unsigned long long>(
                        s.value()->total_points),
                    static_cast<unsigned long long>(
                        dbi.store()->EncodedBytes(name)));
      }
      continue;
    }
    if (cmd == ".stats") {
      std::fputs(exec::RenderStats(last_stats).c_str(), stdout);
      continue;
    }
    if (cmd == ".pool") {
      exec::ThreadPool& pool = exec::ThreadPool::Global();
      metrics::PoolStats ps = pool.stats();
      std::printf(
          "pool: workers=%d (started %llu total) tasks=%llu steals=%llu "
          "parks=%llu parked=%.3f ms\n",
          pool.workers_running(),
          static_cast<unsigned long long>(pool.threads_started()),
          static_cast<unsigned long long>(ps.tasks),
          static_cast<unsigned long long>(ps.steals),
          static_cast<unsigned long long>(ps.parks),
          static_cast<double>(ps.park_nanos) / 1e6);
      continue;
    }
    if (cmd.rfind(".ingest", 0) == 0) {
      std::string arg = cmd.size() > 7 ? cmd.substr(7) : "";
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      if (!arg.empty()) {
        db::IotDbLite::IngestConfig cfg;
        cfg.wal_path = arg;
        cfg.background_seal = true;
        Status ist = dbi.EnableIngest(cfg);
        if (!ist.ok()) {
          std::printf("error: %s\n", ist.ToString().c_str());
          continue;
        }
        const storage::Wal::ReplayStats& rec = dbi.last_recovery();
        std::printf(
            "ingest on: WAL %s (recovered %llu records / %llu points, "
            "dropped %llu), background sealing enabled\n",
            arg.c_str(),
            static_cast<unsigned long long>(rec.records_applied),
            static_cast<unsigned long long>(rec.points_applied),
            static_cast<unsigned long long>(rec.records_dropped));
        continue;
      }
      metrics::IngestStats is = dbi.ingest_stats();
      std::printf(
          "ingest: points=%llu batches=%llu rejected=%llu tail=%llu\n"
          "seal:   pages=%llu background=%llu time=%.3f ms\n"
          "wal:    records=%llu bytes=%llu fsyncs=%llu sync=%.3f ms\n"
          "recovery: records=%llu points=%llu dropped=%llu\n",
          static_cast<unsigned long long>(is.points_appended),
          static_cast<unsigned long long>(is.append_batches),
          static_cast<unsigned long long>(is.rejected_batches),
          static_cast<unsigned long long>(is.tail_points),
          static_cast<unsigned long long>(is.pages_sealed),
          static_cast<unsigned long long>(is.background_seals),
          static_cast<double>(is.seal_nanos) / 1e6,
          static_cast<unsigned long long>(is.wal_records),
          static_cast<unsigned long long>(is.wal_bytes),
          static_cast<unsigned long long>(is.wal_fsyncs),
          static_cast<double>(is.wal_sync_nanos) / 1e6,
          static_cast<unsigned long long>(is.recovered_records),
          static_cast<unsigned long long>(is.recovered_points),
          static_cast<unsigned long long>(is.dropped_wal_records));
      continue;
    }
    if (cmd.rfind(".checkpoint", 0) == 0) {
      std::string arg = cmd.size() > 11 ? cmd.substr(11) : "";
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      if (arg.empty()) {
        std::printf("usage: .checkpoint <file.tsfile>\n");
        continue;
      }
      Status cst = dbi.Checkpoint(arg);
      std::printf("%s\n", cst.ok() ? ("checkpointed to " + arg).c_str()
                                   : cst.ToString().c_str());
      continue;
    }
    if (cmd.rfind(".calibrate", 0) == 0) {
      std::string arg = cmd.size() > 10 ? cmd.substr(10) : "";
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      if (arg.empty()) {
        std::printf("usage: .calibrate <file.calib>\n");
        continue;
      }
      Status cst = dbi.Calibrate(arg);
      if (cst.ok()) {
        std::printf("calibration attached: %s (%zu measured costs)\n",
                    arg.c_str(),
                    dbi.calibration() ? dbi.calibration()->size() : 0);
      } else {
        std::printf("error: %s\n", cst.ToString().c_str());
      }
      continue;
    }
    if (cmd.rfind(".profile", 0) == 0) {
      bool on = cmd.find("off") == std::string::npos;
      dbi.SetCollectStats(on);
      std::printf("profile: %s\n", on ? "on" : "off");
      continue;
    }
    if (cmd.rfind(".mode", 0) == 0) {
      mode = cmd.find("scalar") != std::string::npos
                 ? db::IotDbLite::Mode::kScalar
                 : db::IotDbLite::Mode::kSimd;
      dbi.SetMode(mode);
      std::printf("engine: %s\n",
                  mode == db::IotDbLite::Mode::kSimd ? "IoTDB-SIMD" : "IoTDB");
      continue;
    }
    if (cmd.rfind(".threads", 0) == 0) {
      threads = std::max(1, std::atoi(cmd.c_str() + 8));
      dbi.SetThreads(threads);
      std::printf("threads: %d\n", threads);
      continue;
    }
    auto result = dbi.Query(cmd);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result.value().explain_text.empty()) {
      std::fputs(result.value().explain_text.c_str(), stdout);
    } else {
      PrintResult(result.value());
    }
    last_stats = result.value().stats;
  }
  return 0;
}
