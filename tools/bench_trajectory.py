#!/usr/bin/env python3
"""Append one benchmark run to the repo's performance trajectory.

The bench binaries export machine-readable results when ETSQP_BENCH_JSON
names a file (one JSON object per line — see bench/bench_util.h). This
script runs a bench binary with that export enabled, stamps the collected
lines with the git revision, a label, and the scale factor, and appends the
run as a single JSON line to the trajectory file (BENCH_baseline.json at
the repo root by default). Each trajectory line is one run; diffing runs
across revisions is a `python -m json.tool` + jq exercise.

Examples:
    tools/bench_trajectory.py build/bench/bench_fig12_micro --scale 0.05
    tools/bench_trajectory.py build/bench/bench_fig10_queries \
        --label pre-registry --out BENCH_baseline.json

Stdlib only: no third-party dependencies.
"""

import argparse
import datetime
import json
import os
import pathlib
import subprocess
import sys
import tempfile


def git_rev(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_bench(binary, scale, json_path, timeout):
    env = dict(os.environ)
    env["ETSQP_BENCH_JSON"] = json_path
    if scale is not None:
        env["ETSQP_BENCH_SCALE"] = str(scale)
    proc = subprocess.run([binary], env=env, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"bench exited with {proc.returncode}")
    return proc.stdout


def main():
    parser = argparse.ArgumentParser(
        description="Run a bench binary and append its JSON export to the "
                    "performance trajectory file.")
    parser.add_argument("binary", help="bench executable to run")
    parser.add_argument("--scale", type=float, default=None,
                        help="ETSQP_BENCH_SCALE for the run (default: unset)")
    parser.add_argument("--label", default="",
                        help="free-form tag stored with the run")
    parser.add_argument("--out", default=None,
                        help="trajectory file to append to "
                             "(default: <repo root>/BENCH_baseline.json)")
    parser.add_argument("--timeout", type=float, default=1800,
                        help="bench run timeout in seconds")
    args = parser.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    out_path = pathlib.Path(args.out) if args.out else (
        repo_root / "BENCH_baseline.json")

    fd, tmp_json = tempfile.mkstemp(prefix="etsqp_bench_", suffix=".jsonl")
    os.close(fd)
    try:
        run_bench(args.binary, args.scale, tmp_json, args.timeout)
        results = []
        with open(tmp_json) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    results.append(json.loads(line))
                except json.JSONDecodeError as e:
                    raise SystemExit(f"bad JSON line from bench: {e}: {line}")
    finally:
        os.unlink(tmp_json)

    if not results:
        raise SystemExit(
            "bench produced no JSON output — does it call bench::ExportJson "
            "or export its own ETSQP_BENCH_JSON lines?")

    record = {
        "bench": os.path.basename(args.binary),
        "label": args.label,
        "git_rev": git_rev(repo_root),
        "date": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "scale": args.scale,
        "results": results,
    }
    with open(out_path, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(results)} results from {record['bench']} "
          f"(rev {record['git_rev']}) to {out_path}")


if __name__ == "__main__":
    main()
