file(REMOVE_RECURSE
  "CMakeFiles/etsqp_cli.dir/etsqp_cli.cc.o"
  "CMakeFiles/etsqp_cli.dir/etsqp_cli.cc.o.d"
  "etsqp_cli"
  "etsqp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
