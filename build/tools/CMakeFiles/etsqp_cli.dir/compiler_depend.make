# Empty compiler generated dependencies file for etsqp_cli.
# This may be replaced when dependencies are built.
