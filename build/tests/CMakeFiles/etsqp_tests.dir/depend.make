# Empty dependencies file for etsqp_tests.
# This may be replaced when dependencies are built.
