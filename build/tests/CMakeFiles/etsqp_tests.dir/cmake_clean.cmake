file(REMOVE_RECURSE
  "CMakeFiles/etsqp_tests.dir/common_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/common_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/encoding_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/encoding_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/engine_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/engine_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/exec_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/exec_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/float_encoders_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/float_encoders_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/pipeline_edge_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/pipeline_edge_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/robustness_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/robustness_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/simd_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/simd_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/sql_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/sql_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/storage_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/etsqp_tests.dir/system_test.cc.o"
  "CMakeFiles/etsqp_tests.dir/system_test.cc.o.d"
  "etsqp_tests"
  "etsqp_tests.pdb"
  "etsqp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
