
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/etsqp_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/encoding_test.cc" "tests/CMakeFiles/etsqp_tests.dir/encoding_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/encoding_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/etsqp_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/etsqp_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/float_encoders_test.cc" "tests/CMakeFiles/etsqp_tests.dir/float_encoders_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/float_encoders_test.cc.o.d"
  "/root/repo/tests/pipeline_edge_test.cc" "tests/CMakeFiles/etsqp_tests.dir/pipeline_edge_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/pipeline_edge_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/etsqp_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/simd_test.cc" "tests/CMakeFiles/etsqp_tests.dir/simd_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/simd_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/etsqp_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/etsqp_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/etsqp_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/etsqp_tests.dir/system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
