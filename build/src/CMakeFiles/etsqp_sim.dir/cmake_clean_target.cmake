file(REMOVE_RECURSE
  "libetsqp_sim.a"
)
