# Empty compiler generated dependencies file for etsqp_sim.
# This may be replaced when dependencies are built.
