file(REMOVE_RECURSE
  "CMakeFiles/etsqp_sim.dir/sim/sched_sim.cc.o"
  "CMakeFiles/etsqp_sim.dir/sim/sched_sim.cc.o.d"
  "libetsqp_sim.a"
  "libetsqp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
