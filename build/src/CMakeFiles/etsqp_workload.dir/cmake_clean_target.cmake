file(REMOVE_RECURSE
  "libetsqp_workload.a"
)
