
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/etsqp_workload.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/etsqp_workload.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
