file(REMOVE_RECURSE
  "CMakeFiles/etsqp_workload.dir/workload/generators.cc.o"
  "CMakeFiles/etsqp_workload.dir/workload/generators.cc.o.d"
  "libetsqp_workload.a"
  "libetsqp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
