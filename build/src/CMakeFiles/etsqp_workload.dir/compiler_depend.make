# Empty compiler generated dependencies file for etsqp_workload.
# This may be replaced when dependencies are built.
