file(REMOVE_RECURSE
  "libetsqp_sql.a"
)
