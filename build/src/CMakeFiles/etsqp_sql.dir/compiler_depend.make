# Empty compiler generated dependencies file for etsqp_sql.
# This may be replaced when dependencies are built.
