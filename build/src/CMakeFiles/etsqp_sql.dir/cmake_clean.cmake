file(REMOVE_RECURSE
  "CMakeFiles/etsqp_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/etsqp_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/etsqp_sql.dir/sql/parser.cc.o"
  "CMakeFiles/etsqp_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/etsqp_sql.dir/sql/planner.cc.o"
  "CMakeFiles/etsqp_sql.dir/sql/planner.cc.o.d"
  "libetsqp_sql.a"
  "libetsqp_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
