file(REMOVE_RECURSE
  "CMakeFiles/etsqp_db.dir/db/block_engine.cc.o"
  "CMakeFiles/etsqp_db.dir/db/block_engine.cc.o.d"
  "CMakeFiles/etsqp_db.dir/db/iotdb_lite.cc.o"
  "CMakeFiles/etsqp_db.dir/db/iotdb_lite.cc.o.d"
  "CMakeFiles/etsqp_db.dir/db/row_engine.cc.o"
  "CMakeFiles/etsqp_db.dir/db/row_engine.cc.o.d"
  "libetsqp_db.a"
  "libetsqp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
