# Empty compiler generated dependencies file for etsqp_db.
# This may be replaced when dependencies are built.
