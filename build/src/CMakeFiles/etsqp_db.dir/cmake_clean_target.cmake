file(REMOVE_RECURSE
  "libetsqp_db.a"
)
