file(REMOVE_RECURSE
  "CMakeFiles/etsqp_exec.dir/exec/column_decoder.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/column_decoder.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/cost_model.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/cost_model.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/engine.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/engine.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/expr.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/expr.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/fusion.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/fusion.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/pipe_builder.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/pipe_builder.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/pipeline.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/pipeline.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/pruning.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/pruning.cc.o.d"
  "CMakeFiles/etsqp_exec.dir/exec/scheduler.cc.o"
  "CMakeFiles/etsqp_exec.dir/exec/scheduler.cc.o.d"
  "libetsqp_exec.a"
  "libetsqp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
