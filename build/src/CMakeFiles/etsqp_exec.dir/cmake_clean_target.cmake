file(REMOVE_RECURSE
  "libetsqp_exec.a"
)
