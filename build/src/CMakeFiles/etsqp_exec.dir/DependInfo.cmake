
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/column_decoder.cc" "src/CMakeFiles/etsqp_exec.dir/exec/column_decoder.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/column_decoder.cc.o.d"
  "/root/repo/src/exec/cost_model.cc" "src/CMakeFiles/etsqp_exec.dir/exec/cost_model.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/cost_model.cc.o.d"
  "/root/repo/src/exec/engine.cc" "src/CMakeFiles/etsqp_exec.dir/exec/engine.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/engine.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/etsqp_exec.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/fusion.cc" "src/CMakeFiles/etsqp_exec.dir/exec/fusion.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/fusion.cc.o.d"
  "/root/repo/src/exec/pipe_builder.cc" "src/CMakeFiles/etsqp_exec.dir/exec/pipe_builder.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/pipe_builder.cc.o.d"
  "/root/repo/src/exec/pipeline.cc" "src/CMakeFiles/etsqp_exec.dir/exec/pipeline.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/pipeline.cc.o.d"
  "/root/repo/src/exec/pruning.cc" "src/CMakeFiles/etsqp_exec.dir/exec/pruning.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/pruning.cc.o.d"
  "/root/repo/src/exec/scheduler.cc" "src/CMakeFiles/etsqp_exec.dir/exec/scheduler.cc.o" "gcc" "src/CMakeFiles/etsqp_exec.dir/exec/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
