# Empty compiler generated dependencies file for etsqp_exec.
# This may be replaced when dependencies are built.
