file(REMOVE_RECURSE
  "CMakeFiles/etsqp_simd.dir/simd/agg_simd.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/agg_simd.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/delta_simd.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/delta_simd.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/fib_simd.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/fib_simd.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/filter_simd.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/filter_simd.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/rle_flatten.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/rle_flatten.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/transposed_unpack.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/transposed_unpack.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/transposed_unpack_avx512.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/transposed_unpack_avx512.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/unpack.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/unpack.cc.o.d"
  "CMakeFiles/etsqp_simd.dir/simd/unpack_plan.cc.o"
  "CMakeFiles/etsqp_simd.dir/simd/unpack_plan.cc.o.d"
  "libetsqp_simd.a"
  "libetsqp_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
