file(REMOVE_RECURSE
  "libetsqp_simd.a"
)
