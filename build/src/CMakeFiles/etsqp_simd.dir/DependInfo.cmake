
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/agg_simd.cc" "src/CMakeFiles/etsqp_simd.dir/simd/agg_simd.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/agg_simd.cc.o.d"
  "/root/repo/src/simd/delta_simd.cc" "src/CMakeFiles/etsqp_simd.dir/simd/delta_simd.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/delta_simd.cc.o.d"
  "/root/repo/src/simd/fib_simd.cc" "src/CMakeFiles/etsqp_simd.dir/simd/fib_simd.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/fib_simd.cc.o.d"
  "/root/repo/src/simd/filter_simd.cc" "src/CMakeFiles/etsqp_simd.dir/simd/filter_simd.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/filter_simd.cc.o.d"
  "/root/repo/src/simd/rle_flatten.cc" "src/CMakeFiles/etsqp_simd.dir/simd/rle_flatten.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/rle_flatten.cc.o.d"
  "/root/repo/src/simd/transposed_unpack.cc" "src/CMakeFiles/etsqp_simd.dir/simd/transposed_unpack.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/transposed_unpack.cc.o.d"
  "/root/repo/src/simd/transposed_unpack_avx512.cc" "src/CMakeFiles/etsqp_simd.dir/simd/transposed_unpack_avx512.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/transposed_unpack_avx512.cc.o.d"
  "/root/repo/src/simd/unpack.cc" "src/CMakeFiles/etsqp_simd.dir/simd/unpack.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/unpack.cc.o.d"
  "/root/repo/src/simd/unpack_plan.cc" "src/CMakeFiles/etsqp_simd.dir/simd/unpack_plan.cc.o" "gcc" "src/CMakeFiles/etsqp_simd.dir/simd/unpack_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
