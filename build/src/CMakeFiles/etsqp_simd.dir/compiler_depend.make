# Empty compiler generated dependencies file for etsqp_simd.
# This may be replaced when dependencies are built.
