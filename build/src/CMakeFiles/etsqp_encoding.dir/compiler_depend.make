# Empty compiler generated dependencies file for etsqp_encoding.
# This may be replaced when dependencies are built.
