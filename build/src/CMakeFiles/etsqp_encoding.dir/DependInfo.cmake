
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/bitpack.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/bitpack.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/bitpack.cc.o.d"
  "/root/repo/src/encoding/chimp.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/chimp.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/chimp.cc.o.d"
  "/root/repo/src/encoding/delta_rle.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/delta_rle.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/delta_rle.cc.o.d"
  "/root/repo/src/encoding/elf.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/elf.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/elf.cc.o.d"
  "/root/repo/src/encoding/fastlanes.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/fastlanes.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/fastlanes.cc.o.d"
  "/root/repo/src/encoding/fibonacci.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/fibonacci.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/fibonacci.cc.o.d"
  "/root/repo/src/encoding/generic_compress.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/generic_compress.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/generic_compress.cc.o.d"
  "/root/repo/src/encoding/gorilla.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/gorilla.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/gorilla.cc.o.d"
  "/root/repo/src/encoding/rlbe.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/rlbe.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/rlbe.cc.o.d"
  "/root/repo/src/encoding/rle.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/rle.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/rle.cc.o.d"
  "/root/repo/src/encoding/sprintz.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/sprintz.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/sprintz.cc.o.d"
  "/root/repo/src/encoding/ts2diff.cc" "src/CMakeFiles/etsqp_encoding.dir/encoding/ts2diff.cc.o" "gcc" "src/CMakeFiles/etsqp_encoding.dir/encoding/ts2diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
