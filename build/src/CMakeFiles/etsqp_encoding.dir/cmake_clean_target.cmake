file(REMOVE_RECURSE
  "libetsqp_encoding.a"
)
