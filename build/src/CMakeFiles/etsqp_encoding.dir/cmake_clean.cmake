file(REMOVE_RECURSE
  "CMakeFiles/etsqp_encoding.dir/encoding/bitpack.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/bitpack.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/chimp.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/chimp.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/delta_rle.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/delta_rle.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/elf.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/elf.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/fastlanes.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/fastlanes.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/fibonacci.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/fibonacci.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/generic_compress.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/generic_compress.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/gorilla.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/gorilla.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/rlbe.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/rlbe.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/rle.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/rle.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/sprintz.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/sprintz.cc.o.d"
  "CMakeFiles/etsqp_encoding.dir/encoding/ts2diff.cc.o"
  "CMakeFiles/etsqp_encoding.dir/encoding/ts2diff.cc.o.d"
  "libetsqp_encoding.a"
  "libetsqp_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
