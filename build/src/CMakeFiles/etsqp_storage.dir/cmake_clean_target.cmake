file(REMOVE_RECURSE
  "libetsqp_storage.a"
)
