# Empty compiler generated dependencies file for etsqp_storage.
# This may be replaced when dependencies are built.
