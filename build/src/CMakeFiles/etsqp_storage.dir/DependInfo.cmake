
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/etsqp_storage.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/etsqp_storage.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/etsqp_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/etsqp_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/page_builder.cc" "src/CMakeFiles/etsqp_storage.dir/storage/page_builder.cc.o" "gcc" "src/CMakeFiles/etsqp_storage.dir/storage/page_builder.cc.o.d"
  "/root/repo/src/storage/series_store.cc" "src/CMakeFiles/etsqp_storage.dir/storage/series_store.cc.o" "gcc" "src/CMakeFiles/etsqp_storage.dir/storage/series_store.cc.o.d"
  "/root/repo/src/storage/tsfile.cc" "src/CMakeFiles/etsqp_storage.dir/storage/tsfile.cc.o" "gcc" "src/CMakeFiles/etsqp_storage.dir/storage/tsfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
