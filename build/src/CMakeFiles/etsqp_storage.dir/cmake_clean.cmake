file(REMOVE_RECURSE
  "CMakeFiles/etsqp_storage.dir/storage/buffer_manager.cc.o"
  "CMakeFiles/etsqp_storage.dir/storage/buffer_manager.cc.o.d"
  "CMakeFiles/etsqp_storage.dir/storage/page.cc.o"
  "CMakeFiles/etsqp_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/etsqp_storage.dir/storage/page_builder.cc.o"
  "CMakeFiles/etsqp_storage.dir/storage/page_builder.cc.o.d"
  "CMakeFiles/etsqp_storage.dir/storage/series_store.cc.o"
  "CMakeFiles/etsqp_storage.dir/storage/series_store.cc.o.d"
  "CMakeFiles/etsqp_storage.dir/storage/tsfile.cc.o"
  "CMakeFiles/etsqp_storage.dir/storage/tsfile.cc.o.d"
  "libetsqp_storage.a"
  "libetsqp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
