
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/aligned_buffer.cc" "src/CMakeFiles/etsqp_common.dir/common/aligned_buffer.cc.o" "gcc" "src/CMakeFiles/etsqp_common.dir/common/aligned_buffer.cc.o.d"
  "/root/repo/src/common/bitstream.cc" "src/CMakeFiles/etsqp_common.dir/common/bitstream.cc.o" "gcc" "src/CMakeFiles/etsqp_common.dir/common/bitstream.cc.o.d"
  "/root/repo/src/common/cpu.cc" "src/CMakeFiles/etsqp_common.dir/common/cpu.cc.o" "gcc" "src/CMakeFiles/etsqp_common.dir/common/cpu.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/etsqp_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/etsqp_common.dir/common/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
