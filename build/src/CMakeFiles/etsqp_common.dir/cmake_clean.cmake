file(REMOVE_RECURSE
  "CMakeFiles/etsqp_common.dir/common/aligned_buffer.cc.o"
  "CMakeFiles/etsqp_common.dir/common/aligned_buffer.cc.o.d"
  "CMakeFiles/etsqp_common.dir/common/bitstream.cc.o"
  "CMakeFiles/etsqp_common.dir/common/bitstream.cc.o.d"
  "CMakeFiles/etsqp_common.dir/common/cpu.cc.o"
  "CMakeFiles/etsqp_common.dir/common/cpu.cc.o.d"
  "CMakeFiles/etsqp_common.dir/common/status.cc.o"
  "CMakeFiles/etsqp_common.dir/common/status.cc.o.d"
  "libetsqp_common.a"
  "libetsqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
