# Empty dependencies file for etsqp_common.
# This may be replaced when dependencies are built.
