file(REMOVE_RECURSE
  "libetsqp_common.a"
)
