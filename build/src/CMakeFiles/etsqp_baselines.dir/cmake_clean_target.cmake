file(REMOVE_RECURSE
  "libetsqp_baselines.a"
)
