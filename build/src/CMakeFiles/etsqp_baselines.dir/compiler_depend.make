# Empty compiler generated dependencies file for etsqp_baselines.
# This may be replaced when dependencies are built.
