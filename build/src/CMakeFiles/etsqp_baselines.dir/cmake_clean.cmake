file(REMOVE_RECURSE
  "CMakeFiles/etsqp_baselines.dir/baselines/fastlanes_exec.cc.o"
  "CMakeFiles/etsqp_baselines.dir/baselines/fastlanes_exec.cc.o.d"
  "CMakeFiles/etsqp_baselines.dir/baselines/sboost.cc.o"
  "CMakeFiles/etsqp_baselines.dir/baselines/sboost.cc.o.d"
  "libetsqp_baselines.a"
  "libetsqp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsqp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
