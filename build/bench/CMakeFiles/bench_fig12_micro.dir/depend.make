# Empty dependencies file for bench_fig12_micro.
# This may be replaced when dependencies are built.
