file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_encoders.dir/bench_table1_encoders.cc.o"
  "CMakeFiles/bench_table1_encoders.dir/bench_table1_encoders.cc.o.d"
  "bench_table1_encoders"
  "bench_table1_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
