# Empty dependencies file for bench_table1_encoders.
# This may be replaced when dependencies are built.
