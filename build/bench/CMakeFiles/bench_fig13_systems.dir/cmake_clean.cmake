file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_systems.dir/bench_fig13_systems.cc.o"
  "CMakeFiles/bench_fig13_systems.dir/bench_fig13_systems.cc.o.d"
  "bench_fig13_systems"
  "bench_fig13_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
