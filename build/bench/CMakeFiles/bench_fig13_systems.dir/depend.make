# Empty dependencies file for bench_fig13_systems.
# This may be replaced when dependencies are built.
