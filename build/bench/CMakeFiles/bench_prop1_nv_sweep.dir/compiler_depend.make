# Empty compiler generated dependencies file for bench_prop1_nv_sweep.
# This may be replaced when dependencies are built.
