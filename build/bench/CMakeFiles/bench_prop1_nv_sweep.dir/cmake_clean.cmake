file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_nv_sweep.dir/bench_prop1_nv_sweep.cc.o"
  "CMakeFiles/bench_prop1_nv_sweep.dir/bench_prop1_nv_sweep.cc.o.d"
  "bench_prop1_nv_sweep"
  "bench_prop1_nv_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_nv_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
