
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_sensor_join.cpp" "examples/CMakeFiles/multi_sensor_join.dir/multi_sensor_join.cpp.o" "gcc" "examples/CMakeFiles/multi_sensor_join.dir/multi_sensor_join.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/etsqp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/etsqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
