# Empty compiler generated dependencies file for multi_sensor_join.
# This may be replaced when dependencies are built.
