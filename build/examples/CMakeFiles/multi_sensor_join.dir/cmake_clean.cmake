file(REMOVE_RECURSE
  "CMakeFiles/multi_sensor_join.dir/multi_sensor_join.cpp.o"
  "CMakeFiles/multi_sensor_join.dir/multi_sensor_join.cpp.o.d"
  "multi_sensor_join"
  "multi_sensor_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensor_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
