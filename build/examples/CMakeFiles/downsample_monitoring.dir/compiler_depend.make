# Empty compiler generated dependencies file for downsample_monitoring.
# This may be replaced when dependencies are built.
