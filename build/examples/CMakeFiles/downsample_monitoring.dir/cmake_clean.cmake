file(REMOVE_RECURSE
  "CMakeFiles/downsample_monitoring.dir/downsample_monitoring.cpp.o"
  "CMakeFiles/downsample_monitoring.dir/downsample_monitoring.cpp.o.d"
  "downsample_monitoring"
  "downsample_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downsample_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
