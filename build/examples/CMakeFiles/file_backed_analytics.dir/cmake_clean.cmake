file(REMOVE_RECURSE
  "CMakeFiles/file_backed_analytics.dir/file_backed_analytics.cpp.o"
  "CMakeFiles/file_backed_analytics.dir/file_backed_analytics.cpp.o.d"
  "file_backed_analytics"
  "file_backed_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_backed_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
