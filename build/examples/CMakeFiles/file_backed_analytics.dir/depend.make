# Empty dependencies file for file_backed_analytics.
# This may be replaced when dependencies are built.
