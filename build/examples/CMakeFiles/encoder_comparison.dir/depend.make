# Empty dependencies file for encoder_comparison.
# This may be replaced when dependencies are built.
