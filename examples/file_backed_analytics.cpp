// Querying data that does not fit in memory: the Section VI-C workflow.
// A TsFile is opened header-only; queries prune pages from the statistics
// and stream the surviving payloads through an LRU buffer pool.
//
//   build/examples/file_backed_analytics

#include <cstdio>
#include <cstdlib>

#include "exec/engine.h"
#include "storage/buffer_manager.h"
#include "storage/tsfile.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;

  // Build a TsFile with a long regular series (the Timestamp dataset).
  std::string path = "/tmp/etsqp_file_backed.tsfile";
  {
    workload::Dataset ds = workload::MakeTimestamp(2'000'000);
    storage::SeriesStore store;
    if (!workload::LoadDataset(ds, {}, &store).ok()) return 1;
    if (!storage::WriteTsFile(store, path).ok()) return 1;
  }

  // Open with a deliberately tiny buffer pool: pages must stream.
  storage::FileBackedStore fbs;
  storage::FileBackedStore::Options opt;
  opt.memory_budget_bytes = 64 << 10;  // 64 KiB — far below the encoded size
  if (!fbs.Open(path, opt).ok()) return 1;

  auto index = fbs.GetSeries("Time.event_time");
  if (!index.ok()) return 1;
  std::printf("indexed %zu pages (%llu points) — loaded payloads so far: "
              "%llu\n",
              index.value()->pages.size(),
              static_cast<unsigned long long>(index.value()->total_points),
              static_cast<unsigned long long>(fbs.stats().pages_loaded));

  exec::Engine engine(exec::EtsqpPruneOptions(2));

  // A narrow time-range query: header pruning keeps most pages on disk.
  int64_t t0 = index.value()->pages[100].header.min_time;
  int64_t t1 = index.value()->pages[104].header.max_time;
  exec::LogicalPlan plan =
      exec::LogicalPlan::Aggregate("Time.event_time", exec::AggFunc::kAvg);
  plan.time_filter = exec::TimeRange{t0, t1};
  auto result = engine.ExecuteOnFile(plan, &fbs);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto st = fbs.stats();
  std::printf(
      "narrow AVG=%.1f | pages: %llu pruned of %llu, %llu fetched | pool "
      "resident %zu KiB\n",
      result.value().columns[0][0],
      static_cast<unsigned long long>(result.value().stats.pages_pruned),
      static_cast<unsigned long long>(result.value().stats.pages_total),
      static_cast<unsigned long long>(st.pages_loaded),
      st.resident_bytes >> 10);

  // A full scan: every page streams through the pool, evicting under the
  // budget — memory stays bounded regardless of file size.
  exec::LogicalPlan scan =
      exec::LogicalPlan::Aggregate("Time.event_time", exec::AggFunc::kSum);
  auto full = engine.ExecuteOnFile(scan, &fbs);
  if (!full.ok()) return 1;
  st = fbs.stats();
  std::printf(
      "full SUM=%.6g | fetched %llu, pool hits %llu, evicted %llu | pool "
      "resident %zu KiB (budget %zu KiB)\n",
      full.value().columns[0][0],
      static_cast<unsigned long long>(st.pages_loaded),
      static_cast<unsigned long long>(st.pool_hits),
      static_cast<unsigned long long>(st.pages_evicted),
      st.resident_bytes >> 10, opt.memory_budget_bytes >> 10);

  std::remove(path.c_str());
  return 0;
}
