// Querying data that does not fit in memory: the Section VI-C workflow.
// A TsFile is attached header-only through IotDbLite::OpenFile; SQL queries
// prune pages from the statistics and stream the surviving payloads through
// an LRU buffer pool.
//
//   build/examples/file_backed_analytics

#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/iotdb_lite.h"
#include "storage/tsfile.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;

  // Build a TsFile with a long regular series (the Timestamp dataset).
  std::string path = "/tmp/etsqp_file_backed.tsfile";
  {
    workload::Dataset ds = workload::MakeTimestamp(2'000'000);
    storage::SeriesStore store;
    if (!workload::LoadDataset(ds, {}, &store).ok()) return 1;
    if (!storage::WriteTsFile(store, path).ok()) return 1;
  }

  // Attach with a deliberately tiny buffer pool: pages must stream.
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  if (!dbi.OpenFile(path, 64 << 10).ok()) return 1;  // 64 KiB budget

  auto index = dbi.file_store()->GetSeries("Time.event_time");
  if (!index.ok()) return 1;
  std::printf("indexed %zu pages (%llu points) — loaded payloads so far: "
              "%llu\n",
              index.value()->pages.size(),
              static_cast<unsigned long long>(index.value()->total_points),
              static_cast<unsigned long long>(
                  dbi.file_store()->stats().pages_loaded));

  // A narrow time-range query: header pruning keeps most pages on disk.
  int64_t t0 = index.value()->pages[100].header.min_time;
  int64_t t1 = index.value()->pages[104].header.max_time;
  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT AVG(v) FROM Time.event_time WHERE TIME >= %lld AND "
                "TIME <= %lld",
                static_cast<long long>(t0), static_cast<long long>(t1));
  auto result = dbi.Query(sql);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto st = dbi.file_store()->stats();
  std::printf(
      "narrow AVG=%.1f | pages: %llu pruned of %llu, %llu fetched | pool "
      "resident %zu KiB\n",
      result.value().columns[0][0],
      static_cast<unsigned long long>(result.value().stats.pages_pruned),
      static_cast<unsigned long long>(result.value().stats.pages_total),
      static_cast<unsigned long long>(st.pages_loaded),
      st.resident_bytes >> 10);

  // EXPLAIN shows the pruning decision without fetching a single payload.
  auto plan = dbi.Query(std::string("EXPLAIN ") + sql);
  if (!plan.ok()) return 1;
  std::printf("\n%s\n", plan.value().explain_text.c_str());

  // A full scan: every page streams through the pool, evicting under the
  // budget — memory stays bounded regardless of file size.
  auto full = dbi.Query("SELECT SUM(v) FROM Time.event_time");
  if (!full.ok()) return 1;
  st = dbi.file_store()->stats();
  std::printf(
      "full SUM=%.6g | fetched %llu, pool hits %llu, evicted %llu | pool "
      "resident %zu KiB (budget %zu KiB)\n",
      full.value().columns[0][0],
      static_cast<unsigned long long>(st.pages_loaded),
      static_cast<unsigned long long>(st.pool_hits),
      static_cast<unsigned long long>(st.pages_evicted),
      st.resident_bytes >> 10, static_cast<size_t>(64 << 10) >> 10);

  std::remove(path.c_str());
  return 0;
}
