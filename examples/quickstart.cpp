// Quickstart: create an IoT time-series database, ingest encoded data, and
// run SQL aggregations through the ETSQP vectorized pipeline engine.
//
//   build/examples/quickstart

#include <cstdio>
#include <random>

#include "db/iotdb_lite.h"

int main() {
  using namespace etsqp;

  // An IoT database using the SIMD pipeline engine (2 worker threads).
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, /*threads=*/2);

  // A sensor series: pages of 4096 points, TS2DIFF-encoded (Delta + min-base
  // + bit packing), flushed incrementally as the ingest buffer fills.
  if (!dbi.CreateTimeseries("velocity").ok()) return 1;

  // Simulate a device emitting one reading per second.
  std::mt19937_64 rng(42);
  int64_t t = 1'600'000'000'000;  // epoch ms
  int64_t v = 120;
  for (int i = 0; i < 100'000; ++i) {
    t += 1000;
    v += static_cast<int64_t>(rng() % 11) - 5;  // small random walk
    if (!dbi.Insert("velocity", t, v).ok()) return 1;
  }
  if (!dbi.Flush().ok()) return 1;

  std::printf("ingested 100000 points, encoded to %llu bytes (raw: %llu)\n",
              static_cast<unsigned long long>(
                  dbi.store()->EncodedBytes("velocity")),
              100'000ull * 16);

  // Plain aggregation over a time range — decoded with the transposed-layout
  // SIMD pipeline, summed without Delta accumulation (operator fusion).
  for (const char* sql : {
           "SELECT COUNT(v) FROM velocity",
           "SELECT AVG(v) FROM velocity",
           "SELECT MIN(v) FROM velocity",
           "SELECT MAX(v) FROM velocity",
           "SELECT SUM(v) FROM velocity WHERE time >= 1600000050000 AND "
           "time <= 1600000080000",
       }) {
    auto result = dbi.Query(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-75s -> %.3f\n", sql, result.value().columns[0][0]);
  }

  // Down-sampling: sliding windows of 10 minutes (SW(t_min, delta_t)).
  auto windows = dbi.Query(
      "SELECT AVG(v) FROM velocity SW(1600000000000, 600000)");
  if (!windows.ok()) return 1;
  std::printf("down-sampled to %zu windows; first 3:\n",
              windows.value().num_rows());
  for (size_t i = 0; i < 3 && i < windows.value().num_rows(); ++i) {
    std::printf("  window@%.0f avg=%.2f\n", windows.value().columns[0][i],
                windows.value().columns[1][i]);
  }
  std::printf(
      "stats: %llu tuples in pages, %llu scanned, %llu pages pruned\n",
      static_cast<unsigned long long>(windows.value().stats.tuples_in_pages),
      static_cast<unsigned long long>(windows.value().stats.tuples_scanned),
      static_cast<unsigned long long>(windows.value().stats.pages_pruned));

  // EXPLAIN ANALYZE: the compiled Pipe plan plus the measured per-stage
  // profile (unpack/delta/filter/aggregate/merge times, tuples, bytes).
  auto explained = dbi.Query(
      "EXPLAIN ANALYZE SELECT SUM(v) FROM velocity WHERE v >= 100");
  if (!explained.ok()) return 1;
  std::printf("\n%s", explained.value().explain_text.c_str());
  return 0;
}
