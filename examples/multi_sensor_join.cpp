// Multi-sensor analysis: align two sensors on the time axis with the
// natural-join pipeline (paper Q4/Q6, Figure 9's merge nodes), compute a
// derived quantity, and union two series into one ordered stream (Q5).
//
//   build/examples/multi_sensor_join

#include <algorithm>
#include <cstdio>
#include <random>

#include "db/iotdb_lite.h"

int main() {
  using namespace etsqp;
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, /*threads=*/2);

  // Two sensors on different clocks: power on a 100ms tick, flow on a
  // 250ms tick — they align every 500ms.
  if (!dbi.CreateTimeseries("power").ok()) return 1;
  if (!dbi.CreateTimeseries("flow").ok()) return 1;

  std::mt19937_64 rng(11);
  int64_t t0 = 1'700'000'000'000;
  {
    std::vector<int64_t> t, v;
    int64_t p = 40'000;
    for (int i = 0; i < 200'000; ++i) {
      t.push_back(t0 + static_cast<int64_t>(i) * 100);
      p += static_cast<int64_t>(rng() % 41) - 20;
      v.push_back(p);
    }
    if (!dbi.InsertBatch("power", t.data(), v.data(), t.size()).ok()) return 1;
  }
  {
    std::vector<int64_t> t, v;
    int64_t f = 900;
    for (int i = 0; i < 80'000; ++i) {
      t.push_back(t0 + static_cast<int64_t>(i) * 250);
      f += static_cast<int64_t>(rng() % 7) - 3;
      v.push_back(f);
    }
    if (!dbi.InsertBatch("flow", t.data(), v.data(), t.size()).ok()) return 1;
  }
  if (!dbi.Flush().ok()) return 1;

  // Natural join on timestamps: tuples where both sensors reported.
  auto joined = dbi.Query("SELECT * FROM power, flow");
  if (!joined.ok()) {
    std::printf("error: %s\n", joined.status().ToString().c_str());
    return 1;
  }
  std::printf("natural join: %zu aligned tuples (every 500ms)\n",
              joined.value().num_rows());
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  t=%.0f power=%.0f flow=%.0f\n",
                joined.value().columns[0][i], joined.value().columns[1][i],
                joined.value().columns[2][i]);
  }

  // Derived column on the aligned tuples: power - flow (Q4 shape).
  auto derived = dbi.Query("SELECT power.v - flow.v FROM power, flow");
  if (!derived.ok()) return 1;
  std::printf("derived series rows: %zu; first: t=%.0f expr=%.0f\n",
              derived.value().num_rows(), derived.value().columns[0][0],
              derived.value().columns[1][0]);

  // Two-series aggregate over the aligned tuples: Pearson correlation via
  // the Section IV cross-product polynomial (fused when both series are
  // Delta-RLE encoded; decode path otherwise).
  auto corr = dbi.Query("SELECT CORR(power.v, flow.v) FROM power, flow");
  if (!corr.ok()) return 1;
  std::printf("corr(power, flow) = %.4f over %.0f aligned tuples\n",
              corr.value().columns[0][0], corr.value().columns[2][0]);

  // Inter-column predicate (Eq. 3): aligned tuples where power exceeds
  // 40x flow (scaled comparison via a derived projection would also work).
  auto above = dbi.Query("SELECT * FROM power, flow WHERE power.v > flow.v");
  if (!above.ok()) return 1;
  std::printf("tuples with power > flow: %zu\n", above.value().num_rows());

  // Union both sensors into one time-ordered stream (Q5 shape).
  auto merged = dbi.Query("SELECT * FROM power UNION flow ORDER BY TIME");
  if (!merged.ok()) return 1;
  std::printf("union stream: %zu rows, ordered by time: %s\n",
              merged.value().num_rows(),
              std::is_sorted(merged.value().columns[0].begin(),
                             merged.value().columns[0].end())
                  ? "yes"
                  : "NO");
  return 0;
}
