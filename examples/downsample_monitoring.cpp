// Down-sampling a monitoring dashboard: the paper's motivating workload
// (Section I): a fleet of sensors streams readings; the dashboard requests
// per-minute averages over a recent window. Demonstrates sliding-window
// aggregation through the IotDbLite SQL facade, scalar-vs-SIMD engine modes,
// and the execution counters behind the paper's throughput metric.
//
//   build/examples/downsample_monitoring

#include <algorithm>
#include <cstdio>
#include <string>

#include "db/iotdb_lite.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;

  // The Gas dataset: 19 sensors with drift + activity spikes (Table II).
  workload::Dataset gas = workload::MakeGas(200'000);
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  auto names = workload::LoadDataset(gas, {}, dbi.store());
  if (!names.ok()) return 1;

  // Dashboard query: per-minute AVG of one sensor over the most recent
  // quarter of the data.
  const std::string& sensor = names.value()[3];
  auto series = dbi.store()->GetSeries(sensor);
  int64_t t_end = series.value()->pages.back()->header.max_time;
  int64_t t_begin =
      t_end - (t_end - series.value()->pages[0]->header.min_time) / 4;

  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT AVG(v) FROM %s WHERE TIME >= %lld SW(%lld, 60000)",
                sensor.c_str(), static_cast<long long>(t_begin),
                static_cast<long long>(t_begin));

  for (db::IotDbLite::Mode mode :
       {db::IotDbLite::Mode::kScalar, db::IotDbLite::Mode::kSimd}) {
    dbi.SetMode(mode);
    auto result = dbi.Query(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const exec::QueryResult& qr = result.value();
    std::printf("%s: %zu windows | pages: %llu total, %llu pruned | "
                "tuples scanned: %llu of %llu\n",
                mode == db::IotDbLite::Mode::kSimd ? "IoTDB-SIMD" : "IoTDB   ",
                qr.num_rows(),
                static_cast<unsigned long long>(qr.stats.pages_total),
                static_cast<unsigned long long>(qr.stats.pages_pruned),
                static_cast<unsigned long long>(qr.stats.tuples_scanned),
                static_cast<unsigned long long>(qr.stats.tuples_in_pages));
    if (mode == db::IotDbLite::Mode::kSimd) {
      std::printf("first windows:\n");
      for (size_t i = 0; i < 5 && i < qr.num_rows(); ++i) {
        std::printf("  t=%.0f  avg=%8.2f\n", qr.columns[0][i],
                    qr.columns[1][i]);
      }
    }
  }

  // A value-range alert: how often did sensor 3 exceed its 90th percentile?
  std::vector<int64_t> sorted = gas.series[3].values;
  std::sort(sorted.begin(), sorted.end());
  int64_t p90 = sorted[sorted.size() * 9 / 10];
  std::snprintf(sql, sizeof(sql), "SELECT COUNT(v) FROM %s WHERE v >= %lld",
                sensor.c_str(), static_cast<long long>(p90));
  auto result = dbi.Query(sql);
  if (!result.ok()) return 1;
  std::printf("readings above p90 (%lld): %.0f (blocks pruned: %llu)\n",
              static_cast<long long>(p90), result.value().columns[0][0],
              static_cast<unsigned long long>(
                  result.value().stats.blocks_pruned));

  // The same query under EXPLAIN ANALYZE: where did the time go?
  auto explained = dbi.Query(std::string("EXPLAIN ANALYZE ") + sql);
  if (!explained.ok()) return 1;
  std::printf("\n%s", explained.value().explain_text.c_str());
  return 0;
}
