// Down-sampling a monitoring dashboard: the paper's motivating workload
// (Section I): a fleet of sensors streams readings; the dashboard requests
// per-minute averages over a recent window. Demonstrates sliding-window
// aggregation, statistics-based pruning (ETSQP-prune vs plain), and the
// execution counters behind the paper's throughput metric.
//
//   build/examples/downsample_monitoring

#include <algorithm>
#include <cstdio>

#include "exec/engine.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;

  // The Gas dataset: 19 sensors with drift + activity spikes (Table II).
  workload::Dataset gas = workload::MakeGas(200'000);
  storage::SeriesStore store;
  auto names = workload::LoadDataset(gas, {}, &store);
  if (!names.ok()) return 1;

  // Dashboard query: per-minute AVG of one sensor over the most recent
  // quarter of the data.
  const std::string& sensor = names.value()[3];
  auto series = store.GetSeries(sensor);
  int64_t t_end = series.value()->pages.back().header.max_time;
  int64_t t_begin = t_end - (t_end - series.value()->pages[0].header.min_time) / 4;

  exec::LogicalPlan plan = exec::LogicalPlan::Aggregate(
      sensor, exec::AggFunc::kAvg);
  plan.window.active = true;
  plan.window.t_min = t_begin;
  plan.window.delta_t = 60'000;  // one minute
  plan.time_filter.lo = t_begin;

  for (bool prune : {false, true}) {
    exec::Engine engine(prune ? exec::EtsqpPruneOptions(2)
                              : exec::EtsqpOptions(2));
    auto result = engine.Execute(plan, store);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const exec::QueryResult& qr = result.value();
    std::printf("%s: %zu windows | pages: %llu total, %llu pruned | "
                "tuples scanned: %llu of %llu\n",
                prune ? "ETSQP-prune" : "ETSQP      ", qr.num_rows(),
                static_cast<unsigned long long>(qr.stats.pages_total),
                static_cast<unsigned long long>(qr.stats.pages_pruned),
                static_cast<unsigned long long>(qr.stats.tuples_scanned),
                static_cast<unsigned long long>(qr.stats.tuples_in_pages));
    if (prune) {
      std::printf("first windows:\n");
      for (size_t i = 0; i < 5 && i < qr.num_rows(); ++i) {
        std::printf("  t=%.0f  avg=%8.2f\n", qr.columns[0][i],
                    qr.columns[1][i]);
      }
    }
  }

  // A value-range alert: how often did sensor 3 exceed its 90th percentile?
  std::vector<int64_t> sorted = gas.series[3].values;
  std::sort(sorted.begin(), sorted.end());
  int64_t p90 = sorted[sorted.size() * 9 / 10];
  exec::LogicalPlan alert = exec::LogicalPlan::Aggregate(
      sensor, exec::AggFunc::kCount);
  alert.value_filter.active = true;
  alert.value_filter.lo = p90;
  exec::Engine engine(exec::EtsqpPruneOptions(2));
  auto result = engine.Execute(alert, store);
  if (!result.ok()) return 1;
  std::printf("readings above p90 (%lld): %.0f (blocks pruned: %llu)\n",
              static_cast<long long>(p90), result.value().columns[0][0],
              static_cast<unsigned long long>(
                  result.value().stats.blocks_pruned));
  return 0;
}
