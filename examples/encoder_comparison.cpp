// Choosing an encoder for your data: encodes the same series with every
// integer encoder in the library and reports compression ratio plus decode
// speed under the ETSQP engine — the "evaluations could help to choose
// better existing encoders for IoT data" use case from the paper's
// conclusion.
//
//   build/examples/encoder_comparison

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "exec/column_decoder.h"
#include "storage/page_builder.h"

namespace {

using namespace etsqp;

double DecodeMvps(const storage::Page& page, exec::DecodeStrategy strategy) {
  exec::DecodedColumn out;
  double best = 1e100;
  for (int r = 0; r < 5; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    if (!exec::DecodeColumn(page.value_data.data(), page.value_data.size(),
                            page.header.value_encoding, page.header.count,
                            strategy, 0, &out)
             .ok()) {
      return 0;
    }
    double s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    best = std::min(best, s);
  }
  return page.header.count / best / 1e6;
}

void Compare(const char* label, const std::vector<int64_t>& values) {
  std::vector<int64_t> times(values.size());
  for (size_t i = 0; i < times.size(); ++i) {
    times[i] = 1000 + static_cast<int64_t>(i) * 50;
  }
  std::printf("\n%s (%zu values, raw %zu KB)\n", label, values.size(),
              values.size() * 8 / 1024);
  std::printf("  %-12s %10s %14s %14s\n", "encoding", "ratio", "ETSQP Mv/s",
              "Serial Mv/s");
  for (enc::ColumnEncoding e :
       {enc::ColumnEncoding::kTs2Diff, enc::ColumnEncoding::kDeltaRle,
        enc::ColumnEncoding::kSprintz, enc::ColumnEncoding::kRlbe,
        enc::ColumnEncoding::kFastLanes}) {
    storage::PageOptions opt;
    opt.value_encoding = e;
    auto page = storage::BuildPage(times.data(), values.data(), values.size(),
                                   opt);
    if (!page.ok()) continue;
    double ratio = static_cast<double>(page.value().header.value_bytes) /
                   (values.size() * 8.0);
    exec::DecodeStrategy fast = e == enc::ColumnEncoding::kFastLanes
                                    ? exec::DecodeStrategy::kFastLanes
                                    : exec::DecodeStrategy::kEtsqp;
    std::printf("  %-12s %9.1f%% %14.0f %14.0f\n", enc::ColumnEncodingName(e),
                100.0 * ratio, DecodeMvps(page.value(), fast),
                DecodeMvps(page.value(), exec::DecodeStrategy::kSerial));
  }
}

}  // namespace

int main() {
  std::mt19937_64 rng(7);
  size_t n = 500'000;

  // Smooth sensor drift: tiny deltas, no runs.
  std::vector<int64_t> smooth(n);
  int64_t v = 100'000;
  for (auto& x : smooth) x = (v += static_cast<int64_t>(rng() % 7) - 3);
  Compare("smooth sensor (temperature-like)", smooth);

  // Step-and-hold actuator: long constant runs.
  std::vector<int64_t> steppy;
  steppy.reserve(n);
  v = 0;
  while (steppy.size() < n) {
    int64_t level = static_cast<int64_t>(rng() % 4000);
    size_t hold = 200 + rng() % 2000;
    for (size_t k = 0; k < hold && steppy.size() < n; ++k) {
      steppy.push_back(level);
    }
  }
  Compare("step-and-hold actuator (setpoint-like)", steppy);

  // Spiky event counter: mostly small, occasionally huge deltas.
  std::vector<int64_t> spiky(n);
  v = 0;
  for (auto& x : spiky) {
    v += (rng() % 97 == 0) ? static_cast<int64_t>(rng() % 100000)
                           : static_cast<int64_t>(rng() % 3);
    x = v;
  }
  Compare("spiky event counter", spiky);

  std::printf(
      "\nRule of thumb (paper Table I / Section VIII): TS2DIFF for smooth"
      "\ndrift, DELTA_RLE/RLBE when runs dominate, Sprintz for spiky widths;"
      "\nFastLanes decodes fast but stores more bytes.\n");
  return 0;
}
