#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"
#include "encoding/delta_rle.h"
#include "encoding/rle.h"
#include "encoding/sprintz.h"
#include "encoding/streamvbyte.h"
#include "encoding/ts2diff.h"

namespace etsqp::enc {
namespace {

// ---------------------------------------------------------------- bitpack

class BitpackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitpackWidthTest, PackUnpackRoundTrip) {
  int width = GetParam();
  std::mt19937_64 rng(width + 100);
  std::vector<uint64_t> values(333);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  PackBE(values.data(), values.size(), width, &w);
  auto bytes = w.TakeBuffer();
  EXPECT_EQ(bytes.size(), PackedBytes(values.size(), width));
  std::vector<uint64_t> out(values.size());
  ASSERT_TRUE(UnpackBE64(bytes.data(), bytes.size(), 0, values.size(), width,
                         out.data()));
  EXPECT_EQ(out, values);
}

TEST_P(BitpackWidthTest, UnpackAtBitOffset) {
  int width = GetParam();
  std::mt19937_64 rng(width + 200);
  std::vector<uint64_t> values(50);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  w.WriteBits(0x2A, 6);  // misaligning prefix
  PackBE(values.data(), values.size(), width, &w);
  auto bytes = w.TakeBuffer();
  std::vector<uint64_t> out(values.size());
  ASSERT_TRUE(UnpackBE64(bytes.data(), bytes.size(), 6, values.size(), width,
                         out.data()));
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitpackWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 10, 12, 13,
                                           15, 16, 17, 20, 24, 25, 26, 28, 31,
                                           32, 40, 57, 63, 64));

TEST(BitpackTest, WidthZero) {
  std::vector<uint64_t> out(5, 99);
  ASSERT_TRUE(UnpackBE64(nullptr, 0, 0, 5, 0, out.data()));
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
}

TEST(BitpackTest, TruncatedInputRejected) {
  uint8_t byte = 0xFF;
  std::vector<uint64_t> out(3);
  EXPECT_FALSE(UnpackBE64(&byte, 1, 0, 3, 10, out.data()));
}

TEST(BitpackTest, UnpackOneMatchesBulk) {
  std::mt19937_64 rng(11);
  int width = 13;
  std::vector<uint64_t> values(64);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  PackBE(values.data(), values.size(), width, &w);
  auto bytes = w.TakeBuffer();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(UnpackOneBE(bytes.data(), i * width, width), values[i]);
  }
}

// ---------------------------------------------------------------- RLE

TEST(RleTest, EncodesRuns) {
  int64_t data[] = {5, 5, 5, 7, 7, 5};
  auto runs = RleEncode(data, 6);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].value, 5);
  EXPECT_EQ(runs[0].length, 3u);
  EXPECT_EQ(runs[1].value, 7);
  EXPECT_EQ(runs[1].length, 2u);
  EXPECT_EQ(runs[2].length, 1u);
  EXPECT_EQ(RleTotalLength(runs), 6u);
}

TEST(RleTest, RoundTrip) {
  std::mt19937_64 rng(3);
  std::vector<int64_t> data(1000);
  int64_t v = 0;
  for (auto& x : data) {
    if (rng() % 5 == 0) v = static_cast<int64_t>(rng() % 100);
    x = v;
  }
  auto runs = RleEncode(data.data(), data.size());
  std::vector<int64_t> out(data.size());
  EXPECT_EQ(RleDecode(runs, out.data()), data.size());
  EXPECT_EQ(out, data);
}

TEST(RleTest, Empty) {
  auto runs = RleEncode(nullptr, 0);
  EXPECT_TRUE(runs.empty());
}

// ---------------------------------------------------------------- TS2DIFF

class Ts2DiffBlockSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Ts2DiffBlockSizeTest, RoundTripRandomWalk) {
  uint32_t block_size = GetParam();
  std::mt19937_64 rng(block_size);
  std::vector<int64_t> values(2500);
  int64_t v = -50'000;
  for (auto& x : values) {
    v += static_cast<int64_t>(rng() % 1000) - 500;
    x = v;
  }
  Ts2DiffEncoder encoder(block_size);
  EncodedColumn col = encoder.Encode(values.data(), values.size());
  EXPECT_EQ(col.count, values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, Ts2DiffBlockSizeTest,
                         ::testing::Values(2, 3, 16, 100, 1024, 4096));

TEST(Ts2DiffTest, SingleValue) {
  int64_t v = 42;
  EncodedColumn col = Ts2DiffEncoder().Encode(&v, 1);
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  int64_t out = 0;
  ASSERT_TRUE(parsed.value().DecodeAll(&out).ok());
  EXPECT_EQ(out, 42);
}

TEST(Ts2DiffTest, ConstantIntervalHasZeroWidth) {
  std::vector<int64_t> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000 + static_cast<int64_t>(i) * 50;
  }
  EncodedColumn col = Ts2DiffEncoder().Encode(values.data(), values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().blocks().size(), 1u);
  const Ts2DiffBlock& b = parsed.value().blocks()[0];
  EXPECT_EQ(b.width, 0);
  EXPECT_TRUE(b.constant_interval());
  EXPECT_EQ(b.min_delta, 50);
  EXPECT_EQ(b.delta_upper_bound(), 50);
}

TEST(Ts2DiffTest, DeltaBoundsContainTrueDeltas) {
  std::mt19937_64 rng(9);
  std::vector<int64_t> values(500);
  int64_t v = 0;
  for (auto& x : values) {
    v += static_cast<int64_t>(rng() % 2000) - 1000;
    x = v;
  }
  EncodedColumn col = Ts2DiffEncoder(64).Encode(values.data(), values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  for (const Ts2DiffBlock& b : parsed.value().blocks()) {
    for (uint32_t i = 1; i <= b.num_deltas; ++i) {
      int64_t d = values[b.start_index + i] - values[b.start_index + i - 1];
      EXPECT_GE(d, b.delta_lower_bound());
      EXPECT_LE(d, b.delta_upper_bound());
    }
  }
}

TEST(Ts2DiffTest, BlockStatsAreExact) {
  std::mt19937_64 rng(77);
  std::vector<int64_t> values(1000);
  int64_t v = -300;
  for (auto& x : values) x = (v += static_cast<int64_t>(rng() % 61) - 30);
  EncodedColumn col = Ts2DiffEncoder(128).Encode(values.data(), values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  for (const Ts2DiffBlock& b : parsed.value().blocks()) {
    int64_t mn = values[b.start_index];
    int64_t mx = mn;
    for (uint32_t i = 0; i < b.num_values(); ++i) {
      mn = std::min(mn, values[b.start_index + i]);
      mx = std::max(mx, values[b.start_index + i]);
    }
    EXPECT_EQ(b.min_value, mn);
    EXPECT_EQ(b.max_value, mx);
    EXPECT_EQ(b.first_value, values[b.start_index]);
  }
}

TEST(Ts2DiffTest, NegativeDeltas) {
  std::vector<int64_t> values = {100, 50, 0, -50, -100, -75, -25};
  EncodedColumn col = Ts2DiffEncoder().Encode(values.data(), values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(Ts2DiffTest, ExtremeValues) {
  std::vector<int64_t> values = {INT64_MIN / 2, INT64_MIN / 2 + 1000,
                                 INT64_MAX / 2, INT64_MAX / 2 - 1000};
  EncodedColumn col = Ts2DiffEncoder().Encode(values.data(), values.size());
  auto parsed = Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(Ts2DiffTest, TruncatedHeaderRejected) {
  uint8_t junk[5] = {1, 2, 3, 4, 5};
  auto parsed = Ts2DiffColumn::Parse(junk, 5);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(Ts2DiffTest, TruncatedPayloadRejected) {
  std::vector<int64_t> values(100);
  std::mt19937_64 rng(5);
  int64_t v = 0;
  for (auto& x : values) x = (v += static_cast<int64_t>(rng() % 100));
  EncodedColumn col = Ts2DiffEncoder().Encode(values.data(), values.size());
  auto parsed =
      Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size() - 4);
  EXPECT_FALSE(parsed.ok());
}

TEST(Ts2DiffTest, CompressionBeatsRawForSmoothData) {
  std::vector<int64_t> values(10000);
  std::mt19937_64 rng(6);
  int64_t v = 1'000'000;
  for (auto& x : values) x = (v += static_cast<int64_t>(rng() % 16));
  EncodedColumn col = Ts2DiffEncoder().Encode(values.data(), values.size());
  // Raw = 80KB; deltas fit 4 bits -> expect < 15% of raw.
  EXPECT_LT(col.bytes.size(), values.size() * 8 / 6);
}

// ---------------------------------------------------------------- DeltaRle

TEST(DeltaRleTest, RoundTripArithmeticRuns) {
  std::mt19937_64 rng(21);
  std::vector<int64_t> values;
  int64_t v = 500;
  while (values.size() < 5000) {
    int64_t d = static_cast<int64_t>(rng() % 41) - 20;
    size_t run = 1 + rng() % 100;
    for (size_t k = 0; k < run && values.size() < 5000; ++k) {
      v += d;
      values.push_back(v);
    }
  }
  EncodedColumn col = DeltaRleEncoder().Encode(values.data(), values.size());
  auto parsed = DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(DeltaRleTest, PairsMatchDeltaRuns) {
  std::vector<int64_t> values = {0, 10, 20, 30, 31, 32, 30, 28};
  EncodedColumn col = DeltaRleEncoder().Encode(values.data(), values.size());
  auto parsed = DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<DeltaRun> pairs;
  ASSERT_TRUE(parsed.value().DecodePairs(&pairs).ok());
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].delta, 10);
  EXPECT_EQ(pairs[0].run, 3u);
  EXPECT_EQ(pairs[1].delta, 1);
  EXPECT_EQ(pairs[1].run, 2u);
  EXPECT_EQ(pairs[2].delta, -2);
  EXPECT_EQ(pairs[2].run, 2u);
}

TEST(DeltaRleTest, BoundsAreConservative) {
  std::vector<int64_t> values = {0, 5, 10, 15, 14, 13, 20};
  EncodedColumn col = DeltaRleEncoder().Encode(values.data(), values.size());
  auto parsed = DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  const DeltaRleColumn& c = parsed.value();
  for (size_t i = 1; i < values.size(); ++i) {
    int64_t d = values[i] - values[i - 1];
    EXPECT_GE(d, c.delta_lower_bound());
    EXPECT_LE(d, c.delta_upper_bound());
  }
  EXPECT_GE(c.max_run_bound(), 3u);
}

TEST(DeltaRleTest, HighCompressionForConstantSlope) {
  std::vector<int64_t> values(100'000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 7;
  }
  EncodedColumn col = DeltaRleEncoder().Encode(values.data(), values.size());
  // One pair encodes everything.
  EXPECT_LT(col.bytes.size(), 64u);
}

TEST(DeltaRleTest, SingleValue) {
  int64_t v = -7;
  EncodedColumn col = DeltaRleEncoder().Encode(&v, 1);
  auto parsed = DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  int64_t out = 0;
  ASSERT_TRUE(parsed.value().DecodeAll(&out).ok());
  EXPECT_EQ(out, -7);
}

// ---------------------------------------------------------------- Sprintz

TEST(SprintzTest, RoundTripSpikyData) {
  std::mt19937_64 rng(31);
  std::vector<int64_t> values(3000);
  int64_t v = 0;
  for (auto& x : values) {
    // Mostly small steps with occasional spikes: Sprintz's target regime.
    v += (rng() % 50 == 0) ? static_cast<int64_t>(rng() % 100000) - 50000
                           : static_cast<int64_t>(rng() % 7) - 3;
    x = v;
  }
  EncodedColumn col = SprintzEncoder().Encode(values.data(), values.size());
  auto parsed = SprintzColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(SprintzTest, NonMultipleOfBlock) {
  std::vector<int64_t> values = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  EncodedColumn col = SprintzEncoder().Encode(values.data(), values.size());
  auto parsed = SprintzColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(SprintzTest, SmallDeltasCompressWell) {
  std::vector<int64_t> values(8001);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i % 2);
  }
  EncodedColumn col = SprintzEncoder().Encode(values.data(), values.size());
  // 2-bit zigzag deltas + 1 byte header per 8: ~3 bytes per 8 values.
  EXPECT_LT(col.bytes.size(), values.size());
}

// ------------------------------------------------------------ streamvbyte

std::vector<int64_t> SvbRoundTrip(const std::vector<int64_t>& values) {
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  auto parsed = StreamVByteColumn::Parse(col.bytes.data(), col.bytes.size());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return {};
  EXPECT_EQ(parsed.value().count(), values.size());
  std::vector<int64_t> out(values.size());
  Status st = parsed.value().DecodeAll(out.data());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(StreamVByteTest, RoundTripMixedDeltaClasses) {
  std::mt19937_64 rng(41);
  std::vector<int64_t> values(3000);
  int64_t v = 0;
  for (auto& x : values) {
    // Exercise all four byte classes: mostly 1-byte deltas with jumps up
    // to the 8-byte class, both signs.
    switch (rng() % 8) {
      case 0:
        v += static_cast<int64_t>(rng() % 100000) - 50000;
        break;
      case 1:
        v += static_cast<int64_t>(rng() % (1ull << 40)) - (1ll << 39);
        break;
      default:
        v += static_cast<int64_t>(rng() % 200) - 100;
        break;
    }
    x = v;
  }
  EXPECT_EQ(SvbRoundTrip(values), values);
}

TEST(StreamVByteTest, RoundTripExtremeValues) {
  std::vector<int64_t> values = {INT64_MIN,     INT64_MIN + 1, -1, 0, 1,
                                 INT64_MAX - 1, INT64_MAX,     0,  INT64_MIN};
  EXPECT_EQ(SvbRoundTrip(values), values);
}

TEST(StreamVByteTest, RoundTripSingleAndEmpty) {
  std::vector<int64_t> one = {-42};
  EXPECT_EQ(SvbRoundTrip(one), one);
  EncodedColumn col = StreamVByteEncoder().Encode(nullptr, 0);
  auto parsed = StreamVByteColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().count(), 0u);
}

TEST(StreamVByteTest, MonotoneTimestampsCompress) {
  std::vector<int64_t> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1700000000000ll + static_cast<int64_t>(i) * 100;
  }
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  // 100ms ticks are 1-byte deltas: ~1.25 bytes/value incl. control stream.
  EXPECT_LT(col.bytes.size(), values.size() * 2);
  EXPECT_EQ(SvbRoundTrip(values), values);
}

TEST(StreamVByteTest, TruncatedHeaderRejected) {
  std::vector<int64_t> values = {1, 2, 3};
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  for (size_t cut = 0; cut < 12 && cut < col.bytes.size(); ++cut) {
    auto parsed = StreamVByteColumn::Parse(col.bytes.data(), cut);
    EXPECT_FALSE(parsed.ok());
  }
}

TEST(StreamVByteTest, TruncatedPayloadRejected) {
  std::vector<int64_t> values(257);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * i * 37);
  }
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  std::vector<int64_t> out(values.size());
  // Any truncation must surface as a parse or decode error, never OOB.
  for (size_t cut = 12; cut < col.bytes.size(); cut += 7) {
    auto parsed = StreamVByteColumn::Parse(col.bytes.data(), cut);
    if (!parsed.ok()) continue;
    EXPECT_FALSE(parsed.value().DecodeAll(out.data()).ok()) << "cut=" << cut;
  }
}

TEST(StreamVByteTest, CorruptControlDetected) {
  std::vector<int64_t> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 3;
  }
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  // Widening a control code makes the data stream too short for the codes;
  // the decoder must flag it rather than read past the stream.
  std::vector<uint8_t> bytes = col.bytes;
  bytes[12] = 0xFF;  // first control byte: all deltas claim 8 bytes
  auto parsed = StreamVByteColumn::Parse(bytes.data(), bytes.size());
  if (parsed.ok()) {
    std::vector<int64_t> out(values.size());
    EXPECT_FALSE(parsed.value().DecodeAll(out.data()).ok());
  }
}

TEST(StreamVByteTest, TrailingDataRejected) {
  std::vector<int64_t> values = {5, 6, 7, 8};
  EncodedColumn col =
      StreamVByteEncoder().Encode(values.data(), values.size());
  std::vector<uint8_t> bytes = col.bytes;
  bytes.push_back(0xAB);
  auto parsed = StreamVByteColumn::Parse(bytes.data(), bytes.size());
  if (parsed.ok()) {
    std::vector<int64_t> out(values.size());
    EXPECT_FALSE(parsed.value().DecodeAll(out.data()).ok());
  }
}

}  // namespace
}  // namespace etsqp::enc
