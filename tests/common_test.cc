#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "common/aligned_buffer.h"
#include "common/bit_util.h"
#include "common/bitstream.h"
#include "common/status.h"

namespace etsqp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(BitUtilTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~0ull), 64);
}

TEST(BitUtilTest, Masks) {
  EXPECT_EQ(MaskLow64(0), 0u);
  EXPECT_EQ(MaskLow64(1), 1u);
  EXPECT_EQ(MaskLow64(10), 0x3FFu);
  EXPECT_EQ(MaskLow64(64), ~0ull);
  EXPECT_EQ(MaskLow32(32), ~0u);
}

TEST(BitUtilTest, ZigZagRoundTrip32) {
  for (int32_t v : {0, -1, 1, -2, 2, INT32_MIN, INT32_MAX, -123456, 99999}) {
    EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(v)), v) << v;
  }
  EXPECT_EQ(ZigZagEncode32(0), 0u);
  EXPECT_EQ(ZigZagEncode32(-1), 1u);
  EXPECT_EQ(ZigZagEncode32(1), 2u);
}

TEST(BitUtilTest, ZigZagRoundTrip64) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng());
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
}

TEST(BitUtilTest, OverflowChecks) {
  int64_t out;
  EXPECT_FALSE(AddOverflow64(1, 2, &out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(AddOverflow64(INT64_MAX, 1, &out));
  EXPECT_TRUE(MulOverflow64(INT64_MAX, 2, &out));
  EXPECT_FALSE(MulOverflow64(1ll << 30, 1ll << 30, &out));
}

TEST(BitStreamTest, SingleBits) {
  BitWriter w;
  w.WriteBit(1);
  w.WriteBit(0);
  w.WriteBit(1);
  EXPECT_EQ(w.bit_count(), 3u);
  auto bytes = w.TakeBuffer();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitStreamTest, BigEndianFieldOrder) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0b11111, 5);
  auto bytes = w.TakeBuffer();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10111111);  // MSB first
}

class BitStreamWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitStreamWidthTest, RoundTripRandomValues) {
  int width = GetParam();
  std::mt19937_64 rng(width);
  std::vector<uint64_t> values(257);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  for (uint64_t v : values) w.WriteBits(v, width);
  auto bytes = w.TakeBuffer();
  EXPECT_EQ(bytes.size(), (values.size() * width + 7) / 8);
  BitReader r(bytes.data(), bytes.size());
  for (uint64_t v : values) {
    EXPECT_EQ(r.ReadBits(width), v);
  }
  EXPECT_FALSE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitStreamWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 13, 16, 21,
                                           25, 31, 32, 33, 48, 63, 64));

TEST(BitStreamTest, ReaderExhaustion) {
  uint8_t byte = 0xFF;
  BitReader r(&byte, 1);
  EXPECT_EQ(r.ReadBits(8), 0xFFu);
  EXPECT_FALSE(r.exhausted());
  r.ReadBit();
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStreamTest, SeekAndAlign) {
  BitWriter w;
  w.WriteBits(0xAB, 8);
  w.WriteBits(0x5, 3);
  w.AlignToByte();
  auto bytes = w.TakeBuffer();
  BitReader r(bytes.data(), bytes.size());
  r.SeekBits(8);
  EXPECT_EQ(r.ReadBits(3), 0x5u);
  r.AlignToByte();
  EXPECT_EQ(r.bit_pos(), 16u);
}

TEST(BitStreamTest, FixedBigEndian) {
  std::vector<uint8_t> buf;
  PutFixed64BE(&buf, 0x0102030405060708ull);
  PutFixed32BE(&buf, 0xAABBCCDDu);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(GetFixed64BE(buf.data()), 0x0102030405060708ull);
  EXPECT_EQ(GetFixed32BE(buf.data() + 8), 0xAABBCCDDu);
}

TEST(AlignedBufferTest, AlignmentAndSlack) {
  AlignedBuffer buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  // Slack bytes are readable and zeroed.
  for (size_t i = 0; i < AlignedBuffer::kSlackBytes; ++i) {
    EXPECT_EQ(buf.data()[buf.size() + i], 0);
  }
}

TEST(AlignedBufferTest, AssignCopies) {
  uint8_t src[16];
  for (int i = 0; i < 16; ++i) src[i] = static_cast<uint8_t>(i * 3);
  AlignedBuffer buf;
  buf.Assign(src, 16);
  EXPECT_EQ(std::memcmp(buf.data(), src, 16), 0);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a.data()[0] = 42;
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(b.data()[0], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace etsqp
