#include <gtest/gtest.h>

#include <cstdio>
#include <atomic>
#include <random>
#include <thread>

#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_builder.h"
#include "storage/series_store.h"
#include "storage/tsfile.h"

namespace etsqp::storage {
namespace {

struct TestSeries {
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

TestSeries MakeWalk(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  TestSeries s;
  s.times.resize(n);
  s.values.resize(n);
  int64_t t = 1'600'000'000'000;
  int64_t v = 1000;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 100);
    v += static_cast<int64_t>(rng() % 201) - 100;
    s.times[i] = t;
    s.values[i] = v;
  }
  return s;
}

class PageEncodingTest
    : public ::testing::TestWithParam<enc::ColumnEncoding> {};

TEST_P(PageEncodingTest, BuildAndDecodeRoundTrip) {
  TestSeries s = MakeWalk(3000, 42);
  PageOptions opt;
  opt.value_encoding = GetParam();
  Result<Page> page = BuildPage(s.times.data(), s.values.data(),
                                s.times.size(), opt);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  const Page& p = page.value();
  EXPECT_EQ(p.header.count, s.times.size());
  EXPECT_EQ(p.header.min_time, s.times.front());
  EXPECT_EQ(p.header.max_time, s.times.back());

  std::vector<int64_t> times(s.times.size()), values(s.values.size());
  ASSERT_TRUE(DecodePageColumn(p.time_data, p.header.time_encoding,
                               p.header.count, times.data())
                  .ok());
  ASSERT_TRUE(DecodePageColumn(p.value_data, p.header.value_encoding,
                               p.header.count, values.data())
                  .ok());
  EXPECT_EQ(times, s.times);
  EXPECT_EQ(values, s.values);
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, PageEncodingTest,
    ::testing::Values(enc::ColumnEncoding::kTs2Diff,
                      enc::ColumnEncoding::kDeltaRle,
                      enc::ColumnEncoding::kRlbe,
                      enc::ColumnEncoding::kSprintz,
                      enc::ColumnEncoding::kFastLanes,
                      enc::ColumnEncoding::kGorilla,
                      enc::ColumnEncoding::kPlain));

TEST(PageTest, RejectsUnsortedTimes) {
  int64_t times[] = {10, 5};
  int64_t values[] = {1, 2};
  Result<Page> page = BuildPage(times, values, 2, PageOptions{});
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
}

TEST(PageTest, RejectsDuplicateTimes) {
  int64_t times[] = {10, 10};
  int64_t values[] = {1, 2};
  EXPECT_FALSE(BuildPage(times, values, 2, PageOptions{}).ok());
}

TEST(PageTest, RejectsEmpty) {
  EXPECT_FALSE(BuildPage(nullptr, nullptr, 0, PageOptions{}).ok());
}

TEST(PageTest, SerializeDeserializeRoundTrip) {
  TestSeries s = MakeWalk(500, 7);
  Result<Page> page =
      BuildPage(s.times.data(), s.values.data(), 500, PageOptions{});
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> bytes;
  SerializePage(page.value(), &bytes);
  Page out;
  size_t pos = 0;
  ASSERT_TRUE(DeserializePage(bytes.data(), bytes.size(), &pos, &out).ok());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.header.count, 500u);
  EXPECT_EQ(out.header.min_time, page.value().header.min_time);
  EXPECT_EQ(out.header.min_value, page.value().header.min_value);
  std::vector<int64_t> values(500);
  ASSERT_TRUE(DecodePageColumn(out.value_data, out.header.value_encoding, 500,
                               values.data())
                  .ok());
  EXPECT_EQ(values, s.values);
}

TEST(PageTest, DeserializeTruncatedFails) {
  TestSeries s = MakeWalk(100, 8);
  Result<Page> page =
      BuildPage(s.times.data(), s.values.data(), 100, PageOptions{});
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> bytes;
  SerializePage(page.value(), &bytes);
  Page out;
  size_t pos = 0;
  EXPECT_FALSE(
      DeserializePage(bytes.data(), bytes.size() / 2, &pos, &out).ok());
}

TEST(SeriesStoreTest, FlushesAtPageSize) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 100;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  TestSeries s = MakeWalk(250, 9);
  ASSERT_TRUE(
      store.AppendBatch("s", s.times.data(), s.values.data(), 250).ok());
  auto series = store.GetSeries("s");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value()->pages.size(), 2u);  // 2 full pages
  EXPECT_EQ(series.value()->buf_times.size(), 50u);
  ASSERT_TRUE(store.Flush("s").ok());
  EXPECT_EQ(series.value()->pages.size(), 3u);
  EXPECT_EQ(series.value()->total_points, 250u);
}

TEST(SeriesStoreTest, DuplicateCreateRejected) {
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("s", {}).ok());
  EXPECT_FALSE(store.CreateSeries("s", {}).ok());
}

TEST(SeriesStoreTest, MissingSeriesRejected) {
  SeriesStore store;
  EXPECT_EQ(store.Append("nope", 1, 2).code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.GetSeries("nope").ok());
  EXPECT_FALSE(store.HasSeries("nope"));
}

TEST(SeriesStoreTest, EncodedBytesTracksCompression) {
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("s", {}).ok());
  TestSeries s = MakeWalk(10000, 10);
  ASSERT_TRUE(
      store.AppendBatch("s", s.times.data(), s.values.data(), 10000).ok());
  ASSERT_TRUE(store.Flush().ok());
  uint64_t encoded = store.EncodedBytes("s");
  EXPECT_GT(encoded, 0u);
  EXPECT_LT(encoded, 10000u * 16u);  // beats raw (time+value = 16B/row)
}

TEST(TsFileTest, WriteReadRoundTrip) {
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.CreateSeries("b", {}).ok());
  TestSeries sa = MakeWalk(5000, 11);
  TestSeries sb = MakeWalk(777, 12);
  ASSERT_TRUE(
      store.AppendBatch("a", sa.times.data(), sa.values.data(), 5000).ok());
  ASSERT_TRUE(
      store.AppendBatch("b", sb.times.data(), sb.values.data(), 777).ok());
  ASSERT_TRUE(store.Flush().ok());

  std::string path = ::testing::TempDir() + "/etsqp_test.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());

  SeriesStore loaded;
  ASSERT_TRUE(ReadTsFile(path, &loaded).ok());
  auto series = loaded.GetSeries("a");
  ASSERT_TRUE(series.ok());
  uint64_t total = 0;
  std::vector<int64_t> values;
  for (const auto& page_ptr : series.value()->pages) {
    const Page& p = *page_ptr;
    std::vector<int64_t> v(p.header.count);
    ASSERT_TRUE(DecodePageColumn(p.value_data, p.header.value_encoding,
                                 p.header.count, v.data())
                    .ok());
    values.insert(values.end(), v.begin(), v.end());
    total += p.header.count;
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(values, sa.values);
  std::remove(path.c_str());
}

TEST(TsFileTest, RejectsUnflushed) {
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.Append("a", 1, 2).ok());
  EXPECT_FALSE(WriteTsFile(store, "/tmp/should_not_exist.tsfile").ok());
}

TEST(TsFileTest, RejectsBadMagic) {
  std::string path = ::testing::TempDir() + "/etsqp_bad.tsfile";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("garbagexx", 1, 9, f);
  std::fclose(f);
  SeriesStore store;
  EXPECT_FALSE(ReadTsFile(path, &store).ok());
  std::remove(path.c_str());
}

// Regression for the ReadTsFile hardening: every malformed-header shape
// must come back as a clean Corruption status, never a crash, hang, or
// huge allocation.
TEST(TsFileTest, RejectsCorruptHeaders) {
  std::string path = ::testing::TempDir() + "/etsqp_corrupt.tsfile";

  // A small valid file to mutate: one series, one page.
  {
    SeriesStore store;
    ASSERT_TRUE(store.CreateSeries("s", {}).ok());
    TestSeries s = MakeWalk(100, 7);
    ASSERT_TRUE(
        store.AppendBatch("s", s.times.data(), s.values.data(), 100).ok());
    ASSERT_TRUE(store.Flush().ok());
    ASSERT_TRUE(WriteTsFile(store, path).ok());
  }
  std::vector<uint8_t> valid;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    valid.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(valid.data(), 1, valid.size(), f), valid.size());
    std::fclose(f);
  }

  auto write_and_read = [&](const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    SeriesStore store;
    return ReadTsFile(path, &store);
  };

  // Absurd series count (file cannot hold it).
  std::vector<uint8_t> mutated = valid;
  mutated[4] = 0xff;
  mutated[5] = 0xff;
  EXPECT_EQ(write_and_read(mutated).code(), StatusCode::kCorruption);

  // Name length past every sane bound.
  mutated = valid;
  mutated[8] = 0xff;  // name_len is the first field after the header
  EXPECT_EQ(write_and_read(mutated).code(), StatusCode::kCorruption);

  // Page count beyond what the remaining bytes can hold.
  // Layout: magic(4) num_series(4) name_len(4) name(1) num_pages(4).
  mutated = valid;
  mutated[13] = 0xff;
  EXPECT_EQ(write_and_read(mutated).code(), StatusCode::kCorruption);

  // Truncations at every prefix length must error, not crash.
  for (size_t len : {size_t{9}, size_t{12}, size_t{20},
                     valid.size() / 2, valid.size() - 1}) {
    mutated.assign(valid.begin(), valid.begin() + static_cast<long>(len));
    EXPECT_FALSE(write_and_read(mutated).ok()) << "prefix " << len;
  }

  // Trailing garbage after the last series.
  mutated = valid;
  mutated.push_back(0xab);
  EXPECT_EQ(write_and_read(mutated).code(), StatusCode::kCorruption);

  // The unmutated file still loads.
  EXPECT_TRUE(write_and_read(valid).ok());
  std::remove(path.c_str());
}

TEST(FileBackedStoreTest, IndexesHeadersWithoutPayloads) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 500;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  TestSeries s = MakeWalk(5000, 31);
  ASSERT_TRUE(
      store.AppendBatch("s", s.times.data(), s.values.data(), 5000).ok());
  ASSERT_TRUE(store.Flush().ok());
  std::string path = ::testing::TempDir() + "/etsqp_fbs.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());

  FileBackedStore fbs;
  ASSERT_TRUE(fbs.Open(path).ok());
  auto index = fbs.GetSeries("s");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value()->pages.size(), 10u);
  EXPECT_EQ(index.value()->total_points, 5000u);
  // Nothing fetched yet.
  EXPECT_EQ(fbs.stats().pages_loaded, 0u);

  // Load one page and verify the payload decodes.
  auto page = fbs.LoadPage("s", 3);
  ASSERT_TRUE(page.ok());
  std::vector<int64_t> values(page.value()->header.count);
  ASSERT_TRUE(DecodePageColumn(page.value()->value_data,
                               page.value()->header.value_encoding,
                               page.value()->header.count, values.data())
                  .ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], s.values[3 * 500 + i]);
  }
  EXPECT_EQ(fbs.stats().pages_loaded, 1u);
  auto again = fbs.LoadPage("s", 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(fbs.stats().pool_hits, 1u);
  std::remove(path.c_str());
}

TEST(FileBackedStoreTest, LruEvictsUnderBudget) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 1000;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  TestSeries s = MakeWalk(20000, 37);
  ASSERT_TRUE(
      store.AppendBatch("s", s.times.data(), s.values.data(), 20000).ok());
  ASSERT_TRUE(store.Flush().ok());
  std::string path = ::testing::TempDir() + "/etsqp_fbs2.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());

  FileBackedStore fbs;
  FileBackedStore::Options fopt;
  fopt.memory_budget_bytes = 3 * store.EncodedBytes("s") / 20;  // ~3 pages
  ASSERT_TRUE(fbs.Open(path, fopt).ok());
  for (size_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(fbs.LoadPage("s", p).ok());
  }
  FileBackedStore::Stats st = fbs.stats();
  EXPECT_EQ(st.pages_loaded, 20u);
  EXPECT_GT(st.pages_evicted, 10u);
  EXPECT_LE(st.resident_bytes, fopt.memory_budget_bytes * 2);
  // A page evicted earlier reloads from the file (no stale pool entry).
  auto reload = fbs.LoadPage("s", 0);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(fbs.stats().pages_loaded, 21u);
  std::remove(path.c_str());
}

TEST(FileBackedStoreTest, ConcurrentLoadsAreSafe) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 500;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  TestSeries s = MakeWalk(10000, 41);
  ASSERT_TRUE(
      store.AppendBatch("s", s.times.data(), s.values.data(), 10000).ok());
  ASSERT_TRUE(store.Flush().ok());
  std::string path = ::testing::TempDir() + "/etsqp_fbs_mt.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());

  FileBackedStore fbs;
  FileBackedStore::Options fopt;
  fopt.memory_budget_bytes = 4096;  // heavy eviction pressure
  ASSERT_TRUE(fbs.Open(path, fopt).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&fbs, &failures, w] {
      std::mt19937_64 rng(w);
      for (int i = 0; i < 100; ++i) {
        size_t p = rng() % 20;
        auto page = fbs.LoadPage("s", p);
        if (!page.ok() || page.value()->header.count != 500) {
          failures.fetch_add(1);
          continue;
        }
        // The shared_ptr keeps the payload alive across evictions.
        std::vector<int64_t> v(page.value()->header.count);
        if (!DecodePageColumn(page.value()->value_data,
                              page.value()->header.value_encoding,
                              page.value()->header.count, v.data())
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

TEST(TsFileTest, FloatSeriesRoundTrip) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 700;
  opt.page.value_encoding = enc::ColumnEncoding::kChimpValue;
  ASSERT_TRUE(store.CreateSeries("f", opt).ok());
  std::mt19937_64 rng(43);
  std::vector<int64_t> t(3000);
  std::vector<double> v(3000);
  double x = 7.25;
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<int64_t>(i) * 5 + 1;
    x += (static_cast<double>(rng() % 100) - 50.0) / 8.0;
    v[i] = x;
  }
  ASSERT_TRUE(store.AppendBatchF64("f", t.data(), v.data(), t.size()).ok());
  ASSERT_TRUE(store.Flush().ok());
  std::string path = ::testing::TempDir() + "/etsqp_float.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());

  SeriesStore loaded;
  ASSERT_TRUE(ReadTsFile(path, &loaded).ok());
  auto series = loaded.GetSeries("f");
  ASSERT_TRUE(series.ok());
  size_t at = 0;
  for (const auto& page_ptr : series.value()->pages) {
    const Page& p = *page_ptr;
    ASSERT_TRUE(enc::IsFloatEncoding(p.header.value_encoding));
    std::vector<double> out(p.header.count);
    ASSERT_TRUE(DecodePageColumnF64(p.value_data, p.header.value_encoding,
                                    p.header.count, out.data())
                    .ok());
    for (double d : out) {
      ASSERT_EQ(d, v[at++]);
    }
  }
  EXPECT_EQ(at, v.size());
  std::remove(path.c_str());
}

TEST(FileBackedStoreTest, MissingFileAndSeries) {
  FileBackedStore fbs;
  EXPECT_FALSE(fbs.Open("/nonexistent/nope.tsfile").ok());
  FileBackedStore fbs2;
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.Append("a", 1, 2).ok());
  ASSERT_TRUE(store.Flush().ok());
  std::string path = ::testing::TempDir() + "/etsqp_fbs3.tsfile";
  ASSERT_TRUE(WriteTsFile(store, path).ok());
  ASSERT_TRUE(fbs2.Open(path).ok());
  EXPECT_FALSE(fbs2.GetSeries("ghost").ok());
  EXPECT_FALSE(fbs2.LoadPage("a", 99).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace etsqp::storage
