#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "exec/engine.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include <cstdio>
#include "storage/tsfile.h"
#include "storage/series_store.h"
#include "workload/generators.h"

namespace etsqp::exec {
namespace {

/// Ground-truth data kept alongside the store for reference evaluation.
struct Fixture {
  storage::SeriesStore store;
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

Fixture MakeFixture(size_t n, uint64_t seed, uint32_t page_size = 1000,
                    enc::ColumnEncoding venc = enc::ColumnEncoding::kTs2Diff) {
  std::mt19937_64 rng(seed);
  Fixture f;
  f.times.resize(n);
  f.values.resize(n);
  int64_t t = 0;
  int64_t v = 500;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 5);
    v += static_cast<int64_t>(rng() % 101) - 50;
    f.times[i] = t;
    f.values[i] = v;
  }
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = page_size;
  opt.page.value_encoding = venc;
  EXPECT_TRUE(f.store.CreateSeries("ts", opt).ok());
  EXPECT_TRUE(
      f.store.AppendBatch("ts", f.times.data(), f.values.data(), n).ok());
  EXPECT_TRUE(f.store.Flush().ok());
  return f;
}

double ReferenceAgg(const Fixture& f, AggFunc func, const TimeRange& tr,
                    const ValueRange& vr) {
  __int128 sum = 0, sq = 0;
  uint64_t count = 0;
  int64_t mn = INT64_MAX, mx = INT64_MIN;
  for (size_t i = 0; i < f.times.size(); ++i) {
    if (!tr.Contains(f.times[i])) continue;
    if (!vr.Contains(f.values[i])) continue;
    sum += f.values[i];
    sq += static_cast<__int128>(f.values[i]) * f.values[i];
    ++count;
    mn = std::min(mn, f.values[i]);
    mx = std::max(mx, f.values[i]);
  }
  switch (func) {
    case AggFunc::kSum:
      return static_cast<double>(static_cast<int64_t>(sum));
    case AggFunc::kCount:
      return static_cast<double>(count);
    case AggFunc::kAvg:
      return static_cast<double>(sum) / static_cast<double>(count);
    case AggFunc::kMin:
      return static_cast<double>(mn);
    case AggFunc::kMax:
      return static_cast<double>(mx);
    case AggFunc::kVariance: {
      double mean = static_cast<double>(sum) / static_cast<double>(count);
      return static_cast<double>(sq) / static_cast<double>(count) -
             mean * mean;
    }
  }
  return 0;
}

struct EngineCase {
  const char* name;
  PipelineOptions options;
};

class EngineMatrixTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineMatrixTest, WholeRangeAggregates) {
  Fixture f = MakeFixture(12000, 71);
  Engine engine(GetParam().options);
  for (AggFunc func : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kCount,
                       AggFunc::kMin, AggFunc::kMax, AggFunc::kVariance}) {
    LogicalPlan plan = LogicalPlan::Aggregate("ts", func);
    Result<QueryResult> result = engine.Execute(plan, f.store);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().num_rows(), 1u) << AggFuncName(func);
    double expected = ReferenceAgg(f, func, TimeRange{}, ValueRange{});
    EXPECT_NEAR(result.value().columns[0][0], expected,
                std::abs(expected) * 1e-9 + 1e-6)
        << AggFuncName(func);
  }
}

TEST_P(EngineMatrixTest, TimeFilteredAggregates) {
  Fixture f = MakeFixture(12000, 73);
  Engine engine(GetParam().options);
  std::mt19937_64 rng(73);
  int64_t tmax = f.times.back();
  for (int trial = 0; trial < 10; ++trial) {
    TimeRange tr;
    tr.lo = static_cast<int64_t>(rng() % tmax);
    tr.hi = tr.lo + static_cast<int64_t>(rng() % tmax / 2);
    LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
    plan.time_filter = tr;
    Result<QueryResult> result = engine.Execute(plan, f.store);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    double expected = ReferenceAgg(f, AggFunc::kSum, tr, ValueRange{});
    ASSERT_EQ(result.value().num_rows(), 1u);
    EXPECT_EQ(result.value().columns[0][0], expected)
        << "[" << tr.lo << "," << tr.hi << "]";
  }
}

TEST_P(EngineMatrixTest, ValueFilteredAggregates) {
  Fixture f = MakeFixture(12000, 79);
  Engine engine(GetParam().options);
  ValueRange vr;
  vr.active = true;
  vr.lo = 400;
  vr.hi = 700;
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.value_filter = vr;
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().columns[0][0],
            ReferenceAgg(f, AggFunc::kSum, TimeRange{}, vr));
}

TEST_P(EngineMatrixTest, SlidingWindowSums) {
  Fixture f = MakeFixture(12000, 83);
  Engine engine(GetParam().options);
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.window.active = true;
  plan.window.t_min = 100;
  plan.window.delta_t = 1000;
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& qr = result.value();
  ASSERT_GT(qr.num_rows(), 3u);
  for (size_t row = 0; row < qr.num_rows(); ++row) {
    int64_t ws = static_cast<int64_t>(qr.columns[0][row]);
    TimeRange tr{ws, ws + 999};
    double expected = ReferenceAgg(f, AggFunc::kSum, tr, ValueRange{});
    EXPECT_EQ(qr.columns[1][row], expected) << "window " << ws;
  }
  // Windows must tile the filtered domain: total of window sums == total sum
  // of tuples at t >= t_min.
  double total = 0;
  for (double v : qr.columns[1]) total += v;
  EXPECT_EQ(total,
            ReferenceAgg(f, AggFunc::kSum, TimeRange{100, INT64_MAX},
                         ValueRange{}));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineMatrixTest,
    ::testing::Values(EngineCase{"etsqp", PipelineOptions::Etsqp(1)},
                      EngineCase{"etsqp4", PipelineOptions::Etsqp(4)},
                      EngineCase{"etsqp_prune", PipelineOptions::EtsqpPrune(1)},
                      EngineCase{"etsqp_prune4", PipelineOptions::EtsqpPrune(4)},
                      EngineCase{"serial", PipelineOptions::Serial()},
                      EngineCase{"sboost", PipelineOptions::Sboost(2)},
                      EngineCase{"nofusion",
                                 [] {
                                   PipelineOptions o = PipelineOptions::Etsqp(1);
                                   o.fusion = false;
                                   return o;
                                 }()}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

TEST(EngineTest, DeltaRleValueEncodingAgrees) {
  Fixture a = MakeFixture(8000, 89, 1000, enc::ColumnEncoding::kTs2Diff);
  Fixture b = MakeFixture(8000, 89, 1000, enc::ColumnEncoding::kDeltaRle);
  Engine engine(PipelineOptions::Etsqp(1));
  for (AggFunc func : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kVariance}) {
    LogicalPlan plan = LogicalPlan::Aggregate("ts", func);
    auto ra = engine.Execute(plan, a.store);
    auto rb = engine.Execute(plan, b.store);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_NEAR(ra.value().columns[0][0], rb.value().columns[0][0], 1e-6);
  }
}

TEST(EngineTest, FastLanesStoreAgrees) {
  Fixture ref = MakeFixture(9000, 97);
  // Same data, FLMM1024 encoding + FastLanes strategy.
  storage::SeriesStore fl_store;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 3000;
  opt.page.time_encoding = enc::ColumnEncoding::kFastLanes;
  opt.page.value_encoding = enc::ColumnEncoding::kFastLanes;
  ASSERT_TRUE(fl_store.CreateSeries("ts", opt).ok());
  ASSERT_TRUE(fl_store
                  .AppendBatch("ts", ref.times.data(), ref.values.data(),
                               ref.times.size())
                  .ok());
  ASSERT_TRUE(fl_store.Flush().ok());

  Engine etsqp(PipelineOptions::Etsqp(1));
  Engine fastlanes(PipelineOptions::FastLanes(1));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.time_filter = TimeRange{1000, 20000};
  auto ra = etsqp.Execute(plan, ref.store);
  auto rb = fastlanes.Execute(plan, fl_store);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra.value().columns[0][0], rb.value().columns[0][0]);
  // FastLanes pays more I/O for the same tuples (lower compression ratio).
  EXPECT_GT(rb.value().stats.bytes_loaded, ra.value().stats.bytes_loaded);
}

TEST(EngineTest, PruningReducesWorkNotResults) {
  Fixture f = MakeFixture(50000, 101, 2000);
  Engine plain(PipelineOptions::Etsqp(1));
  Engine pruned(PipelineOptions::EtsqpPrune(1));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  int64_t tmax = f.times.back();
  plan.time_filter = TimeRange{tmax / 2, tmax / 2 + tmax / 20};
  auto ra = plain.Execute(plan, f.store);
  auto rb = pruned.Execute(plan, f.store);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().columns[0][0], rb.value().columns[0][0]);
  EXPECT_GE(rb.value().stats.pages_pruned, ra.value().stats.pages_pruned);
  EXPECT_LE(rb.value().stats.tuples_scanned, ra.value().stats.tuples_scanned);
}

TEST(EngineTest, SelectReturnsFilteredTuples) {
  Fixture f = MakeFixture(5000, 103);
  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kSelect;
  plan.series = "ts";
  plan.time_filter = TimeRange{100, 5000};
  plan.value_filter = ValueRange{true, 450, 600};
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  const QueryResult& qr = result.value();
  size_t expected = 0;
  for (size_t i = 0; i < f.times.size(); ++i) {
    if (plan.time_filter.Contains(f.times[i]) &&
        plan.value_filter.Contains(f.values[i])) {
      ASSERT_LT(expected, qr.num_rows());
      EXPECT_EQ(qr.columns[0][expected], static_cast<double>(f.times[i]));
      EXPECT_EQ(qr.columns[1][expected], static_cast<double>(f.values[i]));
      ++expected;
    }
  }
  EXPECT_EQ(qr.num_rows(), expected);
}

TEST(EngineTest, UnionMergesByTime) {
  Fixture a = MakeFixture(2000, 107);
  // Second series with distinct (offset) timestamps in the same store.
  std::vector<int64_t> times2(1500), values2(1500);
  std::mt19937_64 rng(109);
  int64_t t = 1;  // interleaves with series a
  for (size_t i = 0; i < times2.size(); ++i) {
    t += 1 + static_cast<int64_t>(rng() % 7);
    times2[i] = t;
    values2[i] = static_cast<int64_t>(i);
  }
  storage::SeriesStore::SeriesOptions opt;
  ASSERT_TRUE(a.store.CreateSeries("ts2", opt).ok());
  ASSERT_TRUE(a.store
                  .AppendBatch("ts2", times2.data(), values2.data(),
                               times2.size())
                  .ok());
  ASSERT_TRUE(a.store.Flush("ts2").ok());

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kUnion;
  plan.series = "ts";
  plan.series_right = "ts2";
  Result<QueryResult> result = engine.Execute(plan, a.store);
  ASSERT_TRUE(result.ok());
  const QueryResult& qr = result.value();
  EXPECT_EQ(qr.num_rows(), a.times.size() + times2.size());
  for (size_t i = 1; i < qr.num_rows(); ++i) {
    EXPECT_LE(qr.columns[0][i - 1], qr.columns[0][i]) << i;
  }
}

TEST(EngineTest, JoinFindsEqualTimestamps) {
  // Two series sharing every third timestamp.
  storage::SeriesStore store;
  std::vector<int64_t> t1, v1, t2, v2;
  for (int64_t i = 0; i < 3000; ++i) {
    t1.push_back(i * 2);      // evens
    v1.push_back(i);
    t2.push_back(i * 3);      // multiples of 3
    v2.push_back(i * 10);
  }
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.CreateSeries("b", {}).ok());
  ASSERT_TRUE(store.AppendBatch("a", t1.data(), v1.data(), t1.size()).ok());
  ASSERT_TRUE(store.AppendBatch("b", t2.data(), v2.data(), t2.size()).ok());
  ASSERT_TRUE(store.Flush().ok());

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kJoin;
  plan.series = "a";
  plan.series_right = "b";
  Result<QueryResult> result = engine.Execute(plan, store);
  ASSERT_TRUE(result.ok());
  const QueryResult& qr = result.value();
  // Shared timestamps: multiples of 6 below min(last a, last b).
  int64_t limit = std::min(t1.back(), t2.back());
  size_t expected = static_cast<size_t>(limit / 6) + 1;
  EXPECT_EQ(qr.num_rows(), expected);
  for (size_t i = 0; i < qr.num_rows(); ++i) {
    int64_t t = static_cast<int64_t>(qr.columns[0][i]);
    EXPECT_EQ(t % 6, 0);
    EXPECT_EQ(qr.columns[1][i], static_cast<double>(t / 2));   // v1 = t/2
    EXPECT_EQ(qr.columns[2][i], static_cast<double>(t / 3 * 10));
  }
}

TEST(EngineTest, InterColumnFilterOnJoin) {
  storage::SeriesStore store;
  std::vector<int64_t> t, v1, v2;
  std::mt19937_64 rng(401);
  for (int64_t i = 1; i <= 6000; ++i) {
    t.push_back(i);
    v1.push_back(static_cast<int64_t>(rng() % 100));
    v2.push_back(static_cast<int64_t>(rng() % 100));
  }
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.CreateSeries("b", {}).ok());
  ASSERT_TRUE(store.AppendBatch("a", t.data(), v1.data(), t.size()).ok());
  ASSERT_TRUE(store.AppendBatch("b", t.data(), v2.data(), t.size()).ok());
  ASSERT_TRUE(store.Flush().ok());

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kJoin;
  plan.series = "a";
  plan.series_right = "b";
  plan.inter_column_op = '>';
  auto result = engine.Execute(plan, store);
  ASSERT_TRUE(result.ok());
  size_t expected = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (v1[i] > v2[i]) ++expected;
  }
  EXPECT_EQ(result.value().num_rows(), expected);
  for (size_t r = 0; r < result.value().num_rows(); ++r) {
    EXPECT_GT(result.value().columns[1][r], result.value().columns[2][r]);
  }
}

TEST(EngineTest, ProjectBinaryAddsAlignedValues) {
  storage::SeriesStore store;
  std::vector<int64_t> t, v1, v2;
  for (int64_t i = 0; i < 5000; ++i) {
    t.push_back(i + 1);
    v1.push_back(i);
    v2.push_back(2 * i);
  }
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.CreateSeries("b", {}).ok());
  ASSERT_TRUE(store.AppendBatch("a", t.data(), v1.data(), t.size()).ok());
  ASSERT_TRUE(store.AppendBatch("b", t.data(), v2.data(), t.size()).ok());
  ASSERT_TRUE(store.Flush().ok());

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kProjectBinary;
  plan.series = "a";
  plan.series_right = "b";
  plan.binary_op = '+';
  Result<QueryResult> result = engine.Execute(plan, store);
  ASSERT_TRUE(result.ok());
  const QueryResult& qr = result.value();
  ASSERT_EQ(qr.num_rows(), t.size());
  for (size_t i = 0; i < qr.num_rows(); ++i) {
    EXPECT_EQ(qr.columns[1][i], static_cast<double>(3 * (qr.columns[0][i] - 1)));
  }
}

double ReferenceCorr(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b) {
  double n = static_cast<double>(a.size());
  double sa = 0, sb = 0, sa2 = 0, sb2 = 0, sab = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
    sa2 += static_cast<double>(a[i]) * a[i];
    sb2 += static_cast<double>(b[i]) * b[i];
    sab += static_cast<double>(a[i]) * b[i];
  }
  double cov = sab / n - (sa / n) * (sb / n);
  double va = sa2 / n - (sa / n) * (sa / n);
  double vb = sb2 / n - (sb / n) * (sb / n);
  return cov / (std::sqrt(va) * std::sqrt(vb));
}

struct CorrFixture {
  storage::SeriesStore store;
  std::vector<int64_t> va, vb;
};

CorrFixture MakeCorrFixture(enc::ColumnEncoding venc) {
  CorrFixture f;
  std::mt19937_64 rng(211);
  size_t n = 20000;
  std::vector<int64_t> t(n);
  f.va.resize(n);
  f.vb.resize(n);
  int64_t a = 100;
  for (size_t i = 0; i < n; ++i) {
    t[i] = 1000 + static_cast<int64_t>(i) * 10;
    // Correlated pair: b tracks a with noise.
    if (i % 16 == 0) a += static_cast<int64_t>(rng() % 21) - 10;
    f.va[i] = a;
    f.vb[i] = 2 * a + static_cast<int64_t>(rng() % 9) - 4;
  }
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 3000;
  opt.page.value_encoding = venc;
  EXPECT_TRUE(f.store.CreateSeries("a", opt).ok());
  EXPECT_TRUE(f.store.CreateSeries("b", opt).ok());
  EXPECT_TRUE(f.store.AppendBatch("a", t.data(), f.va.data(), n).ok());
  EXPECT_TRUE(f.store.AppendBatch("b", t.data(), f.vb.data(), n).ok());
  EXPECT_TRUE(f.store.Flush().ok());
  return f;
}

TEST(EngineTest, CorrelateFusedMatchesReference) {
  CorrFixture f = MakeCorrFixture(enc::ColumnEncoding::kDeltaRle);
  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kCorrelate;
  plan.series = "a";
  plan.series_right = "b";
  auto result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& qr = result.value();
  ASSERT_EQ(qr.num_rows(), 1u);
  EXPECT_NEAR(qr.columns[0][0], ReferenceCorr(f.va, f.vb), 1e-9);
  EXPECT_EQ(qr.columns[2][0], 20000.0);
  EXPECT_GT(qr.columns[0][0], 0.99);  // strongly correlated by construction
  // Fused path decodes nothing: tuples_scanned stays zero.
  EXPECT_EQ(qr.stats.tuples_scanned, 0u);
}

TEST(EngineTest, CorrelateGeneralPathMatchesFused) {
  CorrFixture fused = MakeCorrFixture(enc::ColumnEncoding::kDeltaRle);
  CorrFixture plain = MakeCorrFixture(enc::ColumnEncoding::kTs2Diff);
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kCorrelate;
  plan.series = "a";
  plan.series_right = "b";
  Engine engine(PipelineOptions::Etsqp(1));
  auto ra = engine.Execute(plan, fused.store);
  auto rb = engine.Execute(plan, plain.store);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NEAR(ra.value().columns[0][0], rb.value().columns[0][0], 1e-9);
  EXPECT_NEAR(ra.value().columns[1][0], rb.value().columns[1][0], 1e-6);
  // TS2DIFF pages take the general path (decoding happened).
  EXPECT_GT(rb.value().stats.tuples_scanned, 0u);
}

TEST(EngineTest, CorrelateAntiCorrelated) {
  storage::SeriesStore store;
  std::vector<int64_t> t, a, b;
  for (int64_t i = 0; i < 5000; ++i) {
    t.push_back(i + 1);
    a.push_back(i % 500);
    b.push_back(-(i % 500));
  }
  ASSERT_TRUE(store.CreateSeries("a", {}).ok());
  ASSERT_TRUE(store.CreateSeries("b", {}).ok());
  ASSERT_TRUE(store.AppendBatch("a", t.data(), a.data(), t.size()).ok());
  ASSERT_TRUE(store.AppendBatch("b", t.data(), b.data(), t.size()).ok());
  ASSERT_TRUE(store.Flush().ok());
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kCorrelate;
  plan.series = "a";
  plan.series_right = "b";
  Engine engine(PipelineOptions::Etsqp(1));
  auto result = engine.Execute(plan, store);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().columns[0][0], -1.0, 1e-9);
}

TEST(EngineTest, MissingSeriesReported) {
  storage::SeriesStore store;
  Engine engine(PipelineOptions::Etsqp(1));
  LogicalPlan plan = LogicalPlan::Aggregate("ghost", AggFunc::kSum);
  Result<QueryResult> result = engine.Execute(plan, store);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, EmptyTimeRangeYieldsZeroCount) {
  Fixture f = MakeFixture(1000, 113);
  Engine engine(PipelineOptions::EtsqpPrune(1));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kCount);
  plan.time_filter = TimeRange{f.times.back() + 100, f.times.back() + 200};
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().columns[0][0], 0.0);
}

TEST(EngineTest, FileBackedAggregationMatchesInMemory) {
  Fixture f = MakeFixture(30000, 139, 1500);
  std::string path = ::testing::TempDir() + "/etsqp_engine_file.tsfile";
  ASSERT_TRUE(storage::WriteTsFile(f.store, path).ok());
  storage::FileBackedStore fbs;
  storage::FileBackedStore::Options fopt;
  fopt.memory_budget_bytes = 1 << 16;  // force gradual loading + eviction
  ASSERT_TRUE(fbs.Open(path, fopt).ok());

  Engine engine(PipelineOptions::EtsqpPrune(2));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.time_filter = TimeRange{f.times[2000], f.times[20000]};
  auto mem = engine.Execute(plan, f.store);
  auto file = engine.Execute(plan, &fbs);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(mem.value().columns[0][0], file.value().columns[0][0]);
  // Pruned pages were never fetched from the file.
  EXPECT_LT(fbs.stats().pages_loaded, 20u);
  EXPECT_GT(file.value().stats.pages_pruned, 0u);

  // Windowed query on the file-backed path.
  LogicalPlan wplan = LogicalPlan::Aggregate("ts", AggFunc::kAvg);
  wplan.window.active = true;
  wplan.window.t_min = f.times[0];
  wplan.window.delta_t = (f.times.back() - f.times[0]) / 7 + 1;
  auto wmem = engine.Execute(wplan, f.store);
  auto wfile = engine.Execute(wplan, &fbs);
  ASSERT_TRUE(wmem.ok() && wfile.ok());
  ASSERT_EQ(wmem.value().num_rows(), wfile.value().num_rows());
  for (size_t r = 0; r < wmem.value().num_rows(); ++r) {
    EXPECT_EQ(wmem.value().columns[1][r], wfile.value().columns[1][r]);
  }
  std::remove(path.c_str());
}

TEST(PipeBuilderTest, SlicesOnlyWhenCoresExceedPages) {
  Fixture f = MakeFixture(40960, 127, 8192);  // 5 pages of 8 blocks each
  PipelineOptions few = PipelineOptions::Etsqp(4);
  PipelineOptions many = PipelineOptions::Etsqp(16);
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  auto spec_few = BuildPipeline(plan, f.store, few);
  auto spec_many = BuildPipeline(plan, f.store, many);
  ASSERT_TRUE(spec_few.ok() && spec_many.ok());
  EXPECT_EQ(spec_few.value().jobs.size(), 5u);  // pages >= cores: one job per page
  EXPECT_GT(spec_many.value().jobs.size(), 5u);  // cores > pages: block slices
  // Slicing must not change results.
  Engine engine_few(few);
  Engine engine_many(many);
  auto ra = engine_few.Execute(plan, f.store);
  auto rb = engine_many.Execute(plan, f.store);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().columns[0][0], rb.value().columns[0][0]);
}

TEST(PipeBuilderTest, PrunesPagesByHeaderStats) {
  Fixture f = MakeFixture(20000, 131, 1000);
  PipelineOptions opt = PipelineOptions::EtsqpPrune(1);
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.time_filter = TimeRange{f.times[500], f.times[1500]};
  auto spec = BuildPipeline(plan, f.store, opt);
  ASSERT_TRUE(spec.ok());
  EXPECT_GT(spec.value().plan_stats.pages_pruned, 10u);
  EXPECT_LT(spec.value().jobs.size(), 5u);
}

}  // namespace
}  // namespace etsqp::exec
