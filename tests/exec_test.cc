#include <gtest/gtest.h>

#include <random>

#include "encoding/delta_rle.h"
#include "encoding/rlbe.h"
#include "encoding/ts2diff.h"
#include "exec/column_decoder.h"
#include "exec/cost_model.h"
#include "exec/fusion.h"
#include "exec/pipeline.h"
#include "exec/pipeline_job.h"
#include "exec/pruning.h"
#include "exec/scheduler.h"
#include "storage/page_builder.h"

namespace etsqp::exec {
namespace {

std::vector<int64_t> RandomWalk(size_t n, uint64_t seed, int64_t start,
                                int64_t step_range) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> v(n);
  int64_t x = start;
  for (auto& y : v) {
    x += static_cast<int64_t>(rng() % (2 * step_range + 1)) - step_range;
    y = x;
  }
  return v;
}

std::vector<int64_t> RunnyWalk(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> v;
  v.reserve(n);
  int64_t x = 0;
  while (v.size() < n) {
    int64_t d = static_cast<int64_t>(rng() % 11) - 5;
    size_t run = 1 + rng() % 60;
    for (size_t k = 0; k < run && v.size() < n; ++k) {
      x += d;
      v.push_back(x);
    }
  }
  return v;
}

// ----------------------------------------------------------- ColumnDecoder

struct DecoderCase {
  enc::ColumnEncoding encoding;
  DecodeStrategy strategy;
};

class ColumnDecoderTest : public ::testing::TestWithParam<DecoderCase> {};

TEST_P(ColumnDecoderTest, MatchesReferenceDecode) {
  DecoderCase c = GetParam();
  std::vector<int64_t> values = RandomWalk(5000, 17, 100000, 300);
  storage::PageOptions opt;
  opt.value_encoding = c.encoding;
  std::vector<int64_t> times(values.size());
  for (size_t i = 0; i < times.size(); ++i) times[i] = 1000 + 10 * i;
  Result<storage::Page> page =
      storage::BuildPage(times.data(), values.data(), values.size(), opt);
  ASSERT_TRUE(page.ok());

  DecodedColumn col;
  ASSERT_TRUE(DecodeColumn(page.value().value_data.data(),
                           page.value().value_data.size(), c.encoding,
                           page.value().header.count, c.strategy, 0, &col)
                  .ok());
  ASSERT_EQ(col.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(col.Get(i), values[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ColumnDecoderTest,
    ::testing::Values(
        DecoderCase{enc::ColumnEncoding::kTs2Diff, DecodeStrategy::kEtsqp},
        DecoderCase{enc::ColumnEncoding::kTs2Diff, DecodeStrategy::kSerial},
        DecoderCase{enc::ColumnEncoding::kTs2Diff, DecodeStrategy::kSboost},
        DecoderCase{enc::ColumnEncoding::kDeltaRle, DecodeStrategy::kEtsqp},
        DecoderCase{enc::ColumnEncoding::kDeltaRle, DecodeStrategy::kSerial},
        DecoderCase{enc::ColumnEncoding::kDeltaRle, DecodeStrategy::kSboost},
        DecoderCase{enc::ColumnEncoding::kRlbe, DecodeStrategy::kEtsqp},
        DecoderCase{enc::ColumnEncoding::kRlbe, DecodeStrategy::kSerial},
        DecoderCase{enc::ColumnEncoding::kSprintz, DecodeStrategy::kEtsqp},
        DecoderCase{enc::ColumnEncoding::kFastLanes,
                    DecodeStrategy::kFastLanes},
        DecoderCase{enc::ColumnEncoding::kFastLanes,
                    DecodeStrategy::kSerial},
        DecoderCase{enc::ColumnEncoding::kGorilla, DecodeStrategy::kEtsqp},
        DecoderCase{enc::ColumnEncoding::kGorilla, DecodeStrategy::kSerial},
        DecoderCase{enc::ColumnEncoding::kPlain, DecodeStrategy::kEtsqp}));

TEST(ColumnDecoderTest, RangeDecodeMatchesFull) {
  std::vector<int64_t> values = RandomWalk(4000, 19, 0, 100);
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(256).Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  for (auto [begin, end] : {std::pair<size_t, size_t>{0, 4000},
                            {100, 200},
                            {250, 260},  // within one block
                            {200, 1300},
                            {3990, 4000},
                            {500, 500}}) {
    DecodedColumn out;
    ASSERT_TRUE(DecodeColumnRange(buf.data(), buf.size(),
                                  enc::ColumnEncoding::kTs2Diff, 4000,
                                  DecodeStrategy::kEtsqp, 0, begin, end, &out)
                    .ok());
    ASSERT_EQ(out.size(), end - begin);
    for (size_t i = begin; i < end; ++i) {
      ASSERT_EQ(out.Get(i - begin), values[i]) << begin << ":" << end;
    }
  }
}

TEST(ColumnDecoderTest, RlbeRangeDecodeUsesAnchors) {
  std::vector<int64_t> values = RunnyWalk(30000, 71);
  enc::EncodedColumn col =
      enc::RlbeEncoder().Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  for (auto [begin, end] : {std::pair<size_t, size_t>{0, 30000},
                            {0, 100},
                            {5000, 6000},
                            {29990, 30000},
                            {1, 2}}) {
    DecodedColumn out;
    ASSERT_TRUE(DecodeColumnRange(buf.data(), buf.size(),
                                  enc::ColumnEncoding::kRlbe, 30000,
                                  DecodeStrategy::kEtsqp, 0, begin, end, &out)
                    .ok());
    ASSERT_EQ(out.size(), end - begin);
    for (size_t i = begin; i < end; ++i) {
      ASSERT_EQ(out.Get(i - begin), values[i]) << begin << ":" << end;
    }
  }
}

TEST(ColumnDecoderTest, WideValuesFallBackTo64Bit) {
  // Swing exceeding int32: must still decode correctly via the wide path.
  std::vector<int64_t> values = {0, 1ll << 33, 1ll << 34, (1ll << 34) + 5};
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder().Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  DecodedColumn out;
  ASSERT_TRUE(DecodeColumn(buf.data(), buf.size(),
                           enc::ColumnEncoding::kTs2Diff, 4,
                           DecodeStrategy::kEtsqp, 0, &out)
                  .ok());
  EXPECT_FALSE(out.narrow);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(out.Get(i), values[i]);
}

// ----------------------------------------------------------- Fusion

TEST(FusionTest, Ts2DiffFusedSumMatchesDecode) {
  std::vector<int64_t> values = RandomWalk(3000, 23, -5000, 200);
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(300).Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  Result<Ts2DiffFusedReader> reader =
      Ts2DiffFusedReader::Open(buf.data(), buf.size());
  ASSERT_TRUE(reader.ok());

  std::mt19937_64 rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    size_t a = rng() % values.size();
    size_t b = a + rng() % (values.size() - a + 1);
    int64_t expected = 0;
    for (size_t i = a; i < b; ++i) expected += values[i];
    int64_t fused = 0;
    ASSERT_TRUE(reader.value().SumRange(a, b, &fused).ok());
    EXPECT_EQ(fused, expected) << a << ":" << b;
  }
}

TEST(FusionTest, Ts2DiffValueAt) {
  std::vector<int64_t> values = RandomWalk(1000, 31, 7, 50);
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(128).Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  Result<Ts2DiffFusedReader> reader =
      Ts2DiffFusedReader::Open(buf.data(), buf.size());
  ASSERT_TRUE(reader.ok());
  for (size_t i : {0ul, 1ul, 127ul, 128ul, 500ul, 999ul}) {
    int64_t v = 0;
    ASSERT_TRUE(reader.value().ValueAt(i, &v).ok());
    EXPECT_EQ(v, values[i]);
  }
  int64_t v;
  EXPECT_FALSE(reader.value().ValueAt(1000, &v).ok());
}

TEST(FusionTest, DeltaRleAggMatchesDecode) {
  std::vector<int64_t> values = RunnyWalk(5000, 37);
  enc::EncodedColumn col =
      enc::DeltaRleEncoder().Encode(values.data(), values.size());
  auto parsed = enc::DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());

  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    size_t a = rng() % values.size();
    size_t b = a + rng() % (values.size() - a + 1);
    __int128 esum = 0, esq = 0;
    for (size_t i = a; i < b; ++i) {
      esum += values[i];
      esq += static_cast<__int128>(values[i]) * values[i];
    }
    DeltaRleAggregates agg;
    ASSERT_TRUE(FusedAggDeltaRle(parsed.value(), a, b, true, &agg).ok());
    EXPECT_EQ(agg.sum, static_cast<int64_t>(esum)) << a << ":" << b;
    EXPECT_EQ(agg.count, b - a);
    EXPECT_TRUE(agg.sum_sq == esq);
  }
}

TEST(FusionTest, CrossProductMatchesDecode) {
  std::vector<int64_t> a_vals = RunnyWalk(3000, 43);
  std::vector<int64_t> b_vals = RunnyWalk(3000, 47);
  enc::EncodedColumn ca =
      enc::DeltaRleEncoder().Encode(a_vals.data(), a_vals.size());
  enc::EncodedColumn cb =
      enc::DeltaRleEncoder().Encode(b_vals.data(), b_vals.size());
  auto pa = enc::DeltaRleColumn::Parse(ca.bytes.data(), ca.bytes.size());
  auto pb = enc::DeltaRleColumn::Parse(cb.bytes.data(), cb.bytes.size());
  ASSERT_TRUE(pa.ok() && pb.ok());

  std::mt19937_64 rng(53);
  for (int trial = 0; trial < 30; ++trial) {
    size_t a = rng() % a_vals.size();
    size_t b = a + rng() % (a_vals.size() - a + 1);
    __int128 expected = 0;
    for (size_t i = a; i < b; ++i) {
      expected += static_cast<__int128>(a_vals[i]) * b_vals[i];
    }
    __int128 cross = 0;
    ASSERT_TRUE(
        FusedCrossDeltaRle(pa.value(), pb.value(), a, b, &cross).ok());
    EXPECT_TRUE(cross == expected) << a << ":" << b;
  }
}

TEST(FusionTest, SumOverflowDetected) {
  // Values near INT64_MAX/2: a range sum of 3+ overflows int64.
  std::vector<int64_t> values(100, INT64_MAX / 2);
  for (size_t i = 1; i < values.size(); ++i) values[i] = values[i - 1] + 1;
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder().Encode(values.data(), values.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  Result<Ts2DiffFusedReader> reader =
      Ts2DiffFusedReader::Open(buf.data(), buf.size());
  ASSERT_TRUE(reader.ok());
  int64_t out;
  Status st = reader.value().SumRange(0, 100, &out);
  EXPECT_EQ(st.code(), StatusCode::kOverflow);
  // A 1-element range is fine.
  ASSERT_TRUE(reader.value().SumRange(0, 1, &out).ok());
  EXPECT_EQ(out, INT64_MAX / 2);
}

// ----------------------------------------------------------- Pruning

TEST(PruningTest, TimeRangePositionsMatchReference) {
  std::mt19937_64 rng(59);
  std::vector<int64_t> times(3000);
  int64_t t = 0;
  for (auto& x : times) {
    t += 1 + static_cast<int64_t>(rng() % 20);
    x = t;
  }
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(256).Encode(times.data(), times.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());

  for (bool prune : {false, true}) {
    for (int trial = 0; trial < 60; ++trial) {
      int64_t lo = static_cast<int64_t>(rng() % (t + 200)) - 100;
      int64_t hi = lo + static_cast<int64_t>(rng() % (t / 2 + 1));
      TimeRange range{lo, hi};
      size_t first = 0, last = 0;
      ASSERT_TRUE(TimeRangePositions(buf.data(), buf.size(), times.size(),
                                     range, DecodeStrategy::kEtsqp, 0, prune,
                                     &first, &last, nullptr, nullptr)
                      .ok());
      size_t ref_first =
          std::lower_bound(times.begin(), times.end(), lo) - times.begin();
      size_t ref_last =
          std::upper_bound(times.begin(), times.end(), hi) - times.begin();
      if (ref_first >= ref_last) {
        EXPECT_EQ(first, last) << "prune=" << prune << " [" << lo << ","
                               << hi << "]";
      } else {
        EXPECT_EQ(first, ref_first)
            << "prune=" << prune << " [" << lo << "," << hi << "]";
        EXPECT_EQ(last, ref_last)
            << "prune=" << prune << " [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST(PruningTest, ConstantIntervalDirectPositions) {
  std::vector<int64_t> times(2048);
  for (size_t i = 0; i < times.size(); ++i) {
    times[i] = 1000 + static_cast<int64_t>(i) * 10;
  }
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(1024).Encode(times.data(), times.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  size_t first = 0, last = 0;
  uint64_t scanned = 0;
  ASSERT_TRUE(TimeRangePositions(buf.data(), buf.size(), times.size(),
                                 TimeRange{1500, 2504}, DecodeStrategy::kEtsqp,
                                 0, /*prune=*/true, &first, &last, nullptr,
                                 &scanned)
                  .ok());
  EXPECT_EQ(first, 50u);
  EXPECT_EQ(last, 151u);  // t=2500 at index 150 inclusive
  EXPECT_EQ(scanned, 0u);  // no decoding: direct arithmetic
}

TEST(PruningTest, PrunesBlocksBelowRange) {
  std::vector<int64_t> times(4096);
  for (size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<int64_t>(i) * 10 + static_cast<int64_t>(i % 7);
  }
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(256).Encode(times.data(), times.size());
  AlignedBuffer buf;
  buf.Assign(col.bytes.data(), col.bytes.size());
  size_t first = 0, last = 0;
  uint64_t pruned = 0;
  ASSERT_TRUE(TimeRangePositions(buf.data(), buf.size(), times.size(),
                                 TimeRange{38000, 39000},
                                 DecodeStrategy::kEtsqp, 0, true, &first,
                                 &last, &pruned, nullptr)
                  .ok());
  EXPECT_GT(pruned, 10u);  // most leading blocks skipped undecoded
  size_t ref_first =
      std::lower_bound(times.begin(), times.end(), 38000) - times.begin();
  EXPECT_EQ(first, ref_first);
}

TEST(PruningTest, ValueBlockPrunableIsSound) {
  std::mt19937_64 rng(61);
  std::vector<int64_t> values = RandomWalk(2000, 61, 0, 500);
  enc::EncodedColumn col =
      enc::Ts2DiffEncoder(128).Encode(values.data(), values.size());
  auto parsed = enc::Ts2DiffColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  for (int trial = 0; trial < 100; ++trial) {
    int64_t lo = static_cast<int64_t>(rng() % 20000) - 10000;
    int64_t hi = lo + static_cast<int64_t>(rng() % 5000);
    for (const enc::Ts2DiffBlock& b : parsed.value().blocks()) {
      if (!ValueBlockPrunable(b, lo, hi)) continue;
      // Soundness: no value in the pruned block may satisfy the filter.
      for (uint32_t i = 0; i < b.num_values(); ++i) {
        int64_t v = values[b.start_index + i];
        EXPECT_TRUE(v < lo || v > hi) << "pruned block contains match";
      }
    }
  }
}

TEST(PruningTest, DeltaRleBoundsContainAllValues) {
  std::vector<int64_t> values = RunnyWalk(3000, 67);
  enc::EncodedColumn col =
      enc::DeltaRleEncoder().Encode(values.data(), values.size());
  auto parsed = enc::DeltaRleColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  int64_t lo, hi;
  DeltaRleValueBounds(parsed.value(), &lo, &hi);
  for (int64_t v : values) {
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

// ----------------------------------------------------------- Scheduler

TEST(SchedulerTest, PipelineJobsExecuteAll) {
  std::vector<int> hits(100, 0);
  PipelineJobSet set;
  set.num_jobs = 100;
  set.job = [&](size_t i) -> Status {
    hits[i]++;
    return Status::Ok();
  };
  ASSERT_TRUE(
      RunPipelineJobs(set, PipelineOptions::Etsqp(4), nullptr).ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SchedulerTest, PipelineJobsSingleThreadRunInOrder) {
  std::vector<size_t> order;
  PipelineJobSet set;
  set.num_jobs = 10;
  set.job = [&](size_t i) -> Status {
    order.push_back(i);
    return Status::Ok();
  };
  ASSERT_TRUE(RunPipelineJobs(set, PipelineOptions::Serial(), nullptr).ok());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, OnePagePerJobWhenPagesOutnumberCores) {
  std::vector<size_t> counts(10, 4096);
  auto slices = PlanSlices(counts, 4, 1024);
  ASSERT_EQ(slices.size(), 10u);
  for (size_t p = 0; p < 10; ++p) {
    EXPECT_EQ(slices[p].page_index, p);
    EXPECT_EQ(slices[p].begin, 0u);
    EXPECT_EQ(slices[p].end, 4096u);
  }
}

TEST(SchedulerTest, SlicesWhenCoresOutnumberPages) {
  std::vector<size_t> counts(2, 8192);
  auto slices = PlanSlices(counts, 8, 1024);
  EXPECT_GT(slices.size(), 2u);
  EXPECT_LE(slices.size(), 8u);
  // Slices tile each page exactly, block-aligned.
  size_t covered = 0;
  for (const PageSlice& s : slices) {
    EXPECT_EQ(s.begin % 1024, 0u);
    covered += s.end - s.begin;
  }
  EXPECT_EQ(covered, 2u * 8192u);
}

TEST(SchedulerTest, TinyPagesDoNotOverSlice) {
  std::vector<size_t> counts = {100};
  auto slices = PlanSlices(counts, 16, 1024);
  ASSERT_EQ(slices.size(), 1u);  // one block: cannot split further
  EXPECT_EQ(slices[0].end, 100u);
}

// ----------------------------------------------------------- Cost model

TEST(CostModelTest, OptimalNvMatchesPaperExamples) {
  // Figure 4: width 10 -> 6 vectors; Example 4 (width 25) -> small n_v.
  EXPECT_EQ(OptimalNv(10), 6);
  int nv25 = OptimalNv(25);
  EXPECT_GE(nv25, 2);
  EXPECT_LE(nv25, 5);
}

TEST(CostModelTest, AverageTimeConvex) {
  CostConstants c;
  // T_AVG(n_v) should dip then rise: the Proposition 1 optimum is interior.
  double t1 = AverageDecodeTime(10, 32, 1, c);
  double topt = AverageDecodeTime(10, 32, 4, c);
  double t16 = AverageDecodeTime(10, 32, 16, c);
  EXPECT_LT(topt, t1);
  EXPECT_LT(topt, t16);
}

TEST(CostModelTest, OptimalNvRealFormula) {
  CostConstants c;
  double nv = OptimalNvReal(10, 32, c);
  // sqrt(32/10 * 11/2) ~ 4.2 with the paper's constants.
  EXPECT_NEAR(nv, std::sqrt(32.0 / 10.0 * (c.t_prefix - c.t_add) /
                            c.t_unpack),
              1e-9);
  EXPECT_GT(nv, 1.0);
  EXPECT_LT(nv, 16.0);
}

TEST(CostModelTest, OptimalNvEdgeWidths) {
  // Width 1: narrowest packing — the feasible-layout clamp tops out at the
  // kernels' 16-vector maximum.
  EXPECT_EQ(OptimalNv(1), 16);
  // Out-of-domain widths (non-positive, or past the 25-bit transposed
  // limit) take the scalar path: one vector.
  EXPECT_EQ(OptimalNv(0), 1);
  EXPECT_EQ(OptimalNv(-3), 1);
  EXPECT_EQ(OptimalNv(26), 1);
  EXPECT_EQ(OptimalNv(32), 1);
  EXPECT_EQ(OptimalNv(64), 1);
}

TEST(CostModelTest, OptimalNvRealEdgeWidths) {
  CostConstants c;
  // w == w': no packing left; the optimum is the pure instruction ratio.
  EXPECT_NEAR(OptimalNvReal(32, 32, c),
              std::sqrt((c.t_prefix - c.t_add) / c.t_unpack), 1e-9);
  // n_v* scales with sqrt(w'): the 64-bit unpack target wants sqrt(2) more
  // vectors than the 32-bit one at any width.
  EXPECT_NEAR(OptimalNvReal(8, 64, c),
              std::sqrt(2.0) * OptimalNvReal(8, 32, c), 1e-9);
  // Degenerate unpacked_width < width (packing wider than the target lane):
  // the real optimum falls below one vector — the caller must clamp.
  EXPECT_LT(OptimalNvReal(64, 8, c), 1.0);
  EXPECT_GT(OptimalNvReal(64, 8, c), 0.0);
}

TEST(CostModelTest, AverageDecodeTimeFiniteAtDegenerateWidths) {
  CostConstants c;
  // Width 1 at the clamped optimum decodes far below the serial cost.
  double w1 = AverageDecodeTime(1, 32, OptimalNv(1), c);
  EXPECT_GT(w1, 0.0);
  EXPECT_LT(w1, 2.0);
  // unpacked_width < width: infeasible for the kernels, but the model must
  // stay finite and positive (the registry may evaluate it when bucketing).
  double degenerate = AverageDecodeTime(32, 16, 2, c);
  EXPECT_TRUE(std::isfinite(degenerate));
  EXPECT_GT(degenerate, 0.0);
  // At fixed unpacked width the per-tuple cost is monotone in packing
  // width: more loads per round for the same decoded count.
  EXPECT_GT(AverageDecodeTime(32, 32, 4, c), AverageDecodeTime(8, 32, 4, c));
}

TEST(CostModelTest, SpeedupScalesWithThreads) {
  CostConstants c;
  double s1 = EstimatedSpeedup(10, 32, 1, c);
  double s16 = EstimatedSpeedup(10, 32, 16, c);
  EXPECT_GT(s1, 1.0);
  EXPECT_NEAR(s16 / s1, 16.0, 1e-9);
  // The paper's headline for 10-bit TS2DIFF with 16 threads is ~15.3x;
  // the model must at least predict that much at cache-hit access ratios
  // (Theorem 2 says the ratio grows with t_visMem / t_op).
  EXPECT_GT(s16, 15.0);
  EXPECT_LT(s16, 1000.0);
  CostConstants slow = c;
  slow.t_vis_mem = 40.0;
  EXPECT_GT(EstimatedSpeedup(10, 32, 16, slow), s16);
}

}  // namespace
}  // namespace etsqp::exec
