// Failure injection: decoders and parsers must handle corrupted, truncated,
// and adversarial inputs by returning an error Status (or, where headers
// cannot self-validate, bounded garbage) — never by crashing or reading out
// of bounds. These tests hammer every Parse/Decode entry point with
// truncations and random bit flips.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "common/aligned_buffer.h"
#include "db/iotdb_lite.h"
#include "encoding/chimp.h"
#include "encoding/delta_rle.h"
#include "encoding/elf.h"
#include "encoding/fastlanes.h"
#include "encoding/generic_compress.h"
#include "encoding/gorilla.h"
#include "encoding/rlbe.h"
#include "encoding/sprintz.h"
#include "encoding/ts2diff.h"
#include "exec/column_decoder.h"
#include "exec/engine.h"
#include "sql/planner.h"
#include "storage/page.h"

namespace etsqp {
namespace {

std::vector<int64_t> SampleSeries(size_t n) {
  std::mt19937_64 rng(1234);
  std::vector<int64_t> v(n);
  int64_t x = 777;
  for (auto& y : v) {
    x += static_cast<int64_t>(rng() % 101) - 50;
    y = x;
  }
  return v;
}

/// Decode attempts over a corrupted blob must not crash; errors are fine.
void TryDecode(enc::ColumnEncoding encoding, const std::vector<uint8_t>& raw,
               uint32_t count) {
  AlignedBuffer buf;
  buf.Assign(raw.data(), raw.size());
  exec::DecodedColumn out;
  // May fail or produce garbage values; must return.
  exec::DecodeColumn(buf.data(), buf.size(), encoding, count,
                     exec::DecodeStrategy::kEtsqp, 0, &out)
      .ok();
  exec::DecodeColumn(buf.data(), buf.size(), encoding, count,
                     exec::DecodeStrategy::kSerial, 0, &out)
      .ok();
}

class TruncationTest : public ::testing::TestWithParam<enc::ColumnEncoding> {};

TEST_P(TruncationTest, EveryPrefixIsHandled) {
  std::vector<int64_t> values = SampleSeries(500);
  storage::PageOptions opt;
  opt.value_encoding = GetParam();
  std::vector<int64_t> times(values.size());
  for (size_t i = 0; i < times.size(); ++i) times[i] = 1 + 2 * i;
  auto page = storage::BuildPage(times.data(), values.data(), values.size(),
                                 opt);
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> blob(page.value().value_data.data(),
                            page.value().value_data.data() +
                                page.value().header.value_bytes);
  // Exhaustive small prefixes + sampled larger ones.
  for (size_t len = 0; len < std::min<size_t>(blob.size(), 64); ++len) {
    TryDecode(GetParam(), {blob.begin(), blob.begin() + len}, 500);
  }
  for (size_t len = 64; len < blob.size(); len += 37) {
    TryDecode(GetParam(), {blob.begin(), blob.begin() + len}, 500);
  }
}

TEST_P(TruncationTest, RandomBitFlipsAreHandled) {
  std::vector<int64_t> values = SampleSeries(800);
  storage::PageOptions opt;
  opt.value_encoding = GetParam();
  std::vector<int64_t> times(values.size());
  for (size_t i = 0; i < times.size(); ++i) times[i] = 1 + 2 * i;
  auto page = storage::BuildPage(times.data(), values.data(), values.size(),
                                 opt);
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> blob(page.value().value_data.data(),
                            page.value().value_data.data() +
                                page.value().header.value_bytes);
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = blob;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      size_t bit = rng() % (mutated.size() * 8);
      mutated[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
    }
    TryDecode(GetParam(), mutated, 800);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, TruncationTest,
    ::testing::Values(enc::ColumnEncoding::kTs2Diff,
                      enc::ColumnEncoding::kDeltaRle,
                      enc::ColumnEncoding::kRlbe,
                      enc::ColumnEncoding::kSprintz,
                      enc::ColumnEncoding::kFastLanes,
                      enc::ColumnEncoding::kGorilla,
                      enc::ColumnEncoding::kPlain));

TEST(RobustnessTest, FloatCodecsSurviveCorruption) {
  std::mt19937_64 rng(7);
  std::vector<double> values(300);
  double v = 1.5;
  for (auto& x : values) x = (v += 0.25);
  enc::EncodedColumn chimp =
      enc::ChimpEncoder().EncodeDoubles(values.data(), values.size());
  enc::EncodedColumn gorilla =
      enc::GorillaValueEncoder().EncodeDoubles(values.data(), values.size());
  enc::EncodedColumn elf =
      enc::ElfEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(300);
  for (int trial = 0; trial < 100; ++trial) {
    for (enc::EncodedColumn* col : {&chimp, &gorilla, &elf}) {
      enc::EncodedColumn mutated = *col;
      size_t bit = rng() % (mutated.bytes.size() * 8);
      mutated.bytes[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
      // Must not crash; error status or wrong values are acceptable.
      if (col == &chimp) {
        enc::ChimpDecodeDoubles(mutated, out.data()).ok();
      } else if (col == &gorilla) {
        enc::GorillaValueDecodeDoubles(mutated, out.data()).ok();
      } else {
        enc::ElfDecodeDoubles(mutated, out.data()).ok();
      }
    }
  }
}

TEST(RobustnessTest, LzRejectsCorruptTokens) {
  std::mt19937_64 rng(13);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng() % 7);  // compressible
  std::vector<uint8_t> lz = enc::LzCompress(data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(
      enc::LzDecompress(lz.data(), lz.size(), out.data(), data.size()).ok());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = lz;
    size_t i = rng() % mutated.size();
    mutated[i] = static_cast<uint8_t>(rng());
    enc::LzDecompress(mutated.data(), mutated.size(), out.data(), data.size())
        .ok();  // no crash, no overrun (would trip ASAN/valgrind)
  }
}

TEST(RobustnessTest, PageDeserializeFuzz) {
  std::vector<int64_t> values = SampleSeries(200);
  std::vector<int64_t> times(values.size());
  for (size_t i = 0; i < times.size(); ++i) times[i] = i + 1;
  auto page = storage::BuildPage(times.data(), values.data(), values.size(),
                                 storage::PageOptions{});
  ASSERT_TRUE(page.ok());
  std::vector<uint8_t> bytes;
  storage::SerializePage(page.value(), &bytes);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng() % mutated.size()] = static_cast<uint8_t>(rng());
    storage::Page out;
    size_t pos = 0;
    storage::DeserializePage(mutated.data(), mutated.size(), &pos, &out).ok();
  }
}

TEST(RobustnessTest, SqlFuzzNeverCrashes) {
  std::mt19937_64 rng(23);
  const char alphabet[] =
      "SELECT FROM WHERE AND SW UNION ORDER BY TIME sum avg a.b , ( ) * + - "
      "0123456789 <= >= < > = ;";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q;
    size_t len = rng() % 60;
    for (size_t i = 0; i < len; ++i) {
      q += alphabet[rng() % (sizeof(alphabet) - 1)];
    }
    sql::PlanQuery(q).ok();  // error status or a plan; never a crash
  }
}

TEST(RobustnessTest, ConcurrentQueriesShareStore) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
  std::vector<int64_t> t(50000), v(50000);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<int64_t>(i + 1);
    v[i] = static_cast<int64_t>(i % 1000);
  }
  ASSERT_TRUE(dbi.InsertBatch("s", t.data(), v.data(), t.size()).ok());
  ASSERT_TRUE(dbi.Flush().ok());

  // Engine::Execute is const over an immutable store: many threads may
  // query concurrently.
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&dbi, &failures, w] {
      const char* queries[] = {
          "SELECT SUM(v) FROM s",
          "SELECT AVG(v) FROM s WHERE time >= 100 AND time <= 40000",
          "SELECT COUNT(v) FROM s WHERE v > 500",
          "SELECT MAX(v) FROM s SW(0, 5000)",
      };
      for (int i = 0; i < 20; ++i) {
        auto r = dbi.Query(queries[(w + i) % 4]);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace etsqp
