// Pruning-index correctness: SIMD kernel variants against a scalar
// reference, the OrderedValueKey domain (negative doubles, negative zero,
// NaN), leaf/envelope consistency with the page headers, and the
// differential harness — randomized workloads (mixed codecs, OOO buffers,
// tombstones, TTL, tail data, NaN floats) asserting the index never
// schedules a different job set than the linear header walk and that query
// results are byte-identical with the index on and off, across ISA
// variants. The *Concurrency* staleness tests live in ingest_test.cc /
// compaction_test.cc next to the subsystems they race.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <tuple>
#include <vector>

#include "common/cpu.h"
#include "db/database.h"
#include "exec/engine.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include "exec/scheduler_registry.h"
#include "simd/prune_simd.h"
#include "simd/transposed_unpack_avx512.h"
#include "storage/pruning_index.h"
#include "storage/series_store.h"

namespace etsqp {
namespace {

using exec::AggFunc;
using exec::Engine;
using exec::LogicalPlan;
using exec::PipelineOptions;
using exec::PipelineSpec;
using exec::QueryResult;
using exec::TimeRange;
using exec::ValueRange;
using storage::OrderedValueKey;
using storage::PruneLeaves;
using storage::PruneProbe;
using storage::PruneProbeStats;
using storage::SeriesSnapshot;
using storage::SeriesStore;

// ------------------------------------------------- key domain

TEST(OrderedValueKeyTest, PreservesOrdering) {
  const double values[] = {-std::numeric_limits<double>::infinity(),
                           -1e300,
                           -3.5,
                           -1.0,
                           -1e-300,
                           0.0,
                           1e-300,
                           0.25,
                           1.0,
                           7.5,
                           1e300,
                           std::numeric_limits<double>::infinity()};
  for (size_t i = 1; i < sizeof(values) / sizeof(values[0]); ++i) {
    EXPECT_LT(OrderedValueKey(values[i - 1]), OrderedValueKey(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

TEST(OrderedValueKeyTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(OrderedValueKey(-0.0), OrderedValueKey(0.0));
}

// ------------------------------------------------- kernel differential

bool RefSurvives(int64_t tmin, int64_t tmax, int64_t vmin, int64_t vmax,
                 int64_t t_lo, int64_t t_hi, bool value_active, int64_t v_lo,
                 int64_t v_hi) {
  return tmin <= t_hi && tmax >= t_lo &&
         (!value_active || (vmin <= v_hi && vmax >= v_lo));
}

TEST(PruneSimdTest, KernelVariantsMatchScalarReference) {
  std::mt19937_64 rng(2024);
  auto rand_i64 = [&rng](int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(rng() % static_cast<uint64_t>(
                                               hi - lo + 1));
  };
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = trial < 8 ? static_cast<size_t>(trial)  // 0..7 edges
                               : 1 + rng() % 300;
    std::vector<int64_t> tmin(n), tmax(n), vmin(n), vmax(n);
    for (size_t i = 0; i < n; ++i) {
      tmin[i] = rand_i64(-1000, 1000);
      tmax[i] = tmin[i] + rand_i64(0, 200);
      vmin[i] = rand_i64(-500, 500);
      vmax[i] = vmin[i] + rand_i64(0, 100);
    }
    const int64_t t_lo = rand_i64(-1200, 1200);
    const int64_t t_hi = t_lo + rand_i64(0, 400);
    const bool value_active = trial % 2 == 0;
    const int64_t v_lo = rand_i64(-600, 600);
    const int64_t v_hi = v_lo + rand_i64(0, 150);

    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> ref_mask(words == 0 ? 1 : words, ~uint64_t{0});
    size_t ref_count = 0;
    for (size_t w = 0; w < words; ++w) ref_mask[w] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (RefSurvives(tmin[i], tmax[i], vmin[i], vmax[i], t_lo, t_hi,
                      value_active, v_lo, v_hi)) {
        ref_mask[i >> 6] |= uint64_t{1} << (i & 63);
        ++ref_count;
      }
    }

    std::vector<simd::PruneIsa> isas = {simd::PruneIsa::kScalar};
    if (UseAvx2()) isas.push_back(simd::PruneIsa::kAvx2);
    if (UseAvx2() && simd::Avx512Available()) {
      isas.push_back(simd::PruneIsa::kAvx512);
    }
    for (simd::PruneIsa isa : isas) {
      std::vector<uint64_t> mask(words == 0 ? 1 : words, ~uint64_t{0});
      size_t count =
          simd::PruneScan(tmin.data(), tmax.data(), vmin.data(), vmax.data(),
                          n, t_lo, t_hi, value_active, v_lo, v_hi,
                          mask.data(), isa);
      EXPECT_EQ(count, ref_count)
          << "isa=" << static_cast<int>(isa) << " n=" << n;
      for (size_t w = 0; w < words; ++w) {
        EXPECT_EQ(mask[w], ref_mask[w])
            << "isa=" << static_cast<int>(isa) << " n=" << n << " word=" << w;
      }
    }
  }
}

// ------------------------------------------------- leaves mirror headers

TEST(PruningIndexTest, SnapshotLeavesMirrorPages) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 64;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  std::vector<int64_t> times(500), values(500);
  for (int64_t i = 0; i < 500; ++i) {
    times[i] = i * 10;
    values[i] = (i * 13) % 251 - 125;
  }
  ASSERT_TRUE(store.AppendBatch("s", times.data(), values.data(), 500).ok());
  ASSERT_TRUE(store.Flush().ok());

  auto snap = store.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  const SeriesSnapshot& s = snap.value();
  ASSERT_NE(s.prune_leaves, nullptr);
  ASSERT_EQ(s.prune_leaves->count(), s.pages.size());
  uint64_t tuples = 0;
  for (size_t p = 0; p < s.pages.size(); ++p) {
    const storage::PageHeader& h = s.pages[p]->header;
    EXPECT_EQ(s.prune_leaves->time_min()[p], h.min_time);
    EXPECT_EQ(s.prune_leaves->time_max()[p], h.max_time);
    EXPECT_EQ(s.prune_leaves->value_min()[p], h.min_value);
    EXPECT_EQ(s.prune_leaves->value_max()[p], h.max_value);
    tuples += h.count;
  }
  EXPECT_EQ(s.prune_leaves->total_tuples(), tuples);
  // Envelope covers everything appended.
  EXPECT_TRUE(s.summary.HasData());
  EXPECT_LE(s.summary.time_min, times.front());
  EXPECT_GE(s.summary.time_max, times.back());
}

// ------------------------------------------------- fleet probe

TEST(PruningIndexTest, CountMatchingSeriesNeverUndercounts) {
  SeriesStore store;
  const int kSeries = 200;
  for (int k = 0; k < kSeries; ++k) {
    std::string name = "s" + std::to_string(k);
    SeriesStore::SeriesOptions opt;
    opt.page_size = 32;
    ASSERT_TRUE(store.CreateSeries(name, opt).ok());
    std::vector<int64_t> times(64), values(64);
    for (int64_t i = 0; i < 64; ++i) {
      times[i] = k * 1000 + i;  // staggered, mostly disjoint time ranges
      values[i] = k * 10 + (i % 7);
    }
    ASSERT_TRUE(
        store.AppendBatch(name, times.data(), values.data(), 64).ok());
  }
  ASSERT_TRUE(store.Flush().ok());

  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    PruneProbe probe;
    probe.t_lo = static_cast<int64_t>(rng() % (kSeries * 1000));
    probe.t_hi = probe.t_lo + static_cast<int64_t>(rng() % 5000);
    probe.value_active = trial % 2 == 0;
    probe.v_lo = static_cast<int64_t>(rng() % (kSeries * 10));
    probe.v_hi = probe.v_lo + static_cast<int64_t>(rng() % 100);

    std::vector<std::string> matched;
    PruneProbeStats stats = store.CountMatchingSeries(probe, &matched);
    EXPECT_EQ(stats.series_total, static_cast<uint64_t>(kSeries));
    EXPECT_EQ(stats.series_matched, matched.size());

    // Linear ground truth from the snapshots: a series linearly matches if
    // any page header (or tail point range) passes the same window.
    for (int k = 0; k < kSeries; ++k) {
      std::string name = "s" + std::to_string(k);
      auto snap = store.GetSnapshot(name);
      ASSERT_TRUE(snap.ok());
      bool linear = false;
      for (const auto& page : snap.value().pages) {
        const storage::PageHeader& h = page->header;
        if (h.min_time <= probe.t_hi && h.max_time >= probe.t_lo &&
            (!probe.value_active ||
             (h.min_value <= probe.v_hi && h.max_value >= probe.v_lo))) {
          linear = true;
          break;
        }
      }
      if (linear) {
        EXPECT_NE(std::find(matched.begin(), matched.end(), name),
                  matched.end())
            << "false prune of " << name << " trial " << trial;
      }
    }
  }
}

TEST(PruningIndexTest, DatabaseCountMatchingSeriesSumsShards) {
  db::Database db(db::Database::Options{db::Database::Mode::kSimd,
                                        /*threads=*/1, /*shards=*/4,
                                        /*cache_budget_bytes=*/0});
  for (int k = 0; k < 40; ++k) {
    std::string name = "fleet" + std::to_string(k);
    ASSERT_TRUE(db.CreateTimeseries(name, 128).ok());
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.Insert(name, k * 100 + i, k).ok());
    }
  }
  PruneProbe probe;
  probe.t_lo = 0;
  probe.t_hi = 999;  // series 0..9 (time ranges [k*100, k*100+9])
  std::vector<std::string> matched;
  PruneProbeStats stats = db.CountMatchingSeries(probe, &matched);
  EXPECT_EQ(stats.series_total, 40u);
  EXPECT_EQ(stats.series_matched, 10u);
  EXPECT_EQ(matched.size(), 10u);

  probe.value_active = true;
  probe.v_lo = 35;
  probe.v_hi = 100;  // values are the series index k
  probe.t_lo = std::numeric_limits<int64_t>::min();
  probe.t_hi = std::numeric_limits<int64_t>::max();
  stats = db.CountMatchingSeries(probe);
  EXPECT_EQ(stats.series_matched, 5u);  // k = 35..39
}

// ------------------------------------------------- float regressions

TEST(PruningIndexTest, NanPageIsNeverValuePruned) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 8;
  opt.page.value_encoding = enc::ColumnEncoding::kGorillaValue;
  ASSERT_TRUE(store.CreateSeries("f", opt).ok());
  // One full page whose max lands on NaN mid-stream: finite bounds over the
  // rest would value-prune it, silently dropping the NaN tuples that pass
  // every filter compare downstream.
  std::vector<int64_t> times = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> values = {1.0,
                                2.0,
                                std::numeric_limits<double>::quiet_NaN(),
                                1.5,
                                2.5,
                                1.0,
                                2.0,
                                1.5};
  ASSERT_TRUE(
      store.AppendBatchF64("f", times.data(), values.data(), 8).ok());
  ASSERT_TRUE(store.Flush().ok());

  auto snap = store.GetSnapshot("f");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap.value().pages.size(), 1u);
  // The header's bounds must be poisoned, not computed over the rest.
  double hmax;
  std::memcpy(&hmax, &snap.value().pages[0]->header.max_value, 8);
  EXPECT_TRUE(std::isnan(hmax));

  // COUNT with a value filter far above the finite values: the engine's
  // float drains skip a tuple via (v < lo || v > hi), so a NaN passes every
  // value filter (both compares are false) and must be counted — which
  // requires the page to be scanned, not pruned, index on or off. Finite
  // header bounds over the non-NaN rest would have value-pruned the page
  // and silently returned 0.
  LogicalPlan plan = LogicalPlan::Aggregate("f", AggFunc::kCount);
  plan.value_filter.active = true;
  plan.value_filter.lo = 100;
  plan.value_filter.hi = 200;
  for (bool index_on : {true, false}) {
    Engine engine(PipelineOptions::EtsqpPrune(1).WithPruneIndex(index_on));
    auto result = engine.Execute(plan, store);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().stats.pages_pruned, 0u) << "index=" << index_on;
    EXPECT_EQ(result.value().columns[0][0], 1.0) << "index=" << index_on;
  }
}

TEST(PruningIndexTest, NegativeFloatBoundsPruneCorrectly) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 4;
  opt.page.value_encoding = enc::ColumnEncoding::kGorillaValue;
  ASSERT_TRUE(store.CreateSeries("f", opt).ok());
  // Page 0: all negative; page 1: spans zero (max is -0.0 in page 0's
  // successor boundary case exercised below); page 2: all positive.
  std::vector<int64_t> times = {0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23};
  std::vector<double> values = {-8.0, -6.5, -7.0, -5.0, -1.0, -0.0, 0.5, 1.0,
                                4.0,  5.5,  6.0,  7.25};
  ASSERT_TRUE(
      store.AppendBatchF64("f", times.data(), values.data(), 12).ok());
  ASSERT_TRUE(store.Flush().ok());

  // Filter [0, 10]: page 1's max boundary is -0.0 on the lo edge for the
  // -0.0 tuple and 1.0 above it — the page must survive (bit-pattern
  // compares would prune it: -0.0 and negative doubles order backwards as
  // raw int64). Expected matches: -0.0, 0.5, 1.0 and all of page 2.
  LogicalPlan plan = LogicalPlan::Aggregate("f", AggFunc::kCount);
  plan.value_filter.active = true;
  plan.value_filter.lo = 0;
  plan.value_filter.hi = 10;
  double expected = 7.0;
  for (bool index_on : {true, false}) {
    Engine engine(PipelineOptions::EtsqpPrune(1).WithPruneIndex(index_on));
    auto result = engine.Execute(plan, store);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().columns[0][0], expected) << "index=" << index_on;
    // Page 0 (all negative) is the only prunable one.
    EXPECT_EQ(result.value().stats.pages_pruned, 1u) << "index=" << index_on;
  }
}

// ------------------------------------------------- differential fuzz

/// The job set a pipeline schedules, normalized for comparison (decision
/// indices differ between index-on and index-off plans — the prune class
/// adds a registry row — so they are excluded).
std::vector<std::tuple<int, size_t, size_t, size_t, bool, bool>> JobSet(
    const PipelineSpec& spec) {
  std::vector<std::tuple<int, size_t, size_t, size_t, bool, bool>> out;
  out.reserve(spec.jobs.size());
  for (const auto& j : spec.jobs) {
    out.emplace_back(j.input, j.page_index, j.begin, j.end, j.tail, j.masked);
  }
  return out;
}

bool BitIdentical(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].size() != b[c].size()) return false;
    if (a[c].size() > 0 &&
        std::memcmp(a[c].data(), b[c].data(), a[c].size() * 8) != 0) {
      return false;
    }
  }
  return true;
}

/// One randomized round: build a series with random codec / page size /
/// tail / OOO buffer / tombstones / TTL (and NaNs when float), run one
/// random query with the pruning index on and off, and require (a) the
/// identical job set — the index never prunes a series/page the linear
/// header walk keeps, nor the reverse — and (b) byte-identical result
/// columns.
void RunFuzzRound(uint64_t round) {
  std::mt19937_64 rng(round * 2654435761u + 17);
  const bool is_float = round % 4 == 3;

  SeriesStore::SeriesOptions opt;
  const uint32_t page_sizes[] = {16, 32, 64, 128};
  opt.page_size = page_sizes[rng() % 4];
  if (is_float) {
    const enc::ColumnEncoding fencs[] = {enc::ColumnEncoding::kGorillaValue,
                                         enc::ColumnEncoding::kChimpValue,
                                         enc::ColumnEncoding::kElfValue};
    opt.page.value_encoding = fencs[rng() % 3];
  } else {
    const enc::ColumnEncoding iencs[] = {
        enc::ColumnEncoding::kTs2Diff,    enc::ColumnEncoding::kDeltaRle,
        enc::ColumnEncoding::kRlbe,       enc::ColumnEncoding::kSprintz,
        enc::ColumnEncoding::kFastLanes,  enc::ColumnEncoding::kStreamVByte};
    opt.page.value_encoding = iencs[rng() % 6];
  }
  opt.allow_out_of_order = rng() % 5 == 0;

  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());

  const size_t n = 40 + rng() % 200;
  std::vector<int64_t> times(n);
  std::vector<int64_t> ivalues(n);
  std::vector<double> fvalues(n);
  int64_t t = static_cast<int64_t>(rng() % 50);
  int64_t v = static_cast<int64_t>(rng() % 200) - 100;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 4);
    v += static_cast<int64_t>(rng() % 21) - 10;
    times[i] = t;
    ivalues[i] = v;
    fvalues[i] = (rng() % 40 == 0)
                     ? std::numeric_limits<double>::quiet_NaN()
                     : static_cast<double>(v) + 0.25 * (rng() % 4);
  }
  if (is_float) {
    ASSERT_TRUE(
        store.AppendBatchF64("s", times.data(), fvalues.data(), n).ok());
  } else {
    ASSERT_TRUE(
        store.AppendBatch("s", times.data(), ivalues.data(), n).ok());
  }
  if (rng() % 2 == 0) {  // else keep a live tail
    ASSERT_TRUE(store.Flush().ok());
  }

  if (opt.allow_out_of_order && !is_float) {
    // A late batch: the OOO prefix lands in the overlap buffer (invisible
    // to queries, but it still widens the envelope — conservatively).
    int64_t late[] = {times[0] + 1, times[n - 1] + 1};
    int64_t lval[] = {9999, -9999};
    ASSERT_TRUE(store.AppendBatch("s", late, lval, 2).ok());
  }
  if (rng() % 4 == 0) {
    int64_t d0 = times[rng() % n];
    ASSERT_TRUE(store.DeleteRange("s", d0, d0 + 40).ok());
  }
  if (rng() % 10 == 0) {
    ASSERT_TRUE(store.SetTtl("s", (times[n - 1] - times[0]) / 2).ok());
  }

  // Random query shape.
  const AggFunc funcs[] = {AggFunc::kSum, AggFunc::kCount, AggFunc::kMin,
                           AggFunc::kMax, AggFunc::kAvg};
  LogicalPlan plan = LogicalPlan::Aggregate("s", funcs[rng() % 5]);
  if (!is_float && rng() % 3 == 0) plan.kind = LogicalPlan::Kind::kSelect;
  if (rng() % 4 != 0) {
    plan.time_filter.lo = times[rng() % n] - static_cast<int64_t>(rng() % 20);
    plan.time_filter.hi =
        plan.time_filter.lo + static_cast<int64_t>(rng() % (4 * n));
  }
  if (rng() % 5 != 0) {
    plan.value_filter.active = true;
    plan.value_filter.lo = v - static_cast<int64_t>(rng() % 150);
    plan.value_filter.hi =
        plan.value_filter.lo + static_cast<int64_t>(rng() % 120);
  }

  // Rotate the planning mode so every prune datapath is exercised: the
  // registry (etsqp.prune.* entries), the pinned-SIMD default, and the
  // pinned-serial scalar scan.
  PipelineOptions base;
  switch (round % 3) {
    case 0:
      base = PipelineOptions::EtsqpPrune(1);
      break;
    case 1:
      base = PipelineOptions::Etsqp(1).WithRegistry(false).WithPrune(true);
      break;
    default:
      base = PipelineOptions::Serial().WithPrune(true);
      break;
  }

  // (a) Job-set equality, straight off the compiled pipelines.
  auto snap = store.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  std::vector<SeriesSnapshot> inputs;
  inputs.push_back(std::move(snap).value());
  auto spec_on =
      BuildPipeline(plan, inputs, PipelineOptions(base).WithPruneIndex(true));
  auto spec_off = BuildPipeline(plan, inputs,
                                PipelineOptions(base).WithPruneIndex(false));
  ASSERT_TRUE(spec_on.ok());
  ASSERT_TRUE(spec_off.ok());
  EXPECT_EQ(JobSet(spec_on.value()), JobSet(spec_off.value()))
      << "round " << round << " job sets diverge";
  EXPECT_EQ(spec_on.value().plan_stats.pages_pruned,
            spec_off.value().plan_stats.pages_pruned)
      << "round " << round;

  // (b) Byte-identical results.
  Engine on(PipelineOptions(base).WithPruneIndex(true));
  Engine off(PipelineOptions(base).WithPruneIndex(false));
  auto r_on = on.Execute(plan, store);
  auto r_off = off.Execute(plan, store);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_TRUE(BitIdentical(r_on.value().columns, r_off.value().columns))
      << "round " << round << " results diverge";
}

TEST(PruningDifferentialTest, FuzzIndexOnVsOff1100Rounds) {
  for (uint64_t round = 0; round < 1100; ++round) {
    RunFuzzRound(round);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "first failing round: " << round;
    }
  }
}

TEST(PruningDifferentialTest, ScalarFallbackWhenSimdDisabled) {
  SetSimdDisabledForTesting(true);
  EXPECT_EQ(simd::BestPruneIsa(), simd::PruneIsa::kScalar);
  for (uint64_t round = 0; round < 32; ++round) {
    RunFuzzRound(round);
  }
  SetSimdDisabledForTesting(false);
}

// The "prune" class is schedulable and prefers the widest available ISA.
TEST(PruneSchedulerTest, RegistrySchedulesPruneClass) {
  exec::PageClass cls = exec::ClassifyPrune();
  EXPECT_EQ(cls.Key(), "prune");
  exec::PlanContext ctx;
  exec::ScheduleDecision d = exec::SchedulerRegistry::Global().Propose(
      cls, ctx, nullptr, exec::CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  std::string name = d.entry->name();
  EXPECT_EQ(name.rfind("etsqp.prune.", 0), 0u) << name;
  if (UseAvx2() && simd::Avx512Available()) {
    EXPECT_EQ(exec::PruneEntryIsa(name), simd::PruneIsa::kAvx512);
  } else if (UseAvx2()) {
    EXPECT_EQ(exec::PruneEntryIsa(name), simd::PruneIsa::kAvx2);
  } else {
    EXPECT_EQ(exec::PruneEntryIsa(name), simd::PruneIsa::kScalar);
  }
}

TEST(PruneSchedulerTest, CalibrationCoversPruneEntries) {
  exec::CostCalibration cal = exec::CostCalibration::Measure();
  double ns = 0;
  EXPECT_TRUE(cal.Lookup("etsqp.prune.scalar", "prune", &ns));
  EXPECT_GT(ns, 0.0);
  if (UseAvx2()) {
    EXPECT_TRUE(cal.Lookup("etsqp.prune.avx2", "prune", &ns));
  }
}

// Index counters flow into ExecStats and the rendered profile.
TEST(PruneStatsTest, SeriesPruneCountersReported) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 16;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  std::vector<int64_t> times(64), values(64);
  for (int64_t i = 0; i < 64; ++i) {
    times[i] = i;
    values[i] = i;
  }
  ASSERT_TRUE(store.AppendBatch("s", times.data(), values.data(), 64).ok());
  ASSERT_TRUE(store.Flush().ok());

  LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kSum);
  plan.time_filter.lo = 100000;  // misses the whole series
  plan.time_filter.hi = 200000;
  Engine engine(PipelineOptions::Etsqp(1).WithStats(true));
  auto result = engine.Execute(plan, store);
  ASSERT_TRUE(result.ok());
  const exec::ExecStats& stats = result.value().stats;
  EXPECT_EQ(stats.series_pruned, 1u);
  EXPECT_EQ(stats.pages_pruned_index, 4u);
  EXPECT_EQ(stats.pages_pruned, 4u);
  EXPECT_EQ(stats.pages_total, 4u);
  EXPECT_EQ(stats.tuples_in_pages, 64u);
  // Aggregates always emit one row; the empty-match sum is 0.
  ASSERT_EQ(result.value().columns[0].size(), 1u);
  EXPECT_EQ(result.value().columns[0][0], 0.0);
  // JSON export carries the counters.
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"series_pruned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pages_pruned_index\": 4"), std::string::npos);
}

}  // namespace
}  // namespace etsqp
