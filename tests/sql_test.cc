#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace etsqp::sql {
namespace {

using exec::AggFunc;
using exec::LogicalPlan;

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Lex("SELECT SUM(v) FROM ts;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 9u);  // incl. kEnd
  EXPECT_EQ(t[0].kind, TokenKind::kSelect);
  EXPECT_EQ(t[1].kind, TokenKind::kIdent);
  EXPECT_EQ(t[1].text, "SUM");
  EXPECT_EQ(t[2].kind, TokenKind::kLParen);
  EXPECT_EQ(t[5].kind, TokenKind::kFrom);
  EXPECT_EQ(t[7].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select from WHERE And sw UNION order BY time");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, TokenKind::kSelect);
  EXPECT_EQ(t[1].kind, TokenKind::kFrom);
  EXPECT_EQ(t[2].kind, TokenKind::kWhere);
  EXPECT_EQ(t[3].kind, TokenKind::kAnd);
  EXPECT_EQ(t[4].kind, TokenKind::kSw);
  EXPECT_EQ(t[5].kind, TokenKind::kUnion);
  EXPECT_EQ(t[6].kind, TokenKind::kOrder);
  EXPECT_EQ(t[7].kind, TokenKind::kBy);
  EXPECT_EQ(t[8].kind, TokenKind::kTime);
}

TEST(LexerTest, NumbersAndComparisons) {
  auto tokens = Lex("time >= 100 AND value < -25");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[1].kind, TokenKind::kGe);
  EXPECT_EQ(t[2].number, 100);
  EXPECT_EQ(t[5].kind, TokenKind::kLt);
  EXPECT_EQ(t[6].number, -25);
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Lex("SELECT @ FROM ts").ok());
}

TEST(ParserTest, Q1SlidingWindowSum) {
  auto stmt = Parse("SELECT SUM(A) FROM ts SW(0, 1000);");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = stmt.value();
  EXPECT_EQ(s.item.kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(s.item.func, "sum");
  ASSERT_EQ(s.tables.size(), 1u);
  EXPECT_EQ(s.tables[0], "ts");
  EXPECT_TRUE(s.has_window);
  EXPECT_EQ(s.window_t_min, 0);
  EXPECT_EQ(s.window_delta_t, 1000);
}

TEST(ParserTest, Q3ValueFilter) {
  auto stmt = Parse("SELECT SUM(A) FROM ts WHERE A > 42");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt.value().predicates.size(), 1u);
  EXPECT_EQ(stmt.value().predicates[0].column, Comparison::Column::kValue);
  EXPECT_EQ(stmt.value().predicates[0].op, Comparison::Op::kGt);
  EXPECT_EQ(stmt.value().predicates[0].literal, 42);
}

TEST(ParserTest, TimeRangeConjunction) {
  auto stmt =
      Parse("SELECT AVG(v) FROM ts WHERE time >= 100 AND time <= 500;");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt.value().predicates.size(), 2u);
  EXPECT_EQ(stmt.value().predicates[0].column, Comparison::Column::kTime);
  EXPECT_EQ(stmt.value().predicates[1].op, Comparison::Op::kLe);
}

TEST(ParserTest, Q4BinaryProjection) {
  auto stmt = Parse("SELECT ts1.A + ts2.A FROM ts1, ts2;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = stmt.value();
  EXPECT_EQ(s.item.kind, SelectItem::Kind::kBinary);
  EXPECT_EQ(s.item.left_table, "ts1");
  EXPECT_EQ(s.item.right_table, "ts2");
  EXPECT_EQ(s.item.binary_op, '+');
  ASSERT_EQ(s.tables.size(), 2u);
}

TEST(ParserTest, Q5Union) {
  auto stmt = Parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt.value().is_union);
  EXPECT_EQ(stmt.value().tables[0], "ts1");
  EXPECT_EQ(stmt.value().union_right, "ts2");
}

TEST(ParserTest, Q6Join) {
  auto stmt = Parse("SELECT * FROM ts1, ts2;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value().item.kind, SelectItem::Kind::kStar);
  ASSERT_EQ(stmt.value().tables.size(), 2u);
}

TEST(ParserTest, DottedSeriesNames) {
  auto stmt = Parse("SELECT SUM(v) FROM Sine.sine0 SW(0, 10000)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value().tables[0], "Sine.sine0");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("FROM ts").ok());
  EXPECT_FALSE(Parse("SELECT SUM(A FROM ts").ok());
  EXPECT_FALSE(Parse("SELECT SUM(A) FROM ts SW(0)").ok());
  EXPECT_FALSE(Parse("SELECT SUM(A) FROM ts SW(0, 0)").ok());  // dt > 0
  EXPECT_FALSE(Parse("SELECT SUM(A) FROM ts WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM ts1 UNION ts2").ok());  // ORDER BY TIME
  EXPECT_FALSE(Parse("SELECT SUM(A) FROM ts extra").ok());
}

TEST(PlannerTest, AggregatePlan) {
  auto plan = PlanQuery(
      "SELECT AVG(v) FROM ts WHERE time >= 10 AND time < 100 SW(0, 50)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalPlan& p = plan.value();
  EXPECT_EQ(p.kind, LogicalPlan::Kind::kAggregate);
  EXPECT_EQ(p.func, AggFunc::kAvg);
  EXPECT_EQ(p.time_filter.lo, 10);
  EXPECT_EQ(p.time_filter.hi, 99);  // < 100 folded to inclusive 99
  EXPECT_TRUE(p.window.active);
  EXPECT_EQ(p.window.delta_t, 50);
}

TEST(PlannerTest, ValueFilterPlan) {
  auto plan = PlanQuery("SELECT SUM(v) FROM ts WHERE v > 5 AND v <= 20");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().value_filter.active);
  EXPECT_EQ(plan.value().value_filter.lo, 6);
  EXPECT_EQ(plan.value().value_filter.hi, 20);
}

TEST(PlannerTest, EqualityFolds) {
  auto plan = PlanQuery("SELECT COUNT(v) FROM ts WHERE v = 7");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().value_filter.lo, 7);
  EXPECT_EQ(plan.value().value_filter.hi, 7);
}

TEST(PlannerTest, AllAggregateNames) {
  for (auto [name, func] :
       std::vector<std::pair<const char*, AggFunc>>{
           {"SUM", AggFunc::kSum},
           {"AVG", AggFunc::kAvg},
           {"COUNT", AggFunc::kCount},
           {"MIN", AggFunc::kMin},
           {"MAX", AggFunc::kMax},
           {"VAR", AggFunc::kVariance}}) {
    auto plan = PlanQuery(std::string("SELECT ") + name + "(v) FROM ts");
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_EQ(plan.value().func, func) << name;
  }
  EXPECT_FALSE(PlanQuery("SELECT MEDIAN(v) FROM ts").ok());
}

TEST(PlannerTest, CorrelatePlan) {
  auto plan = PlanQuery("SELECT CORR(a.v, b.v) FROM a, b");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().kind, LogicalPlan::Kind::kCorrelate);
  EXPECT_EQ(plan.value().series, "a");
  EXPECT_EQ(plan.value().series_right, "b");
  // Unqualified args are rejected.
  EXPECT_FALSE(PlanQuery("SELECT CORR(x, y) FROM a, b").ok());
}

TEST(PlannerTest, InterColumnPredicate) {
  auto plan = PlanQuery("SELECT * FROM a, b WHERE a.v > b.v");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().kind, LogicalPlan::Kind::kJoin);
  EXPECT_EQ(plan.value().inter_column_op, '>');
  // Swapped table order flips the operator.
  auto swapped = PlanQuery("SELECT * FROM a, b WHERE b.v > a.v");
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped.value().inter_column_op, '<');
  // Mixed with a pushed-down single-column predicate (Eq. 1 separation).
  auto mixed = PlanQuery(
      "SELECT * FROM a, b WHERE a.v > b.v AND time >= 100");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed.value().inter_column_op, '>');
  EXPECT_EQ(mixed.value().time_filter.lo, 100);
  // Unknown table and single-table FROM are rejected.
  EXPECT_FALSE(PlanQuery("SELECT * FROM a, b WHERE c.v > b.v").ok());
  EXPECT_FALSE(PlanQuery("SELECT * FROM a WHERE a.v > a.v").ok());
}

TEST(PlannerTest, UnionPlan) {
  auto plan = PlanQuery("SELECT * FROM a UNION b ORDER BY TIME");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().kind, LogicalPlan::Kind::kUnion);
  EXPECT_EQ(plan.value().series, "a");
  EXPECT_EQ(plan.value().series_right, "b");
}

TEST(PlannerTest, JoinPlan) {
  auto plan = PlanQuery("SELECT * FROM a, b");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().kind, LogicalPlan::Kind::kJoin);
}

TEST(PlannerTest, BinaryProjectionPlan) {
  auto plan = PlanQuery("SELECT a.v - b.v FROM a, b");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().kind, LogicalPlan::Kind::kProjectBinary);
  EXPECT_EQ(plan.value().binary_op, '-');
  EXPECT_EQ(plan.value().series, "a");
  EXPECT_EQ(plan.value().series_right, "b");
}

}  // namespace
}  // namespace etsqp::sql
