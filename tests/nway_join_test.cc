/// Regression suite for the binary merge/join drains and the N-way merge
/// kernels. The engine-level tests pin the *scalar* merge semantics the
/// SIMD kernels are differential-tested against: duplicate timestamps
/// across operands, one-empty-operand plans, and matching timestamps that
/// straddle the sealed-page/tail boundary of one input.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/cpu.h"
#include "exec/engine.h"
#include "exec/pipeline.h"
#include "storage/series_store.h"

namespace etsqp::exec {
namespace {

struct Stream {
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

/// Appends `s` to `name`; seals everything up to `sealed_prefix` points and
/// leaves the remainder in the queryable unsealed tail.
void LoadSeries(storage::SeriesStore* store, const std::string& name,
                const Stream& s, size_t sealed_prefix) {
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 256;
  ASSERT_TRUE(store->CreateSeries(name, opt).ok());
  if (sealed_prefix > 0) {
    ASSERT_TRUE(
        store->AppendBatch(name, s.times.data(), s.values.data(), sealed_prefix)
            .ok());
    ASSERT_TRUE(store->Flush(name).ok());
  }
  if (sealed_prefix < s.times.size()) {
    ASSERT_TRUE(store->AppendBatch(name, s.times.data() + sealed_prefix,
                                   s.values.data() + sealed_prefix,
                                   s.times.size() - sealed_prefix)
                    .ok());
  }
}

/// Reference union: all tuples of both inputs by time, ties left-first.
Stream ReferenceUnion(const Stream& l, const Stream& r) {
  Stream out;
  size_t i = 0, j = 0;
  while (i < l.times.size() || j < r.times.size()) {
    bool left = j >= r.times.size() ||
                (i < l.times.size() && l.times[i] <= r.times[j]);
    if (left) {
      out.times.push_back(l.times[i]);
      out.values.push_back(l.values[i]);
      ++i;
    } else {
      out.times.push_back(r.times[j]);
      out.values.push_back(r.values[j]);
      ++j;
    }
  }
  return out;
}

/// Reference join: k-th equal timestamp pairs (pairwise across duplicates).
void ReferenceJoin(const Stream& l, const Stream& r,
                   std::vector<int64_t>* t, std::vector<int64_t>* a,
                   std::vector<int64_t>* b) {
  size_t i = 0, j = 0;
  while (i < l.times.size() && j < r.times.size()) {
    if (l.times[i] < r.times[j]) {
      ++i;
    } else if (l.times[i] > r.times[j]) {
      ++j;
    } else {
      t->push_back(l.times[i]);
      a->push_back(l.values[i]);
      b->push_back(r.values[j]);
      ++i;
      ++j;
    }
  }
}

Result<QueryResult> RunBinary(storage::SeriesStore& store,
                              LogicalPlan::Kind kind, char binary_op = 0,
                              int threads = 2) {
  Engine engine(PipelineOptions::Etsqp(threads));
  LogicalPlan plan;
  plan.kind = kind;
  plan.series = "l";
  plan.series_right = "r";
  plan.binary_op = binary_op;
  return engine.Execute(plan, store);
}

void ExpectUnionMatches(const QueryResult& qr, const Stream& l,
                        const Stream& r) {
  Stream want = ReferenceUnion(l, r);
  ASSERT_EQ(qr.num_rows(), want.times.size());
  for (size_t i = 0; i < want.times.size(); ++i) {
    EXPECT_EQ(qr.columns[0][i], static_cast<double>(want.times[i])) << i;
    EXPECT_EQ(qr.columns[1][i], static_cast<double>(want.values[i])) << i;
  }
}

void ExpectJoinMatches(const QueryResult& qr, const Stream& l,
                       const Stream& r) {
  std::vector<int64_t> t, a, b;
  ReferenceJoin(l, r, &t, &a, &b);
  ASSERT_EQ(qr.num_rows(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(qr.columns[0][i], static_cast<double>(t[i])) << i;
    EXPECT_EQ(qr.columns[1][i], static_cast<double>(a[i])) << i;
    EXPECT_EQ(qr.columns[2][i], static_cast<double>(b[i])) << i;
  }
}

Stream MakeStream(std::mt19937_64* rng, size_t n, int64_t t0, int max_gap) {
  Stream s;
  int64_t t = t0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>((*rng)() % max_gap);
    s.times.push_back(t);
    s.values.push_back(static_cast<int64_t>((*rng)() % 1000));
  }
  return s;
}

TEST(NwayJoinRegressionTest, JoinDuplicateTimestampsAcrossOperands) {
  // Every left timestamp also appears on the right; interleaved extras on
  // both sides force the merge to resynchronize repeatedly.
  storage::SeriesStore store;
  Stream l, r;
  for (int64_t i = 1; i <= 4000; ++i) {
    if (i % 2 == 0 || i % 3 == 0) {
      l.times.push_back(i);
      l.values.push_back(i * 7);
    }
    if (i % 2 == 0 || i % 5 == 0) {
      r.times.push_back(i);
      r.values.push_back(i * 11);
    }
  }
  LoadSeries(&store, "l", l, l.times.size());
  LoadSeries(&store, "r", r, r.times.size());
  Result<QueryResult> qr = RunBinary(store, LogicalPlan::Kind::kJoin);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  ExpectJoinMatches(qr.value(), l, r);
}

TEST(NwayJoinRegressionTest, UnionDuplicateTimestampsEmitBothTuples) {
  storage::SeriesStore store;
  Stream l, r;
  for (int64_t i = 1; i <= 1000; ++i) {
    l.times.push_back(i * 2);  // evens
    l.values.push_back(1);
    r.times.push_back(i);  // everything: every even time duplicates
    r.values.push_back(2);
  }
  LoadSeries(&store, "l", l, l.times.size());
  LoadSeries(&store, "r", r, r.times.size());
  Result<QueryResult> qr = RunBinary(store, LogicalPlan::Kind::kUnion);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  ExpectUnionMatches(qr.value(), l, r);
}

TEST(NwayJoinRegressionTest, OneEmptyOperand) {
  storage::SeriesStore store;
  std::mt19937_64 rng(31);
  Stream l = MakeStream(&rng, 600, 0, 4);
  Stream r;  // created but never appended to
  LoadSeries(&store, "l", l, 300);
  ASSERT_TRUE(store.CreateSeries("r", {}).ok());

  Result<QueryResult> join = RunBinary(store, LogicalPlan::Kind::kJoin);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(join.value().num_rows(), 0u);

  Result<QueryResult> uni = RunBinary(store, LogicalPlan::Kind::kUnion);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  ExpectUnionMatches(uni.value(), l, r);

  Result<QueryResult> proj =
      RunBinary(store, LogicalPlan::Kind::kProjectBinary, '+');
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  EXPECT_EQ(proj.value().num_rows(), 0u);
}

TEST(NwayJoinRegressionTest, EmptyLeftOperand) {
  storage::SeriesStore store;
  std::mt19937_64 rng(37);
  Stream l;
  Stream r = MakeStream(&rng, 500, 10, 3);
  ASSERT_TRUE(store.CreateSeries("l", {}).ok());
  LoadSeries(&store, "r", r, 250);

  Result<QueryResult> uni = RunBinary(store, LogicalPlan::Kind::kUnion);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  ExpectUnionMatches(uni.value(), l, r);

  Result<QueryResult> join = RunBinary(store, LogicalPlan::Kind::kJoin);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(join.value().num_rows(), 0u);
}

TEST(NwayJoinRegressionTest, TailVsSealedBoundaryStraddlesMatch) {
  // Left holds the shared timestamps in sealed pages; on the right the
  // same timestamps sit at the sealed/tail boundary — the first matching
  // time is the last sealed right tuple, the second is the first tail
  // tuple. The merge must treat the concatenated right input as one
  // ordered stream.
  storage::SeriesStore store;
  Stream l, r;
  for (int64_t i = 1; i <= 1200; ++i) {
    l.times.push_back(i);
    l.values.push_back(i);
  }
  for (int64_t i = 2; i <= 1200; i += 2) {
    r.times.push_back(i);
    r.values.push_back(-i);
  }
  LoadSeries(&store, "l", l, l.times.size());
  // Seal right up to (and including) time 600; times 602.. stay tail.
  LoadSeries(&store, "r", r, 300);

  Result<QueryResult> join = RunBinary(store, LogicalPlan::Kind::kJoin);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ExpectJoinMatches(join.value(), l, r);

  Result<QueryResult> uni = RunBinary(store, LogicalPlan::Kind::kUnion);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  ExpectUnionMatches(uni.value(), l, r);

  Result<QueryResult> proj =
      RunBinary(store, LogicalPlan::Kind::kProjectBinary, '-');
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  const QueryResult& p = proj.value();
  std::vector<int64_t> t, a, b;
  ReferenceJoin(l, r, &t, &a, &b);
  ASSERT_EQ(p.num_rows(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(p.columns[1][i], static_cast<double>(a[i] - b[i])) << i;
  }
}

TEST(NwayJoinRegressionTest, BothTailsOnly) {
  // Neither side has sealed pages: pure tail-vs-tail merge.
  storage::SeriesStore store;
  std::mt19937_64 rng(41);
  Stream l = MakeStream(&rng, 700, 0, 2);
  Stream r = MakeStream(&rng, 650, 1, 2);
  LoadSeries(&store, "l", l, 0);
  LoadSeries(&store, "r", r, 0);

  Result<QueryResult> join = RunBinary(store, LogicalPlan::Kind::kJoin);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ExpectJoinMatches(join.value(), l, r);

  Result<QueryResult> uni = RunBinary(store, LogicalPlan::Kind::kUnion);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  ExpectUnionMatches(uni.value(), l, r);
}

TEST(NwayJoinRegressionTest, ScalarAndSimdMergePathsAgree) {
  // The differential contract the SIMD kernels are tested against: with
  // SIMD force-disabled the engine must produce byte-identical results.
  storage::SeriesStore store;
  std::mt19937_64 rng(47);
  Stream l = MakeStream(&rng, 5000, 0, 3);
  Stream r = MakeStream(&rng, 4000, 5, 4);
  LoadSeries(&store, "l", l, 4000);
  LoadSeries(&store, "r", r, 2000);

  for (LogicalPlan::Kind kind :
       {LogicalPlan::Kind::kJoin, LogicalPlan::Kind::kUnion,
        LogicalPlan::Kind::kProjectBinary}) {
    char op = kind == LogicalPlan::Kind::kProjectBinary ? '+' : 0;
    Result<QueryResult> simd = RunBinary(store, kind, op);
    SetSimdDisabledForTesting(true);
    Result<QueryResult> scalar = RunBinary(store, kind, op);
    SetSimdDisabledForTesting(false);
    ASSERT_TRUE(simd.ok()) << simd.status().ToString();
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    ASSERT_EQ(simd.value().num_rows(), scalar.value().num_rows());
    for (size_t c = 0; c < simd.value().columns.size(); ++c) {
      for (size_t i = 0; i < simd.value().columns[c].size(); ++i) {
        ASSERT_EQ(simd.value().columns[c][i], scalar.value().columns[c][i])
            << "kind=" << static_cast<int>(kind) << " col=" << c << " i=" << i;
      }
    }
  }
}

TEST(NwayJoinRegressionTest, CorrelateGeneralPathWithPartialOverlap) {
  // Correlate's general path shares the intersection drain; overlap is
  // partial and straddles the right input's tail.
  storage::SeriesStore store;
  Stream l, r;
  for (int64_t i = 1; i <= 3000; ++i) {
    l.times.push_back(i);
    l.values.push_back(i % 97);
    if (i % 3 == 0) {
      r.times.push_back(i);
      r.values.push_back((i % 97) * 2 + 1);
    }
  }
  LoadSeries(&store, "l", l, l.times.size());
  LoadSeries(&store, "r", r, 600);

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan;
  plan.kind = LogicalPlan::Kind::kCorrelate;
  plan.series = "l";
  plan.series_right = "r";
  Result<QueryResult> qr = engine.Execute(plan, store);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  ASSERT_EQ(qr.value().num_rows(), 1u);
  // n = matched pairs; corr of (x, 2x+1) over the overlap is 1.
  EXPECT_EQ(qr.value().columns[2][0], static_cast<double>(r.times.size()));
  EXPECT_NEAR(qr.value().columns[0][0], 1.0, 1e-9);
}

}  // namespace
}  // namespace etsqp::exec
