#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <random>

#include "baselines/fastlanes_exec.h"
#include "baselines/sboost.h"
#include "common/aligned_buffer.h"
#include "common/cpu.h"
#include "common/bitstream.h"
#include "db/block_engine.h"
#include "db/iotdb_lite.h"
#include "db/row_engine.h"
#include "encoding/bitpack.h"
#include "sim/sched_sim.h"
#include "workload/generators.h"

namespace etsqp {
namespace {

// ------------------------------------------------------------- IotDbLite

db::IotDbLite MakeDb(db::IotDbLite::Mode mode, std::vector<int64_t>* times,
                     std::vector<int64_t>* values) {
  db::IotDbLite dbi(mode, 2);
  std::mt19937_64 rng(301);
  times->resize(20000);
  values->resize(20000);
  int64_t t = 0, v = 100;
  for (size_t i = 0; i < times->size(); ++i) {
    t += 1 + static_cast<int64_t>(rng() % 3);
    v += static_cast<int64_t>(rng() % 21) - 10;
    (*times)[i] = t;
    (*values)[i] = v;
  }
  EXPECT_TRUE(dbi.CreateTimeseries("velocity").ok());
  EXPECT_TRUE(dbi.InsertBatch("velocity", times->data(), values->data(),
                              times->size())
                  .ok());
  EXPECT_TRUE(dbi.Flush().ok());
  return dbi;
}

TEST(IotDbLiteTest, SqlAggregateEndToEnd) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  auto result = dbi.Query("SELECT SUM(velocity) FROM velocity;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t expected = 0;
  for (int64_t v : values) expected += v;
  ASSERT_EQ(result.value().num_rows(), 1u);
  EXPECT_EQ(result.value().columns[0][0], static_cast<double>(expected));
}

TEST(IotDbLiteTest, ScalarAndSimdModesAgree) {
  std::vector<int64_t> times, values;
  db::IotDbLite simd = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  db::IotDbLite scalar =
      MakeDb(db::IotDbLite::Mode::kScalar, &times, &values);
  for (const char* q :
       {"SELECT SUM(v) FROM velocity",
        "SELECT AVG(v) FROM velocity WHERE time >= 1000 AND time <= 9000",
        "SELECT COUNT(v) FROM velocity WHERE v > 100",
        "SELECT MIN(v) FROM velocity", "SELECT MAX(v) FROM velocity",
        "SELECT SUM(v) FROM velocity SW(0, 2000)"}) {
    auto a = simd.Query(q);
    auto b = scalar.Query(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    ASSERT_EQ(a.value().num_rows(), b.value().num_rows()) << q;
    for (size_t c = 0; c < a.value().columns.size(); ++c) {
      for (size_t r = 0; r < a.value().num_rows(); ++r) {
        EXPECT_NEAR(a.value().columns[c][r], b.value().columns[c][r], 1e-9)
            << q;
      }
    }
  }
}

TEST(IotDbLiteTest, TimeFilteredSelect) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  auto result = dbi.Query(
      "SELECT * FROM velocity WHERE time >= 50 AND time <= 500");
  ASSERT_TRUE(result.ok());
  size_t expected = 0;
  for (int64_t t : times) {
    if (t >= 50 && t <= 500) ++expected;
  }
  EXPECT_EQ(result.value().num_rows(), expected);
}

TEST(IotDbLiteTest, SqlErrorsSurface) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  EXPECT_FALSE(dbi.Query("SELEKT 1").ok());
  EXPECT_FALSE(dbi.Query("SELECT SUM(v) FROM missing_series").ok());
}

TEST(IotDbLiteTest, MultiSeriesJoinSql) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  std::vector<int64_t> t, v1, v2;
  for (int64_t i = 1; i <= 4000; ++i) {
    t.push_back(i);
    v1.push_back(i % 100);
    v2.push_back(2 * (i % 100));
  }
  ASSERT_TRUE(dbi.CreateTimeseries("s1").ok());
  ASSERT_TRUE(dbi.CreateTimeseries("s2").ok());
  ASSERT_TRUE(dbi.InsertBatch("s1", t.data(), v1.data(), t.size()).ok());
  ASSERT_TRUE(dbi.InsertBatch("s2", t.data(), v2.data(), t.size()).ok());
  ASSERT_TRUE(dbi.Flush().ok());

  auto proj = dbi.Query("SELECT s1.v + s2.v FROM s1, s2");
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  ASSERT_EQ(proj.value().num_rows(), t.size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(proj.value().columns[1][i], static_cast<double>(3 * (v1[i])));
  }

  auto uni = dbi.Query("SELECT * FROM s1 UNION s2 ORDER BY TIME");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni.value().num_rows(), 2 * t.size());

  auto join = dbi.Query("SELECT * FROM s1, s2");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join.value().num_rows(), t.size());
}

TEST(IotDbLiteTest, SaveLoadRoundTrip) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  std::string path = ::testing::TempDir() + "/etsqp_db.tsfile";
  ASSERT_TRUE(dbi.Save(path).ok());

  db::IotDbLite loaded(db::IotDbLite::Mode::kSimd, 2);
  ASSERT_TRUE(loaded.Load(path).ok());
  auto a = dbi.Query("SELECT SUM(v) FROM velocity");
  auto b = loaded.Query("SELECT SUM(v) FROM velocity");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().columns[0][0], b.value().columns[0][0]);
  std::remove(path.c_str());
}

TEST(IotDbLiteTest, CorrSql) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd);
  std::vector<int64_t> t, v1, v2;
  for (int64_t i = 1; i <= 3000; ++i) {
    t.push_back(i);
    v1.push_back(i % 64);
    v2.push_back(3 * (i % 64) + 7);
  }
  ASSERT_TRUE(dbi.CreateTimeseries("p").ok());
  ASSERT_TRUE(dbi.CreateTimeseries("q").ok());
  ASSERT_TRUE(dbi.InsertBatch("p", t.data(), v1.data(), t.size()).ok());
  ASSERT_TRUE(dbi.InsertBatch("q", t.data(), v2.data(), t.size()).ok());
  ASSERT_TRUE(dbi.Flush().ok());
  auto result = dbi.Query("SELECT CORR(p.v, q.v) FROM p, q");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result.value().columns[0][0], 1.0, 1e-9);  // exact linear
}

class FloatSeriesTest
    : public ::testing::TestWithParam<enc::ColumnEncoding> {};

TEST_P(FloatSeriesTest, SqlAggregationOverDoubles) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  ASSERT_TRUE(dbi.CreateFloatTimeseries("temp", GetParam(), 2000).ok());
  std::mt19937_64 rng(401);
  std::vector<int64_t> t(15000);
  std::vector<double> v(15000);
  double x = 21.5;
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = 1000 + static_cast<int64_t>(i) * 60;
    x += (static_cast<double>(rng() % 100) - 50.0) / 100.0;
    v[i] = std::round(x * 100.0) / 100.0;
  }
  ASSERT_TRUE(dbi.InsertBatchF64("temp", t.data(), v.data(), t.size()).ok());
  ASSERT_TRUE(dbi.Flush().ok());

  // Whole-range aggregates vs reference.
  double sum = 0, mn = v[0], mx = v[0];
  for (double y : v) {
    sum += y;
    mn = std::min(mn, y);
    mx = std::max(mx, y);
  }
  auto rsum = dbi.Query("SELECT SUM(temp) FROM temp");
  auto ravg = dbi.Query("SELECT AVG(temp) FROM temp");
  auto rmin = dbi.Query("SELECT MIN(temp) FROM temp");
  auto rmax = dbi.Query("SELECT MAX(temp) FROM temp");
  ASSERT_TRUE(rsum.ok() && ravg.ok() && rmin.ok() && rmax.ok())
      << rsum.status().ToString();
  EXPECT_NEAR(rsum.value().columns[0][0], sum, 1e-6);
  EXPECT_NEAR(ravg.value().columns[0][0], sum / t.size(), 1e-9);
  EXPECT_EQ(rmin.value().columns[0][0], mn);
  EXPECT_EQ(rmax.value().columns[0][0], mx);

  // Time-filtered aggregate.
  double fsum = 0;
  uint64_t fcnt = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] >= 100000 && t[i] <= 500000) {
      fsum += v[i];
      ++fcnt;
    }
  }
  auto rf = dbi.Query(
      "SELECT SUM(temp) FROM temp WHERE time >= 100000 AND time <= 500000");
  ASSERT_TRUE(rf.ok());
  EXPECT_NEAR(rf.value().columns[0][0], fsum, 1e-6);
  auto rc = dbi.Query(
      "SELECT COUNT(temp) FROM temp WHERE time >= 100000 AND time <= 500000");
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc.value().columns[0][0], static_cast<double>(fcnt));

  // Sliding windows tile the domain.
  auto rw = dbi.Query("SELECT AVG(temp) FROM temp SW(1000, 100000)");
  ASSERT_TRUE(rw.ok());
  EXPECT_GT(rw.value().num_rows(), 3u);
  double total_count = 0;
  auto rwc = dbi.Query("SELECT COUNT(temp) FROM temp SW(1000, 100000)");
  ASSERT_TRUE(rwc.ok());
  for (double c : rwc.value().columns[1]) total_count += c;
  EXPECT_EQ(total_count, static_cast<double>(t.size()));
}

INSTANTIATE_TEST_SUITE_P(FloatEncodings, FloatSeriesTest,
                         ::testing::Values(enc::ColumnEncoding::kGorillaValue,
                                           enc::ColumnEncoding::kChimpValue,
                                           enc::ColumnEncoding::kElfValue));

TEST(FloatSeriesTest, TypeMismatchRejected) {
  db::IotDbLite dbi;
  ASSERT_TRUE(dbi.CreateTimeseries("i").ok());
  ASSERT_TRUE(dbi.CreateFloatTimeseries("f").ok());
  EXPECT_FALSE(dbi.InsertF64("i", 1, 2.0).ok());
  EXPECT_FALSE(dbi.Insert("f", 1, 2).ok());
  EXPECT_FALSE(
      dbi.CreateFloatTimeseries("g", enc::ColumnEncoding::kTs2Diff).ok());
}

TEST(IotDbLiteTest, CsvRoundTrip) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  std::string path = ::testing::TempDir() + "/etsqp_export.csv";
  ASSERT_TRUE(dbi.ExportCsv("velocity", path).ok());

  db::IotDbLite fresh;
  ASSERT_TRUE(fresh.CreateTimeseries("velocity").ok());
  ASSERT_TRUE(fresh.ImportCsv("velocity", path).ok());
  ASSERT_TRUE(fresh.Flush().ok());
  auto a = dbi.Query("SELECT SUM(v) FROM velocity");
  auto b = fresh.Query("SELECT SUM(v) FROM velocity");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().columns[0][0], b.value().columns[0][0]);
  auto ca = dbi.Query("SELECT COUNT(v) FROM velocity");
  auto cb = fresh.Query("SELECT COUNT(v) FROM velocity");
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_EQ(ca.value().columns[0][0], cb.value().columns[0][0]);
  std::remove(path.c_str());
}

TEST(IotDbLiteTest, CsvImportRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/etsqp_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "time,value\n1,2\nnot-a-row\n");
  std::fclose(f);
  db::IotDbLite dbi;
  ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
  EXPECT_FALSE(dbi.ImportCsv("s", path).ok());
  EXPECT_FALSE(dbi.ImportCsv("ghost", path).ok());
  std::remove(path.c_str());
}

TEST(IotDbLiteTest, ScalarFallbackMatchesSimd) {
  // Force the scalar fallbacks of every dispatched kernel (the runtime
  // dispatch the paper's "industrial servers with limited instructions"
  // remark motivates) and verify identical results.
  std::vector<int64_t> times, values;
  db::IotDbLite simd = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  auto with_simd = simd.Query("SELECT SUM(v) FROM velocity WHERE v > 100");
  ASSERT_TRUE(with_simd.ok());
  SetSimdDisabledForTesting(true);
  auto without = simd.Query("SELECT SUM(v) FROM velocity WHERE v > 100");
  SetSimdDisabledForTesting(false);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_simd.value().columns[0][0], without.value().columns[0][0]);
}

// ------------------------------------------------------------- comparators

TEST(BlockEngineTest, MatchesIotDbResults) {
  std::vector<int64_t> times, values;
  db::IotDbLite dbi = MakeDb(db::IotDbLite::Mode::kSimd, &times, &values);
  db::BlockEngine monet;
  ASSERT_TRUE(monet.CreateSeries("velocity").ok());
  ASSERT_TRUE(monet
                  .AppendBatch("velocity", times.data(), values.data(),
                               times.size())
                  .ok());
  exec::TimeRange tr{100, 15000};
  auto a = dbi.Query("SELECT SUM(v) FROM velocity WHERE time >= 100 AND "
                     "time <= 15000");
  auto b = monet.Aggregate("velocity", exec::AggFunc::kSum, tr,
                           exec::ValueRange{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().columns[0][0], b.value().columns[0][0]);
}

TEST(BlockEngineTest, GenericCompressionIsWorseThanIoTEncoders) {
  workload::Dataset ds = workload::MakeAtmosphere(50'000);
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd);
  db::BlockEngine monet;
  const auto& s = ds.series[0];
  ASSERT_TRUE(dbi.CreateTimeseries("x").ok());
  ASSERT_TRUE(
      dbi.InsertBatch("x", s.times.data(), s.values.data(), s.times.size())
          .ok());
  ASSERT_TRUE(dbi.Flush().ok());
  ASSERT_TRUE(monet.CreateSeries("x").ok());
  ASSERT_TRUE(
      monet.AppendBatch("x", s.times.data(), s.values.data(), s.times.size())
          .ok());
  // The IoT combined encoders beat the byte-level LZ on smooth sensor data.
  EXPECT_LT(dbi.store()->EncodedBytes("x"), monet.CompressedBytes("x"));
}

TEST(RowEngineTest, MatchesReferenceWithSetupCost) {
  std::vector<int64_t> times(5000), values(5000);
  for (size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<int64_t>(i + 1);
    values[i] = static_cast<int64_t>(i % 77);
  }
  db::RowEngine::Options opt;
  opt.query_setup_ms = 1.0;  // keep the test fast
  db::RowEngine spark(opt);
  ASSERT_TRUE(spark.CreateSeries("x").ok());
  ASSERT_TRUE(
      spark.AppendBatch("x", times.data(), values.data(), times.size()).ok());
  auto r = spark.Aggregate("x", exec::AggFunc::kSum,
                           exec::TimeRange{1, 1000}, exec::ValueRange{});
  ASSERT_TRUE(r.ok());
  int64_t expected = 0;
  for (size_t i = 0; i < 1000; ++i) expected += values[i];
  EXPECT_EQ(r.value().columns[0][0], static_cast<double>(expected));
}

// ------------------------------------------------------------- baselines

TEST(SboostFilterTest, MatchesReferenceOnPackedData) {
  std::mt19937_64 rng(307);
  int width = 14;
  size_t n = 5000;
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  enc::PackBE(values.data(), n, width, &w);
  auto bytes = w.TakeBuffer();
  AlignedBuffer buf;
  buf.Assign(bytes.data(), bytes.size());

  uint32_t lo = 1000, hi = 9000;
  std::vector<uint64_t> mask(CeilDiv(n, 64));
  baselines::SboostFilterPacked(buf.data(), buf.size(), n, width, lo, hi,
                                mask.data());
  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    bool sel = values[i] >= lo && values[i] <= hi;
    if (sel) ++expected;
    EXPECT_EQ((mask[i >> 6] >> (i & 63)) & 1, sel ? 1u : 0u) << i;
  }
  EXPECT_EQ(baselines::SboostCountPacked(buf.data(), buf.size(), n, width, lo,
                                         hi),
            expected);
}

TEST(FastLanesExecTest, LoadsDatasetWithFlmmEncoding) {
  workload::Dataset ds = workload::MakeSine(10'000);
  storage::SeriesStore store;
  auto names = baselines::LoadDatasetFastLanes(ds, &store);
  ASSERT_TRUE(names.ok());
  auto series = store.GetSeries(names.value()[0]);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value()->pages[0]->header.value_encoding,
            enc::ColumnEncoding::kFastLanes);
}

// ------------------------------------------------------------- simulator

TEST(SchedSimTest, SingleCoreMakespanIsTotal) {
  auto jobs = sim::JobsFromCosts({1.0, 2.0, 3.0});
  auto result = sim::Simulate(jobs, 1, sim::SchedulePolicy::kSharedQueue);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
  EXPECT_DOUBLE_EQ(result.total_idle, 0.0);
}

TEST(SchedSimTest, IndependentJobsScaleNearLinearly) {
  std::vector<double> costs(64, 1.0);
  auto jobs = sim::JobsFromCosts(costs);
  for (int cores : {2, 4, 8}) {
    auto r = sim::Simulate(jobs, cores, sim::SchedulePolicy::kSharedQueue);
    EXPECT_DOUBLE_EQ(r.makespan, 64.0 / cores) << cores;
  }
}

TEST(SchedSimTest, DependencyChainsStallStaticPartition) {
  // 2 pages x 4 dependent slices on 4 cores: static partition interleaves
  // chains across cores and stalls; the shared queue keeps cores on ready
  // work.
  auto jobs = sim::SlicedJobs({4.0, 4.0}, 4, 0.0, true);
  auto shared = sim::Simulate(jobs, 4, sim::SchedulePolicy::kSharedQueue);
  auto static_p =
      sim::Simulate(jobs, 4, sim::SchedulePolicy::kStaticPartition);
  EXPECT_LE(shared.makespan, static_p.makespan);
  EXPECT_LT(shared.total_idle, static_p.total_idle + 1e-9);
}

TEST(SchedSimTest, ChainsBoundSpeedup) {
  // A single page split into 8 dependent slices cannot go faster than the
  // chain, regardless of cores (Figure 8's P1S2-waits-for-P1S1 effect).
  auto jobs = sim::SlicedJobs({8.0}, 8, 0.0, true);
  auto r = sim::Simulate(jobs, 8, sim::SchedulePolicy::kSharedQueue);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
}

TEST(SchedSimTest, SyncOverheadGrowsWithSlices) {
  auto few = sim::SlicedJobs({10.0}, 2, 0.5, false);
  auto many = sim::SlicedJobs({10.0}, 10, 0.5, false);
  auto rf = sim::Simulate(few, 1, sim::SchedulePolicy::kSharedQueue);
  auto rm = sim::Simulate(many, 1, sim::SchedulePolicy::kSharedQueue);
  EXPECT_LT(rf.makespan, rm.makespan);
}

TEST(SchedSimTest, SharedQueueDominatesOnDependencyChains) {
  // The scheduling claim behind Figure 11: with per-page dependency chains
  // (SBoost-style slicing), the shared ready queue never loses to the
  // static partition, which interleaves chains across cores and stalls.
  // (On independent jobs both are heuristics — greedy list scheduling only
  // guarantees Graham's 2x bound — so dominance is asserted for chains and
  // the approximation bound for the rest.)
  std::mt19937_64 rng(881);
  for (int trial = 0; trial < 60; ++trial) {
    size_t pages = 1 + rng() % 12;
    int slices = 1 + static_cast<int>(rng() % 8);
    int cores = 1 + static_cast<int>(rng() % 16);
    bool chained = (rng() % 2) == 0;
    std::vector<double> costs(pages);
    double total = 0;
    double longest = 0;
    for (auto& c : costs) {
      c = 0.5 + static_cast<double>(rng() % 100) / 10.0;
      total += c;
      longest = std::max(longest, c);
    }
    double per_slice_overhead = 0.01;
    total += per_slice_overhead * pages * slices;
    auto jobs = sim::SlicedJobs(costs, slices, per_slice_overhead, chained);
    auto shared = sim::Simulate(jobs, cores, sim::SchedulePolicy::kSharedQueue);
    auto statp =
        sim::Simulate(jobs, cores, sim::SchedulePolicy::kStaticPartition);
    if (chained) {
      EXPECT_LE(shared.makespan, statp.makespan + 1e-9)
          << "pages=" << pages << " slices=" << slices << " cores=" << cores;
    }
    // Graham bound for the greedy queue; lower bound is work / cores.
    double lower = std::max(total / cores, longest / slices);
    EXPECT_LE(shared.makespan, 2.0 * std::max(lower, longest) + 1e-9);
    EXPECT_GE(shared.makespan, total / cores - 1e-9);
    // Work conservation: busy time equals total cost under both policies.
    EXPECT_NEAR(shared.total_busy, statp.total_busy, 1e-9);
    EXPECT_NEAR(shared.total_busy, total, 1e-6);
  }
}

TEST(SchedSimTest, BusyEqualsSumOfCosts) {
  auto jobs = sim::JobsFromCosts({1.5, 2.5, 3.0, 1.0});
  auto r = sim::Simulate(jobs, 3, sim::SchedulePolicy::kSharedQueue);
  EXPECT_DOUBLE_EQ(r.total_busy, 8.0);
  EXPECT_GE(r.makespan, 3.0);  // longest job
}

// ------------------------------------------------------------- workloads

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  workload::Dataset a = workload::MakeGas(5000, 3);
  workload::Dataset b = workload::MakeGas(5000, 3);
  ASSERT_EQ(a.series.size(), b.series.size());
  EXPECT_EQ(a.series[7].values, b.series[7].values);
  workload::Dataset c = workload::MakeGas(5000, 4);
  EXPECT_NE(a.series[7].values, c.series[7].values);
}

TEST(WorkloadTest, TableIIShapes) {
  auto all = workload::MakeAllDatasets(0.01);
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "Atm");
  EXPECT_EQ(all[0].num_attrs(), 3u);
  EXPECT_EQ(all[1].name, "Clim");
  EXPECT_EQ(all[1].num_attrs(), 4u);
  EXPECT_EQ(all[2].name, "Gas");
  EXPECT_EQ(all[2].num_attrs(), 19u);
  EXPECT_EQ(all[3].name, "Time");
  EXPECT_EQ(all[3].num_attrs(), 2u);
  EXPECT_EQ(all[4].name, "Sine");
  EXPECT_EQ(all[4].num_attrs(), 6u);
  EXPECT_EQ(all[5].name, "TPCH");
  EXPECT_EQ(all[5].num_attrs(), 4u);
}

TEST(WorkloadTest, TimesStrictlyIncreasing) {
  for (const auto& ds : workload::MakeAllDatasets(0.005)) {
    for (const auto& s : ds.series) {
      for (size_t i = 1; i < s.times.size(); ++i) {
        ASSERT_LT(s.times[i - 1], s.times[i]) << ds.name << "." << s.name;
      }
    }
  }
}

TEST(WorkloadTest, LoadDatasetRegistersSeries) {
  workload::Dataset ds = workload::MakeTpch(2000);
  storage::SeriesStore store;
  auto names = workload::LoadDataset(ds, {}, &store);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 4u);
  EXPECT_TRUE(store.HasSeries("TPCH.quantity"));
  auto series = store.GetSeries("TPCH.quantity");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value()->total_points, 2000u);
}

TEST(WorkloadTest, SmoothDatasetsCompressWell) {
  workload::Dataset atm = workload::MakeAtmosphere(20'000);
  storage::SeriesStore store;
  ASSERT_TRUE(workload::LoadDataset(atm, {}, &store).ok());
  uint64_t encoded = store.EncodedBytes("Atm.pressure");
  EXPECT_LT(encoded, 20'000u * 16u / 4u);  // >= 4x vs raw
}

}  // namespace
}  // namespace etsqp
