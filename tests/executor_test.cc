// Tests for the persistent work-stealing executor (exec/thread_pool.h), the
// PipelineJob framework plumbing visible through Engine, and the concurrency
// contract of db::IotDbLite. Covers the acceptance points of the executor
// refactor: pool reuse across queries, nested submission, exception
// propagation (TaskGroup and RunPipelineJobs), deterministic
// shutdown/re-init, and concurrent query execution over one store.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "db/iotdb_lite.h"
#include "exec/engine.h"
#include "exec/pipeline_job.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "storage/series_store.h"

namespace etsqp::exec {
namespace {

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, LazySpinUpAndTaskExecution) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.workers_running(), 0);  // no threads before first Submit
  EXPECT_EQ(pool.threads_started(), 0u);
  std::atomic<int> hits{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) group.Submit([&] { hits.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(hits.load(), 32);
  EXPECT_GT(pool.threads_started(), 0u);
  EXPECT_GE(pool.stats().tasks, 32u);
}

TEST(ThreadPoolTest, ReserveGrowsTargetNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.target_workers(), 1);
  pool.Reserve(3);
  EXPECT_EQ(pool.target_workers(), 3);
  pool.Reserve(2);  // never shrinks
  EXPECT_EQ(pool.target_workers(), 3);
  pool.Reserve(ThreadPool::kMaxWorkers + 100);  // capped
  EXPECT_EQ(pool.target_workers(), ThreadPool::kMaxWorkers);
}

TEST(ThreadPoolTest, DeterministicShutdownAndReInit) {
  ThreadPool pool(2);
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::atomic<int> hits{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) group.Submit([&] { hits.fetch_add(1); });
    group.Wait();
    EXPECT_EQ(hits.load(), 8) << "cycle " << cycle;
    uint64_t started_before = pool.threads_started();
    pool.Shutdown();
    EXPECT_EQ(pool.workers_running(), 0) << "cycle " << cycle;
    EXPECT_EQ(pool.threads_started(), started_before);  // join, not spawn
    pool.Shutdown();  // idempotent
  }
  // After the last Shutdown the pool lazily respawned workers each cycle.
  EXPECT_GE(pool.threads_started(), 2u);
}

TEST(ThreadPoolTest, NestedSubmissionComposesOnSingleWorkerPool) {
  // A task that itself submits tasks and waits must not deadlock even when
  // the pool has a single worker: TaskGroup::Wait helps drain the pool.
  ThreadPool pool(1);
  std::atomic<int> inner_hits{0};
  TaskGroup outer(&pool);
  for (int j = 0; j < 4; ++j) {
    outer.Submit([&] {
      TaskGroup inner(&pool);
      for (int i = 0; i < 8; ++i) inner.Submit([&] { inner_hits.fetch_add(1); });
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ThreadPoolTest, WaiterHelpsWithoutAnyWorkers) {
  // kMaxWorkers-capped pools can in principle reach target 0 only via a
  // degenerate construction; more practically, the caller must make progress
  // even if workers are slow to spin up. Force the situation with target 1
  // and a task that blocks until the waiter has helped another task.
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) group.Submit([&] { hits.fetch_add(1); });
  group.Wait();  // caller + at most one worker drain all 64
  EXPECT_EQ(hits.load(), 64);
}

TEST(TaskGroupTest, WaitRethrowsFirstExceptionAndRunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([&, i] {
      hits.fetch_add(1);
      if (i == 5) throw std::runtime_error("task 5 failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Remaining tasks still ran (shared captures stayed alive through Wait).
  EXPECT_EQ(hits.load(), 16);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  TaskGroup group(&pool);
  group.Submit([&] { hits.fetch_add(1); });
  group.Wait();
  group.Submit([&] { hits.fetch_add(1); });
  group.Submit([&] { hits.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(group.tasks_run(), 3u);
}

TEST(TaskGroupTest, ErrorDoesNotPoisonNextBatch) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  std::atomic<int> hits{0};
  group.Submit([&] { hits.fetch_add(1); });
  group.Wait();  // no stale exception rethrown
  EXPECT_EQ(hits.load(), 1);
}

// -------------------------------------------------- PipelineJob framework

TEST(PipelineJobsTest, ThrowingJobPropagatesExceptionMultiThread) {
  std::atomic<int> hits{0};
  PipelineJobSet set;
  set.num_jobs = 16;
  set.job = [&](size_t i) -> Status {
    hits.fetch_add(1);
    if (i == 3) throw std::runtime_error("job 3");
    return Status::Ok();
  };
  EXPECT_THROW(RunPipelineJobs(set, PipelineOptions::Etsqp(4), nullptr),
               std::runtime_error);
  EXPECT_EQ(hits.load(), 16);  // remaining jobs still drained
}

TEST(PipelineJobsTest, ThrowingJobPropagatesExceptionInline) {
  PipelineJobSet set;
  set.num_jobs = 4;
  set.job = [](size_t i) -> Status {
    if (i == 2) throw std::runtime_error("job 2");
    return Status::Ok();
  };
  EXPECT_THROW(RunPipelineJobs(set, PipelineOptions::Serial(), nullptr),
               std::runtime_error);
}

// ------------------------------------------------- PlanSlices regression

TEST(SchedulerTest, PlanSlicesFanOutMatchesPaperBoundPagesUnderCores) {
  // Fewer pages than cores: each page splits into at most
  // ceil(p_c / #Pages) block-aligned slices (Section III-C). With 2 pages
  // of 8192 values, 8 cores, 1024-value blocks: ceil(8/2) = 4 slices per
  // page of exactly 2048 values — 8 slices total, one per core. The
  // reciprocal misreading ceil(#Pages / p_c) would yield 1 slice per page
  // and leave 6 of the 8 cores idle.
  std::vector<size_t> counts(2, 8192);
  auto slices = PlanSlices(counts, 8, 1024);
  ASSERT_EQ(slices.size(), 8u);
  for (size_t s = 0; s < slices.size(); ++s) {
    EXPECT_EQ(slices[s].page_index, s / 4);
    EXPECT_EQ(slices[s].end - slices[s].begin, 2048u);
    EXPECT_EQ(slices[s].begin % 1024, 0u);
  }
}

// ------------------------------------------------- Engine on shared pool

struct Fixture {
  storage::SeriesStore store;
  int64_t sum = 0;
  size_t n = 0;
};

Fixture MakeFixture(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Fixture f;
  f.n = n;
  std::vector<int64_t> times(n), values(n);
  int64_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 5);
    times[i] = t;
    values[i] = static_cast<int64_t>(rng() % 1000);
    f.sum += values[i];
  }
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 1000;
  EXPECT_TRUE(f.store.CreateSeries("ts", opt).ok());
  EXPECT_TRUE(f.store.AppendBatch("ts", times.data(), values.data(), n).ok());
  EXPECT_TRUE(f.store.Flush().ok());
  return f;
}

TEST(ExecutorEngineTest, WarmPoolIsReusedAcrossQueries) {
  Fixture f = MakeFixture(20000, 11);
  Engine engine(PipelineOptions::Etsqp(4));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  // First query warms the global pool (lazy spin-up).
  Result<QueryResult> warm = engine.Execute(plan, f.store);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  uint64_t started = ThreadPool::Global().threads_started();
  for (int i = 0; i < 10; ++i) {
    Result<QueryResult> r = engine.Execute(plan, f.store);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().columns[0][0], static_cast<double>(f.sum));
  }
  // The refactor's core claim: steady-state queries construct no threads.
  EXPECT_EQ(ThreadPool::Global().threads_started(), started);
}

TEST(ExecutorEngineTest, ConcurrentQueriesOverOneStore) {
  Fixture f = MakeFixture(30000, 13);
  Engine engine(PipelineOptions::Etsqp(2));
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
      for (int q = 0; q < kQueriesEach; ++q) {
        Result<QueryResult> r = engine.Execute(plan, f.store);
        if (!r.ok() || r.value().num_rows() != 1 ||
            r.value().columns[0][0] != static_cast<double>(f.sum)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ExecutorEngineTest, PoolStatsSurfaceInExecStats) {
  Fixture f = MakeFixture(20000, 17);
  Engine engine(PipelineOptions::Etsqp(4).WithStats(true));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  Result<QueryResult> r = engine.Execute(plan, f.store);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 20 pages across 4 runners: the pool ran tasks, and EXPLAIN ANALYZE's
  // source fields are populated.
  EXPECT_GT(r.value().stats.pool_workers, 1);
  EXPECT_GT(r.value().stats.pool.tasks, 0u);
}

// ------------------------------------------------- IotDbLite concurrency

db::IotDbLite MakeDb(size_t n, int64_t* sum_out) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  EXPECT_TRUE(dbi.CreateTimeseries("s").ok());
  std::mt19937_64 rng(29);
  int64_t t = 0, sum = 0;
  std::vector<int64_t> times(n), values(n);
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 3);
    times[i] = t;
    values[i] = static_cast<int64_t>(rng() % 500);
    sum += values[i];
  }
  EXPECT_TRUE(dbi.InsertBatch("s", times.data(), values.data(), n).ok());
  EXPECT_TRUE(dbi.Flush().ok());
  *sum_out = sum;
  return dbi;
}

TEST(IotDbLiteConcurrencyTest, ParallelQueriesWithReconfigurationChurn) {
  int64_t sum = 0;
  // Deliberately small: each reconfiguration below waits out in-flight
  // queries, and this test also runs under TSan in CI where a query costs
  // ~100x wall time.
  db::IotDbLite dbi = MakeDb(4000, &sum);
  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = dbi.Query("SELECT SUM(s) FROM s;");
        if (!r.ok() || r.value().num_rows() != 1 ||
            r.value().columns[0][0] != static_cast<double>(sum)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Reconfigure under load: thread-count and mode churn must serialize
  // against in-flight queries without corrupting results.
  for (int i = 0; i < 10; ++i) {
    dbi.SetThreads(1 + i % 4);
    if (i % 5 == 0) {
      dbi.SetMode(i % 10 == 0 ? db::IotDbLite::Mode::kScalar
                              : db::IotDbLite::Mode::kSimd);
    }
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace etsqp::exec
