// Edge cases of the execution pipeline: overflow surfacing, empty inputs
// and ranges, non-default time encodings on the position-lookup path, and a
// property sweep asserting that every (strategy, prune, fusion) combination
// agrees with a scalar reference on random filters.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "exec/engine.h"
#include "exec/pipeline.h"
#include "storage/series_store.h"

namespace etsqp::exec {
namespace {

struct Fx {
  storage::SeriesStore store;
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

Fx Make(size_t n, uint64_t seed,
        enc::ColumnEncoding venc = enc::ColumnEncoding::kTs2Diff,
        enc::ColumnEncoding tenc = enc::ColumnEncoding::kTs2Diff,
        uint32_t page_size = 900) {
  std::mt19937_64 rng(seed);
  Fx f;
  f.times.resize(n);
  f.values.resize(n);
  int64_t t = 0, v = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 9);
    v += static_cast<int64_t>(rng() % 41) - 20;
    f.times[i] = t;
    f.values[i] = v;
  }
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = page_size;
  opt.page.value_encoding = venc;
  opt.page.time_encoding = tenc;
  EXPECT_TRUE(f.store.CreateSeries("s", opt).ok());
  EXPECT_TRUE(
      f.store.AppendBatch("s", f.times.data(), f.values.data(), n).ok());
  EXPECT_TRUE(f.store.Flush().ok());
  return f;
}

TEST(PipelineEdgeTest, SumOverflowSurfacesAsStatus) {
  storage::SeriesStore store;
  storage::SeriesStore::SeriesOptions opt;
  ASSERT_TRUE(store.CreateSeries("big", opt).ok());
  std::vector<int64_t> t, v;
  for (int64_t i = 0; i < 64; ++i) {
    t.push_back(i + 1);
    v.push_back(INT64_MAX / 4 + i);
  }
  ASSERT_TRUE(store.AppendBatch("big", t.data(), v.data(), t.size()).ok());
  ASSERT_TRUE(store.Flush().ok());
  for (const PipelineOptions& o :
       {PipelineOptions::Etsqp(1), PipelineOptions::Serial(), PipelineOptions::Sboost(1)}) {
    Engine engine(o);
    LogicalPlan plan = LogicalPlan::Aggregate("big", AggFunc::kSum);
    auto result = engine.Execute(plan, store);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kOverflow)
        << DecodeStrategyName(o.strategy);
    // AVG of the same data is representable and must still work.
    LogicalPlan avg = LogicalPlan::Aggregate("big", AggFunc::kAvg);
    auto r2 = engine.Execute(avg, store);
    // AVG goes through the same 128-bit sums: it succeeds.
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_NEAR(r2.value().columns[0][0],
                static_cast<double>(INT64_MAX) / 4 + 31.5,
                static_cast<double>(INT64_MAX) * 1e-9);
  }
}

TEST(PipelineEdgeTest, AggAccumFinalizeBranches) {
  AggAccum empty;
  double out;
  EXPECT_TRUE(empty.Finalize(AggFunc::kSum, &out).ok());
  EXPECT_EQ(out, 0.0);
  EXPECT_TRUE(empty.Finalize(AggFunc::kCount, &out).ok());
  EXPECT_EQ(out, 0.0);
  EXPECT_FALSE(empty.Finalize(AggFunc::kAvg, &out).ok());
  EXPECT_FALSE(empty.Finalize(AggFunc::kMin, &out).ok());
  EXPECT_FALSE(empty.Finalize(AggFunc::kMax, &out).ok());
  EXPECT_FALSE(empty.Finalize(AggFunc::kVariance, &out).ok());

  AggAccum acc;
  acc.AddValue(3, true);
  acc.AddValue(5, true);
  ASSERT_TRUE(acc.Finalize(AggFunc::kVariance, &out).ok());
  EXPECT_DOUBLE_EQ(out, 1.0);  // values 3,5: mean 4, var 1
  ASSERT_TRUE(acc.Finalize(AggFunc::kMin, &out).ok());
  EXPECT_EQ(out, 3.0);

  AggAccum overflow;
  overflow.sum = static_cast<__int128>(INT64_MAX) + 1;
  overflow.count = 1;
  EXPECT_EQ(overflow.Finalize(AggFunc::kSum, &out).code(),
            StatusCode::kOverflow);
}

TEST(PipelineEdgeTest, EmptyValueRangeYieldsEmptyAggregates) {
  Fx f = Make(3000, 3);
  Engine engine(PipelineOptions::EtsqpPrune(1));
  LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kAvg);
  plan.value_filter.active = true;
  plan.value_filter.lo = 100;
  plan.value_filter.hi = 50;  // empty range
  auto result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 0u);  // AVG of empty set: no row
}

TEST(PipelineEdgeTest, WindowPastDataYieldsNoRows) {
  Fx f = Make(1000, 5);
  Engine engine(PipelineOptions::Etsqp(1));
  LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kSum);
  plan.window.active = true;
  plan.window.t_min = f.times.back() + 1000;
  plan.window.delta_t = 100;
  auto result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 0u);
}

TEST(PipelineEdgeTest, GorillaTimeColumnPositionsWork) {
  // Non-TS2DIFF time encoding exercises the generic (decode + search)
  // position path of SlicePositions.
  Fx f = Make(5000, 7, enc::ColumnEncoding::kTs2Diff,
              enc::ColumnEncoding::kGorilla);
  Engine engine(PipelineOptions::Etsqp(1));
  LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kSum);
  plan.time_filter = TimeRange{f.times[1000], f.times[4000]};
  auto result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  __int128 expected = 0;
  for (size_t i = 1000; i <= 4000; ++i) expected += f.values[i];
  EXPECT_EQ(result.value().columns[0][0],
            static_cast<double>(static_cast<int64_t>(expected)));
}

TEST(PipelineEdgeTest, DeltaRleWindowedFusion) {
  Fx f = Make(9000, 11, enc::ColumnEncoding::kDeltaRle);
  Engine fused(PipelineOptions::Etsqp(1));
  Engine serial(PipelineOptions::Serial());
  LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kSum);
  plan.window.active = true;
  plan.window.t_min = 0;
  plan.window.delta_t = 3000;
  auto a = fused.Execute(plan, f.store);
  auto b = serial.Execute(plan, f.store);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
  for (size_t r = 0; r < a.value().num_rows(); ++r) {
    EXPECT_EQ(a.value().columns[1][r], b.value().columns[1][r]) << r;
  }
}

TEST(PipelineEdgeTest, WindowedMinMaxCountMatchReference) {
  Fx f = Make(8000, 17);
  Engine engine(PipelineOptions::Etsqp(2));
  for (AggFunc func : {AggFunc::kMin, AggFunc::kMax, AggFunc::kCount,
                       AggFunc::kVariance}) {
    LogicalPlan plan = LogicalPlan::Aggregate("s", func);
    plan.window.active = true;
    plan.window.t_min = 0;
    plan.window.delta_t = 2500;
    auto result = engine.Execute(plan, f.store);
    ASSERT_TRUE(result.ok()) << AggFuncName(func);
    const QueryResult& qr = result.value();
    ASSERT_GT(qr.num_rows(), 2u);
    for (size_t r = 0; r < qr.num_rows(); ++r) {
      int64_t ws = static_cast<int64_t>(qr.columns[0][r]);
      int64_t we = ws + 2500;
      double sum = 0, sq = 0, mn = 1e18, mx = -1e18, cnt = 0;
      for (size_t i = 0; i < f.times.size(); ++i) {
        if (f.times[i] < ws || f.times[i] >= we) continue;
        double v = static_cast<double>(f.values[i]);
        sum += v;
        sq += v * v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        cnt += 1;
      }
      double expected = func == AggFunc::kMin   ? mn
                        : func == AggFunc::kMax ? mx
                        : func == AggFunc::kCount
                            ? cnt
                            : sq / cnt - (sum / cnt) * (sum / cnt);
      EXPECT_NEAR(qr.columns[1][r], expected, 1e-6)
          << AggFuncName(func) << " window " << ws;
    }
  }
}

TEST(PipelineEdgeTest, SlicePartitionsSumToWhole) {
  // Any block-aligned partition of a page must aggregate to the same total
  // (the invariant page slicing relies on, Section III-C).
  Fx f = Make(8192, 19, enc::ColumnEncoding::kTs2Diff,
              enc::ColumnEncoding::kTs2Diff, 8192);
  auto series = f.store.GetSeries("s");
  ASSERT_TRUE(series.ok());
  const storage::Page& page = *series.value()->pages[0];
  PipelineOptions opt = PipelineOptions::Etsqp(1);
  AggAccum whole;
  QueryStats st;
  ASSERT_TRUE(AggregateSlice(page, 0, page.header.count, TimeRange{},
                             ValueRange{}, AggFunc::kSum, opt, &whole, &st)
                  .ok());
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    // Random block-aligned cut points.
    std::vector<size_t> cuts{0, page.header.count};
    for (int c = 0; c < 3; ++c) {
      cuts.push_back((rng() % 8) * 1024);
    }
    std::sort(cuts.begin(), cuts.end());
    AggAccum parts;
    for (size_t i = 1; i < cuts.size(); ++i) {
      if (cuts[i] == cuts[i - 1]) continue;
      AggAccum part;
      ASSERT_TRUE(AggregateSlice(page, cuts[i - 1], cuts[i], TimeRange{},
                                 ValueRange{}, AggFunc::kSum, opt, &part, &st)
                      .ok());
      parts.Merge(part);
    }
    EXPECT_TRUE(parts.sum == whole.sum) << trial;
    EXPECT_EQ(parts.count, whole.count) << trial;
  }
}

class StrategySweepTest
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(StrategySweepTest, RandomFiltersMatchReference) {
  auto [strat, prune, fusion] = GetParam();
  Fx f = Make(20000, 13);
  PipelineOptions o;
  o.strategy = static_cast<DecodeStrategy>(strat);
  o.prune = prune;
  o.fusion = fusion;
  o.threads = 2;
  Engine engine(o);
  std::mt19937_64 rng(100 + strat * 7 + prune * 3 + fusion);
  int64_t tmax = f.times.back();
  for (int trial = 0; trial < 8; ++trial) {
    LogicalPlan plan = LogicalPlan::Aggregate("s", AggFunc::kSum);
    if (trial % 2 == 0) {
      plan.time_filter.lo = static_cast<int64_t>(rng() % tmax);
      plan.time_filter.hi =
          plan.time_filter.lo + static_cast<int64_t>(rng() % tmax);
    }
    if (trial % 3 == 0) {
      plan.value_filter.active = true;
      plan.value_filter.lo = -200 + static_cast<int64_t>(rng() % 200);
      plan.value_filter.hi =
          plan.value_filter.lo + static_cast<int64_t>(rng() % 400);
    }
    __int128 expected = 0;
    for (size_t i = 0; i < f.times.size(); ++i) {
      if (!plan.time_filter.Contains(f.times[i])) continue;
      if (!plan.value_filter.Contains(f.values[i])) continue;
      expected += f.values[i];
    }
    auto result = engine.Execute(plan, f.store);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().columns[0][0],
              static_cast<double>(static_cast<int64_t>(expected)))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrategySweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),  // etsqp, serial, sboost
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace etsqp::exec
