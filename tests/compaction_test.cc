// Background-compaction subsystem tests: CodecAdvisor shape-driven codec
// picks, the Compactor's four-step pass (merge undersized pages, drop
// tombstoned/TTL-expired points, reconcile out-of-order overlap buffers,
// adaptive re-encoding — all byte-exact on surviving data), TsFile v2
// round-trips and corruption rejection (v1 files stay readable and clean
// stores keep writing v1), WAL-replayed delete/TTL/out-of-order state, and
// the mixed-shape acceptance bar: adaptive compaction must shrink on-disk
// size >= 15% versus fixed-codec sealing with byte-identical aggregates.
// The *Concurrency* suites also run in CI's ThreadSanitizer job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bitstream.h"
#include "db/database.h"
#include "db/iotdb_lite.h"
#include "exec/engine.h"
#include "exec/expr.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include "storage/codec_advisor.h"
#include "storage/compaction.h"
#include "storage/page.h"
#include "storage/page_builder.h"
#include "storage/series_store.h"
#include "storage/tsfile.h"

namespace etsqp::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Decodes every sealed page of `name` into (times, values) in page order.
void DecodeAll(const SeriesStore& store, const std::string& name,
               std::vector<int64_t>* times, std::vector<int64_t>* values) {
  Result<SeriesSnapshot> snap = store.GetSnapshot(name);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  times->clear();
  values->clear();
  for (const auto& page : snap.value().pages) {
    std::vector<int64_t> t(page->header.count), v(page->header.count);
    ASSERT_TRUE(DecodePageColumn(page->time_data, page->header.time_encoding,
                                 page->header.count, t.data())
                    .ok());
    ASSERT_TRUE(DecodePageColumn(page->value_data, page->header.value_encoding,
                                 page->header.count, v.data())
                    .ok());
    times->insert(times->end(), t.begin(), t.end());
    values->insert(values->end(), v.begin(), v.end());
  }
}

// --- CodecAdvisor: shape statistics drive the re-encoding pick -------------

TEST(CodecAdvisorTest, ConstantRunsPickRunLengthFamily) {
  // Long runs of equal values: the run family (DeltaRle / RLBE) crushes
  // this shape; TS2DIFF spends bits per tuple regardless.
  std::vector<int64_t> v;
  for (int run = 0; run < 20; ++run) {
    for (int i = 0; i < 100; ++i) v.push_back(run * 5);
  }
  CodecAdvisor advisor;
  CodecAdvisor::Advice a =
      advisor.AdviseInt(v.data(), v.size(), enc::ColumnEncoding::kTs2Diff,
                        /*block_size=*/1024);
  EXPECT_TRUE(a.encoding == enc::ColumnEncoding::kDeltaRle ||
              a.encoding == enc::ColumnEncoding::kRlbe)
      << "picked " << enc::ColumnEncodingName(a.encoding);
  EXPECT_LT(a.encoded_bytes, a.current_bytes);
  EXPECT_GT(a.shape.mean_run, 50.0);
}

TEST(CodecAdvisorTest, SmallDeltasPickDeltaFamily) {
  // Monotone small-step values, no runs: delta codecs (TS2DIFF / Sprintz)
  // need ~2 bits/tuple where Plain burns 64.
  std::vector<int64_t> v;
  int64_t x = 1'000'000;
  uint64_t rng = 99;
  for (int i = 0; i < 2000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    x += 1 + static_cast<int64_t>(rng >> 62);  // delta in [1, 4)
    v.push_back(x);
  }
  CodecAdvisor advisor;
  CodecAdvisor::Advice a = advisor.AdviseInt(
      v.data(), v.size(), enc::ColumnEncoding::kPlain, /*block_size=*/1024);
  EXPECT_TRUE(a.encoding == enc::ColumnEncoding::kTs2Diff ||
              a.encoding == enc::ColumnEncoding::kSprintz)
      << "picked " << enc::ColumnEncodingName(a.encoding);
  EXPECT_LT(a.encoded_bytes, a.current_bytes / 8);
  EXPECT_LE(a.shape.delta_bits, 4);
}

TEST(CodecAdvisorTest, FloatsStayInXorFamily) {
  // Slowly drifting sensor floats: whatever wins must be one of the XOR /
  // pattern encoders, and no worse than the incumbent.
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(20.0 + (i % 16) * 0.25);
  CodecAdvisor advisor;
  CodecAdvisor::Advice a =
      advisor.AdviseFloat(v.data(), v.size(), enc::ColumnEncoding::kGorillaValue);
  EXPECT_TRUE(enc::IsFloatEncoding(a.encoding))
      << "picked " << enc::ColumnEncodingName(a.encoding);
  EXPECT_LE(a.encoded_bytes, a.current_bytes);
}

TEST(CodecAdvisorTest, MinGainDamperKeepsIncumbentOnNoise) {
  // Random 64-bit values: nothing beats anything by 5%, so the advisor
  // must keep the current codec rather than churn.
  std::vector<int64_t> v;
  uint64_t rng = 7;
  for (int i = 0; i < 1000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    v.push_back(static_cast<int64_t>(rng));
  }
  CodecAdvisor advisor;
  CodecAdvisor::Advice a = advisor.AdviseInt(
      v.data(), v.size(), enc::ColumnEncoding::kPlain, /*block_size=*/1024);
  EXPECT_EQ(a.encoding, enc::ColumnEncoding::kPlain);
}

TEST(CodecAdvisorTest, CostHookBreaksSizeTies) {
  // Two candidates within the tie band: a hook that makes the incumbent
  // family expensive should steer the pick toward the cheaper decode.
  std::vector<int64_t> v;
  for (int run = 0; run < 20; ++run) {
    for (int i = 0; i < 100; ++i) v.push_back(run);
  }
  CodecAdvisor::Options opt;
  opt.tie_band = 1.0;  // everything ties: the hook alone decides
  opt.min_gain = 0.0;
  opt.cost_hook = [](enc::ColumnEncoding e, bool) {
    return e == enc::ColumnEncoding::kRlbe ? 1.0 : 100.0;
  };
  CodecAdvisor advisor{opt};
  CodecAdvisor::Advice a = advisor.AdviseInt(
      v.data(), v.size(), enc::ColumnEncoding::kTs2Diff, /*block_size=*/1024);
  EXPECT_EQ(a.encoding, enc::ColumnEncoding::kRlbe)
      << "picked " << enc::ColumnEncodingName(a.encoding);
}

TEST(CodecAdvisorTest, DecodeSupportGateReturnsIncumbent) {
  // A serving layer that can decode nothing but the incumbent: the advisor
  // must return the current codec rather than propose an undecodable one.
  std::vector<int64_t> v;
  for (int i = 0; i < 2000; ++i) v.push_back(i * 3);  // TS2DIFF heaven
  CodecAdvisor::Options opt;
  opt.min_gain = 0.0;
  opt.decode_support = [](enc::ColumnEncoding e) {
    return e == enc::ColumnEncoding::kPlain;
  };
  CodecAdvisor advisor{opt};
  CodecAdvisor::Advice a = advisor.AdviseInt(
      v.data(), v.size(), enc::ColumnEncoding::kPlain, /*block_size=*/1024);
  EXPECT_EQ(a.encoding, enc::ColumnEncoding::kPlain)
      << "proposed " << enc::ColumnEncodingName(a.encoding)
      << " despite the decode-support gate rejecting it";

  CodecAdvisor::Advice f = advisor.AdviseFloat(
      nullptr, 0, enc::ColumnEncoding::kGorillaValue);
  EXPECT_EQ(f.encoding, enc::ColumnEncoding::kGorillaValue);
}

TEST(CodecAdvisorTest, DecodeSupportGateFiltersSingleCodec) {
  // Rejecting just one candidate removes it from the race but leaves the
  // rest competing normally.
  std::vector<int64_t> v;
  for (int i = 0; i < 2000; ++i) v.push_back(i * 3);
  CodecAdvisor::Options opt;
  opt.min_gain = 0.0;
  opt.decode_support = [](enc::ColumnEncoding e) {
    return e != enc::ColumnEncoding::kTs2Diff;
  };
  CodecAdvisor advisor{opt};
  CodecAdvisor::Advice a = advisor.AdviseInt(
      v.data(), v.size(), enc::ColumnEncoding::kPlain, /*block_size=*/1024);
  EXPECT_NE(a.encoding, enc::ColumnEncoding::kTs2Diff);
  EXPECT_NE(a.encoding, enc::ColumnEncoding::kPlain)
      << "a decodable smaller codec should still beat plain";
}

// --- Compactor: merge / tombstones / TTL / out-of-order --------------------

TEST(CompactorTest, MergesUndersizedPages) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 1000;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  // Ten tiny sealed pages (100 points each) far below the 1000-point
  // target: the pass must coalesce them.
  std::vector<int64_t> all_t, all_v;
  for (int p = 0; p < 10; ++p) {
    std::vector<int64_t> t(100), v(100);
    for (int i = 0; i < 100; ++i) {
      t[i] = p * 100 + i;
      v[i] = (p * 100 + i) % 37;
      all_t.push_back(t[i]);
      all_v.push_back(v[i]);
    }
    Result<Page> page = BuildPage(t.data(), v.data(), 100, opt.page);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(store.AddPage("s", std::move(page.value())).ok());
  }
  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());

  Result<SeriesSnapshot> snap = store.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().pages.size(), 1u) << "10 x 100 points -> one page";
  EXPECT_EQ(snap.value().pages[0]->header.tier, 1);
  EXPECT_EQ(snap.value().pages[0]->header.level, 1);
  std::vector<int64_t> t, v;
  DecodeAll(store, "s", &t, &v);
  EXPECT_EQ(t, all_t);
  EXPECT_EQ(v, all_v);
  metrics::CompactionStats cs = compactor.stats();
  EXPECT_EQ(cs.pages_in, 10u);
  EXPECT_EQ(cs.pages_out, 1u);
}

TEST(CompactorTest, DropsTombstonedPointsPhysically) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 100;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store.Append("s", i, i * 3).ok());
  }
  ASSERT_TRUE(store.Flush("s").ok());
  ASSERT_TRUE(store.DeleteRange("s", 250, 449).ok());
  EXPECT_EQ(store.Tombstones("s").size(), 1u);

  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());

  std::vector<int64_t> t, v;
  DecodeAll(store, "s", &t, &v);
  ASSERT_EQ(t.size(), 800u);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_TRUE(t[i] < 250 || t[i] > 449) << "deleted point survived: " << t[i];
    EXPECT_EQ(v[i], t[i] * 3);
  }
  // The range is physically applied: tombstone gone, counters agree.
  EXPECT_TRUE(store.Tombstones("s").empty());
  metrics::CompactionStats cs = compactor.stats();
  EXPECT_EQ(cs.deleted_points_dropped, 200u);
  EXPECT_EQ(cs.tombstones_resolved, 1u);
}

TEST(CompactorTest, TtlExpiredPointsDropAtCompaction) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 100;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Append("s", 1000 + i, i).ok());
  }
  ASSERT_TRUE(store.Flush("s").ok());
  // Keep the newest 100ns: everything older than last_time - 100 = 1399
  // is expired. The snapshot masks immediately ...
  ASSERT_TRUE(store.SetTtl("s", 100).ok());
  Result<SeriesSnapshot> masked = store.GetSnapshot("s");
  ASSERT_TRUE(masked.ok());
  ASSERT_FALSE(masked.value().tombstones.empty());

  // ... and compaction drops physically.
  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());
  std::vector<int64_t> t, v;
  DecodeAll(store, "s", &t, &v);
  ASSERT_FALSE(t.empty());
  for (int64_t time : t) EXPECT_GT(time, 1399) << "expired point survived";
  EXPECT_GT(compactor.stats().deleted_points_dropped, 0u);
}

TEST(CompactorTest, ReconcilesOutOfOrderPoints) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 100;
  opt.allow_out_of_order = true;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  // In-order even timestamps, sealed.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Append("s", i * 2, i).ok());
  }
  ASSERT_TRUE(store.Flush("s").ok());
  // Late arrivals: odd timestamps inside the sealed range, plus a late
  // *update* of an existing timestamp (last write wins).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Append("s", i * 2 + 1, -1).ok());
  }
  ASSERT_TRUE(store.Append("s", 100, 777).ok());
  EXPECT_EQ(store.OooPoints("s"), 51u);

  // Invisible before reconciliation: the snapshot still has 500 points.
  Result<SeriesSnapshot> before = store.GetSnapshot("s");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().total_points(), 500u);

  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());
  EXPECT_EQ(store.OooPoints("s"), 0u);
  EXPECT_EQ(compactor.stats().ooo_points_merged, 51u);

  std::vector<int64_t> t, v;
  DecodeAll(store, "s", &t, &v);
  ASSERT_EQ(t.size(), 550u);  // 500 + 50 inserts (the update replaced)
  for (size_t i = 1; i < t.size(); ++i) {
    ASSERT_LT(t[i - 1], t[i]) << "merged pages must stay strictly ordered";
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == 100) {
      EXPECT_EQ(v[i], 777) << "late update must win over the sealed value";
    } else if (t[i] % 2 == 1) {
      EXPECT_EQ(v[i], -1);
    } else {
      EXPECT_EQ(v[i], t[i] / 2);
    }
  }
}

TEST(CompactorTest, AdaptiveReencodeIsByteExact) {
  // Run-heavy data sealed under the TS2DIFF default: the pass must switch
  // codecs, shrink the series, and decode identically.
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 500;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  std::vector<int64_t> times(5000), values(5000);
  for (int i = 0; i < 5000; ++i) {
    times[i] = i;
    values[i] = (i / 400) * 7;  // long constant runs
  }
  ASSERT_TRUE(
      store.AppendBatch("s", times.data(), values.data(), 5000).ok());
  ASSERT_TRUE(store.Flush("s").ok());
  const uint64_t before = store.EncodedBytes("s");

  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());
  EXPECT_LT(store.EncodedBytes("s"), before);
  EXPECT_GT(compactor.stats().pages_reencoded, 0u);

  std::vector<int64_t> t, v;
  DecodeAll(store, "s", &t, &v);
  EXPECT_EQ(t, times);
  EXPECT_EQ(v, values);
  // A second pass over already-compacted (tier 1) pages finds nothing dirty.
  const uint64_t pages_in_once = compactor.stats().pages_in;
  ASSERT_TRUE(compactor.CompactAll().ok());
  EXPECT_EQ(compactor.stats().pages_in, pages_in_once)
      << "tier-1 pages with no tombstones/OOO must not rewrite again";
}

// --- TsFile v2: persistence of compaction state ----------------------------

uint32_t FileMagic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  unsigned char buf[4] = {0, 0, 0, 0};
  EXPECT_EQ(std::fread(buf, 1, 4, f), 4u);
  std::fclose(f);
  return (static_cast<uint32_t>(buf[0]) << 24) |
         (static_cast<uint32_t>(buf[1]) << 16) |
         (static_cast<uint32_t>(buf[2]) << 8) | static_cast<uint32_t>(buf[3]);
}

TEST(TsFileV2Test, CleanStoresStillWriteV1) {
  const std::string path = TempPath("tsfile_v2_clean.tsfile");
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("s", SeriesStore::SeriesOptions{}).ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(store.Append("s", i, i).ok());
  ASSERT_TRUE(store.Flush("s").ok());
  ASSERT_TRUE(WriteTsFile(store, path).ok());
  EXPECT_EQ(FileMagic(path), kTsFileMagicV1)
      << "stores without compaction state must stay byte-compatible v1";
  SeriesStore loaded;
  ASSERT_TRUE(ReadTsFile(path, &loaded).ok());
  std::vector<int64_t> t, v;
  DecodeAll(loaded, "s", &t, &v);
  EXPECT_EQ(t.size(), 100u);
  std::remove(path.c_str());
}

TEST(TsFileV2Test, RoundTripsDeleteTtlOooAndLevels) {
  const std::string path = TempPath("tsfile_v2_meta.tsfile");
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 100;
  opt.allow_out_of_order = true;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.Append("s", i * 2, i).ok());
  }
  ASSERT_TRUE(store.Flush("s").ok());
  ASSERT_TRUE(store.DeleteRange("s", 100, 199).ok());
  ASSERT_TRUE(store.SetTtl("s", 1'000'000).ok());
  ASSERT_TRUE(store.Append("s", 11, -7).ok());  // overlap-buffered
  // Compact one series to give pages nonzero level/tier, leaving the
  // tombstone state of the second series untouched.
  ASSERT_TRUE(store.CreateSeries("u", SeriesStore::SeriesOptions{}).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store.Append("u", i, i).ok());
  ASSERT_TRUE(store.Flush("u").ok());

  ASSERT_TRUE(WriteTsFile(store, path).ok());
  EXPECT_EQ(FileMagic(path), kTsFileMagicV2);

  SeriesStore loaded;
  ASSERT_TRUE(ReadTsFile(path, &loaded).ok());
  ASSERT_EQ(loaded.Tombstones("s").size(), store.Tombstones("s").size());
  EXPECT_EQ(loaded.Tombstones("s")[0].lo, 100);
  EXPECT_EQ(loaded.Tombstones("s")[0].hi, 199);
  EXPECT_EQ(loaded.Ttl("s"), 1'000'000);
  EXPECT_EQ(loaded.OooPoints("s"), 1u);
  Result<const SeriesStore::Series*> s = loaded.GetSeries("s");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()->appended_points, 401u);

  // The restored store compacts exactly like the original would have.
  Compactor compactor(&loaded, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());
  std::vector<int64_t> t, v;
  DecodeAll(loaded, "s", &t, &v);
  for (size_t i = 0; i < t.size(); ++i) {
    ASSERT_FALSE(t[i] >= 100 && t[i] <= 199);
    if (t[i] == 11) {
      EXPECT_EQ(v[i], -7);
    }
  }
  EXPECT_EQ(loaded.OooPoints("s"), 0u);
  std::remove(path.c_str());
}

TEST(TsFileV2Test, CompactedLevelsSurviveRoundTrip) {
  const std::string path = TempPath("tsfile_v2_levels.tsfile");
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 1000;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  for (int p = 0; p < 4; ++p) {
    std::vector<int64_t> t(100), v(100);
    for (int i = 0; i < 100; ++i) t[i] = p * 100 + i, v[i] = i;
    Result<Page> page = BuildPage(t.data(), v.data(), 100, opt.page);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(store.AddPage("s", std::move(page.value())).ok());
  }
  Compactor compactor(&store, CompactionOptions{});
  ASSERT_TRUE(compactor.CompactAll().ok());
  ASSERT_TRUE(WriteTsFile(store, path).ok());
  EXPECT_EQ(FileMagic(path), kTsFileMagicV2);

  SeriesStore loaded;
  ASSERT_TRUE(ReadTsFile(path, &loaded).ok());
  Result<SeriesSnapshot> snap = loaded.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap.value().pages.size(), 1u);
  EXPECT_EQ(snap.value().pages[0]->header.level, 1);
  EXPECT_EQ(snap.value().pages[0]->header.tier, 1);
  std::remove(path.c_str());
}

/// Hand-builds a v2 file: magic | 1 series | name "s" | flags | appended |
/// ttl | tombstones | ooo | pages — then lets each test corrupt one field.
struct V2FileBuilder {
  std::vector<uint8_t> buf;

  V2FileBuilder() {
    PutFixed32BE(&buf, kTsFileMagicV2);
    PutFixed32BE(&buf, 1);  // num_series
    PutFixed32BE(&buf, 1);  // name_len
    buf.push_back('s');
  }
  void Meta(uint8_t flags, uint64_t appended, int64_t ttl) {
    buf.push_back(flags);
    PutFixed64BE(&buf, appended);
    PutFixed64BE(&buf, static_cast<uint64_t>(ttl));
  }
  void Tombstones(const std::vector<TimeInterval>& ts) {
    PutFixed32BE(&buf, static_cast<uint32_t>(ts.size()));
    for (const TimeInterval& t : ts) {
      PutFixed64BE(&buf, static_cast<uint64_t>(t.lo));
      PutFixed64BE(&buf, static_cast<uint64_t>(t.hi));
    }
  }
  void NoOoo() { PutFixed32BE(&buf, 0); }
  void Pages(const Page& p, uint8_t level, uint8_t tier) {
    PutFixed32BE(&buf, 1);  // num_pages
    buf.push_back(level);
    buf.push_back(tier);
    SerializePage(p, &buf);
  }
  std::string WriteTo(const std::string& name) const {
    const std::string path = TempPath(name);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    EXPECT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
    std::fclose(f);
    return path;
  }
};

Page MakeSmallPage() {
  int64_t t[] = {1, 2, 3, 4};
  int64_t v[] = {10, 20, 30, 40};
  Result<Page> page = BuildPage(t, v, 4, PageOptions{});
  EXPECT_TRUE(page.ok());
  return std::move(page.value());
}

TEST(TsFileV2Test, RejectsInvertedTombstone) {
  V2FileBuilder b;
  b.Meta(0, 4, 0);
  b.Tombstones({{50, 10}});  // lo > hi
  b.NoOoo();
  b.Pages(MakeSmallPage(), 0, 0);
  const std::string path = b.WriteTo("v2_bad_tomb.tsfile");
  SeriesStore store;
  Status st = ReadTsFile(path, &store);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::remove(path.c_str());
}

TEST(TsFileV2Test, RejectsCountsExceedingFile) {
  V2FileBuilder b;
  b.Meta(0, 4, 0);
  PutFixed32BE(&b.buf, 1u << 30);  // tombstone count far past EOF
  const std::string path = b.WriteTo("v2_bad_count.tsfile");
  SeriesStore store;
  Status st = ReadTsFile(path, &store);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::remove(path.c_str());
}

TEST(TsFileV2Test, RejectsLevelTierOutOfRange) {
  {
    V2FileBuilder b;
    b.Meta(0, 4, 0);
    b.Tombstones({});
    b.NoOoo();
    b.Pages(MakeSmallPage(), /*level=*/200, /*tier=*/0);
    const std::string path = b.WriteTo("v2_bad_level.tsfile");
    SeriesStore store;
    EXPECT_EQ(ReadTsFile(path, &store).code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
  {
    V2FileBuilder b;
    b.Meta(0, 4, 0);
    b.Tombstones({});
    b.NoOoo();
    b.Pages(MakeSmallPage(), /*level=*/0, /*tier=*/7);
    const std::string path = b.WriteTo("v2_bad_tier.tsfile");
    SeriesStore store;
    EXPECT_EQ(ReadTsFile(path, &store).code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
}

TEST(TsFileV2Test, RejectsAppendedUnderCount) {
  V2FileBuilder b;
  b.Meta(0, /*appended=*/1, 0);  // page holds 4 points: 1 under-counts
  b.Tombstones({});
  b.NoOoo();
  b.Pages(MakeSmallPage(), 0, 0);
  const std::string path = b.WriteTo("v2_undercount.tsfile");
  SeriesStore store;
  Status st = ReadTsFile(path, &store);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  std::remove(path.c_str());
}

TEST(TsFileV2Test, RejectsUnknownFlagsAndTruncation) {
  {
    V2FileBuilder b;
    b.Meta(/*flags=*/0x80, 4, 0);
    b.Tombstones({});
    b.NoOoo();
    b.Pages(MakeSmallPage(), 0, 0);
    const std::string path = b.WriteTo("v2_bad_flags.tsfile");
    SeriesStore store;
    EXPECT_EQ(ReadTsFile(path, &store).code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
  // Truncate a valid v2 file at every suffix boundary of the meta block:
  // no crash, clean Corruption.
  V2FileBuilder good;
  good.Meta(0, 4, 0);
  good.Tombstones({{1, 2}});
  good.NoOoo();
  good.Pages(MakeSmallPage(), 1, 1);
  for (size_t cut = 8; cut < good.buf.size(); cut += 7) {
    V2FileBuilder cutb;
    cutb.buf.assign(good.buf.begin(), good.buf.begin() + cut);
    const std::string path = cutb.WriteTo("v2_truncated.tsfile");
    SeriesStore store;
    EXPECT_EQ(ReadTsFile(path, &store).code(), StatusCode::kCorruption)
        << "cut at " << cut;
    std::remove(path.c_str());
  }
}

// --- WAL: delete / TTL / out-of-order state survives replay ----------------

TEST(CompactionWalTest, ReplayRestoresTombstonesTtlAndOoo) {
  const std::string wal = TempPath("compaction_wal.log");
  std::remove(wal.c_str());
  {
    db::Database dbx(db::Database::Options{});
    db::Database::IngestConfig cfg;
    cfg.wal_path = wal;
    ASSERT_TRUE(dbx.EnableIngest(cfg).ok());
    // Created after the WAL attached: the create record (with its
    // allow-out-of-order flag) must replay too.
    storage::SeriesStore::SeriesOptions opt;
    opt.page_size = 100;
    opt.allow_out_of_order = true;
    ASSERT_TRUE(dbx.CreateTimeseries("s", opt).ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(dbx.Insert("s", i * 2, i).ok());
    }
    ASSERT_TRUE(dbx.DeleteRange("s", 100, 149).ok());
    ASSERT_TRUE(dbx.SetTtl("s", 1'000'000).ok());
    ASSERT_TRUE(dbx.Insert("s", 33, -5).ok());  // late: overlap-buffered
    // No checkpoint: everything must come back from the WAL alone.
  }
  db::Database dbx(db::Database::Options{});
  db::Database::IngestConfig cfg;
  cfg.wal_path = wal;
  { Status est = dbx.EnableIngest(cfg); ASSERT_TRUE(est.ok()) << est.ToString(); }
  const storage::SeriesStore& store = *dbx.shard_store(0);
  ASSERT_EQ(store.Tombstones("s").size(), 1u);
  EXPECT_EQ(store.Tombstones("s")[0].lo, 100);
  EXPECT_EQ(store.Tombstones("s")[0].hi, 149);
  EXPECT_EQ(store.Ttl("s"), 1'000'000);
  EXPECT_EQ(store.OooPoints("s"), 1u);
  // Deleted range invisible after replay, late point still buffered.
  Result<exec::QueryResult> r = dbx.Query("SELECT COUNT(s) FROM s;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0][0], 300.0 - 25.0);
  std::remove(wal.c_str());
}

// --- Acceptance: mixed shapes, >= 15% smaller, byte-identical answers ------

TEST(CompactionAcceptanceTest, MixedShapeWorkloadShrinksAtLeast15Percent) {
  db::Database dbx(db::Database::Options{});
  const int kN = 20'000;
  std::vector<int64_t> times(kN);
  for (int i = 0; i < kN; ++i) times[i] = 1'600'000'000'000 + i * 1000;

  // Fixed-codec sealing: every series lands as the TS2DIFF/Gorilla default
  // regardless of shape — exactly the ingest path's blind spot.
  std::vector<int64_t> runs(kN), deltas(kN), walk(kN);
  std::vector<double> floats(kN);
  uint64_t rng = 0xabcdef;
  int64_t x = 0;
  for (int i = 0; i < kN; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    // Long constant runs between huge level jumps: TS2DIFF pays the jump's
    // bit width across whole blocks, the run family pays ~nothing.
    runs[i] = (i / 700) * (int64_t{1} << 40);
    deltas[i] = 5'000'000 + i * 3 + (i % 2);             // tiny deltas
    x += static_cast<int64_t>(rng >> 33) % 2001 - 1000;  // random walk
    walk[i] = x;
    floats[i] = 20.0 + (i % 32) * 0.125;                 // few XOR bits
  }
  ASSERT_TRUE(dbx.CreateTimeseries("runs", 2000).ok());
  ASSERT_TRUE(dbx.CreateTimeseries("deltas", 2000).ok());
  ASSERT_TRUE(dbx.CreateTimeseries("walk", 2000).ok());
  ASSERT_TRUE(dbx.CreateFloatTimeseries("floats").ok());
  ASSERT_TRUE(dbx.InsertBatch("runs", times.data(), runs.data(), kN).ok());
  ASSERT_TRUE(dbx.InsertBatch("deltas", times.data(), deltas.data(), kN).ok());
  ASSERT_TRUE(dbx.InsertBatch("walk", times.data(), walk.data(), kN).ok());
  ASSERT_TRUE(
      dbx.InsertBatchF64("floats", times.data(), floats.data(), kN).ok());
  ASSERT_TRUE(dbx.Flush().ok());

  const std::vector<std::string> queries = {
      "SELECT SUM(runs) FROM runs;",      "SELECT MIN(deltas) FROM deltas;",
      "SELECT MAX(walk) FROM walk;",      "SELECT AVG(floats) FROM floats;",
      "SELECT COUNT(runs) FROM runs;",
  };
  std::vector<double> before;
  for (const std::string& q : queries) {
    Result<exec::QueryResult> r = dbx.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    before.push_back(r.value().columns[0][0]);
  }
  uint64_t bytes_before = 0;
  for (const char* name : {"runs", "deltas", "walk", "floats"}) {
    bytes_before += dbx.shard_store(0)->EncodedBytes(name);
  }

  ASSERT_TRUE(dbx.EnableCompaction().ok());
  ASSERT_TRUE(dbx.Compact().ok());

  uint64_t bytes_after = 0;
  for (const char* name : {"runs", "deltas", "walk", "floats"}) {
    bytes_after += dbx.shard_store(0)->EncodedBytes(name);
  }
  EXPECT_LE(static_cast<double>(bytes_after),
            0.85 * static_cast<double>(bytes_before))
      << "compaction saved only "
      << 100.0 * (1.0 - static_cast<double>(bytes_after) /
                            static_cast<double>(bytes_before))
      << "%";
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<exec::QueryResult> r = dbx.Query(queries[i]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().columns[0][0], before[i])
        << queries[i] << " changed after compaction";
  }
  metrics::CompactionStats cs = dbx.compaction_stats();
  EXPECT_GT(cs.pages_reencoded, 0u);
  EXPECT_EQ(cs.installs_aborted, 0u);
}

// --- Concurrency (runs under TSan in CI): queries vs compaction ------------

TEST(CompactionConcurrencyTest, QueriesRaceCompactionDeletesAndOoo) {
  db::Database dbx(db::Database::Options{db::Database::Mode::kSimd,
                                         /*threads=*/2, /*shards=*/1,
                                         /*cache_budget_bytes=*/1 << 20});
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 256;
  opt.allow_out_of_order = true;
  ASSERT_TRUE(dbx.CreateTimeseries("s", opt).ok());
  const int kN = 4096;
  std::vector<int64_t> t(kN), v(kN);
  for (int i = 0; i < kN; ++i) {
    t[i] = i * 4;  // gaps leave room for late arrivals
    v[i] = 1;
  }
  ASSERT_TRUE(dbx.InsertBatch("s", t.data(), v.data(), kN).ok());
  ASSERT_TRUE(dbx.Flush().ok());
  ASSERT_TRUE(dbx.EnableCompaction().ok());

  // Every mutation keeps SUM(s) == kN: deletes remove zeros, late points
  // add zeros, so any correctly-masked snapshot answers exactly kN.
  ASSERT_TRUE(dbx.Insert("s", 1, 0).ok());
  ASSERT_TRUE(dbx.DeleteRange("s", 1, 1).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread mutator([&] {
    for (int round = 0; round < 30 && !stop.load(); ++round) {
      for (int k = 0; k < 8; ++k) {
        int64_t late = round * 64 + k * 8 + 2;  // unused odd-ish slots
        if (!dbx.Insert("s", late, 0).ok()) ++failures;
      }
      // Covers only the k=0 late point (time ≡ 2 mod 4, value 0): sealed
      // points sit at multiples of 4 and stay untouched.
      if (!dbx.DeleteRange("s", round * 64 + 1, round * 64 + 3).ok()) {
        ++failures;
      }
      if (!dbx.Compact().ok()) ++failures;
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Result<exec::QueryResult> qr = dbx.Query("SELECT SUM(s) FROM s;");
        if (!qr.ok()) {
          ++failures;
          continue;
        }
        // Deleted values and late arrivals are all zeros: the sum must
        // read kN through every interleaving of mask / merge / install.
        if (qr.value().columns[0][0] != static_cast<double>(kN)) ++failures;
      }
    });
  }
  mutator.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(dbx.compaction_stats().runs, 0u);
}

// --- Pruning-index staleness (runs under TSan in CI, ctest label
// `pruning`): compaction installs splice a rewritten page list and must
// swap in a rebuilt pruning-index leaf block under the same unique lock.
// Snapshots taken during installs must stay bit-consistent (leaves mirror
// headers) and schedule the same jobs with the index on and off.

/// True when both pipelines schedule the same (page, slice, tail, masked)
/// jobs — the pruning-index contract.
bool SameJobs(const exec::PipelineSpec& a, const exec::PipelineSpec& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].input != b.jobs[j].input ||
        a.jobs[j].page_index != b.jobs[j].page_index ||
        a.jobs[j].begin != b.jobs[j].begin ||
        a.jobs[j].end != b.jobs[j].end || a.jobs[j].tail != b.jobs[j].tail ||
        a.jobs[j].masked != b.jobs[j].masked) {
      return false;
    }
  }
  return true;
}

TEST(PruningStalenessTest, SnapshotDuringCompactionInstallStaysConsistent) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  SeriesStore::SeriesOptions opt;
  opt.page_size = 64;
  opt.allow_out_of_order = true;
  ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
  const int kN = 2048;
  std::vector<int64_t> t(kN), v(kN);
  for (int i = 0; i < kN; ++i) {
    t[i] = i * 4;  // gaps leave room for late arrivals
    v[i] = 1;
  }
  ASSERT_TRUE(dbi.InsertBatch("s", t.data(), v.data(), kN).ok());
  ASSERT_TRUE(dbi.Flush().ok());
  ASSERT_TRUE(dbi.EnableCompaction().ok());

  exec::LogicalPlan plan =
      exec::LogicalPlan::Aggregate("s", exec::AggFunc::kSum);
  plan.value_filter.active = true;
  plan.value_filter.lo = 1;
  plan.value_filter.hi = 1;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread mutator([&] {
    for (int round = 0; round < 20 && !stop.load(); ++round) {
      int64_t late = round * 32 + 2;  // time ≡ 2 mod 4: never sealed slots
      if (!dbi.Insert("s", late, 0).ok()) ++failures;
      if (!dbi.DeleteRange("s", late, late).ok()) ++failures;
      if (!dbi.Compact().ok()) ++failures;
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Result<SeriesSnapshot> snap = dbi.store()->GetSnapshot("s");
        if (!snap.ok()) {
          ++failures;
          break;
        }
        const SeriesSnapshot& s = snap.value();
        if (s.prune_leaves == nullptr ||
            s.prune_leaves->count() != s.pages.size()) {
          ++failures;  // stale leaf block escaped the install lock
          continue;
        }
        for (size_t p = 0; p < s.pages.size(); ++p) {
          const PageHeader& h = s.pages[p]->header;
          if (s.prune_leaves->time_min()[p] != h.min_time ||
              s.prune_leaves->time_max()[p] != h.max_time) {
            ++failures;
          }
        }
        std::vector<SeriesSnapshot> inputs{s};
        auto on = exec::BuildPipeline(
            plan, inputs, exec::PipelineOptions::Etsqp(1).WithPruneIndex(true));
        auto off = exec::BuildPipeline(
            plan, inputs,
            exec::PipelineOptions::Etsqp(1).WithPruneIndex(false));
        if (!on.ok() || !off.ok() ||
            !SameJobs(on.value(), off.value())) {
          ++failures;
        }
      }
    });
  }
  mutator.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  // All late points were deleted again: SUM of the survivors is kN.
  Result<exec::QueryResult> qr = dbi.Query("SELECT SUM(s) FROM s;");
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr.value().columns[0][0], static_cast<double>(kN));
}

TEST(PruningStalenessTest, DeleteRangeKeepsIndexConsistent) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page_size = 16;
  ASSERT_TRUE(store.CreateSeries("s", opt).ok());
  std::vector<int64_t> times(64), values(64);
  for (int64_t i = 0; i < 64; ++i) {
    times[i] = i;
    values[i] = 100 + i;
  }
  ASSERT_TRUE(store.AppendBatch("s", times.data(), values.data(), 64).ok());
  ASSERT_TRUE(store.Flush().ok());

  // Page 1 fully deleted, page 2 partially: the index must keep page 2
  // even though the tombstone makes its header value bounds unreliable.
  ASSERT_TRUE(store.DeleteRange("s", 16, 35).ok());

  Result<SeriesSnapshot> snap = store.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  const SeriesSnapshot& s = snap.value();
  ASSERT_NE(s.prune_leaves, nullptr);
  EXPECT_EQ(s.prune_leaves->count(), s.pages.size());
  // The envelope is conservative: deletes never shrink it.
  EXPECT_LE(s.summary.time_min, 0);
  EXPECT_GE(s.summary.time_max, 63);

  exec::LogicalPlan plan =
      exec::LogicalPlan::Aggregate("s", exec::AggFunc::kSum);
  plan.value_filter.active = true;
  plan.value_filter.lo = 116;  // page 1's values (fully deleted) ...
  plan.value_filter.hi = 140;  // ... through page 2's surviving half
  std::vector<SeriesSnapshot> inputs{s};
  auto on = exec::BuildPipeline(
      plan, inputs, exec::PipelineOptions::Etsqp(1).WithPruneIndex(true));
  auto off = exec::BuildPipeline(
      plan, inputs, exec::PipelineOptions::Etsqp(1).WithPruneIndex(false));
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_TRUE(SameJobs(on.value(), off.value()));
  EXPECT_EQ(on.value().plan_stats.pages_pruned,
            off.value().plan_stats.pages_pruned);

  // Identical query results with the index on and off, before and after
  // the tombstones become physical drops.
  for (int pass = 0; pass < 2; ++pass) {
    double want = 0;
    for (int64_t i = 36; i <= 40; ++i) want += 100 + i;  // 136..140 survive
    for (bool index_on : {true, false}) {
      exec::Engine engine(
          exec::PipelineOptions::Etsqp(1).WithPruneIndex(index_on));
      Result<exec::QueryResult> r = engine.Execute(plan, store);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().columns[0][0], want)
          << "pass=" << pass << " index=" << index_on;
    }
    if (pass == 0) {
      Compactor compactor(&store, CompactionOptions{});
      ASSERT_TRUE(compactor.CompactSeries("s").ok());
    }
  }
}

}  // namespace
}  // namespace etsqp::storage
