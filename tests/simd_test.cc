#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>

#include "common/aligned_buffer.h"
#include "common/bit_util.h"
#include "common/bitstream.h"
#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "encoding/fibonacci.h"
#include "simd/agg_simd.h"
#include "simd/delta_simd.h"
#include "simd/fib_simd.h"
#include "encoding/streamvbyte.h"
#include "simd/filter_simd.h"
#include "simd/merge_simd.h"
#include "simd/rle_flatten.h"
#include "simd/streamvbyte_simd.h"
#include "simd/transposed_unpack.h"
#include "simd/transposed_unpack_avx512.h"
#include "simd/unpack.h"
#include "simd/unpack_plan.h"

namespace etsqp::simd {
namespace {

AlignedBuffer PackValues(const std::vector<uint64_t>& values, int width) {
  BitWriter w;
  enc::PackBE(values.data(), values.size(), width, &w);
  auto bytes = w.TakeBuffer();
  AlignedBuffer buf;
  buf.Assign(bytes.data(), bytes.size());
  return buf;
}

// --------------------------------------------------------------- unpack

class UnpackWidthSizeTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(UnpackWidthSizeTest, Avx2MatchesScalar) {
  auto [width, n] = GetParam();
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(width * 1000 + n);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(values, width);
  std::vector<uint32_t> simd_out(n, 0xDEADBEEF), scalar_out(n, 1);
  UnpackBE32Avx2(buf.data(), buf.size(), n, width, simd_out.data());
  UnpackBE32Scalar(buf.data(), buf.size(), n, width, scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n=" << n;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(scalar_out[i], static_cast<uint32_t>(values[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnpackWidthSizeTest,
    ::testing::Combine(::testing::Range(1, 33),
                       ::testing::Values<size_t>(1, 8, 63, 257, 4096)));

class Unpack512Test : public ::testing::TestWithParam<int> {};

TEST_P(Unpack512Test, MatchesScalar) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512 VBMI";
  int width = GetParam();
  std::mt19937_64 rng(width + 900);
  for (size_t n : {1ul, 16ul, 17ul, 500ul, 4096ul}) {
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng() & MaskLow64(width);
    AlignedBuffer buf = PackValues(values, width);
    std::vector<uint32_t> a(n, 1), b(n, 2);
    UnpackBE32Avx512(buf.data(), buf.size(), n, width, a.data());
    UnpackBE32Scalar(buf.data(), buf.size(), n, width, b.data());
    ASSERT_EQ(a, b) << "width=" << width << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Unpack512Test, ::testing::Range(1, 26));

TEST(UnpackPlanTest, FastPlanInvariants) {
  for (int width = 1; width <= 25; ++width) {
    const UnpackPlan& plan = GetUnpackPlan(width);
    EXPECT_FALSE(plan.wide);
    EXPECT_EQ(plan.bytes_per_iter, width);
    EXPECT_EQ(plan.mask, MaskLow32(width));
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(plan.shuffle[i] == 0x80 || plan.shuffle[i] <= 15);
    }
    for (int j = 0; j < 8; ++j) {
      EXPECT_LT(plan.shift[j], 32u);
    }
  }
}

TEST(UnpackPlanTest, WidePlanInvariants) {
  for (int width = 26; width <= 32; ++width) {
    const UnpackPlan& plan = GetUnpackPlan(width);
    EXPECT_TRUE(plan.wide);
    EXPECT_EQ(plan.mask64, MaskLow64(width));
    for (int s = 0; s < 2; ++s) {
      for (int k = 0; k < 4; ++k) {
        EXPECT_LT(plan.steps[s].shift[k], 64u);
      }
    }
  }
}

TEST(UnpackPlanTest, TransposedPlanCoversAllValues) {
  for (int width : {1, 7, 10, 13, 25}) {
    for (int n_v : {1, 3, 6, 8, 16}) {
      const TransposedPlan& plan = GetTransposedPlan(width, n_v);
      EXPECT_EQ(plan.values_per_chunk, n_v * 8);
      EXPECT_EQ(plan.bytes_per_chunk, n_v * width);
      // Every (vector, lane) slot must be written by exactly one segment.
      for (int j = 0; j < n_v; ++j) {
        for (int lane = 0; lane < 8; ++lane) {
          int writers = 0;
          for (size_t s = 0; s < plan.segments.size(); ++s) {
            const auto& shuf = plan.shuffles[s * n_v + j];
            int base = (lane / 4) * 16 + (lane % 4) * 4;
            if (shuf[base] != 0x80) ++writers;
          }
          EXPECT_EQ(writers, 1) << "w=" << width << " nv=" << n_v;
        }
      }
    }
  }
}

TEST(UnpackPlanTest, PlansAreCachedSingletons) {
  // The JIT decoder generator (Section III-B) computes each plan once; the
  // steady state is a lookup.
  const UnpackPlan* a = &GetUnpackPlan(10);
  const UnpackPlan* b = &GetUnpackPlan(10);
  EXPECT_EQ(a, b);
  const TransposedPlan* c = &GetTransposedPlan(10, 6);
  const TransposedPlan* d = &GetTransposedPlan(10, 6);
  EXPECT_EQ(c, d);
  EXPECT_NE(c, &GetTransposedPlan(10, 4));
}

TEST(UnpackPlanTest, LaneGroupMappingIsBijective) {
  for (int g = 0; g < 8; ++g) {
    EXPECT_EQ(LaneToGroup(GroupToLane(g)), g);
  }
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(GroupToLane(LaneToGroup(l)), l);
  }
}

// --------------------------------------------------------------- delta

class TransposedDeltaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TransposedDeltaTest, Avx2MatchesScalar) {
  auto [width, n_v] = GetParam();
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(width * 100 + n_v);
  size_t n = 1337;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width) & 0x3FFF;
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> simd_out(n), scalar_out(n);
  DeltaDecodeOffsetsAvx2(buf.data(), buf.size(), n, width, -7, n_v, 100,
                         simd_out.data());
  DeltaDecodeOffsetsScalar(buf.data(), buf.size(), n, width, -7, 100,
                           scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n_v=" << n_v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransposedDeltaTest,
    ::testing::Combine(::testing::Range(1, 26),
                       ::testing::Values(1, 2, 3, 5, 6, 8, 12, 16)));

class Avx512DeltaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Avx512DeltaTest, MatchesScalar) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512 VBMI";
  auto [width, n_v] = GetParam();
  std::mt19937_64 rng(width * 31 + n_v);
  size_t n = 2111;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width) & 0x3FFF;
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> simd_out(n), scalar_out(n);
  DeltaDecodeOffsetsAvx512(buf.data(), buf.size(), n, width, -3, n_v, 42,
                           simd_out.data());
  DeltaDecodeOffsetsScalar(buf.data(), buf.size(), n, width, -3, 42,
                           scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n_v=" << n_v;

  // Unordered variant: same multiset.
  std::vector<int32_t> unordered(n);
  DeltaDecodeOffsetsAvx512Unordered(buf.data(), buf.size(), n, width, -3, n_v,
                                    42, unordered.data());
  std::sort(simd_out.begin(), simd_out.end());
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(simd_out, unordered);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Avx512DeltaTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 10, 13, 17, 21, 25),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16)));

TEST(TransposedDeltaTest, DefaultNvInRange) {
  for (int width = 1; width <= 25; ++width) {
    int n_v = DefaultNumVectors(width);
    EXPECT_GE(n_v, 1) << width;
    EXPECT_LE(n_v, 16) << width;
  }
  // The paper's Figure 4 example: width 10 -> 6 vectors.
  EXPECT_EQ(DefaultNumVectors(10), 6);
}

TEST(TransposedDeltaTest, InitParameterShiftsOutput) {
  std::vector<uint64_t> residuals(64, 1);
  AlignedBuffer buf = PackValues(residuals, 4);
  std::vector<int32_t> a(64), b(64);
  DeltaDecodeOffsets(buf.data(), buf.size(), 64, 4, 0, 0, 0, a.data());
  DeltaDecodeOffsets(buf.data(), buf.size(), 64, 4, 0, 0, 50, b.data());
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(b[i], a[i] + 50);
}

TEST(TransposedDeltaTest, UnorderedIsPermutationWithEqualSums) {
  std::mt19937_64 rng(55);
  size_t n = 1536;
  int width = 9;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> ordered(n), unordered(n);
  DeltaDecodeOffsets(buf.data(), buf.size(), n, width, 2, 0, 5,
                     ordered.data());
  DeltaDecodeOffsetsUnordered(buf.data(), buf.size(), n, width, 2, 0, 5,
                              unordered.data());
  std::vector<int32_t> a = ordered, b = unordered;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same multiset -> same SUM/MIN/MAX/COUNT
  EXPECT_NE(ordered, unordered);  // layout actually differs (n_v=5 chunks)
}

TEST(PrefixSumTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(77);
  for (size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 100ul, 1000ul}) {
    std::vector<int32_t> a(n), b;
    for (auto& v : a) v = static_cast<int32_t>(rng() % 1000) - 500;
    b = a;
    PrefixSumInt32Avx2(a.data(), n);
    PrefixSumInt32Scalar(b.data(), n);
    EXPECT_EQ(a, b) << n;
  }
}

TEST(SboostTest, MatchesTransposedDecode) {
  std::mt19937_64 rng(88);
  size_t n = 2000;
  int width = 12;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> sboost(n), etsqp(n);
  SboostDeltaDecode(buf.data(), buf.size(), n, width, 3, 11, sboost.data());
  DeltaDecodeOffsets(buf.data(), buf.size(), n, width, 3, 0, 11,
                     etsqp.data());
  EXPECT_EQ(sboost, etsqp);
}

// --------------------------------------------------------------- flatten

TEST(FlattenTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(99);
  size_t num_pairs = 200;
  std::vector<int32_t> deltas(num_pairs);
  std::vector<uint32_t> runs(num_pairs);
  size_t total = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    deltas[i] = static_cast<int32_t>(rng() % 21) - 10;
    runs[i] = 1 + static_cast<uint32_t>(rng() % 40);
    total += runs[i];
  }
  std::vector<int32_t> a(total), b(total);
  size_t na = FlattenDeltaRunsAvx2(deltas.data(), runs.data(), num_pairs, 5,
                                   a.data());
  size_t nb = FlattenDeltaRunsScalar(deltas.data(), runs.data(), num_pairs, 5,
                                     b.data());
  ASSERT_EQ(na, total);
  ASSERT_EQ(nb, total);
  EXPECT_EQ(a, b);
}

TEST(FlattenTest, LongRunsUseRamps) {
  std::vector<int32_t> deltas = {3};
  std::vector<uint32_t> runs = {100};
  std::vector<int32_t> out(100);
  size_t n = FlattenDeltaRuns(deltas.data(), runs.data(), 1, 10, out.data());
  ASSERT_EQ(n, 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], 10 + 3 * static_cast<int32_t>(i + 1));
  }
}

// --------------------------------------------------------------- filter

TEST(FilterTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(111);
  for (size_t n : {1ul, 8ul, 64ul, 65ul, 1000ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng() % 2000) - 1000;
    std::vector<uint64_t> ma(CeilDiv(n, 64)), mb(CeilDiv(n, 64));
    RangeFilterMaskInt32Avx2(values.data(), n, -100, 250, ma.data());
    RangeFilterMaskInt32Scalar(values.data(), n, -100, 250, mb.data());
    EXPECT_EQ(ma, mb) << n;
  }
}

TEST(FilterTest, MaskSemantics) {
  std::vector<int32_t> values = {1, 5, 10, 15, 20};
  uint64_t mask = 0;
  RangeFilterMaskInt32(values.data(), values.size(), 5, 15, &mask);
  EXPECT_EQ(mask, 0b01110u);
  EXPECT_EQ(CountMaskBits(&mask, values.size()), 3u);
}

TEST(FilterTest, CountMaskBitsPartialWord) {
  uint64_t mask[2] = {~0ull, ~0ull};
  EXPECT_EQ(CountMaskBits(mask, 128), 128u);
  EXPECT_EQ(CountMaskBits(mask, 70), 70u);
  EXPECT_EQ(CountMaskBits(mask, 64), 64u);
  EXPECT_EQ(CountMaskBits(mask, 1), 1u);
}

TEST(FilterTest, AndMasks) {
  uint64_t a[1] = {0b1100};
  uint64_t b[1] = {0b1010};
  uint64_t out[1];
  AndMasks(a, b, 4, out);
  EXPECT_EQ(out[0], 0b1000u);
}

TEST(JoinMaskTest, BasicIntersection) {
  std::vector<int64_t> l = {1, 3, 5, 7, 9, 11};
  std::vector<int64_t> r = {2, 3, 4, 7, 8, 11, 20};
  uint64_t ml = 0, mr = 0;
  size_t matches =
      JoinMasksInt64(l.data(), l.size(), r.data(), r.size(), &ml, &mr);
  EXPECT_EQ(matches, 3u);
  EXPECT_EQ(ml, 0b101010u);  // 3, 7, 11 at l-indices 1, 3, 5
  EXPECT_EQ(mr, 0b101010u);  // 3, 7, 11 at r-indices 1, 3, 5
}

TEST(JoinMaskTest, DisjointAndEmpty) {
  std::vector<int64_t> l = {1, 2, 3};
  std::vector<int64_t> r = {10, 20, 30};
  uint64_t ml = ~0ull, mr = ~0ull;
  EXPECT_EQ(JoinMasksInt64(l.data(), l.size(), r.data(), r.size(), &ml, &mr),
            0u);
  EXPECT_EQ(ml, 0u);
  EXPECT_EQ(mr, 0u);
  uint64_t m = 1;
  EXPECT_EQ(JoinMasksInt64(l.data(), 0, r.data(), r.size(), &m, &mr), 0u);
}

TEST(JoinMaskTest, MatchesScalarReferenceOnRandomSets) {
  std::mt19937_64 rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    size_t nl = 100 + rng() % 2000;
    size_t nr = 100 + rng() % 2000;
    std::vector<int64_t> l, r;
    int64_t t = 0;
    for (size_t i = 0; i < nl; ++i) l.push_back(t += 1 + rng() % 4);
    t = static_cast<int64_t>(rng() % 50);
    for (size_t i = 0; i < nr; ++i) r.push_back(t += 1 + rng() % 4);
    std::vector<uint64_t> ml(CeilDiv(nl, 64)), mr(CeilDiv(nr, 64));
    size_t matches =
        JoinMasksInt64(l.data(), nl, r.data(), nr, ml.data(), mr.data());
    // Reference via sorted intersection.
    std::vector<int64_t> expect;
    std::set_intersection(l.begin(), l.end(), r.begin(), r.end(),
                          std::back_inserter(expect));
    EXPECT_EQ(matches, expect.size());
    EXPECT_EQ(CountMaskBits(ml.data(), nl), expect.size());
    EXPECT_EQ(CountMaskBits(mr.data(), nr), expect.size());
    size_t e = 0;
    for (size_t i = 0; i < nl; ++i) {
      if (ml[i >> 6] & (1ull << (i & 63))) {
        ASSERT_EQ(l[i], expect[e++]);
      }
    }
  }
}

// --------------------------------------------------------------- agg

TEST(AggTest, MaskedSumMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(222);
  for (size_t n : {1ul, 8ul, 100ul, 4096ul}) {
    std::vector<int32_t> values(n);
    std::vector<uint64_t> mask(CeilDiv(n, 64));
    for (auto& v : values) v = static_cast<int32_t>(rng()) / 4;
    for (auto& m : mask) m = rng();
    EXPECT_EQ(MaskedSumInt32Avx2(values.data(), mask.data(), n),
              MaskedSumInt32Scalar(values.data(), mask.data(), n))
        << n;
  }
}

TEST(AggTest, SumInt32LargeMagnitudes) {
  std::vector<int32_t> values(100000, INT32_MAX);
  int64_t expected = static_cast<int64_t>(INT32_MAX) * 100000;
  EXPECT_EQ(SumInt32(values.data(), values.size()), expected);
}

TEST(AggTest, MaskedMinMax) {
  std::vector<int32_t> values = {5, -3, 100, 42, -77, 8, 9, 10, 11};
  uint64_t mask = 0b000011110;  // selects -3, 100, 42, -77
  int32_t mn, mx;
  ASSERT_TRUE(
      MaskedMinMaxInt32(values.data(), &mask, values.size(), &mn, &mx));
  EXPECT_EQ(mn, -77);
  EXPECT_EQ(mx, 100);
}

TEST(AggTest, MaskedMinMaxEmptyMask) {
  std::vector<int32_t> values = {1, 2, 3};
  uint64_t mask = 0;
  int32_t mn, mx;
  EXPECT_FALSE(
      MaskedMinMaxInt32(values.data(), &mask, values.size(), &mn, &mx));
}

TEST(AggTest, MinMaxUnmaskedMatchesScalar) {
  std::mt19937_64 rng(555);
  for (size_t n : {1ul, 2ul, 15ul, 16ul, 100ul, 4097ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng());
    int32_t mn, mx;
    MinMaxInt32(values.data(), n, &mn, &mx);
    EXPECT_EQ(mn, *std::min_element(values.begin(), values.end())) << n;
    EXPECT_EQ(mx, *std::max_element(values.begin(), values.end())) << n;
  }
}

TEST(AggTest, WeightedRampSumMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(333);
  for (size_t n : {0ul, 1ul, 8ul, 77ul, 1000ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng() % 100000) - 50000;
    EXPECT_EQ(WeightedRampSumInt32Avx2(values.data(), n),
              WeightedRampSumInt32Scalar(values.data(), n))
        << n;
  }
}

TEST(AggTest, WeightedRampSumFormula) {
  // sum (n - i) * v_i for v = [1, 1, 1], n=3: 3 + 2 + 1 = 6.
  std::vector<int32_t> values = {1, 1, 1};
  EXPECT_EQ(WeightedRampSumInt32(values.data(), 3), 6);
}

TEST(AggTest, CheckedSumDetectsOverflow) {
  std::vector<int64_t> values = {INT64_MAX, 1};
  int64_t out;
  EXPECT_FALSE(CheckedSumInt64(values.data(), values.size(), &out));
  std::vector<int64_t> ok = {INT64_MAX, -1, 1};
  EXPECT_TRUE(CheckedSumInt64(ok.data(), 2, &out));
  EXPECT_EQ(out, INT64_MAX - 1);
  EXPECT_TRUE(CheckedSumInt64(ok.data() + 1, 2, &out));
  EXPECT_EQ(out, 0);
  std::vector<int64_t> wraps = {INT64_MIN, -1};
  EXPECT_FALSE(CheckedSumInt64(wraps.data(), 2, &out));
}

// --------------------------------------------------------------- fib simd

TEST(FibSimdTest, FindsTerminators) {
  // Stream: 0101 1000 0110 0000 -> pairs end at bits 4? bits: 0,1,0,1,1,...
  // positions:           0123456789...
  std::vector<uint8_t> bytes = {0b01011000, 0b01100000};
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 16);
  // Adjacent 1 pairs: bits (3,4) and (9,10) -> seconds at 4 and 10.
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], 4u);
  EXPECT_EQ(terms[1], 10u);
}

TEST(FibSimdTest, FirstTerminatorRespectsRange) {
  std::vector<uint8_t> bytes = {0b01011000, 0b01100000};
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 0, 16), 4u);
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 5, 16), 10u);
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 11, 16),
            SIZE_MAX);
}

TEST(FibSimdTest, CrossBytePair) {
  // Bits 7 and 8 set: pair straddles the byte boundary.
  std::vector<uint8_t> bytes = {0b00000001, 0b10000000};
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 16);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], 8u);
}

TEST(FibSimdTest, CrossWordPair) {
  // Pair at bits 63/64 (8-byte window boundary).
  std::vector<uint8_t> bytes(16, 0);
  bytes[7] = 0x01;
  bytes[8] = 0x80;
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 128);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], 64u);
}

TEST(FibSimdTest, MatchesEncodedStream) {
  std::mt19937_64 rng(444);
  BitWriter w;
  std::vector<size_t> expected_ends;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng() % 10000;
    enc::FibonacciEncode(v, &w);
    expected_ends.push_back(w.bit_count() - 1);
  }
  size_t total_bits = w.bit_count();
  auto bytes = w.TakeBuffer();
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, total_bits);
  // Every true codeword end must be among the detected pairs (detection is
  // a superset: adjacent codewords can create extra candidates).
  size_t ti = 0;
  for (size_t end : expected_ends) {
    while (ti < terms.size() && terms[ti] < end) ++ti;
    ASSERT_LT(ti, terms.size());
    EXPECT_EQ(terms[ti], end);
  }
}

// ------------------------------------------------------------ merge kernels

/// Sorted stream with duplicate runs (1-3 long when allowed) separated by
/// gaps of 1-64 — the shapes the merge kernels must agree on.
std::vector<int64_t> RandomSortedTimes(std::mt19937_64& rng, size_t n,
                                       bool allow_dups) {
  std::vector<int64_t> t;
  t.reserve(n);
  int64_t cur = static_cast<int64_t>(rng() % 1000);
  while (t.size() < n) {
    size_t run = allow_dups ? 1 + rng() % 3 : 1;
    for (size_t i = 0; i < run && t.size() < n; ++i) t.push_back(cur);
    cur += 1 + static_cast<int64_t>(rng() % 64);
  }
  return t;
}

std::vector<std::pair<uint32_t, uint32_t>> IntersectWith(
    const std::vector<int64_t>& l, const std::vector<int64_t>& r,
    MergeIsa isa) {
  std::vector<uint32_t> il(std::min(l.size(), r.size()));
  std::vector<uint32_t> ir(il.size());
  size_t m = IntersectIndicesInt64(l.data(), l.size(), r.data(), r.size(),
                                   il.data(), ir.data(), isa);
  std::vector<std::pair<uint32_t, uint32_t>> out(m);
  for (size_t k = 0; k < m; ++k) out[k] = {il[k], ir[k]};
  return out;
}

TEST(MergeSimdTest, IntersectDifferentialRandomStreams) {
  std::mt19937_64 rng(2024);
  const MergeIsa kIsas[] = {MergeIsa::kSse, MergeIsa::kAvx2,
                            MergeIsa::kAvx512};
  for (int iter = 0; iter < 60; ++iter) {
    size_t nl = rng() % 500;
    size_t nr = rng() % 500;
    bool dups = (iter % 2) == 0;
    auto l = RandomSortedTimes(rng, nl, dups);
    auto r = RandomSortedTimes(rng, nr, dups);
    if (iter % 3 == 2 && !l.empty()) {
      // Heavy-overlap shape: right side samples the left stream.
      r.clear();
      for (int64_t t : l) {
        if (rng() % 3 != 0) r.push_back(t);
      }
    }
    nl = l.size();
    nr = r.size();
    std::vector<uint32_t> il(std::min(nl, nr)), ir(std::min(nl, nr));
    size_t m = IntersectIndicesInt64Scalar(l.data(), nl, r.data(), nr,
                                           il.data(), ir.data());
    std::vector<std::pair<uint32_t, uint32_t>> ref(m);
    for (size_t k = 0; k < m; ++k) ref[k] = {il[k], ir[k]};
    for (MergeIsa isa : kIsas) {
      EXPECT_EQ(IntersectWith(l, r, isa), ref)
          << "iter=" << iter << " isa=" << static_cast<int>(isa);
    }
  }
}

TEST(MergeSimdTest, IntersectSkewedSizesHitGallop) {
  std::mt19937_64 rng(77);
  // 40 short vs 5000 long: the dispatcher takes the galloping path.
  auto longside = RandomSortedTimes(rng, 5000, /*allow_dups=*/true);
  std::vector<int64_t> shortside;
  for (size_t i = 0; i < 40; ++i) {
    shortside.push_back(longside[(i * 127) % longside.size()]);
  }
  std::sort(shortside.begin(), shortside.end());
  std::vector<uint32_t> il(40), ir(40);
  size_t m = IntersectIndicesInt64Scalar(shortside.data(), 40, longside.data(),
                                         longside.size(), il.data(),
                                         ir.data());
  std::vector<std::pair<uint32_t, uint32_t>> ref(m);
  for (size_t k = 0; k < m; ++k) ref[k] = {il[k], ir[k]};
  EXPECT_EQ(IntersectWith(shortside, longside, MergeIsa::kAvx2), ref);
  // Swapped operand order exercises the other gallop branch.
  m = IntersectIndicesInt64Scalar(longside.data(), longside.size(),
                                  shortside.data(), 40, il.data(), ir.data());
  ref.assign(m, {});
  for (size_t k = 0; k < m; ++k) ref[k] = {il[k], ir[k]};
  EXPECT_EQ(IntersectWith(longside, shortside, MergeIsa::kAvx2), ref);
}

TEST(MergeSimdTest, IntersectEmptyAndDisjoint) {
  std::vector<int64_t> a = {1, 2, 3};
  std::vector<int64_t> b = {10, 20, 30};
  uint32_t il[3], ir[3];
  for (MergeIsa isa : {MergeIsa::kScalar, MergeIsa::kSse, MergeIsa::kAvx2,
                       MergeIsa::kAvx512}) {
    EXPECT_EQ(IntersectIndicesInt64(a.data(), 3, b.data(), 3, il, ir, isa),
              0u);
    EXPECT_EQ(IntersectIndicesInt64(a.data(), 0, b.data(), 3, il, ir, isa),
              0u);
    EXPECT_EQ(IntersectIndicesInt64(a.data(), 3, b.data(), 0, il, ir, isa),
              0u);
  }
}

TEST(MergeSimdTest, IntersectDuplicateRunsPairwise) {
  // Run of 3 vs run of 2 at t=5 pairs element-wise: min(3,2) = 2 pairs.
  std::vector<int64_t> l = {5, 5, 5, 9};
  std::vector<int64_t> r = {5, 5, 9, 9};
  for (MergeIsa isa : {MergeIsa::kScalar, MergeIsa::kSse, MergeIsa::kAvx2,
                       MergeIsa::kAvx512}) {
    auto got = IntersectWith(l, r, isa);
    std::vector<std::pair<uint32_t, uint32_t>> want = {
        {0, 0}, {1, 1}, {3, 2}};
    EXPECT_EQ(got, want) << "isa=" << static_cast<int>(isa);
  }
}

TEST(MergeSimdTest, UnionDifferentialTieOrder) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    size_t nl = rng() % 400;
    size_t nr = rng() % 400;
    auto lt = RandomSortedTimes(rng, nl, /*allow_dups=*/true);
    auto rt = RandomSortedTimes(rng, nr, /*allow_dups=*/true);
    // Values distinguish provenance so tie-order bugs change the output.
    std::vector<int64_t> lv(nl), rv(nr);
    for (size_t i = 0; i < nl; ++i) lv[i] = static_cast<int64_t>(i) * 2;
    for (size_t i = 0; i < nr; ++i) rv[i] = static_cast<int64_t>(i) * 2 + 1;
    std::vector<int64_t> ref_t(nl + nr), ref_v(nl + nr);
    ASSERT_EQ(MergeUnionInt64Scalar(lt.data(), lv.data(), nl, rt.data(),
                                    rv.data(), nr, ref_t.data(),
                                    ref_v.data()),
              nl + nr);
    for (MergeIsa isa : {MergeIsa::kSse, MergeIsa::kAvx2, MergeIsa::kAvx512}) {
      std::vector<int64_t> got_t(nl + nr), got_v(nl + nr);
      ASSERT_EQ(MergeUnionInt64(lt.data(), lv.data(), nl, rt.data(),
                                rv.data(), nr, got_t.data(), got_v.data(),
                                isa),
                nl + nr);
      EXPECT_EQ(got_t, ref_t) << "iter=" << iter;
      EXPECT_EQ(got_v, ref_v) << "iter=" << iter;
    }
  }
}

std::vector<std::vector<int64_t>> RandomStrictStreams(std::mt19937_64& rng,
                                                      size_t k,
                                                      size_t max_n) {
  std::vector<std::vector<int64_t>> times(k);
  for (size_t s = 0; s < k; ++s) {
    size_t n = rng() % (max_n + 1);
    if (rng() % 8 == 0) n = 0;  // empty streams must be handled
    times[s] = RandomSortedTimes(rng, n, /*allow_dups=*/false);
  }
  return times;
}

TEST(MergeSimdTest, NwayUnionDifferential) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 30; ++iter) {
    size_t k = 2 + rng() % 15;
    auto times = RandomStrictStreams(rng, k, 300);
    std::vector<std::vector<int64_t>> values(k);
    std::vector<MergeStream> streams(k);
    size_t total = 0;
    for (size_t s = 0; s < k; ++s) {
      values[s].resize(times[s].size());
      for (size_t i = 0; i < values[s].size(); ++i) {
        values[s][i] = static_cast<int64_t>(s * 1000 + i);
      }
      streams[s] = {times[s].data(), values[s].data(), times[s].size()};
      total += times[s].size();
    }
    std::vector<int64_t> ref_t(total), ref_v(total);
    ASSERT_EQ(NwayMergeUnionScalar(streams.data(), k, ref_t.data(),
                                   ref_v.data()),
              total);
    // Reference check: stable sort by (time, stream index) gives the same
    // sequence as the loser tree's tie rule.
    std::vector<std::tuple<int64_t, size_t, int64_t>> flat;
    for (size_t s = 0; s < k; ++s) {
      for (size_t i = 0; i < times[s].size(); ++i) {
        flat.emplace_back(times[s][i], s, values[s][i]);
      }
    }
    std::sort(flat.begin(), flat.end());
    for (size_t i = 0; i < total; ++i) {
      ASSERT_EQ(ref_t[i], std::get<0>(flat[i]));
      ASSERT_EQ(ref_v[i], std::get<2>(flat[i]));
    }
    for (MergeIsa isa : {MergeIsa::kSse, MergeIsa::kAvx2, MergeIsa::kAvx512}) {
      std::vector<int64_t> got_t(total), got_v(total);
      ASSERT_EQ(NwayMergeUnion(streams.data(), k, got_t.data(), got_v.data(),
                               isa),
                total);
      EXPECT_EQ(got_t, ref_t) << "iter=" << iter << " k=" << k;
      EXPECT_EQ(got_v, ref_v) << "iter=" << iter << " k=" << k;
    }
  }
}

TEST(MergeSimdTest, NwayIntersectDifferential) {
  std::mt19937_64 rng(808);
  for (int iter = 0; iter < 30; ++iter) {
    size_t k = 2 + rng() % 10;
    // Draw all streams from a shared universe with small gaps so the
    // intersection is usually non-empty.
    auto universe = RandomSortedTimes(rng, 400, /*allow_dups=*/false);
    std::vector<std::vector<int64_t>> times(k);
    std::vector<MergeStream> streams(k);
    for (size_t s = 0; s < k; ++s) {
      for (int64_t t : universe) {
        if (rng() % 4 != 0) times[s].push_back(t);
      }
      streams[s] = {times[s].data(), nullptr, times[s].size()};
    }
    std::vector<int64_t> ref, got;
    size_t mref = NwayIntersectScalar(streams.data(), k, &ref);
    ASSERT_EQ(mref, ref.size());
    for (MergeIsa isa : {MergeIsa::kSse, MergeIsa::kAvx2, MergeIsa::kAvx512}) {
      got.clear();
      size_t m = NwayIntersect(streams.data(), k, &got, isa);
      ASSERT_EQ(m, got.size());
      EXPECT_EQ(got, ref) << "iter=" << iter << " k=" << k;
    }
  }
}

TEST(MergeSimdTest, NwayIntersectWithEmptyStreamIsEmpty) {
  std::vector<int64_t> a = {1, 2, 3};
  std::vector<MergeStream> streams = {
      {a.data(), nullptr, a.size()}, {nullptr, nullptr, 0}};
  std::vector<int64_t> out;
  EXPECT_EQ(NwayIntersectScalar(streams.data(), 2, &out), 0u);
  EXPECT_EQ(NwayIntersect(streams.data(), 2, &out, MergeIsa::kAvx2), 0u);
}

// ------------------------------------------------------------ streamvbyte

TEST(StreamVByteSimdTest, DecodeMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(31337);
  for (int iter = 0; iter < 40; ++iter) {
    size_t n = 1 + rng() % 2000;
    std::vector<int64_t> values(n);
    int64_t v = static_cast<int64_t>(rng());
    for (auto& x : values) {
      // Mix of all four byte classes and both signs.
      switch (rng() % 6) {
        case 0:
          v += static_cast<int64_t>(rng() % (1ull << 40)) - (1ll << 39);
          break;
        case 1:
          v += static_cast<int64_t>(rng() % 100000) - 50000;
          break;
        default:
          v += static_cast<int64_t>(rng() % 256) - 128;
          break;
      }
      x = v;
    }
    enc::EncodedColumn col =
        enc::StreamVByteEncoder().Encode(values.data(), n);
    auto parsed =
        enc::StreamVByteColumn::Parse(col.bytes.data(), col.bytes.size());
    ASSERT_TRUE(parsed.ok());
    std::vector<int64_t> scalar(n), simd(n);
    ASSERT_TRUE(parsed.value().DecodeAll(scalar.data()).ok());
    ASSERT_TRUE(StreamVByteDecodeSse(
        parsed.value().control(), parsed.value().control_bytes(),
        parsed.value().data(), parsed.value().data_bytes(), n - 1,
        parsed.value().first_value(), simd.data()));
    EXPECT_EQ(simd, scalar) << "iter=" << iter << " n=" << n;
    EXPECT_EQ(simd, values);
  }
}

TEST(StreamVByteSimdTest, DecodeExtremesAndSmallTails) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::vector<std::vector<int64_t>> cases = {
      {0},
      {INT64_MIN, INT64_MAX},
      {INT64_MAX, INT64_MIN, 0, -1, 1},
      {-5, -4, -3, -2, -1, 0, 1, 2, 3},
  };
  // Tail lengths 1..19 stress the scalar-tail handoff near the 16-byte
  // load guard.
  for (size_t n = 1; n <= 19; ++n) {
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<int64_t>(i * i) * 1000003 - 17;
    }
    cases.push_back(std::move(v));
  }
  for (const auto& values : cases) {
    enc::EncodedColumn col =
        enc::StreamVByteEncoder().Encode(values.data(), values.size());
    auto parsed =
        enc::StreamVByteColumn::Parse(col.bytes.data(), col.bytes.size());
    ASSERT_TRUE(parsed.ok());
    std::vector<int64_t> simd(values.size());
    ASSERT_TRUE(StreamVByteDecodeSse(
        parsed.value().control(), parsed.value().control_bytes(),
        parsed.value().data(), parsed.value().data_bytes(),
        values.size() - 1, parsed.value().first_value(), simd.data()));
    EXPECT_EQ(simd, values);
  }
}

TEST(StreamVByteSimdTest, RejectsTruncatedData) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::vector<int64_t> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 100000;
  }
  enc::EncodedColumn col =
      enc::StreamVByteEncoder().Encode(values.data(), values.size());
  auto parsed =
      enc::StreamVByteColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  EXPECT_FALSE(StreamVByteDecodeSse(
      parsed.value().control(), parsed.value().control_bytes(),
      parsed.value().data(), parsed.value().data_bytes() - 1,
      values.size() - 1, parsed.value().first_value(), out.data()));
}

}  // namespace
}  // namespace etsqp::simd
