#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>

#include "common/aligned_buffer.h"
#include "common/bit_util.h"
#include "common/bitstream.h"
#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "encoding/fibonacci.h"
#include "simd/agg_simd.h"
#include "simd/delta_simd.h"
#include "simd/fib_simd.h"
#include "simd/filter_simd.h"
#include "simd/rle_flatten.h"
#include "simd/transposed_unpack.h"
#include "simd/transposed_unpack_avx512.h"
#include "simd/unpack.h"
#include "simd/unpack_plan.h"

namespace etsqp::simd {
namespace {

AlignedBuffer PackValues(const std::vector<uint64_t>& values, int width) {
  BitWriter w;
  enc::PackBE(values.data(), values.size(), width, &w);
  auto bytes = w.TakeBuffer();
  AlignedBuffer buf;
  buf.Assign(bytes.data(), bytes.size());
  return buf;
}

// --------------------------------------------------------------- unpack

class UnpackWidthSizeTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(UnpackWidthSizeTest, Avx2MatchesScalar) {
  auto [width, n] = GetParam();
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(width * 1000 + n);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(values, width);
  std::vector<uint32_t> simd_out(n, 0xDEADBEEF), scalar_out(n, 1);
  UnpackBE32Avx2(buf.data(), buf.size(), n, width, simd_out.data());
  UnpackBE32Scalar(buf.data(), buf.size(), n, width, scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n=" << n;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(scalar_out[i], static_cast<uint32_t>(values[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnpackWidthSizeTest,
    ::testing::Combine(::testing::Range(1, 33),
                       ::testing::Values<size_t>(1, 8, 63, 257, 4096)));

class Unpack512Test : public ::testing::TestWithParam<int> {};

TEST_P(Unpack512Test, MatchesScalar) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512 VBMI";
  int width = GetParam();
  std::mt19937_64 rng(width + 900);
  for (size_t n : {1ul, 16ul, 17ul, 500ul, 4096ul}) {
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng() & MaskLow64(width);
    AlignedBuffer buf = PackValues(values, width);
    std::vector<uint32_t> a(n, 1), b(n, 2);
    UnpackBE32Avx512(buf.data(), buf.size(), n, width, a.data());
    UnpackBE32Scalar(buf.data(), buf.size(), n, width, b.data());
    ASSERT_EQ(a, b) << "width=" << width << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Unpack512Test, ::testing::Range(1, 26));

TEST(UnpackPlanTest, FastPlanInvariants) {
  for (int width = 1; width <= 25; ++width) {
    const UnpackPlan& plan = GetUnpackPlan(width);
    EXPECT_FALSE(plan.wide);
    EXPECT_EQ(plan.bytes_per_iter, width);
    EXPECT_EQ(plan.mask, MaskLow32(width));
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(plan.shuffle[i] == 0x80 || plan.shuffle[i] <= 15);
    }
    for (int j = 0; j < 8; ++j) {
      EXPECT_LT(plan.shift[j], 32u);
    }
  }
}

TEST(UnpackPlanTest, WidePlanInvariants) {
  for (int width = 26; width <= 32; ++width) {
    const UnpackPlan& plan = GetUnpackPlan(width);
    EXPECT_TRUE(plan.wide);
    EXPECT_EQ(plan.mask64, MaskLow64(width));
    for (int s = 0; s < 2; ++s) {
      for (int k = 0; k < 4; ++k) {
        EXPECT_LT(plan.steps[s].shift[k], 64u);
      }
    }
  }
}

TEST(UnpackPlanTest, TransposedPlanCoversAllValues) {
  for (int width : {1, 7, 10, 13, 25}) {
    for (int n_v : {1, 3, 6, 8, 16}) {
      const TransposedPlan& plan = GetTransposedPlan(width, n_v);
      EXPECT_EQ(plan.values_per_chunk, n_v * 8);
      EXPECT_EQ(plan.bytes_per_chunk, n_v * width);
      // Every (vector, lane) slot must be written by exactly one segment.
      for (int j = 0; j < n_v; ++j) {
        for (int lane = 0; lane < 8; ++lane) {
          int writers = 0;
          for (size_t s = 0; s < plan.segments.size(); ++s) {
            const auto& shuf = plan.shuffles[s * n_v + j];
            int base = (lane / 4) * 16 + (lane % 4) * 4;
            if (shuf[base] != 0x80) ++writers;
          }
          EXPECT_EQ(writers, 1) << "w=" << width << " nv=" << n_v;
        }
      }
    }
  }
}

TEST(UnpackPlanTest, PlansAreCachedSingletons) {
  // The JIT decoder generator (Section III-B) computes each plan once; the
  // steady state is a lookup.
  const UnpackPlan* a = &GetUnpackPlan(10);
  const UnpackPlan* b = &GetUnpackPlan(10);
  EXPECT_EQ(a, b);
  const TransposedPlan* c = &GetTransposedPlan(10, 6);
  const TransposedPlan* d = &GetTransposedPlan(10, 6);
  EXPECT_EQ(c, d);
  EXPECT_NE(c, &GetTransposedPlan(10, 4));
}

TEST(UnpackPlanTest, LaneGroupMappingIsBijective) {
  for (int g = 0; g < 8; ++g) {
    EXPECT_EQ(LaneToGroup(GroupToLane(g)), g);
  }
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(GroupToLane(LaneToGroup(l)), l);
  }
}

// --------------------------------------------------------------- delta

class TransposedDeltaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TransposedDeltaTest, Avx2MatchesScalar) {
  auto [width, n_v] = GetParam();
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(width * 100 + n_v);
  size_t n = 1337;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width) & 0x3FFF;
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> simd_out(n), scalar_out(n);
  DeltaDecodeOffsetsAvx2(buf.data(), buf.size(), n, width, -7, n_v, 100,
                         simd_out.data());
  DeltaDecodeOffsetsScalar(buf.data(), buf.size(), n, width, -7, 100,
                           scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n_v=" << n_v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransposedDeltaTest,
    ::testing::Combine(::testing::Range(1, 26),
                       ::testing::Values(1, 2, 3, 5, 6, 8, 12, 16)));

class Avx512DeltaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Avx512DeltaTest, MatchesScalar) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512 VBMI";
  auto [width, n_v] = GetParam();
  std::mt19937_64 rng(width * 31 + n_v);
  size_t n = 2111;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width) & 0x3FFF;
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> simd_out(n), scalar_out(n);
  DeltaDecodeOffsetsAvx512(buf.data(), buf.size(), n, width, -3, n_v, 42,
                           simd_out.data());
  DeltaDecodeOffsetsScalar(buf.data(), buf.size(), n, width, -3, 42,
                           scalar_out.data());
  ASSERT_EQ(simd_out, scalar_out) << "width=" << width << " n_v=" << n_v;

  // Unordered variant: same multiset.
  std::vector<int32_t> unordered(n);
  DeltaDecodeOffsetsAvx512Unordered(buf.data(), buf.size(), n, width, -3, n_v,
                                    42, unordered.data());
  std::sort(simd_out.begin(), simd_out.end());
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(simd_out, unordered);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Avx512DeltaTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 10, 13, 17, 21, 25),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16)));

TEST(TransposedDeltaTest, DefaultNvInRange) {
  for (int width = 1; width <= 25; ++width) {
    int n_v = DefaultNumVectors(width);
    EXPECT_GE(n_v, 1) << width;
    EXPECT_LE(n_v, 16) << width;
  }
  // The paper's Figure 4 example: width 10 -> 6 vectors.
  EXPECT_EQ(DefaultNumVectors(10), 6);
}

TEST(TransposedDeltaTest, InitParameterShiftsOutput) {
  std::vector<uint64_t> residuals(64, 1);
  AlignedBuffer buf = PackValues(residuals, 4);
  std::vector<int32_t> a(64), b(64);
  DeltaDecodeOffsets(buf.data(), buf.size(), 64, 4, 0, 0, 0, a.data());
  DeltaDecodeOffsets(buf.data(), buf.size(), 64, 4, 0, 0, 50, b.data());
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(b[i], a[i] + 50);
}

TEST(TransposedDeltaTest, UnorderedIsPermutationWithEqualSums) {
  std::mt19937_64 rng(55);
  size_t n = 1536;
  int width = 9;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> ordered(n), unordered(n);
  DeltaDecodeOffsets(buf.data(), buf.size(), n, width, 2, 0, 5,
                     ordered.data());
  DeltaDecodeOffsetsUnordered(buf.data(), buf.size(), n, width, 2, 0, 5,
                              unordered.data());
  std::vector<int32_t> a = ordered, b = unordered;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same multiset -> same SUM/MIN/MAX/COUNT
  EXPECT_NE(ordered, unordered);  // layout actually differs (n_v=5 chunks)
}

TEST(PrefixSumTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(77);
  for (size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 100ul, 1000ul}) {
    std::vector<int32_t> a(n), b;
    for (auto& v : a) v = static_cast<int32_t>(rng() % 1000) - 500;
    b = a;
    PrefixSumInt32Avx2(a.data(), n);
    PrefixSumInt32Scalar(b.data(), n);
    EXPECT_EQ(a, b) << n;
  }
}

TEST(SboostTest, MatchesTransposedDecode) {
  std::mt19937_64 rng(88);
  size_t n = 2000;
  int width = 12;
  std::vector<uint64_t> residuals(n);
  for (auto& v : residuals) v = rng() & MaskLow64(width);
  AlignedBuffer buf = PackValues(residuals, width);
  std::vector<int32_t> sboost(n), etsqp(n);
  SboostDeltaDecode(buf.data(), buf.size(), n, width, 3, 11, sboost.data());
  DeltaDecodeOffsets(buf.data(), buf.size(), n, width, 3, 0, 11,
                     etsqp.data());
  EXPECT_EQ(sboost, etsqp);
}

// --------------------------------------------------------------- flatten

TEST(FlattenTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(99);
  size_t num_pairs = 200;
  std::vector<int32_t> deltas(num_pairs);
  std::vector<uint32_t> runs(num_pairs);
  size_t total = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    deltas[i] = static_cast<int32_t>(rng() % 21) - 10;
    runs[i] = 1 + static_cast<uint32_t>(rng() % 40);
    total += runs[i];
  }
  std::vector<int32_t> a(total), b(total);
  size_t na = FlattenDeltaRunsAvx2(deltas.data(), runs.data(), num_pairs, 5,
                                   a.data());
  size_t nb = FlattenDeltaRunsScalar(deltas.data(), runs.data(), num_pairs, 5,
                                     b.data());
  ASSERT_EQ(na, total);
  ASSERT_EQ(nb, total);
  EXPECT_EQ(a, b);
}

TEST(FlattenTest, LongRunsUseRamps) {
  std::vector<int32_t> deltas = {3};
  std::vector<uint32_t> runs = {100};
  std::vector<int32_t> out(100);
  size_t n = FlattenDeltaRuns(deltas.data(), runs.data(), 1, 10, out.data());
  ASSERT_EQ(n, 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], 10 + 3 * static_cast<int32_t>(i + 1));
  }
}

// --------------------------------------------------------------- filter

TEST(FilterTest, Avx2MatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(111);
  for (size_t n : {1ul, 8ul, 64ul, 65ul, 1000ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng() % 2000) - 1000;
    std::vector<uint64_t> ma(CeilDiv(n, 64)), mb(CeilDiv(n, 64));
    RangeFilterMaskInt32Avx2(values.data(), n, -100, 250, ma.data());
    RangeFilterMaskInt32Scalar(values.data(), n, -100, 250, mb.data());
    EXPECT_EQ(ma, mb) << n;
  }
}

TEST(FilterTest, MaskSemantics) {
  std::vector<int32_t> values = {1, 5, 10, 15, 20};
  uint64_t mask = 0;
  RangeFilterMaskInt32(values.data(), values.size(), 5, 15, &mask);
  EXPECT_EQ(mask, 0b01110u);
  EXPECT_EQ(CountMaskBits(&mask, values.size()), 3u);
}

TEST(FilterTest, CountMaskBitsPartialWord) {
  uint64_t mask[2] = {~0ull, ~0ull};
  EXPECT_EQ(CountMaskBits(mask, 128), 128u);
  EXPECT_EQ(CountMaskBits(mask, 70), 70u);
  EXPECT_EQ(CountMaskBits(mask, 64), 64u);
  EXPECT_EQ(CountMaskBits(mask, 1), 1u);
}

TEST(FilterTest, AndMasks) {
  uint64_t a[1] = {0b1100};
  uint64_t b[1] = {0b1010};
  uint64_t out[1];
  AndMasks(a, b, 4, out);
  EXPECT_EQ(out[0], 0b1000u);
}

TEST(JoinMaskTest, BasicIntersection) {
  std::vector<int64_t> l = {1, 3, 5, 7, 9, 11};
  std::vector<int64_t> r = {2, 3, 4, 7, 8, 11, 20};
  uint64_t ml = 0, mr = 0;
  size_t matches =
      JoinMasksInt64(l.data(), l.size(), r.data(), r.size(), &ml, &mr);
  EXPECT_EQ(matches, 3u);
  EXPECT_EQ(ml, 0b101010u);  // 3, 7, 11 at l-indices 1, 3, 5
  EXPECT_EQ(mr, 0b101010u);  // 3, 7, 11 at r-indices 1, 3, 5
}

TEST(JoinMaskTest, DisjointAndEmpty) {
  std::vector<int64_t> l = {1, 2, 3};
  std::vector<int64_t> r = {10, 20, 30};
  uint64_t ml = ~0ull, mr = ~0ull;
  EXPECT_EQ(JoinMasksInt64(l.data(), l.size(), r.data(), r.size(), &ml, &mr),
            0u);
  EXPECT_EQ(ml, 0u);
  EXPECT_EQ(mr, 0u);
  uint64_t m = 1;
  EXPECT_EQ(JoinMasksInt64(l.data(), 0, r.data(), r.size(), &m, &mr), 0u);
}

TEST(JoinMaskTest, MatchesScalarReferenceOnRandomSets) {
  std::mt19937_64 rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    size_t nl = 100 + rng() % 2000;
    size_t nr = 100 + rng() % 2000;
    std::vector<int64_t> l, r;
    int64_t t = 0;
    for (size_t i = 0; i < nl; ++i) l.push_back(t += 1 + rng() % 4);
    t = static_cast<int64_t>(rng() % 50);
    for (size_t i = 0; i < nr; ++i) r.push_back(t += 1 + rng() % 4);
    std::vector<uint64_t> ml(CeilDiv(nl, 64)), mr(CeilDiv(nr, 64));
    size_t matches =
        JoinMasksInt64(l.data(), nl, r.data(), nr, ml.data(), mr.data());
    // Reference via sorted intersection.
    std::vector<int64_t> expect;
    std::set_intersection(l.begin(), l.end(), r.begin(), r.end(),
                          std::back_inserter(expect));
    EXPECT_EQ(matches, expect.size());
    EXPECT_EQ(CountMaskBits(ml.data(), nl), expect.size());
    EXPECT_EQ(CountMaskBits(mr.data(), nr), expect.size());
    size_t e = 0;
    for (size_t i = 0; i < nl; ++i) {
      if (ml[i >> 6] & (1ull << (i & 63))) {
        ASSERT_EQ(l[i], expect[e++]);
      }
    }
  }
}

// --------------------------------------------------------------- agg

TEST(AggTest, MaskedSumMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(222);
  for (size_t n : {1ul, 8ul, 100ul, 4096ul}) {
    std::vector<int32_t> values(n);
    std::vector<uint64_t> mask(CeilDiv(n, 64));
    for (auto& v : values) v = static_cast<int32_t>(rng()) / 4;
    for (auto& m : mask) m = rng();
    EXPECT_EQ(MaskedSumInt32Avx2(values.data(), mask.data(), n),
              MaskedSumInt32Scalar(values.data(), mask.data(), n))
        << n;
  }
}

TEST(AggTest, SumInt32LargeMagnitudes) {
  std::vector<int32_t> values(100000, INT32_MAX);
  int64_t expected = static_cast<int64_t>(INT32_MAX) * 100000;
  EXPECT_EQ(SumInt32(values.data(), values.size()), expected);
}

TEST(AggTest, MaskedMinMax) {
  std::vector<int32_t> values = {5, -3, 100, 42, -77, 8, 9, 10, 11};
  uint64_t mask = 0b000011110;  // selects -3, 100, 42, -77
  int32_t mn, mx;
  ASSERT_TRUE(
      MaskedMinMaxInt32(values.data(), &mask, values.size(), &mn, &mx));
  EXPECT_EQ(mn, -77);
  EXPECT_EQ(mx, 100);
}

TEST(AggTest, MaskedMinMaxEmptyMask) {
  std::vector<int32_t> values = {1, 2, 3};
  uint64_t mask = 0;
  int32_t mn, mx;
  EXPECT_FALSE(
      MaskedMinMaxInt32(values.data(), &mask, values.size(), &mn, &mx));
}

TEST(AggTest, MinMaxUnmaskedMatchesScalar) {
  std::mt19937_64 rng(555);
  for (size_t n : {1ul, 2ul, 15ul, 16ul, 100ul, 4097ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng());
    int32_t mn, mx;
    MinMaxInt32(values.data(), n, &mn, &mx);
    EXPECT_EQ(mn, *std::min_element(values.begin(), values.end())) << n;
    EXPECT_EQ(mx, *std::max_element(values.begin(), values.end())) << n;
  }
}

TEST(AggTest, WeightedRampSumMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2";
  std::mt19937_64 rng(333);
  for (size_t n : {0ul, 1ul, 8ul, 77ul, 1000ul}) {
    std::vector<int32_t> values(n);
    for (auto& v : values) v = static_cast<int32_t>(rng() % 100000) - 50000;
    EXPECT_EQ(WeightedRampSumInt32Avx2(values.data(), n),
              WeightedRampSumInt32Scalar(values.data(), n))
        << n;
  }
}

TEST(AggTest, WeightedRampSumFormula) {
  // sum (n - i) * v_i for v = [1, 1, 1], n=3: 3 + 2 + 1 = 6.
  std::vector<int32_t> values = {1, 1, 1};
  EXPECT_EQ(WeightedRampSumInt32(values.data(), 3), 6);
}

TEST(AggTest, CheckedSumDetectsOverflow) {
  std::vector<int64_t> values = {INT64_MAX, 1};
  int64_t out;
  EXPECT_FALSE(CheckedSumInt64(values.data(), values.size(), &out));
  std::vector<int64_t> ok = {INT64_MAX, -1, 1};
  EXPECT_TRUE(CheckedSumInt64(ok.data(), 2, &out));
  EXPECT_EQ(out, INT64_MAX - 1);
  EXPECT_TRUE(CheckedSumInt64(ok.data() + 1, 2, &out));
  EXPECT_EQ(out, 0);
  std::vector<int64_t> wraps = {INT64_MIN, -1};
  EXPECT_FALSE(CheckedSumInt64(wraps.data(), 2, &out));
}

// --------------------------------------------------------------- fib simd

TEST(FibSimdTest, FindsTerminators) {
  // Stream: 0101 1000 0110 0000 -> pairs end at bits 4? bits: 0,1,0,1,1,...
  // positions:           0123456789...
  std::vector<uint8_t> bytes = {0b01011000, 0b01100000};
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 16);
  // Adjacent 1 pairs: bits (3,4) and (9,10) -> seconds at 4 and 10.
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], 4u);
  EXPECT_EQ(terms[1], 10u);
}

TEST(FibSimdTest, FirstTerminatorRespectsRange) {
  std::vector<uint8_t> bytes = {0b01011000, 0b01100000};
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 0, 16), 4u);
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 5, 16), 10u);
  EXPECT_EQ(FindFirstTerminator(bytes.data(), bytes.size(), 11, 16),
            SIZE_MAX);
}

TEST(FibSimdTest, CrossBytePair) {
  // Bits 7 and 8 set: pair straddles the byte boundary.
  std::vector<uint8_t> bytes = {0b00000001, 0b10000000};
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 16);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], 8u);
}

TEST(FibSimdTest, CrossWordPair) {
  // Pair at bits 63/64 (8-byte window boundary).
  std::vector<uint8_t> bytes(16, 0);
  bytes[7] = 0x01;
  bytes[8] = 0x80;
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, 128);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], 64u);
}

TEST(FibSimdTest, MatchesEncodedStream) {
  std::mt19937_64 rng(444);
  BitWriter w;
  std::vector<size_t> expected_ends;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng() % 10000;
    enc::FibonacciEncode(v, &w);
    expected_ends.push_back(w.bit_count() - 1);
  }
  size_t total_bits = w.bit_count();
  auto bytes = w.TakeBuffer();
  auto terms = FindTerminators(bytes.data(), bytes.size(), 0, total_bits);
  // Every true codeword end must be among the detected pairs (detection is
  // a superset: adjacent codewords can create extra candidates).
  size_t ti = 0;
  for (size_t end : expected_ends) {
    while (ti < terms.size() && terms[ti] < end) ++ti;
    ASSERT_LT(ti, terms.size());
    EXPECT_EQ(terms[ti], end);
  }
}

}  // namespace
}  // namespace etsqp::simd
