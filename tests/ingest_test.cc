// Streaming-ingest subsystem tests: queryable tail (read-your-writes
// without Flush), ordering contract, background sealing, WAL durability,
// crash recovery with torn/corrupt tails, and checkpoint idempotency.
// The *Concurrency* tests also run in CI's ThreadSanitizer job.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "db/iotdb_lite.h"
#include "exec/expr.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include "storage/series_store.h"
#include "storage/wal.h"

namespace etsqp {
namespace {

using storage::SeriesSnapshot;
using storage::SeriesStore;
using storage::Wal;

int64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

void FlipByteAt(const std::string& path, int64_t offset_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(-offset_from_end), SEEK_END), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(-offset_from_end), SEEK_END), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

double QueryScalar(const db::IotDbLite& dbi, const std::string& sql) {
  auto result = dbi.Query(sql);
  EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  if (!result.ok()) return 0;
  EXPECT_EQ(result.value().num_rows(), 1u);
  return result.value().columns[0][0];
}

// ------------------------------------------------------ queryable tail

TEST(IngestTest, TailVisibleWithoutFlush) {
  db::IotDbLite dbi;
  ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
  int64_t sum = 0;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(dbi.Insert("s", i, i * 3).ok());
    sum += i * 3;
  }
  // No Flush: every acknowledged point is already queryable.
  EXPECT_EQ(QueryScalar(dbi, "SELECT COUNT(s) FROM s;"), 100.0);
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));
  auto snap = dbi.store()->GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().has_tail());
  EXPECT_EQ(snap.value().pages.size(), 0u);
  EXPECT_EQ(snap.value().total_points(), 100u);
}

TEST(IngestTest, HybridPagesPlusTailAggregation) {
  db::IotDbLite dbi;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 64;  // several sealed pages + a partial tail
  ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
  int64_t sum = 0, n = 300;
  int64_t vmin = INT64_MAX, vmax = INT64_MIN;
  for (int64_t i = 0; i < n; ++i) {
    int64_t v = (i * 37) % 101 - 50;
    ASSERT_TRUE(dbi.Insert("s", i, v).ok());
    sum += v;
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  auto snap = dbi.store()->GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(snap.value().pages.size(), 0u);  // sealed SIMD path
  EXPECT_TRUE(snap.value().has_tail());      // scalar tail path
  EXPECT_EQ(QueryScalar(dbi, "SELECT COUNT(s) FROM s;"),
            static_cast<double>(n));
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));
  EXPECT_EQ(QueryScalar(dbi, "SELECT MIN(s) FROM s;"),
            static_cast<double>(vmin));
  EXPECT_EQ(QueryScalar(dbi, "SELECT MAX(s) FROM s;"),
            static_cast<double>(vmax));
  // Time filter that stops inside the tail region.
  int64_t expect = 0;
  for (int64_t i = 0; i < 290; ++i) expect += (i * 37) % 101 - 50;
  EXPECT_EQ(
      QueryScalar(dbi, "SELECT SUM(s) FROM s WHERE time <= 289;"),
      static_cast<double>(expect));
  // Flush drains the tail and the answers do not change.
  ASSERT_TRUE(dbi.Flush().ok());
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));
}

TEST(IngestTest, FloatTailVisibleWithoutFlush) {
  db::IotDbLite dbi;
  ASSERT_TRUE(dbi.CreateFloatTimeseries("f").ok());
  double sum = 0;
  for (int64_t i = 0; i < 50; ++i) {
    double v = 0.5 * static_cast<double>(i);
    ASSERT_TRUE(dbi.InsertF64("f", i, v).ok());
    sum += v;
  }
  EXPECT_EQ(QueryScalar(dbi, "SELECT COUNT(f) FROM f;"), 50.0);
  EXPECT_DOUBLE_EQ(QueryScalar(dbi, "SELECT SUM(f) FROM f;"), sum);
}

// ------------------------------------------- ordering contract (Def. 1)

TEST(IngestTest, RejectsOutOfOrderAndDuplicateTimestamps) {
  SeriesStore store;
  ASSERT_TRUE(store.CreateSeries("s", {}).ok());
  ASSERT_TRUE(store.Append("s", 10, 1).ok());

  Status st = store.Append("s", 10, 2);  // duplicate
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  st = store.Append("s", 5, 3);  // out of order
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();

  // All-or-nothing batch: a violation in the middle applies nothing.
  int64_t times[4] = {11, 12, 12, 13};
  int64_t values[4] = {1, 2, 3, 4};
  st = store.AppendBatch("s", times, values, 4);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  EXPECT_EQ(store.AppendedPoints("s"), 1u);
  auto snap = store.GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().total_points(), 1u);

  // The fence is intact: the valid suffix still appends.
  int64_t ok_times[2] = {11, 12};
  EXPECT_TRUE(store.AppendBatch("s", ok_times, values, 2).ok());
  EXPECT_EQ(store.AppendedPoints("s"), 3u);
  EXPECT_EQ(store.ingest_stats().rejected_batches, 3u);
}

TEST(IngestTest, RejectsOutOfOrderF64) {
  SeriesStore store;
  SeriesStore::SeriesOptions opt;
  opt.page.value_encoding = enc::ColumnEncoding::kGorillaValue;
  ASSERT_TRUE(store.CreateSeries("f", opt).ok());
  ASSERT_TRUE(store.AppendF64("f", 100, 1.5).ok());
  EXPECT_EQ(store.AppendF64("f", 100, 2.5).code(),
            StatusCode::kInvalidArgument);
  int64_t times[3] = {101, 99, 102};
  double values[3] = {1.0, 2.0, 3.0};
  EXPECT_EQ(store.AppendBatchF64("f", times, values, 3).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.AppendedPoints("f"), 1u);
}

// ------------------------------------------------- background sealing

TEST(IngestTest, BackgroundSealKeepsPageOrder) {
  db::IotDbLite dbi;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 32;
  ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
  db::IotDbLite::IngestConfig cfg;  // no WAL: sealing only
  cfg.background_seal = true;
  ASSERT_TRUE(dbi.EnableIngest(cfg).ok());

  int64_t sum = 0, n = 32 * 40 + 7;
  std::vector<int64_t> times(n), values(n);
  for (int64_t i = 0; i < n; ++i) {
    times[i] = i;
    values[i] = (i * 13) % 997;
    sum += values[i];
  }
  ASSERT_TRUE(
      dbi.InsertBatch("s", times.data(), values.data(), times.size()).ok());
  ASSERT_TRUE(dbi.Flush().ok());

  auto snap = dbi.store()->GetSnapshot("s");
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap.value().has_tail());
  ASSERT_EQ(snap.value().pages.size(), 41u);
  int64_t prev_max = INT64_MIN;
  uint64_t total = 0;
  for (const auto& page : snap.value().pages) {
    EXPECT_GT(page->header.min_time, prev_max);  // strict time order
    prev_max = page->header.max_time;
    total += page->header.count;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(n));
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));

  metrics::IngestStats is = dbi.ingest_stats();
  EXPECT_GE(is.background_seals, 40u);
  EXPECT_EQ(is.pages_sealed, 41u);
  EXPECT_EQ(is.tail_points, 0u);
}

// ----------------------------------------------------- WAL durability

TEST(WalTest, RecoveryRestoresAcknowledgedPoints) {
  std::string wal_path = TempPath("etsqp_wal_recover.wal");
  int64_t sum = 0;
  double fsum = 0;
  {
    db::IotDbLite dbi;
    db::IotDbLite::IngestConfig cfg;
    cfg.wal_path = wal_path;
    cfg.fsync = Wal::FsyncPolicy::kNever;
    ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
    storage::SeriesStore::SeriesOptions opt;
    opt.page_size = 50;  // recovery re-seals pages too
    ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
    ASSERT_TRUE(dbi.CreateFloatTimeseries("f").ok());
    for (int64_t i = 0; i < 170; ++i) {
      ASSERT_TRUE(dbi.Insert("s", i, i * 7).ok());
      sum += i * 7;
    }
    for (int64_t i = 0; i < 30; ++i) {
      double v = 1.25 * static_cast<double>(i);
      ASSERT_TRUE(dbi.InsertF64("f", i, v).ok());
      fsum += v;
    }
    EXPECT_GT(dbi.ingest_stats().wal_records, 0u);
  }  // "crash": nothing flushed, nothing saved

  db::IotDbLite db2;
  db::IotDbLite::IngestConfig cfg;
  cfg.wal_path = wal_path;
  ASSERT_TRUE(db2.EnableIngest(cfg).ok());
  EXPECT_EQ(db2.last_recovery().records_dropped, 0u);
  EXPECT_EQ(db2.last_recovery().points_applied, 200u);
  EXPECT_EQ(QueryScalar(db2, "SELECT COUNT(s) FROM s;"), 170.0);
  EXPECT_EQ(QueryScalar(db2, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));
  EXPECT_DOUBLE_EQ(QueryScalar(db2, "SELECT SUM(f) FROM f;"), fsum);
  // The recovered store accepts appends past the recovered fence.
  EXPECT_TRUE(db2.Insert("s", 1000, 1).ok());
  EXPECT_EQ(db2.Insert("s", 100, 1).code(), StatusCode::kInvalidArgument);
  std::remove(wal_path.c_str());
}

TEST(WalTest, TornFinalRecordDroppedAndTruncated) {
  std::string wal_path = TempPath("etsqp_wal_torn.wal");
  int64_t size_before_last = 0;
  {
    db::IotDbLite dbi;
    db::IotDbLite::IngestConfig cfg;
    cfg.wal_path = wal_path;
    cfg.fsync = Wal::FsyncPolicy::kNever;
    ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
    ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
    int64_t times[3] = {1, 2, 3}, values[3] = {10, 20, 30};
    ASSERT_TRUE(dbi.InsertBatch("s", times, values, 3).ok());
    size_before_last = FileSize(wal_path);
    int64_t t2 = 4, v2 = 40;
    ASSERT_TRUE(dbi.InsertBatch("s", &t2, &v2, 1).ok());
  }
  // Tear the final record: drop its last 5 bytes (mid-payload).
  int64_t full = FileSize(wal_path);
  ASSERT_GT(full, size_before_last);
  ASSERT_EQ(::truncate(wal_path.c_str(), full - 5), 0);

  db::IotDbLite db2;
  db::IotDbLite::IngestConfig cfg;
  cfg.wal_path = wal_path;
  ASSERT_TRUE(db2.EnableIngest(cfg).ok());
  EXPECT_EQ(db2.last_recovery().records_dropped, 1u);
  EXPECT_GT(db2.last_recovery().bytes_dropped, 0u);
  // Every record before the tear was applied; the torn one is gone.
  EXPECT_EQ(QueryScalar(db2, "SELECT COUNT(s) FROM s;"), 3.0);
  EXPECT_EQ(QueryScalar(db2, "SELECT SUM(s) FROM s;"), 60.0);
  // The log was truncated to the valid prefix, so appending after
  // recovery never interleaves with garbage.
  EXPECT_EQ(FileSize(wal_path), size_before_last);
  EXPECT_TRUE(db2.Insert("s", 4, 44).ok());
  std::remove(wal_path.c_str());
}

TEST(WalTest, CorruptCrcRecordDropped) {
  std::string wal_path = TempPath("etsqp_wal_crc.wal");
  {
    db::IotDbLite dbi;
    db::IotDbLite::IngestConfig cfg;
    cfg.wal_path = wal_path;
    cfg.fsync = Wal::FsyncPolicy::kNever;
    ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
    ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
    int64_t times[2] = {1, 2}, values[2] = {5, 6};
    ASSERT_TRUE(dbi.InsertBatch("s", times, values, 2).ok());
    int64_t t2 = 3, v2 = 7;
    ASSERT_TRUE(dbi.InsertBatch("s", &t2, &v2, 1).ok());
  }
  // Bit-flip inside the final record's payload: frame length still reads,
  // the CRC check fails, the record (and with it the tail) is dropped.
  FlipByteAt(wal_path, 1);

  db::IotDbLite db2;
  db::IotDbLite::IngestConfig cfg;
  cfg.wal_path = wal_path;
  ASSERT_TRUE(db2.EnableIngest(cfg).ok());
  EXPECT_EQ(db2.last_recovery().records_dropped, 1u);
  EXPECT_EQ(QueryScalar(db2, "SELECT COUNT(s) FROM s;"), 2.0);
  EXPECT_EQ(QueryScalar(db2, "SELECT SUM(s) FROM s;"), 11.0);
  std::remove(wal_path.c_str());
}

TEST(WalTest, CheckpointTruncatesWal) {
  std::string wal_path = TempPath("etsqp_wal_ckpt.wal");
  std::string ts_path = TempPath("etsqp_wal_ckpt.tsfile");
  {
    db::IotDbLite dbi;
    db::IotDbLite::IngestConfig cfg;
    cfg.wal_path = wal_path;
    cfg.fsync = Wal::FsyncPolicy::kNever;
    ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
    ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(dbi.Insert("s", i, i).ok());
    }
    ASSERT_TRUE(dbi.Checkpoint(ts_path).ok());
    EXPECT_EQ(FileSize(wal_path), 0);  // log is redundant after checkpoint
    // Points appended after the checkpoint land in the fresh log.
    ASSERT_TRUE(dbi.Insert("s", 100, 1000).ok());
    EXPECT_GT(FileSize(wal_path), 0);
  }

  db::IotDbLite db2;
  ASSERT_TRUE(db2.Load(ts_path).ok());
  db::IotDbLite::IngestConfig cfg;
  cfg.wal_path = wal_path;
  ASSERT_TRUE(db2.EnableIngest(cfg).ok());
  EXPECT_EQ(db2.last_recovery().points_applied, 1u);
  EXPECT_EQ(QueryScalar(db2, "SELECT COUNT(s) FROM s;"), 41.0);
  EXPECT_EQ(QueryScalar(db2, "SELECT SUM(s) FROM s;"),
            static_cast<double>(40 * 39 / 2 + 1000));
  std::remove(wal_path.c_str());
  std::remove(ts_path.c_str());
}

TEST(WalTest, CrashBetweenCheckpointAndTruncateIsIdempotent) {
  std::string wal_path = TempPath("etsqp_wal_fault.wal");
  std::string ts_path = TempPath("etsqp_wal_fault.tsfile");
  int64_t sum = 0;
  {
    db::IotDbLite dbi;
    db::IotDbLite::IngestConfig cfg;
    cfg.wal_path = wal_path;
    cfg.fsync = Wal::FsyncPolicy::kNever;
    ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
    ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
    for (int64_t i = 0; i < 25; ++i) {
      ASSERT_TRUE(dbi.Insert("s", i, i * 2).ok());
      sum += i * 2;
    }
    // Simulated crash in the checkpoint window: the TsFile is durable but
    // the WAL still holds every record.
    dbi.TestingFailBeforeWalTruncate(true);
    ASSERT_TRUE(dbi.Checkpoint(ts_path).ok());
    EXPECT_GT(FileSize(wal_path), 0);
  }

  // Recovery loads the checkpoint, then replays a WAL whose records are
  // all already covered: idempotent replay must skip them, not
  // double-apply.
  db::IotDbLite db2;
  ASSERT_TRUE(db2.Load(ts_path).ok());
  db::IotDbLite::IngestConfig cfg;
  cfg.wal_path = wal_path;
  ASSERT_TRUE(db2.EnableIngest(cfg).ok());
  EXPECT_EQ(db2.last_recovery().points_applied, 0u);
  EXPECT_GT(db2.last_recovery().records_skipped, 0u);
  EXPECT_EQ(QueryScalar(db2, "SELECT COUNT(s) FROM s;"), 25.0);
  EXPECT_EQ(QueryScalar(db2, "SELECT SUM(s) FROM s;"),
            static_cast<double>(sum));
  std::remove(wal_path.c_str());
  std::remove(ts_path.c_str());
}

// ----------------------------------------------- concurrency contract

// Runs in CI's TSan job (gtest_filter IotDbLiteConcurrency*): one writer
// streams batches while readers query; every query must succeed and see a
// consistent, monotonically growing prefix.
TEST(IotDbLiteConcurrencyTest, InsertVsQuery) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 128;
  ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
  db::IotDbLite::IngestConfig cfg;  // background sealing on, no WAL
  cfg.background_seal = true;
  ASSERT_TRUE(dbi.EnableIngest(cfg).ok());
  ASSERT_TRUE(dbi.Insert("s", 0, 0).ok());

  constexpr int kPoints = 4000;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int64_t i = 1; i <= kPoints; ++i) {
      if (!dbi.Insert("s", i, 1).ok()) {
        failures.fetch_add(1);
        break;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      double last_count = 0;
      while (!done.load()) {
        auto result = dbi.Query("SELECT COUNT(s) FROM s;");
        if (!result.ok()) {
          failures.fetch_add(1);
          break;
        }
        double count = result.value().columns[0][0];
        // Snapshot isolation: the count never goes backwards and values
        // are all 1, so SUM(count prefix) == COUNT - 1 + point at t=0.
        if (count < last_count) failures.fetch_add(1);
        last_count = count;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(QueryScalar(dbi, "SELECT COUNT(s) FROM s;"),
            static_cast<double>(kPoints + 1));
  ASSERT_TRUE(dbi.Flush().ok());
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(s) FROM s;"),
            static_cast<double>(kPoints));
}

TEST(IotDbLiteConcurrencyTest, ConcurrentWritersDistinctSeries) {
  db::IotDbLite dbi;
  ASSERT_TRUE(dbi.CreateTimeseries("a").ok());
  ASSERT_TRUE(dbi.CreateTimeseries("b").ok());
  std::thread ta([&] {
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(dbi.Insert("a", i, 1).ok());
    }
  });
  std::thread tb([&] {
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(dbi.Insert("b", i, 2).ok());
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(a) FROM a;"), 2000.0);
  EXPECT_EQ(QueryScalar(dbi, "SELECT SUM(b) FROM b;"), 4000.0);
}

// --- Pruning-index staleness (runs under TSan in CI, ctest label
// `pruning`): a snapshot captured while the background sealer installs
// pages must carry a pruning-index leaf block that is bit-consistent with
// its own page vector — SeriesStore swaps both under the same unique lock —
// and must compile the same job set with the index on and off. A stale leaf
// block would either diverge from the headers or change the scheduled jobs.

TEST(PruningStalenessTest, SnapshotDuringBackgroundSealStaysConsistent) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 64;
  ASSERT_TRUE(dbi.CreateTimeseries("s", opt).ok());
  db::IotDbLite::IngestConfig cfg;  // background sealing on, no WAL
  cfg.background_seal = true;
  ASSERT_TRUE(dbi.EnableIngest(cfg).ok());

  exec::LogicalPlan plan =
      exec::LogicalPlan::Aggregate("s", exec::AggFunc::kSum);
  plan.time_filter.lo = 500;
  plan.time_filter.hi = 2500;
  plan.value_filter.active = true;
  plan.value_filter.lo = 10;
  plan.value_filter.hi = 60;

  constexpr int64_t kPoints = 6000;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int64_t i = 0; i < kPoints; ++i) {
      if (!dbi.Insert("s", i, i % 100).ok()) {
        failures.fetch_add(1);
        break;
      }
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        Result<SeriesSnapshot> snap = dbi.store()->GetSnapshot("s");
        if (!snap.ok()) {
          failures.fetch_add(1);
          break;
        }
        const SeriesSnapshot& s = snap.value();
        if (s.prune_leaves == nullptr ||
            s.prune_leaves->count() != s.pages.size()) {
          failures.fetch_add(1);  // leaf block escaped the install lock
          continue;
        }
        for (size_t p = 0; p < s.pages.size(); ++p) {
          const storage::PageHeader& h = s.pages[p]->header;
          if (s.prune_leaves->time_min()[p] != h.min_time ||
              s.prune_leaves->time_max()[p] != h.max_time ||
              s.prune_leaves->value_min()[p] != h.min_value ||
              s.prune_leaves->value_max()[p] != h.max_value) {
            failures.fetch_add(1);
          }
        }
        // Same snapshot, index on vs off: identical scheduled jobs.
        std::vector<SeriesSnapshot> inputs{s};
        auto on = exec::BuildPipeline(
            plan, inputs, exec::PipelineOptions::Etsqp(1).WithPruneIndex(true));
        auto off = exec::BuildPipeline(
            plan, inputs,
            exec::PipelineOptions::Etsqp(1).WithPruneIndex(false));
        if (!on.ok() || !off.ok() ||
            on.value().jobs.size() != off.value().jobs.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < on.value().jobs.size(); ++j) {
          const exec::PipeJob& a = on.value().jobs[j];
          const exec::PipeJob& b = off.value().jobs[j];
          if (a.page_index != b.page_index || a.begin != b.begin ||
              a.end != b.end || a.tail != b.tail || a.masked != b.masked) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Sealed world after the dust settles: index-on still plans everything.
  ASSERT_TRUE(dbi.Flush().ok());
  EXPECT_EQ(QueryScalar(dbi, "SELECT COUNT(s) FROM s;"),
            static_cast<double>(kPoints));
}

}  // namespace
}  // namespace etsqp
