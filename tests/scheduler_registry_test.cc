// Tests for the kernel-strategy SchedulerRegistry (exec/scheduler_registry.h):
// page classification, every entry's CanSchedule contract, deterministic
// registry selection, the calibration cache round-trip (save / load /
// corrupt-fallback), and the EXPLAIN surfaces of scheduler decisions.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/cpu.h"
#include "exec/engine.h"
#include "exec/scheduler_registry.h"
#include "storage/page_builder.h"
#include "storage/series_store.h"

namespace etsqp::exec {
namespace {

storage::Page MakePage(enc::ColumnEncoding venc, int64_t step, uint32_t n) {
  std::vector<int64_t> times(n);
  std::vector<int64_t> values(n);
  int64_t v = 1000;
  for (uint32_t i = 0; i < n; ++i) {
    times[i] = static_cast<int64_t>(i);
    v += (i % 2 == 0) ? step : -step / 2;
    values[i] = v;
  }
  storage::PageOptions options;
  options.value_encoding = venc;
  auto page = storage::BuildPage(times.data(), values.data(), n, options);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
  return std::move(page).value();
}

PageClass SealedIntClass(int width_bucket,
                         enc::ColumnEncoding venc = enc::ColumnEncoding::kTs2Diff) {
  PageClass cls;
  cls.value_encoding = venc;
  cls.width_bucket = width_bucket;
  cls.sealed = true;
  cls.is_float = false;
  return cls;
}

// ------------------------------------------------------- Classification

TEST(PageClassTest, KeyFormats) {
  EXPECT_EQ(SealedIntClass(8).Key(), "TS2DIFF/w8");
  PageClass fl = SealedIntClass(0, enc::ColumnEncoding::kGorillaValue);
  fl.is_float = true;
  EXPECT_EQ(fl.Key(), "GORILLA_VALUE/f64");
  PageClass tail;
  tail.sealed = false;
  EXPECT_EQ(tail.Key(), "tail");
  tail.is_float = true;
  EXPECT_EQ(tail.Key(), "tail/f64");
}

TEST(PageClassTest, ClassifyPageDerivesWidthBucketFromDensity) {
  // Narrow deltas pack narrow; wide deltas land in a wider bucket. The
  // bucket is average encoded bits per value rounded up on a fixed grid,
  // so it must be monotone in delta magnitude.
  storage::Page narrow = MakePage(enc::ColumnEncoding::kTs2Diff, 3, 4096);
  storage::Page wide =
      MakePage(enc::ColumnEncoding::kTs2Diff, int64_t{1} << 19, 4096);
  PageClass cn = ClassifyPage(narrow.header);
  PageClass cw = ClassifyPage(wide.header);
  EXPECT_TRUE(cn.sealed);
  EXPECT_FALSE(cn.is_float);
  EXPECT_GT(cn.width_bucket, 0);
  EXPECT_LT(cn.width_bucket, cw.width_bucket);
}

TEST(PageClassTest, ProbePagesAndRealPagesShareBuckets) {
  // The calibration sweep keys must match planner keys: a page built from
  // the same data classified twice gives the identical key.
  storage::Page page = MakePage(enc::ColumnEncoding::kTs2Diff, 100, 4096);
  EXPECT_EQ(ClassifyPage(page.header).Key(), ClassifyPage(page.header).Key());
}

// ------------------------------------------------ CanSchedule contracts

PlanContext AggCtx() {
  PlanContext ctx;
  ctx.aggregate = true;
  ctx.func = AggFunc::kSum;
  ctx.fusion = true;
  return ctx;
}

const SchedulerEntry* Entry(const char* name) {
  const SchedulerEntry* e = SchedulerRegistry::Global().Find(name);
  EXPECT_NE(e, nullptr) << name;
  return e;
}

TEST(SchedulerEntryTest, FusedRequiresFusableAggregateShape) {
  const SchedulerEntry* fused = Entry("etsqp.fused");
  PlanContext ctx = AggCtx();
  EXPECT_TRUE(fused->CanSchedule(SealedIntClass(8), ctx));

  PlanContext no_fusion = ctx;
  no_fusion.fusion = false;
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(8), no_fusion));

  PlanContext filtered = ctx;
  filtered.value_filter = true;  // AggValues rejects fusion under a filter
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(8), filtered));

  PlanContext decode = ctx;
  decode.aggregate = false;
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(8), decode));

  // VAR is only fusable over Delta-RLE (closed-form sum of squares).
  PlanContext var = ctx;
  var.func = AggFunc::kVariance;
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(8), var));
  EXPECT_TRUE(fused->CanSchedule(
      SealedIntClass(8, enc::ColumnEncoding::kDeltaRle), var));

  // MIN decodes every value: no fused reader.
  PlanContext min = ctx;
  min.func = AggFunc::kMin;
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(8), min));

  // Past the transposed width domain the TS2DIFF fused reader is out.
  EXPECT_FALSE(fused->CanSchedule(SealedIntClass(32), ctx));
}

TEST(SchedulerEntryTest, IntKernelsRejectFloatAndTailClasses) {
  PlanContext ctx = AggCtx();
  PageClass fl = SealedIntClass(0, enc::ColumnEncoding::kGorillaValue);
  fl.is_float = true;
  PageClass tail;
  tail.sealed = false;
  for (const char* name :
       {"etsqp.fused", "etsqp.avx512", "etsqp.avx2", "fastlanes.flmm",
        "sboost.linear", "serial.scalar"}) {
    const SchedulerEntry* e = Entry(name);
    EXPECT_FALSE(e->CanSchedule(fl, ctx)) << name;
    EXPECT_FALSE(e->CanSchedule(tail, ctx)) << name;
  }
}

TEST(SchedulerEntryTest, FastLanesOnlySchedulesItsOwnLayout) {
  const SchedulerEntry* fl = Entry("fastlanes.flmm");
  const SchedulerEntry* sboost = Entry("sboost.linear");
  PlanContext ctx = AggCtx();
  PageClass flmm = SealedIntClass(8, enc::ColumnEncoding::kFastLanes);
  if (UseAvx2()) {
    EXPECT_TRUE(fl->CanSchedule(flmm, ctx));
  }
  EXPECT_FALSE(fl->CanSchedule(SealedIntClass(8), ctx));
  // SBoost reads every layout except the FLMM1024 tiles.
  EXPECT_FALSE(sboost->CanSchedule(flmm, ctx));
}

TEST(SchedulerEntryTest, FloatAndTailHaveDedicatedEntries) {
  PlanContext ctx = AggCtx();
  PageClass fl = SealedIntClass(0, enc::ColumnEncoding::kGorillaValue);
  fl.is_float = true;
  PageClass tail;
  tail.sealed = false;
  EXPECT_TRUE(Entry("xor.float")->CanSchedule(fl, ctx));
  EXPECT_FALSE(Entry("xor.float")->CanSchedule(SealedIntClass(8), ctx));
  EXPECT_FALSE(Entry("xor.float")->CanSchedule(tail, ctx));
  EXPECT_TRUE(Entry("tail.scalar")->CanSchedule(tail, ctx));
  EXPECT_FALSE(Entry("tail.scalar")->CanSchedule(SealedIntClass(8), ctx));
}

TEST(SchedulerEntryTest, EveryClassHasAtLeastOneFeasibleEntry) {
  // The registry must never strand a page: serial.scalar covers any sealed
  // class, tail.scalar any unsealed one, xor.float sealed floats.
  PlanContext ctx = AggCtx();
  ctx.value_filter = true;  // hardest shape: fusion ruled out
  std::vector<PageClass> classes;
  for (int w : {1, 8, 32, 64}) classes.push_back(SealedIntClass(w));
  classes.push_back(SealedIntClass(8, enc::ColumnEncoding::kFastLanes));
  PageClass fl = SealedIntClass(0, enc::ColumnEncoding::kChimpValue);
  fl.is_float = true;
  classes.push_back(fl);
  PageClass tail;
  tail.sealed = false;
  classes.push_back(tail);
  tail.is_float = true;
  classes.push_back(tail);
  for (const PageClass& cls : classes) {
    bool any = false;
    for (const auto& e : SchedulerRegistry::Global().entries()) {
      any = any || e->CanSchedule(cls, ctx);
    }
    EXPECT_TRUE(any) << cls.Key();
    ScheduleDecision d = SchedulerRegistry::Global().Propose(
        cls, ctx, nullptr, CostConstants{});
    ASSERT_NE(d.entry, nullptr) << cls.Key();
    EXPECT_GT(d.predicted_ns_per_tuple, 0) << cls.Key();
  }
}

// ---------------------------------------------------- Registry proposals

TEST(SchedulerRegistryTest, SelectionIsDeterministicPerClass) {
  PlanContext ctx = AggCtx();
  for (int w : {2, 8, 20, 32, 64}) {
    ScheduleDecision a = SchedulerRegistry::Global().Propose(
        SealedIntClass(w), ctx, nullptr, CostConstants{});
    ScheduleDecision b = SchedulerRegistry::Global().Propose(
        SealedIntClass(w), ctx, nullptr, CostConstants{});
    ASSERT_NE(a.entry, nullptr);
    EXPECT_EQ(a.entry, b.entry) << w;
    EXPECT_EQ(a.params.ToString(), b.params.ToString());
    EXPECT_EQ(a.predicted_ns_per_tuple, b.predicted_ns_per_tuple);
    EXPECT_FALSE(a.calibrated);
  }
}

TEST(SchedulerRegistryTest, StaticModelPrefersFusedForFusableAggregates) {
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      SealedIntClass(8), AggCtx(), nullptr, CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  EXPECT_STREQ(d.entry->name(), "etsqp.fused");
  EXPECT_TRUE(d.params.fusion);
  EXPECT_EQ(d.params.strategy, DecodeStrategy::kEtsqp);
}

TEST(SchedulerRegistryTest, FilteredPlansFallBackToUnfusedDecode) {
  PlanContext ctx = AggCtx();
  ctx.value_filter = true;
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      SealedIntClass(8), ctx, nullptr, CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  EXPECT_STRNE(d.entry->name(), "etsqp.fused");
  EXPECT_EQ(d.params.strategy, DecodeStrategy::kEtsqp);
}

TEST(SchedulerRegistryTest, FloatAndTailClassesPickTheirOnlyKernels) {
  PageClass fl = SealedIntClass(0, enc::ColumnEncoding::kGorillaValue);
  fl.is_float = true;
  ScheduleDecision df = SchedulerRegistry::Global().Propose(
      fl, AggCtx(), nullptr, CostConstants{});
  ASSERT_NE(df.entry, nullptr);
  EXPECT_STREQ(df.entry->name(), "xor.float");

  PageClass tail;
  tail.sealed = false;
  ScheduleDecision dt = SchedulerRegistry::Global().Propose(
      tail, AggCtx(), nullptr, CostConstants{});
  ASSERT_NE(dt.entry, nullptr);
  EXPECT_STREQ(dt.entry->name(), "tail.scalar");
}

TEST(SchedulerRegistryTest, CalibrationOverridesStaticOrdering) {
  // A cache that prices serial.scalar at ~0 must beat every static
  // prediction — selection follows the measured numbers, not the model.
  CostCalibration cal;
  PageClass cls = SealedIntClass(8);
  cal.Set("serial.scalar", cls.Key(), 0.01);
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      cls, AggCtx(), &cal, CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  EXPECT_STREQ(d.entry->name(), "serial.scalar");
  EXPECT_TRUE(d.calibrated);
  EXPECT_DOUBLE_EQ(d.predicted_ns_per_tuple, 0.01);
}

TEST(SchedulerRegistryTest, ApplyDecisionKeepsUserPinnedVectors) {
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      SealedIntClass(8), AggCtx(), nullptr, CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  PipelineOptions base = PipelineOptions::Etsqp(4).WithVectors(3);
  PipelineOptions applied = ApplyDecision(base, d);
  EXPECT_EQ(applied.n_v, 3);  // user pin survives
  EXPECT_EQ(applied.strategy, d.params.strategy);
  EXPECT_EQ(applied.threads, 4);
  PipelineOptions auto_nv = ApplyDecision(PipelineOptions::Etsqp(1), d);
  EXPECT_EQ(auto_nv.n_v, 0);  // kernels keep the per-block Prop 1 default
}

TEST(SchedulerRegistryTest, NoteDecisionOutcomeCountsMispredictions) {
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      SealedIntClass(8), AggCtx(), nullptr, CostConstants{});
  ASSERT_NE(d.entry, nullptr);
  ExecStats stats;
  uint64_t in_band = static_cast<uint64_t>(d.predicted_ns_per_tuple * 8192);
  NoteDecisionOutcome(d, 8192, in_band, &stats);
  EXPECT_EQ(stats.mispredictions, 0u);
  // 10x the prediction on a large job is a misprediction...
  NoteDecisionOutcome(d, 8192, in_band * 10, &stats);
  EXPECT_EQ(stats.mispredictions, 1u);
  // ...but tiny jobs stay under the noise floor.
  NoteDecisionOutcome(d, 100, in_band * 10, &stats);
  EXPECT_EQ(stats.mispredictions, 1u);
  const SchedDecisionStats& s = stats.scheduler.at(d.class_key);
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_EQ(s.tuples, 8192u + 8192u + 100u);
  EXPECT_EQ(s.entry, d.entry->name());
}

// -------------------------------------------------- Calibration cache IO

TEST(CostCalibrationTest, SaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/etsqp_roundtrip.calib";
  CostCalibration cal;
  cal.Set("etsqp.avx2", "TS2DIFF/w8", 0.625);
  cal.Set("serial.scalar", "TS2DIFF/w8", 6.5);
  cal.Set("xor.float", "GORILLA_VALUE/f64", 3.25);
  ASSERT_TRUE(cal.SaveToFile(path).ok());

  Result<CostCalibration> loaded = CostCalibration::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 3u);
  double ns = 0;
  EXPECT_TRUE(loaded.value().Lookup("etsqp.avx2", "TS2DIFF/w8", &ns));
  EXPECT_DOUBLE_EQ(ns, 0.625);
  EXPECT_TRUE(loaded.value().Lookup("xor.float", "GORILLA_VALUE/f64", &ns));
  EXPECT_DOUBLE_EQ(ns, 3.25);
  EXPECT_FALSE(loaded.value().Lookup("etsqp.avx2", "TS2DIFF/w16", &ns));
  std::remove(path.c_str());
}

TEST(CostCalibrationTest, MissingFileIsNotFound) {
  Result<CostCalibration> r =
      CostCalibration::LoadFromFile(::testing::TempDir() + "/nope.calib");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CostCalibrationTest, CorruptFileFailsAndFallbackStillSchedules) {
  std::string path = ::testing::TempDir() + "/etsqp_corrupt.calib";
  CostCalibration cal;
  cal.Set("etsqp.avx2", "TS2DIFF/w8", 1.0);
  ASSERT_TRUE(cal.SaveToFile(path).ok());

  // Flip one payload byte: the CRC must catch it.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 20, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 20, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  Result<CostCalibration> r = CostCalibration::LoadFromFile(path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // The registry still proposes from CostConstants with no cache at all.
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      SealedIntClass(8), AggCtx(), nullptr, CostConstants{});
  EXPECT_NE(d.entry, nullptr);
  EXPECT_FALSE(d.calibrated);
  std::remove(path.c_str());
}

TEST(CostCalibrationTest, TruncatedAndBadMagicFilesAreCorruption) {
  std::string path = ::testing::TempDir() + "/etsqp_trunc.calib";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("ETSQPCA", 1, 7, f);  // shorter than any valid header
  std::fclose(f);
  EXPECT_EQ(CostCalibration::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);

  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTACALIBRATIONFILE_____", 1, 24, f);
  std::fclose(f);
  EXPECT_EQ(CostCalibration::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CostCalibrationTest, LoadOrMeasureSweepsOnceThenHitsTheCache) {
  std::string path = ::testing::TempDir() + "/etsqp_sweep.calib";
  std::remove(path.c_str());
  bool measured = false;
  Result<std::shared_ptr<const CostCalibration>> first =
      CostCalibration::LoadOrMeasure(path, &measured);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(measured);
  EXPECT_GT(first.value()->size(), 0u);
  // Every measured cost is a sane positive ns/tuple figure.
  for (const auto& [key, ns] : first.value()->costs()) {
    EXPECT_GT(ns, 0.0) << key;
    EXPECT_LT(ns, 1e6) << key;
  }

  Result<std::shared_ptr<const CostCalibration>> second =
      CostCalibration::LoadOrMeasure(path, &measured);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(measured);  // pure cache hit
  EXPECT_EQ(second.value()->size(), first.value()->size());
  std::remove(path.c_str());
}

// ------------------------------------------------------ EXPLAIN surfaces

TEST(SchedulerExplainTest, ExplainShowsChosenEntryPerPageClass) {
  storage::SeriesStore store;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 1024;
  ASSERT_TRUE(store.CreateSeries("ts", opt).ok());
  std::vector<int64_t> times(4096), values(4096);
  for (int i = 0; i < 4096; ++i) {
    times[i] = i;
    values[i] = 100 + (i % 50);
  }
  ASSERT_TRUE(store.AppendBatch("ts", times.data(), values.data(), 4096).ok());
  ASSERT_TRUE(store.Flush().ok());

  Engine engine(PipelineOptions::Etsqp(2));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.explain = LogicalPlan::ExplainMode::kPlan;
  Result<QueryResult> r = engine.Execute(plan, store);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r.value().explain_text;
  EXPECT_NE(text.find("sched TS2DIFF/w"), std::string::npos) << text;
  EXPECT_NE(text.find("entry=etsqp.fused"), std::string::npos) << text;
  EXPECT_NE(text.find("(model)"), std::string::npos) << text;

  plan.explain = LogicalPlan::ExplainMode::kAnalyze;
  Result<QueryResult> a = engine.Execute(plan, store);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const std::string& atext = a.value().explain_text;
  EXPECT_NE(atext.find("scheduler: mispredictions="), std::string::npos)
      << atext;
  EXPECT_NE(atext.find("meas="), std::string::npos) << atext;
  EXPECT_GT(a.value().stats.scheduler.size(), 0u);
}

TEST(SchedulerExplainTest, PinnedStrategyBypassesRegistry) {
  storage::SeriesStore store;
  ASSERT_TRUE(
      store.CreateSeries("ts", storage::SeriesStore::SeriesOptions{}).ok());
  std::vector<int64_t> times(2048), values(2048);
  for (int i = 0; i < 2048; ++i) {
    times[i] = i;
    values[i] = i % 7;
  }
  ASSERT_TRUE(store.AppendBatch("ts", times.data(), values.data(), 2048).ok());
  ASSERT_TRUE(store.Flush().ok());

  Engine engine(
      PipelineOptions::Etsqp(1).WithStrategy(DecodeStrategy::kSerial));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.explain = LogicalPlan::ExplainMode::kPlan;
  Result<QueryResult> r = engine.Execute(plan, store);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // WithStrategy is a pin: no registry lines in the plan.
  EXPECT_EQ(r.value().explain_text.find("sched "), std::string::npos)
      << r.value().explain_text;
}

}  // namespace
}  // namespace etsqp::exec
