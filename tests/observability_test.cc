// ExecStats invariants and EXPLAIN / EXPLAIN ANALYZE golden-shape checks:
// the per-stage breakdown must be internally consistent (stage times bounded
// by wall time, scanned tuples bounded by page tuples), deterministic in its
// flat counters across thread counts, and absent entirely when collection is
// off.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "db/iotdb_lite.h"
#include "exec/engine.h"
#include "exec/explain.h"
#include "exec/pipe_builder.h"
#include "sql/planner.h"
#include "storage/tsfile.h"

namespace etsqp::exec {
namespace {

struct Fixture {
  storage::SeriesStore store;
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

Fixture MakeFixture(size_t n, uint64_t seed, uint32_t page_size = 1000,
                    enc::ColumnEncoding venc = enc::ColumnEncoding::kTs2Diff) {
  std::mt19937_64 rng(seed);
  Fixture f;
  f.times.resize(n);
  f.values.resize(n);
  int64_t t = 0;
  int64_t v = 500;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 5);
    v += static_cast<int64_t>(rng() % 101) - 50;
    f.times[i] = t;
    f.values[i] = v;
  }
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = page_size;
  opt.page.value_encoding = venc;
  EXPECT_TRUE(f.store.CreateSeries("ts", opt).ok());
  EXPECT_TRUE(
      f.store.AppendBatch("ts", f.times.data(), f.values.data(), n).ok());
  EXPECT_TRUE(f.store.Flush().ok());
  return f;
}

TEST(ExecStatsTest, StageBreakdownInvariants) {
  Fixture f = MakeFixture(20000, 11);
  Engine engine(PipelineOptions::Etsqp(1).WithStats(true));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.value_filter.active = true;
  plan.value_filter.lo = 300;
  plan.value_filter.hi = 900;
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecStats& s = result.value().stats;

  EXPECT_LE(s.tuples_scanned, s.tuples_in_pages);
  EXPECT_GT(s.wall_nanos, 0u);
  EXPECT_EQ(s.threads, 1);
  EXPECT_FALSE(s.stages.empty());
  // With one worker no stage timers overlap, so their sum is bounded by the
  // whole-query wall clock.
  EXPECT_LE(s.stages.TotalNanos(), s.wall_nanos);
  // The filtered integer pipeline must attribute work to filter+aggregate.
  const metrics::StageStats& agg =
      s.stages.stages[static_cast<int>(metrics::Stage::kAggregate)];
  EXPECT_GT(agg.calls, 0u);
}

TEST(ExecStatsTest, FlatCountersIdenticalAcrossThreadCounts) {
  Fixture f = MakeFixture(30000, 13);
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kVariance);
  plan.time_filter.lo = f.times[f.times.size() / 4];

  Engine one(PipelineOptions::Etsqp(1).WithStats(true));
  Engine many(PipelineOptions::Etsqp(4).WithStats(true));
  Result<QueryResult> r1 = one.Execute(plan, f.store);
  Result<QueryResult> rn = many.Execute(plan, f.store);
  ASSERT_TRUE(r1.ok() && rn.ok());
  const ExecStats& a = r1.value().stats;
  const ExecStats& b = rn.value().stats;
  EXPECT_EQ(a.pages_total, b.pages_total);
  EXPECT_EQ(a.pages_pruned, b.pages_pruned);
  EXPECT_EQ(a.blocks_pruned, b.blocks_pruned);
  EXPECT_EQ(a.tuples_in_pages, b.tuples_in_pages);
  EXPECT_EQ(a.tuples_scanned, b.tuples_scanned);
  EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
  EXPECT_EQ(a.result_tuples, b.result_tuples);
  EXPECT_EQ(r1.value().columns[0][0], rn.value().columns[0][0]);
}

TEST(ExecStatsTest, CollectionOffLeavesStagesEmpty) {
  Fixture f = MakeFixture(10000, 17);
  Engine engine(PipelineOptions::Etsqp(2));  // collect_stats defaults off
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kAvg);
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  const ExecStats& s = result.value().stats;
  EXPECT_TRUE(s.stages.empty());
  EXPECT_EQ(s.wall_nanos, 0u);
  EXPECT_EQ(s.threads, 0);
  // The flat counters stay available regardless.
  EXPECT_GT(s.tuples_in_pages, 0u);
}

TEST(ExecStatsTest, ToJsonShape) {
  Fixture f = MakeFixture(8000, 19);
  Engine engine(PipelineOptions::Etsqp(1).WithStats(true));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  Result<QueryResult> result = engine.Execute(plan, f.store);
  ASSERT_TRUE(result.ok());
  std::string json = result.value().stats.ToJson();
  EXPECT_NE(json.find("\"tuples_in_pages\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_nanos\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  for (const char* stage :
       {"page_fetch", "unpack", "delta", "filter", "aggregate", "merge"}) {
    EXPECT_NE(json.find(std::string("\"") + stage + "\""), std::string::npos)
        << stage;
  }
  // Braces balance (cheap well-formedness check without a JSON parser).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExplainTest, PlanOnlyRendersWithoutExecuting) {
  Fixture f = MakeFixture(12000, 23);
  Engine engine(PipelineOptions::EtsqpPrune(2));
  Result<LogicalPlan> plan =
      sql::PlanQuery("EXPLAIN SELECT SUM(v) FROM ts WHERE v >= 500");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().explain, LogicalPlan::ExplainMode::kPlan);
  Result<QueryResult> result = engine.Execute(plan.value(), f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& qr = result.value();
  EXPECT_EQ(qr.num_rows(), 0u);  // nothing executed
  EXPECT_NE(qr.explain_text.find("Aggregate(SUM)"), std::string::npos)
      << qr.explain_text;
  EXPECT_NE(qr.explain_text.find("Pipe["), std::string::npos);
  EXPECT_NE(qr.explain_text.find("prune=on"), std::string::npos);
  EXPECT_NE(qr.explain_text.find("Scan ts"), std::string::npos);
  EXPECT_NE(qr.explain_text.find("value in [500,"), std::string::npos);
  // Plan-only output carries no measured profile.
  EXPECT_EQ(qr.explain_text.find("execution profile"), std::string::npos);
}

TEST(ExplainTest, AnalyzeExecutesAndAnnotates) {
  Fixture f = MakeFixture(12000, 29);
  Engine engine(PipelineOptions::Etsqp(2));  // stats off; ANALYZE forces on
  Result<LogicalPlan> plan =
      sql::PlanQuery("EXPLAIN ANALYZE SELECT AVG(v) FROM ts");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().explain, LogicalPlan::ExplainMode::kAnalyze);
  Result<QueryResult> result = engine.Execute(plan.value(), f.store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& qr = result.value();
  ASSERT_EQ(qr.num_rows(), 1u);  // the query really ran
  EXPECT_NE(qr.explain_text.find("Aggregate(AVG)"), std::string::npos);
  EXPECT_NE(qr.explain_text.find("execution profile"), std::string::npos);
  EXPECT_NE(qr.explain_text.find("wall:"), std::string::npos);
  EXPECT_NE(qr.explain_text.find("aggregate"), std::string::npos);
  EXPECT_GT(qr.stats.wall_nanos, 0u);
  EXPECT_FALSE(qr.stats.stages.empty());
}

TEST(ExplainTest, UnifiedExecuteCoversFileBackedStores) {
  Fixture f = MakeFixture(25000, 31);
  std::string path = "/tmp/etsqp_observability_test.tsfile";
  ASSERT_TRUE(storage::WriteTsFile(f.store, path).ok());
  storage::FileBackedStore fbs;
  ASSERT_TRUE(fbs.Open(path).ok());

  Engine engine(PipelineOptions::EtsqpPrune(2).WithStats(true));
  LogicalPlan plan = LogicalPlan::Aggregate("ts", AggFunc::kSum);
  plan.time_filter.lo = f.times[f.times.size() / 2];

  Result<QueryResult> mem = engine.Execute(plan, f.store);
  Result<QueryResult> file = engine.Execute(plan, &fbs);
  ASSERT_TRUE(mem.ok() && file.ok());
  EXPECT_EQ(mem.value().columns[0][0], file.value().columns[0][0]);
  // The file path must attribute page I/O to the fetch stage.
  const metrics::StageStats& fetch =
      file.value().stats.stages.stages[static_cast<int>(
          metrics::Stage::kPageFetch)];
  EXPECT_GT(fetch.calls, 0u);
  EXPECT_GT(fetch.bytes, 0u);

  plan.explain = LogicalPlan::ExplainMode::kPlan;
  Result<QueryResult> explained = engine.Execute(plan, &fbs);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained.value().explain_text.find("Scan ts"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ExplainTest, SqlFacadeRoundTrip) {
  db::IotDbLite dbi(db::IotDbLite::Mode::kSimd, 2);
  ASSERT_TRUE(dbi.CreateTimeseries("s").ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(dbi.Insert("s", 1000 + i, i % 77).ok());
  }
  ASSERT_TRUE(dbi.Flush().ok());

  auto result = dbi.Query("EXPLAIN ANALYZE SELECT MAX(v) FROM s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result.value().explain_text.find("Aggregate(MAX)"),
            std::string::npos);
  EXPECT_NE(result.value().explain_text.find("execution profile"),
            std::string::npos);

  dbi.SetCollectStats(true);
  auto profiled = dbi.Query("SELECT MIN(v) FROM s");
  ASSERT_TRUE(profiled.ok());
  EXPECT_TRUE(profiled.value().explain_text.empty());
  EXPECT_FALSE(profiled.value().stats.stages.empty());
  EXPECT_NE(RenderStats(profiled.value().stats).find("tuples:"),
            std::string::npos);
}

}  // namespace
}  // namespace etsqp::exec
