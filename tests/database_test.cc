// Serving-core tests: ShardRouter determinism, multi-shard query
// equivalence (including cross-shard binary plans), per-shard persistence
// and combined-file redistribution, resharding, tenant admission control,
// the epoch-keyed result cache (hits, implicit invalidation by append /
// background seal / checkpoint, eviction under budget), per-shard
// calibration caches with corrupt-file fallback, and the facade's
// OpenFile/CloseFile-vs-Query race (the *Concurrency* suite also runs in
// CI's ThreadSanitizer job).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/iotdb_lite.h"
#include "db/shard.h"
#include "db/shard_router.h"
#include "exec/scheduler_registry.h"

namespace etsqp {
namespace {

using db::Database;
using db::IotDbLite;
using db::Session;
using db::Shard;
using db::ShardRouter;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void WriteGarbage(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a valid etsqp artifact";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Deterministic int series: values in [0, 100), returns their sum.
int64_t FillSeries(Database* db, const std::string& name, int n,
                   uint32_t page_size = 512) {
  EXPECT_TRUE(db->CreateTimeseries(name, page_size).ok());
  std::vector<int64_t> times(n), values(n);
  uint64_t rng = 0x9e3779b97f4a7c15ull ^ ShardRouter::Fnv1a(name);
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    times[i] = i;
    values[i] = static_cast<int64_t>(rng >> 33) % 100;
    sum += values[i];
  }
  EXPECT_TRUE(db->InsertBatch(name, times.data(), values.data(), n).ok());
  return sum;
}

double SumOf(const Database& db, const std::string& series) {
  Result<exec::QueryResult> r =
      db.Query("SELECT SUM(" + series + ") FROM " + series + ";");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r.value().num_rows() == 0) return -1;
  return r.value().columns[0][0];
}

// --- ShardRouter -----------------------------------------------------------

TEST(ShardRouterTest, DeterministicAndInRange) {
  ShardRouter router(8);
  ASSERT_EQ(router.num_shards(), 8);
  for (int i = 0; i < 1000; ++i) {
    std::string name = "series" + std::to_string(i);
    int shard = router.ShardOf(name);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    EXPECT_EQ(shard, router.ShardOf(name));  // stable
    EXPECT_EQ(static_cast<uint64_t>(shard), ShardRouter::Fnv1a(name) % 8);
  }
}

TEST(ShardRouterTest, ClampsToAtLeastOneShard) {
  ShardRouter router(0);
  EXPECT_EQ(router.num_shards(), 1);
  EXPECT_EQ(router.ShardOf("anything"), 0);
}

TEST(ShardRouterTest, SpreadsSeriesAcrossShards) {
  ShardRouter router(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 1000; ++i) {
    ++counts[router.ShardOf("device" + std::to_string(i) + ".metric")];
  }
  for (int k = 0; k < 8; ++k) {
    EXPECT_GT(counts[k], 0) << "shard " << k << " got no series";
  }
}

TEST(ShardRouterTest, ArtifactPathsAreNamespacedPerShard) {
  EXPECT_EQ(Shard::ArtifactPath("/tmp/db.tsfile", 0, 1), "/tmp/db.tsfile");
  EXPECT_EQ(Shard::CalibPath("/tmp/db.tsfile", 0, 1), "/tmp/db.tsfile.calib");
  EXPECT_EQ(Shard::ArtifactPath("/tmp/db.tsfile", 2, 4),
            "/tmp/db.tsfile.shard2");
  EXPECT_EQ(Shard::CalibPath("/tmp/db.tsfile", 2, 4),
            "/tmp/db.tsfile.shard2.calib");
}

// --- Sharded execution -----------------------------------------------------

TEST(DatabaseShardingTest, MultiShardMatchesSingleShard) {
  Database one(Database::Options{Database::Mode::kSimd, 2, 1, 0});
  Database four(Database::Options{Database::Mode::kSimd, 2, 4, 0});
  ASSERT_EQ(four.num_shards(), 4);
  for (int i = 0; i < 8; ++i) {
    std::string name = "m" + std::to_string(i);
    int64_t sum = FillSeries(&one, name, 2000);
    ASSERT_EQ(FillSeries(&four, name, 2000), sum);
    EXPECT_EQ(SumOf(one, name), static_cast<double>(sum));
    EXPECT_EQ(SumOf(four, name), static_cast<double>(sum));
  }
  // Filtered and windowed plans agree too.
  for (const char* sql :
       {"SELECT COUNT(m3) FROM m3 WHERE m3 > 50;",
        "SELECT MAX(m5) FROM m5 WHERE time >= 100 AND time <= 1500;",
        "SELECT AVG(m7) FROM m7 SW(0, 250);"}) {
    Result<exec::QueryResult> a = one.Query(sql);
    Result<exec::QueryResult> b = four.Query(sql);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().columns, b.value().columns) << sql;
  }
}

/// Two series on different shards of a 4-way database: binary projection,
/// UNION, and CORR must compile into one job set across shards and match
/// the single-shard answers exactly.
TEST(DatabaseShardingTest, CrossShardBinaryPlans) {
  Database one(Database::Options{Database::Mode::kSimd, 2, 1, 0});
  Database four(Database::Options{Database::Mode::kSimd, 2, 4, 0});
  std::string left, right;
  for (int i = 0; i < 32 && right.empty(); ++i) {
    std::string name = "x" + std::to_string(i);
    if (left.empty()) {
      left = name;
    } else if (four.ShardOf(name) != four.ShardOf(left)) {
      right = name;
    }
  }
  ASSERT_FALSE(right.empty()) << "no shard-crossing pair found";
  ASSERT_NE(four.ShardOf(left), four.ShardOf(right));
  for (Database* target : {&one, &four}) {
    FillSeries(target, left, 1500);
    FillSeries(target, right, 1500);
  }
  for (const std::string& sql :
       {"SELECT " + left + ".v + " + right + ".v FROM " + left + ", " +
            right + ";",
        "SELECT * FROM " + left + " UNION " + right + " ORDER BY TIME;",
        "SELECT CORR(" + left + ".v, " + right + ".v) FROM " + left + ", " +
            right + ";"}) {
    Result<exec::QueryResult> a = one.Query(sql);
    Result<exec::QueryResult> b = four.Query(sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    ASSERT_EQ(a.value().columns.size(), b.value().columns.size()) << sql;
    for (size_t c = 0; c < a.value().columns.size(); ++c) {
      ASSERT_EQ(a.value().columns[c].size(), b.value().columns[c].size());
      for (size_t r = 0; r < a.value().columns[c].size(); ++r) {
        EXPECT_DOUBLE_EQ(a.value().columns[c][r], b.value().columns[c][r])
            << sql << " col " << c << " row " << r;
      }
    }
  }
}

TEST(DatabaseShardingTest, SaveLoadRoundTripsPerShardFiles) {
  const std::string path = TempPath("db_shard_save.tsfile");
  Database four(Database::Options{Database::Mode::kSimd, 1, 4, 0});
  std::vector<int64_t> sums;
  for (int i = 0; i < 6; ++i) {
    sums.push_back(FillSeries(&four, "p" + std::to_string(i), 1200));
  }
  ASSERT_TRUE(four.Flush().ok());
  ASSERT_TRUE(four.Save(path).ok());
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(FileExists(Shard::ArtifactPath(path, k, 4)))
        << "missing shard file " << k;
  }

  Database reopened(Database::Options{Database::Mode::kSimd, 1, 4, 0});
  ASSERT_TRUE(reopened.Load(path).ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(SumOf(reopened, "p" + std::to_string(i)),
              static_cast<double>(sums[i]));
  }
}

/// A multi-shard database pointed at a single combined TsFile (the
/// pre-sharding layout) redistributes its series through the router.
TEST(DatabaseShardingTest, LoadRedistributesCombinedFile) {
  const std::string path = TempPath("db_combined.tsfile");
  Database one(Database::Options{Database::Mode::kSimd, 1, 1, 0});
  std::vector<int64_t> sums;
  for (int i = 0; i < 6; ++i) {
    sums.push_back(FillSeries(&one, "q" + std::to_string(i), 1200));
  }
  ASSERT_TRUE(one.Flush().ok());
  ASSERT_TRUE(one.Save(path).ok());

  Database four(Database::Options{Database::Mode::kSimd, 1, 4, 0});
  ASSERT_TRUE(four.Load(path).ok());
  int populated_shards = 0;
  for (int k = 0; k < 4; ++k) {
    if (!four.shard_store(k)->SeriesNames().empty()) ++populated_shards;
  }
  EXPECT_GT(populated_shards, 1) << "redistribution left everything on one "
                                    "shard";
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(SumOf(four, "q" + std::to_string(i)),
              static_cast<double>(sums[i]));
  }
}

TEST(DatabaseShardingTest, ReshardPreservesDataBothDirections) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 0});
  std::vector<int64_t> sums;
  for (int i = 0; i < 6; ++i) {
    // Odd count so a tail remains unflushed when Reshard runs.
    sums.push_back(FillSeries(&db, "r" + std::to_string(i), 1300));
  }
  EXPECT_EQ(db.Reshard(0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db.Reshard(4).ok());
  EXPECT_EQ(db.num_shards(), 4);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(SumOf(db, "r" + std::to_string(i)),
              static_cast<double>(sums[i]));
  }
  ASSERT_TRUE(db.Reshard(1).ok());
  EXPECT_EQ(db.num_shards(), 1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(SumOf(db, "r" + std::to_string(i)),
              static_cast<double>(sums[i]));
  }
}

TEST(DatabaseShardingTest, ReshardRefusesWithWalAttached) {
  const std::string wal = TempPath("db_reshard.wal");
  std::remove(wal.c_str());
  Database db(Database::Options{});
  FillSeries(&db, "w", 100);
  Database::IngestConfig config;
  config.wal_path = wal;
  ASSERT_TRUE(db.EnableIngest(config).ok());
  EXPECT_EQ(db.Reshard(4).code(), StatusCode::kInvalidArgument);
}

// --- Admission control -----------------------------------------------------

TEST(AdmissionControlTest, ZeroLimitsAreAHardOffSwitch) {
  Database db(Database::Options{});
  FillSeries(&db, "a", 100);
  Database::TenantOptions limits;
  limits.max_concurrent = 0;
  limits.max_queued = 0;
  db.ConfigureTenant("batch", limits);
  Result<exec::QueryResult> r = db.Query("batch", "SELECT SUM(a) FROM a;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  auto stats = db.tenant_stats();
  ASSERT_TRUE(stats.count("batch"));
  EXPECT_EQ(stats["batch"].rejected_queue, 1u);
  EXPECT_EQ(stats["batch"].admitted, 0u);
}

TEST(AdmissionControlTest, MemoryBudgetRejectsBigQueries) {
  Database db(Database::Options{});
  FillSeries(&db, "big", 1000);  // unflushed tail => estimate > 0
  Database::TenantOptions tight;
  tight.memory_budget_bytes = 1;
  db.ConfigureTenant("tiny", tight);
  Result<exec::QueryResult> r = db.Query("tiny", "SELECT SUM(big) FROM big;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_EQ(db.tenant_stats()["tiny"].rejected_memory, 1u);

  Database::TenantOptions roomy;
  roomy.memory_budget_bytes = 64 << 20;
  db.ConfigureTenant("tiny", roomy);
  EXPECT_TRUE(db.Query("tiny", "SELECT SUM(big) FROM big;").ok());
  EXPECT_EQ(db.tenant_stats()["tiny"].admitted, 1u);
}

TEST(AdmissionControlTest, BoundedQueueAdmitsEveryQueryUnderContention) {
  Database db(Database::Options{Database::Mode::kSimd, 2, 1, 0});
  int64_t sum = FillSeries(&db, "c", 4000);
  Database::TenantOptions limits;
  limits.max_concurrent = 1;
  limits.max_queued = 64;
  db.ConfigureTenant("web", limits);

  constexpr int kClients = 4;
  constexpr int kQueriesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&db, &failures, sum] {
      for (int i = 0; i < kQueriesEach; ++i) {
        Result<exec::QueryResult> r = db.Query("web", "SELECT SUM(c) FROM c;");
        if (!r.ok() || r.value().columns[0][0] != static_cast<double>(sum)) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto stats = db.tenant_stats();
  EXPECT_EQ(stats["web"].admitted,
            static_cast<uint64_t>(kClients * kQueriesEach));
  EXPECT_EQ(stats["web"].rejected_queue, 0u);
  EXPECT_EQ(stats["web"].rejected_memory, 0u);
  EXPECT_EQ(stats["web"].active, 0);
  EXPECT_EQ(stats["web"].queued, 0);
}

TEST(AdmissionControlTest, DefaultTenantIsUnthrottled) {
  Database db(Database::Options{});
  FillSeries(&db, "d", 100);
  ASSERT_TRUE(db.Query("SELECT SUM(d) FROM d;").ok());
  auto stats = db.tenant_stats();
  ASSERT_TRUE(stats.count("default"));
  EXPECT_GE(stats["default"].admitted, 1u);
}

TEST(DatabaseTenantTest, SessionsAttributeQueriesToTheirTenant) {
  Database db(Database::Options{});
  int64_t sum = FillSeries(&db, "s", 500);
  Session alice(&db, "alice");
  Session bob(&db, "bob");
  for (int i = 0; i < 3; ++i) {
    Result<exec::QueryResult> r = alice.Query("SELECT SUM(s) FROM s;");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().columns[0][0], static_cast<double>(sum));
  }
  ASSERT_TRUE(bob.Query("SELECT COUNT(s) FROM s;").ok());
  auto stats = db.tenant_stats();
  EXPECT_EQ(stats["alice"].admitted, 3u);
  EXPECT_EQ(stats["bob"].admitted, 1u);
}

// --- Result cache ----------------------------------------------------------

TEST(ResultCacheTest, RepeatQueryHitsCache) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  int64_t sum = FillSeries(&db, "s", 2000);
  const std::string sql = "SELECT SUM(s) FROM s;";

  Result<exec::QueryResult> first = db.Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().stats.cache_misses, 1u);
  EXPECT_EQ(first.value().stats.cache_hits, 0u);

  Result<exec::QueryResult> second = db.Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.cache_hits, 1u);
  EXPECT_EQ(second.value().columns[0][0], static_cast<double>(sum));

  db::ResultCache::Stats cs = db.cache_stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.entries, 1u);
  EXPECT_GT(cs.bytes, 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesTheCache) {
  Database db(Database::Options{});  // facade default: cache off
  FillSeries(&db, "s", 500);
  for (int i = 0; i < 2; ++i) {
    Result<exec::QueryResult> r = db.Query("SELECT SUM(s) FROM s;");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().stats.cache_hits, 0u);
    EXPECT_EQ(r.value().stats.cache_misses, 0u);
  }
  EXPECT_EQ(db.cache_stats().entries, 0u);
}

TEST(ResultCacheTest, AppendInvalidatesImplicitly) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  int64_t sum = FillSeries(&db, "s", 1000);
  const std::string sql = "SELECT SUM(s) FROM s;";
  ASSERT_TRUE(db.Query(sql).ok());
  ASSERT_EQ(db.Query(sql).value().stats.cache_hits, 1u);

  ASSERT_TRUE(db.Insert("s", 1000, 7).ok());  // epoch advances
  Result<exec::QueryResult> fresh = db.Query(sql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().stats.cache_misses, 1u);
  EXPECT_EQ(fresh.value().columns[0][0], static_cast<double>(sum + 7));
}

/// A cached binary result depends on BOTH operands: the cache key must
/// carry each series' epoch, so mutating only the right series invalidates
/// a result whose left series is untouched.
TEST(ResultCacheTest, MutatingRightOperandInvalidatesBinaryResult) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  FillSeries(&db, "a", 1000);
  FillSeries(&db, "b", 1000);
  const std::string join = "SELECT a.v + b.v FROM a, b;";
  const std::string uni = "SELECT * FROM a UNION b ORDER BY TIME;";
  for (const std::string& sql : {join, uni}) {
    ASSERT_TRUE(db.Query(sql).ok());
    ASSERT_EQ(db.Query(sql).value().stats.cache_hits, 1u) << sql;
  }
  const size_t rows_before = db.Query(uni).value().num_rows();

  ASSERT_TRUE(db.Insert("b", 5000, 7).ok());  // right operand only

  Result<exec::QueryResult> jfresh = db.Query(join);
  ASSERT_TRUE(jfresh.ok());
  EXPECT_EQ(jfresh.value().stats.cache_hits, 0u);
  EXPECT_EQ(jfresh.value().stats.cache_misses, 1u)
      << "stale hit: key missed the right operand's epoch";
  Result<exec::QueryResult> ufresh = db.Query(uni);
  ASSERT_TRUE(ufresh.ok());
  EXPECT_EQ(ufresh.value().stats.cache_misses, 1u);
  EXPECT_EQ(ufresh.value().num_rows(), rows_before + 1)
      << "recomputed union must include the new right-side point";
}

/// A background-seal install advances the series epoch on its own — with no
/// intervening append — so results cached over the unsealed tail go stale
/// the moment the page lands.
TEST(ResultCacheTest, BackgroundSealInstallAdvancesEpoch) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  ASSERT_TRUE(db.CreateTimeseries("s", /*page_size=*/256).ok());
  Database::IngestConfig config;
  config.background_seal = true;
  ASSERT_TRUE(db.EnableIngest(config).ok());

  std::vector<int64_t> times(256), values(256);
  int64_t sum = 0;
  for (int i = 0; i < 256; ++i) {
    times[i] = i;
    values[i] = i % 17;
    sum += values[i];
  }
  // One batch append (epoch 0 -> 1) whose tail fills the page exactly,
  // cutting a segment for the background sealer.
  ASSERT_TRUE(db.InsertBatch("s", times.data(), values.data(), 256).ok());
  for (int spin = 0; db.ingest_stats().pages_sealed < 1 && spin < 2000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(db.ingest_stats().pages_sealed, 1u) << "seal never installed";
  // One append + one install = epoch 2: the install bumped it by itself.
  EXPECT_EQ(db.shard_store(0)->SeriesEpoch("s"), 2u);

  const std::string sql = "SELECT SUM(s) FROM s;";
  Result<exec::QueryResult> first = db.Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().stats.cache_misses, 1u);
  EXPECT_EQ(first.value().columns[0][0], static_cast<double>(sum));
  EXPECT_EQ(db.Query(sql).value().stats.cache_hits, 1u);
}

/// A compaction install advances the series epoch on its own — no append in
/// between — so results cached over the pre-compaction pages go stale the
/// moment the rewritten pages swap in. Mirrors the background-seal test
/// above for the compaction path.
TEST(ResultCacheTest, CompactionInstallAdvancesEpoch) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  ASSERT_TRUE(db.CreateTimeseries("s", /*page_size=*/128).ok());
  std::vector<int64_t> times(1024), values(1024);
  int64_t sum = 0;
  for (int i = 0; i < 1024; ++i) {
    times[i] = i;
    values[i] = i % 23;
    sum += values[i];
  }
  ASSERT_TRUE(db.InsertBatch("s", times.data(), values.data(), 1024).ok());
  ASSERT_TRUE(db.Flush().ok());

  const std::string sql = "SELECT SUM(s) FROM s;";
  ASSERT_TRUE(db.Query(sql).ok());
  ASSERT_EQ(db.Query(sql).value().stats.cache_hits, 1u);

  const uint64_t epoch_before = db.shard_store(0)->SeriesEpoch("s");
  ASSERT_TRUE(db.EnableCompaction().ok());
  ASSERT_TRUE(db.Compact().ok());
  ASSERT_GT(db.compaction_stats().series_compacted, 0u);
  EXPECT_GT(db.shard_store(0)->SeriesEpoch("s"), epoch_before)
      << "the install must bump the epoch by itself";

  Result<exec::QueryResult> fresh = db.Query(sql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().stats.cache_misses, 1u)
      << "cached result over pre-compaction pages must have gone stale";
  EXPECT_EQ(fresh.value().columns[0][0], static_cast<double>(sum));
  EXPECT_EQ(db.Query(sql).value().stats.cache_hits, 1u);
}

/// Query-vs-compact race (runs under TSan in CI): concurrent queries — some
/// answered from cache, some re-executed after each install's epoch bump —
/// must always see either the old pages or the new ones, never a half-
/// installed mix, and never a stale cached answer for the current epoch.
TEST(ResultCacheTest, ConcurrentQueriesVsCompactionInstalls) {
  Database db(Database::Options{Database::Mode::kSimd, 2, 1, 1 << 20});
  ASSERT_TRUE(db.CreateTimeseries("s", /*page_size=*/128).ok());
  std::vector<int64_t> times(2048), values(2048);
  int64_t sum = 0;
  for (int i = 0; i < 2048; ++i) {
    times[i] = i;
    values[i] = i % 13;
    sum += values[i];
  }
  ASSERT_TRUE(db.InsertBatch("s", times.data(), values.data(), 2048).ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.EnableCompaction().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 3; ++c) {
    readers.emplace_back([&db, &stop, &failures, sum] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<exec::QueryResult> r = db.Query("SELECT SUM(s) FROM s;");
        if (!r.ok() || r.value().num_rows() != 1 ||
            r.value().columns[0][0] != static_cast<double>(sum)) {
          ++failures;
        }
      }
    });
  }
  // Each round seals one fresh page of zeros (SUM unchanged) and compacts:
  // the new tier-0 page keeps every pass dirty, so each iteration is a
  // fresh install racing the readers. A lost install is Aborted, not an
  // error.
  int64_t t_next = 2048;
  for (int i = 0; i < 25; ++i) {
    std::vector<int64_t> zt(128), zv(128, 0);
    for (int j = 0; j < 128; ++j) zt[j] = t_next++;
    ASSERT_TRUE(db.InsertBatch("s", zt.data(), zv.data(), 128).ok());
    ASSERT_TRUE(db.Compact().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ResultCacheTest, CheckpointSealInvalidates) {
  const std::string path = TempPath("db_cache_ckpt.tsfile");
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  int64_t sum = FillSeries(&db, "s", 300);  // stays in the tail (page 512)
  const std::string sql = "SELECT SUM(s) FROM s;";
  ASSERT_TRUE(db.Query(sql).ok());
  ASSERT_EQ(db.Query(sql).value().stats.cache_hits, 1u);

  ASSERT_TRUE(db.Checkpoint(path).ok());  // Flush seals the tail inline
  Result<exec::QueryResult> fresh = db.Query(sql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().stats.cache_misses, 1u)
      << "checkpoint's seal should have changed the cache key";
  EXPECT_EQ(fresh.value().columns[0][0], static_cast<double>(sum));
}

TEST(ResultCacheTest, EvictsColdEntriesUnderByteBudget) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 12 << 10});
  for (const char* name : {"ea", "eb", "ec"}) {
    FillSeries(&db, name, 300);
  }
  // Three SELECT * results (~5 KiB each) cannot all fit in 12 KiB.
  ASSERT_TRUE(db.Query("SELECT * FROM ea;").ok());
  ASSERT_TRUE(db.Query("SELECT * FROM eb;").ok());
  Result<exec::QueryResult> third = db.Query("SELECT * FROM ec;");
  ASSERT_TRUE(third.ok());
  db::ResultCache::Stats cs = db.cache_stats();
  EXPECT_GE(cs.evictions, 1u);
  EXPECT_LE(cs.bytes, cs.budget_bytes);
  // The coldest entry (ea) is the one that went.
  Result<exec::QueryResult> again = db.Query("SELECT * FROM ea;");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().stats.cache_misses, 1u);
}

TEST(ResultCacheTest, SetBudgetShrinksAndClearEmpties) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 1, 1 << 20});
  for (const char* name : {"fa", "fb"}) {
    FillSeries(&db, name, 300);
    ASSERT_TRUE(db.Query(std::string("SELECT * FROM ") + name + ";").ok());
  }
  ASSERT_EQ(db.cache_stats().entries, 2u);
  db.SetCacheBudget(64);  // smaller than any entry: everything must go
  EXPECT_EQ(db.cache_stats().entries, 0u);
  db.SetCacheBudget(1 << 20);
  ASSERT_TRUE(db.Query("SELECT * FROM fa;").ok());
  ASSERT_EQ(db.cache_stats().entries, 1u);
  db.ClearCache();
  EXPECT_EQ(db.cache_stats().entries, 0u);
  EXPECT_EQ(db.cache_stats().bytes, 0u);
}

TEST(ResultCacheTest, ExplainAnalyzeProbesAndRendersServingLayer) {
  Database db(Database::Options{Database::Mode::kSimd, 1, 2, 1 << 20});
  FillSeries(&db, "s", 1000);
  const std::string sql = "SELECT SUM(s) FROM s;";
  Result<exec::QueryResult> cold = db.Query("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold.value().stats.cache_misses, 1u);
  EXPECT_NE(cold.value().explain_text.find("serving layer"),
            std::string::npos);
  EXPECT_NE(cold.value().explain_text.find("result cache:"),
            std::string::npos);
  EXPECT_NE(cold.value().explain_text.find("admission:"), std::string::npos);

  // Populate, then ANALYZE again: it reports the hit but still executes
  // (the rendered profile below the serving block proves it ran).
  ASSERT_TRUE(db.Query(sql).ok());
  Result<exec::QueryResult> warm = db.Query("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().stats.cache_hits, 1u);
  EXPECT_GT(warm.value().stats.result_tuples, 0u);

  // The serving counters ride in the stats JSON for tooling.
  const std::string json = warm.value().stats.ToJson();
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"admission_wait_nanos\""), std::string::npos);
}

// --- Per-shard calibration -------------------------------------------------

TEST(ShardCalibrationTest, CalibrateWritesPerShardCachesAndRecoversCorrupt) {
  const std::string base = TempPath("db_shard.calib");
  for (int k = 0; k < 2; ++k) {
    std::remove(Shard::ArtifactPath(base, k, 2).c_str());
  }
  Database db(Database::Options{Database::Mode::kSimd, 1, 2, 0});
  FillSeries(&db, "g0", 600);
  FillSeries(&db, "g1", 600);
  ASSERT_TRUE(db.Calibrate(base).ok());
  ASSERT_NE(db.calibration(), nullptr);
  for (int k = 0; k < 2; ++k) {
    const std::string path = Shard::ArtifactPath(base, k, 2);
    EXPECT_TRUE(FileExists(path)) << "missing per-shard calibration " << path;
    EXPECT_TRUE(exec::CostCalibration::LoadFromFile(path).ok()) << path;
  }

  // Corrupt shard 1's cache: the next Calibrate falls back to shard 0's
  // sweep for that shard and rewrites a valid file in its place.
  WriteGarbage(Shard::ArtifactPath(base, 1, 2));
  ASSERT_FALSE(
      exec::CostCalibration::LoadFromFile(Shard::ArtifactPath(base, 1, 2))
          .ok());
  Database again(Database::Options{Database::Mode::kSimd, 1, 2, 0});
  FillSeries(&again, "g0", 600);
  ASSERT_TRUE(again.Calibrate(base).ok());
  ASSERT_NE(again.calibration(), nullptr);
  EXPECT_TRUE(
      exec::CostCalibration::LoadFromFile(Shard::ArtifactPath(base, 1, 2))
          .ok())
      << "fallback did not rewrite the corrupt shard cache";
  EXPECT_GT(SumOf(again, "g0"), 0.0);
}

TEST(ShardCalibrationTest, CorruptCachesFallBackToStaticModelOnLoad) {
  const std::string path = TempPath("db_calib_fallback.tsfile");
  Database writer(Database::Options{Database::Mode::kSimd, 1, 2, 0});
  std::vector<int64_t> sums;
  for (int i = 0; i < 4; ++i) {
    sums.push_back(FillSeries(&writer, "h" + std::to_string(i), 800));
  }
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(writer.Save(path).ok());
  for (int k = 0; k < 2; ++k) {
    WriteGarbage(Shard::CalibPath(path, k, 2));
  }
  Database reader(Database::Options{Database::Mode::kSimd, 1, 2, 0});
  ASSERT_TRUE(reader.Load(path).ok());
  EXPECT_EQ(reader.calibration(), nullptr);  // silent static-model fallback
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(SumOf(reader, "h" + std::to_string(i)),
              static_cast<double>(sums[i]));
  }
}

// --- Facade + file-store race (runs under TSan in CI) ----------------------

TEST(IotDbLiteFacadeTest, PinsOneShardWithCacheOff) {
  IotDbLite db(IotDbLite::Mode::kSimd, 2);
  ASSERT_EQ(db.database()->num_shards(), 1);
  EXPECT_EQ(db.database()->cache_stats().budget_bytes, 0u);
  ASSERT_TRUE(db.CreateTimeseries("s").ok());
  ASSERT_TRUE(db.Insert("s", 1, 5).ok());
  Result<exec::QueryResult> r = db.Query("SELECT SUM(s) FROM s;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().columns[0][0], 5.0);
}

/// Regression for the engine writer-lock race: OpenFile()/CloseFile() swap
/// the file store while other threads run Query(). The swap must take the
/// writer side of the engine lock and wait out in-flight queries; before
/// the fix a query could execute against a just-reset FileBackedStore.
TEST(IotDbLiteConcurrencyTest, OpenCloseFileVsQuery) {
  const std::string path = TempPath("db_openclose_race.tsfile");
  IotDbLite db(IotDbLite::Mode::kSimd, 2);
  ASSERT_TRUE(db.CreateTimeseries("s", /*page_size=*/512).ok());
  std::vector<int64_t> times(4096), values(4096);
  int64_t sum = 0;
  for (int i = 0; i < 4096; ++i) {
    times[i] = i;
    values[i] = i % 97;
    sum += values[i];
  }
  ASSERT_TRUE(db.InsertBatch("s", times.data(), values.data(), 4096).ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Save(path).ok());

  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&db, &stop, &failures, sum] {
      while (!stop.load(std::memory_order_relaxed)) {
        // The sum is identical whether it runs against the in-memory store
        // or the attached file store — only a race can make it wrong.
        Result<exec::QueryResult> r = db.Query("SELECT SUM(s) FROM s;");
        if (!r.ok() || r.value().num_rows() != 1 ||
            r.value().columns[0][0] != static_cast<double>(sum)) {
          ++failures;
        }
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.OpenFile(path).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    db.CloseFile();
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace etsqp
