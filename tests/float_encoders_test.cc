#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "common/bitstream.h"
#include "encoding/chimp.h"
#include "encoding/elf.h"
#include "encoding/fibonacci.h"
#include "encoding/gorilla.h"
#include "encoding/rlbe.h"

namespace etsqp::enc {
namespace {

// ---------------------------------------------------------------- Fibonacci

TEST(FibonacciTest, TableStartsOneTwo) {
  const auto& fib = FibonacciTable();
  ASSERT_GE(fib.size(), 10u);
  EXPECT_EQ(fib[0], 1u);
  EXPECT_EQ(fib[1], 2u);
  EXPECT_EQ(fib[2], 3u);
  EXPECT_EQ(fib[3], 5u);
  EXPECT_EQ(fib[9], 89u);
}

TEST(FibonacciTest, GoldenCodewords) {
  // Fib(x+1): x=0 -> "11", x=1 -> "011", x=2 -> "0011", x=3 -> "1011".
  struct Case {
    uint64_t x;
    std::vector<int> bits;
  };
  std::vector<Case> cases = {
      {0, {1, 1}}, {1, {0, 1, 1}}, {2, {0, 0, 1, 1}}, {3, {1, 0, 1, 1}}};
  for (const Case& c : cases) {
    BitWriter w;
    FibonacciEncode(c.x, &w);
    EXPECT_EQ(w.bit_count(), c.bits.size()) << c.x;
    auto bytes = w.TakeBuffer();
    BitReader r(bytes.data(), bytes.size());
    for (int bit : c.bits) {
      EXPECT_EQ(r.ReadBit(), static_cast<uint32_t>(bit)) << c.x;
    }
  }
}

class FibonacciRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FibonacciRangeTest, RoundTrip) {
  uint64_t x = GetParam();
  BitWriter w;
  FibonacciEncode(x, &w);
  auto bytes = w.TakeBuffer();
  BitReader r(bytes.data(), bytes.size());
  uint64_t out = 0;
  ASSERT_TRUE(FibonacciDecode(&r, &out));
  EXPECT_EQ(out, x);
}

INSTANTIATE_TEST_SUITE_P(Values, FibonacciRangeTest,
                         ::testing::Values(0ull, 1ull, 2ull, 3ull, 7ull,
                                           12ull, 88ull, 89ull, 1000ull,
                                           123456789ull, 1ull << 40,
                                           (1ull << 62) + 12345));

TEST(FibonacciTest, StreamOfValuesRoundTrips) {
  std::mt19937_64 rng(17);
  std::vector<uint64_t> values(2000);
  for (auto& v : values) v = rng() % 1'000'000;
  BitWriter w;
  for (uint64_t v : values) FibonacciEncode(v, &w);
  auto bytes = w.TakeBuffer();
  BitReader r(bytes.data(), bytes.size());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(FibonacciDecode(&r, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(FibonacciTest, DecodeRangeStopsAtBitEnd) {
  BitWriter w;
  FibonacciEncode(5, &w);
  FibonacciEncode(6, &w);
  size_t end_of_first = 0;
  {
    BitWriter tmp;
    FibonacciEncode(5, &tmp);
    end_of_first = tmp.bit_count();
  }
  auto bytes = w.TakeBuffer();
  uint64_t out[4];
  size_t consumed = 0;
  size_t n = FibonacciDecodeRange(bytes.data(), bytes.size(), 0,
                                  end_of_first, 4, out, &consumed);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(consumed, end_of_first);
}

TEST(FibonacciTest, TruncatedStreamFails) {
  BitWriter w;
  w.WriteBits(0b0101, 4);  // no terminator
  auto bytes = w.TakeBuffer();
  BitReader r(bytes.data(), bytes.size());
  uint64_t out;
  EXPECT_FALSE(FibonacciDecode(&r, &out));
}

// ---------------------------------------------------------------- RLBE

TEST(RlbeTest, RoundTrip) {
  std::mt19937_64 rng(23);
  std::vector<int64_t> values;
  int64_t v = -1000;
  while (values.size() < 4000) {
    int64_t d = static_cast<int64_t>(rng() % 21) - 10;
    size_t run = 1 + rng() % 50;
    for (size_t k = 0; k < run && values.size() < 4000; ++k) {
      v += d;
      values.push_back(v);
    }
  }
  EncodedColumn col = RlbeEncoder().Encode(values.data(), values.size());
  auto parsed = RlbeColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  std::vector<int64_t> out(values.size());
  ASSERT_TRUE(parsed.value().DecodeAll(out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(RlbeTest, SingleValue) {
  int64_t v = 123456;
  EncodedColumn col = RlbeEncoder().Encode(&v, 1);
  auto parsed = RlbeColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  int64_t out = 0;
  ASSERT_TRUE(parsed.value().DecodeAll(&out).ok());
  EXPECT_EQ(out, 123456);
}

TEST(RlbeTest, AnchorsResynchronizeExactly) {
  std::mt19937_64 rng(101);
  std::vector<int64_t> values;
  int64_t v = 42;
  while (values.size() < 20000) {
    int64_t d = static_cast<int64_t>(rng() % 31) - 15;
    size_t run = 1 + rng() % 20;
    for (size_t k = 0; k < run && values.size() < 20000; ++k) {
      v += d;
      values.push_back(v);
    }
  }
  EncodedColumn col = RlbeEncoder().Encode(values.data(), values.size());
  auto parsed = RlbeColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  auto anchors = parsed.value().ScanAnchors(1000);
  ASSERT_TRUE(anchors.ok());
  ASSERT_GT(anchors.value().size(), 5u);
  // Every anchor's state must match the reference decode.
  for (const auto& a : anchors.value()) {
    ASSERT_GE(a.value_index, 1u);
    EXPECT_EQ(a.value, values[a.value_index - 1]) << a.value_index;
  }
  // Decoding from any anchor reproduces the suffix exactly.
  for (size_t i = 0; i < anchors.value().size(); i += 2) {
    const auto& a = anchors.value()[i];
    uint32_t end = std::min<uint32_t>(a.value_index + 3333,
                                      static_cast<uint32_t>(values.size()));
    std::vector<int64_t> out(end - a.value_index);
    ASSERT_TRUE(parsed.value().DecodeFrom(a, end, out.data()).ok());
    for (uint32_t j = a.value_index; j < end; ++j) {
      ASSERT_EQ(out[j - a.value_index], values[j]) << j;
    }
  }
}

TEST(RlbeTest, AnchorStrideBoundsSpacing) {
  std::vector<int64_t> values(50000);
  std::mt19937_64 rng(103);
  int64_t v = 0;
  for (auto& x : values) x = (v += static_cast<int64_t>(rng() % 5) - 2);
  EncodedColumn col = RlbeEncoder().Encode(values.data(), values.size());
  auto parsed = RlbeColumn::Parse(col.bytes.data(), col.bytes.size());
  ASSERT_TRUE(parsed.ok());
  auto anchors = parsed.value().ScanAnchors(2000);
  ASSERT_TRUE(anchors.ok());
  // Spacing >= stride between recorded anchors (runs may overshoot).
  for (size_t i = 1; i < anchors.value().size(); ++i) {
    EXPECT_GE(anchors.value()[i].value_index -
                  anchors.value()[i - 1].value_index,
              2000u);
  }
}

TEST(RlbeTest, ConstantSlopeIsTiny) {
  std::vector<int64_t> values(100000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 3;
  }
  EncodedColumn col = RlbeEncoder().Encode(values.data(), values.size());
  EXPECT_LT(col.bytes.size(), 40u);  // one <delta, run> pair in Fibonacci
}

// ---------------------------------------------------------------- Gorilla

TEST(GorillaTest, TimestampRoundTripRegular) {
  std::vector<int64_t> ts(1000);
  for (size_t i = 0; i < ts.size(); ++i) {
    ts[i] = 1'600'000'000'000 + static_cast<int64_t>(i) * 1000;
  }
  EncodedColumn col = GorillaTimestampEncoder().Encode(ts.data(), ts.size());
  // Regular intervals: delta-of-delta = 0, one bit per point.
  EXPECT_LT(col.bytes.size(), 20u + ts.size() / 8 + 8);
  std::vector<int64_t> out(ts.size());
  ASSERT_TRUE(GorillaTimestampDecode(col, out.data()).ok());
  EXPECT_EQ(out, ts);
}

TEST(GorillaTest, TimestampRoundTripJittered) {
  std::mt19937_64 rng(29);
  std::vector<int64_t> ts(2000);
  int64_t t = 1'600'000'000'000;
  for (auto& x : ts) {
    t += 1000 + static_cast<int64_t>(rng() % 100) - 50;
    x = t;
  }
  EncodedColumn col = GorillaTimestampEncoder().Encode(ts.data(), ts.size());
  std::vector<int64_t> out(ts.size());
  ASSERT_TRUE(GorillaTimestampDecode(col, out.data()).ok());
  EXPECT_EQ(out, ts);
}

TEST(GorillaTest, TimestampLargeJumps) {
  std::vector<int64_t> ts = {0, 1, 1'000'000'000, 1'000'000'001,
                             -5'000'000'000};
  // Times need not be sorted for the codec itself.
  EncodedColumn col = GorillaTimestampEncoder().Encode(ts.data(), ts.size());
  std::vector<int64_t> out(ts.size());
  ASSERT_TRUE(GorillaTimestampDecode(col, out.data()).ok());
  EXPECT_EQ(out, ts);
}

TEST(GorillaTest, ValueRoundTripDoubles) {
  std::mt19937_64 rng(37);
  std::vector<double> values(3000);
  double v = 20.0;
  for (auto& x : values) {
    v += (static_cast<double>(rng() % 1000) - 500.0) / 1000.0;
    x = v;
  }
  EncodedColumn col =
      GorillaValueEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(values.size());
  ASSERT_TRUE(GorillaValueDecodeDoubles(col, out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(GorillaTest, ValueRepeatsUseOneBit) {
  std::vector<double> values(1000, 42.5);
  EncodedColumn col =
      GorillaValueEncoder().EncodeDoubles(values.data(), values.size());
  EXPECT_LT(col.bytes.size(), 12u + values.size() / 8 + 8);
  std::vector<double> out(values.size());
  ASSERT_TRUE(GorillaValueDecodeDoubles(col, out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(GorillaTest, ValueSpecialDoubles) {
  std::vector<double> values = {0.0, -0.0, 1e308, -1e308, 1e-300,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                3.14159};
  EncodedColumn col =
      GorillaValueEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(values.size());
  ASSERT_TRUE(GorillaValueDecodeDoubles(col, out.data()).ok());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(out[i], values[i]);
}

// ---------------------------------------------------------------- Chimp

TEST(ChimpTest, RoundTripSmoothSeries) {
  std::mt19937_64 rng(41);
  std::vector<double> values(3000);
  double v = 100.0;
  for (auto& x : values) {
    v += (static_cast<double>(rng() % 100) - 50.0) / 100.0;
    x = v;
  }
  EncodedColumn col =
      ChimpEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(values.size());
  ASSERT_TRUE(ChimpDecodeDoubles(col, out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(ChimpTest, RoundTripRandomBits) {
  std::mt19937_64 rng(43);
  std::vector<uint64_t> words(2000);
  for (auto& w : words) w = rng();
  EncodedColumn col = ChimpEncoder().Encode(words.data(), words.size());
  std::vector<uint64_t> out(words.size());
  ASSERT_TRUE(ChimpDecode(col, out.data()).ok());
  EXPECT_EQ(out, words);
}

TEST(ChimpTest, RepeatsCompress) {
  std::vector<double> values(5000, -17.25);
  EncodedColumn col =
      ChimpEncoder().EncodeDoubles(values.data(), values.size());
  EXPECT_LT(col.bytes.size(), 12u + 2 * values.size() / 8 + 8);
}

// ---------------------------------------------------------------- Elf

TEST(ElfTest, DecimalPrecision) {
  EXPECT_EQ(ElfDecimalPrecision(1.0, 12), 0);
  EXPECT_EQ(ElfDecimalPrecision(1.5, 12), 1);
  EXPECT_EQ(ElfDecimalPrecision(3.25, 12), 2);
  EXPECT_EQ(ElfDecimalPrecision(0.001, 12), 3);
  EXPECT_EQ(ElfDecimalPrecision(
                std::numeric_limits<double>::quiet_NaN(), 12),
            -1);
}

TEST(ElfTest, RoundTripDecimalData) {
  std::mt19937_64 rng(47);
  std::vector<double> values(2000);
  for (auto& x : values) {
    // Two-decimal sensor readings — Elf's target data.
    x = static_cast<double>(static_cast<int64_t>(rng() % 200000) - 100000) /
        100.0;
  }
  EncodedColumn col =
      ElfEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(values.size());
  ASSERT_TRUE(ElfDecodeDoubles(col, out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(ElfTest, RoundTripArbitraryDoubles) {
  std::mt19937_64 rng(53);
  std::vector<double> values(1000);
  for (auto& x : values) {
    uint64_t w = rng();
    std::memcpy(&x, &w, 8);
    if (std::isnan(x)) x = 0.5;
  }
  EncodedColumn col =
      ElfEncoder().EncodeDoubles(values.data(), values.size());
  std::vector<double> out(values.size());
  ASSERT_TRUE(ElfDecodeDoubles(col, out.data()).ok());
  EXPECT_EQ(out, values);
}

TEST(ElfTest, BeatsChimpOnDecimalData) {
  std::mt19937_64 rng(59);
  std::vector<double> values(5000);
  double v = 50.0;
  for (auto& x : values) {
    v += (static_cast<double>(rng() % 100) - 50.0) / 10.0;
    x = std::round(v * 10.0) / 10.0;  // one decimal place
  }
  EncodedColumn elf = ElfEncoder().EncodeDoubles(values.data(), values.size());
  EncodedColumn chimp =
      ChimpEncoder().EncodeDoubles(values.data(), values.size());
  EXPECT_LT(elf.bytes.size(), chimp.bytes.size());
}

}  // namespace
}  // namespace etsqp::enc
