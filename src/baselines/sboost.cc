#include "baselines/sboost.h"

#include <bit>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/cpu.h"
#include "simd/filter_simd.h"
#include "simd/unpack.h"

namespace etsqp::baselines {

void SboostFilterPacked(const uint8_t* data, size_t data_size, size_t n,
                        int width, uint32_t lo, uint32_t hi, uint64_t* mask) {
  // Vector-at-a-time: unpack 64 values into a stack buffer, compare, emit
  // one mask word — values never hit a heap-materialized column.
  size_t words = CeilDiv(n, 64);
  std::memset(mask, 0, words * sizeof(uint64_t));
  alignas(32) uint32_t buf[64];
  size_t pos_bits = 0;
  for (size_t w = 0; w < words; ++w) {
    size_t count = std::min<size_t>(64, n - w * 64);
    // The packed run for 64 values starts at bit w*64*width — byte aligned
    // iff width*8 | pos; use the generic offset-aware scalar for odd tails
    // and the SIMD kernel when byte-aligned.
    if ((pos_bits & 7) == 0) {
      simd::UnpackBE32(data + (pos_bits >> 3), data_size - (pos_bits >> 3),
                       count, width, buf);
    } else {
      for (size_t i = 0; i < count; ++i) {
        size_t bit = pos_bits + i * static_cast<size_t>(width);
        uint64_t v = 0;
        for (int b = 0; b < width; ++b) {
          size_t p = bit + b;
          v = (v << 1) | ((data[p >> 3] >> (7 - (p & 7))) & 1);
        }
        buf[i] = static_cast<uint32_t>(v);
      }
    }
    uint64_t word = 0;
    simd::RangeFilterMaskInt32(reinterpret_cast<const int32_t*>(buf), count,
                               static_cast<int32_t>(lo),
                               static_cast<int32_t>(hi), &word);
    mask[w] = word;
    pos_bits += 64 * static_cast<size_t>(width);
  }
}

size_t SboostCountPacked(const uint8_t* data, size_t data_size, size_t n,
                         int width, uint32_t lo, uint32_t hi) {
  size_t words = CeilDiv(n, 64);
  std::vector<uint64_t> mask(words);
  SboostFilterPacked(data, data_size, n, width, lo, hi, mask.data());
  return simd::CountMaskBits(mask.data(), n);
}

}  // namespace etsqp::baselines
