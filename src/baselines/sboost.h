#ifndef ETSQP_BASELINES_SBOOST_H_
#define ETSQP_BASELINES_SBOOST_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::baselines {

/// SBoost-style predicate evaluation directly on bit-packed data (Jiang &
/// Elmore, DaMoN'18 — baseline (5)). The packed values are unpacked into
/// SIMD registers vector-at-a-time and compared in-register without
/// materializing a decoded array; the output is a selection bitmask. This is
/// SBoost's core "filter on columnar encoding" capability, which ETSQP
/// extends with layout co-design and decoder fusion.
///
/// mask[i] = (lo <= value_i <= hi), for `n` Big-Endian `width`-bit values at
/// `data` (32 bytes of readable slack required). Mask words LSB-first.
void SboostFilterPacked(const uint8_t* data, size_t data_size, size_t n,
                        int width, uint32_t lo, uint32_t hi, uint64_t* mask);

/// Count-only variant (no mask materialization).
size_t SboostCountPacked(const uint8_t* data, size_t data_size, size_t n,
                         int width, uint32_t lo, uint32_t hi);

}  // namespace etsqp::baselines

#endif  // ETSQP_BASELINES_SBOOST_H_
