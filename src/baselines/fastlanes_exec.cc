#include "baselines/fastlanes_exec.h"

namespace etsqp::baselines {

storage::SeriesStore::SeriesOptions FastLanesSeriesOptions(
    uint32_t page_size) {
  storage::SeriesStore::SeriesOptions options;
  options.page_size = page_size;
  options.page.time_encoding = enc::ColumnEncoding::kFastLanes;
  options.page.value_encoding = enc::ColumnEncoding::kFastLanes;
  return options;
}

Result<std::vector<std::string>> LoadDatasetFastLanes(
    const workload::Dataset& ds, storage::SeriesStore* store,
    uint32_t page_size) {
  return workload::LoadDataset(ds, FastLanesSeriesOptions(page_size), store);
}

}  // namespace etsqp::baselines
