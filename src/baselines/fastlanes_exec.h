#ifndef ETSQP_BASELINES_FASTLANES_EXEC_H_
#define ETSQP_BASELINES_FASTLANES_EXEC_H_

#include "common/status.h"
#include "storage/series_store.h"
#include "workload/generators.h"

namespace etsqp::baselines {

/// FastLanes baseline setup (baseline (4)): the same data re-encoded into
/// the FLMM1024 layout. FastLanes decodes fast but, per the paper's
/// analysis, pays a lower compression ratio (raw 32-value base rows, block-
/// wide widths, 1024-padding of short series) — which the throughput metric
/// (tuples of *loaded* pages per second) exposes as an I/O bottleneck.
storage::SeriesStore::SeriesOptions FastLanesSeriesOptions(
    uint32_t page_size = 4096);

/// Loads `ds` into `store` with FLMM1024 encoding for both columns.
Result<std::vector<std::string>> LoadDatasetFastLanes(
    const workload::Dataset& ds, storage::SeriesStore* store,
    uint32_t page_size = 4096);

}  // namespace etsqp::baselines

#endif  // ETSQP_BASELINES_FASTLANES_EXEC_H_
