#include "db/result_cache.h"

#include <utility>

namespace etsqp::db {

size_t ResultCache::EntryBytes(const std::string& key,
                               const exec::QueryResult& result) {
  size_t bytes = key.size() + sizeof(Entry) + 64;  // map node + list overhead
  for (const auto& col : result.columns) bytes += col.size() * sizeof(double);
  for (const auto& name : result.column_names) bytes += name.size() + 8;
  bytes += result.explain_text.size();
  return bytes;
}

bool ResultCache::Lookup(const std::string& key, exec::QueryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (budget_ == 0 || it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  ++hits_;
  return true;
}

bool ResultCache::Probe(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (budget_ == 0 || it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void ResultCache::EvictOneLocked() {
  Entry& cold = lru_.back();
  bytes_ -= cold.bytes;
  index_.erase(cold.key);
  lru_.pop_back();
  ++evictions_;
}

uint64_t ResultCache::Insert(const std::string& key,
                             const exec::QueryResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ == 0) return 0;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  size_t bytes = EntryBytes(key, result);
  if (bytes > budget_) return 0;  // would evict everything and still churn
  uint64_t evicted = 0;
  while (bytes_ + bytes > budget_ && !lru_.empty()) {
    EvictOneLocked();
    ++evicted;
  }
  Entry entry;
  entry.key = key;
  entry.result = result;
  // Cached stats would replay the producing run's profile on every hit;
  // keep only the result shape. Hits report fresh serving-layer stats.
  entry.result.stats = exec::ExecStats{};
  entry.result.stats.result_tuples = result.num_rows();
  entry.bytes = bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  bytes_ += bytes;
  return evicted;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::SetBudget(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget_bytes;
  while (bytes_ > budget_ && !lru_.empty()) EvictOneLocked();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_;
  return s;
}

}  // namespace etsqp::db
