#ifndef ETSQP_DB_SHARD_H_
#define ETSQP_DB_SHARD_H_

#include <atomic>
#include <memory>
#include <string>

#include "exec/engine.h"
#include "exec/scheduler_registry.h"
#include "storage/buffer_manager.h"
#include "storage/compaction.h"
#include "storage/series_store.h"
#include "storage/wal.h"

namespace etsqp::db {

/// One slice of the database: a SeriesStore (with its own WAL when ingest
/// is enabled), an optional file-backed TsFile attachment, the shard's
/// calibration cache, and the engine configured with it. Shards own no
/// synchronization of their own — the Database's engine reader/writer lock
/// covers engine/file-store/calibration swaps, and the SeriesStore is
/// internally synchronized — so a Shard is plain data the serving layer
/// routes onto.
///
/// On-disk artifacts are namespaced per shard so several shards can live in
/// one directory: shard k of an N-shard database derives
/// `<base>.shard<k>` for TsFiles and WALs and `<base>.shard<k>.calib` for
/// the calibration cache. A single-shard database uses the plain `<base>`
/// (and `<base>.calib`) paths — byte-compatible with the pre-sharding
/// IotDbLite layout, which is what keeps the facade's files interchangeable
/// with old ones.
struct Shard {
  explicit Shard(int index_in) : index(index_in) {}

  int index = 0;
  storage::SeriesStore store;
  std::unique_ptr<storage::FileBackedStore> file_store;
  /// Per-shard measured registry costs; null = static CostConstants.
  std::shared_ptr<const exec::CostCalibration> calibration;
  /// Rebuilt (under the database writer lock) whenever mode/threads/stats
  /// or this shard's calibration changes.
  std::unique_ptr<exec::Engine> engine;
  /// What this shard's last EnableIngest recovery pass replayed.
  storage::Wal::ReplayStats last_recovery;
  /// Background compaction service (EnableCompaction); null = disabled.
  std::unique_ptr<storage::Compactor> compactor;
  /// Collapses bursts of install-trigger firings into one queued CompactAll
  /// per shard: set on schedule, cleared when the pass starts.
  std::atomic<bool> compact_scheduled{false};

  /// `<base>` for a 1-shard database, `<base>.shard<k>` otherwise.
  static std::string ArtifactPath(const std::string& base, int shard,
                                  int num_shards) {
    if (num_shards <= 1) return base;
    return base + ".shard" + std::to_string(shard);
  }

  /// Calibration cache path: `<base>.calib` / `<base>.shard<k>.calib`.
  static std::string CalibPath(const std::string& base, int shard,
                               int num_shards) {
    return ArtifactPath(base, shard, num_shards) + ".calib";
  }
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_SHARD_H_
