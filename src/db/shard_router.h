#ifndef ETSQP_DB_SHARD_ROUTER_H_
#define ETSQP_DB_SHARD_ROUTER_H_

#include <cstdint>
#include <string>

namespace etsqp::db {

/// Maps series names onto shards. Placement is pure hash partitioning
/// (FNV-1a over the full series name, mod shard count): series names in the
/// IoT catalogs are `<device>.<attribute>`, so hashing the whole name
/// spreads both devices and attributes, and a name routes identically on
/// every node that agrees on the shard count. Deterministic — the router
/// carries no state beyond the count, so it is trivially copyable and
/// lock-free to consult on the query path.
class ShardRouter {
 public:
  explicit ShardRouter(int num_shards)
      : num_shards_(num_shards > 0 ? num_shards : 1) {}

  int num_shards() const { return num_shards_; }

  /// Shard index of `series` in [0, num_shards).
  int ShardOf(const std::string& series) const {
    return static_cast<int>(Fnv1a(series) % static_cast<uint64_t>(num_shards_));
  }

  /// 64-bit FNV-1a; exposed for tests asserting placement stability.
  static uint64_t Fnv1a(const std::string& s) {
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  int num_shards_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_SHARD_ROUTER_H_
