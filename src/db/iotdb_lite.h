#ifndef ETSQP_DB_IOTDB_LITE_H_
#define ETSQP_DB_IOTDB_LITE_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "exec/engine.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "storage/series_store.h"
#include "storage/wal.h"

namespace etsqp::db {

/// IotDbLite: the system-integration layer of paper Section VI — a minimal
/// IoT database with the IoTDB storage model (buffered ingestion, separately
/// encoded pages) and a SQL front end whose plans execute through Pipe
/// (Algorithm 2) on the ETSQP engine.
///
/// The Figure 13 comparison maps to engine modes:
///   IoTDB       = Mode::kScalar  (serial decoding, no vector sharing)
///   IoTDB-SIMD  = Mode::kSimd    (this paper's integrated engine)
///
/// Concurrency: Query() is safe to call from many threads at once — all
/// queries execute on the process-wide executor pool (exec/thread_pool.h),
/// each bounded by the configured thread count, and an engine-level
/// reader/writer lock serializes the reconfiguration calls (SetMode /
/// SetThreads / SetCollectStats / OpenFile / CloseFile) against in-flight
/// queries. Ingestion (Insert*/Flush/Load) is synchronized too: the store
/// is internally locked and queries run over per-series snapshots, so
/// concurrent Insert and Query from different threads is a supported,
/// tested contract — a query observes every point whose Insert returned
/// before the query started, and never a torn batch.
class IotDbLite {
 public:
  enum class Mode { kScalar, kSimd };

  explicit IotDbLite(Mode mode = Mode::kSimd, int threads = 1);

  /// Creates a time series with the default TS2DIFF page encoding.
  Status CreateTimeseries(const std::string& name,
                          uint32_t page_size = 4096);
  Status CreateTimeseries(const std::string& name,
                          const storage::SeriesStore::SeriesOptions& options);

  Status Insert(const std::string& name, int64_t time, int64_t value);
  Status InsertBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);

  /// Float (double) series: values compressed with an XOR/pattern encoder
  /// (Gorilla by default; Chimp/Elf via the options overload).
  Status CreateFloatTimeseries(
      const std::string& name,
      enc::ColumnEncoding encoding = enc::ColumnEncoding::kGorillaValue,
      uint32_t page_size = 4096);
  Status InsertF64(const std::string& name, int64_t time, double value);
  Status InsertBatchF64(const std::string& name, const int64_t* times,
                        const double* values, size_t n);
  Status Flush();

  /// --- Streaming ingest subsystem (WAL + background sealing) ------------
  ///
  /// EnableIngest turns the in-memory store into a durable streaming
  /// target: a write-ahead log at `wal_path` is opened, replayed into the
  /// store (crash recovery — idempotent on top of a Load()ed checkpoint),
  /// and attached so every subsequent CreateTimeseries/Insert* is logged
  /// before it is acknowledged. With `background_seal`, full ingestion
  /// buffers are encoded into pages on the shared executor pool instead of
  /// on the inserting thread.
  struct IngestConfig {
    std::string wal_path;  // empty => no WAL (tail + sealing only)
    storage::Wal::FsyncPolicy fsync = storage::Wal::FsyncPolicy::kBatch;
    size_t wal_batch_bytes = 64 << 10;  // group-commit threshold for kBatch
    bool background_seal = false;
  };
  Status EnableIngest(const IngestConfig& config);

  /// Durability checkpoint: Flush() every tail into pages, persist the
  /// whole store as a TsFile at `path`, then truncate the WAL (its records
  /// are redundant once the TsFile holds them). Callers serialize
  /// Checkpoint against their own ingest threads; a checkpoint racing an
  /// insert can fail benignly with "unflushed series" and may be retried.
  Status Checkpoint(const std::string& path);

  /// Testing fault hook: when set, Checkpoint() stops right before the WAL
  /// truncation — simulating a crash in the save-to-truncate window. A
  /// subsequent recovery must then skip the already-checkpointed records
  /// (idempotent replay) instead of double-applying them.
  void TestingFailBeforeWalTruncate(bool on) {
    testing_fail_before_wal_truncate_ = on;
  }

  /// Ingest/WAL/seal counters (docs/OBSERVABILITY.md).
  metrics::IngestStats ingest_stats() const { return store_.ingest_stats(); }
  /// What the last EnableIngest recovery pass did (zeros before/without).
  const storage::Wal::ReplayStats& last_recovery() const {
    return last_recovery_;
  }

  /// Parses and executes one SQL statement (Table III dialect, plus the
  /// EXPLAIN [ANALYZE] prefix). Runs against the file-backed store when one
  /// is attached (OpenFile), otherwise against the in-memory store.
  Result<exec::QueryResult> Query(const std::string& sql) const;

  /// Reconfigure the engine without rebuilding the database. Existing data
  /// (in-memory series, attached file store) is untouched. Safe while other
  /// threads run Query(): reconfiguration waits for in-flight queries.
  void SetMode(Mode mode);
  /// Also reserves capacity on the shared executor pool so the first query
  /// at the new width does not pay worker spin-up.
  void SetThreads(int threads);
  /// Per-stage ExecStats collection for subsequent queries (EXPLAIN ANALYZE
  /// forces it on for its own run regardless).
  void SetCollectStats(bool on);

  Mode mode() const { return mode_; }
  int threads() const { return threads_; }
  bool collect_stats() const { return collect_stats_; }

  /// Persists all (flushed) series to a TsFile / loads one written earlier.
  /// Load also looks for a calibration cache at `<path>.calib` and attaches
  /// it when present and intact (silent fallback to the static cost model
  /// otherwise).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Self-tuning calibration for the SchedulerRegistry (Mode::kSimd): loads
  /// the measured per-(entry, page-class) cost cache at `path` when it is
  /// valid, otherwise runs the microbenchmark sweep and writes it there.
  /// The result is attached to subsequent queries' planning. Re-running
  /// against an existing valid cache is cheap (pure load, no measuring).
  Status Calibrate(const std::string& path);
  /// The attached calibration cache, or null when running on the static
  /// Proposition 1 CostConstants.
  std::shared_ptr<const exec::CostCalibration> calibration() const {
    return calibration_;
  }

  /// Attaches a TsFile through the LRU buffer pool (Section VI-C gradual
  /// page loading) instead of loading it whole: only page headers become
  /// resident; Query streams surviving pages on demand. Aggregations only.
  Status OpenFile(const std::string& path,
                  size_t memory_budget_bytes = 64 << 20);
  /// Detaches the file store; Query returns to the in-memory store.
  void CloseFile();
  const storage::FileBackedStore* file_store() const {
    return file_store_.get();
  }

  /// CSV interchange. Import expects a header line `time,value` (or none)
  /// and rows `<int64 time>,<int64 value>`; rows must be time-ordered. The
  /// series must exist. Export writes the same format.
  Status ImportCsv(const std::string& series, const std::string& path);
  Status ExportCsv(const std::string& series, const std::string& path) const;

  storage::SeriesStore* store() { return &store_; }
  const storage::SeriesStore& store() const { return store_; }
  const exec::Engine& engine() const { return engine_; }

 private:
  void RebuildEngine();
  /// Loads `path` and swaps it in when valid; silently keeps the static
  /// cost model otherwise (missing/corrupt cache is not an error here).
  void TryAttachCalibration(const std::string& path);

  Mode mode_ = Mode::kSimd;
  int threads_ = 1;
  bool collect_stats_ = false;
  /// Measured registry costs (Calibrate / Load auto-attach); null = static
  /// CostConstants. Shared into each rebuilt engine's options.
  std::shared_ptr<const exec::CostCalibration> calibration_;
  bool testing_fail_before_wal_truncate_ = false;
  storage::Wal::ReplayStats last_recovery_;
  storage::SeriesStore store_;
  /// Owns the background-seal tasks submitted on the store's behalf.
  /// Declared after store_ so it is destroyed first: the TaskGroup
  /// destructor waits out in-flight encodes before the database goes away.
  /// Heap-held (like engine_mu_) so IotDbLite stays movable.
  std::unique_ptr<exec::TaskGroup> seal_group_;
  std::unique_ptr<storage::FileBackedStore> file_store_;
  /// Readers = Query() executions; writers = engine reconfiguration and
  /// file-store attach/detach. Keeps concurrent queries from observing a
  /// half-rebuilt engine. Heap-held so IotDbLite stays movable (moving a
  /// database while queries are in flight is already a caller error).
  mutable std::unique_ptr<std::shared_mutex> engine_mu_ =
      std::make_unique<std::shared_mutex>();
  exec::Engine engine_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_IOTDB_LITE_H_
