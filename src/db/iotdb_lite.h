#ifndef ETSQP_DB_IOTDB_LITE_H_
#define ETSQP_DB_IOTDB_LITE_H_

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "db/database.h"
#include "exec/engine.h"
#include "storage/buffer_manager.h"
#include "storage/series_store.h"
#include "storage/wal.h"

namespace etsqp::db {

/// IotDbLite: the system-integration layer of paper Section VI — a minimal
/// IoT database with the IoTDB storage model (buffered ingestion, separately
/// encoded pages) and a SQL front end whose plans execute through Pipe
/// (Algorithm 2) on the ETSQP engine.
///
/// The Figure 13 comparison maps to engine modes:
///   IoTDB       = Mode::kScalar  (serial decoding, no vector sharing)
///   IoTDB-SIMD  = Mode::kSimd    (this paper's integrated engine)
///
/// Since the serving-core refactor this is a thin facade over db::Database
/// pinned to one shard with the result cache off: every call delegates, the
/// on-disk layout (TsFile, WAL, `<path>.calib`) is byte-identical to the
/// pre-sharding format, and the concurrency contract is unchanged — Query()
/// from many threads is safe, reconfiguration (SetMode / SetThreads /
/// SetCollectStats / OpenFile / CloseFile) takes the engine writer lock and
/// waits out in-flight queries, and concurrent Insert/Query is a supported,
/// tested contract. Multi-shard, multi-tenant serving lives on Database
/// directly (docs/ARCHITECTURE.md "Serving core").
class IotDbLite {
 public:
  using Mode = Database::Mode;
  using IngestConfig = Database::IngestConfig;

  explicit IotDbLite(Mode mode = Mode::kSimd, int threads = 1)
      : db_(Database::Options{mode, threads, /*shards=*/1,
                              /*cache_budget_bytes=*/0}) {}

  /// Creates a time series with the default TS2DIFF page encoding.
  Status CreateTimeseries(const std::string& name,
                          uint32_t page_size = 4096) {
    return db_.CreateTimeseries(name, page_size);
  }
  Status CreateTimeseries(const std::string& name,
                          const storage::SeriesStore::SeriesOptions& options) {
    return db_.CreateTimeseries(name, options);
  }

  Status Insert(const std::string& name, int64_t time, int64_t value) {
    return db_.Insert(name, time, value);
  }
  Status InsertBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n) {
    return db_.InsertBatch(name, times, values, n);
  }

  /// Float (double) series: values compressed with an XOR/pattern encoder
  /// (Gorilla by default; Chimp/Elf via the options overload).
  Status CreateFloatTimeseries(
      const std::string& name,
      enc::ColumnEncoding encoding = enc::ColumnEncoding::kGorillaValue,
      uint32_t page_size = 4096) {
    return db_.CreateFloatTimeseries(name, encoding, page_size);
  }
  Status InsertF64(const std::string& name, int64_t time, double value) {
    return db_.InsertF64(name, time, value);
  }
  Status InsertBatchF64(const std::string& name, const int64_t* times,
                        const double* values, size_t n) {
    return db_.InsertBatchF64(name, times, values, n);
  }
  Status Flush() { return db_.Flush(); }

  /// Streaming ingest (WAL durability + background sealing); see
  /// Database::EnableIngest. Single shard => the WAL lives at the plain
  /// `wal_path`, exactly as before the refactor.
  Status EnableIngest(const IngestConfig& config) {
    return db_.EnableIngest(config);
  }

  /// Durability checkpoint: Flush() every tail into pages, persist the
  /// whole store as a TsFile at `path`, then truncate the WAL (its records
  /// are redundant once the TsFile holds them). Callers serialize
  /// Checkpoint against their own ingest threads; a checkpoint racing an
  /// insert can fail benignly with "unflushed series" and may be retried.
  Status Checkpoint(const std::string& path) { return db_.Checkpoint(path); }

  /// Testing fault hook: when set, Checkpoint() stops right before the WAL
  /// truncation — simulating a crash in the save-to-truncate window.
  void TestingFailBeforeWalTruncate(bool on) {
    db_.TestingFailBeforeWalTruncate(on);
  }

  /// Background compaction with adaptive per-page re-encoding; see
  /// Database::EnableCompaction.
  using CompactionConfig = Database::CompactionConfig;
  Status EnableCompaction(const CompactionConfig& config = CompactionConfig()) {
    return db_.EnableCompaction(config);
  }
  Status Compact() { return db_.Compact(); }
  /// Tombstones a time range / sets a retention TTL; masked at query time,
  /// physically dropped by the next compaction pass.
  Status DeleteRange(const std::string& name, int64_t t0, int64_t t1) {
    return db_.DeleteRange(name, t0, t1);
  }
  Status SetTtl(const std::string& name, int64_t ttl_nanos) {
    return db_.SetTtl(name, ttl_nanos);
  }
  metrics::CompactionStats compaction_stats() const {
    return db_.compaction_stats();
  }

  /// Ingest/WAL/seal counters (docs/OBSERVABILITY.md).
  metrics::IngestStats ingest_stats() const { return db_.ingest_stats(); }
  /// What the last EnableIngest recovery pass did (zeros before/without).
  const storage::Wal::ReplayStats& last_recovery() const {
    return db_.last_recovery();
  }

  /// Parses and executes one SQL statement (Table III dialect, plus the
  /// EXPLAIN [ANALYZE] prefix). Runs against the file-backed store when one
  /// is attached (OpenFile), otherwise against the in-memory store.
  Result<exec::QueryResult> Query(const std::string& sql) const {
    return db_.Query(sql);
  }

  /// Reconfigure the engine without rebuilding the database. Existing data
  /// (in-memory series, attached file store) is untouched. Safe while other
  /// threads run Query(): reconfiguration waits for in-flight queries.
  void SetMode(Mode mode) { db_.SetMode(mode); }
  /// Also reserves capacity on the shared executor pool so the first query
  /// at the new width does not pay worker spin-up.
  void SetThreads(int threads) { db_.SetThreads(threads); }
  /// Per-stage ExecStats collection for subsequent queries (EXPLAIN ANALYZE
  /// forces it on for its own run regardless).
  void SetCollectStats(bool on) { db_.SetCollectStats(on); }

  Mode mode() const { return db_.mode(); }
  int threads() const { return db_.threads(); }
  bool collect_stats() const { return db_.collect_stats(); }

  /// Persists all (flushed) series to a TsFile / loads one written earlier.
  /// Load also looks for a calibration cache at `<path>.calib` and attaches
  /// it when present and intact (silent fallback to the static cost model
  /// otherwise).
  Status Save(const std::string& path) const { return db_.Save(path); }
  Status Load(const std::string& path) { return db_.Load(path); }

  /// Self-tuning calibration for the SchedulerRegistry (Mode::kSimd): loads
  /// the measured per-(entry, page-class) cost cache at `path` when it is
  /// valid, otherwise runs the microbenchmark sweep and writes it there.
  Status Calibrate(const std::string& path) { return db_.Calibrate(path); }
  /// The attached calibration cache, or null when running on the static
  /// Proposition 1 CostConstants.
  std::shared_ptr<const exec::CostCalibration> calibration() const {
    return db_.calibration();
  }

  /// Attaches a TsFile through the LRU buffer pool (Section VI-C gradual
  /// page loading) instead of loading it whole: only page headers become
  /// resident; Query streams surviving pages on demand. Aggregations only.
  Status OpenFile(const std::string& path,
                  size_t memory_budget_bytes = 64 << 20) {
    return db_.OpenFile(path, memory_budget_bytes);
  }
  /// Detaches the file store; Query returns to the in-memory store. Takes
  /// the engine writer lock, so it waits out queries running against the
  /// file store instead of racing them.
  void CloseFile() { db_.CloseFile(); }
  const storage::FileBackedStore* file_store() const {
    return db_.file_store();
  }

  /// CSV interchange. Import expects a header line `time,value` (or none)
  /// and rows `<int64 time>,<int64 value>`; rows must be time-ordered. The
  /// series must exist. Export writes the same format.
  Status ImportCsv(const std::string& series, const std::string& path) {
    return db_.ImportCsv(series, path);
  }
  Status ExportCsv(const std::string& series, const std::string& path) const {
    return db_.ExportCsv(series, path);
  }

  storage::SeriesStore* store() { return db_.shard_store(0); }
  const storage::SeriesStore& store() const { return db_.shard_store(0); }
  const exec::Engine& engine() const { return db_.engine(); }

  /// The serving core underneath (tests of the facade wiring).
  Database* database() { return &db_; }
  const Database& database() const { return db_; }

 private:
  Database db_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_IOTDB_LITE_H_
