#include "db/iotdb_lite.h"

#include "exec/scheduler_registry.h"
#include "exec/thread_pool.h"
#include "sql/planner.h"
#include "storage/tsfile.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace etsqp::db {

namespace {

exec::PipelineOptions ModeOptions(
    IotDbLite::Mode mode, int threads, bool collect_stats,
    std::shared_ptr<const exec::CostCalibration> calibration) {
  exec::PipelineOptions o = mode == IotDbLite::Mode::kScalar
                                ? exec::PipelineOptions::Serial()
                                : exec::PipelineOptions::EtsqpPrune(threads);
  if (mode == IotDbLite::Mode::kSimd) {
    o.WithCalibration(std::move(calibration));
  }
  return o.WithStats(collect_stats);
}

}  // namespace

IotDbLite::IotDbLite(Mode mode, int threads)
    : mode_(mode),
      threads_(mode == Mode::kScalar ? 1 : threads),
      engine_(ModeOptions(mode, threads, false, nullptr)) {}

void IotDbLite::RebuildEngine() {
  // Caller holds engine_mu_ exclusively: no query observes a half-swap.
  engine_ = exec::Engine(
      ModeOptions(mode_, threads_, collect_stats_, calibration_));
}

void IotDbLite::SetMode(Mode mode) {
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  mode_ = mode;
  RebuildEngine();
}

void IotDbLite::SetThreads(int threads) {
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  threads_ = threads > 0 ? threads : 1;
  // Warm the shared pool to the new width so the first query at this
  // setting does not pay worker spin-up (the query itself is one runner).
  if (threads_ > 1) exec::ThreadPool::Global().Reserve(threads_ - 1);
  RebuildEngine();
}

void IotDbLite::SetCollectStats(bool on) {
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  collect_stats_ = on;
  RebuildEngine();
}

Status IotDbLite::OpenFile(const std::string& path,
                           size_t memory_budget_bytes) {
  auto store = std::make_unique<storage::FileBackedStore>();
  storage::FileBackedStore::Options options;
  options.memory_budget_bytes = memory_budget_bytes;
  ETSQP_RETURN_IF_ERROR(store->Open(path, options));
  {
    std::unique_lock<std::shared_mutex> lock(*engine_mu_);
    file_store_ = std::move(store);
  }
  TryAttachCalibration(path + ".calib");
  return Status::Ok();
}

void IotDbLite::CloseFile() {
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  file_store_.reset();
}

Status IotDbLite::CreateTimeseries(const std::string& name,
                                   uint32_t page_size) {
  storage::SeriesStore::SeriesOptions options;
  options.page_size = page_size;
  return store_.CreateSeries(name, options);
}

Status IotDbLite::CreateTimeseries(
    const std::string& name,
    const storage::SeriesStore::SeriesOptions& options) {
  return store_.CreateSeries(name, options);
}

Status IotDbLite::CreateFloatTimeseries(const std::string& name,
                                        enc::ColumnEncoding encoding,
                                        uint32_t page_size) {
  if (!enc::IsFloatEncoding(encoding)) {
    return Status::InvalidArgument("not a float encoding");
  }
  storage::SeriesStore::SeriesOptions options;
  options.page_size = page_size;
  options.page.value_encoding = encoding;
  return store_.CreateSeries(name, options);
}

Status IotDbLite::InsertF64(const std::string& name, int64_t time,
                            double value) {
  return store_.AppendF64(name, time, value);
}

Status IotDbLite::InsertBatchF64(const std::string& name,
                                 const int64_t* times, const double* values,
                                 size_t n) {
  return store_.AppendBatchF64(name, times, values, n);
}

Status IotDbLite::Insert(const std::string& name, int64_t time,
                         int64_t value) {
  return store_.Append(name, time, value);
}

Status IotDbLite::InsertBatch(const std::string& name, const int64_t* times,
                              const int64_t* values, size_t n) {
  return store_.AppendBatch(name, times, values, n);
}

Status IotDbLite::Flush() { return store_.Flush(); }

Status IotDbLite::EnableIngest(const IngestConfig& config) {
  if (!config.wal_path.empty()) {
    if (store_.wal() != nullptr) {
      return Status::InvalidArgument("a WAL is already attached");
    }
    storage::Wal::Options options;
    options.fsync = config.fsync;
    options.batch_bytes = config.wal_batch_bytes;
    Result<std::unique_ptr<storage::Wal>> wal =
        storage::Wal::Open(config.wal_path, options);
    if (!wal.ok()) return wal.status();
    // Recovery before attach: records from an earlier run (possibly on top
    // of a Load()ed checkpoint) are applied idempotently, a torn tail is
    // truncated away, and only then does the log accept new appends.
    storage::Wal::ReplayStats replay;
    ETSQP_RETURN_IF_ERROR(wal.value()->ReplayInto(&store_, &replay));
    store_.NoteRecovery(replay);
    last_recovery_ = replay;
    store_.AttachWal(std::move(wal).value());
  }
  if (config.background_seal) {
    if (seal_group_ == nullptr) {
      seal_group_ = std::make_unique<exec::TaskGroup>();
    }
    exec::TaskGroup* group = seal_group_.get();
    store_.SetBackgroundSeal(true, [group](std::function<void()> fn) {
      group->Submit(std::move(fn));
    });
  }
  return Status::Ok();
}

Status IotDbLite::Checkpoint(const std::string& path) {
  ETSQP_RETURN_IF_ERROR(store_.Flush());
  ETSQP_RETURN_IF_ERROR(storage::WriteTsFile(store_, path));
  storage::Wal* wal = store_.wal();
  if (wal != nullptr && !testing_fail_before_wal_truncate_) {
    // The TsFile now covers every logged point; the log restarts empty.
    ETSQP_RETURN_IF_ERROR(wal->Reset());
  }
  return Status::Ok();
}

Status IotDbLite::Save(const std::string& path) const {
  return storage::WriteTsFile(store_, path);
}

Status IotDbLite::Load(const std::string& path) {
  ETSQP_RETURN_IF_ERROR(storage::ReadTsFile(path, &store_));
  TryAttachCalibration(path + ".calib");
  return Status::Ok();
}

void IotDbLite::TryAttachCalibration(const std::string& path) {
  // Best-effort: a missing, corrupt, or version-skewed cache silently
  // leaves the static CostConstants in force.
  Result<exec::CostCalibration> cal = exec::CostCalibration::LoadFromFile(path);
  if (!cal.ok()) return;
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  calibration_ =
      std::make_shared<const exec::CostCalibration>(std::move(cal).value());
  RebuildEngine();
}

Status IotDbLite::Calibrate(const std::string& path) {
  bool measured = false;
  Result<std::shared_ptr<const exec::CostCalibration>> cal =
      exec::CostCalibration::LoadOrMeasure(path, &measured);
  if (!cal.ok()) return cal.status();
  std::unique_lock<std::shared_mutex> lock(*engine_mu_);
  calibration_ = std::move(cal).value();
  RebuildEngine();
  return Status::Ok();
}

Status IotDbLite::ImportCsv(const std::string& series,
                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("open: " + path);
  char line[256];
  size_t lineno = 0;
  Status status;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    // Skip a header or blank line.
    if (lineno == 1 && !std::isdigit(static_cast<unsigned char>(line[0])) &&
        line[0] != '-') {
      continue;
    }
    if (line[0] == '\n' || line[0] == '\0') continue;
    char* comma = std::strchr(line, ',');
    if (comma == nullptr) {
      status = Status::InvalidArgument("csv: missing comma at line " +
                                       std::to_string(lineno));
      break;
    }
    errno = 0;
    char* end = nullptr;
    long long t = std::strtoll(line, &end, 10);
    long long v = std::strtoll(comma + 1, &end, 10);
    if (errno != 0) {
      status = Status::InvalidArgument("csv: bad number at line " +
                                       std::to_string(lineno));
      break;
    }
    status = Insert(series, t, v);
    if (!status.ok()) break;
  }
  std::fclose(f);
  return status;
}

Status IotDbLite::ExportCsv(const std::string& series,
                            const std::string& path) const {
  Result<exec::LogicalPlan> plan = sql::PlanQuery("SELECT * FROM " + series);
  if (!plan.ok()) return plan.status();
  Result<exec::QueryResult> result = engine_.Execute(plan.value(), store_);
  if (!result.ok()) return result.status();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  std::fprintf(f, "time,value\n");
  const exec::QueryResult& qr = result.value();
  for (size_t r = 0; r < qr.num_rows(); ++r) {
    std::fprintf(f, "%lld,%lld\n",
                 static_cast<long long>(qr.columns[0][r]),
                 static_cast<long long>(qr.columns[1][r]));
  }
  std::fclose(f);
  return Status::Ok();
}

Result<exec::QueryResult> IotDbLite::Query(const std::string& sql) const {
  Result<exec::LogicalPlan> plan = sql::PlanQuery(sql);
  if (!plan.ok()) return plan.status();
  // Shared lock: any number of concurrent queries execute on the shared
  // pool; reconfiguration (SetMode/SetThreads/OpenFile/...) takes the
  // exclusive side and waits them out.
  std::shared_lock<std::shared_mutex> lock(*engine_mu_);
  exec::StoreHandle handle =
      file_store_ != nullptr ? exec::StoreHandle(file_store_.get())
                             : exec::StoreHandle(store_);
  return engine_.Execute(plan.value(), handle);
}

}  // namespace etsqp::db
