#ifndef ETSQP_DB_RESULT_CACHE_H_
#define ETSQP_DB_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/expr.h"

namespace etsqp::db {

/// LRU cache of query results keyed on (plan signature, per-input series
/// data epoch, shard layout). The epoch (SeriesSnapshot::epoch) advances on
/// every acknowledged append, background-seal install, replay, and page
/// load, so invalidation is implicit: a mutation changes the key that
/// subsequent identical queries compute, the old entry simply never hits
/// again and ages out of the LRU list. That makes admission cheap — no
/// per-entry dependency tracking, no invalidation fan-out on the (hot)
/// ingest path.
///
/// Bounded by a byte budget (estimated per entry: result columns + key +
/// bookkeeping). Insert evicts from the cold end until the new entry fits;
/// entries larger than the budget are not admitted. Internally synchronized;
/// a zero budget disables the cache entirely (Lookup always misses, Insert
/// is a no-op) which is the single-shard facade's default.
class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t budget_bytes = 0;
  };

  explicit ResultCache(size_t budget_bytes) : budget_(budget_bytes) {}

  bool enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_ > 0;
  }

  /// On hit, copies the cached result into `out` (stats cleared at insert
  /// time except result_tuples) and refreshes the entry's LRU position.
  /// Counts a hit or miss either way.
  bool Lookup(const std::string& key, exec::QueryResult* out);

  /// Hit/miss accounting without returning the entry — EXPLAIN ANALYZE
  /// probes the cache but always executes so it has a profile to render.
  bool Probe(const std::string& key);

  /// Admits `result` under `key` (replacing any existing entry), evicting
  /// cold entries until it fits. Returns the number of entries evicted by
  /// this insert; oversized results (entry > budget) are not admitted.
  uint64_t Insert(const std::string& key, const exec::QueryResult& result);

  /// Drops everything (reshard, explicit `.cache clear`).
  void Clear();

  void SetBudget(size_t budget_bytes);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    exec::QueryResult result;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const std::string& key,
                           const exec::QueryResult& result);
  /// Unlinks the cold end. Caller holds mu_.
  void EvictOneLocked();

  mutable std::mutex mu_;
  size_t budget_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = hottest
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_RESULT_CACHE_H_
