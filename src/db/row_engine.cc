#include "db/row_engine.h"

#include <chrono>
#include <thread>

#include "encoding/generic_compress.h"
#include "exec/pipeline.h"

namespace etsqp::db {

Status RowEngine::CreateSeries(const std::string& name) {
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("series exists: " + name);
  }
  tables_[name] = Table{};
  return Status::Ok();
}

void RowEngine::FlushTable(Table* table) const {
  if (table->buf.empty()) return;
  Split split;
  split.rows = static_cast<uint32_t>(table->buf.size() / 2);
  split.lz = enc::LzCompress(reinterpret_cast<const uint8_t*>(
                                 table->buf.data()),
                             table->buf.size() * sizeof(int64_t));
  table->splits.push_back(std::move(split));
  table->buf.clear();
}

Status RowEngine::AppendBatch(const std::string& name, const int64_t* times,
                              const int64_t* values, size_t n) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("series: " + name);
  Table& table = it->second;
  for (size_t i = 0; i < n; ++i) {
    table.buf.push_back(times[i]);
    table.buf.push_back(values[i]);
    if (table.buf.size() / 2 >= options_.split_rows) FlushTable(&table);
  }
  FlushTable(&table);
  return Status::Ok();
}

Result<exec::QueryResult> RowEngine::Aggregate(
    const std::string& name, exec::AggFunc func,
    const exec::TimeRange& trange, const exec::ValueRange& vrange) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("series: " + name);
  const Table& table = it->second;

  // Fixed query-compilation / task-dispatch latency.
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      options_.query_setup_ms));

  exec::QueryResult result;
  exec::AggAccum accum;
  const bool need_sq = func == exec::AggFunc::kVariance;
  std::vector<int64_t> rows;
  for (const Split& split : table.splits) {
    ++result.stats.pages_total;
    result.stats.tuples_in_pages += split.rows;
    result.stats.bytes_loaded += split.lz.size();
    rows.resize(static_cast<size_t>(split.rows) * 2);
    ETSQP_RETURN_IF_ERROR(enc::LzDecompress(
        split.lz.data(), split.lz.size(),
        reinterpret_cast<uint8_t*>(rows.data()),
        rows.size() * sizeof(int64_t)));
    result.stats.tuples_scanned += split.rows;
    // Row-at-a-time evaluation (no split-level time pruning: generic
    // engines lack IoT min/max page statistics).
    for (uint32_t r = 0; r < split.rows; ++r) {
      int64_t t = rows[2 * r];
      int64_t v = rows[2 * r + 1];
      if (t < trange.lo || t > trange.hi) continue;
      if (!vrange.Contains(v)) continue;
      accum.AddValue(v, need_sq);
    }
  }
  double out = 0;
  Status st = accum.Finalize(func, &out);
  result.column_names = {exec::AggFuncName(func)};
  result.columns.assign(1, {});
  if (st.ok()) {
    result.columns[0].push_back(out);
  } else if (st.code() == StatusCode::kOverflow) {
    return st;
  }
  result.stats.result_tuples = result.num_rows();
  return result;
}

uint64_t RowEngine::CompressedBytes(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return 0;
  uint64_t total = 0;
  for (const Split& split : it->second.splits) total += split.lz.size();
  return total;
}

}  // namespace etsqp::db
