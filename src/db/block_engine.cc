#include "db/block_engine.h"

#include <algorithm>
#include <cstring>

#include "encoding/generic_compress.h"
#include "exec/pipeline.h"

namespace etsqp::db {

namespace {

std::vector<uint8_t> CompressInts(const std::vector<int64_t>& v) {
  return enc::LzCompress(reinterpret_cast<const uint8_t*>(v.data()),
                         v.size() * sizeof(int64_t));
}

Status DecompressInts(const std::vector<uint8_t>& lz, size_t rows,
                      std::vector<int64_t>* out) {
  out->resize(rows);
  return enc::LzDecompress(lz.data(), lz.size(),
                           reinterpret_cast<uint8_t*>(out->data()),
                           rows * sizeof(int64_t));
}

}  // namespace

Status BlockEngine::CreateSeries(const std::string& name) {
  if (columns_.count(name) != 0) {
    return Status::InvalidArgument("series exists: " + name);
  }
  columns_[name] = Column{};
  return Status::Ok();
}

Status BlockEngine::FlushColumn(Column* col) const {
  if (col->buf_times.empty()) return Status::Ok();
  Block blk;
  blk.rows = static_cast<uint32_t>(col->buf_times.size());
  blk.min_time = col->buf_times.front();
  blk.max_time = col->buf_times.back();
  blk.time_lz = CompressInts(col->buf_times);
  blk.value_lz = CompressInts(col->buf_values);
  col->blocks.push_back(std::move(blk));
  col->buf_times.clear();
  col->buf_values.clear();
  return Status::Ok();
}

Status BlockEngine::AppendBatch(const std::string& name, const int64_t* times,
                                const int64_t* values, size_t n) {
  auto it = columns_.find(name);
  if (it == columns_.end()) return Status::NotFound("series: " + name);
  Column& col = it->second;
  for (size_t i = 0; i < n; ++i) {
    col.buf_times.push_back(times[i]);
    col.buf_values.push_back(values[i]);
    if (col.buf_times.size() >= options_.block_rows) {
      ETSQP_RETURN_IF_ERROR(FlushColumn(&col));
    }
  }
  return FlushColumn(&col);
}

Result<exec::QueryResult> BlockEngine::Aggregate(
    const std::string& name, exec::AggFunc func,
    const exec::TimeRange& trange, const exec::ValueRange& vrange) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) return Status::NotFound("series: " + name);
  const Column& col = it->second;

  exec::QueryResult result;
  exec::AggAccum accum;
  const bool need_sq = func == exec::AggFunc::kVariance;
  std::vector<int64_t> t, v;
  for (const Block& blk : col.blocks) {
    ++result.stats.pages_total;
    result.stats.tuples_in_pages += blk.rows;
    if (!trange.Overlaps(blk.min_time, blk.max_time)) {
      ++result.stats.pages_pruned;
      continue;
    }
    result.stats.bytes_loaded += blk.time_lz.size() + blk.value_lz.size();
    // Whole-block decompress-then-operate (the MonetDB execution model:
    // materialize, then scan).
    ETSQP_RETURN_IF_ERROR(DecompressInts(blk.time_lz, blk.rows, &t));
    ETSQP_RETURN_IF_ERROR(DecompressInts(blk.value_lz, blk.rows, &v));
    result.stats.tuples_scanned += blk.rows;
    size_t lo = std::lower_bound(t.begin(), t.end(), trange.lo) - t.begin();
    size_t hi = std::upper_bound(t.begin(), t.end(), trange.hi) - t.begin();
    for (size_t i = lo; i < hi; ++i) {
      if (vrange.Contains(v[i])) accum.AddValue(v[i], need_sq);
    }
  }
  double out = 0;
  Status st = accum.Finalize(func, &out);
  result.column_names = {exec::AggFuncName(func)};
  result.columns.assign(1, {});
  if (st.ok()) {
    result.columns[0].push_back(out);
  } else if (st.code() == StatusCode::kOverflow) {
    return st;
  }
  result.stats.result_tuples = result.num_rows();
  return result;
}

uint64_t BlockEngine::CompressedBytes(const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) return 0;
  uint64_t total = 0;
  for (const Block& blk : it->second.blocks) {
    total += blk.time_lz.size() + blk.value_lz.size();
  }
  return total;
}

}  // namespace etsqp::db
