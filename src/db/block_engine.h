#ifndef ETSQP_DB_BLOCK_ENGINE_H_
#define ETSQP_DB_BLOCK_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expr.h"

namespace etsqp::db {

/// MonetDB-like columnar engine (Figure 13 comparator). Storage is plain
/// 64-bit columns, LZ-compressed per block; queries decompress whole blocks
/// into materialized arrays, then run vectorized operators over them. The
/// two modeled gaps versus IoTDB-SIMD are exactly the paper's: the generic
/// compressor misses the delta structure (more I/O), and intermediates are
/// materialized in memory rather than shared in registers.
class BlockEngine {
 public:
  struct Options {
    uint32_t block_rows = 65536;
  };

  BlockEngine() = default;
  explicit BlockEngine(Options options) : options_(options) {}

  Status CreateSeries(const std::string& name);
  Status AppendBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);

  /// Aggregation with optional time/value range filters (the Figure 13
  /// query shapes).
  Result<exec::QueryResult> Aggregate(const std::string& name,
                                      exec::AggFunc func,
                                      const exec::TimeRange& trange,
                                      const exec::ValueRange& vrange) const;

  /// Total compressed bytes of `name` (I/O volume metric).
  uint64_t CompressedBytes(const std::string& name) const;

 private:
  struct Block {
    uint32_t rows = 0;
    int64_t min_time = 0;
    int64_t max_time = 0;
    std::vector<uint8_t> time_lz;
    std::vector<uint8_t> value_lz;
  };
  struct Column {
    std::vector<Block> blocks;
    std::vector<int64_t> buf_times;
    std::vector<int64_t> buf_values;
  };

  Status FlushColumn(Column* col) const;

  Options options_ = {};
  mutable std::map<std::string, Column> columns_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_BLOCK_ENGINE_H_
