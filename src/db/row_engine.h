#ifndef ETSQP_DB_ROW_ENGINE_H_
#define ETSQP_DB_ROW_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expr.h"

namespace etsqp::db {

/// Spark/HDFS-like engine (Figure 13 comparator): rows serialized as
/// (time, value) pairs into large splits, compressed with the generic LZ
/// codec, evaluated row-at-a-time after a fixed per-query JIT/codegen setup
/// cost. Models the paper's observations: shared strength in query-time code
/// generation, but an inefficient generic compressor (I/O bound) and
/// row-oriented evaluation.
class RowEngine {
 public:
  struct Options {
    uint32_t split_rows = 262144;
    double query_setup_ms = 30.0;  // JIT/codegen + task dispatch latency
  };

  RowEngine() = default;
  explicit RowEngine(Options options) : options_(options) {}

  Status CreateSeries(const std::string& name);
  Status AppendBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);

  Result<exec::QueryResult> Aggregate(const std::string& name,
                                      exec::AggFunc func,
                                      const exec::TimeRange& trange,
                                      const exec::ValueRange& vrange) const;

  uint64_t CompressedBytes(const std::string& name) const;
  double query_setup_ms() const { return options_.query_setup_ms; }

 private:
  struct Split {
    uint32_t rows = 0;
    std::vector<uint8_t> lz;  // rows * 16 bytes, row-major
  };
  struct Table {
    std::vector<Split> splits;
    std::vector<int64_t> buf;  // interleaved time,value
  };

  void FlushTable(Table* table) const;

  Options options_ = {};
  mutable std::map<std::string, Table> tables_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_ROW_ENGINE_H_
