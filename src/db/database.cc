#include "db/database.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "db/shard_router.h"
#include "exec/scheduler_registry.h"
#include "exec/thread_pool.h"
#include "sql/planner.h"
#include "storage/page_builder.h"
#include "storage/tsfile.h"

namespace etsqp::db {

namespace {

constexpr const char* kDefaultTenant = "default";

exec::PipelineOptions ModeOptions(
    Database::Mode mode, int threads, bool collect_stats,
    std::shared_ptr<const exec::CostCalibration> calibration) {
  exec::PipelineOptions o = mode == Database::Mode::kScalar
                                ? exec::PipelineOptions::Serial()
                                : exec::PipelineOptions::EtsqpPrune(threads);
  if (mode == Database::Mode::kSimd) {
    o.WithCalibration(std::move(calibration));
  }
  return o.WithStats(collect_stats);
}

bool HasRightInput(const exec::LogicalPlan& plan) {
  return plan.kind == exec::LogicalPlan::Kind::kProjectBinary ||
         plan.kind == exec::LogicalPlan::Kind::kUnion ||
         plan.kind == exec::LogicalPlan::Kind::kJoin ||
         plan.kind == exec::LogicalPlan::Kind::kCorrelate;
}

/// What this query is admitted to cost: both encoded pages (decoded once,
/// accumulated once => ~2x) and the snapshot's copy of the unsealed tail
/// (two int64 arrays per point). An estimate, not an accounting — admission
/// needs an upper-bound signal before execution, not a profile after.
constexpr uint64_t kTailBytesPerPoint = 16;

struct AdmissionTicket {
  uint64_t wait_nanos = 0;
  uint64_t queue_depth = 0;
};

/// Decode-cost tie-break for the CodecAdvisor: the minimum calibrated
/// ns/tuple any scheduler entry measured over pages of this encoding
/// (calibration keys are "entry|ENCNAME/w<bucket>"). 0 = no measurement,
/// which the advisor treats as "no preference".
storage::CodecAdvisor::CostHook MakeCostHook(
    std::shared_ptr<const exec::CostCalibration> cal) {
  if (cal == nullptr) return nullptr;
  return [cal](enc::ColumnEncoding encoding, bool /*is_float*/) -> double {
    const std::string needle =
        std::string("|") + enc::ColumnEncodingName(encoding) + "/w";
    double best = 0;
    for (const auto& [key, ns] : cal->costs()) {
      if (key.find(needle) == std::string::npos) continue;
      if (best == 0 || ns < best) best = ns;
    }
    return best;
  };
}

}  // namespace

struct Database::Rep {
  Mode mode;
  int threads;
  bool collect_stats = false;
  bool testing_fail_before_wal_truncate = false;

  ShardRouter router;
  std::vector<std::unique_ptr<Shard>> shards;
  /// Owns the background-seal tasks submitted on the shards' behalf.
  /// Declared after shards so it is destroyed first: the TaskGroup
  /// destructor waits out in-flight encodes before the stores go away.
  std::unique_ptr<exec::TaskGroup> seal_group;

  ResultCache cache;
  storage::Wal::ReplayStats last_recovery;

  /// Readers = Query() executions; writers = engine reconfiguration,
  /// file-store attach/detach, calibration swaps, resharding.
  mutable std::shared_mutex engine_mu;

  struct Tenant {
    TenantOptions opts;
    TenantStats stats;
  };
  mutable std::mutex tenant_mu;
  mutable std::condition_variable tenant_cv;
  mutable std::map<std::string, Tenant> tenants;

  explicit Rep(const Options& o)
      : mode(o.mode),
        threads(o.mode == Mode::kScalar ? 1 : (o.threads > 0 ? o.threads : 1)),
        router(o.shards),
        cache(o.cache_budget_bytes) {
    for (int k = 0; k < router.num_shards(); ++k) {
      shards.push_back(std::make_unique<Shard>(k));
    }
    RebuildEnginesLocked();
  }

  /// Caller holds engine_mu exclusively (or is the constructor).
  void RebuildEnginesLocked() {
    for (auto& s : shards) {
      s->engine = std::make_unique<exec::Engine>(
          ModeOptions(mode, threads, collect_stats, s->calibration));
    }
  }

  Shard& ShardFor(const std::string& series) {
    return *shards[router.ShardOf(series)];
  }
  const Shard& ShardFor(const std::string& series) const {
    return *shards[router.ShardOf(series)];
  }

  uint64_t MemoryBudgetOf(const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(tenant_mu);
    auto it = tenants.find(tenant);
    return it == tenants.end() ? 0 : it->second.opts.memory_budget_bytes;
  }

  /// Caller holds engine_mu (shared suffices: stores are internally
  /// synchronized, only the shard vector must not move).
  uint64_t EstimateBytes(const exec::LogicalPlan& plan) const {
    uint64_t total = 0;
    auto add = [&](const std::string& name) {
      if (name.empty()) return;
      const storage::SeriesStore& store = ShardFor(name).store;
      total += 2 * store.EncodedBytes(name) +
               kTailBytesPerPoint * store.TailPoints(name);
    };
    add(plan.series);
    if (HasRightInput(plan)) add(plan.series_right);
    return total;
  }

  Status Admit(const std::string& tenant, uint64_t estimate,
               AdmissionTicket* ticket) const {
    std::unique_lock<std::mutex> lock(tenant_mu);
    Tenant& t = tenants[tenant];
    if (t.opts.memory_budget_bytes > 0 &&
        estimate > t.opts.memory_budget_bytes) {
      ++t.stats.rejected_memory;
      return Status::ResourceExhausted(
          "tenant '" + tenant + "': query estimate " +
          std::to_string(estimate) + " bytes over memory budget " +
          std::to_string(t.opts.memory_budget_bytes));
    }
    auto can_run = [&t] {
      return t.opts.max_concurrent < 0 ||
             t.stats.active < t.opts.max_concurrent;
    };
    if (!can_run()) {
      if (t.stats.queued >= t.opts.max_queued) {
        ++t.stats.rejected_queue;
        return Status::ResourceExhausted(
            "tenant '" + tenant + "': admission queue full (max_queued=" +
            std::to_string(t.opts.max_queued) + ")");
      }
      ++t.stats.queued;
      ticket->queue_depth = static_cast<uint64_t>(t.stats.queued);
      const uint64_t t0 = metrics::NowNanos();
      tenant_cv.wait(lock, can_run);
      --t.stats.queued;
      ticket->wait_nanos = metrics::NowNanos() - t0;
      t.stats.wait_nanos += ticket->wait_nanos;
    } else {
      ticket->queue_depth = static_cast<uint64_t>(t.stats.queued);
    }
    ++t.stats.active;
    ++t.stats.admitted;
    return Status::Ok();
  }

  void Release(const std::string& tenant) const {
    {
      std::lock_guard<std::mutex> lock(tenant_mu);
      --tenants[tenant].stats.active;
    }
    tenant_cv.notify_all();
  }

  /// Plan signature + per-input (series, data epoch) + shard layout. Two
  /// queries computing equal keys saw identical data (SeriesSnapshot::epoch
  /// contract), so the cache needs no explicit invalidation hooks.
  std::string CacheKey(const exec::LogicalPlan& plan) const {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "k%d|f%d|t[%" PRId64 ",%" PRId64 "]|v%d[%" PRId64
                  ",%" PRId64 "]|w%d(%" PRId64 ",%" PRId64 ")|b%c|i%c|s%d",
                  static_cast<int>(plan.kind), static_cast<int>(plan.func),
                  plan.time_filter.lo, plan.time_filter.hi,
                  plan.value_filter.active ? 1 : 0, plan.value_filter.lo,
                  plan.value_filter.hi, plan.window.active ? 1 : 0,
                  plan.window.t_min, plan.window.delta_t, plan.binary_op,
                  plan.inter_column_op ? plan.inter_column_op : '.',
                  router.num_shards());
    std::string key = buf;
    auto input = [&](const std::string& name) {
      const storage::SeriesStore& store = ShardFor(name).store;
      key += '|';
      key += name;
      key += '@';
      key += std::to_string(store.SeriesEpoch(name));
    };
    input(plan.series);
    if (HasRightInput(plan)) input(plan.series_right);
    return key;
  }

  /// Best-effort per-shard calibration attach; silently keeps the static
  /// model on a missing/corrupt/version-skewed cache.
  void TryAttachCalibration(Shard* shard, const std::string& path) {
    Result<exec::CostCalibration> cal =
        exec::CostCalibration::LoadFromFile(path);
    if (!cal.ok()) return;
    std::unique_lock<std::shared_mutex> lock(engine_mu);
    shard->calibration =
        std::make_shared<const exec::CostCalibration>(std::move(cal).value());
    shard->engine = std::make_unique<exec::Engine>(
        ModeOptions(mode, threads, collect_stats, shard->calibration));
  }

  /// The EXPLAIN ANALYZE serving-layer block appended below the engine's
  /// execution profile.
  void AppendServingProfile(const std::string& tenant, int primary_shard,
                            exec::QueryResult* out) const {
    char buf[256];
    out->explain_text += "---- serving layer ----\n";
    std::snprintf(buf, sizeof(buf), "shard: %d of %d (primary)\n",
                  primary_shard, router.num_shards());
    out->explain_text += buf;
    ResultCache::Stats cs = cache.stats();
    if (cs.budget_bytes > 0) {
      std::snprintf(buf, sizeof(buf),
                    "result cache: hits=%" PRIu64 " misses=%" PRIu64
                    " | global entries=%" PRIu64 " bytes=%" PRIu64
                    "/%" PRIu64 " evictions=%" PRIu64 "\n",
                    out->stats.cache_hits, out->stats.cache_misses, cs.entries,
                    cs.bytes, cs.budget_bytes, cs.evictions);
      out->explain_text += buf;
    } else {
      out->explain_text += "result cache: off\n";
    }
    std::snprintf(buf, sizeof(buf),
                  "admission: tenant=%s waited=%.3f ms queue_depth=%" PRIu64
                  "\n",
                  tenant.c_str(),
                  static_cast<double>(out->stats.admission_wait_nanos) / 1e6,
                  out->stats.admission_queue_depth);
    out->explain_text += buf;
    metrics::CompactionStats comp;
    for (const auto& shard : shards) {
      if (shard->compactor != nullptr) comp.Merge(shard->compactor->stats());
    }
    if (!comp.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "compaction: runs=%" PRIu64 " pages %" PRIu64 "->%" PRIu64
                    " (reencoded=%" PRIu64 ") bytes %" PRIu64 "->%" PRIu64
                    " dropped=%" PRIu64 " ooo_merged=%" PRIu64 "\n",
                    comp.runs, comp.pages_in, comp.pages_out,
                    comp.pages_reencoded, comp.bytes_in, comp.bytes_out,
                    comp.deleted_points_dropped, comp.ooo_points_merged);
      out->explain_text += buf;
    }
  }
};

Database::Database(const Options& options)
    : rep_(std::make_unique<Rep>(options)) {}
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

// --- Catalog + ingest ------------------------------------------------------

Status Database::CreateTimeseries(const std::string& name,
                                  uint32_t page_size) {
  storage::SeriesStore::SeriesOptions options;
  options.page_size = page_size;
  return rep_->ShardFor(name).store.CreateSeries(name, options);
}

Status Database::CreateTimeseries(
    const std::string& name,
    const storage::SeriesStore::SeriesOptions& options) {
  return rep_->ShardFor(name).store.CreateSeries(name, options);
}

Status Database::CreateFloatTimeseries(const std::string& name,
                                       enc::ColumnEncoding encoding,
                                       uint32_t page_size) {
  if (!enc::IsFloatEncoding(encoding)) {
    return Status::InvalidArgument("not a float encoding");
  }
  storage::SeriesStore::SeriesOptions options;
  options.page_size = page_size;
  options.page.value_encoding = encoding;
  return rep_->ShardFor(name).store.CreateSeries(name, options);
}

Status Database::Insert(const std::string& name, int64_t time, int64_t value) {
  return rep_->ShardFor(name).store.Append(name, time, value);
}

Status Database::InsertBatch(const std::string& name, const int64_t* times,
                             const int64_t* values, size_t n) {
  return rep_->ShardFor(name).store.AppendBatch(name, times, values, n);
}

Status Database::InsertF64(const std::string& name, int64_t time,
                           double value) {
  return rep_->ShardFor(name).store.AppendF64(name, time, value);
}

Status Database::InsertBatchF64(const std::string& name, const int64_t* times,
                                const double* values, size_t n) {
  return rep_->ShardFor(name).store.AppendBatchF64(name, times, values, n);
}

Status Database::Flush() {
  for (auto& shard : rep_->shards) {
    ETSQP_RETURN_IF_ERROR(shard->store.Flush());
  }
  return Status::Ok();
}

Status Database::EnableCompaction(const CompactionConfig& config) {
  Rep* rep = rep_.get();
  std::unique_lock<std::shared_mutex> lock(rep->engine_mu);
  if (config.auto_trigger_pages > 0 && rep->seal_group == nullptr) {
    rep->seal_group = std::make_unique<exec::TaskGroup>();
  }
  for (auto& shard : rep->shards) {
    storage::CompactionOptions opts = config.options;
    if (!opts.cost_hook) opts.cost_hook = MakeCostHook(shard->calibration);
    if (!opts.decode_support) {
      // Registry-backed guard: a rewrite codec must have both a storage
      // decode entry and a schedulable serving-path class.
      opts.decode_support = [](enc::ColumnEncoding e) {
        if (!storage::PageDecodeSupported(e)) return false;
        exec::PageClass cls;
        cls.value_encoding = e;
        cls.time_encoding = enc::ColumnEncoding::kTs2Diff;
        cls.is_float = enc::IsFloatEncoding(e);
        cls.width_bucket = 8;
        exec::ScheduleDecision d = exec::SchedulerRegistry::Global().Propose(
            cls, exec::PlanContext{}, nullptr, exec::CostConstants{});
        return d.entry != nullptr;
      };
    }
    shard->compactor =
        std::make_unique<storage::Compactor>(&shard->store, std::move(opts));
    if (config.auto_trigger_pages > 0) {
      exec::TaskGroup* group = rep->seal_group.get();
      Shard* s = shard.get();
      shard->store.SetCompactionTrigger(
          config.auto_trigger_pages, [group, s] {
            // Fires under the store lock: only schedule, never compact
            // inline. One queued pass per shard at a time — bursts of page
            // installs collapse onto the already-scheduled pass.
            bool expected = false;
            if (!s->compact_scheduled.compare_exchange_strong(expected,
                                                              true)) {
              return;
            }
            group->Submit([s] {
              s->compact_scheduled.store(false);
              (void)s->compactor->CompactAll();
            });
          });
    } else {
      shard->store.SetCompactionTrigger(0, nullptr);
    }
  }
  return Status::Ok();
}

Status Database::Compact(int shard) {
  Rep* rep = rep_.get();
  std::shared_lock<std::shared_mutex> lock(rep->engine_mu);
  const int n = rep->router.num_shards();
  if (shard >= n) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  for (const auto& s : rep->shards) {
    if (s->compactor == nullptr) {
      return Status::FailedPrecondition("call EnableCompaction first");
    }
  }
  if (shard >= 0) return rep->shards[shard]->compactor->CompactAll();
  if (n == 1) return rep->shards[0]->compactor->CompactAll();
  // Fan out one pass per shard on the shared pool; queries keep running
  // (compaction takes the store lock only to capture and to install).
  exec::TaskGroup group;
  std::vector<Status> results(n);
  for (int k = 0; k < n; ++k) {
    Shard* s = rep->shards[k].get();
    Status* out = &results[k];
    group.Submit([s, out] { *out = s->compactor->CompactAll(); });
  }
  group.Wait();
  for (const Status& st : results) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status Database::DeleteRange(const std::string& name, int64_t t0,
                             int64_t t1) {
  return rep_->ShardFor(name).store.DeleteRange(name, t0, t1);
}

Status Database::SetTtl(const std::string& name, int64_t ttl_nanos) {
  return rep_->ShardFor(name).store.SetTtl(name, ttl_nanos);
}

metrics::CompactionStats Database::compaction_stats() const {
  metrics::CompactionStats total;
  for (const auto& shard : rep_->shards) {
    if (shard->compactor != nullptr) total.Merge(shard->compactor->stats());
  }
  return total;
}

Status Database::EnableIngest(const IngestConfig& config) {
  Rep* rep = rep_.get();
  const int n = rep->router.num_shards();
  if (!config.wal_path.empty()) {
    for (auto& shard : rep->shards) {
      if (shard->store.wal() != nullptr) {
        return Status::InvalidArgument("a WAL is already attached");
      }
    }
    storage::Wal::ReplayStats agg;
    for (auto& shard : rep->shards) {
      storage::Wal::Options options;
      options.fsync = config.fsync;
      options.batch_bytes = config.wal_batch_bytes;
      Result<std::unique_ptr<storage::Wal>> wal = storage::Wal::Open(
          Shard::ArtifactPath(config.wal_path, shard->index, n), options);
      if (!wal.ok()) return wal.status();
      // Recovery before attach: records from an earlier run (possibly on
      // top of a Load()ed checkpoint) are applied idempotently, a torn tail
      // is truncated away, and only then does the log accept new appends.
      storage::Wal::ReplayStats replay;
      ETSQP_RETURN_IF_ERROR(wal.value()->ReplayInto(&shard->store, &replay));
      shard->store.NoteRecovery(replay);
      shard->last_recovery = replay;
      agg.records_applied += replay.records_applied;
      agg.records_skipped += replay.records_skipped;
      agg.records_dropped += replay.records_dropped;
      agg.bytes_dropped += replay.bytes_dropped;
      agg.points_applied += replay.points_applied;
      shard->store.AttachWal(std::move(wal).value());
    }
    rep->last_recovery = agg;
  }
  if (config.background_seal) {
    if (rep->seal_group == nullptr) {
      rep->seal_group = std::make_unique<exec::TaskGroup>();
    }
    exec::TaskGroup* group = rep->seal_group.get();
    for (auto& shard : rep->shards) {
      shard->store.SetBackgroundSeal(true, [group](std::function<void()> fn) {
        group->Submit(std::move(fn));
      });
    }
  }
  return Status::Ok();
}

Status Database::Checkpoint(const std::string& path) {
  Rep* rep = rep_.get();
  const int n = rep->router.num_shards();
  for (auto& shard : rep->shards) {
    ETSQP_RETURN_IF_ERROR(shard->store.Flush());
    ETSQP_RETURN_IF_ERROR(storage::WriteTsFile(
        shard->store, Shard::ArtifactPath(path, shard->index, n)));
    storage::Wal* wal = shard->store.wal();
    if (wal != nullptr && !rep->testing_fail_before_wal_truncate) {
      // The TsFile now covers every logged point; the log restarts empty.
      ETSQP_RETURN_IF_ERROR(wal->Reset());
    }
  }
  return Status::Ok();
}

void Database::TestingFailBeforeWalTruncate(bool on) {
  rep_->testing_fail_before_wal_truncate = on;
}

metrics::IngestStats Database::ingest_stats() const {
  metrics::IngestStats total;
  for (const auto& shard : rep_->shards) {
    metrics::IngestStats s = shard->store.ingest_stats();
    total.points_appended += s.points_appended;
    total.append_batches += s.append_batches;
    total.rejected_batches += s.rejected_batches;
    total.pages_sealed += s.pages_sealed;
    total.background_seals += s.background_seals;
    total.seal_nanos += s.seal_nanos;
    total.tail_points += s.tail_points;
    total.wal_records += s.wal_records;
    total.wal_bytes += s.wal_bytes;
    total.wal_fsyncs += s.wal_fsyncs;
    total.wal_sync_nanos += s.wal_sync_nanos;
    total.recovered_records += s.recovered_records;
    total.recovered_points += s.recovered_points;
    total.dropped_wal_records += s.dropped_wal_records;
    total.ooo_points += s.ooo_points;
    total.ooo_pending += s.ooo_pending;
    total.delete_ranges += s.delete_ranges;
  }
  return total;
}

storage::PruneProbeStats Database::CountMatchingSeries(
    const storage::PruneProbe& probe,
    std::vector<std::string>* matched) const {
  Rep* rep = rep_.get();
  // Shared engine lock: the shard vector must not move (Reshard rebuilds
  // it); each store probes its own index under its own shared lock.
  std::shared_lock<std::shared_mutex> lock(rep->engine_mu);
  storage::PruneProbeStats total;
  if (matched != nullptr) matched->clear();
  std::vector<std::string> shard_matched;
  for (const auto& shard : rep->shards) {
    storage::PruneProbeStats s = shard->store.CountMatchingSeries(
        probe, matched != nullptr ? &shard_matched : nullptr);
    total.series_total += s.series_total;
    total.series_matched += s.series_matched;
    total.probe_nanos += s.probe_nanos;
    if (matched != nullptr) {
      matched->insert(matched->end(),
                      std::make_move_iterator(shard_matched.begin()),
                      std::make_move_iterator(shard_matched.end()));
    }
  }
  return total;
}

const storage::Wal::ReplayStats& Database::last_recovery() const {
  return rep_->last_recovery;
}

// --- Queries ---------------------------------------------------------------

Result<exec::QueryResult> Database::Query(const std::string& sql) const {
  return Query(kDefaultTenant, sql);
}

Result<exec::QueryResult> Database::Query(const std::string& tenant,
                                          const std::string& sql) const {
  Result<exec::LogicalPlan> plan = sql::PlanQuery(sql);
  if (!plan.ok()) return plan.status();
  const exec::LogicalPlan& p = plan.value();
  Rep* rep = rep_.get();

  // Admission first, outside the engine lock: a queued query must not block
  // reconfiguration, and a rejected one must cost nothing further.
  uint64_t estimate = 0;
  if (rep->MemoryBudgetOf(tenant) > 0) {
    std::shared_lock<std::shared_mutex> lock(rep->engine_mu);
    estimate = rep->EstimateBytes(p);
  }
  AdmissionTicket ticket;
  ETSQP_RETURN_IF_ERROR(rep->Admit(tenant, estimate, &ticket));
  // Releases the admission slot when the query leaves scope, success or not.
  struct Slot {
    Rep* rep;
    const std::string& tenant;
    ~Slot() { rep->Release(tenant); }
  } slot{rep, tenant};
  (void)slot;

  std::shared_lock<std::shared_mutex> lock(rep->engine_mu);
  Shard& primary = rep->ShardFor(p.series);
  auto decorate = [&ticket](exec::ExecStats* stats) {
    stats->admission_wait_nanos = ticket.wait_nanos;
    stats->admission_queue_depth = ticket.queue_depth;
  };

  if (primary.file_store != nullptr) {
    // File-backed path: pages stream through the buffer pool; no data
    // epochs there, so the result cache stays out of the way.
    Result<exec::QueryResult> run =
        primary.engine->Execute(p, primary.file_store.get());
    if (run.ok()) decorate(&run.value().stats);
    return run;
  }

  const bool analyze = p.explain == exec::LogicalPlan::ExplainMode::kAnalyze;
  const bool cache_on = rep->cache.enabled();
  const bool cacheable =
      cache_on && p.explain == exec::LogicalPlan::ExplainMode::kNone;
  std::string key;
  if (cacheable || (analyze && cache_on)) key = rep->CacheKey(p);

  if (cacheable) {
    exec::QueryResult hit;
    if (rep->cache.Lookup(key, &hit)) {
      hit.stats.cache_hits = 1;
      decorate(&hit.stats);
      return hit;
    }
  }

  // Inputs resolve through the router: each series snapshots on its owning
  // shard, and the plan still compiles into one PipelineJobSet on the
  // shared executor (cross-shard merge = the ordinary merge stage).
  exec::SnapshotResolver resolve =
      [rep](const std::string& name) -> Result<storage::SeriesSnapshot> {
    return rep->ShardFor(name).store.GetSnapshot(name);
  };
  Result<exec::QueryResult> run =
      primary.engine->Execute(p, exec::StoreHandle(std::move(resolve)));
  if (!run.ok()) return run.status();
  exec::QueryResult out = std::move(run).value();

  if (cacheable) {
    out.stats.cache_misses = 1;
    out.stats.cache_evictions = rep->cache.Insert(key, out);
  } else if (analyze && cache_on) {
    // ANALYZE probes (so the profile shows what a plain run would have
    // done) but always executes — it needs a measured profile to render.
    const bool hit = rep->cache.Probe(key);
    out.stats.cache_hits = hit ? 1 : 0;
    out.stats.cache_misses = hit ? 0 : 1;
  }
  decorate(&out.stats);
  if (analyze) rep->AppendServingProfile(tenant, primary.index, &out);
  return out;
}

// --- Tenants ---------------------------------------------------------------

void Database::ConfigureTenant(const std::string& name,
                               const TenantOptions& options) {
  {
    std::lock_guard<std::mutex> lock(rep_->tenant_mu);
    rep_->tenants[name].opts = options;
  }
  // Loosened limits may unblock queued queries.
  rep_->tenant_cv.notify_all();
}

std::map<std::string, Database::TenantStats> Database::tenant_stats() const {
  std::lock_guard<std::mutex> lock(rep_->tenant_mu);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, t] : rep_->tenants) out[name] = t.stats;
  return out;
}

// --- Engine reconfiguration ------------------------------------------------

void Database::SetMode(Mode mode) {
  std::unique_lock<std::shared_mutex> lock(rep_->engine_mu);
  rep_->mode = mode;
  rep_->RebuildEnginesLocked();
}

void Database::SetThreads(int threads) {
  std::unique_lock<std::shared_mutex> lock(rep_->engine_mu);
  rep_->threads = threads > 0 ? threads : 1;
  // Warm the shared pool to the new width so the first query at this
  // setting does not pay worker spin-up (the query itself is one runner).
  if (rep_->threads > 1) exec::ThreadPool::Global().Reserve(rep_->threads - 1);
  rep_->RebuildEnginesLocked();
}

void Database::SetCollectStats(bool on) {
  std::unique_lock<std::shared_mutex> lock(rep_->engine_mu);
  rep_->collect_stats = on;
  rep_->RebuildEnginesLocked();
}

Database::Mode Database::mode() const { return rep_->mode; }
int Database::threads() const { return rep_->threads; }
bool Database::collect_stats() const { return rep_->collect_stats; }

// --- Persistence -----------------------------------------------------------

Status Database::Save(const std::string& path) const {
  const int n = rep_->router.num_shards();
  for (const auto& shard : rep_->shards) {
    ETSQP_RETURN_IF_ERROR(storage::WriteTsFile(
        shard->store, Shard::ArtifactPath(path, shard->index, n)));
  }
  return Status::Ok();
}

Status Database::Load(const std::string& path) {
  Rep* rep = rep_.get();
  const int n = rep->router.num_shards();
  if (n == 1) {
    ETSQP_RETURN_IF_ERROR(storage::ReadTsFile(path, &rep->shards[0]->store));
    rep->TryAttachCalibration(rep->shards[0].get(),
                              Shard::CalibPath(path, 0, 1));
    return Status::Ok();
  }
  Status first = storage::ReadTsFile(Shard::ArtifactPath(path, 0, n),
                                     &rep->shards[0]->store);
  if (first.ok()) {
    rep->TryAttachCalibration(rep->shards[0].get(),
                              Shard::CalibPath(path, 0, n));
    for (int k = 1; k < n; ++k) {
      ETSQP_RETURN_IF_ERROR(storage::ReadTsFile(
          Shard::ArtifactPath(path, k, n), &rep->shards[k]->store));
      rep->TryAttachCalibration(rep->shards[k].get(),
                                Shard::CalibPath(path, k, n));
    }
    return Status::Ok();
  }
  if (first.code() != StatusCode::kIoError) return first;
  // No per-shard files: read the combined file once and redistribute its
  // series through the router, sharing pages instead of copying payloads.
  storage::SeriesStore staged;
  ETSQP_RETURN_IF_ERROR(storage::ReadTsFile(path, &staged));
  for (const std::string& name : staged.SeriesNames()) {
    Result<const storage::SeriesStore::Series*> s = staged.GetSeries(name);
    if (!s.ok()) return s.status();
    Shard& shard = rep->ShardFor(name);
    ETSQP_RETURN_IF_ERROR(shard.store.CreateSeries(name, s.value()->options));
    for (const auto& page : s.value()->pages) {
      ETSQP_RETURN_IF_ERROR(shard.store.AddPageShared(name, page));
    }
    // Carry the v2 compaction metadata (tombstones, TTL, overlap buffer,
    // append-sequence fence) across the redistribution.
    const storage::SeriesStore::Series* src = s.value();
    if (!src->tombstones.empty() || src->ttl_nanos != 0 ||
        !src->ooo_times.empty() || src->appended_points != src->total_points) {
      ETSQP_RETURN_IF_ERROR(shard.store.RestoreSeriesMeta(
          name, src->appended_points, src->ttl_nanos, src->tombstones,
          src->ooo_times, src->ooo_values, src->ooo_values_f64));
    }
  }
  return Status::Ok();
}

Status Database::Calibrate(const std::string& path) {
  Rep* rep = rep_.get();
  const int n = rep->router.num_shards();
  // Shard 0 loads-or-measures at the caller's path; the sweep is
  // machine-level, so other shards seed from it when their own per-shard
  // cache (`<path>.shard<k>`) is missing or corrupt.
  bool measured = false;
  Result<std::shared_ptr<const exec::CostCalibration>> seed =
      exec::CostCalibration::LoadOrMeasure(Shard::ArtifactPath(path, 0, n),
                                           &measured);
  if (!seed.ok()) return seed.status();
  std::unique_lock<std::shared_mutex> lock(rep->engine_mu);
  rep->shards[0]->calibration = seed.value();
  for (int k = 1; k < n; ++k) {
    const std::string own_path = Shard::ArtifactPath(path, k, n);
    Result<exec::CostCalibration> own =
        exec::CostCalibration::LoadFromFile(own_path);
    if (own.ok()) {
      rep->shards[k]->calibration =
          std::make_shared<const exec::CostCalibration>(
              std::move(own).value());
    } else {
      // Best-effort persist so the shard's next open loads directly.
      (void)seed.value()->SaveToFile(own_path);
      rep->shards[k]->calibration = seed.value();
    }
  }
  rep->RebuildEnginesLocked();
  return Status::Ok();
}

std::shared_ptr<const exec::CostCalibration> Database::calibration() const {
  return rep_->shards[0]->calibration;
}

Status Database::OpenFile(const std::string& path,
                          size_t memory_budget_bytes) {
  Rep* rep = rep_.get();
  const int n = rep->router.num_shards();
  // Open everything before attaching anything: attach is all-or-nothing.
  std::vector<std::unique_ptr<storage::FileBackedStore>> stores;
  for (int k = 0; k < n; ++k) {
    auto store = std::make_unique<storage::FileBackedStore>();
    storage::FileBackedStore::Options options;
    options.memory_budget_bytes = memory_budget_bytes;
    ETSQP_RETURN_IF_ERROR(
        store->Open(Shard::ArtifactPath(path, k, n), options));
    stores.push_back(std::move(store));
  }
  {
    // Writer lock: swapping the file stores must not race in-flight
    // queries holding raw pointers to the old ones.
    std::unique_lock<std::shared_mutex> lock(rep->engine_mu);
    for (int k = 0; k < n; ++k) {
      rep->shards[k]->file_store = std::move(stores[k]);
    }
  }
  for (int k = 0; k < n; ++k) {
    rep->TryAttachCalibration(rep->shards[k].get(),
                              Shard::CalibPath(path, k, n));
  }
  return Status::Ok();
}

void Database::CloseFile() {
  // Writer lock: in-flight queries run against the file store under the
  // reader side, so detach waits them out instead of racing them.
  std::unique_lock<std::shared_mutex> lock(rep_->engine_mu);
  for (auto& shard : rep_->shards) shard->file_store.reset();
}

const storage::FileBackedStore* Database::file_store() const {
  return rep_->shards[0]->file_store.get();
}

Status Database::ImportCsv(const std::string& series,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("open: " + path);
  char line[256];
  size_t lineno = 0;
  Status status;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    // Skip a header or blank line.
    if (lineno == 1 && !std::isdigit(static_cast<unsigned char>(line[0])) &&
        line[0] != '-') {
      continue;
    }
    if (line[0] == '\n' || line[0] == '\0') continue;
    char* comma = std::strchr(line, ',');
    if (comma == nullptr) {
      status = Status::InvalidArgument("csv: missing comma at line " +
                                       std::to_string(lineno));
      break;
    }
    errno = 0;
    char* end = nullptr;
    long long t = std::strtoll(line, &end, 10);
    long long v = std::strtoll(comma + 1, &end, 10);
    if (errno != 0) {
      status = Status::InvalidArgument("csv: bad number at line " +
                                       std::to_string(lineno));
      break;
    }
    status = Insert(series, t, v);
    if (!status.ok()) break;
  }
  std::fclose(f);
  return status;
}

Status Database::ExportCsv(const std::string& series,
                           const std::string& path) const {
  Result<exec::LogicalPlan> plan = sql::PlanQuery("SELECT * FROM " + series);
  if (!plan.ok()) return plan.status();
  Rep* rep = rep_.get();
  std::shared_lock<std::shared_mutex> lock(rep->engine_mu);
  exec::SnapshotResolver resolve =
      [rep](const std::string& name) -> Result<storage::SeriesSnapshot> {
    return rep->ShardFor(name).store.GetSnapshot(name);
  };
  Result<exec::QueryResult> result = rep->ShardFor(series).engine->Execute(
      plan.value(), exec::StoreHandle(std::move(resolve)));
  if (!result.ok()) return result.status();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  std::fprintf(f, "time,value\n");
  const exec::QueryResult& qr = result.value();
  for (size_t r = 0; r < qr.num_rows(); ++r) {
    std::fprintf(f, "%lld,%lld\n", static_cast<long long>(qr.columns[0][r]),
                 static_cast<long long>(qr.columns[1][r]));
  }
  std::fclose(f);
  return Status::Ok();
}

// --- Topology --------------------------------------------------------------

int Database::num_shards() const { return rep_->router.num_shards(); }

int Database::ShardOf(const std::string& series) const {
  return rep_->router.ShardOf(series);
}

Status Database::Reshard(int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  Rep* rep = rep_.get();
  for (auto& shard : rep->shards) {
    if (shard->store.wal() != nullptr) {
      return Status::InvalidArgument(
          "reshard with a WAL attached is not supported");
    }
    if (shard->file_store != nullptr) {
      return Status::InvalidArgument(
          "close the file store before resharding");
    }
  }
  // Seal every tail so series move as immutable pages only.
  ETSQP_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::shared_mutex> lock(rep->engine_mu);
  // Old shards (and their compactors / triggers) are about to be destroyed;
  // wait out any queued background passes that still reference them.
  if (rep->seal_group != nullptr) rep->seal_group->Wait();
  struct Moved {
    std::string name;
    storage::SeriesStore::SeriesOptions options;
    std::vector<std::shared_ptr<const storage::Page>> pages;
    uint64_t appended_points = 0;
    uint64_t total_points = 0;
    int64_t ttl_nanos = 0;
    std::vector<storage::TimeInterval> tombstones;
    std::vector<int64_t> ooo_times;
    std::vector<int64_t> ooo_values;
    std::vector<double> ooo_values_f64;
  };
  std::vector<Moved> moved;
  for (auto& shard : rep->shards) {
    for (const std::string& name : shard->store.SeriesNames()) {
      Result<const storage::SeriesStore::Series*> s =
          shard->store.GetSeries(name);
      if (!s.ok()) return s.status();
      const storage::SeriesStore::Series* src = s.value();
      moved.push_back({name, src->options, src->pages, src->appended_points,
                       src->total_points, src->ttl_nanos, src->tombstones,
                       src->ooo_times, src->ooo_values, src->ooo_values_f64});
    }
  }
  rep->router = ShardRouter(num_shards);
  rep->shards.clear();
  for (int k = 0; k < rep->router.num_shards(); ++k) {
    rep->shards.push_back(std::make_unique<Shard>(k));
  }
  for (const Moved& m : moved) {
    Shard& shard = rep->ShardFor(m.name);
    ETSQP_RETURN_IF_ERROR(shard.store.CreateSeries(m.name, m.options));
    for (const auto& page : m.pages) {
      ETSQP_RETURN_IF_ERROR(shard.store.AddPageShared(m.name, page));
    }
    if (!m.tombstones.empty() || m.ttl_nanos != 0 || !m.ooo_times.empty() ||
        m.appended_points != m.total_points) {
      ETSQP_RETURN_IF_ERROR(shard.store.RestoreSeriesMeta(
          m.name, m.appended_points, m.ttl_nanos, m.tombstones, m.ooo_times,
          m.ooo_values, m.ooo_values_f64));
    }
  }
  rep->RebuildEnginesLocked();
  // Keys embed the shard count, but stale entries would still occupy budget.
  rep->cache.Clear();
  return Status::Ok();
}

// --- Result cache ----------------------------------------------------------

ResultCache::Stats Database::cache_stats() const {
  return rep_->cache.stats();
}

void Database::SetCacheBudget(size_t budget_bytes) {
  rep_->cache.SetBudget(budget_bytes);
}

void Database::ClearCache() { rep_->cache.Clear(); }

// --- Introspection ---------------------------------------------------------

storage::SeriesStore* Database::shard_store(int shard) {
  return &rep_->shards[shard]->store;
}

const storage::SeriesStore& Database::shard_store(int shard) const {
  return rep_->shards[shard]->store;
}

const exec::Engine& Database::engine() const {
  return *rep_->shards[0]->engine;
}

}  // namespace etsqp::db
