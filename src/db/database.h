#ifndef ETSQP_DB_DATABASE_H_
#define ETSQP_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "db/result_cache.h"
#include "db/shard.h"
#include "exec/engine.h"
#include "storage/series_store.h"
#include "storage/wal.h"

namespace etsqp::db {

/// The multi-tenant serving core: a fixed set of Shards (each one
/// SeriesStore/TsFile + WAL + calibration cache), a ShardRouter that hash-
/// partitions series across them, per-tenant admission control, and an
/// epoch-keyed result cache — all in front of the ETSQP engine.
///
/// Layering:
///  - Catalog and ingest calls route to the owning shard; each shard's
///    store is internally synchronized, so ingest scales with shards.
///  - Query() parses SQL, passes tenant admission (bounded concurrency +
///    bounded queue + per-query memory estimate; over-budget queries are
///    rejected with ResourceExhausted, never silently queued forever),
///    consults the result cache, and executes through the primary shard's
///    engine. Input snapshots resolve through the router, so a binary plan
///    whose two series live on different shards still compiles into one
///    PipelineJobSet and merges through the ordinary merge stage — all
///    shards share the process-wide work-stealing executor.
///  - The result cache keys on (plan signature, per-input series epoch,
///    shard layout). Epochs advance on every append/seal/replay, so the
///    ingest tail and background sealing invalidate implicitly
///    (db/result_cache.h). Hit/miss/eviction and admission counters land in
///    ExecStats and the EXPLAIN ANALYZE profile.
///
/// Concurrency contract matches IotDbLite's: Query() from many threads is
/// safe; reconfiguration (SetMode/SetThreads/SetCollectStats/OpenFile/
/// CloseFile/Calibrate/Reshard) takes the writer side of the engine lock
/// and waits out in-flight queries. IotDbLite is this class pinned to one
/// shard with the cache off — the paths it writes are byte-compatible with
/// the pre-sharding layout.
class Database {
 public:
  enum class Mode { kScalar, kSimd };

  struct Options {
    Mode mode = Mode::kSimd;
    int threads = 1;
    int shards = 1;
    /// Result-cache byte budget; 0 disables the cache (facade default).
    size_t cache_budget_bytes = 0;
  };

  /// Per-tenant admission limits. Defaults are unlimited so untenanted use
  /// (the facade, tools) is unthrottled until someone opts in.
  struct TenantOptions {
    /// Queries of this tenant running at once; < 0 = unlimited, 0 = none
    /// (every query rejected or queued — with max_queued 0, a hard off
    /// switch).
    int max_concurrent = -1;
    /// Queries allowed to wait once concurrency is saturated; beyond this
    /// the query is rejected with ResourceExhausted.
    int max_queued = 16;
    /// Upper bound on the estimated bytes one query may touch (encoded
    /// pages + snapshot tail copy); 0 = unlimited.
    uint64_t memory_budget_bytes = 0;
  };

  struct TenantStats {
    uint64_t admitted = 0;
    uint64_t rejected_queue = 0;   // bounded queue overflow
    uint64_t rejected_memory = 0;  // per-query estimate over budget
    uint64_t wait_nanos = 0;       // total time spent queued
    int active = 0;                // gauge: running now
    int queued = 0;                // gauge: waiting now
  };

  /// Streaming-ingest configuration (WAL + background sealing); applied per
  /// shard — shard k logs to `<wal_path>.shard<k>` (plain path when there
  /// is one shard).
  struct IngestConfig {
    std::string wal_path;  // empty => no WAL (tail + sealing only)
    storage::Wal::FsyncPolicy fsync = storage::Wal::FsyncPolicy::kBatch;
    size_t wal_batch_bytes = 64 << 10;  // group-commit threshold for kBatch
    bool background_seal = false;
  };

  explicit Database(const Options& options);
  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  // --- Catalog + ingest (routed to the owning shard) ---------------------

  Status CreateTimeseries(const std::string& name, uint32_t page_size = 4096);
  Status CreateTimeseries(const std::string& name,
                          const storage::SeriesStore::SeriesOptions& options);
  Status CreateFloatTimeseries(
      const std::string& name,
      enc::ColumnEncoding encoding = enc::ColumnEncoding::kGorillaValue,
      uint32_t page_size = 4096);
  Status Insert(const std::string& name, int64_t time, int64_t value);
  Status InsertBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);
  Status InsertF64(const std::string& name, int64_t time, double value);
  Status InsertBatchF64(const std::string& name, const int64_t* times,
                        const double* values, size_t n);
  Status Flush();

  /// Background compaction configuration: per-page adaptive re-encoding
  /// options plus the auto-trigger cadence.
  struct CompactionConfig {
    storage::CompactionOptions options;
    /// Schedule a background CompactAll on a shard after this many newly
    /// installed pages there; 0 = manual Compact() only. Auto-triggered
    /// passes run on the shared work-stealing pool.
    uint32_t auto_trigger_pages = 0;
  };

  /// Builds each shard's Compactor. When the shard has a calibration cache,
  /// the CodecAdvisor's tie-break cost hook is wired from it (measured
  /// decode ns/tuple per encoding), so re-encoding choices respect what
  /// this machine actually decodes fastest.
  Status EnableCompaction(const CompactionConfig& config);
  Status EnableCompaction() { return EnableCompaction(CompactionConfig()); }
  /// One synchronous compaction pass: every shard (`shard` = -1, passes fan
  /// out in parallel on the pool) or just one. Requires EnableCompaction.
  Status Compact(int shard = -1);
  /// Marks [t0, t1] of `name` deleted (tombstone): masked at query time,
  /// physically dropped at the next compaction pass.
  Status DeleteRange(const std::string& name, int64_t t0, int64_t t1);
  /// Points older than `last_time - ttl_nanos` are masked (0 disables).
  Status SetTtl(const std::string& name, int64_t ttl_nanos);
  /// Compaction counters summed across shards; empty() when disabled.
  metrics::CompactionStats compaction_stats() const;

  Status EnableIngest(const IngestConfig& config);
  /// Flush + per-shard TsFile + WAL truncation (see IotDbLite::Checkpoint).
  Status Checkpoint(const std::string& path);
  /// Testing fault hook: Checkpoint stops right before WAL truncation.
  void TestingFailBeforeWalTruncate(bool on);
  /// Ingest/WAL/seal counters summed across shards.
  metrics::IngestStats ingest_stats() const;
  /// What the last EnableIngest recovery replayed, summed across shards.
  const storage::Wal::ReplayStats& last_recovery() const;

  // --- Queries -----------------------------------------------------------

  /// Parses and executes one SQL statement as the default tenant.
  Result<exec::QueryResult> Query(const std::string& sql) const;
  /// Same, attributed to `tenant` for admission control. Unknown tenants
  /// are created on first use with default (unlimited) TenantOptions.
  Result<exec::QueryResult> Query(const std::string& tenant,
                                  const std::string& sql) const;

  /// Fleet-scale pruning probe: how many series across all shards could
  /// hold data matching the time/value window — one SIMD sweep per shard
  /// over the pruning-index envelopes (storage/pruning_index.h), no page
  /// headers touched. Conservative: never undercounts the series a linear
  /// header scan would keep. `matched` (optional) collects their names.
  storage::PruneProbeStats CountMatchingSeries(
      const storage::PruneProbe& probe,
      std::vector<std::string>* matched = nullptr) const;

  // --- Tenants -----------------------------------------------------------

  void ConfigureTenant(const std::string& name, const TenantOptions& options);
  std::map<std::string, TenantStats> tenant_stats() const;

  // --- Engine reconfiguration -------------------------------------------

  void SetMode(Mode mode);
  void SetThreads(int threads);
  void SetCollectStats(bool on);
  Mode mode() const;
  int threads() const;
  bool collect_stats() const;

  // --- Persistence -------------------------------------------------------

  /// Per-shard TsFiles at `<path>.shard<k>` (plain `path` for one shard).
  Status Save(const std::string& path) const;
  /// Loads per-shard TsFiles; a multi-shard database falls back to reading
  /// a single combined `path` and redistributing its series through the
  /// router (pages are shared, not copied). Auto-attaches each shard's
  /// calibration cache when present and intact.
  Status Load(const std::string& path);
  /// Per-shard calibration at `<path>.shard<k>.calib` (`<path>.calib` for
  /// one shard): shard 0 loads-or-measures; other shards load their own
  /// cache, seeded from shard 0's sweep when missing or corrupt.
  Status Calibrate(const std::string& path);
  /// Shard 0's calibration (the facade's view); null = static model.
  std::shared_ptr<const exec::CostCalibration> calibration() const;

  /// Attaches per-shard TsFiles through the LRU buffer pool; queries on a
  /// series route to its shard's file store. Aggregations only.
  Status OpenFile(const std::string& path,
                  size_t memory_budget_bytes = 64 << 20);
  void CloseFile();
  const storage::FileBackedStore* file_store() const;  // shard 0's

  Status ImportCsv(const std::string& series, const std::string& path);
  Status ExportCsv(const std::string& series, const std::string& path) const;

  // --- Topology ----------------------------------------------------------

  int num_shards() const;
  int ShardOf(const std::string& series) const;
  /// Rebuilds the database with `num_shards` shards, redistributing every
  /// series (pages shared, tails flushed first). Requires no WAL and no
  /// file store attached; clears the result cache.
  Status Reshard(int num_shards);

  // --- Result cache ------------------------------------------------------

  ResultCache::Stats cache_stats() const;
  void SetCacheBudget(size_t budget_bytes);
  void ClearCache();

  // --- Introspection (facade + tests) ------------------------------------

  storage::SeriesStore* shard_store(int shard);
  const storage::SeriesStore& shard_store(int shard) const;
  /// Shard 0's engine (the facade's `engine()` view).
  const exec::Engine& engine() const;

 private:
  struct Rep;
  std::unique_ptr<Rep> rep_;
};

/// A tenant-bound query handle: the CLI keeps one per `.tenant` selection;
/// servers would hold one per connection. Sessions are cheap views — the
/// Database must outlive them.
class Session {
 public:
  Session(Database* db, std::string tenant)
      : db_(db), tenant_(std::move(tenant)) {}

  Result<exec::QueryResult> Query(const std::string& sql) const {
    return db_->Query(tenant_, sql);
  }

  const std::string& tenant() const { return tenant_; }

 private:
  Database* db_;
  std::string tenant_;
};

}  // namespace etsqp::db

#endif  // ETSQP_DB_DATABASE_H_
