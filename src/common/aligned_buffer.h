#ifndef ETSQP_COMMON_ALIGNED_BUFFER_H_
#define ETSQP_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

namespace etsqp {

/// Heap buffer aligned to a cache line (64 bytes) with trailing slack so SIMD
/// loads that read a full vector starting at any in-bounds byte never fault.
/// Decoders load 32-byte vectors whose window may extend past the last
/// meaningful byte; `kSlackBytes` of zero padding makes that safe.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;
  static constexpr size_t kSlackBytes = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t size) { Resize(size); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept { MoveFrom(&other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      MoveFrom(&other);
    }
    return *this;
  }
  ~AlignedBuffer() { Free(); }

  /// Reallocates to `size` logical bytes (plus slack). Contents are not
  /// preserved; the whole allocation (including slack) is zeroed.
  void Resize(size_t size);

  /// Copies `size` bytes from `src` into a fresh allocation.
  void Assign(const uint8_t* src, size_t size);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Free();
  void MoveFrom(AlignedBuffer* other) {
    data_ = other->data_;
    size_ = other->size_;
    other->data_ = nullptr;
    other->size_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace etsqp

#endif  // ETSQP_COMMON_ALIGNED_BUFFER_H_
