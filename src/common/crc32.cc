#include "common/crc32.h"

namespace etsqp {

namespace {

/// 256-entry table for the reflected CRC-32C polynomial, built once.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed) {
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace etsqp
