#ifndef ETSQP_COMMON_BIT_UTIL_H_
#define ETSQP_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace etsqp {

/// Number of bits needed to represent `v` (0 maps to 0 bits).
inline int BitWidth(uint64_t v) { return v == 0 ? 0 : 64 - std::countl_zero(v); }
inline int BitWidth32(uint32_t v) {
  return v == 0 ? 0 : 32 - std::countl_zero(v);
}

/// Low-`bits` mask. `bits` must be in [0, 64].
inline uint64_t MaskLow64(int bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}
inline uint32_t MaskLow32(int bits) {
  return bits >= 32 ? ~0u : ((1u << bits) - 1);
}

/// ZigZag maps signed integers to unsigned so small-magnitude values (positive
/// or negative) get small codes: 0,-1,1,-2,2 -> 0,1,2,3,4. Used by Sprintz
/// packing (paper Table I).
inline uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}
inline int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Rounds `n` up to the next multiple of `m` (m > 0).
inline size_t RoundUp(size_t n, size_t m) { return (n + m - 1) / m * m; }
inline size_t CeilDiv(size_t n, size_t m) { return (n + m - 1) / m; }

/// Checked signed arithmetic used by the aggregation overflow checks
/// (paper Section VI-C "Behavior on failures"). Returns true on overflow.
inline bool AddOverflow64(int64_t a, int64_t b, int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
inline bool MulOverflow64(int64_t a, int64_t b, int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}
inline bool AddOverflow32(int32_t a, int32_t b, int32_t* out) {
  return __builtin_add_overflow(a, b, out);
}

}  // namespace etsqp

#endif  // ETSQP_COMMON_BIT_UTIL_H_
