#include "common/metrics.h"

namespace etsqp::metrics {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kPageFetch:
      return "page_fetch";
    case Stage::kUnpack:
      return "unpack";
    case Stage::kDelta:
      return "delta";
    case Stage::kFilter:
      return "filter";
    case Stage::kAggregate:
      return "aggregate";
    case Stage::kMerge:
      return "merge";
  }
  return "?";
}

}  // namespace etsqp::metrics
