#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace etsqp {

void AlignedBuffer::Resize(size_t size) {
  Free();
  size_ = size;
  size_t alloc = size + kSlackBytes;
  alloc = (alloc + kAlignment - 1) / kAlignment * kAlignment;
  data_ = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, alloc));
  if (data_ == nullptr) throw std::bad_alloc();
  std::memset(data_, 0, alloc);
}

void AlignedBuffer::Assign(const uint8_t* src, size_t size) {
  Resize(size);
  std::memcpy(data_, src, size);
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace etsqp
