#ifndef ETSQP_COMMON_CRC32_H_
#define ETSQP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace etsqp {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) over `data`.
/// `seed` chains incremental computations: Crc32c(b, nb, Crc32c(a, na))
/// equals the CRC of a||b. Used by the WAL record framing to detect torn
/// and bit-flipped records at recovery.
uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed = 0);

/// `crc` xor a fixed mask, so a WAL record whose payload happens to contain
/// its own CRC (e.g. a copied record) still mismatches. The mask operation
/// is an involution: Unmask(Mask(c)) == c.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace etsqp

#endif  // ETSQP_COMMON_CRC32_H_
