#ifndef ETSQP_COMMON_CPU_H_
#define ETSQP_COMMON_CPU_H_

namespace etsqp {

/// Runtime CPU feature detection. Kernels in src/simd dispatch between the
/// AVX2 path and a portable scalar fallback based on these (and on the
/// process-wide override below, which tests and the ablation benches use to
/// force the scalar path).
bool CpuHasAvx2();

/// When set, SIMD dispatchers behave as if AVX2 were absent. Not thread-safe
/// with concurrent queries; intended for test setup and benchmarks.
void SetSimdDisabledForTesting(bool disabled);
bool SimdDisabledForTesting();

/// True when the AVX2 path will actually be used.
inline bool UseAvx2() { return CpuHasAvx2() && !SimdDisabledForTesting(); }

}  // namespace etsqp

#endif  // ETSQP_COMMON_CPU_H_
