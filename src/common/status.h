#ifndef ETSQP_COMMON_STATUS_H_
#define ETSQP_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace etsqp {

/// Error category for operations in the ETSQP library. Modeled after the
/// Status idiom used by embedded database engines: fallible operations return
/// a `Status` (or a `Result<T>`) instead of throwing, so hot decode paths can
/// stay exception-free.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kCorruption,       // malformed encoded bytes
  kOutOfRange,       // position past end of sequence
  kOverflow,         // aggregation overflow (paper Section VI-C)
  kNotSupported,
  kNotFound,
  kIoError,
  kInternal,
  kResourceExhausted,  // admission control: tenant queue/memory budget hit
  kFailedPrecondition,  // operation needs state the caller does not hold
  kAborted,             // optimistic operation lost its race; retryable
};

/// Returns a stable human-readable name for `code` ("Ok", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message. The OK
/// status carries no allocation and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Overflow(std::string msg) {
    return Status(StatusCode::kOverflow, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define ETSQP_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::etsqp::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace etsqp

#endif  // ETSQP_COMMON_STATUS_H_
