#include "common/bitstream.h"

namespace etsqp {

void PutFixed64BE(std::vector<uint8_t>* dst, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t GetFixed64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void PutFixed32BE(std::vector<uint8_t>* dst, uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetFixed32BE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace etsqp
