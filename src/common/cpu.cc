#include "common/cpu.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace etsqp {

namespace {

bool DetectAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;  // CPUID.(EAX=07H,ECX=0H):EBX.AVX2[bit 5]
#else
  return false;
#endif
}

std::atomic<bool> g_simd_disabled{false};

}  // namespace

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

void SetSimdDisabledForTesting(bool disabled) {
  g_simd_disabled.store(disabled, std::memory_order_relaxed);
}

bool SimdDisabledForTesting() {
  return g_simd_disabled.load(std::memory_order_relaxed);
}

}  // namespace etsqp
