#ifndef ETSQP_COMMON_BITSTREAM_H_
#define ETSQP_COMMON_BITSTREAM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/bit_util.h"

namespace etsqp {

/// Big-Endian bit writer. IoT encoders flush encoded blocks in Big-Endian
/// (paper Figure 1(b)): the most significant bit of each written field comes
/// first in the byte stream. The writer appends to an internal byte buffer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `bits` bits of `value`, MSB first. `bits` in [0, 64].
  void WriteBits(uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      WriteBit((value >> i) & 1);
    }
  }

  void WriteBit(uint32_t bit) {
    if (bit_pos_ == 0) buffer_.push_back(0);
    if (bit) buffer_.back() |= static_cast<uint8_t>(0x80u >> bit_pos_);
    bit_pos_ = (bit_pos_ + 1) & 7;
  }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() { bit_pos_ = 0; }

  /// Total bits written so far.
  size_t bit_count() const {
    return bit_pos_ == 0 ? buffer_.size() * 8
                         : (buffer_.size() - 1) * 8 + bit_pos_;
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() {
    bit_pos_ = 0;
    return std::move(buffer_);
  }

 private:
  std::vector<uint8_t> buffer_;
  int bit_pos_ = 0;  // next free bit within buffer_.back(), 0 == byte aligned
};

/// Big-Endian bit reader over an external byte span. Reads never touch bytes
/// past `size`; over-reads are reported by `exhausted()`.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Reads `bits` bits MSB-first. Returns 0 and sets exhausted on over-read.
  uint64_t ReadBits(int bits) {
    uint64_t v = 0;
    for (int i = 0; i < bits; ++i) {
      v = (v << 1) | ReadBit();
    }
    return v;
  }

  uint32_t ReadBit() {
    size_t byte = bit_pos_ >> 3;
    if (byte >= size_) {
      exhausted_ = true;
      return 0;
    }
    uint32_t b = (data_[byte] >> (7 - (bit_pos_ & 7))) & 1;
    ++bit_pos_;
    return b;
  }

  /// Skips forward to the next byte boundary.
  void AlignToByte() { bit_pos_ = RoundUp(bit_pos_, 8); }

  void SeekBits(size_t bit_pos) {
    bit_pos_ = bit_pos;
    exhausted_ = bit_pos_ > size_ * 8;
  }

  size_t bit_pos() const { return bit_pos_; }
  size_t remaining_bits() const {
    return bit_pos_ >= size_ * 8 ? 0 : size_ * 8 - bit_pos_;
  }
  bool exhausted() const { return exhausted_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t bit_pos_ = 0;
  bool exhausted_ = false;
};

/// Writes `v` as 8 Big-Endian bytes / reads them back. Page headers use these
/// for fixed-width fields.
void PutFixed64BE(std::vector<uint8_t>* dst, uint64_t v);
uint64_t GetFixed64BE(const uint8_t* p);
void PutFixed32BE(std::vector<uint8_t>* dst, uint32_t v);
uint32_t GetFixed32BE(const uint8_t* p);

}  // namespace etsqp

#endif  // ETSQP_COMMON_BITSTREAM_H_
