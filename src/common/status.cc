#include "common/status.h"

namespace etsqp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kOverflow:
      return "Overflow";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace etsqp
