#ifndef ETSQP_COMMON_METRICS_H_
#define ETSQP_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>

namespace etsqp::metrics {

/// Execution stages of the decoding/aggregation pipeline (paper Figure 2):
/// the cost-model terms of Proposition 1 plus the scheduler-level fetch and
/// merge work around them. Stage attribution follows where the cycles are
/// actually spent, so fused kernels (Algorithm 1: bit-unpack + Delta
/// recovery in one register pass) report under kUnpack and the separate
/// Delta/Repeat flatten passes of the non-fused paths report under kDelta —
/// making the fusion effect directly visible in EXPLAIN ANALYZE.
enum class Stage : uint8_t {
  kPageFetch = 0,  // file/pool payload loads (Section VI-C gradual loading)
  kUnpack,         // bit-unpacking incl. fused unpack+delta kernels
  kDelta,          // separate delta accumulation / RLE flatten passes
  kFilter,         // time-range positioning + value-range mask building
  kAggregate,      // accumulator updates, fused closed-form aggregation
  kMerge,          // partial-result merging and result emission
};

inline constexpr int kNumStages = 6;

/// Stable display name ("page_fetch", "unpack", ...).
const char* StageName(Stage s);

/// Counters of one pipeline stage. Timings are monotonic-clock nanoseconds;
/// tuples/bytes count what the stage actually touched.
struct StageStats {
  uint64_t nanos = 0;
  uint64_t calls = 0;
  uint64_t tuples = 0;
  uint64_t bytes = 0;

  void Merge(const StageStats& o) {
    nanos += o.nanos;
    calls += o.calls;
    tuples += o.tuples;
    bytes += o.bytes;
  }
  bool empty() const {
    return nanos == 0 && calls == 0 && tuples == 0 && bytes == 0;
  }
};

/// Per-stage breakdown recorded by one pipeline job. Jobs record into a
/// job-local breakdown with no synchronization; the engine merges the locals
/// once per job at completion (under the existing result merge), so the hot
/// path never takes a lock for metrics.
struct StageBreakdown {
  StageStats stages[kNumStages] = {};

  StageStats& operator[](Stage s) { return stages[static_cast<int>(s)]; }
  const StageStats& operator[](Stage s) const {
    return stages[static_cast<int>(s)];
  }
  void Merge(const StageBreakdown& o) {
    for (int i = 0; i < kNumStages; ++i) stages[i].Merge(o.stages[i]);
  }
  uint64_t TotalNanos() const {
    uint64_t total = 0;
    for (const StageStats& s : stages) total += s.nanos;
    return total;
  }
  bool empty() const {
    for (const StageStats& s : stages) {
      if (!s.empty()) return false;
    }
    return true;
  }
};

/// Monotonic timestamp in nanoseconds (steady clock).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped stage timer. A null breakdown makes every member a no-op with no
/// clock read, so instrumented code compiles to a couple of predictable
/// branches when stats collection is off (PipelineOptions.collect_stats).
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageBreakdown* breakdown, Stage stage)
      : breakdown_(breakdown),
        stage_(stage),
        start_(breakdown != nullptr ? NowNanos() : 0) {}
  ~ScopedStageTimer() { Stop(); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  /// Ends the timed section early (destructor is then a no-op).
  void Stop() {
    if (breakdown_ == nullptr) return;
    StageStats& s = (*breakdown_)[stage_];
    s.nanos += NowNanos() - start_;
    ++s.calls;
    breakdown_ = nullptr;
  }

  void AddTuples(uint64_t n) {
    if (breakdown_ != nullptr) (*breakdown_)[stage_].tuples += n;
  }
  void AddBytes(uint64_t n) {
    if (breakdown_ != nullptr) (*breakdown_)[stage_].bytes += n;
  }

 private:
  StageBreakdown* breakdown_;
  Stage stage_;
  uint64_t start_;
};

}  // namespace etsqp::metrics

#endif  // ETSQP_COMMON_METRICS_H_
