#ifndef ETSQP_COMMON_METRICS_H_
#define ETSQP_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>

namespace etsqp::metrics {

/// Execution stages of the decoding/aggregation pipeline (paper Figure 2):
/// the cost-model terms of Proposition 1 plus the scheduler-level fetch and
/// merge work around them. Stage attribution follows where the cycles are
/// actually spent, so fused kernels (Algorithm 1: bit-unpack + Delta
/// recovery in one register pass) report under kUnpack and the separate
/// Delta/Repeat flatten passes of the non-fused paths report under kDelta —
/// making the fusion effect directly visible in EXPLAIN ANALYZE.
enum class Stage : uint8_t {
  kPageFetch = 0,  // file/pool payload loads (Section VI-C gradual loading)
  kUnpack,         // bit-unpacking incl. fused unpack+delta kernels
  kDelta,          // separate delta accumulation / RLE flatten passes
  kFilter,         // time-range positioning + value-range mask building
  kAggregate,      // accumulator updates, fused closed-form aggregation
  kMerge,          // partial-result merging and result emission
};

inline constexpr int kNumStages = 6;

/// Stable display name ("page_fetch", "unpack", ...).
const char* StageName(Stage s);

/// Counters of one pipeline stage. Timings are monotonic-clock nanoseconds;
/// tuples/bytes count what the stage actually touched.
struct StageStats {
  uint64_t nanos = 0;
  uint64_t calls = 0;
  uint64_t tuples = 0;
  uint64_t bytes = 0;

  void Merge(const StageStats& o) {
    nanos += o.nanos;
    calls += o.calls;
    tuples += o.tuples;
    bytes += o.bytes;
  }
  bool empty() const {
    return nanos == 0 && calls == 0 && tuples == 0 && bytes == 0;
  }
};

/// Per-stage breakdown recorded by one pipeline job. Jobs record into a
/// job-local breakdown with no synchronization; the engine merges the locals
/// once per job at completion (under the existing result merge), so the hot
/// path never takes a lock for metrics.
struct StageBreakdown {
  StageStats stages[kNumStages] = {};

  StageStats& operator[](Stage s) { return stages[static_cast<int>(s)]; }
  const StageStats& operator[](Stage s) const {
    return stages[static_cast<int>(s)];
  }
  void Merge(const StageBreakdown& o) {
    for (int i = 0; i < kNumStages; ++i) stages[i].Merge(o.stages[i]);
  }
  uint64_t TotalNanos() const {
    uint64_t total = 0;
    for (const StageStats& s : stages) total += s.nanos;
    return total;
  }
  bool empty() const {
    for (const StageStats& s : stages) {
      if (!s.empty()) return false;
    }
    return true;
  }
};

/// Executor-pool counters (exec::ThreadPool). `tasks` counts tasks run to
/// completion; `steals` tasks acquired from a deque other than the runner's
/// own (worker steals and helping TaskGroup waiters alike); `parks` worker
/// sleeps and `park_nanos` the total slept time. On the pool these are
/// cumulative since construction; in ExecStats they hold the pool-wide
/// delta observed during the query window — under concurrent queries the
/// delta includes sibling queries' activity (the pool is shared; that is
/// the point).
struct PoolStats {
  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t parks = 0;
  uint64_t park_nanos = 0;

  void Merge(const PoolStats& o) {
    tasks += o.tasks;
    steals += o.steals;
    parks += o.parks;
    park_nanos += o.park_nanos;
  }
  bool empty() const {
    return tasks == 0 && steals == 0 && parks == 0 && park_nanos == 0;
  }
};

/// The delta of two cumulative pool snapshots (after - before), saturating
/// at zero if the pool was shut down and restarted in between.
inline PoolStats PoolStatsDelta(const PoolStats& before,
                                const PoolStats& after) {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  PoolStats d;
  d.tasks = sub(after.tasks, before.tasks);
  d.steals = sub(after.steals, before.steals);
  d.parks = sub(after.parks, before.parks);
  d.park_nanos = sub(after.park_nanos, before.park_nanos);
  return d;
}

/// Streaming-ingest counters (storage::SeriesStore + its WAL): the write
/// side of the observability story. Cumulative since store construction;
/// `tail_points` is a gauge (currently buffered, not yet sealed points).
/// Surfaced by the CLI `.ingest` command and docs/OBSERVABILITY.md.
struct IngestStats {
  uint64_t points_appended = 0;   // acknowledged points (excl. replay)
  uint64_t append_batches = 0;    // Append*/AppendBatch* calls accepted
  uint64_t rejected_batches = 0;  // out-of-order / duplicate-timestamp
  uint64_t pages_sealed = 0;      // pages built from the ingest buffer
  uint64_t background_seals = 0;  // subset sealed on the thread pool
  uint64_t seal_nanos = 0;        // wall time inside page encoding
  uint64_t tail_points = 0;       // gauge: buffered + pending-seal points
  uint64_t ooo_points = 0;        // late points accepted into overlap buffers
  uint64_t ooo_pending = 0;       // gauge: buffered, not yet reconciled
  uint64_t delete_ranges = 0;     // tombstones recorded (DeleteRange calls)
  uint64_t wal_records = 0;       // WAL appends since WAL open
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_sync_nanos = 0;
  uint64_t recovered_records = 0;  // replayed at the last Recover
  uint64_t recovered_points = 0;
  uint64_t dropped_wal_records = 0;  // torn/corrupt tail records dropped
};

/// Background-compaction counters (storage::Compactor), cumulative across
/// passes. `bytes_in`/`bytes_out` are the encoded payload bytes of the pages
/// a rewrite consumed/produced — the storage-size win of a pass is
/// 1 - bytes_out/bytes_in. Surfaced by the CLI `.stats` and in the EXPLAIN
/// ANALYZE serving-layer profile.
struct CompactionStats {
  uint64_t runs = 0;              // compaction passes completed
  uint64_t series_compacted = 0;  // series whose page list was rewritten
  uint64_t pages_in = 0;          // sealed pages consumed by rewrites
  uint64_t pages_out = 0;         // pages produced (merge => out < in)
  uint64_t pages_reencoded = 0;   // outputs whose value codec changed
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t deleted_points_dropped = 0;  // tombstone/TTL points removed
  uint64_t tombstones_resolved = 0;     // ranges physically applied
  uint64_t ooo_points_merged = 0;       // overlap-buffer points reconciled
  uint64_t installs_aborted = 0;        // lost the install race, work dropped
  uint64_t nanos = 0;                   // wall time inside compaction passes

  void Merge(const CompactionStats& o) {
    runs += o.runs;
    series_compacted += o.series_compacted;
    pages_in += o.pages_in;
    pages_out += o.pages_out;
    pages_reencoded += o.pages_reencoded;
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    deleted_points_dropped += o.deleted_points_dropped;
    tombstones_resolved += o.tombstones_resolved;
    ooo_points_merged += o.ooo_points_merged;
    installs_aborted += o.installs_aborted;
    nanos += o.nanos;
  }
  bool empty() const { return runs == 0 && installs_aborted == 0; }
};

/// Monotonic timestamp in nanoseconds (steady clock).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped stage timer. A null breakdown makes every member a no-op with no
/// clock read, so instrumented code compiles to a couple of predictable
/// branches when stats collection is off (PipelineOptions.collect_stats).
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageBreakdown* breakdown, Stage stage)
      : breakdown_(breakdown),
        stage_(stage),
        start_(breakdown != nullptr ? NowNanos() : 0) {}
  ~ScopedStageTimer() { Stop(); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  /// Ends the timed section early (destructor is then a no-op).
  void Stop() {
    if (breakdown_ == nullptr) return;
    StageStats& s = (*breakdown_)[stage_];
    s.nanos += NowNanos() - start_;
    ++s.calls;
    breakdown_ = nullptr;
  }

  void AddTuples(uint64_t n) {
    if (breakdown_ != nullptr) (*breakdown_)[stage_].tuples += n;
  }
  void AddBytes(uint64_t n) {
    if (breakdown_ != nullptr) (*breakdown_)[stage_].bytes += n;
  }

 private:
  StageBreakdown* breakdown_;
  Stage stage_;
  uint64_t start_;
};

}  // namespace etsqp::metrics

#endif  // ETSQP_COMMON_METRICS_H_
