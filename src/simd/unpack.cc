#include "simd/unpack.h"

#include <immintrin.h>

#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "simd/transposed_unpack_avx512.h"
#include "simd/unpack_plan.h"

namespace etsqp::simd {

void UnpackBE32Scalar(const uint8_t* data, size_t data_size, size_t n,
                      int width, uint32_t* out) {
  enc::UnpackBE32(data, data_size, 0, n, width, out);
}

namespace {

/// One fast-path iteration: 8 values from `width` bytes at `src`.
inline __m256i UnpackIterFast(const uint8_t* src, const UnpackPlan& plan) {
  __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
  __m128i hi = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(src + plan.hi_offset));
  __m256i v = _mm256_set_m128i(hi, lo);
  __m256i shuf = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(plan.shuffle));
  __m256i shift = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(plan.shift));
  v = _mm256_shuffle_epi8(v, shuf);
  v = _mm256_srlv_epi32(v, shift);
  return _mm256_and_si256(v, _mm256_set1_epi32(plan.mask));
}

/// One wide-path iteration (width 26..32): two 4-value 64-bit-lane steps.
inline __m256i UnpackIterWide(const uint8_t* src, const UnpackPlan& plan) {
  __m256i halves[2];
  for (int s = 0; s < 2; ++s) {
    const UnpackPlan::WideStep& step = plan.steps[s];
    __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + step.lo_offset));
    __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + step.hi_offset));
    __m256i v = _mm256_set_m128i(hi, lo);
    __m256i shuf = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(step.shuffle));
    __m256i shift = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(step.shift));
    v = _mm256_shuffle_epi8(v, shuf);
    v = _mm256_srlv_epi64(v, shift);
    v = _mm256_and_si256(v, _mm256_set1_epi64x(
                                static_cast<long long>(plan.mask64)));
    halves[s] = v;
  }
  // Compact 2 x (4 x 64-bit) -> 8 x 32-bit. Low 32 bits of each 64-bit lane
  // hold the value (width <= 32).
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  __m256i a = _mm256_permutevar8x32_epi32(halves[0], pick);  // values in low half
  __m256i b = _mm256_permutevar8x32_epi32(halves[1], pick);
  return _mm256_permute2x128_si256(a, b, 0x20);
}

}  // namespace

void UnpackBE32Avx2(const uint8_t* data, size_t data_size, size_t n,
                    int width, uint32_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const UnpackPlan& plan = GetUnpackPlan(width);
  size_t iters = n / 8;
  const uint8_t* src = data;
  if (plan.wide) {
    for (size_t k = 0; k < iters; ++k) {
      __m256i v = UnpackIterWide(src, plan);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k * 8), v);
      src += plan.bytes_per_iter;
    }
  } else {
    for (size_t k = 0; k < iters; ++k) {
      __m256i v = UnpackIterFast(src, plan);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k * 8), v);
      src += plan.bytes_per_iter;
    }
  }
  size_t done = iters * 8;
  if (done < n) {
    enc::UnpackBE32(data, data_size, done * static_cast<size_t>(width),
                    n - done, width, out + done);
  }
}

void UnpackBE32(const uint8_t* data, size_t data_size, size_t n, int width,
                uint32_t* out) {
  // The AVX2 path wins over the vpermb-based 512-bit unpack on this
  // microarchitecture (two cheap in-lane shuffles beat one cross-lane
  // permute per 8/16 values — see bench_kernels BM_UnpackAvx2 vs
  // BM_UnpackAvx512), so natural-order unpacking stays on AVX2. The
  // transposed Delta decode is where 512-bit registers pay off.
  if (UseAvx2()) {
    UnpackBE32Avx2(data, data_size, n, width, out);
  } else {
    UnpackBE32Scalar(data, data_size, n, width, out);
  }
}

}  // namespace etsqp::simd
