#include "simd/transposed_unpack_avx512.h"

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>
#include <vector>

#include "common/bit_util.h"
#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "simd/transposed_unpack.h"

#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace etsqp::simd {

namespace {

#if defined(__x86_64__)
bool DetectAvx512() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  bool f = (ebx & (1u << 16)) != 0;     // AVX512F
  bool bw = (ebx & (1u << 30)) != 0;    // AVX512BW
  bool vbmi = (ecx & (1u << 1)) != 0;   // AVX512VBMI
  return f && bw && vbmi;
}
#else
bool DetectAvx512() { return false; }
#endif

/// 512-bit decode plan: value c of a chunk of n_v*16 lands in vector
/// j = c % n_v, lane l = c / n_v. Each 64-byte segment feeds lanes via one
/// masked vpermb per output vector.
struct Plan512 {
  int width = 0;
  int n_v = 0;
  int values_per_chunk = 0;  // n_v * 16
  int bytes_per_chunk = 0;   // n_v * 2 * width
  struct Segment {
    int byte_offset = 0;
  };
  std::vector<Segment> segments;
  /// permute[s * n_v + j]: 64-byte vpermb index; mask64[s * n_v + j]: byte
  /// validity mask (zeroed lanes where the segment feeds nothing).
  std::vector<std::array<uint8_t, 64>> permutes;
  std::vector<uint64_t> byte_masks;
  std::vector<std::array<uint32_t, 16>> shifts;  // per output vector
  uint32_t mask = 0;
};

Plan512 BuildPlan512(int width, int n_v) {
  Plan512 plan;
  plan.width = width;
  plan.n_v = n_v;
  plan.values_per_chunk = n_v * 16;
  plan.bytes_per_chunk = n_v * 2 * width;
  plan.mask = MaskLow32(width);
  plan.shifts.assign(n_v, {});

  struct Slot {
    int segment;
    int local_bit;
  };
  std::vector<Slot> slots(plan.values_per_chunk);
  size_t pos_bits = 0;
  int c = 0;
  while (c < plan.values_per_chunk) {
    int byte_off = static_cast<int>(pos_bits / 8);
    int phase = static_cast<int>(pos_bits - 8 * static_cast<size_t>(byte_off));
    int fit = (512 - phase) / width;
    assert(fit > 0);
    int seg = static_cast<int>(plan.segments.size());
    plan.segments.push_back(Plan512::Segment{byte_off});
    for (int t = 0; t < fit && c < plan.values_per_chunk; ++t, ++c) {
      slots[c] = Slot{seg, phase + t * width};
      pos_bits += width;
    }
  }

  plan.permutes.assign(plan.segments.size() * n_v, {});
  plan.byte_masks.assign(plan.segments.size() * n_v, 0);
  for (auto& p : plan.permutes) p.fill(0);

  for (c = 0; c < plan.values_per_chunk; ++c) {
    int j = c % n_v;
    int lane = c / n_v;
    const Slot& slot = slots[c];
    int end_byte = (slot.local_bit + width - 1) / 8;
    int w = end_byte >= 3 ? end_byte - 3 : 0;
    assert(w + 3 <= 63);
    auto& perm = plan.permutes[slot.segment * n_v + j];
    uint64_t& bmask = plan.byte_masks[slot.segment * n_v + j];
    for (int i = 0; i < 4; ++i) {
      perm[4 * lane + i] = static_cast<uint8_t>(w + 3 - i);
      bmask |= 1ull << (4 * lane + i);
    }
    plan.shifts[j][lane] =
        static_cast<uint32_t>(32 - (slot.local_bit - 8 * w) - width);
  }
  return plan;
}

const Plan512& GetPlan512(int width, int n_v) {
  static std::mutex mu;
  static Plan512* cache[26][17] = {};
  std::lock_guard<std::mutex> lock(mu);
  Plan512*& slot = cache[width][n_v];
  if (slot == nullptr) slot = new Plan512(BuildPlan512(width, n_v));
  return *slot;
}

/// Shifts 32-bit lanes towards higher indices by K, zero fill.
template <int K>
inline __m512i ShiftUp512(__m512i x) {
  alignas(64) int32_t idx[16];
  for (int i = 0; i < 16; ++i) idx[i] = i >= K ? i - K : 0;
  __m512i perm = _mm512_load_si512(idx);
  __mmask16 keep = static_cast<__mmask16>(~((1u << K) - 1));
  return _mm512_maskz_permutexvar_epi32(keep, perm, x);
}

template <int NV, bool kNaturalOrder>
void Chunks512(const Plan512& plan, const uint8_t* data, size_t chunks,
               int32_t min_delta, int32_t init, int32_t* out,
               int32_t* base_out) {
  const __m512i vmask = _mm512_set1_epi32(static_cast<int>(plan.mask));
  const __m512i vmind = _mm512_set1_epi32(min_delta);
  const __m512i lane15 = _mm512_set1_epi32(15);
  __m512i base_vec = _mm512_set1_epi32(init);
  alignas(64) int32_t tmp[NV * 16];
  const uint8_t* src = data;
  const size_t num_segments = plan.segments.size();
  const size_t chunk_values = static_cast<size_t>(NV) * 16;

  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    __m512i v[NV];
    for (int j = 0; j < NV; ++j) v[j] = _mm512_setzero_si512();
    for (size_t s = 0; s < num_segments; ++s) {
      __m512i seg = _mm512_loadu_si512(src + plan.segments[s].byte_offset);
      const auto* perms = &plan.permutes[s * NV];
      const uint64_t* bmask = &plan.byte_masks[s * NV];
      for (int j = 0; j < NV; ++j) {
        if (bmask[j] == 0) continue;
        __m512i idx = _mm512_loadu_si512(perms[j].data());
        v[j] = _mm512_or_si512(
            v[j], _mm512_maskz_permutexvar_epi8(
                      static_cast<__mmask64>(bmask[j]), idx, seg));
      }
    }
    for (int j = 0; j < NV; ++j) {
      __m512i shift = _mm512_loadu_si512(plan.shifts[j].data());
      v[j] = _mm512_and_si512(_mm512_srlv_epi32(v[j], shift), vmask);
      v[j] = _mm512_add_epi32(v[j], vmind);
    }
    for (int j = 1; j < NV; ++j) v[j] = _mm512_add_epi32(v[j], v[j - 1]);

    // Prefix across 16 lanes: ceil(log2 16) = 4 permute+add rounds.
    __m512i totals = v[NV - 1];
    __m512i e = ShiftUp512<1>(totals);
    e = _mm512_add_epi32(e, ShiftUp512<1>(e));
    e = _mm512_add_epi32(e, ShiftUp512<2>(e));
    e = _mm512_add_epi32(e, ShiftUp512<4>(e));
    e = _mm512_add_epi32(e, ShiftUp512<8>(e));
    __m512i incl = _mm512_add_epi32(e, totals);
    __m512i prefix = _mm512_add_epi32(e, base_vec);

    int32_t* dst = out + chunk * chunk_values;
    if constexpr (kNaturalOrder) {
      for (int j = 0; j < NV; ++j) {
        v[j] = _mm512_add_epi32(v[j], prefix);
        _mm512_store_si512(tmp + j * 16, v[j]);
      }
      for (int g = 0; g < 16; ++g) {
        for (int j = 0; j < NV; ++j) dst[g * NV + j] = tmp[j * 16 + g];
      }
    } else {
      for (int j = 0; j < NV; ++j) {
        v[j] = _mm512_add_epi32(v[j], prefix);
        _mm512_storeu_si512(dst + j * 16, v[j]);
      }
    }
    base_vec = _mm512_add_epi32(base_vec,
                                _mm512_permutexvar_epi32(lane15, incl));
    src += plan.bytes_per_chunk;
  }
  *base_out = _mm_cvtsi128_si32(_mm512_castsi512_si128(base_vec));
}

template <bool kNaturalOrder>
void DecodeImpl512(const uint8_t* data, size_t data_size, size_t n, int width,
                   int32_t min_delta, int n_v, int32_t init, int32_t* out) {
  if (width == 0 || width > 25) {
    DeltaDecodeOffsetsScalar(data, data_size, n, width, min_delta, init, out);
    return;
  }
  if (n_v <= 0) n_v = DefaultNumVectors(width);
  n_v = std::clamp(n_v, 1, 16);
  const Plan512& plan = GetPlan512(width, n_v);
  const size_t chunk_values = static_cast<size_t>(plan.values_per_chunk);
  const size_t chunks = n / chunk_values;

  int32_t base = init;
  switch (n_v) {
#define ETSQP_NV512_CASE(NV)                                              \
  case NV:                                                                \
    Chunks512<NV, kNaturalOrder>(plan, data, chunks, min_delta, init, out, \
                                 &base);                                  \
    break;
    ETSQP_NV512_CASE(1)
    ETSQP_NV512_CASE(2)
    ETSQP_NV512_CASE(3)
    ETSQP_NV512_CASE(4)
    ETSQP_NV512_CASE(5)
    ETSQP_NV512_CASE(6)
    ETSQP_NV512_CASE(7)
    ETSQP_NV512_CASE(8)
    ETSQP_NV512_CASE(9)
    ETSQP_NV512_CASE(10)
    ETSQP_NV512_CASE(11)
    ETSQP_NV512_CASE(12)
    ETSQP_NV512_CASE(13)
    ETSQP_NV512_CASE(14)
    ETSQP_NV512_CASE(15)
    ETSQP_NV512_CASE(16)
#undef ETSQP_NV512_CASE
    default:
      break;
  }

  size_t done = chunks * chunk_values;
  if (done < n) {
    size_t pos = done * static_cast<size_t>(width);
    int32_t running = base;
    for (size_t i = done; i < n; ++i) {
      uint32_t r = static_cast<uint32_t>(enc::UnpackOneBE(data, pos, width));
      pos += width;
      running += min_delta + static_cast<int32_t>(r);
      out[i] = running;
    }
  }
  (void)data_size;
}

/// Natural-order unpack plan: 16 values per iteration consuming 2*width
/// bytes; every 4-byte window of values 0..15 fits the 64-byte load.
struct UnpackPlan512 {
  int width = 0;
  int bytes_per_iter = 0;  // 2 * width
  alignas(64) uint8_t perm[64] = {};
  uint64_t byte_mask = ~0ull;
  alignas(64) uint32_t shift[16] = {};
  uint32_t mask = 0;
};

UnpackPlan512 BuildUnpackPlan512(int width) {
  UnpackPlan512 plan;
  plan.width = width;
  plan.bytes_per_iter = 2 * width;
  plan.mask = MaskLow32(width);
  for (int v = 0; v < 16; ++v) {
    int bit = v * width;
    int end_byte = (bit + width - 1) / 8;
    int w = end_byte >= 3 ? end_byte - 3 : 0;
    assert(w + 3 <= 63);
    for (int i = 0; i < 4; ++i) {
      plan.perm[4 * v + i] = static_cast<uint8_t>(w + 3 - i);
    }
    plan.shift[v] = static_cast<uint32_t>(32 - (bit - 8 * w) - width);
  }
  return plan;
}

const UnpackPlan512& GetUnpackPlan512(int width) {
  static UnpackPlan512* plans = [] {
    auto* p = new UnpackPlan512[26];
    for (int w = 1; w <= 25; ++w) p[w] = BuildUnpackPlan512(w);
    return p;
  }();
  return plans[width];
}

}  // namespace

void UnpackBE32Avx512(const uint8_t* data, size_t data_size, size_t n,
                      int width, uint32_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  assert(width <= 25);
  const UnpackPlan512& plan = GetUnpackPlan512(width);
  const __m512i perm = _mm512_load_si512(plan.perm);
  const __m512i shift = _mm512_load_si512(plan.shift);
  const __m512i vmask = _mm512_set1_epi32(static_cast<int>(plan.mask));
  size_t iters = n / 16;
  const uint8_t* src = data;
  for (size_t k = 0; k < iters; ++k) {
    __m512i seg = _mm512_loadu_si512(src);
    __m512i v = _mm512_permutexvar_epi8(perm, seg);
    v = _mm512_and_si512(_mm512_srlv_epi32(v, shift), vmask);
    _mm512_storeu_si512(out + k * 16, v);
    src += plan.bytes_per_iter;
  }
  size_t done = iters * 16;
  if (done < n) {
    enc::UnpackBE32(data, data_size, done * static_cast<size_t>(width),
                    n - done, width, out + done);
  }
}

bool Avx512Available() {
  static const bool ok = DetectAvx512();
  return ok && !SimdDisabledForTesting();
}

void DeltaDecodeOffsetsAvx512(const uint8_t* data, size_t data_size, size_t n,
                              int width, int32_t min_delta, int n_v,
                              int32_t init, int32_t* out) {
  DecodeImpl512<true>(data, data_size, n, width, min_delta, n_v, init, out);
}

void DeltaDecodeOffsetsAvx512Unordered(const uint8_t* data, size_t data_size,
                                       size_t n, int width, int32_t min_delta,
                                       int n_v, int32_t init, int32_t* out) {
  DecodeImpl512<false>(data, data_size, n, width, min_delta, n_v, init, out);
}

}  // namespace etsqp::simd
