#include "simd/streamvbyte_simd.h"

#include <immintrin.h>

#include "common/bit_util.h"

namespace etsqp::simd {

namespace {

/// Per-control-byte shuffle plans. A control byte describes four deltas of
/// 1 << code bytes each; lanes 0/1 shuffle out of the 16-byte window at the
/// group's data offset, lanes 2/3 out of the window at offset len0+len1
/// (so every window is a plain 16-byte load: len0+len1 and len2+len3 are
/// both at most 16).
struct SvbLut {
  uint8_t len01[256];
  uint8_t len23[256];
  alignas(16) uint8_t mask01[256][16];
  alignas(16) uint8_t mask23[256][16];
};

const SvbLut* GetLut() {
  static const SvbLut* lut = [] {
    SvbLut* t = new SvbLut();
    for (int c = 0; c < 256; ++c) {
      unsigned len[4];
      for (int d = 0; d < 4; ++d) len[d] = 1u << ((c >> (2 * d)) & 3);
      t->len01[c] = static_cast<uint8_t>(len[0] + len[1]);
      t->len23[c] = static_cast<uint8_t>(len[2] + len[3]);
      for (unsigned b = 0; b < 8; ++b) {
        t->mask01[c][b] = b < len[0] ? static_cast<uint8_t>(b) : 0x80;
        t->mask01[c][8 + b] =
            b < len[1] ? static_cast<uint8_t>(len[0] + b) : 0x80;
        t->mask23[c][b] = b < len[2] ? static_cast<uint8_t>(b) : 0x80;
        t->mask23[c][8 + b] =
            b < len[3] ? static_cast<uint8_t>(len[2] + b) : 0x80;
      }
    }
    return t;
  }();
  return lut;
}

inline __m128i ZigZagDecode2x64(__m128i z) {
  __m128i shifted = _mm_srli_epi64(z, 1);
  __m128i sign = _mm_sub_epi64(_mm_setzero_si128(),
                               _mm_and_si128(z, _mm_set1_epi64x(1)));
  return _mm_xor_si128(shifted, sign);
}

}  // namespace

bool StreamVByteDecodeSse(const uint8_t* control, size_t control_bytes,
                          const uint8_t* data, size_t data_bytes,
                          size_t deltas, int64_t first, int64_t* out) {
  out[0] = first;
  uint64_t prev = static_cast<uint64_t>(first);
  if (control_bytes < (deltas + 3) / 4) return false;
  const SvbLut& lut = *GetLut();
  size_t pos = 0;
  size_t emitted = 1;
  size_t group = 0;
  const size_t full_groups = deltas / 4;
  alignas(16) int64_t lane[4];
  for (; group < full_groups; ++group) {
    const uint8_t c = control[group];
    // Both window loads read 16 bytes; near the stream tail the scalar
    // loop below finishes the job instead of overreading.
    if (pos + lut.len01[c] + 16 > data_bytes) break;
    __m128i w0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    __m128i w1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(data + pos + lut.len01[c]));
    __m128i z01 = _mm_shuffle_epi8(
        w0, _mm_load_si128(reinterpret_cast<const __m128i*>(lut.mask01[c])));
    __m128i z23 = _mm_shuffle_epi8(
        w1, _mm_load_si128(reinterpret_cast<const __m128i*>(lut.mask23[c])));
    _mm_store_si128(reinterpret_cast<__m128i*>(lane), ZigZagDecode2x64(z01));
    _mm_store_si128(reinterpret_cast<__m128i*>(lane + 2),
                    ZigZagDecode2x64(z23));
    // The prefix sum stays scalar: four dependent adds per group are
    // cheaper than a 64-bit shift network at this lane count.
    for (int d = 0; d < 4; ++d) {
      prev += static_cast<uint64_t>(lane[d]);
      out[emitted++] = static_cast<int64_t>(prev);
    }
    pos += static_cast<size_t>(lut.len01[c]) + lut.len23[c];
  }
  for (size_t d = group * 4; d < deltas; ++d) {
    unsigned code = (control[d >> 2] >> (2 * (d & 3))) & 3;
    size_t len = size_t{1} << code;
    if (pos + len > data_bytes) return false;
    uint64_t z = 0;
    for (size_t b = 0; b < len; ++b) {
      z |= static_cast<uint64_t>(data[pos + b]) << (8 * b);
    }
    pos += len;
    prev += static_cast<uint64_t>(ZigZagDecode64(z));
    out[emitted++] = static_cast<int64_t>(prev);
  }
  return pos == data_bytes;
}

}  // namespace etsqp::simd
