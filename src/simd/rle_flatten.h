#ifndef ETSQP_SIMD_RLE_FLATTEN_H_
#define ETSQP_SIMD_RLE_FLATTEN_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Repeat-flatten kernels (the `flatten` decoder of paper Figure 2): expand
/// <delta, run> pairs into value sequences. A run of length r starting after
/// value `a` is the arithmetic ramp a+d, a+2d, ..., a+rd, filled with SIMD
/// ramp vectors instead of a scalar loop.

/// Expands `num_pairs` (delta[i], run[i]) pairs into values, starting from
/// `first` (exclusive). Writes sum(run[i]) values; returns that count.
/// 32-bit domain: values are offsets from the block base.
size_t FlattenDeltaRuns(const int32_t* deltas, const uint32_t* runs,
                        size_t num_pairs, int32_t first, int32_t* out);

/// Forced-path variants.
size_t FlattenDeltaRunsScalar(const int32_t* deltas, const uint32_t* runs,
                              size_t num_pairs, int32_t first, int32_t* out);
size_t FlattenDeltaRunsAvx2(const int32_t* deltas, const uint32_t* runs,
                            size_t num_pairs, int32_t first, int32_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_RLE_FLATTEN_H_
