#ifndef ETSQP_SIMD_TRANSPOSED_UNPACK_H_
#define ETSQP_SIMD_TRANSPOSED_UNPACK_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Algorithm 1 of the paper: dynamic-layout unpacking plus Delta recovery.
/// A chunk of n_v * 8 packed residuals is unpacked straight into n_v SIMD
/// vectors in the transposed layout of Figures 4-6 (consecutive deltas share
/// a lane across vectors), then recovered with n_v - 1 partial-sum additions,
/// one permute-based prefix-sum (3 permutevar8x32 + add steps), and one
/// broadcast add — instead of a serial carry per value.
///
/// Inputs are residuals r_c; the actual delta is min_delta + r_c. The kernel
/// produces, for every value index c (0-based within the decoded range), the
/// inclusive running sum S_c = sum_{k<=c} (min_delta + r_k) as a 32-bit
/// offset. The caller materializes values as first_value + S_c, or keeps the
/// (base, offsets) form for filtering/aggregation in registers.
///
/// Requirements: width <= 25 (4-byte windows — wider widths take the scalar
/// path), the true running sums must fit int32 (the engine checks block
/// statistics before choosing this path), and `data` must have 32 bytes of
/// readable slack past the packed region.

/// Decodes `n` residuals into natural-order inclusive running sums starting
/// from `init` (out[i] = init + S_i). Dispatches AVX2/scalar at runtime.
/// `n_v` in [1,16] selects the layout width (Proposition 1); pass 0 to use
/// the cost-model default.
void DeltaDecodeOffsets(const uint8_t* data, size_t data_size, size_t n,
                        int width, int32_t min_delta, int n_v, int32_t init,
                        int32_t* out);

/// Order-insensitive variant: the decoded running sums are stored in the
/// transposed chunk order (vectors written straight from registers, no
/// scatter pass). The multiset of outputs equals the ordered variant's —
/// this is the form the pipeline's vectorized operators consume when they
/// share the SIMD layout (filters by value, SUM/MIN/MAX/COUNT), mirroring
/// the paper's register sharing between decoders and query operators.
void DeltaDecodeOffsetsUnordered(const uint8_t* data, size_t data_size,
                                 size_t n, int width, int32_t min_delta,
                                 int n_v, int32_t init, int32_t* out);

/// Forced-path variants for tests/benches.
void DeltaDecodeOffsetsScalar(const uint8_t* data, size_t data_size, size_t n,
                              int width, int32_t min_delta, int32_t init,
                              int32_t* out);
void DeltaDecodeOffsetsAvx2(const uint8_t* data, size_t data_size, size_t n,
                            int width, int32_t min_delta, int n_v,
                            int32_t init, int32_t* out);
void DeltaDecodeOffsetsAvx2Unordered(const uint8_t* data, size_t data_size,
                                     size_t n, int width, int32_t min_delta,
                                     int n_v, int32_t init, int32_t* out);

/// Default n_v from Proposition 1 (see exec/cost_model for the derivation).
int DefaultNumVectors(int width);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_TRANSPOSED_UNPACK_H_
