#include "simd/unpack_plan.h"

#include <cassert>
#include <mutex>

#include "common/bit_util.h"

namespace etsqp::simd {

namespace {

void BuildFastPlan(int width, UnpackPlan* plan) {
  plan->width = width;
  plan->bytes_per_iter = width;  // 8 values * width bits == width bytes
  plan->wide = false;
  plan->hi_offset = 4 * width / 8;
  plan->mask = MaskLow32(width);
  for (uint8_t& b : plan->shuffle) b = 0x80;
  for (int j = 0; j < 8; ++j) {
    int load_base = j < 4 ? 0 : plan->hi_offset;
    int bit = j * width - 8 * load_base;  // bit offset within the 16B load
    int end_byte = (bit + width - 1) / 8;
    int w = end_byte >= 3 ? end_byte - 3 : 0;  // 4-byte window [w, w+3]
    assert(w + 3 <= 15);
    int half = j / 4;
    int pos = j % 4;
    for (int i = 0; i < 4; ++i) {
      // LE lane byte i (LSB first) <- BE window byte w+3-i.
      plan->shuffle[16 * half + 4 * pos + i] =
          static_cast<uint8_t>(w + 3 - i);
    }
    plan->shift[j] = static_cast<uint32_t>(32 - (bit - 8 * w) - width);
  }
}

void BuildWidePlan(int width, UnpackPlan* plan) {
  plan->width = width;
  plan->bytes_per_iter = width;
  plan->wide = true;
  plan->mask64 = MaskLow64(width);
  for (int s = 0; s < 2; ++s) {
    UnpackPlan::WideStep& step = plan->steps[s];
    for (uint8_t& b : step.shuffle) b = 0x80;
    int start_bit = 4 * s * width;
    step.lo_offset = start_bit / 8;
    int phase = start_bit - 8 * step.lo_offset;
    // Upper half reads values 4s+2, 4s+3.
    step.hi_offset = step.lo_offset + (phase + 2 * width) / 8;
    for (int k = 0; k < 4; ++k) {  // 64-bit lane k handles value 4s+k
      int load_base = k < 2 ? step.lo_offset : step.hi_offset;
      // Bit position of value (4s+k) within the 16-byte load at load_base.
      int bit = (4 * s + k) * width - 8 * load_base;
      int w = bit / 8;  // 8-byte window [w, w+7]
      assert(w + 7 <= 15);
      int half = k / 2;
      int pos = k % 2;
      for (int i = 0; i < 8; ++i) {
        step.shuffle[16 * half + 8 * pos + i] =
            static_cast<uint8_t>(w + 7 - i);
      }
      step.shift[k] = static_cast<uint64_t>(64 - (bit - 8 * w) - width);
    }
  }
}

}  // namespace

const UnpackPlan& GetUnpackPlan(int width) {
  assert(width >= 1 && width <= 32);
  static UnpackPlan* plans = [] {
    auto* p = new UnpackPlan[33];
    for (int w = 1; w <= 25; ++w) BuildFastPlan(w, &p[w]);
    for (int w = 26; w <= 32; ++w) BuildWidePlan(w, &p[w]);
    return p;
  }();
  return plans[width];
}

namespace {

TransposedPlan BuildTransposedPlan(int width, int n_v) {
  TransposedPlan plan;
  plan.width = width;
  plan.n_v = n_v;
  plan.values_per_chunk = n_v * 8;
  plan.bytes_per_chunk = n_v * width;
  plan.mask = MaskLow32(width);
  plan.shifts.assign(n_v, {});

  // Per-half segmentation: half h holds chunk values [4 n_v h, 4 n_v (h+1)),
  // starting at bit 4 * n_v * width * h. Each 16-byte load covers the values
  // whose 4-byte windows fit inside it; the straddling byte is re-read by
  // the next load (paper Section III-A).
  struct ValueSlot {
    int segment;    // paired-segment index
    int local_bit;  // bit offset within that half's 16-byte load
  };
  std::vector<ValueSlot> slots(plan.values_per_chunk);
  size_t num_segments = 0;
  std::vector<std::vector<int>> half_offsets(2);
  for (int h = 0; h < 2; ++h) {
    size_t pos_bits = static_cast<size_t>(4) * n_v * width * h;
    int c = 4 * n_v * h;
    const int c_end = 4 * n_v * (h + 1);
    while (c < c_end) {
      int byte_off = static_cast<int>(pos_bits / 8);
      int phase = static_cast<int>(pos_bits - 8 * static_cast<size_t>(byte_off));
      int fit = (128 - phase) / width;
      assert(fit > 0);
      int seg_index = static_cast<int>(half_offsets[h].size());
      half_offsets[h].push_back(byte_off);
      for (int t = 0; t < fit && c < c_end; ++t, ++c) {
        slots[c] = ValueSlot{seg_index, phase + t * width};
        pos_bits += width;
      }
    }
    num_segments = std::max(num_segments, half_offsets[h].size());
  }

  plan.segments.resize(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    // Pad missing half segments with a repeat of offset 0; their shuffle
    // bytes stay 0x80, so the loaded bytes are ignored.
    plan.segments[s].lo_offset =
        s < half_offsets[0].size() ? half_offsets[0][s] : 0;
    plan.segments[s].hi_offset =
        s < half_offsets[1].size() ? half_offsets[1][s] : 0;
  }

  plan.shuffles.assign(num_segments * n_v, {});
  for (auto& shuf : plan.shuffles) shuf.fill(0x80);

  for (int c = 0; c < plan.values_per_chunk; ++c) {
    int j = c % n_v;
    int lane = c / n_v;  // identity mapping
    const ValueSlot& slot = slots[c];
    int end_byte = (slot.local_bit + width - 1) / 8;
    int w = end_byte >= 3 ? end_byte - 3 : 0;
    assert(w + 3 <= 15);
    std::array<uint8_t, 32>& shuf = plan.shuffles[slot.segment * n_v + j];
    int half = lane / 4;
    int pos = lane % 4;
    for (int i = 0; i < 4; ++i) {
      shuf[16 * half + 4 * pos + i] = static_cast<uint8_t>(w + 3 - i);
    }
    plan.shifts[j][lane] =
        static_cast<uint32_t>(32 - (slot.local_bit - 8 * w) - width);
  }

  plan.skip.assign(num_segments * n_v, 1);
  for (size_t i = 0; i < plan.shuffles.size(); ++i) {
    for (uint8_t b : plan.shuffles[i]) {
      if (b != 0x80) {
        plan.skip[i] = 0;
        break;
      }
    }
  }
  return plan;
}

}  // namespace

const TransposedPlan& GetTransposedPlan(int width, int n_v) {
  assert(width >= 1 && width <= 25);
  assert(n_v >= 1 && n_v <= 16);
  static std::mutex mu;
  static TransposedPlan* cache[26][17] = {};
  std::lock_guard<std::mutex> lock(mu);
  TransposedPlan*& slot = cache[width][n_v];
  if (slot == nullptr) slot = new TransposedPlan(BuildTransposedPlan(width, n_v));
  return *slot;
}

}  // namespace etsqp::simd
