#ifndef ETSQP_SIMD_UNPACK_H_
#define ETSQP_SIMD_UNPACK_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Vectorized constant-width unpacking (paper Figure 3): shuffle bytes across
/// lanes, variable-shift, mask. Decodes `n` Big-Endian `width`-bit values
/// starting at byte 0 of `data` into natural-order 32-bit outputs.
///
/// `data` must expose at least 32 readable bytes past the packed region
/// (AlignedBuffer guarantees this slack); the scalar tail never over-reads
/// `data_size`.
///
/// Dispatches to AVX2 when available (see common/cpu.h), otherwise scalar.
void UnpackBE32(const uint8_t* data, size_t data_size, size_t n, int width,
                uint32_t* out);

/// Forced-path variants, exposed for tests and the ablation benches.
void UnpackBE32Scalar(const uint8_t* data, size_t data_size, size_t n,
                      int width, uint32_t* out);
void UnpackBE32Avx2(const uint8_t* data, size_t data_size, size_t n,
                    int width, uint32_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_UNPACK_H_
