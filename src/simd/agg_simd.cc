#include "simd/agg_simd.h"

#include <immintrin.h>

#include <algorithm>
#include <climits>

#include "common/cpu.h"

namespace etsqp::simd {

namespace {

/// Expands the low 8 bits of `bits` into 8 full 32-bit lane masks.
inline __m256i LaneMaskFromBits(uint32_t bits) {
  const __m256i sel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  __m256i b = _mm256_set1_epi32(static_cast<int>(bits & 0xFF));
  return _mm256_cmpeq_epi32(_mm256_and_si256(b, sel), sel);
}

inline int64_t HorizontalSum64(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/// Widens the 8 int32 lanes of `v` and adds them into two 4x64 accumulators.
inline void AccumulateWiden(__m256i v, __m256i* acc_lo, __m256i* acc_hi) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  *acc_lo = _mm256_add_epi64(*acc_lo, _mm256_cvtepi32_epi64(lo));
  *acc_hi = _mm256_add_epi64(*acc_hi, _mm256_cvtepi32_epi64(hi));
}

}  // namespace

int64_t MaskedSumInt32Scalar(const int32_t* values, const uint64_t* mask,
                             size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (mask[i >> 6] & (1ull << (i & 63))) sum += values[i];
  }
  return sum;
}

int64_t MaskedSumInt32Avx2(const int32_t* values, const uint64_t* mask,
                           size_t n) {
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  size_t iters = n / 8;
  for (size_t k = 0; k < iters; ++k) {
    size_t bit = k * 8;
    uint32_t m = static_cast<uint32_t>(mask[bit >> 6] >> (bit & 63)) & 0xFF;
    if (m == 0) continue;
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + k * 8));
    v = _mm256_and_si256(v, LaneMaskFromBits(m));
    AccumulateWiden(v, &acc_lo, &acc_hi);
  }
  int64_t sum = HorizontalSum64(acc_lo) + HorizontalSum64(acc_hi);
  for (size_t i = iters * 8; i < n; ++i) {
    if (mask[i >> 6] & (1ull << (i & 63))) sum += values[i];
  }
  return sum;
}

int64_t MaskedSumInt32(const int32_t* values, const uint64_t* mask,
                       size_t n) {
  return UseAvx2() ? MaskedSumInt32Avx2(values, mask, n)
                   : MaskedSumInt32Scalar(values, mask, n);
}

bool MaskedMinMaxInt32(const int32_t* values, const uint64_t* mask, size_t n,
                       int32_t* min_out, int32_t* max_out) {
  int32_t mn = INT32_MAX;
  int32_t mx = INT32_MIN;
  bool any = false;
  if (UseAvx2() && n >= 8) {
    __m256i vmn = _mm256_set1_epi32(INT32_MAX);
    __m256i vmx = _mm256_set1_epi32(INT32_MIN);
    size_t iters = n / 8;
    for (size_t k = 0; k < iters; ++k) {
      size_t bit = k * 8;
      uint32_t m = static_cast<uint32_t>(mask[bit >> 6] >> (bit & 63)) & 0xFF;
      if (m == 0) continue;
      any = true;
      __m256i lane_mask = LaneMaskFromBits(m);
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + k * 8));
      __m256i v_for_min =
          _mm256_blendv_epi8(_mm256_set1_epi32(INT32_MAX), v, lane_mask);
      __m256i v_for_max =
          _mm256_blendv_epi8(_mm256_set1_epi32(INT32_MIN), v, lane_mask);
      vmn = _mm256_min_epi32(vmn, v_for_min);
      vmx = _mm256_max_epi32(vmx, v_for_max);
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmn);
    for (int i = 0; i < 8; ++i) mn = std::min(mn, lanes[i]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmx);
    for (int i = 0; i < 8; ++i) mx = std::max(mx, lanes[i]);
    for (size_t i = iters * 8; i < n; ++i) {
      if (mask[i >> 6] & (1ull << (i & 63))) {
        any = true;
        mn = std::min(mn, values[i]);
        mx = std::max(mx, values[i]);
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (mask[i >> 6] & (1ull << (i & 63))) {
        any = true;
        mn = std::min(mn, values[i]);
        mx = std::max(mx, values[i]);
      }
    }
  }
  if (!any) return false;
  *min_out = mn;
  *max_out = mx;
  return true;
}

int64_t SumInt32(const int32_t* values, size_t n) {
  if (!UseAvx2()) {
    int64_t sum = 0;
    for (size_t i = 0; i < n; ++i) sum += values[i];
    return sum;
  }
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  size_t iters = n / 8;
  for (size_t k = 0; k < iters; ++k) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + k * 8));
    AccumulateWiden(v, &acc_lo, &acc_hi);
  }
  int64_t sum = HorizontalSum64(acc_lo) + HorizontalSum64(acc_hi);
  for (size_t i = iters * 8; i < n; ++i) sum += values[i];
  return sum;
}

void MinMaxInt32(const int32_t* values, size_t n, int32_t* min_out,
                 int32_t* max_out) {
  int32_t mn = values[0];
  int32_t mx = values[0];
  size_t i = 1;
  if (UseAvx2() && n >= 16) {
    __m256i vmn = _mm256_set1_epi32(mn);
    __m256i vmx = vmn;
    size_t iters = n / 8;
    for (size_t k = 0; k < iters; ++k) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + k * 8));
      vmn = _mm256_min_epi32(vmn, v);
      vmx = _mm256_max_epi32(vmx, v);
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmn);
    for (int l = 0; l < 8; ++l) mn = std::min(mn, lanes[l]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmx);
    for (int l = 0; l < 8; ++l) mx = std::max(mx, lanes[l]);
    i = iters * 8;
  }
  for (; i < n; ++i) {
    mn = std::min(mn, values[i]);
    mx = std::max(mx, values[i]);
  }
  *min_out = mn;
  *max_out = mx;
}

int64_t WeightedRampSumInt32Scalar(const int32_t* values, size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<int64_t>(n - i) * values[i];
  }
  return sum;
}

int64_t WeightedRampSumInt32Avx2(const int32_t* values, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i down = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  size_t iters = n / 8;
  for (size_t k = 0; k < iters; ++k) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + k * 8));
    __m256i w = _mm256_sub_epi32(
        _mm256_set1_epi32(static_cast<int>(n - k * 8)), down);
    // 32x32 -> 64 products for even and odd lanes.
    __m256i pe = _mm256_mul_epi32(v, w);
    __m256i po = _mm256_mul_epi32(_mm256_srli_epi64(v, 32),
                                  _mm256_srli_epi64(w, 32));
    acc = _mm256_add_epi64(acc, pe);
    acc = _mm256_add_epi64(acc, po);
  }
  int64_t sum = HorizontalSum64(acc);
  for (size_t i = iters * 8; i < n; ++i) {
    sum += static_cast<int64_t>(n - i) * values[i];
  }
  return sum;
}

int64_t WeightedRampSumInt32(const int32_t* values, size_t n) {
  return UseAvx2() ? WeightedRampSumInt32Avx2(values, n)
                   : WeightedRampSumInt32Scalar(values, n);
}

bool CheckedAddInt64(int64_t a, int64_t b, int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}

bool CheckedSumInt64(const int64_t* values, size_t n, int64_t* out) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (__builtin_add_overflow(sum, values[i], &sum)) return false;
  }
  *out = sum;
  return true;
}

}  // namespace etsqp::simd
