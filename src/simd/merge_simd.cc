#include "simd/merge_simd.h"

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "common/cpu.h"
#include "simd/transposed_unpack_avx512.h"

namespace etsqp::simd {

namespace {

/// Skew threshold past which the dispatcher gallops instead of scanning.
/// Block-skip only pays once gaps exceed the vector width, and the
/// exponential probe costs O(log advance) per short-side element — past
/// ~8x skew galloping dominates every lane width we dispatch to.
constexpr size_t kGallopRatio = 8;

inline int CountTrailingZeros(unsigned mask) { return __builtin_ctz(mask); }

/// First index >= `begin` with times[idx] > bound (AVX2 4-lane scan).
size_t RunEndLeqAvx2(const int64_t* times, size_t begin, size_t n,
                     int64_t bound) {
  size_t i = begin;
  const __m256i bv = _mm256_set1_epi64x(bound);
  while (i + 4 <= n) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(times + i));
    int gt = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(x, bv)));
    if (gt != 0) return i + CountTrailingZeros(static_cast<unsigned>(gt));
    i += 4;
  }
  while (i < n && times[i] <= bound) ++i;
  return i;
}

/// First index >= `begin` with times[idx] >= bound.
size_t RunEndLtAvx2(const int64_t* times, size_t begin, size_t n,
                    int64_t bound) {
  size_t i = begin;
  const __m256i bv = _mm256_set1_epi64x(bound);
  while (i + 4 <= n) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(times + i));
    int lt = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(bv, x)));
    int ge = ~lt & 0xF;
    if (ge != 0) return i + CountTrailingZeros(static_cast<unsigned>(ge));
    i += 4;
  }
  while (i < n && times[i] < bound) ++i;
  return i;
}

size_t RunEndLeqSse(const int64_t* times, size_t begin, size_t n,
                    int64_t bound) {
  size_t i = begin;
  const __m128i bv = _mm_set1_epi64x(bound);
  while (i + 2 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(times + i));
    int gt = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(x, bv)));
    if (gt != 0) return i + CountTrailingZeros(static_cast<unsigned>(gt));
    i += 2;
  }
  while (i < n && times[i] <= bound) ++i;
  return i;
}

size_t RunEndLtSse(const int64_t* times, size_t begin, size_t n,
                   int64_t bound) {
  size_t i = begin;
  const __m128i bv = _mm_set1_epi64x(bound);
  while (i + 2 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(times + i));
    int lt = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(bv, x)));
    int ge = ~lt & 0x3;
    if (ge != 0) return i + CountTrailingZeros(static_cast<unsigned>(ge));
    i += 2;
  }
  while (i < n && times[i] < bound) ++i;
  return i;
}

size_t RunEndLeq(const int64_t* times, size_t begin, size_t n, int64_t bound,
                 MergeIsa isa) {
  if (isa == MergeIsa::kSse) return RunEndLeqSse(times, begin, n, bound);
  return RunEndLeqAvx2(times, begin, n, bound);
}

size_t RunEndLt(const int64_t* times, size_t begin, size_t n, int64_t bound,
                MergeIsa isa) {
  if (isa == MergeIsa::kSse) return RunEndLtSse(times, begin, n, bound);
  return RunEndLtAvx2(times, begin, n, bound);
}

/// Galloping core: `s` is the short side, `g` the long side. The outputs
/// are already swapped by the wrapper so pairs land on the right columns.
size_t GallopCore(const int64_t* s, size_t ns, const int64_t* g, size_t ng,
                  uint32_t* out_s, uint32_t* out_g) {
  size_t i = 0, j = 0, m = 0;
  while (i < ns && j < ng) {
    int64_t v = s[i];
    if (g[j] < v) {
      // Exponential probe keeps the invariant g[lo] < v, then a binary
      // search in (lo, lo+step] pins the lower bound of v.
      size_t lo = j, step = 1;
      while (lo + step < ng && g[lo + step] < v) {
        lo += step;
        step <<= 1;
      }
      size_t end = std::min(lo + step + 1, ng);
      j = static_cast<size_t>(std::lower_bound(g + lo + 1, g + end, v) - g);
      if (j >= ng) break;
    }
    if (g[j] == v) {
      // Element-wise pairing across the equal runs (min run length pairs).
      size_t ri = i + 1;
      while (ri < ns && s[ri] == v) ++ri;
      size_t rj = j + 1;
      while (rj < ng && g[rj] == v) ++rj;
      size_t run = std::min(ri - i, rj - j);
      for (size_t t = 0; t < run; ++t) {
        out_s[m] = static_cast<uint32_t>(i + t);
        out_g[m] = static_cast<uint32_t>(j + t);
        ++m;
      }
      i = ri;
      j = rj;
    } else {  // g[j] > v: nothing in g equals v, skip its whole run in s
      while (i < ns && s[i] == v) ++i;
    }
  }
  return m;
}

}  // namespace

MergeIsa BestMergeIsa() {
  if (!UseAvx2()) return MergeIsa::kScalar;
  return Avx512Available() ? MergeIsa::kAvx512 : MergeIsa::kAvx2;
}

size_t IntersectIndicesInt64Scalar(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r) {
  size_t i = 0, j = 0, m = 0;
  while (i < nl && j < nr) {
    if (l[i] < r[j]) {
      ++i;
    } else if (r[j] < l[i]) {
      ++j;
    } else {
      out_l[m] = static_cast<uint32_t>(i);
      out_r[m] = static_cast<uint32_t>(j);
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

size_t IntersectIndicesInt64Sse(const int64_t* l, size_t nl, const int64_t* r,
                                size_t nr, uint32_t* out_l, uint32_t* out_r) {
  size_t i = 0, j = 0, m = 0;
  while (i < nl && j < nr) {
    // Aligned-run fast path: series sampled on the same clock match
    // pairwise for long stretches — a whole block of equal lanes emits
    // without per-element branches. Identical to the scalar drain, which
    // also only ever compares current heads.
    if (i + 2 <= nl && j + 2 <= nr) {
      __m128i lv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + i));
      __m128i rv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + j));
      if (_mm_movemask_epi8(_mm_cmpeq_epi64(lv, rv)) == 0xFFFF) {
        out_l[m] = static_cast<uint32_t>(i);
        out_r[m] = static_cast<uint32_t>(j);
        out_l[m + 1] = static_cast<uint32_t>(i + 1);
        out_r[m + 1] = static_cast<uint32_t>(j + 1);
        m += 2;
        i += 2;
        j += 2;
        continue;
      }
    }
    if (i + 2 <= nl) {
      __m128i lv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + i));
      __m128i rv = _mm_set1_epi64x(r[j]);
      if (_mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(rv, lv))) == 0x3) {
        i += 2;
        continue;
      }
    }
    if (j + 2 <= nr) {
      __m128i rv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + j));
      __m128i lv = _mm_set1_epi64x(l[i]);
      if (_mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(lv, rv))) == 0x3) {
        j += 2;
        continue;
      }
    }
    if (l[i] < r[j]) {
      ++i;
    } else if (r[j] < l[i]) {
      ++j;
    } else {
      out_l[m] = static_cast<uint32_t>(i);
      out_r[m] = static_cast<uint32_t>(j);
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

size_t IntersectIndicesInt64Avx2(const int64_t* l, size_t nl, const int64_t* r,
                                 size_t nr, uint32_t* out_l, uint32_t* out_r) {
  size_t i = 0, j = 0, m = 0;
  while (i < nl && j < nr) {
    // Aligned-run fast path (see the SSE kernel): 4 pairwise-equal lanes
    // emit as a block.
    if (i + 4 <= nl && j + 4 <= nr) {
      __m256i lv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l + i));
      __m256i rv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + j));
      if (_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpeq_epi64(lv, rv))) == 0xF) {
        const __m128i ramp = _mm_setr_epi32(0, 1, 2, 3);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(out_l + m),
            _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), ramp));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(out_r + m),
            _mm_add_epi32(_mm_set1_epi32(static_cast<int>(j)), ramp));
        m += 4;
        i += 4;
        j += 4;
        continue;
      }
    }
    // Block-skip (Lemire & Boytsov): when the next 4 lanes of one side all
    // sort below the other side's head, the whole block advances on one
    // compare instead of four branches.
    if (i + 4 <= nl) {
      __m256i lv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l + i));
      __m256i rv = _mm256_set1_epi64x(r[j]);
      if (_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpgt_epi64(rv, lv))) == 0xF) {
        i += 4;
        continue;
      }
    }
    if (j + 4 <= nr) {
      __m256i rv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + j));
      __m256i lv = _mm256_set1_epi64x(l[i]);
      if (_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpgt_epi64(lv, rv))) == 0xF) {
        j += 4;
        continue;
      }
    }
    if (l[i] < r[j]) {
      ++i;
    } else if (r[j] < l[i]) {
      ++j;
    } else {
      out_l[m] = static_cast<uint32_t>(i);
      out_r[m] = static_cast<uint32_t>(j);
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

size_t GallopIntersectIndicesInt64(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r) {
  return nl <= nr ? GallopCore(l, nl, r, nr, out_l, out_r)
                  : GallopCore(r, nr, l, nl, out_r, out_l);
}

size_t IntersectIndicesInt64(const int64_t* l, size_t nl, const int64_t* r,
                             size_t nr, uint32_t* out_l, uint32_t* out_r,
                             MergeIsa isa) {
  if (nl == 0 || nr == 0) return 0;
  if (isa != MergeIsa::kScalar &&
      (nl / kGallopRatio > nr || nr / kGallopRatio > nl)) {
    return GallopIntersectIndicesInt64(l, nl, r, nr, out_l, out_r);
  }
  switch (isa) {
    case MergeIsa::kAvx512:
      if (UseAvx2() && Avx512Available()) {
        return IntersectIndicesInt64Avx512(l, nl, r, nr, out_l, out_r);
      }
      [[fallthrough]];
    case MergeIsa::kAvx2:
      if (UseAvx2()) return IntersectIndicesInt64Avx2(l, nl, r, nr, out_l,
                                                      out_r);
      [[fallthrough]];
    case MergeIsa::kSse:
      if (UseAvx2()) return IntersectIndicesInt64Sse(l, nl, r, nr, out_l,
                                                     out_r);
      [[fallthrough]];
    default:
      return IntersectIndicesInt64Scalar(l, nl, r, nr, out_l, out_r);
  }
}

size_t MergeUnionInt64Scalar(const int64_t* lt, const int64_t* lv, size_t nl,
                             const int64_t* rt, const int64_t* rv, size_t nr,
                             int64_t* out_t, int64_t* out_v) {
  size_t i = 0, j = 0, m = 0;
  while (i < nl || j < nr) {
    bool take_left = j >= nr || (i < nl && lt[i] <= rt[j]);
    if (take_left) {
      out_t[m] = lt[i];
      out_v[m] = lv[i];
      ++i;
    } else {
      out_t[m] = rt[j];
      out_v[m] = rv[j];
      ++j;
    }
    ++m;
  }
  return m;
}

size_t MergeUnionInt64(const int64_t* lt, const int64_t* lv, size_t nl,
                       const int64_t* rt, const int64_t* rv, size_t nr,
                       int64_t* out_t, int64_t* out_v, MergeIsa isa) {
  if (isa == MergeIsa::kScalar || !UseAvx2()) {
    return MergeUnionInt64Scalar(lt, lv, nl, rt, rv, nr, out_t, out_v);
  }
  size_t i = 0, j = 0, m = 0;
  while (i < nl && j < nr) {
    if (lt[i] <= rt[j]) {
      // Left run: everything <= the right head (ties emit left first).
      size_t e = RunEndLeq(lt, i, nl, rt[j], isa);
      std::memcpy(out_t + m, lt + i, (e - i) * sizeof(int64_t));
      std::memcpy(out_v + m, lv + i, (e - i) * sizeof(int64_t));
      m += e - i;
      i = e;
    } else {
      // Right run: strictly below the left head.
      size_t e = RunEndLt(rt, j, nr, lt[i], isa);
      std::memcpy(out_t + m, rt + j, (e - j) * sizeof(int64_t));
      std::memcpy(out_v + m, rv + j, (e - j) * sizeof(int64_t));
      m += e - j;
      j = e;
    }
  }
  if (i < nl) {
    std::memcpy(out_t + m, lt + i, (nl - i) * sizeof(int64_t));
    std::memcpy(out_v + m, lv + i, (nl - i) * sizeof(int64_t));
    m += nl - i;
  }
  if (j < nr) {
    std::memcpy(out_t + m, rt + j, (nr - j) * sizeof(int64_t));
    std::memcpy(out_v + m, rv + j, (nr - j) * sizeof(int64_t));
    m += nr - j;
  }
  return m;
}

namespace {

constexpr uint32_t kNoStream = UINT32_MAX;

/// Tournament loser tree over k streams: leaves are stream cursors,
/// internal nodes store match losers, the champion pops in O(1) and each
/// advance replays one leaf-to-root path (O(log k)). Ties break toward the
/// lower stream index so N-way union order is deterministic.
struct LoserTree {
  const MergeStream* st;
  size_t k;
  size_t m;  // leaf count, k padded to a power of two
  std::vector<size_t> pos;
  std::vector<uint32_t> loser;  // internal nodes 1..m-1
  uint32_t winner = kNoStream;

  LoserTree(const MergeStream* streams, size_t streams_k)
      : st(streams), k(streams_k), pos(streams_k, 0) {
    m = 1;
    while (m < k) m <<= 1;
    loser.assign(m, kNoStream);
    // Bottom-up winner-tree build; losers drop into the node array.
    std::vector<uint32_t> win(2 * m, kNoStream);
    for (size_t s = 0; s < k; ++s) win[m + s] = static_cast<uint32_t>(s);
    for (size_t node = m - 1; node >= 1; --node) {
      uint32_t a = win[2 * node];
      uint32_t b = win[2 * node + 1];
      bool a_wins = Beats(a, b);
      win[node] = a_wins ? a : b;
      loser[node] = a_wins ? b : a;
    }
    winner = win[1];
  }

  bool Live(uint32_t s) const { return s != kNoStream && pos[s] < st[s].n; }

  /// True when stream a's head sorts before stream b's.
  bool Beats(uint32_t a, uint32_t b) const {
    bool la = Live(a), lb = Live(b);
    if (!la || !lb) return la;
    int64_t ka = st[a].times[pos[a]];
    int64_t kb = st[b].times[pos[b]];
    return ka < kb || (ka == kb && a < b);
  }

  /// Replays leaf `s`'s path after its key changed.
  void Replay(uint32_t s) {
    uint32_t cur = s;
    for (size_t node = (m + s) >> 1; node >= 1; node >>= 1) {
      if (Beats(loser[node], cur)) std::swap(loser[node], cur);
    }
    winner = cur;
  }

  /// Runner-up behind the current champion `winner`, read-only: the losers
  /// along the champion's leaf path are exactly the winners of its sibling
  /// subtrees, so their minimum is the best of every other stream.
  uint32_t RunnerUp() const {
    uint32_t best = kNoStream;
    for (size_t node = (m + winner) >> 1; node >= 1; node >>= 1) {
      if (Beats(loser[node], best)) best = loser[node];
    }
    return best;
  }
};

}  // namespace

size_t NwayMergeUnionScalar(const MergeStream* streams, size_t k,
                            int64_t* out_t, int64_t* out_v) {
  if (k == 0) return 0;
  size_t total = 0;
  for (size_t s = 0; s < k; ++s) total += streams[s].n;
  if (total == 0) return 0;
  LoserTree tree(streams, k);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    uint32_t w = tree.winner;
    size_t p = tree.pos[w];
    out_t[emitted] = streams[w].times[p];
    if (out_v != nullptr && streams[w].values != nullptr) {
      out_v[emitted] = streams[w].values[p];
    }
    tree.pos[w] = p + 1;
    tree.Replay(w);
  }
  return total;
}

size_t NwayMergeUnion(const MergeStream* streams, size_t k, int64_t* out_t,
                      int64_t* out_v, MergeIsa isa) {
  if (isa == MergeIsa::kScalar || !UseAvx2() || k < 2) {
    return NwayMergeUnionScalar(streams, k, out_t, out_v);
  }
  size_t total = 0;
  for (size_t s = 0; s < k; ++s) total += streams[s].n;
  if (total == 0) return 0;
  LoserTree tree(streams, k);
  size_t emitted = 0;
  while (emitted < total) {
    uint32_t w = tree.winner;
    // Exact run bound: the runner-up's head key is the minimum over every
    // *other* stream, which tells how far `w` can bulk-copy before the
    // tree must be consulted again.
    uint32_t u = tree.RunnerUp();
    size_t p = tree.pos[w];
    size_t e;
    if (!tree.Live(u)) {
      e = streams[w].n;  // last live stream: flush it
    } else {
      int64_t bound = streams[u].times[tree.pos[u]];
      e = (w < u) ? RunEndLeq(streams[w].times, p, streams[w].n, bound, isa)
                  : RunEndLt(streams[w].times, p, streams[w].n, bound, isa);
    }
    std::memcpy(out_t + emitted, streams[w].times + p,
                (e - p) * sizeof(int64_t));
    if (out_v != nullptr && streams[w].values != nullptr) {
      std::memcpy(out_v + emitted, streams[w].values + p,
                  (e - p) * sizeof(int64_t));
    }
    emitted += e - p;
    tree.pos[w] = e;
    tree.Replay(w);
  }
  return total;
}

size_t NwayIntersectScalar(const MergeStream* streams, size_t k,
                           std::vector<int64_t>* out) {
  out->clear();
  if (k == 0) return 0;
  for (size_t s = 0; s < k; ++s) {
    if (streams[s].n == 0) return 0;
  }
  if (k == 1) {
    out->assign(streams[0].times, streams[0].times + streams[0].n);
    return out->size();
  }
  // k-pointer drain: rotate a candidate timestamp through the streams;
  // every stream scans linearly (the scalar reference deliberately avoids
  // search) to its first element >= candidate. k consecutive agreements
  // emit the candidate.
  std::vector<size_t> pos(k, 0);
  int64_t cand = streams[0].times[0];
  size_t agree = 1;
  size_t s = 1 % k;
  while (true) {
    const MergeStream& cur = streams[s];
    while (pos[s] < cur.n && cur.times[pos[s]] < cand) ++pos[s];
    if (pos[s] == cur.n) break;
    if (cur.times[pos[s]] == cand) {
      if (++agree == k) {
        out->push_back(cand);
        if (++pos[s] == cur.n) break;
        cand = cur.times[pos[s]];
        agree = 1;
      }
    } else {
      cand = cur.times[pos[s]];
      agree = 1;
    }
    s = (s + 1) % k;
  }
  return out->size();
}

size_t NwayIntersect(const MergeStream* streams, size_t k,
                     std::vector<int64_t>* out, MergeIsa isa) {
  if (isa == MergeIsa::kScalar) return NwayIntersectScalar(streams, k, out);
  out->clear();
  if (k == 0) return 0;
  // Pairwise fold, smallest stream first: the candidate set only shrinks,
  // so later (larger) streams are met by a short probe list the galloping
  // kernel can binary-search through.
  std::vector<uint32_t> order(k);
  for (size_t s = 0; s < k; ++s) order[s] = static_cast<uint32_t>(s);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return streams[a].n < streams[b].n;
  });
  if (streams[order[0]].n == 0) return 0;
  std::vector<int64_t>& cur = *out;
  cur.assign(streams[order[0]].times,
             streams[order[0]].times + streams[order[0]].n);
  std::vector<uint32_t> il, ir;
  for (size_t x = 1; x < k && !cur.empty(); ++x) {
    const MergeStream& s = streams[order[x]];
    size_t cap = std::min(cur.size(), s.n);
    il.resize(cap);
    ir.resize(cap);
    size_t matched = IntersectIndicesInt64(cur.data(), cur.size(), s.times,
                                           s.n, il.data(), ir.data(), isa);
    for (size_t t = 0; t < matched; ++t) cur[t] = cur[il[t]];
    cur.resize(matched);
  }
  return cur.size();
}

}  // namespace etsqp::simd
