#ifndef ETSQP_SIMD_TRANSPOSED_UNPACK_AVX512_H_
#define ETSQP_SIMD_TRANSPOSED_UNPACK_AVX512_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// AVX-512 instantiation of Algorithm 1 (the paper's "extensible to other
/// quantities and instruction sets", Section II-B): w_SIMD = 512, so a chunk
/// holds n_v * 16 deltas and the prefix step runs ceil(log2 16) = 4
/// permute+add rounds. AVX-512VBMI's full-register byte permute
/// (vpermb) replaces the AVX2 per-128-bit-lane shuffle: one 64-byte load
/// feeds any lane of any output vector, so segment pairing is unnecessary.
///
/// Requires AVX-512BW + VBMI at runtime (see Available() below); callers
/// fall back to the AVX2/scalar paths otherwise.

bool Avx512Available();

/// Same contract as DeltaDecodeOffsets (natural-order inclusive running
/// sums starting from `init`), decoded with 512-bit vectors.
void DeltaDecodeOffsetsAvx512(const uint8_t* data, size_t data_size,
                              size_t n, int width, int32_t min_delta, int n_v,
                              int32_t init, int32_t* out);

/// Order-insensitive variant (transposed chunk order, no scatter).
void DeltaDecodeOffsetsAvx512Unordered(const uint8_t* data, size_t data_size,
                                       size_t n, int width, int32_t min_delta,
                                       int n_v, int32_t init, int32_t* out);

/// Natural-order constant-width unpack, 512-bit form: one 64-byte load +
/// masked vpermb + srlv + and yields 16 values per iteration (width <= 25).
/// Same contract as UnpackBE32Avx2.
void UnpackBE32Avx512(const uint8_t* data, size_t data_size, size_t n,
                      int width, uint32_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_TRANSPOSED_UNPACK_AVX512_H_
