#include "simd/rle_flatten.h"

#include <immintrin.h>

#include "common/cpu.h"

namespace etsqp::simd {

size_t FlattenDeltaRunsScalar(const int32_t* deltas, const uint32_t* runs,
                              size_t num_pairs, int32_t first, int32_t* out) {
  size_t pos = 0;
  int32_t value = first;
  for (size_t p = 0; p < num_pairs; ++p) {
    int32_t d = deltas[p];
    for (uint32_t k = 0; k < runs[p]; ++k) {
      value += d;
      out[pos++] = value;
    }
  }
  return pos;
}

size_t FlattenDeltaRunsAvx2(const int32_t* deltas, const uint32_t* runs,
                            size_t num_pairs, int32_t first, int32_t* out) {
  const __m256i ramp = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8);
  size_t pos = 0;
  int32_t value = first;
  for (size_t p = 0; p < num_pairs; ++p) {
    int32_t d = deltas[p];
    uint32_t r = runs[p];
    if (r >= 8) {
      // value + d*[1..8], then step by 8*d per vector.
      __m256i vd = _mm256_set1_epi32(d);
      __m256i v = _mm256_add_epi32(_mm256_set1_epi32(value),
                                   _mm256_mullo_epi32(vd, ramp));
      __m256i step = _mm256_slli_epi32(vd, 3);  // 8*d
      uint32_t full = r / 8;
      for (uint32_t k = 0; k < full; ++k) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + pos), v);
        v = _mm256_add_epi32(v, step);
        pos += 8;
      }
      value += static_cast<int32_t>(full * 8) * d;
      r -= full * 8;
    }
    for (uint32_t k = 0; k < r; ++k) {
      value += d;
      out[pos++] = value;
    }
    if (r == 0) {
      // value already advanced by the vector loop.
    }
  }
  return pos;
}

size_t FlattenDeltaRuns(const int32_t* deltas, const uint32_t* runs,
                        size_t num_pairs, int32_t first, int32_t* out) {
  if (UseAvx2()) {
    return FlattenDeltaRunsAvx2(deltas, runs, num_pairs, first, out);
  }
  return FlattenDeltaRunsScalar(deltas, runs, num_pairs, first, out);
}

}  // namespace etsqp::simd
