#include "simd/delta_simd.h"

#include <immintrin.h>

#include "common/cpu.h"
#include "simd/unpack.h"

namespace etsqp::simd {

void PrefixSumInt32Scalar(int32_t* values, size_t n) {
  int32_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    running += values[i];
    values[i] = running;
  }
}

void PrefixSumInt32Avx2(int32_t* values, size_t n) {
  size_t iters = n / 8;
  __m256i carry = _mm256_setzero_si256();
  for (size_t k = 0; k < iters; ++k) {
    __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + k * 8));
    // Within-128-bit Hillis-Steele steps.
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Add the low half's total (lane 3) to every high-half lane.
    __m256i low_total = _mm256_shuffle_epi32(x, 0xFF);  // lane3 within halves
    low_total = _mm256_permute2x128_si256(low_total, low_total, 0x08);
    // low_total now: low half zero, high half = low half lane3 broadcast.
    x = _mm256_add_epi32(x, low_total);
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + k * 8), x);
    // New carry: lane 7 broadcast.
    carry = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  size_t done = iters * 8;
  if (done < n) {
    int32_t running = done > 0 ? values[done - 1] : 0;
    for (size_t i = done; i < n; ++i) {
      running += values[i];
      values[i] = running;
    }
  }
}

void PrefixSumInt32(int32_t* values, size_t n) {
  if (UseAvx2()) {
    PrefixSumInt32Avx2(values, n);
  } else {
    PrefixSumInt32Scalar(values, n);
  }
}

void SboostDeltaDecode(const uint8_t* data, size_t data_size, size_t n,
                       int width, int32_t min_delta, int32_t init,
                       int32_t* out) {
  if (n == 0) return;
  UnpackBE32(data, data_size, n, width, reinterpret_cast<uint32_t*>(out));
  if (min_delta != 0) {
    for (size_t i = 0; i < n; ++i) out[i] += min_delta;
  }
  out[0] += init;
  PrefixSumInt32(out, n);
}

}  // namespace etsqp::simd
