#ifndef ETSQP_SIMD_STREAMVBYTE_SIMD_H_
#define ETSQP_SIMD_STREAMVBYTE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Vectorized StreamVByte decoding (Plaisance, Kurz & Lemire): each control
/// byte translates through a 256-entry lookup table into shuffle masks, so
/// a group of four variable-length deltas decodes with two PSHUFB ops and
/// zero per-byte branches. Widened to the 64-bit delta classes of the
/// timestamp codec (1/2/4/8-byte little-endian zigzag deltas, two lanes per
/// 128-bit shuffle).
///
/// Decodes `deltas` zigzag deltas from the split (control, data) streams
/// and prefix-sums them onto `first`: out[0] = first, out[i] = out[i-1] +
/// delta_i (wrap-safe). `out` must hold deltas + 1 values. Returns false
/// when the data stream is shorter than the control codes require or
/// longer than they consume — the caller maps that to Corruption.
///
/// Requires SSSE3 (shuffle); the engine gates on UseAvx2() which implies
/// it. Groups within 16 bytes of the data tail fall back to the scalar
/// loop so vector loads never read past the stream.
bool StreamVByteDecodeSse(const uint8_t* control, size_t control_bytes,
                          const uint8_t* data, size_t data_bytes,
                          size_t deltas, int64_t first, int64_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_STREAMVBYTE_SIMD_H_
