#include "simd/fib_simd.h"

#include <bit>

namespace etsqp::simd {

namespace {

/// Loads 8 bytes starting at `byte_start` as a big-endian word, so stream
/// bit (byte_start*8 + r) is word bit (63 - r). Missing bytes read as 0.
inline uint64_t LoadStreamWord(const uint8_t* data, size_t size_bytes,
                               size_t byte_start) {
  uint64_t w = 0;
  for (size_t k = 0; k < 8; ++k) {
    uint8_t b = byte_start + k < size_bytes ? data[byte_start + k] : 0;
    w = (w << 8) | b;
  }
  return w;
}

/// Emits the stream positions of the SECOND bit of every adjacent-1 pair
/// inside the word window. t = w & (w >> 1): bit (62 - r) of t is set iff
/// stream bits r and r+1 (relative to the window) are both 1; the second
/// bit's relative position equals countl_zero of that t bit's mask.
template <typename Fn>
inline void ForEachPairInWord(uint64_t w, size_t window_start_bit, Fn&& fn) {
  uint64_t t = w & (w >> 1);
  while (t != 0) {
    int b = std::countl_zero(t);  // second bit at relative position b
    t &= ~(1ull << (63 - b));
    fn(window_start_bit + static_cast<size_t>(b));
  }
}

}  // namespace

size_t FindFirstTerminator(const uint8_t* data, size_t size_bytes,
                           size_t from_bit, size_t end_bit) {
  size_t byte = from_bit / 8;
  while (byte * 8 < end_bit) {
    size_t best = SIZE_MAX;
    ForEachPairInWord(LoadStreamWord(data, size_bytes, byte), byte * 8,
                      [&](size_t second) {
                        if (second >= from_bit + 1 && second < end_bit &&
                            second < best) {
                          best = second;
                        }
                      });
    if (best != SIZE_MAX) return best;
    byte += 7;  // one-byte overlap covers pairs straddling the window end
  }
  return SIZE_MAX;
}

std::vector<size_t> FindTerminators(const uint8_t* data, size_t size_bytes,
                                    size_t from_bit, size_t end_bit) {
  std::vector<size_t> out;
  size_t byte = from_bit / 8;
  while (byte * 8 < end_bit) {
    ForEachPairInWord(LoadStreamWord(data, size_bytes, byte), byte * 8,
                      [&](size_t second) {
                        if (second >= from_bit + 1 && second < end_bit &&
                            (out.empty() || second > out.back())) {
                          out.push_back(second);
                        }
                      });
    byte += 7;
  }
  return out;
}

}  // namespace etsqp::simd
