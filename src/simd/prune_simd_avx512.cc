#include "simd/prune_simd.h"

#include <immintrin.h>

namespace etsqp::simd {

// 8 bounds per step: two (or four, with a value filter) cmp_epi64_mask ops
// produce an 8-bit dead mask directly — no movemask extraction. One 64-wide
// index node is covered by 8 iterations.
size_t PruneScanAvx512(const int64_t* time_min, const int64_t* time_max,
                       const int64_t* value_min, const int64_t* value_max,
                       size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                       int64_t v_lo, int64_t v_hi, uint64_t* survivors) {
  for (size_t w = 0; w < (n + 63) / 64; ++w) survivors[w] = 0;
  const __m512i t_lo_v = _mm512_set1_epi64(t_lo);
  const __m512i t_hi_v = _mm512_set1_epi64(t_hi);
  const __m512i v_lo_v = _mm512_set1_epi64(v_lo);
  const __m512i v_hi_v = _mm512_set1_epi64(v_hi);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i tmin = _mm512_loadu_si512(time_min + i);
    __m512i tmax = _mm512_loadu_si512(time_max + i);
    __mmask8 dead = _mm512_cmpgt_epi64_mask(tmin, t_hi_v) |
                    _mm512_cmpgt_epi64_mask(t_lo_v, tmax);
    if (value_active) {
      __m512i vmin = _mm512_loadu_si512(value_min + i);
      __m512i vmax = _mm512_loadu_si512(value_max + i);
      dead |= _mm512_cmpgt_epi64_mask(vmin, v_hi_v) |
              _mm512_cmpgt_epi64_mask(v_lo_v, vmax);
    }
    uint64_t live = static_cast<uint8_t>(~static_cast<unsigned>(dead));
    survivors[i >> 6] |= live << (i & 63);
    count += static_cast<size_t>(__builtin_popcountll(live));
  }
  for (; i < n; ++i) {
    bool live = time_min[i] <= t_hi && time_max[i] >= t_lo &&
                (!value_active ||
                 (value_min[i] <= v_hi && value_max[i] >= v_lo));
    if (live) {
      survivors[i >> 6] |= uint64_t{1} << (i & 63);
      ++count;
    }
  }
  return count;
}

}  // namespace etsqp::simd
