#ifndef ETSQP_SIMD_AGG_SIMD_H_
#define ETSQP_SIMD_AGG_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Vectorized valid-value aggregation kernels (paper Definition 2's
/// f(e, mask)). Values are 32-bit offsets; accumulation widens to 64-bit
/// lanes, so per-kernel overflow is impossible for < 2^32 inputs. The final
/// combination across kernels uses the checked 64-bit helpers below,
/// implementing the lane-sign overflow detection of Section VI-C.

/// Sum of values[i] where mask bit i is set.
int64_t MaskedSumInt32(const int32_t* values, const uint64_t* mask, size_t n);

/// Min/max of selected values. Returns false when no bit is set.
bool MaskedMinMaxInt32(const int32_t* values, const uint64_t* mask, size_t n,
                       int32_t* min_out, int32_t* max_out);

/// Unmasked sum (aggregation after pruning already cut the range).
int64_t SumInt32(const int32_t* values, size_t n);

/// Unmasked min/max over n > 0 values.
void MinMaxInt32(const int32_t* values, size_t n, int32_t* min_out,
                 int32_t* max_out);

/// Descending-ramp weighted sum: sum_{i<n} (n - i) * values[i].
/// This is the fused-SUM kernel of Section IV: for TS2DIFF,
/// sum of a decoded range = count*X_a + sum (count-i)*(base+d_i), so SUM
/// aggregates directly over unpacked deltas with no Delta accumulation.
int64_t WeightedRampSumInt32(const int32_t* values, size_t n);

/// Forced-path variants.
int64_t MaskedSumInt32Scalar(const int32_t* values, const uint64_t* mask,
                             size_t n);
int64_t MaskedSumInt32Avx2(const int32_t* values, const uint64_t* mask,
                           size_t n);
int64_t WeightedRampSumInt32Scalar(const int32_t* values, size_t n);
int64_t WeightedRampSumInt32Avx2(const int32_t* values, size_t n);

/// Checked 64-bit accumulation (Section VI-C): returns false on overflow,
/// detected by comparing operand and result lane signs.
bool CheckedAddInt64(int64_t a, int64_t b, int64_t* out);
bool CheckedSumInt64(const int64_t* values, size_t n, int64_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_AGG_SIMD_H_
