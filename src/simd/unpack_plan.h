#ifndef ETSQP_SIMD_UNPACK_PLAN_H_
#define ETSQP_SIMD_UNPACK_PLAN_H_

#include <array>
#include <cstdint>
#include <vector>

namespace etsqp::simd {

/// Decode-plan generation — the library's equivalent of the paper's
/// just-in-time decoder generator (Section III-B). For each packing width
/// (and, for the transposed layout, each vector count n_v) we precompute the
/// shuffle-index, bit-shift, and mask vectors that Algorithm 1 looks up at
/// Lines 8-9/13. Plans are built on first use and cached for the process
/// lifetime, so steady-state decoding performs no plan computation.

/// Plan for natural-order unpacking of `width`-bit Big-Endian packed values
/// into 32-bit lanes. One iteration decodes 8 values from `width` bytes.
///
/// Fast path (width <= 25): every value's bit window fits 4 bytes. The lower
/// 128-bit half shuffles values 0-3 from a 16-byte load at the iteration
/// base; the upper half shuffles values 4-7 from a load at `hi_offset`.
/// Wide path (26 <= width <= 32): values are extracted in 64-bit lanes, four
/// per step, two steps per iteration.
struct UnpackPlan {
  int width = 0;
  int bytes_per_iter = 0;  // == width (8 values of `width` bits)
  bool wide = false;

  // Fast path.
  int hi_offset = 0;
  alignas(32) uint8_t shuffle[32] = {};
  alignas(32) uint32_t shift[8] = {};
  uint32_t mask = 0;

  // Wide path: step s handles values 4s..4s+3 in 64-bit lanes.
  struct WideStep {
    int lo_offset = 0;  // byte offset of the lower-half 16-byte load
    int hi_offset = 0;  // byte offset of the upper-half 16-byte load
    alignas(32) uint8_t shuffle[32] = {};
    alignas(32) uint64_t shift[4] = {};
  };
  WideStep steps[2];
  uint64_t mask64 = 0;
};

/// Returns the cached plan for `width` (1..32).
const UnpackPlan& GetUnpackPlan(int width);

/// Plan for unpacking straight into the transposed Delta-decoding layout of
/// Algorithm 1 / Figures 4-6. A chunk holds n_v * 8 values in `n_v * width`
/// bytes. Value c (natural order) lands in vector j = c % n_v, 32-bit lane
/// l = c / n_v, so consecutive deltas share a lane across consecutive
/// vectors — the property Delta recovery needs (partial sums are lane-wise
/// vector adds).
///
/// The paper's Figure 6 interleaves lanes across the two 128-bit halves
/// because its loads broadcast one 16-byte segment to both halves. We
/// instead pair two independent 16-byte loads per segment — the lower half
/// reads the window holding values [0, 4 n_v) of the chunk, the upper half
/// the window holding values [4 n_v, 8 n_v) — which doubles the lanes filled
/// per shuffle and makes the lane <-> position mapping the identity (the
/// prefix-sum step then needs no permute to logical order). Same algorithm,
/// tighter instruction count; an extension the paper explicitly invites
/// ("easy to extend to other quantities and instruction sets").
struct TransposedPlan {
  int width = 0;
  int n_v = 0;
  int values_per_chunk = 0;  // n_v * 8
  int bytes_per_chunk = 0;   // n_v * width

  struct Segment {
    int lo_offset = 0;  // 16-byte load feeding lanes 0-3 (0x80 pad allowed)
    int hi_offset = 0;  // 16-byte load feeding lanes 4-7
  };
  std::vector<Segment> segments;

  /// shuffles[s * n_v + j]: 32-byte shuffle index applying segment s to
  /// output vector j (0x80 bytes produce zero — lanes not fed by s).
  std::vector<std::array<uint8_t, 32>> shuffles;
  /// skip[s * n_v + j]: true when segment s feeds no lane of vector j.
  std::vector<uint8_t> skip;
  /// Per-output-vector logical right shift for each 32-bit lane.
  std::vector<std::array<uint32_t, 8>> shifts;
  uint32_t mask = 0;
};

/// Returns the cached plan for (width 1..25, n_v 1..16). The transposed SIMD
/// path requires width <= 25 so every value window fits 4 bytes; wider
/// widths use the scalar fallback.
const TransposedPlan& GetTransposedPlan(int width, int n_v);

/// Lane l <-> value group g mapping of the transposed layout (identity in
/// this implementation; see TransposedPlan).
inline int LaneToGroup(int lane) { return lane; }
inline int GroupToLane(int group) { return group; }

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_UNPACK_PLAN_H_
