#ifndef ETSQP_SIMD_MERGE_SIMD_H_
#define ETSQP_SIMD_MERGE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace etsqp::simd {

/// Sorted-timestamp merge/intersection kernel family (paper Eq. 5-6 merge
/// nodes; technique of Lemire & Boytsov, "SIMD Compression and the
/// Intersection of Sorted Integers"). All kernels operate on ascending
/// int64 timestamp columns. Two-way kernels tolerate duplicate timestamps
/// within an input (equal runs pair element-wise: the k-th occurrence on
/// the left matches the k-th on the right, so a run contributes
/// min(run_l, run_r) pairs — the same semantics as the scalar two-pointer
/// drain they replace). N-way kernels assume strictly increasing
/// timestamps per stream, which series snapshots guarantee.
///
/// Every SIMD kernel has a scalar reference with identical output; the
/// differential suites in tests/ assert byte-identical results across all
/// ISA variants.

/// Which datapath a merge kernel runs on. Selected per plan through the
/// SchedulerRegistry's etsqp.merge.* entries; BestMergeIsa() is the
/// registry-off fallback and honors SetSimdDisabledForTesting.
enum class MergeIsa { kScalar = 0, kSse = 1, kAvx2 = 2, kAvx512 = 3 };

MergeIsa BestMergeIsa();

/// One sorted input of an N-way merge/intersection. `values` may be null
/// for time-only intersection.
struct MergeStream {
  const int64_t* times = nullptr;
  const int64_t* values = nullptr;
  size_t n = 0;
};

/// --- Two-way sorted intersection -----------------------------------------
/// Emits matching index pairs: out_l[k] / out_r[k] index the k-th matching
/// tuple on each side, in ascending time order. Both outputs must hold
/// min(nl, nr) entries (inputs are capped at UINT32_MAX tuples — a page set
/// materializes far below that). Returns the number of pairs.

size_t IntersectIndicesInt64Scalar(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r);
size_t IntersectIndicesInt64Sse(const int64_t* l, size_t nl, const int64_t* r,
                                size_t nr, uint32_t* out_l, uint32_t* out_r);
size_t IntersectIndicesInt64Avx2(const int64_t* l, size_t nl, const int64_t* r,
                                 size_t nr, uint32_t* out_l, uint32_t* out_r);
/// Defined in merge_simd_avx512.cc (own compile flags); callers must check
/// Avx512Available() — the dispatcher below does.
size_t IntersectIndicesInt64Avx512(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r);

/// Galloping intersection for skewed sizes: iterates the short side and
/// advances the long side by exponential + binary search (Lemire & Boytsov
/// Section 4) — O(ns log(nl/ns)) instead of scanning the long side.
size_t GallopIntersectIndicesInt64(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r);

/// Dispatcher: galloping when one side is kGallopRatio x longer than the
/// other, else the widest block-skip kernel `isa` allows (AVX-512 falls
/// back to AVX2 when unavailable at runtime).
size_t IntersectIndicesInt64(const int64_t* l, size_t nl, const int64_t* r,
                             size_t nr, uint32_t* out_l, uint32_t* out_r,
                             MergeIsa isa);
inline size_t IntersectIndicesInt64(const int64_t* l, size_t nl,
                                    const int64_t* r, size_t nr,
                                    uint32_t* out_l, uint32_t* out_r) {
  return IntersectIndicesInt64(l, nl, r, nr, out_l, out_r, BestMergeIsa());
}

/// --- Two-way union merge (Q5 concatenation, Eq. 5) -----------------------
/// Merges two (time, value) streams into out_t/out_v (sized nl + nr).
/// Equal timestamps emit the left tuple first. Returns nl + nr.

size_t MergeUnionInt64Scalar(const int64_t* lt, const int64_t* lv, size_t nl,
                             const int64_t* rt, const int64_t* rv, size_t nr,
                             int64_t* out_t, int64_t* out_v);
/// SIMD run-skip variant: vector compares find how far one side runs below
/// the other's head, then the whole run bulk-copies.
size_t MergeUnionInt64(const int64_t* lt, const int64_t* lv, size_t nl,
                       const int64_t* rt, const int64_t* rv, size_t nr,
                       int64_t* out_t, int64_t* out_v, MergeIsa isa);

/// --- N-way merge / intersection ------------------------------------------

/// Loser-tree union of k streams into out_t/out_v (sized sum of stream
/// lengths). Ties order by stream index (lowest first). The SIMD variant
/// extends each tournament win into a run: the next challenger's key bounds
/// how far the winning stream can bulk-copy before replaying the tree.
size_t NwayMergeUnionScalar(const MergeStream* streams, size_t k,
                            int64_t* out_t, int64_t* out_v);
size_t NwayMergeUnion(const MergeStream* streams, size_t k, int64_t* out_t,
                      int64_t* out_v, MergeIsa isa);

/// Timestamps present in all k streams. The scalar reference is the
/// k-pointer drain (linear scans); the SIMD variant folds streams pairwise,
/// smallest first, through the galloping/block-skip intersection so the
/// candidate set shrinks before the large streams are touched.
size_t NwayIntersectScalar(const MergeStream* streams, size_t k,
                           std::vector<int64_t>* out);
size_t NwayIntersect(const MergeStream* streams, size_t k,
                     std::vector<int64_t>* out, MergeIsa isa);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_MERGE_SIMD_H_
