#include "simd/filter_simd.h"

#include <immintrin.h>

#include <bit>
#include <cstring>

#include "common/bit_util.h"
#include "common/cpu.h"

namespace etsqp::simd {

void RangeFilterMaskInt32Scalar(const int32_t* values, size_t n, int32_t lo,
                                int32_t hi, uint64_t* mask) {
  size_t words = CeilDiv(n, 64);
  std::memset(mask, 0, words * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      mask[i >> 6] |= 1ull << (i & 63);
    }
  }
}

void RangeFilterMaskInt32Avx2(const int32_t* values, size_t n, int32_t lo,
                              int32_t hi, uint64_t* mask) {
  size_t words = CeilDiv(n, 64);
  std::memset(mask, 0, words * sizeof(uint64_t));
  const __m256i vlo = _mm256_set1_epi32(lo);
  const __m256i vhi = _mm256_set1_epi32(hi);
  size_t iters = n / 8;
  for (size_t k = 0; k < iters; ++k) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + k * 8));
    // v >= lo  <=>  !(lo > v);  v <= hi  <=>  !(v > hi)
    __m256i ge = _mm256_cmpgt_epi32(vlo, v);
    __m256i le = _mm256_cmpgt_epi32(v, vhi);
    __m256i bad = _mm256_or_si256(ge, le);
    uint32_t lanes = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(bad)));
    uint64_t good = (~static_cast<uint64_t>(lanes)) & 0xFFu;
    size_t bit = k * 8;
    mask[bit >> 6] |= good << (bit & 63);
  }
  for (size_t i = iters * 8; i < n; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      mask[i >> 6] |= 1ull << (i & 63);
    }
  }
}

void RangeFilterMaskInt32(const int32_t* values, size_t n, int32_t lo,
                          int32_t hi, uint64_t* mask) {
  if (UseAvx2()) {
    RangeFilterMaskInt32Avx2(values, n, lo, hi, mask);
  } else {
    RangeFilterMaskInt32Scalar(values, n, lo, hi, mask);
  }
}

size_t CountMaskBits(const uint64_t* mask, size_t n) {
  size_t count = 0;
  size_t words = n / 64;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(mask[w]));
  }
  size_t rem = n & 63;
  if (rem != 0) {
    count += static_cast<size_t>(std::popcount(mask[words] & MaskLow64(static_cast<int>(rem))));
  }
  return count;
}

void AndMasks(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out) {
  size_t words = CeilDiv(n, 64);
  for (size_t w = 0; w < words; ++w) out[w] = a[w] & b[w];
}

size_t JoinMasksInt64(const int64_t* l, size_t nl, const int64_t* r,
                      size_t nr, uint64_t* mask_l, uint64_t* mask_r) {
  std::memset(mask_l, 0, CeilDiv(nl, 64) * sizeof(uint64_t));
  std::memset(mask_r, 0, CeilDiv(nr, 64) * sizeof(uint64_t));
  size_t i = 0, j = 0, matches = 0;
  const bool avx2 = UseAvx2();
  while (i < nl && j < nr) {
    if (avx2 && i + 4 <= nl) {
      // Block skip: if the next 4 left values are all below r[j], none can
      // match — advance 4 at once (and symmetrically for the right side).
      __m256i lv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(l + i));
      __m256i rj = _mm256_set1_epi64x(r[j]);
      if (_mm256_movemask_pd(_mm256_castsi256_pd(
              _mm256_cmpgt_epi64(rj, lv))) == 0xF) {
        i += 4;
        continue;
      }
    }
    if (avx2 && j + 4 <= nr) {
      __m256i rv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(r + j));
      __m256i li = _mm256_set1_epi64x(l[i]);
      if (_mm256_movemask_pd(_mm256_castsi256_pd(
              _mm256_cmpgt_epi64(li, rv))) == 0xF) {
        j += 4;
        continue;
      }
    }
    if (l[i] < r[j]) {
      ++i;
    } else if (l[i] > r[j]) {
      ++j;
    } else {
      mask_l[i >> 6] |= 1ull << (i & 63);
      mask_r[j >> 6] |= 1ull << (j & 63);
      ++matches;
      ++i;
      ++j;
    }
  }
  return matches;
}

}  // namespace etsqp::simd
