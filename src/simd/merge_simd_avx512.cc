#include <immintrin.h>

#include "simd/merge_simd.h"
#include "simd/transposed_unpack_avx512.h"

namespace etsqp::simd {

/// AVX-512 block-skip intersection: 8-lane compares against the opposite
/// head advance whole blocks past non-overlapping stretches. Same output
/// contract as the scalar/AVX2 kernels. This translation unit carries the
/// -mavx512* flags; callers must gate on Avx512Available() (the dispatcher
/// in merge_simd.cc does), and this function re-checks defensively.
size_t IntersectIndicesInt64Avx512(const int64_t* l, size_t nl,
                                   const int64_t* r, size_t nr,
                                   uint32_t* out_l, uint32_t* out_r) {
  if (!Avx512Available()) {
    return IntersectIndicesInt64Avx2(l, nl, r, nr, out_l, out_r);
  }
  size_t i = 0, j = 0, m = 0;
  while (i < nl && j < nr) {
    // Aligned-run fast path (see the SSE kernel): 8 pairwise-equal lanes
    // emit as a block.
    if (i + 8 <= nl && j + 8 <= nr) {
      __m512i lv = _mm512_loadu_si512(l + i);
      __m512i rv = _mm512_loadu_si512(r + j);
      if (_mm512_cmpeq_epi64_mask(lv, rv) == 0xFF) {
        const __m256i ramp = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out_l + m),
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i)), ramp));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out_r + m),
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(j)), ramp));
        m += 8;
        i += 8;
        j += 8;
        continue;
      }
    }
    if (i + 8 <= nl) {
      __m512i lv = _mm512_loadu_si512(l + i);
      if (_mm512_cmplt_epi64_mask(lv, _mm512_set1_epi64(r[j])) == 0xFF) {
        i += 8;
        continue;
      }
    }
    if (j + 8 <= nr) {
      __m512i rv = _mm512_loadu_si512(r + j);
      if (_mm512_cmplt_epi64_mask(rv, _mm512_set1_epi64(l[i])) == 0xFF) {
        j += 8;
        continue;
      }
    }
    if (l[i] < r[j]) {
      ++i;
    } else if (r[j] < l[i]) {
      ++j;
    } else {
      out_l[m] = static_cast<uint32_t>(i);
      out_r[m] = static_cast<uint32_t>(j);
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

}  // namespace etsqp::simd
