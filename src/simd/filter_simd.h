#ifndef ETSQP_SIMD_FILTER_SIMD_H_
#define ETSQP_SIMD_FILTER_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Vectorized range filters producing bit masks (paper Definition 2's filter
/// operator; one bit per tuple, 1 = satisfies the predicate). Masks are
/// stored as packed uint64 words, LSB = lowest tuple index within the word.

/// mask[i] = (lo <= values[i] <= hi). `mask` must hold CeilDiv(n, 64) words;
/// bits past n are zero.
void RangeFilterMaskInt32(const int32_t* values, size_t n, int32_t lo,
                          int32_t hi, uint64_t* mask);

/// Forced-path variants.
void RangeFilterMaskInt32Scalar(const int32_t* values, size_t n, int32_t lo,
                                int32_t hi, uint64_t* mask);
void RangeFilterMaskInt32Avx2(const int32_t* values, size_t n, int32_t lo,
                              int32_t hi, uint64_t* mask);

/// Number of set bits among the first n bits of `mask`.
size_t CountMaskBits(const uint64_t* mask, size_t n);

/// mask_out = mask_a AND mask_b over n bits (conjunctive predicates /
/// natural-join masks shared across columns, paper Eq. 6).
void AndMasks(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);

/// Natural-join masks over two sorted timestamp columns (Definition 2 /
/// Eq. 6): mask_l bit i = exists j with l[i] == r[j], and vice versa. The
/// masks are what binary operators apply to the value columns of both
/// inputs. Merge-based with an AVX2 block-skip: 8-lane compares advance
/// past non-overlapping stretches without per-element work. Returns the
/// number of matching pairs.
size_t JoinMasksInt64(const int64_t* l, size_t nl, const int64_t* r,
                      size_t nr, uint64_t* mask_l, uint64_t* mask_r);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_FILTER_SIMD_H_
