#ifndef ETSQP_SIMD_FIB_SIMD_H_
#define ETSQP_SIMD_FIB_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace etsqp::simd {

/// Variable-width (Fibonacci) stream support (paper Figure 7 and Section
/// III-C). Every Fibonacci codeword ends in "11"; computing (V >> 1) & V
/// over the bit stream exposes the terminator positions, which lets a page
/// slice resynchronize: a thread assigned an arbitrary bit range starts
/// decoding after the first terminator inside its range ("unpack one more
/// value from the end and drop the bits of an incomplete value in the
/// front").

/// Returns the bit position (0-based, Big-Endian bit order: bit 0 is the MSB
/// of byte 0) of the first "11" terminator at or after `from_bit`, or
/// SIZE_MAX when none exists before `end_bit`. The second 1 of the pair is
/// the reported position.
size_t FindFirstTerminator(const uint8_t* data, size_t size_bytes,
                           size_t from_bit, size_t end_bit);

/// Collects all terminator end positions in [from_bit, end_bit) using the
/// word-at-a-time (V >> 1) & V kernel. Used by tests and by the slice
/// planner to estimate element counts.
std::vector<size_t> FindTerminators(const uint8_t* data, size_t size_bytes,
                                    size_t from_bit, size_t end_bit);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_FIB_SIMD_H_
