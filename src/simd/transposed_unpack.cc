#include "simd/transposed_unpack.h"

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "simd/transposed_unpack_avx512.h"
#include "simd/unpack_plan.h"

namespace etsqp::simd {

int DefaultNumVectors(int width) {
  if (width < 1) return 1;
  if (width > 25) return 1;  // scalar path anyway
  // Proposition 1: n_v* = sqrt( (w'/w) * (t_prefix - t_add) / t_unpack ).
  // Measured instruction-cost ratio (t_prefix - t_add) / t_unpack ~ 11/2,
  // the constant the paper uses for its Figure 4 example.
  double target = std::sqrt(32.0 / width * 5.5);
  // Feasible layouts fill each unpacked vector from alpha lanes of every
  // loaded vector: n_v in {ceil(V / alpha)} with V values per 128-bit load.
  int v_per_seg = 128 / width;
  int best = 0;
  for (int alpha = 1; alpha <= 8; alpha *= 2) {
    int cand = (v_per_seg + alpha - 1) / alpha;
    cand = std::min(cand, 16);
    if (cand >= static_cast<int>(std::lround(target))) {
      if (best == 0 || cand < best) best = cand;
    }
  }
  if (best == 0) best = std::min(v_per_seg, 16);
  return std::max(best, 1);
}

void DeltaDecodeOffsetsScalar(const uint8_t* data, size_t data_size, size_t n,
                              int width, int32_t min_delta, int32_t init,
                              int32_t* out) {
  int32_t running = init;
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) {
      running += min_delta;
      out[i] = running;
    }
    return;
  }
  size_t pos = 0;
  (void)data_size;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = static_cast<uint32_t>(enc::UnpackOneBE(data, pos, width));
    pos += width;
    running += min_delta + static_cast<int32_t>(r);
    out[i] = running;
  }
}

namespace {

const __m256i kShift1 = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
const __m256i kShift2 = _mm256_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5);
const __m256i kShift4 = _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3);

/// Shifts lanes towards higher indices by `k`, filling with zeros.
inline __m256i ShiftUp1(__m256i x) {
  return _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, kShift1),
                            _mm256_setzero_si256(), 0x01);
}
inline __m256i ShiftUp2(__m256i x) {
  return _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, kShift2),
                            _mm256_setzero_si256(), 0x03);
}
inline __m256i ShiftUp4(__m256i x) {
  return _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, kShift4),
                            _mm256_setzero_si256(), 0x0F);
}

}  // namespace

namespace {

/// Chunk kernel templated on the vector count so v[0..NV) stay in YMM
/// registers (a runtime-indexed array would spill to the stack) — the
/// register sharing Algorithm 1 assumes.
template <int NV, bool kNaturalOrder>
void DeltaChunksAvx2(const TransposedPlan& plan, const uint8_t* data,
                     size_t chunks, int32_t min_delta, int32_t init,
                     int32_t* out, int32_t* base_out) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(plan.mask));
  const __m256i vmind = _mm256_set1_epi32(min_delta);
  const __m256i lane7 = _mm256_set1_epi32(7);
  __m256i base_vec = _mm256_set1_epi32(init);
  alignas(32) int32_t tmp[NV * 8];
  const uint8_t* src = data;
  const size_t num_segments = plan.segments.size();
  const size_t chunk_values = static_cast<size_t>(NV) * 8;

  for (size_t c = 0; c < chunks; ++c) {
    // --- Lines 3-9: load paired segments, shuffle into the transposed
    // layout, shift and mask.
    __m256i v[NV];
    for (int j = 0; j < NV; ++j) v[j] = _mm256_setzero_si256();
    for (size_t s = 0; s < num_segments; ++s) {
      __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          src + plan.segments[s].lo_offset));
      __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          src + plan.segments[s].hi_offset));
      __m256i seg = _mm256_set_m128i(hi, lo);
      const auto* shufs = &plan.shuffles[s * NV];
      const uint8_t* skip = &plan.skip[s * NV];
      for (int j = 0; j < NV; ++j) {
        if (skip[j]) continue;
        __m256i shuf = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(shufs[j].data()));
        v[j] = _mm256_or_si256(v[j], _mm256_shuffle_epi8(seg, shuf));
      }
    }
    for (int j = 0; j < NV; ++j) {
      __m256i shift = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(plan.shifts[j].data()));
      v[j] = _mm256_and_si256(_mm256_srlv_epi32(v[j], shift), vmask);
      v[j] = _mm256_add_epi32(v[j], vmind);  // residual -> actual delta
    }

    // --- Lines 11-12: partial sums within each lane.
    for (int j = 1; j < NV; ++j) {
      v[j] = _mm256_add_epi32(v[j], v[j - 1]);
    }

    // --- Line 13: prefix vector across lanes via permute+add (identity
    // lane mapping: totals are already in logical order).
    __m256i totals = v[NV - 1];
    __m256i e = ShiftUp1(totals);  // exclusive base
    e = _mm256_add_epi32(e, ShiftUp1(e));
    e = _mm256_add_epi32(e, ShiftUp2(e));
    e = _mm256_add_epi32(e, ShiftUp4(e));
    __m256i incl = _mm256_add_epi32(e, totals);  // inclusive lane prefix
    __m256i prefix = _mm256_add_epi32(e, base_vec);

    // --- Lines 14-15: add prefix + running base to every vector.
    int32_t* dst = out + c * chunk_values;
    if constexpr (kNaturalOrder) {
      for (int j = 0; j < NV; ++j) {
        v[j] = _mm256_add_epi32(v[j], prefix);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + j * 8), v[j]);
      }
      // Scatter the transposed lanes back to natural order (value
      // g*NV + j sits in vector j, lane g).
      for (int g = 0; g < 8; ++g) {
        for (int j = 0; j < NV; ++j) {
          dst[g * NV + j] = tmp[j * 8 + g];
        }
      }
    } else {
      // Register sharing: consumers accept the transposed layout, so the
      // vectors stream straight to memory.
      for (int j = 0; j < NV; ++j) {
        v[j] = _mm256_add_epi32(v[j], prefix);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j * 8), v[j]);
      }
    }
    // Carry the chunk total (lane 7 of the inclusive prefix) forward
    // without leaving the vector domain.
    base_vec = _mm256_add_epi32(base_vec,
                                _mm256_permutevar8x32_epi32(incl, lane7));
    src += plan.bytes_per_chunk;
  }
  *base_out = _mm256_extract_epi32(base_vec, 0);
}

template <bool kNaturalOrder>
void DeltaDecodeOffsetsAvx2Impl(const uint8_t* data, size_t data_size,
                                size_t n, int width, int32_t min_delta,
                                int n_v, int32_t init, int32_t* out) {
  if (width == 0 || width > 25) {
    DeltaDecodeOffsetsScalar(data, data_size, n, width, min_delta, init, out);
    return;
  }
  if (n_v <= 0) n_v = DefaultNumVectors(width);
  n_v = std::clamp(n_v, 1, 16);
  const TransposedPlan& plan = GetTransposedPlan(width, n_v);
  const size_t chunk_values = static_cast<size_t>(plan.values_per_chunk);
  const size_t chunks = n / chunk_values;

  int32_t base = init;
  switch (n_v) {
#define ETSQP_NV_CASE(NV)                                                  \
  case NV:                                                                 \
    DeltaChunksAvx2<NV, kNaturalOrder>(plan, data, chunks, min_delta, init, \
                                       out, &base);                        \
    break;
    ETSQP_NV_CASE(1)
    ETSQP_NV_CASE(2)
    ETSQP_NV_CASE(3)
    ETSQP_NV_CASE(4)
    ETSQP_NV_CASE(5)
    ETSQP_NV_CASE(6)
    ETSQP_NV_CASE(7)
    ETSQP_NV_CASE(8)
    ETSQP_NV_CASE(9)
    ETSQP_NV_CASE(10)
    ETSQP_NV_CASE(11)
    ETSQP_NV_CASE(12)
    ETSQP_NV_CASE(13)
    ETSQP_NV_CASE(14)
    ETSQP_NV_CASE(15)
    ETSQP_NV_CASE(16)
#undef ETSQP_NV_CASE
    default:
      break;
  }

  // Scalar tail, continuing from the running base.
  size_t done = chunks * chunk_values;
  if (done < n) {
    size_t pos = done * static_cast<size_t>(width);
    int32_t running = base;
    for (size_t i = done; i < n; ++i) {
      uint32_t r = static_cast<uint32_t>(enc::UnpackOneBE(data, pos, width));
      pos += width;
      running += min_delta + static_cast<int32_t>(r);
      out[i] = running;
    }
  }
  (void)data_size;
}

}  // namespace

void DeltaDecodeOffsetsAvx2(const uint8_t* data, size_t data_size, size_t n,
                            int width, int32_t min_delta, int n_v,
                            int32_t init, int32_t* out) {
  DeltaDecodeOffsetsAvx2Impl<true>(data, data_size, n, width, min_delta, n_v,
                                   init, out);
}

void DeltaDecodeOffsetsAvx2Unordered(const uint8_t* data, size_t data_size,
                                     size_t n, int width, int32_t min_delta,
                                     int n_v, int32_t init, int32_t* out) {
  DeltaDecodeOffsetsAvx2Impl<false>(data, data_size, n, width, min_delta, n_v,
                                    init, out);
}

void DeltaDecodeOffsets(const uint8_t* data, size_t data_size, size_t n,
                        int width, int32_t min_delta, int n_v, int32_t init,
                        int32_t* out) {
  if (Avx512Available()) {
    // w_SIMD = 512: 16-lane chunks amortize the prefix permutes, so fewer
    // vectors are optimal (measured; cf. Proposition 1's w_SIMD term).
    DeltaDecodeOffsetsAvx512(data, data_size, n, width, min_delta,
                             n_v == 0 ? 2 : n_v, init, out);
  } else if (UseAvx2()) {
    DeltaDecodeOffsetsAvx2(data, data_size, n, width, min_delta, n_v, init,
                           out);
  } else {
    DeltaDecodeOffsetsScalar(data, data_size, n, width, min_delta, init, out);
  }
}

void DeltaDecodeOffsetsUnordered(const uint8_t* data, size_t data_size,
                                 size_t n, int width, int32_t min_delta,
                                 int n_v, int32_t init, int32_t* out) {
  if (Avx512Available()) {
    DeltaDecodeOffsetsAvx512Unordered(data, data_size, n, width, min_delta,
                                      n_v == 0 ? 2 : n_v, init, out);
  } else if (UseAvx2()) {
    DeltaDecodeOffsetsAvx2Impl<false>(data, data_size, n, width, min_delta,
                                      n_v, init, out);
  } else {
    DeltaDecodeOffsetsScalar(data, data_size, n, width, min_delta, init, out);
  }
}

}  // namespace etsqp::simd
