#include "simd/prune_simd.h"

#include <immintrin.h>

#include "common/cpu.h"
#include "simd/transposed_unpack_avx512.h"

namespace etsqp::simd {

namespace {

inline size_t MaskWords(size_t n) { return (n + 63) / 64; }

inline bool EntrySurvives(const int64_t* time_min, const int64_t* time_max,
                          const int64_t* value_min, const int64_t* value_max,
                          size_t i, int64_t t_lo, int64_t t_hi,
                          bool value_active, int64_t v_lo, int64_t v_hi) {
  if (time_min[i] > t_hi || time_max[i] < t_lo) return false;
  if (value_active && (value_min[i] > v_hi || value_max[i] < v_lo)) {
    return false;
  }
  return true;
}

}  // namespace

PruneIsa BestPruneIsa() {
  if (!UseAvx2()) return PruneIsa::kScalar;
  return Avx512Available() ? PruneIsa::kAvx512 : PruneIsa::kAvx2;
}

size_t PruneScanScalar(const int64_t* time_min, const int64_t* time_max,
                       const int64_t* value_min, const int64_t* value_max,
                       size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                       int64_t v_lo, int64_t v_hi, uint64_t* survivors) {
  for (size_t w = 0; w < MaskWords(n); ++w) survivors[w] = 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (EntrySurvives(time_min, time_max, value_min, value_max, i, t_lo, t_hi,
                      value_active, v_lo, v_hi)) {
      survivors[i >> 6] |= uint64_t{1} << (i & 63);
      ++count;
    }
  }
  return count;
}

size_t PruneScanAvx2(const int64_t* time_min, const int64_t* time_max,
                     const int64_t* value_min, const int64_t* value_max,
                     size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                     int64_t v_lo, int64_t v_hi, uint64_t* survivors) {
  for (size_t w = 0; w < MaskWords(n); ++w) survivors[w] = 0;
  const __m256i t_lo_v = _mm256_set1_epi64x(t_lo);
  const __m256i t_hi_v = _mm256_set1_epi64x(t_hi);
  const __m256i v_lo_v = _mm256_set1_epi64x(v_lo);
  const __m256i v_hi_v = _mm256_set1_epi64x(v_hi);
  size_t count = 0;
  size_t i = 0;
  // 4 entries per step; the step divides 64, so the 4 live bits never
  // straddle a mask word.
  for (; i + 4 <= n; i += 4) {
    __m256i tmin = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(time_min + i));
    __m256i tmax = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(time_max + i));
    __m256i dead = _mm256_or_si256(_mm256_cmpgt_epi64(tmin, t_hi_v),
                                   _mm256_cmpgt_epi64(t_lo_v, tmax));
    if (value_active) {
      __m256i vmin = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(value_min + i));
      __m256i vmax = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(value_max + i));
      dead = _mm256_or_si256(
          dead, _mm256_or_si256(_mm256_cmpgt_epi64(vmin, v_hi_v),
                                _mm256_cmpgt_epi64(v_lo_v, vmax)));
    }
    uint64_t dead_bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(dead)));
    uint64_t live = ~dead_bits & 0xFull;
    survivors[i >> 6] |= live << (i & 63);
    count += static_cast<size_t>(__builtin_popcountll(live));
  }
  for (; i < n; ++i) {
    if (EntrySurvives(time_min, time_max, value_min, value_max, i, t_lo, t_hi,
                      value_active, v_lo, v_hi)) {
      survivors[i >> 6] |= uint64_t{1} << (i & 63);
      ++count;
    }
  }
  return count;
}

size_t PruneScan(const int64_t* time_min, const int64_t* time_max,
                 const int64_t* value_min, const int64_t* value_max, size_t n,
                 int64_t t_lo, int64_t t_hi, bool value_active, int64_t v_lo,
                 int64_t v_hi, uint64_t* survivors, PruneIsa isa) {
  if (isa == PruneIsa::kAvx512 && !Avx512Available()) isa = PruneIsa::kAvx2;
  if (isa == PruneIsa::kAvx2 && !UseAvx2()) isa = PruneIsa::kScalar;
  switch (isa) {
    case PruneIsa::kAvx512:
      return PruneScanAvx512(time_min, time_max, value_min, value_max, n,
                             t_lo, t_hi, value_active, v_lo, v_hi, survivors);
    case PruneIsa::kAvx2:
      return PruneScanAvx2(time_min, time_max, value_min, value_max, n, t_lo,
                           t_hi, value_active, v_lo, v_hi, survivors);
    default:
      return PruneScanScalar(time_min, time_max, value_min, value_max, n,
                             t_lo, t_hi, value_active, v_lo, v_hi, survivors);
  }
}

}  // namespace etsqp::simd
