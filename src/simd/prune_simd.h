#ifndef ETSQP_SIMD_PRUNE_SIMD_H_
#define ETSQP_SIMD_PRUNE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// Interval-overlap scan kernels for the pruning index (ARCHITECTURE.md
/// "Pruning index"): a flat, cache-resident min/max structure scanned with
/// packed compares in the style of the SIMD-ified R-tree work, so "which
/// series/pages can possibly match" is answered in registers.
///
/// Input is a packed SoA of per-entry bounds. Entry i survives a probe
/// [t_lo, t_hi] x [v_lo, v_hi] when
///
///   time_min[i] <= t_hi && time_max[i] >= t_lo &&
///   (!value_active || (value_min[i] <= v_hi && value_max[i] >= v_lo))
///
/// All bounds are int64 keys: raw values for integer series, the
/// order-preserving key of storage::OrderedValueKey for float series (the
/// caller maps both sides of the compare into the same domain). Survivors
/// are written as packed uint64 mask words, LSB = entry 0 (the filter_simd
/// convention, CeilDiv(n, 64) words); the return value is the survivor
/// count. The node fan-out of the index is 64 entries, so one AVX-512 pass
/// (8 x 8 lanes) or two AVX2 passes fill exactly one mask word.

enum class PruneIsa { kScalar, kAvx2, kAvx512 };

/// Best ISA the host supports (honours SetSimdDisabledForTesting).
PruneIsa BestPruneIsa();

size_t PruneScanScalar(const int64_t* time_min, const int64_t* time_max,
                       const int64_t* value_min, const int64_t* value_max,
                       size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                       int64_t v_lo, int64_t v_hi, uint64_t* survivors);

/// 4 entries per step via _mm256_cmpgt_epi64 + movemask.
size_t PruneScanAvx2(const int64_t* time_min, const int64_t* time_max,
                     const int64_t* value_min, const int64_t* value_max,
                     size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                     int64_t v_lo, int64_t v_hi, uint64_t* survivors);

/// 8 entries per step via _mm512_cmp_epi64_mask (prune_simd_avx512.cc;
/// requires Avx512Available()).
size_t PruneScanAvx512(const int64_t* time_min, const int64_t* time_max,
                       const int64_t* value_min, const int64_t* value_max,
                       size_t n, int64_t t_lo, int64_t t_hi, bool value_active,
                       int64_t v_lo, int64_t v_hi, uint64_t* survivors);

/// Dispatch on `isa`, falling back to the best supported ISA when the
/// requested one is unavailable on this host.
size_t PruneScan(const int64_t* time_min, const int64_t* time_max,
                 const int64_t* value_min, const int64_t* value_max, size_t n,
                 int64_t t_lo, int64_t t_hi, bool value_active, int64_t v_lo,
                 int64_t v_hi, uint64_t* survivors, PruneIsa isa);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_PRUNE_SIMD_H_
