#ifndef ETSQP_SIMD_DELTA_SIMD_H_
#define ETSQP_SIMD_DELTA_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace etsqp::simd {

/// SBoost-style Delta recovery (baseline (5) of the evaluation): values are
/// unpacked in natural order and recovered with an in-register Hillis-Steele
/// prefix sum per 8-value vector plus a serial carry between vectors. Unlike
/// Algorithm 1 there is no layout co-design, so every vector pays the
/// cross-lane prefix fix-ups and the carry dependency chain.

/// In-place inclusive prefix sum over `n` int32 values (AVX2 when available).
void PrefixSumInt32(int32_t* values, size_t n);

/// Forced-path variants.
void PrefixSumInt32Scalar(int32_t* values, size_t n);
void PrefixSumInt32Avx2(int32_t* values, size_t n);

/// SBoost decode pipeline: natural-order unpack (Figure 3) then prefix sum.
/// Produces the same inclusive running sums (starting from `init`) as
/// DeltaDecodeOffsets.
void SboostDeltaDecode(const uint8_t* data, size_t data_size, size_t n,
                       int width, int32_t min_delta, int32_t init,
                       int32_t* out);

}  // namespace etsqp::simd

#endif  // ETSQP_SIMD_DELTA_SIMD_H_
