#include "sql/parser.h"

namespace etsqp::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    if (Accept(TokenKind::kExplain)) {
      stmt.explain = true;
      stmt.analyze = Accept(TokenKind::kAnalyze);
    }
    ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kSelect, "SELECT"));
    ETSQP_RETURN_IF_ERROR(ParseSelectItem(&stmt.item));
    ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "FROM"));
    ETSQP_RETURN_IF_ERROR(ParseIdent(&stmt.tables));
    if (Accept(TokenKind::kComma)) {
      ETSQP_RETURN_IF_ERROR(ParseIdent(&stmt.tables));
    } else if (Accept(TokenKind::kUnion)) {
      stmt.is_union = true;
      std::vector<std::string> right;
      ETSQP_RETURN_IF_ERROR(ParseIdent(&right));
      stmt.union_right = right[0];
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kOrder, "ORDER"));
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kBy, "BY"));
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kTime, "TIME"));
    }
    if (Accept(TokenKind::kWhere)) {
      ETSQP_RETURN_IF_ERROR(ParsePredicates(&stmt.predicates));
    }
    if (Accept(TokenKind::kSw)) {
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      int64_t tmin = 0, dt = 0;
      ETSQP_RETURN_IF_ERROR(ExpectNumber(&tmin));
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
      ETSQP_RETURN_IF_ERROR(ExpectNumber(&dt));
      ETSQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      if (dt <= 0) return Status::InvalidArgument("sql: SW width must be > 0");
      stmt.has_window = true;
      stmt.window_t_min = tmin;
      stmt.window_delta_t = dt;
    }
    Accept(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("sql: trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) {
      return Status::InvalidArgument(std::string("sql: expected ") + what +
                                     " at offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::Ok();
  }
  Status ExpectNumber(int64_t* out) {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::InvalidArgument("sql: expected number at offset " +
                                     std::to_string(Peek().offset));
    }
    *out = Next().number;
    return Status::Ok();
  }
  static bool IsNameToken(const Token& t) {
    // Identifiers may reuse non-structural keywords (a dataset label like
    // "Time"); structural keywords stay reserved.
    return t.kind == TokenKind::kIdent || t.kind == TokenKind::kTime;
  }

  Status ParseIdent(std::vector<std::string>* out) {
    if (!IsNameToken(Peek())) {
      return Status::InvalidArgument("sql: expected identifier at offset " +
                                     std::to_string(Peek().offset));
    }
    std::string name = Next().text;
    // Dotted series names like Sine.sine0.
    while (Peek().kind == TokenKind::kDot && IsNameToken(Peek(1))) {
      Next();
      name += "." + Next().text;
    }
    out->push_back(std::move(name));
    return Status::Ok();
  }

  Status ParseSelectItem(SelectItem* item) {
    if (Accept(TokenKind::kStar)) {
      item->kind = SelectItem::Kind::kStar;
      return Status::Ok();
    }
    if (!IsNameToken(Peek())) {
      return Status::InvalidArgument("sql: expected select item at offset " +
                                     std::to_string(Peek().offset));
    }
    // Could be: f(col), table.col <op> table.col, or a bare column.
    std::string first = Next().text;
    if (Accept(TokenKind::kLParen)) {
      item->kind = SelectItem::Kind::kAggregate;
      for (char& c : first) c = static_cast<char>(std::tolower(c));
      item->func = first;
      if (Accept(TokenKind::kStar)) {
        item->column = "*";
      } else if (IsNameToken(Peek())) {
        // Single column, or a qualified pair f(tbl.col, tbl.col) for the
        // two-series aggregates (CORR/COV).
        std::vector<std::string> segs{Next().text};
        while (Accept(TokenKind::kDot)) {
          if (!IsNameToken(Peek())) {
            return Status::InvalidArgument("sql: expected identifier after .");
          }
          segs.push_back(Next().text);
        }
        item->column = segs.back();
        if (segs.size() > 1) {
          segs.pop_back();
          item->left_table = Join(segs);
        }
        if (Accept(TokenKind::kComma)) {
          std::vector<std::string> rsegs;
          if (!IsNameToken(Peek())) {
            return Status::InvalidArgument("sql: expected second argument");
          }
          rsegs.push_back(Next().text);
          while (Accept(TokenKind::kDot)) {
            if (!IsNameToken(Peek())) {
              return Status::InvalidArgument(
                  "sql: expected identifier after .");
            }
            rsegs.push_back(Next().text);
          }
          if (rsegs.size() < 2) {
            return Status::InvalidArgument(
                "sql: second aggregate argument must be table.col");
          }
          rsegs.pop_back();
          item->right_table = Join(rsegs);
          if (item->left_table.empty()) {
            return Status::InvalidArgument(
                "sql: two-column aggregate needs qualified arguments");
          }
        }
      } else {
        return Status::InvalidArgument("sql: expected aggregate argument");
      }
      return Expect(TokenKind::kRParen, ")");
    }
    if (Peek().kind == TokenKind::kDot) {
      // Qualified: could be a long series name or table.col in a binary
      // projection. Collect segments; the last segment is the column.
      std::vector<std::string> segs{first};
      while (Accept(TokenKind::kDot)) {
        if (Peek().kind != TokenKind::kIdent &&
            Peek().kind != TokenKind::kTime) {
          return Status::InvalidArgument("sql: expected identifier after .");
        }
        segs.push_back(Next().text);
      }
      char op = 0;
      if (Accept(TokenKind::kPlus)) {
        op = '+';
      } else if (Accept(TokenKind::kMinus)) {
        op = '-';
      } else if (Accept(TokenKind::kStar)) {
        op = '*';
      }
      if (op == 0) {
        item->kind = SelectItem::Kind::kColumn;
        item->column = segs.back();
        return Status::Ok();
      }
      item->kind = SelectItem::Kind::kBinary;
      item->binary_op = op;
      item->column = segs.back();
      segs.pop_back();
      item->left_table = Join(segs);
      // Right side: table.col
      std::vector<std::string> rsegs;
      if (!IsNameToken(Peek())) {
        return Status::InvalidArgument("sql: expected right operand");
      }
      rsegs.push_back(Next().text);
      while (Accept(TokenKind::kDot)) {
        if (Peek().kind != TokenKind::kIdent &&
            Peek().kind != TokenKind::kTime) {
          return Status::InvalidArgument("sql: expected identifier after .");
        }
        rsegs.push_back(Next().text);
      }
      if (rsegs.size() < 2) {
        return Status::InvalidArgument("sql: right operand must be table.col");
      }
      rsegs.pop_back();  // drop the column
      item->right_table = Join(rsegs);
      return Status::Ok();
    }
    item->kind = SelectItem::Kind::kColumn;
    item->column = first;
    return Status::Ok();
  }

  Status ParsePredicates(std::vector<Comparison>* preds) {
    do {
      Comparison cmp;
      if (Peek().kind == TokenKind::kTime &&
          Peek(1).kind != TokenKind::kDot) {
        Next();
        cmp.column = Comparison::Column::kTime;
      } else if (IsNameToken(Peek())) {
        // Bare column, or qualified tbl.col (IsNameToken also admits a
        // keyword-named series like "Time.event_time", keeping its text).
        std::vector<std::string> segs{Next().text};
        while (Accept(TokenKind::kDot)) {
          if (!IsNameToken(Peek())) {
            return Status::InvalidArgument("sql: expected identifier after .");
          }
          segs.push_back(Next().text);
        }
        cmp.column = Comparison::Column::kValue;
        if (segs.size() > 1) {
          segs.pop_back();  // drop the column name
          cmp.lhs_table = Join(segs);
        }
      } else {
        return Status::InvalidArgument("sql: expected predicate column");
      }
      switch (Peek().kind) {
        case TokenKind::kLt:
          cmp.op = Comparison::Op::kLt;
          break;
        case TokenKind::kLe:
          cmp.op = Comparison::Op::kLe;
          break;
        case TokenKind::kGt:
          cmp.op = Comparison::Op::kGt;
          break;
        case TokenKind::kGe:
          cmp.op = Comparison::Op::kGe;
          break;
        case TokenKind::kEq:
          cmp.op = Comparison::Op::kEq;
          break;
        default:
          return Status::InvalidArgument("sql: expected comparison operator");
      }
      Next();
      if (!cmp.lhs_table.empty() && IsNameToken(Peek())) {
        // Inter-column right side: tbl.col.
        std::vector<std::string> rsegs{Next().text};
        while (Accept(TokenKind::kDot)) {
          if (!IsNameToken(Peek())) {
            return Status::InvalidArgument("sql: expected identifier after .");
          }
          rsegs.push_back(Next().text);
        }
        if (rsegs.size() < 2) {
          return Status::InvalidArgument(
              "sql: inter-column predicate needs table.col on both sides");
        }
        rsegs.pop_back();
        cmp.rhs_table = Join(rsegs);
      } else {
        ETSQP_RETURN_IF_ERROR(ExpectNumber(&cmp.literal));
      }
      preds->push_back(cmp);
    } while (Accept(TokenKind::kAnd));
    return Status::Ok();
  }

  static std::string Join(const std::vector<std::string>& segs) {
    std::string out;
    for (size_t i = 0; i < segs.size(); ++i) {
      if (i > 0) out += ".";
      out += segs[i];
    }
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& query) {
  Result<std::vector<Token>> tokens = Lex(query);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace etsqp::sql
