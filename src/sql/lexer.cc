#include "sql/lexer.h"

#include <cctype>

namespace etsqp::sql {

namespace {

TokenKind KeywordKind(const std::string& lower) {
  if (lower == "explain") return TokenKind::kExplain;
  if (lower == "analyze") return TokenKind::kAnalyze;
  if (lower == "select") return TokenKind::kSelect;
  if (lower == "from") return TokenKind::kFrom;
  if (lower == "where") return TokenKind::kWhere;
  if (lower == "and") return TokenKind::kAnd;
  if (lower == "sw") return TokenKind::kSw;
  if (lower == "union") return TokenKind::kUnion;
  if (lower == "order") return TokenKind::kOrder;
  if (lower == "by") return TokenKind::kBy;
  if (lower == "time") return TokenKind::kTime;
  return TokenKind::kIdent;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(query[j])) ||
                       query[j] == '_')) {
        ++j;
      }
      tok.text = query.substr(i, j - i);
      std::string lower = tok.text;
      for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
      tok.kind = KeywordKind(lower);
      // Keep the original spelling: keyword-named identifiers (e.g. a
      // series called "Time.event_time") stay resolvable.
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(query[i + 1])) &&
                (tokens.empty() ||
                 (tokens.back().kind != TokenKind::kNumber &&
                  tokens.back().kind != TokenKind::kIdent &&
                  tokens.back().kind != TokenKind::kRParen)))) {
      size_t j = i + (c == '-' ? 1 : 0);
      while (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) ++j;
      tok.kind = TokenKind::kNumber;
      tok.number = std::stoll(query.substr(i, j - i));
      i = j;
    } else {
      switch (c) {
        case '*':
          tok.kind = TokenKind::kStar;
          break;
        case '+':
          tok.kind = TokenKind::kPlus;
          break;
        case '-':
          tok.kind = TokenKind::kMinus;
          break;
        case ',':
          tok.kind = TokenKind::kComma;
          break;
        case '.':
          tok.kind = TokenKind::kDot;
          break;
        case '(':
          tok.kind = TokenKind::kLParen;
          break;
        case ')':
          tok.kind = TokenKind::kRParen;
          break;
        case ';':
          tok.kind = TokenKind::kSemicolon;
          break;
        case '=':
          tok.kind = TokenKind::kEq;
          break;
        case '<':
          if (i + 1 < n && query[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            ++i;
          } else {
            tok.kind = TokenKind::kLt;
          }
          break;
        case '>':
          if (i + 1 < n && query[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            ++i;
          } else {
            tok.kind = TokenKind::kGt;
          }
          break;
        default:
          return Status::InvalidArgument("sql: unexpected character '" +
                                         std::string(1, c) + "' at offset " +
                                         std::to_string(i));
      }
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace etsqp::sql
