#include "sql/planner.h"

#include <algorithm>

namespace etsqp::sql {

namespace {

Result<exec::AggFunc> ResolveAggFunc(const std::string& name) {
  if (name == "sum") return exec::AggFunc::kSum;
  if (name == "avg") return exec::AggFunc::kAvg;
  if (name == "count") return exec::AggFunc::kCount;
  if (name == "min") return exec::AggFunc::kMin;
  if (name == "max") return exec::AggFunc::kMax;
  if (name == "var" || name == "variance") return exec::AggFunc::kVariance;
  return Status::InvalidArgument("sql: unknown aggregate " + name);
}

/// Folds a comparison into an inclusive [lo, hi] range.
void FoldRange(const Comparison& cmp, int64_t* lo, int64_t* hi) {
  switch (cmp.op) {
    case Comparison::Op::kLt:
      *hi = std::min(*hi, cmp.literal - 1);
      break;
    case Comparison::Op::kLe:
      *hi = std::min(*hi, cmp.literal);
      break;
    case Comparison::Op::kGt:
      *lo = std::max(*lo, cmp.literal + 1);
      break;
    case Comparison::Op::kGe:
      *lo = std::max(*lo, cmp.literal);
      break;
    case Comparison::Op::kEq:
      *lo = std::max(*lo, cmp.literal);
      *hi = std::min(*hi, cmp.literal);
      break;
  }
}

}  // namespace

Result<exec::LogicalPlan> PlanStatement(const SelectStatement& stmt) {
  exec::LogicalPlan plan;
  if (stmt.tables.empty()) {
    return Status::InvalidArgument("sql: missing FROM table");
  }
  plan.series = stmt.tables[0];
  if (stmt.explain) {
    plan.explain = stmt.analyze ? exec::LogicalPlan::ExplainMode::kAnalyze
                                : exec::LogicalPlan::ExplainMode::kPlan;
  }

  // Separate single-column predicates (pushed into the decoding pipelines,
  // Eq. 1) from inter-column ones (applied to decoded vectors, Eq. 3).
  for (const Comparison& cmp : stmt.predicates) {
    if (cmp.inter_column()) {
      if (stmt.tables.size() != 2) {
        return Status::InvalidArgument(
            "sql: inter-column predicate needs two FROM tables");
      }
      bool straight =
          cmp.lhs_table == stmt.tables[0] && cmp.rhs_table == stmt.tables[1];
      bool swapped =
          cmp.lhs_table == stmt.tables[1] && cmp.rhs_table == stmt.tables[0];
      if (!straight && !swapped) {
        return Status::InvalidArgument(
            "sql: inter-column predicate tables not in FROM");
      }
      char op;
      switch (cmp.op) {
        case Comparison::Op::kLt:
          op = '<';
          break;
        case Comparison::Op::kGt:
          op = '>';
          break;
        case Comparison::Op::kEq:
          op = '=';
          break;
        default:
          return Status::NotSupported(
              "sql: inter-column predicate supports < > = only");
      }
      if (swapped && op == '<') op = '>';
      else if (swapped && op == '>') op = '<';
      plan.inter_column_op = op;
      continue;
    }
    if (cmp.column == Comparison::Column::kTime) {
      FoldRange(cmp, &plan.time_filter.lo, &plan.time_filter.hi);
    } else {
      plan.value_filter.active = true;
      FoldRange(cmp, &plan.value_filter.lo, &plan.value_filter.hi);
    }
  }

  if (stmt.is_union) {
    plan.kind = exec::LogicalPlan::Kind::kUnion;
    plan.series_right = stmt.union_right;
    return plan;
  }

  switch (stmt.item.kind) {
    case SelectItem::Kind::kAggregate: {
      if (stmt.item.func == "corr" || stmt.item.func == "cov") {
        if (stmt.item.left_table.empty() || stmt.item.right_table.empty()) {
          return Status::InvalidArgument(
              "sql: CORR/COV need two qualified columns");
        }
        plan.kind = exec::LogicalPlan::Kind::kCorrelate;
        plan.series = stmt.item.left_table;
        plan.series_right = stmt.item.right_table;
        return plan;
      }
      plan.kind = exec::LogicalPlan::Kind::kAggregate;
      Result<exec::AggFunc> func = ResolveAggFunc(stmt.item.func);
      if (!func.ok()) return func.status();
      plan.func = func.value();
      if (stmt.has_window) {
        plan.window.active = true;
        plan.window.t_min = stmt.window_t_min;
        plan.window.delta_t = stmt.window_delta_t;
      }
      return plan;
    }
    case SelectItem::Kind::kBinary: {
      plan.kind = exec::LogicalPlan::Kind::kProjectBinary;
      plan.series = stmt.item.left_table;
      plan.series_right = stmt.item.right_table;
      plan.binary_op = stmt.item.binary_op;
      if (stmt.tables.size() != 2) {
        return Status::InvalidArgument(
            "sql: binary projection needs two FROM tables");
      }
      return plan;
    }
    case SelectItem::Kind::kStar:
    case SelectItem::Kind::kColumn: {
      if (stmt.tables.size() == 2) {
        plan.kind = exec::LogicalPlan::Kind::kJoin;
        plan.series_right = stmt.tables[1];
      } else {
        plan.kind = exec::LogicalPlan::Kind::kSelect;
      }
      return plan;
    }
  }
  return Status::Internal("sql: unhandled select item");
}

Result<exec::LogicalPlan> PlanQuery(const std::string& query) {
  Result<SelectStatement> stmt = Parse(query);
  if (!stmt.ok()) return stmt.status();
  return PlanStatement(stmt.value());
}

}  // namespace etsqp::sql
