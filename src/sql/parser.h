#ifndef ETSQP_SQL_PARSER_H_
#define ETSQP_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/lexer.h"

namespace etsqp::sql {

/// AST for the benchmark dialect (paper Table III):
///   Q1/Q2 SELECT SUM|AVG(v) FROM ts [WHERE ...] SW(tmin, dt);
///   Q3    SELECT SUM(v) FROM ts WHERE v > a;
///   Q4    SELECT ts1.v + ts2.v FROM ts1, ts2;
///   Q5    SELECT * FROM ts1 UNION ts2 ORDER BY TIME;
///   Q6    SELECT * FROM ts1, ts2;
/// plus COUNT/MIN/MAX/VAR aggregates and conjunctive time/value range
/// predicates.

struct Comparison {
  enum class Column { kTime, kValue } column = Column::kValue;
  enum class Op { kLt, kLe, kGt, kGe, kEq } op = Op::kEq;
  int64_t literal = 0;
  /// Inter-column form `lhs_table.col <op> rhs_table.col` (Eq. 3); both
  /// table names set, `literal` unused.
  std::string lhs_table;
  std::string rhs_table;
  bool inter_column() const { return !rhs_table.empty(); }
};

struct SelectItem {
  enum class Kind {
    kStar,       // *
    kAggregate,  // f(col)
    kBinary,     // t1.col <op> t2.col
    kColumn,     // col
  } kind = Kind::kStar;
  std::string func;        // aggregate name (lowercase)
  std::string column;      // aggregated/projected column
  std::string left_table;  // kBinary qualifiers
  std::string right_table;
  char binary_op = '+';
};

struct SelectStatement {
  /// EXPLAIN [ANALYZE] prefix: explain renders the compiled plan; analyze
  /// additionally executes and annotates it with the measured profile.
  bool explain = false;
  bool analyze = false;
  SelectItem item;
  std::vector<std::string> tables;  // FROM list (1 or 2)
  std::vector<Comparison> predicates;
  bool has_window = false;
  int64_t window_t_min = 0;
  int64_t window_delta_t = 1;
  bool is_union = false;            // ts1 UNION ts2 ORDER BY TIME
  std::string union_right;
};

/// Parses one statement (trailing semicolon optional).
Result<SelectStatement> Parse(const std::string& query);

}  // namespace etsqp::sql

#endif  // ETSQP_SQL_PARSER_H_
