#ifndef ETSQP_SQL_LEXER_H_
#define ETSQP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace etsqp::sql {

/// Token kinds for the benchmark SQL dialect (paper Table III).
enum class TokenKind {
  kIdent,
  kNumber,
  kStar,      // *
  kPlus,      // +
  kMinus,     // -
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  // Keywords.
  kExplain,
  kAnalyze,
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kSw,      // sliding window clause SW(tmin, dt)
  kUnion,
  kOrder,
  kBy,
  kTime,    // the time column keyword
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier text (lowercased for keywords)
  int64_t number = 0;
  size_t offset = 0;  // byte offset in the query, for error messages
};

/// Tokenizes `query`. Keywords are case-insensitive; identifiers keep case.
Result<std::vector<Token>> Lex(const std::string& query);

}  // namespace etsqp::sql

#endif  // ETSQP_SQL_LEXER_H_
