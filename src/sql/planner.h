#ifndef ETSQP_SQL_PLANNER_H_
#define ETSQP_SQL_PLANNER_H_

#include <string>

#include "common/status.h"
#include "exec/expr.h"
#include "sql/parser.h"

namespace etsqp::sql {

/// Binds a parsed statement to a logical plan: resolves aggregate names,
/// folds the conjunctive predicates into time/value ranges (single-column
/// filters are what the pipelines push down, Algorithm 2 Eq. 1), and picks
/// the plan kind from the select item / FROM shape.
Result<exec::LogicalPlan> PlanStatement(const SelectStatement& stmt);

/// Parse + plan in one step.
Result<exec::LogicalPlan> PlanQuery(const std::string& query);

}  // namespace etsqp::sql

#endif  // ETSQP_SQL_PLANNER_H_
