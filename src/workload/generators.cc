#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace etsqp::workload {

namespace {

constexpr int64_t kEpochMs = 1'600'000'000'000;  // base timestamp (ms)

/// Regular timestamps with optional jitter (IoT clocks tick evenly; network
/// delivery adds small jitter).
std::vector<int64_t> MakeTimes(size_t rows, int64_t interval_ms,
                               int64_t jitter_ms, std::mt19937_64* rng) {
  std::vector<int64_t> t(rows);
  std::uniform_int_distribution<int64_t> jit(0, std::max<int64_t>(jitter_ms, 0));
  int64_t cur = kEpochMs;
  for (size_t i = 0; i < rows; ++i) {
    t[i] = cur;
    cur += interval_ms + (jitter_ms > 0 ? jit(*rng) : 0);
  }
  return t;
}

}  // namespace

Dataset MakeAtmosphere(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "Atm";
  ds.paper_rows = 132'000;
  std::vector<int64_t> times = MakeTimes(rows, 1000, 0, &rng);
  const char* names[3] = {"pressure", "temperature", "humidity"};
  int64_t bases[3] = {101325, 2150, 6400};  // Pa, 0.01C, 0.01%
  std::uniform_int_distribution<int> hold(20, 200);
  std::normal_distribution<double> step(0.0, 1.2);
  for (int a = 0; a < 3; ++a) {
    SeriesData s;
    s.name = names[a];
    s.times = times;
    s.values.resize(rows);
    int64_t v = bases[a];
    size_t i = 0;
    while (i < rows) {
      // Environmental readings hold a level, then drift slightly: long runs
      // of identical deltas.
      size_t run = std::min<size_t>(rows - i, hold(rng));
      int64_t d = std::llround(step(rng));
      for (size_t k = 0; k < run; ++k, ++i) {
        v += d;
        s.values[i] = v;
      }
    }
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeClimate(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "Clim";
  ds.paper_rows = 8'400'000;
  std::vector<int64_t> times = MakeTimes(rows, 60'000, 0, &rng);  // 1/min
  const char* names[4] = {"temp", "dewpoint", "wind", "rain"};
  double amp[4] = {800, 500, 300, 120};
  double base[4] = {1500, 900, 400, 0};
  std::normal_distribution<double> noise(0.0, 6.0);
  const double day_points = 24.0 * 60.0;  // one-minute cadence
  for (int a = 0; a < 4; ++a) {
    SeriesData s;
    s.name = names[a];
    s.times = times;
    s.values.resize(rows);
    for (size_t i = 0; i < rows; ++i) {
      double phase = 2.0 * M_PI * static_cast<double>(i) / day_points;
      s.values[i] = std::llround(base[a] + amp[a] * std::sin(phase + a) +
                                 noise(rng));
    }
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeGas(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "Gas";
  ds.paper_rows = 925'000;
  std::vector<int64_t> times = MakeTimes(rows, 250, 10, &rng);  // ~4Hz
  std::uniform_int_distribution<int> spike_gap(500, 4000);
  std::uniform_int_distribution<int> spike_len(20, 120);
  std::normal_distribution<double> drift(0.0, 2.0);
  std::normal_distribution<double> spike_step(60.0, 25.0);
  for (int a = 0; a < 19; ++a) {
    SeriesData s;
    s.name = "sensor" + std::to_string(a);
    s.times = times;
    s.values.resize(rows);
    int64_t v = 10'000 + a * 500;
    size_t next_spike = spike_gap(rng);
    size_t spike_left = 0;
    for (size_t i = 0; i < rows; ++i) {
      if (i == next_spike) {
        spike_left = spike_len(rng);
        next_spike = i + spike_gap(rng);
      }
      if (spike_left > 0) {
        v += std::llround(spike_step(rng));  // activity event: big deltas
        --spike_left;
      } else {
        v += std::llround(drift(rng));  // baseline drift: small deltas
      }
      v = std::max<int64_t>(v, 0);
      s.values[i] = v;
    }
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeTimestamp(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "Time";
  ds.paper_rows = 1'000'000'000;
  // Two attributes: an event timestamp column stored as a value, and a
  // device sequence number — both near-arithmetic (huge Delta-Repeat runs).
  std::vector<int64_t> times = MakeTimes(rows, 100, 0, &rng);
  {
    SeriesData s;
    s.name = "event_time";
    s.times = times;
    s.values.resize(rows);
    int64_t v = kEpochMs;
    std::uniform_int_distribution<int> jitter(0, 99);
    size_t i = 0;
    while (i < rows) {
      // Batches delivered together share one interval: long runs.
      size_t run = std::min<size_t>(rows - i, 1000);
      int64_t d = 100 + (jitter(rng) < 3 ? jitter(rng) : 0);
      for (size_t k = 0; k < run; ++k, ++i) {
        v += d;
        s.values[i] = v;
      }
    }
    ds.series.push_back(std::move(s));
  }
  {
    SeriesData s;
    s.name = "seqno";
    s.times = times;
    s.values.resize(rows);
    for (size_t i = 0; i < rows; ++i) s.values[i] = static_cast<int64_t>(i);
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeSine(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "Sine";
  ds.paper_rows = 1'000'000'000;
  std::vector<int64_t> times = MakeTimes(rows, 10, 0, &rng);
  double freq[6] = {1.0, 2.5, 5.0, 10.0, 25.0, 50.0};
  double amp[6] = {1000, 2000, 4000, 8000, 500, 16000};
  for (int a = 0; a < 6; ++a) {
    SeriesData s;
    s.name = "sine" + std::to_string(a);
    s.times = times;
    s.values.resize(rows);
    const double period = 100'000.0 / freq[a];
    for (size_t i = 0; i < rows; ++i) {
      double phase = 2.0 * M_PI * static_cast<double>(i) / period;
      s.values[i] = std::llround(amp[a] * std::sin(phase));
    }
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeTpch(size_t rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset ds;
  ds.name = "TPCH";
  ds.paper_rows = 24'000;
  std::vector<int64_t> times = MakeTimes(rows, 1000, 0, &rng);
  SeriesData quantity{"quantity", times, {}};
  SeriesData price{"extendedprice", times, {}};
  SeriesData discount{"discount", times, {}};
  SeriesData tax{"tax", times, {}};
  std::uniform_int_distribution<int64_t> q(1, 50);
  std::uniform_int_distribution<int64_t> p(90'000, 10'500'000);  // cents
  std::uniform_int_distribution<int64_t> d(0, 10);
  std::uniform_int_distribution<int64_t> t(0, 8);
  quantity.values.resize(rows);
  price.values.resize(rows);
  discount.values.resize(rows);
  tax.values.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    quantity.values[i] = q(rng);
    price.values[i] = p(rng);
    discount.values[i] = d(rng);
    tax.values[i] = t(rng);
  }
  ds.series = {std::move(quantity), std::move(price), std::move(discount),
               std::move(tax)};
  return ds;
}

std::vector<Dataset> MakeAllDatasets(double scale) {
  auto scaled = [scale](size_t n) {
    return std::max<size_t>(1000, static_cast<size_t>(n * scale));
  };
  std::vector<Dataset> all;
  all.push_back(MakeAtmosphere(scaled(132'000)));
  all.push_back(MakeClimate(scaled(1'000'000)));
  all.push_back(MakeGas(scaled(925'000)));
  all.push_back(MakeTimestamp(scaled(4'000'000)));
  all.push_back(MakeSine(scaled(4'000'000)));
  all.push_back(MakeTpch(scaled(24'000)));
  return all;
}

Result<std::vector<std::string>> LoadDataset(
    const Dataset& ds, const storage::SeriesStore::SeriesOptions& options,
    storage::SeriesStore* store) {
  std::vector<std::string> names;
  for (const SeriesData& s : ds.series) {
    std::string full = ds.name + "." + s.name;
    ETSQP_RETURN_IF_ERROR(store->CreateSeries(full, options));
    ETSQP_RETURN_IF_ERROR(store->AppendBatch(full, s.times.data(),
                                             s.values.data(),
                                             s.times.size()));
    ETSQP_RETURN_IF_ERROR(store->Flush(full));
    names.push_back(std::move(full));
  }
  return names;
}

}  // namespace etsqp::workload
