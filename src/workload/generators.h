#ifndef ETSQP_WORKLOAD_GENERATORS_H_
#define ETSQP_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/series_store.h"

namespace etsqp::workload {

/// Seeded generators reproducing the statistical character of the paper's
/// Table II datasets (DESIGN.md §5 documents the substitution: the encoders
/// and queries only see delta magnitudes, run lengths, and packing widths,
/// which these generators are tuned to match).
///
/// Default sizes are scaled down from the paper (Clim 8.4M -> rows(), Time
/// 1B -> rows()) so the full benchmark suite runs on a laptop; every
/// generator accepts an explicit row count.

struct SeriesData {
  std::string name;
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

struct Dataset {
  std::string name;   // Table II label: Atm, Clim, Gas, Time, Sine, TPCH
  size_t paper_rows;  // the size reported in Table II
  std::vector<SeriesData> series;

  size_t rows() const {
    return series.empty() ? 0 : series[0].times.size();
  }
  size_t num_attrs() const { return series.size(); }
};

/// Atmosphere: 132K rows, 3 attributes. Slow-moving environmental readings
/// (pressure/temperature/humidity): tiny deltas, long quasi-constant runs.
Dataset MakeAtmosphere(size_t rows = 132'000, uint64_t seed = 1);

/// Climate: 8.4M rows (paper), 4 attributes. Daily periodicity plus noise.
Dataset MakeClimate(size_t rows = 1'000'000, uint64_t seed = 2);

/// Gas (UCI home-activity gas sensors): 925K rows, 19 attributes. Sensor
/// drift with activity spikes: mixed small/large deltas.
Dataset MakeGas(size_t rows = 925'000, uint64_t seed = 3);

/// Timestamp: 1B rows (paper), 2 attributes. Regular intervals with jitter —
/// the best case for Delta-Repeat (constant-ish deltas, huge runs).
Dataset MakeTimestamp(size_t rows = 4'000'000, uint64_t seed = 4);

/// Sine: 1B rows (paper), 6 attributes. Quantized sine waves at different
/// frequencies/amplitudes (the operator micro-benchmark dataset).
Dataset MakeSine(size_t rows = 4'000'000, uint64_t seed = 5);

/// TPCH: 24K rows, 4 attributes. Lineitem-like columns (quantity, price,
/// discount, tax): value-distribution data, unordered deltas.
Dataset MakeTpch(size_t rows = 24'000, uint64_t seed = 6);

/// All six, at a global scale factor (1.0 = defaults above).
std::vector<Dataset> MakeAllDatasets(double scale = 1.0);

/// Loads every series of `ds` into `store` as "<ds.name>.<series.name>",
/// with the given page/encoding options. Returns the series names.
Result<std::vector<std::string>> LoadDataset(
    const Dataset& ds, const storage::SeriesStore::SeriesOptions& options,
    storage::SeriesStore* store);

}  // namespace etsqp::workload

#endif  // ETSQP_WORKLOAD_GENERATORS_H_
