#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstdio>

#include "common/bitstream.h"

namespace etsqp::storage {

namespace {

constexpr uint32_t kMagicV1 = 0x45545351;  // 'ETSQ' (matches tsfile.h)
constexpr uint32_t kMagicV2 = 0x45545352;  // 'ETSR'
constexpr size_t kPageHeaderBytes = 4 + 2 + 32 + 8;

Status ReadExact(std::FILE* f, uint8_t* buf, size_t n) {
  if (std::fread(buf, 1, n, f) != n) {
    return Status::IoError("tsfile: short read");
  }
  return Status::Ok();
}

Status ParsePageHeader(const uint8_t* p, PageHeader* h) {
  h->count = GetFixed32BE(p);
  h->time_encoding = static_cast<enc::ColumnEncoding>(p[4]);
  h->value_encoding = static_cast<enc::ColumnEncoding>(p[5]);
  h->min_time = static_cast<int64_t>(GetFixed64BE(p + 6));
  h->max_time = static_cast<int64_t>(GetFixed64BE(p + 14));
  h->min_value = static_cast<int64_t>(GetFixed64BE(p + 22));
  h->max_value = static_cast<int64_t>(GetFixed64BE(p + 30));
  h->time_bytes = GetFixed32BE(p + 38);
  h->value_bytes = GetFixed32BE(p + 42);
  return Status::Ok();
}

}  // namespace

FileBackedStore::~FileBackedStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileBackedStore::Open(const std::string& path,
                             const Options& options) {
  options_ = options;
  path_ = path;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Status::IoError("open: " + path);

  uint8_t buf[kPageHeaderBytes];
  ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 8));
  uint32_t magic = GetFixed32BE(buf);
  if (magic != kMagicV1 && magic != kMagicV2) {
    return Status::Corruption("tsfile: bad magic");
  }
  const bool v2 = magic == kMagicV2;
  uint32_t num_series = GetFixed32BE(buf + 4);
  for (uint32_t i = 0; i < num_series; ++i) {
    ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 4));
    uint32_t name_len = GetFixed32BE(buf);
    if (name_len > 4096) return Status::Corruption("tsfile: name length");
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, file_) != name_len) {
      return Status::IoError("tsfile: short read");
    }
    if (v2) {
      // flags(1) + appended_points(8) + ttl(8); the gradual loader serves
      // pages verbatim with no masking path, so a file carrying unresolved
      // deletes, TTL, or overlap points must go through a full load instead.
      ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 17));
      int64_t ttl = static_cast<int64_t>(GetFixed64BE(buf + 9));
      ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 4));
      uint32_t num_tombstones = GetFixed32BE(buf);
      if (num_tombstones != 0 || ttl != 0) {
        return Status::NotSupported(
            "tsfile: series " + name +
            " has unresolved deletes/TTL; open it via a full load");
      }
      ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 4));
      uint32_t num_ooo = GetFixed32BE(buf);
      if (num_ooo != 0) {
        return Status::NotSupported(
            "tsfile: series " + name +
            " has unreconciled out-of-order points; open it via a full load");
      }
    }
    ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 4));
    uint32_t num_pages = GetFixed32BE(buf);
    SeriesIndex index;
    index.name = name;
    for (uint32_t p = 0; p < num_pages; ++p) {
      // Index the header; skip the payload (gradual loading).
      PageRef ref;
      if (v2) {
        ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, 2));
        ref.header.level = buf[0];
        ref.header.tier = buf[1];
      }
      ETSQP_RETURN_IF_ERROR(ReadExact(file_, buf, kPageHeaderBytes));
      ETSQP_RETURN_IF_ERROR(ParsePageHeader(buf, &ref.header));
      long pos = std::ftell(file_);
      if (pos < 0) return Status::IoError("tsfile: ftell");
      ref.file_offset = static_cast<uint64_t>(pos);
      index.total_points += ref.header.count;
      uint64_t payload = static_cast<uint64_t>(ref.header.time_bytes) +
                         ref.header.value_bytes;
      if (std::fseek(file_, static_cast<long>(payload), SEEK_CUR) != 0) {
        return Status::Corruption("tsfile: payload seek");
      }
      index.pages.push_back(std::move(ref));
    }
    series_.emplace(name, std::move(index));
  }
  return Status::Ok();
}

std::vector<std::string> FileBackedStore::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

Result<const FileBackedStore::SeriesIndex*> FileBackedStore::GetSeries(
    const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  return &it->second;
}

Result<std::shared_ptr<const Page>> FileBackedStore::LoadPage(
    const std::string& series, size_t page_index) {
  auto it = series_.find(series);
  if (it == series_.end()) return Status::NotFound("series: " + series);
  if (page_index >= it->second.pages.size()) {
    return Status::OutOfRange("page index");
  }
  const PageRef& ref = it->second.pages[page_index];
  CacheKey key{series, page_index};

  std::lock_guard<std::mutex> lock(mu_);
  auto hit = pool_.find(key);
  if (hit != pool_.end()) {
    ++stats_.pool_hits;
    lru_.remove(key);
    lru_.push_front(key);
    return hit->second;
  }

  // Fetch the payload from the file.
  if (std::fseek(file_, static_cast<long>(ref.file_offset), SEEK_SET) != 0) {
    return Status::IoError("tsfile: seek");
  }
  auto page = std::make_shared<Page>();
  page->header = ref.header;
  std::vector<uint8_t> payload(static_cast<size_t>(ref.header.time_bytes) +
                               ref.header.value_bytes);
  ETSQP_RETURN_IF_ERROR(ReadExact(file_, payload.data(), payload.size()));
  page->time_data.Assign(payload.data(), ref.header.time_bytes);
  page->value_data.Assign(payload.data() + ref.header.time_bytes,
                          ref.header.value_bytes);
  ++stats_.pages_loaded;
  stats_.resident_bytes += payload.size();
  pool_.emplace(key, page);
  lru_.push_front(key);
  EvictIfNeeded();
  return std::shared_ptr<const Page>(page);
}

void FileBackedStore::EvictIfNeeded() {
  if (options_.memory_budget_bytes == 0) return;
  while (stats_.resident_bytes > options_.memory_budget_bytes &&
         lru_.size() > 1) {
    CacheKey victim = lru_.back();
    lru_.pop_back();
    auto it = pool_.find(victim);
    if (it != pool_.end()) {
      stats_.resident_bytes -= it->second->encoded_bytes();
      pool_.erase(it);
      ++stats_.pages_evicted;
    }
  }
}

FileBackedStore::Stats FileBackedStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace etsqp::storage
