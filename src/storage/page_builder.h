#ifndef ETSQP_STORAGE_PAGE_BUILDER_H_
#define ETSQP_STORAGE_PAGE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace etsqp::storage {

/// Encoding configuration for building pages.
struct PageOptions {
  enc::ColumnEncoding time_encoding = enc::ColumnEncoding::kTs2Diff;
  enc::ColumnEncoding value_encoding = enc::ColumnEncoding::kTs2Diff;
  uint32_t block_size = 1024;  // TS2DIFF block size within the page
};

/// Encodes one page from parallel (times, values) arrays of length n (>= 1).
/// Times must be strictly increasing (Definition 1).
Result<Page> BuildPage(const int64_t* times, const int64_t* values, size_t n,
                       const PageOptions& options);

/// Float-series variant: values are doubles compressed with one of the XOR/
/// pattern encoders (kGorillaValue / kChimpValue / kElfValue). The page
/// header's min/max value fields hold the doubles bit-cast for diagnostics.
Result<Page> BuildPageF64(const int64_t* times, const double* values,
                          size_t n, const PageOptions& options);

/// Reference full decode of a float value column.
Status DecodePageColumnF64(const AlignedBuffer& data, enc::ColumnEncoding enc,
                           uint32_t count, double* out);

/// Reference full decode of a page's columns (any supported encoding).
Status DecodePageColumn(const AlignedBuffer& data, enc::ColumnEncoding enc,
                        uint32_t count, int64_t* out);

/// True when DecodePageColumn / DecodePageColumnF64 can decode `enc`. The
/// codec advisor refuses to re-encode into anything this returns false for
/// — a codec without a decode entry would brick the series.
bool PageDecodeSupported(enc::ColumnEncoding enc);

/// Trial encode for the codec advisor: the encoded byte size `values` would
/// take under `encoding`, without building a page. Returns 0 when the
/// encoding cannot hold this column (unknown/float encoding for ints).
size_t EncodedColumnBytes(const int64_t* values, size_t n,
                          enc::ColumnEncoding encoding, uint32_t block_size);

/// Float-column variant (kGorillaValue / kChimpValue / kElfValue only).
size_t EncodedColumnBytesF64(const double* values, size_t n,
                             enc::ColumnEncoding encoding);

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_PAGE_BUILDER_H_
