#ifndef ETSQP_STORAGE_SERIES_STORE_H_
#define ETSQP_STORAGE_SERIES_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_builder.h"
#include "storage/pruning_index.h"
#include "storage/wal.h"

namespace etsqp::storage {

/// An inclusive [lo, hi] timestamp interval — the tombstone unit recorded by
/// DeleteRange / TTL expiry. Sets of intervals are kept sorted by lo and
/// disjoint (AddInterval merges overlaps), so membership is a binary search.
struct TimeInterval {
  int64_t lo = 0;
  int64_t hi = 0;
};

/// Merges `add` into the sorted, disjoint set in place.
void AddInterval(std::vector<TimeInterval>* set, TimeInterval add);
/// True when `t` falls inside any interval of the sorted, disjoint set.
bool IntervalsContain(const std::vector<TimeInterval>& set, int64_t t);
/// True when [lo, hi] intersects any interval of the set.
bool IntervalsOverlap(const std::vector<TimeInterval>& set, int64_t lo,
                      int64_t hi);
/// True when one interval of the set contains all of [lo, hi].
bool IntervalsCover(const std::vector<TimeInterval>& set, int64_t lo,
                    int64_t hi);

/// A point-in-time view of one series for query execution: the sealed
/// encoded pages (shared, immutable) plus a copy of the unsealed in-memory
/// tail. Snapshots are consistent — pages and tail are captured under one
/// lock acquisition, so a query sees every acknowledged point exactly once
/// regardless of concurrent appends or background seals. Tail min/max are
/// computed at capture so pruning can short-circuit the tail the same way
/// page-header stats short-circuit sealed pages.
struct SeriesSnapshot {
  std::string name;
  PageOptions page_options;
  bool is_float = false;
  /// Data epoch at capture: the series' mutation counter, advanced by every
  /// acknowledged append, page seal install, replay, and AddPage. Two
  /// snapshots of the same series with equal epochs saw identical data, so
  /// (series, time range, epoch) is a sound result-cache key — any tail
  /// advance or background seal bumps it and implicitly invalidates cached
  /// results (db/result_cache.h).
  uint64_t epoch = 0;
  std::vector<std::shared_ptr<const Page>> pages;
  /// Effective tombstones at capture: explicit DeleteRange intervals merged
  /// with the TTL cutoff, sorted and disjoint. The tail arrays below are
  /// already filtered against them; sealed pages are NOT — the exec layer
  /// masks them (fully covered pages prune, partially covered pages drain
  /// through a decode-and-filter path). Empty for most series, so the
  /// masking paths cost nothing when no deletes exist.
  std::vector<TimeInterval> tombstones;
  // Unsealed tail (pending-seal segments + active buffer, in time order).
  std::vector<int64_t> tail_times;
  std::vector<int64_t> tail_values;      // int series
  std::vector<double> tail_values_f64;   // float series
  // Tail statistics (valid only when tail_times is non-empty). Times are
  // strictly increasing, so min/max time are the ends of tail_times.
  int64_t tail_min_value = 0;
  int64_t tail_max_value = 0;
  double tail_min_value_f64 = 0;
  double tail_max_value_f64 = 0;
  /// Pruning-index leaf block for `pages`: captured under the same lock
  /// acquisition, so prune_leaves->count() == pages.size() and entry i
  /// mirrors pages[i]'s header — a SIMD probe over it is epoch-consistent
  /// with this snapshot by construction. Never null for an existing series.
  std::shared_ptr<const PruneLeaves> prune_leaves;
  /// Series-level envelope (pruning index level 1) at capture.
  SeriesSummary summary;

  bool has_tail() const { return !tail_times.empty(); }
  int64_t tail_min_time() const { return tail_times.front(); }
  int64_t tail_max_time() const { return tail_times.back(); }
  uint64_t total_points() const {
    uint64_t n = tail_times.size();
    for (const auto& p : pages) n += p->header.count;
    return n;
  }
};

/// In-memory series catalog mirroring the IoTDB storage model (paper Section
/// III-C): each time series is a sequence of separately encoded pages fed by
/// a per-series ingestion buffer — the "receiving buffer filled -> flush
/// encoded blocks" behaviour of Figure 1. This is the hub of the streaming
/// ingest subsystem (docs/ARCHITECTURE.md "Ingest lifecycle"):
///
///  - Appends are validated (times strictly increasing per Definition 1;
///    out-of-order or duplicate timestamps are rejected whole-batch with
///    InvalidArgument), logged to the attached WAL if any, then buffered.
///  - The buffered tail is queryable immediately via GetSnapshot — no Flush
///    needed for read-your-writes.
///  - When the buffer reaches page_size the segment seals into an encoded
///    page: inline by default, or off-thread when background sealing is
///    enabled (SetBackgroundSeal) so encoding stays off the ingest path.
///  - All public methods are internally synchronized; concurrent Append and
///    GetSnapshot from different threads is a supported, tested contract.
///
/// GetSeries returns a pointer into the catalog and is NOT stable under
/// concurrent mutation; it exists for single-threaded inspection (tests,
/// tools, benches). Query execution uses GetSnapshot.
class SeriesStore {
 public:
  struct SeriesOptions {
    PageOptions page;
    uint32_t page_size = 4096;  // points per page
    /// Accepts appends at or below the ordering fence: the late prefix of a
    /// batch lands in a WAL-logged overlap buffer, invisible to queries,
    /// until a compaction pass reconciles it into the sealed pages
    /// (last-write-wins on duplicate timestamps). Off by default — strict
    /// Definition 1 ordering stays the contract unless opted into.
    bool allow_out_of_order = false;
  };

  /// A buffer segment handed to the sealer. With background sealing the
  /// encode runs on a pool task; install happens in deque order so pages
  /// always land in time order even when encodes finish out of order.
  struct SealSegment {
    std::vector<int64_t> times;
    std::vector<int64_t> values;
    std::vector<double> values_f64;
    bool ready = false;                 // encode finished (page or error)
    std::shared_ptr<const Page> page;   // set on success
    Status error = Status::Ok();        // set on failure (sticky via Series)
  };

  struct Series {
    std::string name;
    SeriesOptions options;
    std::vector<std::shared_ptr<const Page>> pages;
    // Ingestion buffer: the active (newest) part of the queryable tail.
    std::vector<int64_t> buf_times;
    std::vector<int64_t> buf_values;
    std::vector<double> buf_values_f64;  // float series only
    // Segments cut from the buffer, waiting for their encode + in-order
    // install. Older than buf_*, newer than pages.
    std::deque<std::shared_ptr<SealSegment>> sealing;
    uint64_t total_points = 0;     // sealed points
    uint64_t appended_points = 0;  // ever-acknowledged points (WAL seq)
    uint64_t epoch = 0;  // mutation counter (appends, seal installs, loads)
    int64_t last_time = INT64_MIN;  // ordering fence (Definition 1)
    Status seal_error = Status::Ok();  // sticky background-seal failure
    // Tombstones: sorted, disjoint deleted [lo,hi] ranges (DeleteRange).
    // Masked at query time, physically dropped at compaction.
    std::vector<TimeInterval> tombstones;
    int64_t ttl_nanos = 0;  // 0 = none; cut = last_time - ttl_nanos
    // Out-of-order overlap buffer (allow_out_of_order series): points at or
    // below the fence, sorted by time, duplicates resolved last-write-wins.
    // Invisible to queries until compaction reconciles them into pages.
    std::vector<int64_t> ooo_times;
    std::vector<int64_t> ooo_values;
    std::vector<double> ooo_values_f64;
    bool compacting = false;  // at most one in-flight compaction per series
    // Pruning index: level-1 slot in State::prune_index and the level-2
    // per-page leaf block, rebuilt whenever `pages` changes (same unique
    // lock as the epoch bump that invalidates cached results).
    size_t prune_slot = 0;
    std::shared_ptr<const PruneLeaves> prune_leaves;

    bool is_float() const {
      return enc::IsFloatEncoding(options.page.value_encoding);
    }
  };

  /// Hands a closure to an executor (exec::ThreadPool via the db layer —
  /// injected as a function so storage does not link exec).
  using TaskSubmitter = std::function<void(std::function<void()>)>;

  SeriesStore();
  ~SeriesStore() = default;
  SeriesStore(SeriesStore&& o) noexcept;
  SeriesStore& operator=(SeriesStore&& o) noexcept;
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  Status CreateSeries(const std::string& name, const SeriesOptions& options);

  /// Appends one point; seals a page when the buffer fills. Rejects
  /// non-monotone timestamps (time must exceed the series' newest time).
  Status Append(const std::string& name, int64_t time, int64_t value);

  /// Bulk append: all-or-nothing. The whole batch is validated (strictly
  /// increasing, first time past the series fence) before any point is
  /// logged or buffered.
  Status AppendBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);

  /// Float-series append (the series must use a float value encoding).
  Status AppendF64(const std::string& name, int64_t time, double value);
  Status AppendBatchF64(const std::string& name, const int64_t* times,
                        const double* values, size_t n);

  /// Seals any buffered points of `name` (all series when name is empty)
  /// into pages, waiting out in-flight background seals so pages land in
  /// time order. After Flush the tail is empty.
  Status Flush(const std::string& name = "");

  /// Installs an already-built page (used by TsFile loading). Advances the
  /// ordering fence to the page's max time.
  Status AddPage(const std::string& name, Page page);

  /// Like AddPage but shares an already-immutable page instead of taking
  /// ownership — the shard redistribution path (db/database.h) moves series
  /// between stores without copying encoded payloads.
  Status AddPageShared(const std::string& name,
                       std::shared_ptr<const Page> page);

  /// Captures a consistent sealed+tail view for query execution.
  Result<SeriesSnapshot> GetSnapshot(const std::string& name) const;

  bool HasSeries(const std::string& name) const;
  Result<const Series*> GetSeries(const std::string& name) const;
  std::vector<std::string> SeriesNames() const;

  /// Total encoded bytes across all pages of `name` (compression metric).
  uint64_t EncodedBytes(const std::string& name) const;

  /// Current data epoch of `name` (0 when the series does not exist): the
  /// counter captured into SeriesSnapshot::epoch. Cheap — one shared-lock
  /// map lookup — so result-cache key construction costs no snapshot.
  uint64_t SeriesEpoch(const std::string& name) const;

  /// Currently buffered (unsealed) points of `name`, pending-seal segments
  /// included; 0 when the series does not exist. Used by admission control
  /// to bound the memory a query snapshot would copy.
  uint64_t TailPoints(const std::string& name) const;

  /// Fleet-scale pruning probe: one SIMD sweep over the level-1 series
  /// envelopes under a single shared-lock acquisition — which series can
  /// possibly hold a point in [t_lo, t_hi] x [v_lo, v_hi]. Conservative
  /// (envelopes only widen), so it never under-counts relative to a linear
  /// per-series header scan. When `matched` is non-null it receives the
  /// surviving series names.
  PruneProbeStats CountMatchingSeries(
      const PruneProbe& probe,
      std::vector<std::string>* matched = nullptr) const;

  // --- TTL / delete (tombstones) -----------------------------------------

  /// Deletes the inclusive time range [t0, t1] from `name`. The range is
  /// clamped to data the series has actually seen (hi <= current fence), so
  /// strictly-newer future appends are never masked and replay — which sees
  /// the same fence at the same log position — is deterministic. The
  /// tombstone is WAL-logged, masked out of every snapshot immediately, and
  /// physically dropped by a later compaction pass. Deleting an empty or
  /// all-future range is a no-op.
  Status DeleteRange(const std::string& name, int64_t t0, int64_t t1);

  /// Sets (0 clears) the retention window: points older than
  /// `last_time - ttl_nanos` are masked like a tombstone. The cut is
  /// measured against the series' own newest timestamp, not the wall clock,
  /// so visibility is deterministic under WAL replay.
  Status SetTtl(const std::string& name, int64_t ttl_nanos);

  /// Explicit tombstone ranges (no TTL folded in); empty if no series.
  std::vector<TimeInterval> Tombstones(const std::string& name) const;
  int64_t Ttl(const std::string& name) const;
  /// Points waiting in the out-of-order overlap buffer.
  uint64_t OooPoints(const std::string& name) const;

  // --- Compaction handshake (storage::Compactor drives these) ------------

  /// Everything one compaction pass needs, captured under a single lock
  /// acquisition. Captured page pointers stay valid *at their indices*
  /// until Install/Abort: appends only ever push_back, and the `compacting`
  /// flag serializes passes per series.
  struct CompactionCapture {
    std::string name;
    SeriesOptions options;
    bool is_float = false;
    std::vector<std::shared_ptr<const Page>> pages;
    std::vector<TimeInterval> tombstones;  // effective (TTL folded in)
    std::vector<TimeInterval> explicit_tombstones;  // as stored
    std::vector<int64_t> ooo_times;
    std::vector<int64_t> ooo_values;
    std::vector<double> ooo_values_f64;
    int64_t sealed_max_time = INT64_MIN;  // max page time at capture
    bool tail_empty = true;               // no buffered/pending points
  };

  /// Marks `name` compacting and fills `out`. FailedPrecondition when a
  /// pass is already in flight for the series.
  Status BeginCompaction(const std::string& name, CompactionCapture* out);

  struct CompactionInstall {
    /// Replace captured pages [replace_begin, replace_end) ...
    size_t replace_begin = 0;
    size_t replace_end = 0;
    /// ... with these (may be empty: a fully deleted span just vanishes).
    std::vector<std::shared_ptr<const Page>> new_pages;
    /// Overlap-buffer points the rewrite merged, identified by (time,
    /// value-bits): points that changed since capture (late update) stay
    /// buffered for the next pass, preserving last-write-wins.
    size_t ooo_consumed = 0;  // prefix length of the captured OOO arrays
    /// Captured explicit tombstones now physically applied; removed from
    /// the series if still present verbatim (a concurrent DeleteRange that
    /// grew one keeps the merged range masked — conservative, correct).
    std::vector<TimeInterval> tombstones_resolved;
  };

  /// Atomically swaps the rewritten page range in, trims the consumed
  /// overlap-buffer points and resolved tombstones, bumps the series epoch
  /// (implicitly invalidating cached results), and clears `compacting`.
  /// Returns Aborted — installing nothing — when the series vanished or the
  /// captured pages are no longer pointer-identical at their indices.
  Status InstallCompaction(const CompactionCapture& capture,
                           CompactionInstall install);
  void AbortCompaction(const std::string& name);

  /// Auto-compaction hook: after every `pages_threshold` newly installed
  /// pages (store-wide), `trigger` fires. It runs under the store lock —
  /// it must only schedule asynchronous work, never call back into the
  /// store synchronously. Threshold 0 disables.
  void SetCompactionTrigger(uint32_t pages_threshold,
                            std::function<void()> trigger);

  /// TsFile-v2 load hook: restores persisted delete/TTL/out-of-order state
  /// after the series' pages are installed, and overwrites the derived
  /// append-sequence fence with the persisted one — compaction drops points
  /// physically, so page counts alone under-count the WAL sequence.
  Status RestoreSeriesMeta(const std::string& name, uint64_t appended_points,
                           int64_t ttl_nanos,
                           std::vector<TimeInterval> tombstones,
                           std::vector<int64_t> ooo_times,
                           std::vector<int64_t> ooo_values,
                           std::vector<double> ooo_values_f64);

  // --- Streaming ingest subsystem ---------------------------------------

  /// Attaches a write-ahead log: every subsequent CreateSeries/Append* is
  /// framed into `wal` before it mutates the store. Call Wal::ReplayInto
  /// (via the db layer's Recover) before attaching so existing records are
  /// applied first.
  void AttachWal(std::unique_ptr<Wal> wal);
  Wal* wal() const;

  /// Enables (or disables) off-thread page sealing. `submit` runs a closure
  /// on an executor; tasks hold the store's shared state so they stay safe
  /// even if the store is destroyed first, but callers must drain their
  /// executor before dropping it (IotDbLite keys this to a TaskGroup).
  void SetBackgroundSeal(bool enabled, TaskSubmitter submit);

  /// Snapshot of the ingest counters (WAL counters merged in).
  metrics::IngestStats ingest_stats() const;

  /// Points ever acknowledged for `name` (the WAL sequence fence); 0 when
  /// the series does not exist.
  uint64_t AppendedPoints(const std::string& name) const;

  /// Replay-path hooks (Wal::ReplayInto): like CreateSeries/AppendBatch but
  /// never write to the WAL, and ApplyReplayBatch is idempotent — points of
  /// the record already covered by `appended_points` (a checkpoint restored
  /// them) are skipped; only the missing suffix applies. A record starting
  /// beyond the fence is a sequence gap => Corruption.
  Status CreateSeriesForReplay(const std::string& name,
                               const SeriesOptions& options);
  Status ApplyReplayBatch(const std::string& name, uint64_t first_seq,
                          const int64_t* times, const int64_t* ivalues,
                          const double* fvalues, size_t n,
                          size_t* points_applied);
  /// Replay of an out-of-order overlap record (WAL types 6/7): same
  /// first_seq idempotency, but the points merge into the overlap buffer.
  Status ApplyReplayBatchOoo(const std::string& name, uint64_t first_seq,
                             const int64_t* times, const int64_t* ivalues,
                             const double* fvalues, size_t n,
                             size_t* points_applied);
  Status ApplyReplayDelete(const std::string& name, int64_t t0, int64_t t1);
  Status ApplyReplayTtl(const std::string& name, int64_t ttl_nanos);

  /// Counters bookkeeping after a recovery pass (db layer).
  void NoteRecovery(const Wal::ReplayStats& replay);

 private:
  /// All synchronized state lives behind one shared_ptr so (a) the store
  /// stays movable (benches return stores by value) and (b) background
  /// seal tasks outlive any particular SeriesStore shell.
  struct State {
    mutable std::shared_mutex mu;
    std::condition_variable_any seal_cv;  // signals segment installs
    std::map<std::string, Series> series;
    std::unique_ptr<Wal> wal;
    bool background_seal = false;
    TaskSubmitter submit;
    metrics::IngestStats ingest;
    // Auto-compaction trigger (SetCompactionTrigger).
    uint32_t compact_trigger_pages = 0;
    uint32_t pages_since_trigger = 0;
    std::function<void()> compact_trigger;
    // Pruning index level 1: per-series envelopes (docs/ARCHITECTURE.md
    // "Pruning index"). Mutated under the unique lock, probed shared.
    PruningIndex prune_index;
  };

  Status AppendLocked(State* st, const std::string& name,
                      const int64_t* times, const int64_t* ivalues,
                      const double* fvalues, size_t n);
  /// Merges a sorted late batch into the overlap buffer, last-write-wins.
  static void MergeOooLocked(Series* s, const int64_t* times,
                             const int64_t* ivalues, const double* fvalues,
                             size_t n);
  /// Explicit tombstones merged with the TTL cutoff (sorted, disjoint).
  static std::vector<TimeInterval> EffectiveTombstones(const Series& s);
  /// Fires the auto-compaction trigger when enough pages landed.
  static void NotePageInstalledLocked(State* st);
  /// Cuts the full buffer into a segment and seals it (inline or via the
  /// executor). Caller holds the unique lock.
  Status SealBufferLocked(State* st, Series* s);
  /// Rebuilds the level-2 leaf block after s->pages changed.
  static void RebuildLeavesLocked(Series* s);
  /// Widens the level-1 envelope with one appended batch (NaN-aware for
  /// float series: a NaN value permanently disables value pruning).
  static void WidenEnvelopeLocked(State* st, const Series& s,
                                  const int64_t* times,
                                  const int64_t* ivalues,
                                  const double* fvalues, size_t n);
  /// Widens the level-1 envelope from an installed page's header.
  static void WidenEnvelopeFromHeaderLocked(State* st, const Series& s,
                                            const PageHeader& h);
  /// Installs every ready segment at the front of s->sealing, in order.
  static void DrainReadySegmentsLocked(State* st, Series* s);
  static Status BuildSegmentPage(const SealSegment& seg,
                                 const PageOptions& options, bool is_float,
                                 std::shared_ptr<const Page>* out);

  std::shared_ptr<State> state_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_SERIES_STORE_H_
