#ifndef ETSQP_STORAGE_SERIES_STORE_H_
#define ETSQP_STORAGE_SERIES_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/page_builder.h"

namespace etsqp::storage {

/// In-memory series catalog mirroring the IoTDB storage model (paper Section
/// III-C): each time series is a sequence of separately encoded pages.
/// Ingestion buffers raw points per series and flushes a page whenever the
/// buffer reaches the page size — the "receiving buffer filled -> flush
/// encoded blocks" behaviour of Figure 1.
class SeriesStore {
 public:
  struct SeriesOptions {
    PageOptions page;
    uint32_t page_size = 4096;  // points per page
  };

  struct Series {
    std::string name;
    SeriesOptions options;
    std::vector<Page> pages;
    // Ingestion buffer (not yet queryable until flushed).
    std::vector<int64_t> buf_times;
    std::vector<int64_t> buf_values;
    std::vector<double> buf_values_f64;  // float series only
    uint64_t total_points = 0;  // flushed points

    bool is_float() const {
      return enc::IsFloatEncoding(options.page.value_encoding);
    }
  };

  Status CreateSeries(const std::string& name, const SeriesOptions& options);

  /// Appends one point; flushes a page when the buffer fills.
  Status Append(const std::string& name, int64_t time, int64_t value);

  /// Bulk append.
  Status AppendBatch(const std::string& name, const int64_t* times,
                     const int64_t* values, size_t n);

  /// Float-series append (the series must use a float value encoding).
  Status AppendF64(const std::string& name, int64_t time, double value);
  Status AppendBatchF64(const std::string& name, const int64_t* times,
                        const double* values, size_t n);

  /// Flushes any buffered points of `name` (all series when name is empty).
  Status Flush(const std::string& name = "");

  /// Installs an already-built page (used by TsFile loading).
  Status AddPage(const std::string& name, Page page);

  bool HasSeries(const std::string& name) const;
  Result<const Series*> GetSeries(const std::string& name) const;
  std::vector<std::string> SeriesNames() const;

  /// Total encoded bytes across all pages of `name` (compression metric).
  uint64_t EncodedBytes(const std::string& name) const;

 private:
  Status FlushSeries(Series* series);

  std::map<std::string, Series> series_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_SERIES_STORE_H_
