#ifndef ETSQP_STORAGE_BUFFER_MANAGER_H_
#define ETSQP_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace etsqp::storage {

/// Memory management (paper Section VI-C): "loading all queried pages in
/// memory is impossible ... the Apache IoTDB will load pages gradually based
/// on memory consumption and pipeline execution."
///
/// FileBackedStore indexes a TsFile's page *headers* at open time (cheap:
/// headers carry the statistics pruning needs) and loads page payloads on
/// demand through an LRU-bounded buffer pool. Pruned pages never touch the
/// pool — the header-only index is exactly what makes Propositions 4-5 save
/// I/O rather than just CPU.
class FileBackedStore {
 public:
  struct Options {
    /// Payload-byte budget of the buffer pool. 0 = unbounded.
    size_t memory_budget_bytes = 64 << 20;
  };

  struct PageRef {
    PageHeader header;   // always resident (the pruning statistics)
    uint64_t file_offset = 0;  // payload position in the file
  };

  struct SeriesIndex {
    std::string name;
    std::vector<PageRef> pages;
    uint64_t total_points = 0;
  };

  struct Stats {
    uint64_t pages_loaded = 0;    // payload fetches from the file
    uint64_t pool_hits = 0;       // served from the buffer pool
    uint64_t pages_evicted = 0;   // LRU evictions
    size_t resident_bytes = 0;    // current pool occupancy
  };

  FileBackedStore() = default;
  ~FileBackedStore();
  FileBackedStore(const FileBackedStore&) = delete;
  FileBackedStore& operator=(const FileBackedStore&) = delete;

  /// Opens a TsFile (written by WriteTsFile) and indexes the page headers
  /// without loading payloads.
  Status Open(const std::string& path, const Options& options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  std::vector<std::string> SeriesNames() const;
  Result<const SeriesIndex*> GetSeries(const std::string& name) const;

  /// Returns the fully loaded page (payload fetched or served from the
  /// pool). The returned shared_ptr keeps the page alive across eviction.
  Result<std::shared_ptr<const Page>> LoadPage(const std::string& series,
                                               size_t page_index);

  Stats stats() const;

 private:
  struct CacheKey {
    std::string series;
    size_t index;
    bool operator<(const CacheKey& o) const {
      return series != o.series ? series < o.series : index < o.index;
    }
    bool operator==(const CacheKey& o) const {
      return series == o.series && index == o.index;
    }
  };

  void EvictIfNeeded();

  Options options_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::string, SeriesIndex> series_;

  mutable std::mutex mu_;
  std::map<CacheKey, std::shared_ptr<const Page>> pool_;
  std::list<CacheKey> lru_;  // front = most recent
  Stats stats_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_BUFFER_MANAGER_H_
