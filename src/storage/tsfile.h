#ifndef ETSQP_STORAGE_TSFILE_H_
#define ETSQP_STORAGE_TSFILE_H_

#include <string>

#include "common/status.h"
#include "storage/series_store.h"

namespace etsqp::storage {

/// Minimal TsFile-style persistence (paper [27]): a file holds, per series,
/// a chunk of consecutive pages. Two versions share the writer/reader
/// (docs/FORMAT.md):
///
/// v1 ('ETSQ'): u32 magic | u32 num_series
///   per series: u32 name_len | name | u32 num_pages | pages...
///
/// v2 ('ETSR') adds the compaction metadata:
///   per series: u32 name_len | name | u8 flags | u64 appended_points |
///     i64 ttl_nanos | u32 num_tombstones x (i64 lo, i64 hi) |
///     u32 num_ooo x (i64 time, u64 value_bits) |
///     u32 num_pages x (u8 level | u8 tier | serialized page)
///   flags: bit 0 allow_out_of_order, bit 1 float series.
///
/// The writer emits byte-identical v1 while no series carries compaction
/// state (no tombstones/TTL/overlap points, every page level/tier zero) and
/// switches to v2 only when that state exists — so pre-compaction readers
/// keep working on pre-compaction data, and old files always load.
/// All buffered points must be flushed before writing.
Status WriteTsFile(const SeriesStore& store, const std::string& path);

/// Loads every series in the file into `store` (series must not exist yet).
/// Rejects truncated or inconsistent v2 metadata (inverted tombstones,
/// counts exceeding the file, tier/level out of range).
Status ReadTsFile(const std::string& path, SeriesStore* store);

/// Format bounds shared with the gradual-loading reader (buffer_manager).
inline constexpr uint32_t kTsFileMagicV1 = 0x45545351;  // 'ETSQ'
inline constexpr uint32_t kTsFileMagicV2 = 0x45545352;  // 'ETSR'
inline constexpr uint8_t kTsFileMaxPageLevel = 63;
inline constexpr uint8_t kTsFileMaxPageTier = 1;

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_TSFILE_H_
