#ifndef ETSQP_STORAGE_TSFILE_H_
#define ETSQP_STORAGE_TSFILE_H_

#include <string>

#include "common/status.h"
#include "storage/series_store.h"

namespace etsqp::storage {

/// Minimal TsFile-style persistence (paper [27]): a file holds, per series,
/// a chunk of consecutive pages. Layout:
///   u32 magic 'ETSQ' | u32 num_series
///   per series: u32 name_len | name bytes | u32 num_pages | pages...
/// All buffered points must be flushed before writing.
Status WriteTsFile(const SeriesStore& store, const std::string& path);

/// Loads every series in the file into `store` (series must not exist yet).
Status ReadTsFile(const std::string& path, SeriesStore* store);

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_TSFILE_H_
