#ifndef ETSQP_STORAGE_PAGE_H_
#define ETSQP_STORAGE_PAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::storage {

/// Page header (paper Sections III-C and V-A): each page is a separately
/// encoded bit array with a private header carrying the first element, the
/// packing parameters, per-column sizes, and min/max statistics. The header
/// is what the pruning rules (Propositions 4-5) consult without touching the
/// encoded payload.
struct PageHeader {
  uint32_t count = 0;
  enc::ColumnEncoding time_encoding = enc::ColumnEncoding::kTs2Diff;
  enc::ColumnEncoding value_encoding = enc::ColumnEncoding::kTs2Diff;
  int64_t min_time = 0;
  int64_t max_time = 0;
  int64_t min_value = 0;
  int64_t max_value = 0;
  uint32_t time_bytes = 0;
  uint32_t value_bytes = 0;
  /// Compaction placement. Not part of the serialized page blob (old readers
  /// stay compatible); persisted by the TsFile v2 per-page prefix. `level` 0
  /// means sealed straight from the ingest buffer; a compaction rewrite sets
  /// max(input levels)+1. `tier` 0 = hot (ingest order), 1 = compacted.
  uint8_t level = 0;
  uint8_t tier = 0;
};

/// One storage page: header plus the two encoded columns. Column buffers are
/// slack-padded (AlignedBuffer) so SIMD decoders can over-read safely.
struct Page {
  PageHeader header;
  AlignedBuffer time_data;
  AlignedBuffer value_data;

  Page() = default;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  /// Total encoded payload bytes (the "I/O" a query pays to load this page).
  size_t encoded_bytes() const {
    return header.time_bytes + header.value_bytes;
  }
};

/// Serializes `page` into `out` (header fields Big-Endian + both columns).
void SerializePage(const Page& page, std::vector<uint8_t>* out);

/// Parses one page starting at data[pos]; advances *pos past it.
Status DeserializePage(const uint8_t* data, size_t size, size_t* pos,
                       Page* page);

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_PAGE_H_
