#ifndef ETSQP_STORAGE_COMPACTION_H_
#define ETSQP_STORAGE_COMPACTION_H_

#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/codec_advisor.h"
#include "storage/series_store.h"

namespace etsqp::storage {

struct CompactionOptions {
  /// Points per rewritten page; 0 = the series' own page_size.
  uint32_t target_page_points = 0;
  /// A sealed page below this fill fraction of the target is a merge
  /// candidate (undersized pages get coalesced with their neighbors).
  double merge_fill = 0.5;
  /// Adaptive re-encoding: run the CodecAdvisor over every rewritten page
  /// and on the first pass over every never-compacted (tier 0) page. Off =
  /// rewrites keep the series' configured codec.
  bool adaptive = true;
  /// CodecAdvisor dampers (codec_advisor.h) and the optional decode-cost
  /// hook the db layer wires from the shard's `.calib` cost model.
  double min_gain = 0.05;
  double tie_band = 0.02;
  CodecAdvisor::CostHook cost_hook;
  /// Serving-path decode support check (codec_advisor.h): re-encoding never
  /// targets a codec this rejects. Unset = storage::PageDecodeSupported.
  CodecAdvisor::DecodeSupportHook decode_support;
};

/// One shard's background compaction service. A pass over a series:
///
///  1. captures the sealed pages + tombstones + overlap buffer under one
///     lock acquisition (SeriesStore::BeginCompaction, which also takes the
///     per-series compacting flag);
///  2. plans off-lock: pages are dirty when a tombstone overlaps them, an
///     overlap-buffer point lands in them, they are undersized, or (first
///     pass only) the advisor has never seen them; the dirty hull becomes
///     one contiguous rewrite span;
///  3. rewrites off-lock: decode the span, drop tombstoned points, merge
///     the reconcilable overlap prefix (late updates win on duplicate
///     timestamps), re-chunk to the target page size, and re-encode each
///     chunk with the advisor's pick;
///  4. installs atomically (SeriesStore::InstallCompaction): pointer-
///     identity-validated splice + epoch bump, so concurrent queries keep
///     serving the old pages until the swap and cached results invalidate
///     implicitly. A lost race costs only the discarded rewrite.
///
/// Queries and ingest run concurrently with all four steps; only 1 and 4
/// touch the store lock. Compaction is deliberately not WAL-logged: after a
/// crash, replay rebuilds the pre-compaction pages and the tombstones
/// re-mask them — the pass is a recoverable optimization, not state.
///
/// Thread safety: passes for different series may run concurrently from
/// multiple Compactor methods; per-series mutual exclusion comes from the
/// store's compacting flag (a busy series is skipped, not waited on).
class Compactor {
 public:
  Compactor(SeriesStore* store, CompactionOptions options);

  /// One pass over `name`. Ok when there was nothing to do or the series
  /// is already being compacted; errors only on real failures.
  Status CompactSeries(const std::string& name);

  /// One pass over every series of the store.
  Status CompactAll();

  metrics::CompactionStats stats() const;

 private:
  Status RunPass(const std::string& name, metrics::CompactionStats* pass);
  void MergeStats(const metrics::CompactionStats& pass);

  SeriesStore* store_;
  CompactionOptions options_;
  CodecAdvisor advisor_;
  mutable std::mutex mu_;
  metrics::CompactionStats stats_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_COMPACTION_H_
