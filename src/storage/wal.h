#ifndef ETSQP_STORAGE_WAL_H_
#define ETSQP_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace etsqp::storage {

class SeriesStore;

/// Per-store write-ahead log: the durability half of the streaming-ingest
/// subsystem (Figure 1's live traffic). Every acknowledged mutation —
/// series creation and point appends — is framed, checksummed, and written
/// to the log *before* it is applied to the in-memory store, so a crash
/// loses at most the records the fsync policy had not yet made durable.
///
/// Record framing (see docs/FORMAT.md):
///   u32 payload_len BE | u32 masked_crc32c(payload) BE | payload
///
/// Payload layout by leading type byte:
///   1 kCreateSeries  u8 time_enc | u8 value_enc | u32 page_size |
///                    u32 block_size | u16 name_len | name [| u8 flags]
///                    (flags bit 0 = allow_out_of_order; the byte is
///                    optional so pre-compaction logs replay unchanged)
///   2 kAppendInt     u16 name_len | name | u64 first_seq | u32 n |
///                    n x (i64 time | i64 value)
///   3 kAppendF64     u16 name_len | name | u64 first_seq | u32 n |
///                    n x (i64 time | u64 value_bits)
///   4 kDeleteRange   u16 name_len | name | i64 t0 | i64 t1
///                    (inclusive tombstone range, already fence-clamped)
///   5 kSetTtl        u16 name_len | name | i64 ttl_nanos
///   6 kAppendIntOoo  same layout as 2 — late points bound for the
///                    out-of-order overlap buffer
///   7 kAppendF64Ooo  same layout as 3, overlap-buffer variant
///
/// `first_seq` is the series' append sequence number (total points ever
/// appended) before the batch — it makes replay idempotent: records whose
/// points a checkpoint already covers are skipped, partially covered
/// records apply only their missing suffix. That is what keeps the
/// crash-between-checkpoint-save-and-log-truncate window safe.
///
/// Recovery (`ReplayInto`) scans the log from the start, applies every
/// record whose frame verifies, and stops at the first torn or corrupt
/// frame: the remainder is the unacknowledged tail of a crashed writer and
/// is truncated away so subsequent appends never interleave with garbage.
///
/// Truncation (`Reset`) empties the log; the db layer calls it after a
/// checkpoint (Flush + TsFile save) makes the logged state durable
/// elsewhere.
///
/// Thread safety: all members are internally serialized; in practice the
/// owning SeriesStore already calls Append* under its ingest lock.
class Wal {
 public:
  enum class FsyncPolicy {
    kNever,   // rely on the OS page cache (benchmarks, tests)
    kBatch,   // group commit: fsync once >= batch_bytes are unsynced
    kAlways,  // fsync every record before acknowledging
  };

  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    size_t batch_bytes = 64 << 10;  // group-commit threshold for kBatch
  };

  /// Cumulative counters since Open (wal_* rows of metrics::IngestStats).
  struct Stats {
    uint64_t records = 0;
    uint64_t bytes = 0;       // framed bytes written
    uint64_t fsyncs = 0;
    uint64_t sync_nanos = 0;  // wall time spent inside fsync
    uint64_t resets = 0;
  };

  /// Opens (creating if absent) the log at `path` for appending. Call
  /// ReplayInto before the first Append when the file may hold records.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const Options& options);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Replays every intact record into `store` (idempotently, see above),
  /// drops the torn/corrupt tail if any, and truncates the file to the
  /// valid prefix. `stats` (optional) reports what happened.
  struct ReplayStats {
    uint64_t records_applied = 0;
    uint64_t records_skipped = 0;   // fully covered by a checkpoint
    uint64_t records_dropped = 0;   // torn or corrupt tail records
    uint64_t bytes_dropped = 0;
    uint64_t points_applied = 0;
  };
  Status ReplayInto(SeriesStore* store, ReplayStats* stats);

  Status AppendCreateSeries(const std::string& name, uint8_t time_encoding,
                            uint8_t value_encoding, uint32_t page_size,
                            uint32_t block_size, uint8_t flags = 0);
  Status AppendPoints(const std::string& name, uint64_t first_seq,
                      const int64_t* times, const int64_t* values, size_t n);
  Status AppendPointsF64(const std::string& name, uint64_t first_seq,
                         const int64_t* times, const double* values,
                         size_t n);
  /// Overlap-buffer (out-of-order) variants: same framing as the ordinary
  /// appends, but replay routes them into the series' overlap buffer.
  Status AppendPointsOoo(const std::string& name, uint64_t first_seq,
                         const int64_t* times, const int64_t* values,
                         size_t n);
  Status AppendPointsOooF64(const std::string& name, uint64_t first_seq,
                            const int64_t* times, const double* values,
                            size_t n);
  /// Inclusive tombstone range [t0, t1] (fence-clamped by the store).
  Status AppendDeleteRange(const std::string& name, int64_t t0, int64_t t1);
  Status AppendSetTtl(const std::string& name, int64_t ttl_nanos);

  /// Forces an fsync of everything appended so far.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint made it redundant).
  Status Reset();

  Stats stats() const;
  const std::string& path() const { return path_; }

 private:
  enum RecordType : uint8_t {
    kCreateSeries = 1,
    kAppendInt = 2,
    kAppendF64 = 3,
    kDeleteRange = 4,
    kSetTtl = 5,
    kAppendIntOoo = 6,
    kAppendF64Ooo = 7,
  };

  Wal(std::string path, int fd, const Options& options);

  /// Frames `payload` and appends it; applies the fsync policy.
  Status AppendRecord(const std::vector<uint8_t>& payload);
  Status SyncLocked();

  const std::string path_;
  const Options options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  size_t unsynced_bytes_ = 0;
  Stats stats_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_WAL_H_
