#ifndef ETSQP_STORAGE_PRUNING_INDEX_H_
#define ETSQP_STORAGE_PRUNING_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "simd/prune_simd.h"
#include "storage/page.h"

namespace etsqp::storage {

/// The per-shard pruning index: a two-level packed SoA interval structure
/// over (time_min, time_max, value_min, value_max) scanned with the SIMD
/// compare+mask kernels of simd/prune_simd.h.
///
///  - Level 1 (PruningIndex): one summary entry per series — a conservative
///    envelope of everything ever appended (pages, tail, OOO buffers).
///    Envelopes only widen, so deletes/TTL/compaction can never make them
///    under-approximate; a fleet probe ("which of 10^5 series can match")
///    is one SIMD sweep over four flat arrays instead of a per-series
///    header walk.
///  - Level 2 (PruneLeaves): one entry per *sealed page* of one series,
///    bit-exact with the page headers. The block is immutable; SeriesStore
///    swaps in a rebuilt block under its unique lock whenever the page list
///    changes (seal install, AddPage, compaction install, load) and
///    GetSnapshot captures the pointer under the same shared lock as the
///    page vector — so a probe is epoch-consistent with the snapshot it
///    plans against by construction. Nothing is ever persisted: on load the
///    leaves rebuild from page headers, so the index cannot go stale on
///    disk.
///
/// Value bounds live in a single int64 key domain so one integer kernel
/// covers both series types: integer series store raw values, float series
/// store OrderedValueKey() of the header's bit-cast doubles. A float page
/// whose header bounds are NaN gets the full-range sentinel — it can never
/// be value-pruned (a NaN bound says nothing about the page's contents).
/// Entries are padded to the 64-wide node fan-out with never-survive
/// sentinels.

/// Order-preserving int64 key for a non-NaN double: key(a) < key(b) iff
/// a < b, with negative zero canonicalized to +0.0 so -0.0 == 0.0 survives
/// range boundaries. Callers must handle NaN themselves (see above).
inline int64_t OrderedValueKey(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is 8 bytes");
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits >= 0 ? bits : bits ^ std::numeric_limits<int64_t>::max();
}

/// The value bounds of `h` in the shared key domain. Returns false (and
/// writes the full-range never-prune sentinel) when the bounds are unusable
/// — a float header whose min/max bit-cast to NaN.
bool HeaderValueKeys(const PageHeader& h, bool is_float, int64_t* lo,
                     int64_t* hi);

/// Level-2 leaf block: per-page bounds of one series in SoA layout, padded
/// to a multiple of the 64-entry node width. Immutable after Build.
class PruneLeaves {
 public:
  static std::shared_ptr<const PruneLeaves> Build(
      const std::vector<std::shared_ptr<const Page>>& pages, bool is_float);

  /// Real (unpadded) entry count == pages.size() at build time.
  size_t count() const { return count_; }
  /// Sum of page tuple counts — lets planners report tuples_in_pages for a
  /// fully pruned series without touching any header cacheline.
  uint64_t total_tuples() const { return total_tuples_; }

  const int64_t* time_min() const { return time_min_.data(); }
  const int64_t* time_max() const { return time_max_.data(); }
  const int64_t* value_min() const { return value_min_.data(); }
  const int64_t* value_max() const { return value_max_.data(); }

 private:
  size_t count_ = 0;
  uint64_t total_tuples_ = 0;
  std::vector<int64_t> time_min_, time_max_, value_min_, value_max_;
};

/// Level-1 summary of one series, copied onto SeriesSnapshot under the
/// store lock. Conservative envelope: covers every point ever appended.
struct SeriesSummary {
  int64_t time_min = std::numeric_limits<int64_t>::max();
  int64_t time_max = std::numeric_limits<int64_t>::min();
  int64_t value_min_key = std::numeric_limits<int64_t>::max();
  int64_t value_max_key = std::numeric_limits<int64_t>::min();

  bool HasData() const { return time_min <= time_max; }
};

/// A fleet-level probe predicate. Bounds are inclusive; v_lo/v_hi are in
/// the integer domain and mapped into the float key domain per series.
struct PruneProbe {
  int64_t t_lo = std::numeric_limits<int64_t>::min();
  int64_t t_hi = std::numeric_limits<int64_t>::max();
  bool value_active = false;
  int64_t v_lo = 0;
  int64_t v_hi = 0;
};

struct PruneProbeStats {
  uint64_t series_total = 0;
  uint64_t series_matched = 0;
  uint64_t probe_nanos = 0;
};

/// Level 1 of the index. NOT internally synchronized: SeriesStore mutates
/// it under its unique lock and probes it under its shared lock.
class PruningIndex {
 public:
  /// Registers a series; returns its slot. Slots are never reused.
  size_t AddSeries(std::string name, bool is_float);

  /// Widens the time envelope of `slot` to cover [t_min, t_max].
  void WidenTime(size_t slot, int64_t t_min, int64_t t_max);
  /// Widens the value envelope; k_min/k_max are already in the slot's key
  /// domain (raw int64 for integer series, OrderedValueKey for float).
  void WidenValue(size_t slot, int64_t k_min, int64_t k_max);
  /// NaN (or otherwise unboundable) data seen: the value envelope becomes
  /// the full range and the series can never again be value-pruned.
  void InvalidateValue(size_t slot);

  size_t size() const { return names_.size(); }
  const std::string& name(size_t slot) const { return names_[slot]; }
  SeriesSummary GetSummary(size_t slot) const;

  /// One SIMD sweep over all series envelopes; returns the matched count
  /// and, when `matched` is non-null, the surviving slots in slot order.
  PruneProbeStats CountMatching(const PruneProbe& probe, simd::PruneIsa isa,
                                std::vector<size_t>* matched = nullptr) const;

 private:
  std::vector<std::string> names_;
  // SoA envelopes padded to the 64-entry node width with dead sentinels.
  std::vector<int64_t> time_min_, time_max_, value_min_, value_max_;
  // Per-slot bit: float series (value envelope is in the key domain).
  std::vector<uint64_t> float_words_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_PRUNING_INDEX_H_
