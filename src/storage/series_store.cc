#include "storage/series_store.h"

namespace etsqp::storage {

Status SeriesStore::CreateSeries(const std::string& name,
                                 const SeriesOptions& options) {
  if (series_.count(name) != 0) {
    return Status::InvalidArgument("series exists: " + name);
  }
  Series s;
  s.name = name;
  s.options = options;
  series_.emplace(name, std::move(s));
  return Status::Ok();
}

Status SeriesStore::Append(const std::string& name, int64_t time,
                           int64_t value) {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.is_float()) return Status::InvalidArgument("float series: " + name);
  s.buf_times.push_back(time);
  s.buf_values.push_back(value);
  if (s.buf_times.size() >= s.options.page_size) {
    return FlushSeries(&s);
  }
  return Status::Ok();
}

Status SeriesStore::AppendF64(const std::string& name, int64_t time,
                              double value) {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (!s.is_float()) return Status::InvalidArgument("int series: " + name);
  s.buf_times.push_back(time);
  s.buf_values_f64.push_back(value);
  if (s.buf_times.size() >= s.options.page_size) {
    return FlushSeries(&s);
  }
  return Status::Ok();
}

Status SeriesStore::AppendBatchF64(const std::string& name,
                                   const int64_t* times, const double* values,
                                   size_t n) {
  for (size_t i = 0; i < n; ++i) {
    ETSQP_RETURN_IF_ERROR(AppendF64(name, times[i], values[i]));
  }
  return Status::Ok();
}

Status SeriesStore::AppendBatch(const std::string& name, const int64_t* times,
                                const int64_t* values, size_t n) {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.is_float()) return Status::InvalidArgument("float series: " + name);
  for (size_t i = 0; i < n; ++i) {
    s.buf_times.push_back(times[i]);
    s.buf_values.push_back(values[i]);
    if (s.buf_times.size() >= s.options.page_size) {
      ETSQP_RETURN_IF_ERROR(FlushSeries(&s));
    }
  }
  return Status::Ok();
}

Status SeriesStore::Flush(const std::string& name) {
  if (!name.empty()) {
    auto it = series_.find(name);
    if (it == series_.end()) return Status::NotFound("series: " + name);
    return FlushSeries(&it->second);
  }
  for (auto& [unused, s] : series_) {
    ETSQP_RETURN_IF_ERROR(FlushSeries(&s));
  }
  return Status::Ok();
}

Status SeriesStore::FlushSeries(Series* s) {
  if (s->buf_times.empty()) return Status::Ok();
  Result<Page> page =
      s->is_float()
          ? BuildPageF64(s->buf_times.data(), s->buf_values_f64.data(),
                         s->buf_times.size(), s->options.page)
          : BuildPage(s->buf_times.data(), s->buf_values.data(),
                      s->buf_times.size(), s->options.page);
  if (!page.ok()) return page.status();
  s->total_points += s->buf_times.size();
  s->pages.push_back(std::move(page).value());
  s->buf_times.clear();
  s->buf_values.clear();
  s->buf_values_f64.clear();
  return Status::Ok();
}

Status SeriesStore::AddPage(const std::string& name, Page page) {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  it->second.total_points += page.header.count;
  it->second.pages.push_back(std::move(page));
  return Status::Ok();
}

bool SeriesStore::HasSeries(const std::string& name) const {
  return series_.count(name) != 0;
}

Result<const SeriesStore::Series*> SeriesStore::GetSeries(
    const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return Status::NotFound("series: " + name);
  return &it->second;
}

std::vector<std::string> SeriesStore::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

uint64_t SeriesStore::EncodedBytes(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return 0;
  uint64_t total = 0;
  for (const Page& p : it->second.pages) total += p.encoded_bytes();
  return total;
}

}  // namespace etsqp::storage
