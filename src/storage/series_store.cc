#include "storage/series_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace etsqp::storage {

void AddInterval(std::vector<TimeInterval>* set, TimeInterval add) {
  if (add.lo > add.hi) return;
  std::vector<TimeInterval>& s = *set;
  std::vector<TimeInterval> out;
  out.reserve(s.size() + 1);
  size_t i = 0;
  while (i < s.size() && s[i].hi < add.lo) out.push_back(s[i++]);
  while (i < s.size() && s[i].lo <= add.hi) {
    add.lo = std::min(add.lo, s[i].lo);
    add.hi = std::max(add.hi, s[i].hi);
    ++i;
  }
  out.push_back(add);
  while (i < s.size()) out.push_back(s[i++]);
  *set = std::move(out);
}

namespace {

/// Index of the first interval whose hi >= t (set sorted by lo, disjoint).
size_t FirstReaching(const std::vector<TimeInterval>& set, int64_t t) {
  size_t lo = 0, hi = set.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (set[mid].hi < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

bool IntervalsContain(const std::vector<TimeInterval>& set, int64_t t) {
  size_t i = FirstReaching(set, t);
  return i < set.size() && set[i].lo <= t;
}

bool IntervalsOverlap(const std::vector<TimeInterval>& set, int64_t lo,
                      int64_t hi) {
  size_t i = FirstReaching(set, lo);
  return i < set.size() && set[i].lo <= hi;
}

bool IntervalsCover(const std::vector<TimeInterval>& set, int64_t lo,
                    int64_t hi) {
  size_t i = FirstReaching(set, lo);
  return i < set.size() && set[i].lo <= lo && set[i].hi >= hi;
}

namespace {

/// Definition 1: times within a series are strictly increasing. The whole
/// batch is checked against the series fence before anything is logged or
/// buffered, so a rejected batch leaves no partial state.
Status ValidateOrdering(const SeriesStore::Series& s, const int64_t* times,
                        size_t n) {
  int64_t last = s.last_time;
  for (size_t i = 0; i < n; ++i) {
    if (times[i] <= last) {
      return Status::InvalidArgument(
          "out-of-order timestamp " + std::to_string(times[i]) +
          " (newest is " + std::to_string(last) + ") in series: " + s.name);
    }
    last = times[i];
  }
  return Status::Ok();
}

}  // namespace

SeriesStore::SeriesStore() : state_(std::make_shared<State>()) {}

SeriesStore::SeriesStore(SeriesStore&& o) noexcept
    : state_(std::move(o.state_)) {
  o.state_ = std::make_shared<State>();
}

SeriesStore& SeriesStore::operator=(SeriesStore&& o) noexcept {
  if (this != &o) {
    state_ = std::move(o.state_);
    o.state_ = std::make_shared<State>();
  }
  return *this;
}

Status SeriesStore::CreateSeries(const std::string& name,
                                 const SeriesOptions& options) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  if (st->series.count(name) != 0) {
    return Status::InvalidArgument("series exists: " + name);
  }
  if (st->wal != nullptr) {
    ETSQP_RETURN_IF_ERROR(st->wal->AppendCreateSeries(
        name, static_cast<uint8_t>(options.page.time_encoding),
        static_cast<uint8_t>(options.page.value_encoding), options.page_size,
        options.page.block_size, options.allow_out_of_order ? 1 : 0));
  }
  Series s;
  s.name = name;
  s.options = options;
  s.prune_slot = st->prune_index.AddSeries(name, s.is_float());
  s.prune_leaves = PruneLeaves::Build({}, s.is_float());
  st->series.emplace(name, std::move(s));
  return Status::Ok();
}

Status SeriesStore::CreateSeriesForReplay(const std::string& name,
                                          const SeriesOptions& options) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  if (st->series.count(name) != 0) return Status::Ok();
  Series s;
  s.name = name;
  s.options = options;
  s.prune_slot = st->prune_index.AddSeries(name, s.is_float());
  s.prune_leaves = PruneLeaves::Build({}, s.is_float());
  st->series.emplace(name, std::move(s));
  return Status::Ok();
}

void SeriesStore::RebuildLeavesLocked(Series* s) {
  s->prune_leaves = PruneLeaves::Build(s->pages, s->is_float());
}

void SeriesStore::WidenEnvelopeLocked(State* st, const Series& s,
                                      const int64_t* times,
                                      const int64_t* ivalues,
                                      const double* fvalues, size_t n) {
  if (n == 0) return;
  int64_t t_min = times[0], t_max = times[0];
  for (size_t i = 1; i < n; ++i) {
    if (times[i] < t_min) t_min = times[i];
    if (times[i] > t_max) t_max = times[i];
  }
  st->prune_index.WidenTime(s.prune_slot, t_min, t_max);
  if (fvalues != nullptr) {
    bool any = false, has_nan = false;
    double lo = 0, hi = 0;
    for (size_t i = 0; i < n; ++i) {
      double v = fvalues[i];
      if (std::isnan(v)) {
        has_nan = true;
        continue;
      }
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
    }
    if (has_nan) {
      // NaN can slip past any finite bound, so the series can never again
      // be value-pruned at level 1 (the pages keep their own verdicts).
      st->prune_index.InvalidateValue(s.prune_slot);
    } else if (any) {
      st->prune_index.WidenValue(s.prune_slot, OrderedValueKey(lo),
                                 OrderedValueKey(hi));
    }
  } else if (ivalues != nullptr) {
    int64_t lo = ivalues[0], hi = ivalues[0];
    for (size_t i = 1; i < n; ++i) {
      if (ivalues[i] < lo) lo = ivalues[i];
      if (ivalues[i] > hi) hi = ivalues[i];
    }
    st->prune_index.WidenValue(s.prune_slot, lo, hi);
  }
}

void SeriesStore::WidenEnvelopeFromHeaderLocked(State* st, const Series& s,
                                                const PageHeader& h) {
  st->prune_index.WidenTime(s.prune_slot, h.min_time, h.max_time);
  int64_t lo, hi;
  if (HeaderValueKeys(h, s.is_float(), &lo, &hi)) {
    st->prune_index.WidenValue(s.prune_slot, lo, hi);
  } else {
    st->prune_index.InvalidateValue(s.prune_slot);
  }
}

Status SeriesStore::BuildSegmentPage(const SealSegment& seg,
                                     const PageOptions& options,
                                     bool is_float,
                                     std::shared_ptr<const Page>* out) {
  Result<Page> page =
      is_float ? BuildPageF64(seg.times.data(), seg.values_f64.data(),
                              seg.times.size(), options)
               : BuildPage(seg.times.data(), seg.values.data(),
                           seg.times.size(), options);
  if (!page.ok()) return page.status();
  *out = std::make_shared<const Page>(std::move(page).value());
  return Status::Ok();
}

void SeriesStore::NotePageInstalledLocked(State* st) {
  if (st->compact_trigger_pages == 0 || !st->compact_trigger) return;
  if (++st->pages_since_trigger >= st->compact_trigger_pages) {
    st->pages_since_trigger = 0;
    // Fires under the store lock: the callback only schedules async work
    // (the db layer submits a compaction pass to the shared executor).
    st->compact_trigger();
  }
}

void SeriesStore::DrainReadySegmentsLocked(State* st, Series* s) {
  bool installed = false;
  while (!s->sealing.empty() && s->sealing.front()->ready) {
    SealSegment& front = *s->sealing.front();
    if (!front.error.ok()) {
      if (s->seal_error.ok()) s->seal_error = front.error;
    } else {
      s->total_points += front.page->header.count;
      s->pages.push_back(std::move(front.page));
      ++s->epoch;  // seal install: cached results over the tail go stale
      installed = true;
      ++st->ingest.pages_sealed;
      ++st->ingest.background_seals;
      NotePageInstalledLocked(st);
    }
    s->sealing.pop_front();
  }
  if (installed) RebuildLeavesLocked(s);
}

Status SeriesStore::SealBufferLocked(State* st, Series* s) {
  if (s->buf_times.empty()) return Status::Ok();
  auto segment = std::make_shared<SealSegment>();
  segment->times = std::move(s->buf_times);
  segment->values = std::move(s->buf_values);
  segment->values_f64 = std::move(s->buf_values_f64);
  s->buf_times.clear();
  s->buf_values.clear();
  s->buf_values_f64.clear();

  if (!st->background_seal || !st->submit) {
    // Inline seal: encode and install immediately (the seed behaviour).
    uint64_t t0 = metrics::NowNanos();
    std::shared_ptr<const Page> page;
    Status status =
        BuildSegmentPage(*segment, s->options.page, s->is_float(), &page);
    st->ingest.seal_nanos += metrics::NowNanos() - t0;
    if (!status.ok()) return status;
    s->total_points += page->header.count;
    s->pages.push_back(std::move(page));
    ++s->epoch;
    RebuildLeavesLocked(s);
    ++st->ingest.pages_sealed;
    NotePageInstalledLocked(st);
    return Status::Ok();
  }

  // Background seal: park the segment (it stays part of the queryable tail
  // via GetSnapshot) and encode on the executor. The task holds the shared
  // state, not the SeriesStore shell, so it survives a store move/destroy.
  s->sealing.push_back(segment);
  std::shared_ptr<State> state = state_;
  std::string name = s->name;
  PageOptions page_options = s->options.page;
  bool is_float = s->is_float();
  st->submit([state, segment, name, page_options, is_float] {
    uint64_t t0 = metrics::NowNanos();
    std::shared_ptr<const Page> page;
    Status status = BuildSegmentPage(*segment, page_options, is_float, &page);
    uint64_t nanos = metrics::NowNanos() - t0;
    std::unique_lock<std::shared_mutex> lock(state->mu);
    state->ingest.seal_nanos += nanos;
    segment->ready = true;
    segment->page = std::move(page);
    segment->error = status;
    auto it = state->series.find(name);
    if (it != state->series.end()) {
      DrainReadySegmentsLocked(state.get(), &it->second);
    }
    state->seal_cv.notify_all();
  });
  return Status::Ok();
}

Status SeriesStore::AppendLocked(State* st, const std::string& name,
                                 const int64_t* times, const int64_t* ivalues,
                                 const double* fvalues, size_t n) {
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.is_float() != (fvalues != nullptr)) {
    return Status::InvalidArgument(
        (s.is_float() ? "float series: " : "int series: ") + name);
  }
  if (n == 0) return Status::Ok();
  Status ordered = ValidateOrdering(s, times, n);
  size_t ooo_n = 0;
  if (!ordered.ok()) {
    if (!s.options.allow_out_of_order) {
      ++st->ingest.rejected_batches;
      return ordered;
    }
    // Late/overlapping batch: it must still be internally strictly
    // increasing; the prefix at or below the fence goes to the overlap
    // buffer, the rest continues down the ordinary in-order path.
    for (size_t i = 1; i < n; ++i) {
      if (times[i] <= times[i - 1]) {
        ++st->ingest.rejected_batches;
        return Status::InvalidArgument(
            "out-of-order batch not internally increasing in series: " +
            name);
      }
    }
    ooo_n = static_cast<size_t>(
        std::upper_bound(times, times + n, s.last_time) - times);
  }
  // The batch is accepted from here on (a WAL failure below still rejects
  // it — over-widening the envelope is conservative, never incorrect).
  WidenEnvelopeLocked(st, s, times, ivalues, fvalues, n);
  if (ooo_n > 0) {
    if (st->wal != nullptr) {
      Status logged =
          s.is_float()
              ? st->wal->AppendPointsOooF64(name, s.appended_points, times,
                                            fvalues, ooo_n)
              : st->wal->AppendPointsOoo(name, s.appended_points, times,
                                         ivalues, ooo_n);
      ETSQP_RETURN_IF_ERROR(logged);
    }
    MergeOooLocked(&s, times, ivalues, fvalues, ooo_n);
    // The overlap buffer is invisible to queries until compaction
    // reconciles it, so the epoch does not move — cached results stay
    // valid. The sequence fence does: replay idempotency covers these
    // points like any other.
    s.appended_points += ooo_n;
    st->ingest.points_appended += ooo_n;
    st->ingest.ooo_points += ooo_n;
    times += ooo_n;
    if (ivalues != nullptr) ivalues += ooo_n;
    if (fvalues != nullptr) fvalues += ooo_n;
    n -= ooo_n;
    if (n == 0) {
      ++st->ingest.append_batches;
      return Status::Ok();
    }
  }
  // Durability before visibility: the WAL write precedes the buffer
  // mutation, so an acknowledged point is always recoverable.
  if (st->wal != nullptr) {
    Status logged =
        s.is_float()
            ? st->wal->AppendPointsF64(name, s.appended_points, times,
                                       fvalues, n)
            : st->wal->AppendPoints(name, s.appended_points, times, ivalues,
                                    n);
    ETSQP_RETURN_IF_ERROR(logged);
  }
  for (size_t i = 0; i < n; ++i) {
    s.buf_times.push_back(times[i]);
    if (s.is_float()) {
      s.buf_values_f64.push_back(fvalues[i]);
    } else {
      s.buf_values.push_back(ivalues[i]);
    }
    if (s.buf_times.size() >= s.options.page_size) {
      ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, &s));
    }
  }
  s.appended_points += n;
  s.last_time = times[n - 1];
  ++s.epoch;
  st->ingest.points_appended += n;
  ++st->ingest.append_batches;
  return Status::Ok();
}

Status SeriesStore::Append(const std::string& name, int64_t time,
                           int64_t value) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, &time, &value, nullptr, 1);
}

Status SeriesStore::AppendF64(const std::string& name, int64_t time,
                              double value) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, &time, nullptr, &value, 1);
}

Status SeriesStore::AppendBatch(const std::string& name, const int64_t* times,
                                const int64_t* values, size_t n) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, times, values, nullptr, n);
}

Status SeriesStore::AppendBatchF64(const std::string& name,
                                   const int64_t* times, const double* values,
                                   size_t n) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, times, nullptr, values, n);
}

void SeriesStore::MergeOooLocked(Series* s, const int64_t* times,
                                 const int64_t* ivalues, const double* fvalues,
                                 size_t n) {
  const bool is_float = s->is_float();
  std::vector<int64_t> mt;
  std::vector<int64_t> mi;
  std::vector<double> mf;
  mt.reserve(s->ooo_times.size() + n);
  if (is_float) {
    mf.reserve(s->ooo_times.size() + n);
  } else {
    mi.reserve(s->ooo_times.size() + n);
  }
  size_t a = 0, b = 0;
  while (a < s->ooo_times.size() || b < n) {
    bool take_new;
    if (a >= s->ooo_times.size()) {
      take_new = true;
    } else if (b >= n) {
      take_new = false;
    } else if (s->ooo_times[a] < times[b]) {
      take_new = false;
    } else if (s->ooo_times[a] > times[b]) {
      take_new = true;
    } else {
      ++a;  // duplicate timestamp: the later arrival wins
      take_new = true;
    }
    if (take_new) {
      mt.push_back(times[b]);
      if (is_float) {
        mf.push_back(fvalues[b]);
      } else {
        mi.push_back(ivalues[b]);
      }
      ++b;
    } else {
      mt.push_back(s->ooo_times[a]);
      if (is_float) {
        mf.push_back(s->ooo_values_f64[a]);
      } else {
        mi.push_back(s->ooo_values[a]);
      }
      ++a;
    }
  }
  s->ooo_times = std::move(mt);
  s->ooo_values = std::move(mi);
  s->ooo_values_f64 = std::move(mf);
}

std::vector<TimeInterval> SeriesStore::EffectiveTombstones(const Series& s) {
  std::vector<TimeInterval> eff = s.tombstones;
  if (s.ttl_nanos > 0 && s.last_time != INT64_MIN) {
    // Points at or below last_time - ttl are expired. The cut keys off the
    // series' own newest time, so it is replay-deterministic.
    __int128 cut = static_cast<__int128>(s.last_time) - s.ttl_nanos;
    if (cut >= INT64_MIN) {
      AddInterval(&eff, {INT64_MIN, static_cast<int64_t>(cut)});
    }
  }
  return eff;
}

Status SeriesStore::DeleteRange(const std::string& name, int64_t t0,
                                int64_t t1) {
  if (t0 > t1) return Status::InvalidArgument("delete: empty range");
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.last_time == INT64_MIN) return Status::Ok();  // no data yet
  // Clamp to the data the series has seen so the tombstone never masks
  // strictly-newer future appends; the clamped range is what gets logged,
  // so replay at the same log position reproduces it exactly.
  int64_t hi = std::min(t1, s.last_time);
  if (t0 > hi) return Status::Ok();  // entirely in the future
  if (st->wal != nullptr) {
    ETSQP_RETURN_IF_ERROR(st->wal->AppendDeleteRange(name, t0, hi));
  }
  AddInterval(&s.tombstones, {t0, hi});
  ++s.epoch;
  ++st->ingest.delete_ranges;
  return Status::Ok();
}

Status SeriesStore::SetTtl(const std::string& name, int64_t ttl_nanos) {
  if (ttl_nanos < 0) return Status::InvalidArgument("ttl: negative");
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (st->wal != nullptr) {
    ETSQP_RETURN_IF_ERROR(st->wal->AppendSetTtl(name, ttl_nanos));
  }
  s.ttl_nanos = ttl_nanos;
  ++s.epoch;
  return Status::Ok();
}

std::vector<TimeInterval> SeriesStore::Tombstones(
    const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? std::vector<TimeInterval>{}
                                : it->second.tombstones;
}

int64_t SeriesStore::Ttl(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.ttl_nanos;
}

uint64_t SeriesStore::OooPoints(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.ooo_times.size();
}

Status SeriesStore::ApplyReplayDelete(const std::string& name, int64_t t0,
                                      int64_t t1) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) {
    return Status::Corruption("wal: delete on unknown series: " + name);
  }
  Series& s = it->second;
  if (t0 > t1) return Status::Corruption("wal: inverted delete range");
  // The logged range was clamped at append time; re-clamp for safety (the
  // fence at this log position is at least what it was then).
  if (s.last_time == INT64_MIN) return Status::Ok();
  int64_t hi = std::min(t1, s.last_time);
  if (t0 > hi) return Status::Ok();
  AddInterval(&s.tombstones, {t0, hi});
  ++s.epoch;
  return Status::Ok();
}

Status SeriesStore::ApplyReplayTtl(const std::string& name,
                                   int64_t ttl_nanos) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) {
    return Status::Corruption("wal: ttl on unknown series: " + name);
  }
  if (ttl_nanos < 0) return Status::Corruption("wal: negative ttl");
  it->second.ttl_nanos = ttl_nanos;
  ++it->second.epoch;
  return Status::Ok();
}

Status SeriesStore::ApplyReplayBatchOoo(const std::string& name,
                                        uint64_t first_seq,
                                        const int64_t* times,
                                        const int64_t* ivalues,
                                        const double* fvalues, size_t n,
                                        size_t* points_applied) {
  *points_applied = 0;
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) {
    return Status::Corruption("wal: append to unknown series: " + name);
  }
  Series& s = it->second;
  if (s.is_float() != (fvalues != nullptr)) {
    return Status::Corruption("wal: value type mismatch for series: " + name);
  }
  if (first_seq > s.appended_points) {
    return Status::Corruption(
        "wal: sequence gap in series " + name + ": record starts at " +
        std::to_string(first_seq) + ", store has " +
        std::to_string(s.appended_points));
  }
  size_t covered = static_cast<size_t>(s.appended_points - first_seq);
  if (covered >= n) return Status::Ok();
  times += covered;
  if (ivalues != nullptr) ivalues += covered;
  if (fvalues != nullptr) fvalues += covered;
  size_t apply = n - covered;
  for (size_t i = 1; i < apply; ++i) {
    if (times[i] <= times[i - 1]) {
      return Status::Corruption("wal: overlap record not increasing");
    }
  }
  WidenEnvelopeLocked(st, s, times, ivalues, fvalues, apply);
  MergeOooLocked(&s, times, ivalues, fvalues, apply);
  s.appended_points += apply;
  *points_applied = apply;
  return Status::Ok();
}

Status SeriesStore::BeginCompaction(const std::string& name,
                                    CompactionCapture* out) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.compacting) {
    return Status::FailedPrecondition("compaction in flight for series: " +
                                      name);
  }
  s.compacting = true;
  out->name = s.name;
  out->options = s.options;
  out->is_float = s.is_float();
  out->pages = s.pages;
  out->explicit_tombstones = s.tombstones;
  out->tombstones = EffectiveTombstones(s);
  out->ooo_times = s.ooo_times;
  out->ooo_values = s.ooo_values;
  out->ooo_values_f64 = s.ooo_values_f64;
  out->sealed_max_time =
      s.pages.empty() ? INT64_MIN : s.pages.back()->header.max_time;
  out->tail_empty = s.buf_times.empty() && s.sealing.empty();
  return Status::Ok();
}

Status SeriesStore::InstallCompaction(const CompactionCapture& capture,
                                      CompactionInstall install) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(capture.name);
  if (it == st->series.end()) {
    return Status::Aborted("compaction: series vanished: " + capture.name);
  }
  Series& s = it->second;
  s.compacting = false;  // the pass ends here, install or not
  if (install.replace_begin > install.replace_end ||
      install.replace_end > capture.pages.size()) {
    return Status::InvalidArgument("compaction: bad replace range");
  }
  if (capture.pages.size() > s.pages.size()) {
    return Status::Aborted("compaction: page list changed");
  }
  // Captured indices are stable (appends only push_back; this pass is the
  // only possible remover), but verify pointer identity across the whole
  // replaced span before splicing — a mismatch means the invariant broke
  // and installing would lose data.
  for (size_t i = install.replace_begin; i < install.replace_end; ++i) {
    if (s.pages[i].get() != capture.pages[i].get()) {
      return Status::Aborted("compaction: page list changed");
    }
  }
  std::vector<std::shared_ptr<const Page>> pages;
  pages.reserve(s.pages.size() + install.new_pages.size() -
                (install.replace_end - install.replace_begin));
  pages.insert(pages.end(), s.pages.begin(),
               s.pages.begin() + static_cast<long>(install.replace_begin));
  for (auto& p : install.new_pages) pages.push_back(std::move(p));
  pages.insert(pages.end(),
               s.pages.begin() + static_cast<long>(install.replace_end),
               s.pages.end());
  s.pages = std::move(pages);
  uint64_t total = 0;
  for (const auto& p : s.pages) total += p->header.count;
  s.total_points = total;

  // Trim the reconciled overlap points by (time, value) identity: a point
  // updated since capture no longer matches and stays buffered for the
  // next pass — last-write-wins survives the race.
  if (install.ooo_consumed > 0) {
    size_t consumed =
        std::min(install.ooo_consumed, capture.ooo_times.size());
    std::vector<int64_t> nt, ni;
    std::vector<double> nf;
    size_t ci = 0;
    for (size_t j = 0; j < s.ooo_times.size(); ++j) {
      while (ci < consumed && capture.ooo_times[ci] < s.ooo_times[j]) ++ci;
      bool drop = false;
      if (ci < consumed && capture.ooo_times[ci] == s.ooo_times[j]) {
        if (capture.is_float) {
          drop = std::memcmp(&capture.ooo_values_f64[ci],
                             &s.ooo_values_f64[j], sizeof(double)) == 0;
        } else {
          drop = capture.ooo_values[ci] == s.ooo_values[j];
        }
        if (drop) ++ci;
      }
      if (!drop) {
        nt.push_back(s.ooo_times[j]);
        if (capture.is_float) {
          nf.push_back(s.ooo_values_f64[j]);
        } else {
          ni.push_back(s.ooo_values[j]);
        }
      }
    }
    s.ooo_times = std::move(nt);
    s.ooo_values = std::move(ni);
    s.ooo_values_f64 = std::move(nf);
  }

  // Drop resolved tombstones only when still present verbatim: a range a
  // concurrent DeleteRange merged/grew keeps masking (conservative).
  for (const TimeInterval& t : install.tombstones_resolved) {
    for (auto iter = s.tombstones.begin(); iter != s.tombstones.end();
         ++iter) {
      if (iter->lo == t.lo && iter->hi == t.hi) {
        s.tombstones.erase(iter);
        break;
      }
    }
  }
  ++s.epoch;  // rewritten pages: every cached result over them goes stale
  RebuildLeavesLocked(&s);
  return Status::Ok();
}

void SeriesStore::AbortCompaction(const std::string& name) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it != st->series.end()) it->second.compacting = false;
}

void SeriesStore::SetCompactionTrigger(uint32_t pages_threshold,
                                       std::function<void()> trigger) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->compact_trigger_pages = pages_threshold;
  st->pages_since_trigger = 0;
  st->compact_trigger = std::move(trigger);
}

Status SeriesStore::RestoreSeriesMeta(const std::string& name,
                                      uint64_t appended_points,
                                      int64_t ttl_nanos,
                                      std::vector<TimeInterval> tombstones,
                                      std::vector<int64_t> ooo_times,
                                      std::vector<int64_t> ooo_values,
                                      std::vector<double> ooo_values_f64) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.is_float()) {
    if (ooo_values_f64.size() != ooo_times.size()) {
      return Status::Corruption("restore: overlap arrays mismatched");
    }
  } else if (ooo_values.size() != ooo_times.size()) {
    return Status::Corruption("restore: overlap arrays mismatched");
  }
  if (appended_points > s.appended_points) s.appended_points = appended_points;
  if (ttl_nanos > 0) s.ttl_nanos = ttl_nanos;
  for (const TimeInterval& t : tombstones) AddInterval(&s.tombstones, t);
  if (!ooo_times.empty()) {
    WidenEnvelopeLocked(st, s, ooo_times.data(),
                        ooo_values.empty() ? nullptr : ooo_values.data(),
                        ooo_values_f64.empty() ? nullptr
                                               : ooo_values_f64.data(),
                        ooo_times.size());
    MergeOooLocked(&s, ooo_times.data(),
                   ooo_values.empty() ? nullptr : ooo_values.data(),
                   ooo_values_f64.empty() ? nullptr : ooo_values_f64.data(),
                   ooo_times.size());
  }
  ++s.epoch;
  return Status::Ok();
}

Status SeriesStore::ApplyReplayBatch(const std::string& name,
                                     uint64_t first_seq, const int64_t* times,
                                     const int64_t* ivalues,
                                     const double* fvalues, size_t n,
                                     size_t* points_applied) {
  *points_applied = 0;
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) {
    return Status::Corruption("wal: append to unknown series: " + name);
  }
  Series& s = it->second;
  if (s.is_float() != (fvalues != nullptr)) {
    return Status::Corruption("wal: value type mismatch for series: " + name);
  }
  if (first_seq > s.appended_points) {
    return Status::Corruption(
        "wal: sequence gap in series " + name + ": record starts at " +
        std::to_string(first_seq) + ", store has " +
        std::to_string(s.appended_points));
  }
  size_t covered = static_cast<size_t>(s.appended_points - first_seq);
  if (covered >= n) return Status::Ok();  // checkpoint already has it all
  times += covered;
  if (ivalues != nullptr) ivalues += covered;
  if (fvalues != nullptr) fvalues += covered;
  size_t apply = n - covered;
  Status ordered = ValidateOrdering(s, times, apply);
  if (!ordered.ok()) {
    return Status::Corruption("wal: " + std::string(ordered.message()));
  }
  WidenEnvelopeLocked(st, s, times, ivalues, fvalues, apply);
  for (size_t i = 0; i < apply; ++i) {
    s.buf_times.push_back(times[i]);
    if (s.is_float()) {
      s.buf_values_f64.push_back(fvalues[i]);
    } else {
      s.buf_values.push_back(ivalues[i]);
    }
    if (s.buf_times.size() >= s.options.page_size) {
      ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, &s));
    }
  }
  s.appended_points += apply;
  s.last_time = times[apply - 1];
  ++s.epoch;
  *points_applied = apply;
  return Status::Ok();
}

Status SeriesStore::Flush(const std::string& name) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto flush_one = [&](Series* s) -> Status {
    // Wait out in-flight background seals first so the final page lands
    // after them in time order.
    st->seal_cv.wait(lock, [&] { return s->sealing.empty(); });
    if (!s->seal_error.ok()) return s->seal_error;
    ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, s));
    // With background sealing the final buffer went to the executor too:
    // Flush promises an empty tail, so wait for its install as well.
    st->seal_cv.wait(lock, [&] { return s->sealing.empty(); });
    return s->seal_error;
  };
  if (!name.empty()) {
    auto it = st->series.find(name);
    if (it == st->series.end()) return Status::NotFound("series: " + name);
    return flush_one(&it->second);
  }
  for (auto& [unused, s] : st->series) {
    ETSQP_RETURN_IF_ERROR(flush_one(&s));
  }
  return Status::Ok();
}

Status SeriesStore::AddPage(const std::string& name, Page page) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  uint32_t count = page.header.count;
  int64_t max_time = page.header.max_time;
  s.total_points += count;
  s.appended_points += count;
  if (max_time > s.last_time) s.last_time = max_time;
  WidenEnvelopeFromHeaderLocked(st, s, page.header);
  s.pages.push_back(std::make_shared<const Page>(std::move(page)));
  ++s.epoch;
  RebuildLeavesLocked(&s);
  NotePageInstalledLocked(st);
  return Status::Ok();
}

Status SeriesStore::AddPageShared(const std::string& name,
                                  std::shared_ptr<const Page> page) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  s.total_points += page->header.count;
  s.appended_points += page->header.count;
  if (page->header.max_time > s.last_time) s.last_time = page->header.max_time;
  WidenEnvelopeFromHeaderLocked(st, s, page->header);
  s.pages.push_back(std::move(page));
  ++s.epoch;
  RebuildLeavesLocked(&s);
  NotePageInstalledLocked(st);
  return Status::Ok();
}

Result<SeriesSnapshot> SeriesStore::GetSnapshot(
    const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  const Series& s = it->second;
  SeriesSnapshot snap;
  snap.name = s.name;
  snap.page_options = s.options.page;
  snap.is_float = s.is_float();
  snap.epoch = s.epoch;
  snap.pages = s.pages;  // shared, immutable
  snap.tombstones = EffectiveTombstones(s);
  // Leaf block and page vector are swapped together under the unique lock,
  // so this capture is always bit-consistent with snap.pages.
  snap.prune_leaves = s.prune_leaves != nullptr
                          ? s.prune_leaves
                          : PruneLeaves::Build(s.pages, snap.is_float);
  snap.summary = st->prune_index.GetSummary(s.prune_slot);

  size_t tail = s.buf_times.size();
  for (const auto& seg : s.sealing) tail += seg->times.size();
  snap.tail_times.reserve(tail);
  if (snap.is_float) {
    snap.tail_values_f64.reserve(tail);
  } else {
    snap.tail_values.reserve(tail);
  }
  // The tail is filtered against the tombstones right here (it is a copy
  // anyway); sealed pages stay shared and get masked by the exec layer.
  auto take = [&](const std::vector<int64_t>& times,
                  const std::vector<int64_t>& values,
                  const std::vector<double>& values_f64) {
    if (snap.tombstones.empty()) {
      snap.tail_times.insert(snap.tail_times.end(), times.begin(),
                             times.end());
      if (snap.is_float) {
        snap.tail_values_f64.insert(snap.tail_values_f64.end(),
                                    values_f64.begin(), values_f64.end());
      } else {
        snap.tail_values.insert(snap.tail_values.end(), values.begin(),
                                values.end());
      }
      return;
    }
    for (size_t i = 0; i < times.size(); ++i) {
      if (IntervalsContain(snap.tombstones, times[i])) continue;
      snap.tail_times.push_back(times[i]);
      if (snap.is_float) {
        snap.tail_values_f64.push_back(values_f64[i]);
      } else {
        snap.tail_values.push_back(values[i]);
      }
    }
  };
  for (const auto& seg : s.sealing) {
    take(seg->times, seg->values, seg->values_f64);
  }
  take(s.buf_times, s.buf_values, s.buf_values_f64);

  if (!snap.tail_times.empty()) {
    if (snap.is_float) {
      bool any = false, has_nan = false;
      double lo = 0, hi = 0;
      for (double v : snap.tail_values_f64) {
        if (std::isnan(v)) {
          has_nan = true;
          continue;
        }
        if (!any) {
          lo = hi = v;
          any = true;
        } else {
          if (v < lo) lo = v;
          if (v > hi) hi = v;
        }
      }
      if (has_nan) {
        // A NaN passes every value filter compare downstream, so finite
        // bounds over the rest of the tail would let pruning drop it.
        // NaN bounds make every prune comparison false — tail survives.
        lo = hi = std::numeric_limits<double>::quiet_NaN();
      }
      snap.tail_min_value_f64 = lo;
      snap.tail_max_value_f64 = hi;
    } else {
      int64_t lo = snap.tail_values[0], hi = lo;
      for (int64_t v : snap.tail_values) {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
      snap.tail_min_value = lo;
      snap.tail_max_value = hi;
    }
  }
  return snap;
}

bool SeriesStore::HasSeries(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  return st->series.count(name) != 0;
}

Result<const SeriesStore::Series*> SeriesStore::GetSeries(
    const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  return &it->second;
}

std::vector<std::string> SeriesStore::SeriesNames() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  std::vector<std::string> names;
  names.reserve(st->series.size());
  for (const auto& [name, unused] : st->series) names.push_back(name);
  return names;
}

uint64_t SeriesStore::EncodedBytes(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return 0;
  uint64_t total = 0;
  for (const auto& p : it->second.pages) total += p->encoded_bytes();
  return total;
}

uint64_t SeriesStore::SeriesEpoch(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.epoch;
}

PruneProbeStats SeriesStore::CountMatchingSeries(
    const PruneProbe& probe, std::vector<std::string>* matched) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  std::vector<size_t> slots;
  PruneProbeStats stats = st->prune_index.CountMatching(
      probe, simd::BestPruneIsa(), matched != nullptr ? &slots : nullptr);
  if (matched != nullptr) {
    matched->clear();
    matched->reserve(slots.size());
    for (size_t slot : slots) matched->push_back(st->prune_index.name(slot));
  }
  return stats;
}

uint64_t SeriesStore::TailPoints(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return 0;
  uint64_t tail = it->second.buf_times.size();
  for (const auto& seg : it->second.sealing) tail += seg->times.size();
  return tail;
}

void SeriesStore::AttachWal(std::unique_ptr<Wal> wal) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->wal = std::move(wal);
}

Wal* SeriesStore::wal() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  return st->wal.get();
}

void SeriesStore::SetBackgroundSeal(bool enabled, TaskSubmitter submit) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->background_seal = enabled;
  st->submit = std::move(submit);
}

metrics::IngestStats SeriesStore::ingest_stats() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  metrics::IngestStats stats = st->ingest;
  for (const auto& [unused, s] : st->series) {
    stats.tail_points += s.buf_times.size();
    for (const auto& seg : s.sealing) stats.tail_points += seg->times.size();
    stats.ooo_pending += s.ooo_times.size();
  }
  if (st->wal != nullptr) {
    Wal::Stats w = st->wal->stats();
    stats.wal_records = w.records;
    stats.wal_bytes = w.bytes;
    stats.wal_fsyncs = w.fsyncs;
    stats.wal_sync_nanos = w.sync_nanos;
  }
  return stats;
}

uint64_t SeriesStore::AppendedPoints(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.appended_points;
}

void SeriesStore::NoteRecovery(const Wal::ReplayStats& replay) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->ingest.recovered_records = replay.records_applied;
  st->ingest.recovered_points = replay.points_applied;
  st->ingest.dropped_wal_records = replay.records_dropped;
}

}  // namespace etsqp::storage
