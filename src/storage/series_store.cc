#include "storage/series_store.h"

#include <utility>

namespace etsqp::storage {

namespace {

/// Definition 1: times within a series are strictly increasing. The whole
/// batch is checked against the series fence before anything is logged or
/// buffered, so a rejected batch leaves no partial state.
Status ValidateOrdering(const SeriesStore::Series& s, const int64_t* times,
                        size_t n) {
  int64_t last = s.last_time;
  for (size_t i = 0; i < n; ++i) {
    if (times[i] <= last) {
      return Status::InvalidArgument(
          "out-of-order timestamp " + std::to_string(times[i]) +
          " (newest is " + std::to_string(last) + ") in series: " + s.name);
    }
    last = times[i];
  }
  return Status::Ok();
}

}  // namespace

SeriesStore::SeriesStore() : state_(std::make_shared<State>()) {}

SeriesStore::SeriesStore(SeriesStore&& o) noexcept
    : state_(std::move(o.state_)) {
  o.state_ = std::make_shared<State>();
}

SeriesStore& SeriesStore::operator=(SeriesStore&& o) noexcept {
  if (this != &o) {
    state_ = std::move(o.state_);
    o.state_ = std::make_shared<State>();
  }
  return *this;
}

Status SeriesStore::CreateSeries(const std::string& name,
                                 const SeriesOptions& options) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  if (st->series.count(name) != 0) {
    return Status::InvalidArgument("series exists: " + name);
  }
  if (st->wal != nullptr) {
    ETSQP_RETURN_IF_ERROR(st->wal->AppendCreateSeries(
        name, static_cast<uint8_t>(options.page.time_encoding),
        static_cast<uint8_t>(options.page.value_encoding), options.page_size,
        options.page.block_size));
  }
  Series s;
  s.name = name;
  s.options = options;
  st->series.emplace(name, std::move(s));
  return Status::Ok();
}

Status SeriesStore::CreateSeriesForReplay(const std::string& name,
                                          const SeriesOptions& options) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  if (st->series.count(name) != 0) return Status::Ok();
  Series s;
  s.name = name;
  s.options = options;
  st->series.emplace(name, std::move(s));
  return Status::Ok();
}

Status SeriesStore::BuildSegmentPage(const SealSegment& seg,
                                     const PageOptions& options,
                                     bool is_float,
                                     std::shared_ptr<const Page>* out) {
  Result<Page> page =
      is_float ? BuildPageF64(seg.times.data(), seg.values_f64.data(),
                              seg.times.size(), options)
               : BuildPage(seg.times.data(), seg.values.data(),
                           seg.times.size(), options);
  if (!page.ok()) return page.status();
  *out = std::make_shared<const Page>(std::move(page).value());
  return Status::Ok();
}

void SeriesStore::DrainReadySegmentsLocked(State* st, Series* s) {
  while (!s->sealing.empty() && s->sealing.front()->ready) {
    SealSegment& front = *s->sealing.front();
    if (!front.error.ok()) {
      if (s->seal_error.ok()) s->seal_error = front.error;
    } else {
      s->total_points += front.page->header.count;
      s->pages.push_back(std::move(front.page));
      ++s->epoch;  // seal install: cached results over the tail go stale
      ++st->ingest.pages_sealed;
      ++st->ingest.background_seals;
    }
    s->sealing.pop_front();
  }
}

Status SeriesStore::SealBufferLocked(State* st, Series* s) {
  if (s->buf_times.empty()) return Status::Ok();
  auto segment = std::make_shared<SealSegment>();
  segment->times = std::move(s->buf_times);
  segment->values = std::move(s->buf_values);
  segment->values_f64 = std::move(s->buf_values_f64);
  s->buf_times.clear();
  s->buf_values.clear();
  s->buf_values_f64.clear();

  if (!st->background_seal || !st->submit) {
    // Inline seal: encode and install immediately (the seed behaviour).
    uint64_t t0 = metrics::NowNanos();
    std::shared_ptr<const Page> page;
    Status status =
        BuildSegmentPage(*segment, s->options.page, s->is_float(), &page);
    st->ingest.seal_nanos += metrics::NowNanos() - t0;
    if (!status.ok()) return status;
    s->total_points += page->header.count;
    s->pages.push_back(std::move(page));
    ++s->epoch;
    ++st->ingest.pages_sealed;
    return Status::Ok();
  }

  // Background seal: park the segment (it stays part of the queryable tail
  // via GetSnapshot) and encode on the executor. The task holds the shared
  // state, not the SeriesStore shell, so it survives a store move/destroy.
  s->sealing.push_back(segment);
  std::shared_ptr<State> state = state_;
  std::string name = s->name;
  PageOptions page_options = s->options.page;
  bool is_float = s->is_float();
  st->submit([state, segment, name, page_options, is_float] {
    uint64_t t0 = metrics::NowNanos();
    std::shared_ptr<const Page> page;
    Status status = BuildSegmentPage(*segment, page_options, is_float, &page);
    uint64_t nanos = metrics::NowNanos() - t0;
    std::unique_lock<std::shared_mutex> lock(state->mu);
    state->ingest.seal_nanos += nanos;
    segment->ready = true;
    segment->page = std::move(page);
    segment->error = status;
    auto it = state->series.find(name);
    if (it != state->series.end()) {
      DrainReadySegmentsLocked(state.get(), &it->second);
    }
    state->seal_cv.notify_all();
  });
  return Status::Ok();
}

Status SeriesStore::AppendLocked(State* st, const std::string& name,
                                 const int64_t* times, const int64_t* ivalues,
                                 const double* fvalues, size_t n) {
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  if (s.is_float() != (fvalues != nullptr)) {
    return Status::InvalidArgument(
        (s.is_float() ? "float series: " : "int series: ") + name);
  }
  if (n == 0) return Status::Ok();
  Status ordered = ValidateOrdering(s, times, n);
  if (!ordered.ok()) {
    ++st->ingest.rejected_batches;
    return ordered;
  }
  // Durability before visibility: the WAL write precedes the buffer
  // mutation, so an acknowledged point is always recoverable.
  if (st->wal != nullptr) {
    Status logged =
        s.is_float()
            ? st->wal->AppendPointsF64(name, s.appended_points, times,
                                       fvalues, n)
            : st->wal->AppendPoints(name, s.appended_points, times, ivalues,
                                    n);
    ETSQP_RETURN_IF_ERROR(logged);
  }
  for (size_t i = 0; i < n; ++i) {
    s.buf_times.push_back(times[i]);
    if (s.is_float()) {
      s.buf_values_f64.push_back(fvalues[i]);
    } else {
      s.buf_values.push_back(ivalues[i]);
    }
    if (s.buf_times.size() >= s.options.page_size) {
      ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, &s));
    }
  }
  s.appended_points += n;
  s.last_time = times[n - 1];
  ++s.epoch;
  st->ingest.points_appended += n;
  ++st->ingest.append_batches;
  return Status::Ok();
}

Status SeriesStore::Append(const std::string& name, int64_t time,
                           int64_t value) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, &time, &value, nullptr, 1);
}

Status SeriesStore::AppendF64(const std::string& name, int64_t time,
                              double value) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, &time, nullptr, &value, 1);
}

Status SeriesStore::AppendBatch(const std::string& name, const int64_t* times,
                                const int64_t* values, size_t n) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, times, values, nullptr, n);
}

Status SeriesStore::AppendBatchF64(const std::string& name,
                                   const int64_t* times, const double* values,
                                   size_t n) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  return AppendLocked(st, name, times, nullptr, values, n);
}

Status SeriesStore::ApplyReplayBatch(const std::string& name,
                                     uint64_t first_seq, const int64_t* times,
                                     const int64_t* ivalues,
                                     const double* fvalues, size_t n,
                                     size_t* points_applied) {
  *points_applied = 0;
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) {
    return Status::Corruption("wal: append to unknown series: " + name);
  }
  Series& s = it->second;
  if (s.is_float() != (fvalues != nullptr)) {
    return Status::Corruption("wal: value type mismatch for series: " + name);
  }
  if (first_seq > s.appended_points) {
    return Status::Corruption(
        "wal: sequence gap in series " + name + ": record starts at " +
        std::to_string(first_seq) + ", store has " +
        std::to_string(s.appended_points));
  }
  size_t covered = static_cast<size_t>(s.appended_points - first_seq);
  if (covered >= n) return Status::Ok();  // checkpoint already has it all
  times += covered;
  if (ivalues != nullptr) ivalues += covered;
  if (fvalues != nullptr) fvalues += covered;
  size_t apply = n - covered;
  Status ordered = ValidateOrdering(s, times, apply);
  if (!ordered.ok()) {
    return Status::Corruption("wal: " + std::string(ordered.message()));
  }
  for (size_t i = 0; i < apply; ++i) {
    s.buf_times.push_back(times[i]);
    if (s.is_float()) {
      s.buf_values_f64.push_back(fvalues[i]);
    } else {
      s.buf_values.push_back(ivalues[i]);
    }
    if (s.buf_times.size() >= s.options.page_size) {
      ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, &s));
    }
  }
  s.appended_points += apply;
  s.last_time = times[apply - 1];
  ++s.epoch;
  *points_applied = apply;
  return Status::Ok();
}

Status SeriesStore::Flush(const std::string& name) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto flush_one = [&](Series* s) -> Status {
    // Wait out in-flight background seals first so the final page lands
    // after them in time order.
    st->seal_cv.wait(lock, [&] { return s->sealing.empty(); });
    if (!s->seal_error.ok()) return s->seal_error;
    ETSQP_RETURN_IF_ERROR(SealBufferLocked(st, s));
    // With background sealing the final buffer went to the executor too:
    // Flush promises an empty tail, so wait for its install as well.
    st->seal_cv.wait(lock, [&] { return s->sealing.empty(); });
    return s->seal_error;
  };
  if (!name.empty()) {
    auto it = st->series.find(name);
    if (it == st->series.end()) return Status::NotFound("series: " + name);
    return flush_one(&it->second);
  }
  for (auto& [unused, s] : st->series) {
    ETSQP_RETURN_IF_ERROR(flush_one(&s));
  }
  return Status::Ok();
}

Status SeriesStore::AddPage(const std::string& name, Page page) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  uint32_t count = page.header.count;
  int64_t max_time = page.header.max_time;
  s.total_points += count;
  s.appended_points += count;
  if (max_time > s.last_time) s.last_time = max_time;
  s.pages.push_back(std::make_shared<const Page>(std::move(page)));
  ++s.epoch;
  return Status::Ok();
}

Status SeriesStore::AddPageShared(const std::string& name,
                                  std::shared_ptr<const Page> page) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  Series& s = it->second;
  s.total_points += page->header.count;
  s.appended_points += page->header.count;
  if (page->header.max_time > s.last_time) s.last_time = page->header.max_time;
  s.pages.push_back(std::move(page));
  ++s.epoch;
  return Status::Ok();
}

Result<SeriesSnapshot> SeriesStore::GetSnapshot(
    const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  const Series& s = it->second;
  SeriesSnapshot snap;
  snap.name = s.name;
  snap.page_options = s.options.page;
  snap.is_float = s.is_float();
  snap.epoch = s.epoch;
  snap.pages = s.pages;  // shared, immutable

  size_t tail = s.buf_times.size();
  for (const auto& seg : s.sealing) tail += seg->times.size();
  snap.tail_times.reserve(tail);
  if (snap.is_float) {
    snap.tail_values_f64.reserve(tail);
  } else {
    snap.tail_values.reserve(tail);
  }
  auto take = [&](const std::vector<int64_t>& times,
                  const std::vector<int64_t>& values,
                  const std::vector<double>& values_f64) {
    snap.tail_times.insert(snap.tail_times.end(), times.begin(), times.end());
    if (snap.is_float) {
      snap.tail_values_f64.insert(snap.tail_values_f64.end(),
                                  values_f64.begin(), values_f64.end());
    } else {
      snap.tail_values.insert(snap.tail_values.end(), values.begin(),
                              values.end());
    }
  };
  for (const auto& seg : s.sealing) {
    take(seg->times, seg->values, seg->values_f64);
  }
  take(s.buf_times, s.buf_values, s.buf_values_f64);

  if (!snap.tail_times.empty()) {
    if (snap.is_float) {
      double lo = snap.tail_values_f64[0], hi = lo;
      for (double v : snap.tail_values_f64) {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
      snap.tail_min_value_f64 = lo;
      snap.tail_max_value_f64 = hi;
    } else {
      int64_t lo = snap.tail_values[0], hi = lo;
      for (int64_t v : snap.tail_values) {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
      snap.tail_min_value = lo;
      snap.tail_max_value = hi;
    }
  }
  return snap;
}

bool SeriesStore::HasSeries(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  return st->series.count(name) != 0;
}

Result<const SeriesStore::Series*> SeriesStore::GetSeries(
    const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return Status::NotFound("series: " + name);
  return &it->second;
}

std::vector<std::string> SeriesStore::SeriesNames() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  std::vector<std::string> names;
  names.reserve(st->series.size());
  for (const auto& [name, unused] : st->series) names.push_back(name);
  return names;
}

uint64_t SeriesStore::EncodedBytes(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return 0;
  uint64_t total = 0;
  for (const auto& p : it->second.pages) total += p->encoded_bytes();
  return total;
}

uint64_t SeriesStore::SeriesEpoch(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.epoch;
}

uint64_t SeriesStore::TailPoints(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  if (it == st->series.end()) return 0;
  uint64_t tail = it->second.buf_times.size();
  for (const auto& seg : it->second.sealing) tail += seg->times.size();
  return tail;
}

void SeriesStore::AttachWal(std::unique_ptr<Wal> wal) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->wal = std::move(wal);
}

Wal* SeriesStore::wal() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  return st->wal.get();
}

void SeriesStore::SetBackgroundSeal(bool enabled, TaskSubmitter submit) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->background_seal = enabled;
  st->submit = std::move(submit);
}

metrics::IngestStats SeriesStore::ingest_stats() const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  metrics::IngestStats stats = st->ingest;
  for (const auto& [unused, s] : st->series) {
    stats.tail_points += s.buf_times.size();
    for (const auto& seg : s.sealing) stats.tail_points += seg->times.size();
  }
  if (st->wal != nullptr) {
    Wal::Stats w = st->wal->stats();
    stats.wal_records = w.records;
    stats.wal_bytes = w.bytes;
    stats.wal_fsyncs = w.fsyncs;
    stats.wal_sync_nanos = w.sync_nanos;
  }
  return stats;
}

uint64_t SeriesStore::AppendedPoints(const std::string& name) const {
  State* st = state_.get();
  std::shared_lock<std::shared_mutex> lock(st->mu);
  auto it = st->series.find(name);
  return it == st->series.end() ? 0 : it->second.appended_points;
}

void SeriesStore::NoteRecovery(const Wal::ReplayStats& replay) {
  State* st = state_.get();
  std::unique_lock<std::shared_mutex> lock(st->mu);
  st->ingest.recovered_records = replay.records_applied;
  st->ingest.recovered_points = replay.points_applied;
  st->ingest.dropped_wal_records = replay.records_dropped;
}

}  // namespace etsqp::storage
