#include "storage/page.h"

#include "common/bitstream.h"

namespace etsqp::storage {

void SerializePage(const Page& page, std::vector<uint8_t>* out) {
  const PageHeader& h = page.header;
  PutFixed32BE(out, h.count);
  out->push_back(static_cast<uint8_t>(h.time_encoding));
  out->push_back(static_cast<uint8_t>(h.value_encoding));
  PutFixed64BE(out, static_cast<uint64_t>(h.min_time));
  PutFixed64BE(out, static_cast<uint64_t>(h.max_time));
  PutFixed64BE(out, static_cast<uint64_t>(h.min_value));
  PutFixed64BE(out, static_cast<uint64_t>(h.max_value));
  PutFixed32BE(out, h.time_bytes);
  PutFixed32BE(out, h.value_bytes);
  out->insert(out->end(), page.time_data.data(),
              page.time_data.data() + h.time_bytes);
  out->insert(out->end(), page.value_data.data(),
              page.value_data.data() + h.value_bytes);
}

Status DeserializePage(const uint8_t* data, size_t size, size_t* pos,
                       Page* page) {
  constexpr size_t kHeaderBytes = 4 + 2 + 32 + 8;
  if (*pos + kHeaderBytes > size) {
    return Status::Corruption("page: header truncated");
  }
  const uint8_t* p = data + *pos;
  PageHeader& h = page->header;
  h.count = GetFixed32BE(p);
  h.time_encoding = static_cast<enc::ColumnEncoding>(p[4]);
  h.value_encoding = static_cast<enc::ColumnEncoding>(p[5]);
  h.min_time = static_cast<int64_t>(GetFixed64BE(p + 6));
  h.max_time = static_cast<int64_t>(GetFixed64BE(p + 14));
  h.min_value = static_cast<int64_t>(GetFixed64BE(p + 22));
  h.max_value = static_cast<int64_t>(GetFixed64BE(p + 30));
  h.time_bytes = GetFixed32BE(p + 38);
  h.value_bytes = GetFixed32BE(p + 42);
  *pos += kHeaderBytes;
  if (*pos + h.time_bytes + h.value_bytes > size) {
    return Status::Corruption("page: payload truncated");
  }
  page->time_data.Assign(data + *pos, h.time_bytes);
  *pos += h.time_bytes;
  page->value_data.Assign(data + *pos, h.value_bytes);
  *pos += h.value_bytes;
  return Status::Ok();
}

}  // namespace etsqp::storage
