#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bitstream.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "storage/series_store.h"

namespace etsqp::storage {

namespace {

// A payload larger than this cannot be a real record (the store seals pages
// long before a batch reaches 64 MiB); treat it as a torn length field.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;
constexpr size_t kFrameBytes = 8;  // u32 len + u32 masked crc

void PutFixed16BE(std::vector<uint8_t>* dst, uint16_t v) {
  dst->push_back(static_cast<uint8_t>(v >> 8));
  dst->push_back(static_cast<uint8_t>(v));
}

void PutName(std::vector<uint8_t>* dst, const std::string& name) {
  PutFixed16BE(dst, static_cast<uint16_t>(name.size()));
  dst->insert(dst->end(), name.begin(), name.end());
}

/// Bounds-checked Big-Endian payload reader for replay.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* p, size_t n) : p_(p), n_(n) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > n_) return false;
    *v = p_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > n_) return false;
    *v = static_cast<uint16_t>((p_[pos_] << 8) | p_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > n_) return false;
    *v = GetFixed32BE(p_ + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > n_) return false;
    *v = GetFixed64BE(p_ + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadName(std::string* name) {
    uint16_t len = 0;
    if (!ReadU16(&len) || pos_ + len > n_) return false;
    name->assign(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool Done() const { return pos_ == n_; }

 private:
  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
};

Status WriteFully(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wal: write failed");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

Wal::Wal(std::string path, int fd, const Options& options)
    : path_(std::move(path)), options_(options), fd_(fd) {}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (unsynced_bytes_ > 0 && options_.fsync != FsyncPolicy::kNever) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const Options& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("wal: open " + path);
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::IoError("wal: seek " + path);
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, options));
}

Status Wal::AppendRecord(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameBytes + payload.size());
  PutFixed32BE(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32BE(&frame, MaskCrc(Crc32c(payload.data(), payload.size())));
  frame.insert(frame.end(), payload.begin(), payload.end());

  std::lock_guard<std::mutex> lock(mu_);
  ETSQP_RETURN_IF_ERROR(WriteFully(fd_, frame.data(), frame.size()));
  ++stats_.records;
  stats_.bytes += frame.size();
  unsynced_bytes_ += frame.size();
  if (options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kBatch &&
       unsynced_bytes_ >= options_.batch_bytes)) {
    return SyncLocked();
  }
  return Status::Ok();
}

Status Wal::SyncLocked() {
  if (unsynced_bytes_ == 0) return Status::Ok();
  uint64_t t0 = metrics::NowNanos();
  if (::fsync(fd_) != 0) return Status::IoError("wal: fsync " + path_);
  stats_.sync_nanos += metrics::NowNanos() - t0;
  ++stats_.fsyncs;
  unsynced_bytes_ = 0;
  return Status::Ok();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::IoError("wal: truncate " + path_);
  }
  uint64_t t0 = metrics::NowNanos();
  if (options_.fsync != FsyncPolicy::kNever && ::fsync(fd_) != 0) {
    return Status::IoError("wal: fsync " + path_);
  }
  stats_.sync_nanos += metrics::NowNanos() - t0;
  unsynced_bytes_ = 0;
  ++stats_.resets;
  return Status::Ok();
}

Wal::Stats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Wal::AppendCreateSeries(const std::string& name, uint8_t time_encoding,
                               uint8_t value_encoding, uint32_t page_size,
                               uint32_t block_size, uint8_t flags) {
  std::vector<uint8_t> payload;
  payload.push_back(kCreateSeries);
  payload.push_back(time_encoding);
  payload.push_back(value_encoding);
  PutFixed32BE(&payload, page_size);
  PutFixed32BE(&payload, block_size);
  PutName(&payload, name);
  // The flags byte is written only when set, keeping byte-identical logs
  // for flag-free series and unambiguous replay of old logs either way.
  if (flags != 0) payload.push_back(flags);
  return AppendRecord(payload);
}

Status Wal::AppendPoints(const std::string& name, uint64_t first_seq,
                         const int64_t* times, const int64_t* values,
                         size_t n) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 12 + 16 * n);
  payload.push_back(kAppendInt);
  PutName(&payload, name);
  PutFixed64BE(&payload, first_seq);
  PutFixed32BE(&payload, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    PutFixed64BE(&payload, static_cast<uint64_t>(times[i]));
    PutFixed64BE(&payload, static_cast<uint64_t>(values[i]));
  }
  return AppendRecord(payload);
}

Status Wal::AppendPointsF64(const std::string& name, uint64_t first_seq,
                            const int64_t* times, const double* values,
                            size_t n) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 12 + 16 * n);
  payload.push_back(kAppendF64);
  PutName(&payload, name);
  PutFixed64BE(&payload, first_seq);
  PutFixed32BE(&payload, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    PutFixed64BE(&payload, static_cast<uint64_t>(times[i]));
    uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    PutFixed64BE(&payload, bits);
  }
  return AppendRecord(payload);
}

Status Wal::AppendPointsOoo(const std::string& name, uint64_t first_seq,
                            const int64_t* times, const int64_t* values,
                            size_t n) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 12 + 16 * n);
  payload.push_back(kAppendIntOoo);
  PutName(&payload, name);
  PutFixed64BE(&payload, first_seq);
  PutFixed32BE(&payload, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    PutFixed64BE(&payload, static_cast<uint64_t>(times[i]));
    PutFixed64BE(&payload, static_cast<uint64_t>(values[i]));
  }
  return AppendRecord(payload);
}

Status Wal::AppendPointsOooF64(const std::string& name, uint64_t first_seq,
                               const int64_t* times, const double* values,
                               size_t n) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 12 + 16 * n);
  payload.push_back(kAppendF64Ooo);
  PutName(&payload, name);
  PutFixed64BE(&payload, first_seq);
  PutFixed32BE(&payload, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    PutFixed64BE(&payload, static_cast<uint64_t>(times[i]));
    uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    PutFixed64BE(&payload, bits);
  }
  return AppendRecord(payload);
}

Status Wal::AppendDeleteRange(const std::string& name, int64_t t0,
                              int64_t t1) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 16);
  payload.push_back(kDeleteRange);
  PutName(&payload, name);
  PutFixed64BE(&payload, static_cast<uint64_t>(t0));
  PutFixed64BE(&payload, static_cast<uint64_t>(t1));
  return AppendRecord(payload);
}

Status Wal::AppendSetTtl(const std::string& name, int64_t ttl_nanos) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + 2 + name.size() + 8);
  payload.push_back(kSetTtl);
  PutName(&payload, name);
  PutFixed64BE(&payload, static_cast<uint64_t>(ttl_nanos));
  return AppendRecord(payload);
}

Status Wal::ReplayInto(SeriesStore* store, ReplayStats* stats) {
  // File I/O happens under mu_, but the apply loop below must not: replay
  // calls into the store, which takes the store lock, while appends call
  // into the WAL *while holding* that lock — holding mu_ across store
  // calls would invert the order. Replay runs before the log is attached
  // (nothing can be appending), so dropping mu_ here is safe.
  std::vector<uint8_t> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return Status::IoError("wal: seek " + path_);
    data.resize(static_cast<size_t>(end));
    size_t got = 0;
    while (got < data.size()) {
      ssize_t r = ::pread(fd_, data.data() + got, data.size() - got,
                          static_cast<off_t>(got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("wal: read " + path_);
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    if (got != data.size()) {
      return Status::IoError("wal: short read " + path_);
    }
  }

  ReplayStats local;
  size_t pos = 0;          // cursor
  size_t valid_end = 0;    // end of the last intact record
  while (pos + kFrameBytes <= data.size()) {
    uint32_t len = GetFixed32BE(data.data() + pos);
    uint32_t masked = GetFixed32BE(data.data() + pos + 4);
    if (len > kMaxPayloadBytes || pos + kFrameBytes + len > data.size()) {
      break;  // torn length or truncated payload
    }
    const uint8_t* payload = data.data() + pos + kFrameBytes;
    if (UnmaskCrc(masked) != Crc32c(payload, len)) {
      break;  // bit flip anywhere in the record
    }

    PayloadReader r(payload, len);
    uint8_t type = 0;
    bool parsed = r.ReadU8(&type);
    bool skipped = false;  // record fully covered by a checkpoint
    Status applied = Status::Ok();
    switch (parsed ? type : 0) {
      case kCreateSeries: {
        uint8_t time_enc = 0, value_enc = 0;
        uint32_t page_size = 0, block_size = 0;
        std::string name;
        parsed = r.ReadU8(&time_enc) && r.ReadU8(&value_enc) &&
                 r.ReadU32(&page_size) && r.ReadU32(&block_size) &&
                 r.ReadName(&name);
        // Optional trailing flags byte (bit 0 = allow_out_of_order);
        // records from before the compaction subsystem end at the name.
        uint8_t flags = 0;
        if (parsed && !r.Done()) parsed = r.ReadU8(&flags) && r.Done();
        if (parsed && !store->HasSeries(name)) {
          SeriesStore::SeriesOptions opt;
          opt.page_size = page_size;
          opt.page.time_encoding = static_cast<enc::ColumnEncoding>(time_enc);
          opt.page.value_encoding =
              static_cast<enc::ColumnEncoding>(value_enc);
          opt.page.block_size = block_size;
          opt.allow_out_of_order = (flags & 1) != 0;
          applied = store->CreateSeriesForReplay(name, opt);
        } else if (parsed) {
          skipped = true;
        }
        break;
      }
      case kDeleteRange: {
        std::string name;
        uint64_t t0 = 0, t1 = 0;
        parsed = r.ReadName(&name) && r.ReadU64(&t0) && r.ReadU64(&t1) &&
                 r.Done();
        if (parsed) {
          applied = store->ApplyReplayDelete(name, static_cast<int64_t>(t0),
                                             static_cast<int64_t>(t1));
        }
        break;
      }
      case kSetTtl: {
        std::string name;
        uint64_t ttl = 0;
        parsed = r.ReadName(&name) && r.ReadU64(&ttl) && r.Done();
        if (parsed) {
          applied = store->ApplyReplayTtl(name, static_cast<int64_t>(ttl));
        }
        break;
      }
      case kAppendInt:
      case kAppendF64:
      case kAppendIntOoo:
      case kAppendF64Ooo: {
        std::string name;
        uint64_t first_seq = 0;
        uint32_t n = 0;
        parsed = r.ReadName(&name) && r.ReadU64(&first_seq) && r.ReadU32(&n);
        std::vector<int64_t> times;
        std::vector<int64_t> ivalues;
        std::vector<double> fvalues;
        const bool is_int = (type == kAppendInt || type == kAppendIntOoo);
        const bool is_ooo = (type == kAppendIntOoo || type == kAppendF64Ooo);
        if (parsed) {
          times.reserve(n);
          for (uint32_t i = 0; parsed && i < n; ++i) {
            uint64_t t = 0, v = 0;
            parsed = r.ReadU64(&t) && r.ReadU64(&v);
            times.push_back(static_cast<int64_t>(t));
            if (is_int) {
              ivalues.push_back(static_cast<int64_t>(v));
            } else {
              double d;
              std::memcpy(&d, &v, sizeof(d));
              fvalues.push_back(d);
            }
          }
          parsed = parsed && r.Done();
        }
        if (parsed) {
          size_t points = 0;
          applied =
              is_ooo ? store->ApplyReplayBatchOoo(
                           name, first_seq, times.data(),
                           is_int ? ivalues.data() : nullptr,
                           is_int ? nullptr : fvalues.data(), n, &points)
                     : store->ApplyReplayBatch(
                           name, first_seq, times.data(),
                           is_int ? ivalues.data() : nullptr,
                           is_int ? nullptr : fvalues.data(), n, &points);
          local.points_applied += points;
          skipped = (points == 0);
        }
        break;
      }
      default:
        parsed = false;
    }
    if (!parsed) {
      // The CRC matched but the payload does not decode: not a torn tail
      // but real corruption (or a version mismatch) — refuse to guess.
      return Status::Corruption("wal: undecodable record at offset " +
                                std::to_string(pos));
    }
    if (!applied.ok()) return applied;
    if (skipped) {
      ++local.records_skipped;
    } else {
      ++local.records_applied;
    }
    pos += kFrameBytes + len;
    valid_end = pos;
  }

  if (valid_end < data.size()) {
    local.records_dropped = 1;  // at most one torn frame terminates the scan
    local.bytes_dropped = data.size() - valid_end;
    std::lock_guard<std::mutex> lock(mu_);
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
      return Status::IoError("wal: truncate torn tail " + path_);
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

}  // namespace etsqp::storage
