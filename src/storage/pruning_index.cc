#include "storage/pruning_index.h"

#include <cmath>
#include <cstring>

#include "common/metrics.h"

namespace etsqp::storage {

namespace {

constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();
constexpr size_t kNodeWidth = 64;

size_t PadToNode(size_t n) {
  return (n + kNodeWidth - 1) / kNodeWidth * kNodeWidth;
}

}  // namespace

bool HeaderValueKeys(const PageHeader& h, bool is_float, int64_t* lo,
                     int64_t* hi) {
  if (!is_float) {
    *lo = h.min_value;
    *hi = h.max_value;
    return true;
  }
  double mn, mx;
  std::memcpy(&mn, &h.min_value, sizeof(mn));
  std::memcpy(&mx, &h.max_value, sizeof(mx));
  if (std::isnan(mn) || std::isnan(mx)) {
    *lo = kInt64Min;
    *hi = kInt64Max;
    return false;
  }
  *lo = OrderedValueKey(mn);
  *hi = OrderedValueKey(mx);
  return true;
}

std::shared_ptr<const PruneLeaves> PruneLeaves::Build(
    const std::vector<std::shared_ptr<const Page>>& pages, bool is_float) {
  auto leaves = std::make_shared<PruneLeaves>();
  size_t n = pages.size();
  size_t padded = PadToNode(n);
  leaves->count_ = n;
  // Padding lanes carry inverted sentinels so they never survive a scan.
  leaves->time_min_.assign(padded, kInt64Max);
  leaves->time_max_.assign(padded, kInt64Min);
  leaves->value_min_.assign(padded, kInt64Max);
  leaves->value_max_.assign(padded, kInt64Min);
  for (size_t i = 0; i < n; ++i) {
    const PageHeader& h = pages[i]->header;
    leaves->time_min_[i] = h.min_time;
    leaves->time_max_[i] = h.max_time;
    HeaderValueKeys(h, is_float, &leaves->value_min_[i],
                    &leaves->value_max_[i]);
    leaves->total_tuples_ += h.count;
  }
  return leaves;
}

size_t PruningIndex::AddSeries(std::string name, bool is_float) {
  size_t slot = names_.size();
  names_.push_back(std::move(name));
  size_t padded = PadToNode(names_.size());
  time_min_.resize(padded, kInt64Max);
  time_max_.resize(padded, kInt64Min);
  value_min_.resize(padded, kInt64Max);
  value_max_.resize(padded, kInt64Min);
  float_words_.resize((padded + 63) / 64, 0);
  if (is_float) float_words_[slot >> 6] |= uint64_t{1} << (slot & 63);
  return slot;
}

void PruningIndex::WidenTime(size_t slot, int64_t t_min, int64_t t_max) {
  if (t_min < time_min_[slot]) time_min_[slot] = t_min;
  if (t_max > time_max_[slot]) time_max_[slot] = t_max;
}

void PruningIndex::WidenValue(size_t slot, int64_t k_min, int64_t k_max) {
  if (k_min < value_min_[slot]) value_min_[slot] = k_min;
  if (k_max > value_max_[slot]) value_max_[slot] = k_max;
}

void PruningIndex::InvalidateValue(size_t slot) {
  value_min_[slot] = kInt64Min;
  value_max_[slot] = kInt64Max;
}

SeriesSummary PruningIndex::GetSummary(size_t slot) const {
  SeriesSummary s;
  s.time_min = time_min_[slot];
  s.time_max = time_max_[slot];
  s.value_min_key = value_min_[slot];
  s.value_max_key = value_max_[slot];
  return s;
}

PruneProbeStats PruningIndex::CountMatching(
    const PruneProbe& probe, simd::PruneIsa isa,
    std::vector<size_t>* matched) const {
  PruneProbeStats out;
  out.series_total = names_.size();
  uint64_t t0 = metrics::NowNanos();
  size_t padded = time_min_.size();
  size_t words = (padded + 63) / 64;
  std::vector<uint64_t> mask(words == 0 ? 1 : words, 0);
  if (padded != 0) {
    if (!probe.value_active) {
      out.series_matched = simd::PruneScan(
          time_min_.data(), time_max_.data(), value_min_.data(),
          value_max_.data(), padded, probe.t_lo, probe.t_hi, false, 0, 0,
          mask.data(), isa);
    } else {
      // Integer and float series keep value envelopes in different key
      // domains, so the value-filtered sweep runs once per domain and the
      // per-slot float bit picks which verdict counts.
      std::vector<uint64_t> fmask(words, 0);
      simd::PruneScan(time_min_.data(), time_max_.data(), value_min_.data(),
                      value_max_.data(), padded, probe.t_lo, probe.t_hi, true,
                      probe.v_lo, probe.v_hi, mask.data(), isa);
      simd::PruneScan(time_min_.data(), time_max_.data(), value_min_.data(),
                      value_max_.data(), padded, probe.t_lo, probe.t_hi, true,
                      OrderedValueKey(static_cast<double>(probe.v_lo)),
                      OrderedValueKey(static_cast<double>(probe.v_hi)),
                      fmask.data(), isa);
      out.series_matched = 0;
      for (size_t w = 0; w < words; ++w) {
        mask[w] = (mask[w] & ~float_words_[w]) | (fmask[w] & float_words_[w]);
        out.series_matched +=
            static_cast<uint64_t>(__builtin_popcountll(mask[w]));
      }
    }
  }
  out.probe_nanos = metrics::NowNanos() - t0;
  if (matched != nullptr) {
    matched->clear();
    for (size_t i = 0; i < names_.size(); ++i) {
      if (mask[i >> 6] & (uint64_t{1} << (i & 63))) matched->push_back(i);
    }
  }
  return out;
}

}  // namespace etsqp::storage
