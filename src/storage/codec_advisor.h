#ifndef ETSQP_STORAGE_CODEC_ADVISOR_H_
#define ETSQP_STORAGE_CODEC_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "encoding/format.h"

namespace etsqp::storage {

/// Cheap single-pass statistics over a decoded value column: the advisor's
/// shortlisting inputs. These are the observed analogues of the data-shape
/// axes the paper's Table I encoders are specialized for — delta bounds
/// (TS2DIFF bit width), run structure (RLE/RLBE), and float XOR patterns
/// (the Gorilla/Chimp/Elf family).
struct ColumnShape {
  uint64_t count = 0;
  // Integer columns.
  int delta_bits = 0;         // bit width of the widest zigzag(delta)
  double mean_run = 0;        // mean run length of equal values
  double mean_delta_run = 0;  // mean run length of equal deltas
  // Float columns.
  double xor_zero_ratio = 0;     // consecutive pairs whose XOR is zero
  double xor_mean_sig_bits = 0;  // mean significant bits of nonzero XORs
};

ColumnShape SummarizeInts(const int64_t* values, size_t n);
ColumnShape SummarizeFloats(const double* values, size_t n);

/// Picks the value encoding a rewritten page should use: shape statistics
/// shortlist the candidates, a trial encode of each shortlisted codec
/// measures real bytes (pages are at most a few thousand points, so trial
/// encoding costs microseconds on the background executor), and the smallest
/// result wins. Two dampers keep the choice stable and cheap to serve:
///
///  - the winner must beat the page's current codec by `min_gain` (fraction
///    of bytes) or the page keeps its codec — no churn on noise;
///  - when a decode-cost hook is wired (the db layer feeds it from the
///    shard's `.calib` measured cost model), candidates within `tie_band`
///    of the smallest size break toward the cheaper decode, trading a
///    near-zero size difference for query speed.
class CodecAdvisor {
 public:
  /// Estimated decode cost (ns/tuple) of `encoding`; negative = unknown
  /// (the tie-break then keeps pure size order).
  using CostHook = std::function<double(enc::ColumnEncoding, bool is_float)>;

  /// Whether the serving path can decode `encoding`. The advisor never
  /// proposes a codec this rejects — re-encoding into an undecodable format
  /// would brick the series — and falls back to the incumbent instead.
  using DecodeSupportHook = std::function<bool(enc::ColumnEncoding)>;

  struct Options {
    double min_gain = 0.05;
    double tie_band = 0.02;
    CostHook cost_hook;
    /// Defaults to storage::PageDecodeSupported when unset; the db layer
    /// wires a registry-backed check instead.
    DecodeSupportHook decode_support;
  };

  struct Advice {
    enc::ColumnEncoding encoding;  // chosen value codec
    size_t encoded_bytes = 0;      // trial size of the winner
    size_t current_bytes = 0;      // trial size of the current codec
    ColumnShape shape;

    bool changed(enc::ColumnEncoding current) const {
      return encoding != current;
    }
  };

  CodecAdvisor() = default;
  explicit CodecAdvisor(Options options) : options_(std::move(options)) {}

  /// Integer column. Candidates: the current codec, TS2DIFF and StreamVByte
  /// always (the latter the fast-ingest byte-aligned alternative), and
  /// RLBE / DeltaRle / Sprintz when the run / delta-width shape suggests
  /// them. `block_size` parameterizes the TS2DIFF trial.
  Advice AdviseInt(const int64_t* values, size_t n,
                   enc::ColumnEncoding current, uint32_t block_size) const;

  /// Float column: the whole XOR family (Gorilla / Chimp / Elf) is trialed.
  Advice AdviseFloat(const double* values, size_t n,
                     enc::ColumnEncoding current) const;

  const Options& options() const { return options_; }

 private:
  bool DecodeSupported(enc::ColumnEncoding e) const;
  Options options_;
};

}  // namespace etsqp::storage

#endif  // ETSQP_STORAGE_CODEC_ADVISOR_H_
