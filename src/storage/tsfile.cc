#include "storage/tsfile.h"

#include <cstdio>

#include "common/bitstream.h"
#include "storage/page.h"

namespace etsqp::storage {

namespace {
constexpr uint32_t kMagic = 0x45545351;  // 'ETSQ'
// Sanity bounds for ReadTsFile: series names are dotted identifiers, and a
// serialized page is never smaller than its fixed header (page.cc).
constexpr uint32_t kMaxNameLen = 4096;
constexpr size_t kMinSerializedPageBytes = 4 + 2 + 32 + 8;
}  // namespace

Status WriteTsFile(const SeriesStore& store, const std::string& path) {
  std::vector<uint8_t> out;
  PutFixed32BE(&out, kMagic);
  std::vector<std::string> names = store.SeriesNames();
  PutFixed32BE(&out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    Result<const SeriesStore::Series*> series = store.GetSeries(name);
    if (!series.ok()) return series.status();
    const SeriesStore::Series* s = series.value();
    if (!s->buf_times.empty() || !s->sealing.empty()) {
      return Status::InvalidArgument("tsfile: unflushed series " + name);
    }
    PutFixed32BE(&out, static_cast<uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    PutFixed32BE(&out, static_cast<uint32_t>(s->pages.size()));
    for (const auto& page : s->pages) SerializePage(*page, &out);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Status ReadTsFile(const std::string& path, SeriesStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long file_size = std::ftell(f);
  if (file_size < 0) {
    std::fclose(f);
    return Status::IoError("size: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(file_size));
  size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) return Status::IoError("short read: " + path);

  if (data.size() < 8 || GetFixed32BE(data.data()) != kMagic) {
    return Status::Corruption("tsfile: bad magic");
  }
  uint32_t num_series = GetFixed32BE(data.data() + 4);
  size_t pos = 8;
  // Every series costs at least name_len + num_pages (8 bytes): a count the
  // file cannot possibly hold is corruption, not a long loop over it.
  if (static_cast<uint64_t>(num_series) * 8 > data.size() - pos) {
    return Status::Corruption("tsfile: series count exceeds file size");
  }
  for (uint32_t i = 0; i < num_series; ++i) {
    if (pos + 4 > data.size()) return Status::Corruption("tsfile: truncated");
    uint32_t name_len = GetFixed32BE(data.data() + pos);
    pos += 4;
    if (name_len > kMaxNameLen) {
      return Status::Corruption("tsfile: name length " +
                                std::to_string(name_len) + " exceeds limit");
    }
    if (pos + name_len + 4 > data.size()) {
      return Status::Corruption("tsfile: truncated");
    }
    std::string name(reinterpret_cast<const char*>(data.data() + pos),
                     name_len);
    pos += name_len;
    uint32_t num_pages = GetFixed32BE(data.data() + pos);
    pos += 4;
    // A serialized page is at least its fixed header; bound the count
    // before looping so a flipped length fails fast and cleanly.
    if (static_cast<uint64_t>(num_pages) * kMinSerializedPageBytes >
        data.size() - pos) {
      return Status::Corruption("tsfile: page count for series " + name +
                                " exceeds file size");
    }
    std::vector<Page> pages;
    pages.reserve(num_pages);
    for (uint32_t p = 0; p < num_pages; ++p) {
      Page page;
      ETSQP_RETURN_IF_ERROR(
          DeserializePage(data.data(), data.size(), &pos, &page));
      pages.push_back(std::move(page));
    }
    // Derive the series options from the first page so loaded series keep
    // their value type (float encodings) and encoding configuration.
    SeriesStore::SeriesOptions opt;
    if (!pages.empty()) {
      opt.page.time_encoding = pages[0].header.time_encoding;
      opt.page.value_encoding = pages[0].header.value_encoding;
    }
    ETSQP_RETURN_IF_ERROR(store->CreateSeries(name, opt));
    for (Page& page : pages) {
      ETSQP_RETURN_IF_ERROR(store->AddPage(name, std::move(page)));
    }
  }
  if (pos != data.size()) {
    return Status::Corruption("tsfile: trailing bytes after last series");
  }
  return Status::Ok();
}

}  // namespace etsqp::storage
