#include "storage/tsfile.h"

#include <cstdio>

#include "common/bitstream.h"
#include "storage/page.h"

namespace etsqp::storage {

namespace {
constexpr uint32_t kMagic = 0x45545351;  // 'ETSQ'
}  // namespace

Status WriteTsFile(const SeriesStore& store, const std::string& path) {
  std::vector<uint8_t> out;
  PutFixed32BE(&out, kMagic);
  std::vector<std::string> names = store.SeriesNames();
  PutFixed32BE(&out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    Result<const SeriesStore::Series*> series = store.GetSeries(name);
    if (!series.ok()) return series.status();
    const SeriesStore::Series* s = series.value();
    if (!s->buf_times.empty()) {
      return Status::InvalidArgument("tsfile: unflushed series " + name);
    }
    PutFixed32BE(&out, static_cast<uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    PutFixed32BE(&out, static_cast<uint32_t>(s->pages.size()));
    for (const Page& page : s->pages) SerializePage(page, &out);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Status ReadTsFile(const std::string& path, SeriesStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(file_size));
  size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) return Status::IoError("short read: " + path);

  if (data.size() < 8 || GetFixed32BE(data.data()) != kMagic) {
    return Status::Corruption("tsfile: bad magic");
  }
  uint32_t num_series = GetFixed32BE(data.data() + 4);
  size_t pos = 8;
  for (uint32_t i = 0; i < num_series; ++i) {
    if (pos + 4 > data.size()) return Status::Corruption("tsfile: truncated");
    uint32_t name_len = GetFixed32BE(data.data() + pos);
    pos += 4;
    if (pos + name_len + 4 > data.size()) {
      return Status::Corruption("tsfile: truncated");
    }
    std::string name(reinterpret_cast<const char*>(data.data() + pos),
                     name_len);
    pos += name_len;
    uint32_t num_pages = GetFixed32BE(data.data() + pos);
    pos += 4;
    ETSQP_RETURN_IF_ERROR(
        store->CreateSeries(name, SeriesStore::SeriesOptions{}));
    for (uint32_t p = 0; p < num_pages; ++p) {
      Page page;
      ETSQP_RETURN_IF_ERROR(
          DeserializePage(data.data(), data.size(), &pos, &page));
      ETSQP_RETURN_IF_ERROR(store->AddPage(name, std::move(page)));
    }
  }
  return Status::Ok();
}

}  // namespace etsqp::storage
