#include "storage/tsfile.h"

#include <cstdio>
#include <cstring>

#include "common/bitstream.h"
#include "storage/page.h"

namespace etsqp::storage {

namespace {
// Sanity bounds for ReadTsFile: series names are dotted identifiers, and a
// serialized page is never smaller than its fixed header (page.cc).
constexpr uint32_t kMaxNameLen = 4096;
constexpr size_t kMinSerializedPageBytes = 4 + 2 + 32 + 8;

constexpr uint8_t kFlagAllowOutOfOrder = 1u << 0;
constexpr uint8_t kFlagFloatSeries = 1u << 1;
constexpr uint8_t kKnownFlags = kFlagAllowOutOfOrder | kFlagFloatSeries;

/// True when `s` carries state the v1 layout cannot express. Writing v1
/// whenever possible keeps checkpoints of never-compacted stores
/// byte-identical to what pre-compaction builds produced.
bool NeedsV2(const SeriesStore::Series& s) {
  if (s.options.allow_out_of_order || !s.tombstones.empty() ||
      s.ttl_nanos != 0 || !s.ooo_times.empty()) {
    return true;
  }
  if (s.appended_points != s.total_points) return true;  // compaction dropped
  for (const auto& page : s.pages) {
    if (page->header.level != 0 || page->header.tier != 0) return true;
  }
  return false;
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status WriteAll(const std::vector<uint8_t>& out, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

/// Bounds-checked big-endian cursor over the loaded file image.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data[pos++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = GetFixed32BE(data + pos);
    pos += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = GetFixed64BE(data + pos);
    pos += 8;
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
};

Status ReadSeriesName(Reader* r, std::string* name) {
  uint32_t name_len;
  if (!r->ReadU32(&name_len)) return Status::Corruption("tsfile: truncated");
  if (name_len > kMaxNameLen) {
    return Status::Corruption("tsfile: name length " +
                              std::to_string(name_len) + " exceeds limit");
  }
  if (r->remaining() < name_len) return Status::Corruption("tsfile: truncated");
  name->assign(reinterpret_cast<const char*>(r->data + r->pos), name_len);
  r->pos += name_len;
  return Status::Ok();
}

Status ReadV1Series(Reader* r, SeriesStore* store) {
  std::string name;
  ETSQP_RETURN_IF_ERROR(ReadSeriesName(r, &name));
  uint32_t num_pages;
  if (!r->ReadU32(&num_pages)) return Status::Corruption("tsfile: truncated");
  // A serialized page is at least its fixed header; bound the count before
  // looping so a flipped length fails fast and cleanly.
  if (static_cast<uint64_t>(num_pages) * kMinSerializedPageBytes >
      r->remaining()) {
    return Status::Corruption("tsfile: page count for series " + name +
                              " exceeds file size");
  }
  std::vector<Page> pages;
  pages.reserve(num_pages);
  for (uint32_t p = 0; p < num_pages; ++p) {
    Page page;
    ETSQP_RETURN_IF_ERROR(DeserializePage(r->data, r->size, &r->pos, &page));
    pages.push_back(std::move(page));
  }
  // Derive the series options from the first page so loaded series keep
  // their value type (float encodings) and encoding configuration.
  SeriesStore::SeriesOptions opt;
  if (!pages.empty()) {
    opt.page.time_encoding = pages[0].header.time_encoding;
    opt.page.value_encoding = pages[0].header.value_encoding;
  }
  ETSQP_RETURN_IF_ERROR(store->CreateSeries(name, opt));
  for (Page& page : pages) {
    ETSQP_RETURN_IF_ERROR(store->AddPage(name, std::move(page)));
  }
  return Status::Ok();
}

Status ReadV2Series(Reader* r, SeriesStore* store) {
  std::string name;
  ETSQP_RETURN_IF_ERROR(ReadSeriesName(r, &name));

  uint8_t flags;
  uint64_t appended_points;
  int64_t ttl_nanos;
  if (!r->ReadU8(&flags) || !r->ReadU64(&appended_points) ||
      !r->ReadI64(&ttl_nanos)) {
    return Status::Corruption("tsfile: truncated metadata for series " + name);
  }
  if ((flags & ~kKnownFlags) != 0) {
    return Status::Corruption("tsfile: unknown series flags for " + name);
  }
  if (ttl_nanos < 0) {
    return Status::Corruption("tsfile: negative ttl for series " + name);
  }
  const bool is_float = (flags & kFlagFloatSeries) != 0;

  uint32_t num_tombstones;
  if (!r->ReadU32(&num_tombstones)) {
    return Status::Corruption("tsfile: truncated metadata for series " + name);
  }
  if (static_cast<uint64_t>(num_tombstones) * 16 > r->remaining()) {
    return Status::Corruption("tsfile: tombstone count for series " + name +
                              " exceeds file size");
  }
  std::vector<TimeInterval> tombstones;
  tombstones.reserve(num_tombstones);
  for (uint32_t i = 0; i < num_tombstones; ++i) {
    TimeInterval t;
    if (!r->ReadI64(&t.lo) || !r->ReadI64(&t.hi)) {
      return Status::Corruption("tsfile: truncated");
    }
    if (t.lo > t.hi) {
      return Status::Corruption("tsfile: inverted tombstone range in series " +
                                name);
    }
    tombstones.push_back(t);
  }

  uint32_t num_ooo;
  if (!r->ReadU32(&num_ooo)) {
    return Status::Corruption("tsfile: truncated metadata for series " + name);
  }
  if (static_cast<uint64_t>(num_ooo) * 16 > r->remaining()) {
    return Status::Corruption("tsfile: overlap-point count for series " +
                              name + " exceeds file size");
  }
  std::vector<int64_t> ooo_times, ooo_values;
  std::vector<double> ooo_values_f64;
  ooo_times.reserve(num_ooo);
  for (uint32_t i = 0; i < num_ooo; ++i) {
    int64_t t;
    uint64_t bits;
    if (!r->ReadI64(&t) || !r->ReadU64(&bits)) {
      return Status::Corruption("tsfile: truncated");
    }
    if (!ooo_times.empty() && t <= ooo_times.back()) {
      return Status::Corruption(
          "tsfile: overlap points not strictly increasing in series " + name);
    }
    ooo_times.push_back(t);
    if (is_float) {
      ooo_values_f64.push_back(BitsToDouble(bits));
    } else {
      ooo_values.push_back(static_cast<int64_t>(bits));
    }
  }
  if (num_ooo > 0 && (flags & kFlagAllowOutOfOrder) == 0) {
    return Status::Corruption(
        "tsfile: overlap points on an in-order series " + name);
  }

  uint32_t num_pages;
  if (!r->ReadU32(&num_pages)) {
    return Status::Corruption("tsfile: truncated metadata for series " + name);
  }
  if (static_cast<uint64_t>(num_pages) * (2 + kMinSerializedPageBytes) >
      r->remaining()) {
    return Status::Corruption("tsfile: page count for series " + name +
                              " exceeds file size");
  }
  std::vector<Page> pages;
  pages.reserve(num_pages);
  uint64_t sealed_points = 0;
  for (uint32_t p = 0; p < num_pages; ++p) {
    uint8_t level, tier;
    if (!r->ReadU8(&level) || !r->ReadU8(&tier)) {
      return Status::Corruption("tsfile: truncated");
    }
    if (level > kTsFileMaxPageLevel || tier > kTsFileMaxPageTier) {
      return Status::Corruption("tsfile: page level/tier out of range in " +
                                name);
    }
    Page page;
    ETSQP_RETURN_IF_ERROR(DeserializePage(r->data, r->size, &r->pos, &page));
    page.header.level = level;
    page.header.tier = tier;
    sealed_points += page.header.count;
    pages.push_back(std::move(page));
  }
  if (appended_points < sealed_points + num_ooo) {
    return Status::Corruption(
        "tsfile: appended_points under-counts stored points in series " +
        name);
  }

  SeriesStore::SeriesOptions opt;
  opt.allow_out_of_order = (flags & kFlagAllowOutOfOrder) != 0;
  if (!pages.empty()) {
    opt.page.time_encoding = pages[0].header.time_encoding;
    opt.page.value_encoding = pages[0].header.value_encoding;
    if (enc::IsFloatEncoding(opt.page.value_encoding) != is_float) {
      return Status::Corruption(
          "tsfile: value-type flag contradicts page encoding in series " +
          name);
    }
  } else if (is_float) {
    opt.page.value_encoding = enc::ColumnEncoding::kGorillaValue;
  }
  ETSQP_RETURN_IF_ERROR(store->CreateSeries(name, opt));
  for (Page& page : pages) {
    ETSQP_RETURN_IF_ERROR(store->AddPage(name, std::move(page)));
  }
  return store->RestoreSeriesMeta(name, appended_points, ttl_nanos,
                                  std::move(tombstones), std::move(ooo_times),
                                  std::move(ooo_values),
                                  std::move(ooo_values_f64));
}

}  // namespace

Status WriteTsFile(const SeriesStore& store, const std::string& path) {
  std::vector<std::string> names = store.SeriesNames();
  // Collect first so the version decision sees every series, and unflushed
  // buffers fail before any bytes are laid out.
  std::vector<const SeriesStore::Series*> series;
  series.reserve(names.size());
  bool v2 = false;
  for (const std::string& name : names) {
    Result<const SeriesStore::Series*> found = store.GetSeries(name);
    if (!found.ok()) return found.status();
    const SeriesStore::Series* s = found.value();
    if (!s->buf_times.empty() || !s->sealing.empty()) {
      return Status::InvalidArgument("tsfile: unflushed series " + name);
    }
    if (NeedsV2(*s)) v2 = true;
    series.push_back(s);
  }

  std::vector<uint8_t> out;
  PutFixed32BE(&out, v2 ? kTsFileMagicV2 : kTsFileMagicV1);
  PutFixed32BE(&out, static_cast<uint32_t>(series.size()));
  for (const SeriesStore::Series* s : series) {
    PutFixed32BE(&out, static_cast<uint32_t>(s->name.size()));
    out.insert(out.end(), s->name.begin(), s->name.end());
    if (v2) {
      uint8_t flags = 0;
      if (s->options.allow_out_of_order) flags |= kFlagAllowOutOfOrder;
      if (s->is_float()) flags |= kFlagFloatSeries;
      out.push_back(flags);
      PutFixed64BE(&out, s->appended_points);
      PutFixed64BE(&out, static_cast<uint64_t>(s->ttl_nanos));
      PutFixed32BE(&out, static_cast<uint32_t>(s->tombstones.size()));
      for (const TimeInterval& t : s->tombstones) {
        PutFixed64BE(&out, static_cast<uint64_t>(t.lo));
        PutFixed64BE(&out, static_cast<uint64_t>(t.hi));
      }
      PutFixed32BE(&out, static_cast<uint32_t>(s->ooo_times.size()));
      for (size_t i = 0; i < s->ooo_times.size(); ++i) {
        PutFixed64BE(&out, static_cast<uint64_t>(s->ooo_times[i]));
        PutFixed64BE(&out, s->is_float()
                               ? DoubleBits(s->ooo_values_f64[i])
                               : static_cast<uint64_t>(s->ooo_values[i]));
      }
    }
    PutFixed32BE(&out, static_cast<uint32_t>(s->pages.size()));
    for (const auto& page : s->pages) {
      if (v2) {
        out.push_back(page->header.level);
        out.push_back(page->header.tier);
      }
      SerializePage(*page, &out);
    }
  }
  return WriteAll(out, path);
}

Status ReadTsFile(const std::string& path, SeriesStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long file_size = std::ftell(f);
  if (file_size < 0) {
    std::fclose(f);
    return Status::IoError("size: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(file_size));
  size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) return Status::IoError("short read: " + path);

  if (data.size() < 8) return Status::Corruption("tsfile: bad magic");
  uint32_t magic = GetFixed32BE(data.data());
  if (magic != kTsFileMagicV1 && magic != kTsFileMagicV2) {
    return Status::Corruption("tsfile: bad magic");
  }
  const bool v2 = magic == kTsFileMagicV2;
  Reader r{data.data(), data.size(), 8};
  uint32_t num_series = GetFixed32BE(data.data() + 4);
  // Every series costs at least name_len + num_pages (8 bytes): a count the
  // file cannot possibly hold is corruption, not a long loop over it.
  if (static_cast<uint64_t>(num_series) * 8 > r.remaining()) {
    return Status::Corruption("tsfile: series count exceeds file size");
  }
  for (uint32_t i = 0; i < num_series; ++i) {
    ETSQP_RETURN_IF_ERROR(v2 ? ReadV2Series(&r, store)
                             : ReadV1Series(&r, store));
  }
  if (r.pos != r.size) {
    return Status::Corruption("tsfile: trailing bytes after last series");
  }
  return Status::Ok();
}

}  // namespace etsqp::storage
