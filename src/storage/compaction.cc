#include "storage/compaction.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/page_builder.h"

namespace etsqp::storage {

Compactor::Compactor(SeriesStore* store, CompactionOptions options)
    : store_(store), options_(std::move(options)) {
  CodecAdvisor::Options advisor_options;
  advisor_options.min_gain = options_.min_gain;
  advisor_options.tie_band = options_.tie_band;
  advisor_options.cost_hook = options_.cost_hook;
  advisor_options.decode_support = options_.decode_support;
  advisor_ = CodecAdvisor(advisor_options);
}

void Compactor::MergeStats(const metrics::CompactionStats& pass) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Merge(pass);
}

metrics::CompactionStats Compactor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Compactor::CompactSeries(const std::string& name) {
  metrics::CompactionStats pass;
  uint64_t t0 = metrics::NowNanos();
  Status status = RunPass(name, &pass);
  pass.nanos = metrics::NowNanos() - t0;
  pass.runs = 1;
  MergeStats(pass);
  return status;
}

Status Compactor::CompactAll() {
  metrics::CompactionStats pass;
  uint64_t t0 = metrics::NowNanos();
  Status status = Status::Ok();
  for (const std::string& name : store_->SeriesNames()) {
    Status s = RunPass(name, &pass);
    if (!s.ok() && status.ok()) status = s;
  }
  pass.nanos = metrics::NowNanos() - t0;
  pass.runs = 1;
  MergeStats(pass);
  return status;
}

namespace {

/// Index of the page a reconciled overlap point lands in: the first page
/// whose max_time >= t, or npages when the point is past every page.
size_t TargetPage(const std::vector<std::shared_ptr<const Page>>& pages,
                  int64_t t) {
  size_t lo = 0, hi = pages.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (pages[mid]->header.max_time < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Status Compactor::RunPass(const std::string& name,
                          metrics::CompactionStats* pass) {
  SeriesStore::CompactionCapture cap;
  Status begin = store_->BeginCompaction(name, &cap);
  if (!begin.ok()) {
    // Busy (another pass holds the series) or vanished: both are fine.
    if (begin.code() == StatusCode::kFailedPrecondition ||
        begin.code() == StatusCode::kNotFound) {
      return Status::Ok();
    }
    return begin;
  }

  const auto& pages = cap.pages;
  const size_t npages = pages.size();
  const uint32_t target = options_.target_page_points != 0
                              ? options_.target_page_points
                              : cap.options.page_size;

  // Reconcilable overlap prefix: points at or below the sealed maximum can
  // merge into pages without interleaving with the live tail; with an empty
  // tail everything reconciles (the excess becomes new trailing pages).
  size_t ooo_n = 0;
  if (cap.tail_empty) {
    ooo_n = cap.ooo_times.size();
  } else {
    ooo_n = static_cast<size_t>(
        std::upper_bound(cap.ooo_times.begin(), cap.ooo_times.end(),
                         cap.sealed_max_time) -
        cap.ooo_times.begin());
  }

  // Dirty = must be rewritten. The hull of dirty pages becomes one
  // contiguous span so the splice stays a single-range replace.
  std::vector<char> dirty(npages, 0);
  for (size_t i = 0; i < npages; ++i) {
    const PageHeader& h = pages[i]->header;
    if (!cap.tombstones.empty() &&
        IntervalsOverlap(cap.tombstones, h.min_time, h.max_time)) {
      dirty[i] = 1;
    }
    if (npages >= 2 && static_cast<double>(h.count) <
                           options_.merge_fill * static_cast<double>(target)) {
      dirty[i] = 1;
    }
    if (options_.adaptive && h.tier == 0) dirty[i] = 1;
  }
  bool ooo_past_pages = false;
  for (size_t i = 0; i < ooo_n; ++i) {
    size_t page = TargetPage(pages, cap.ooo_times[i]);
    if (page < npages) {
      dirty[page] = 1;
    } else {
      ooo_past_pages = true;
    }
  }

  size_t span_begin = npages, span_end = 0;
  for (size_t i = 0; i < npages; ++i) {
    if (dirty[i] == 0) continue;
    span_begin = std::min(span_begin, i);
    span_end = std::max(span_end, i + 1);
  }
  if (ooo_past_pages) {
    // Trailing overlap points become new pages after every existing one.
    span_end = npages;
    span_begin = std::min(span_begin, npages);
  }
  if (span_begin >= span_end && !ooo_past_pages && ooo_n == 0) {
    store_->AbortCompaction(name);
    return Status::Ok();  // nothing to do
  }
  if (span_begin > span_end) span_begin = span_end;  // pure-append span

  // Decode the span.
  std::vector<int64_t> times, ivalues;
  std::vector<double> fvalues;
  size_t span_points = 0;
  for (size_t i = span_begin; i < span_end; ++i) {
    span_points += pages[i]->header.count;
  }
  times.reserve(span_points + ooo_n);
  if (cap.is_float) {
    fvalues.reserve(span_points + ooo_n);
  } else {
    ivalues.reserve(span_points + ooo_n);
  }
  std::vector<int64_t> tmp_t, tmp_i;
  std::vector<double> tmp_f;
  for (size_t i = span_begin; i < span_end; ++i) {
    const Page& p = *pages[i];
    uint32_t n = p.header.count;
    tmp_t.resize(n);
    Status st = DecodePageColumn(p.time_data, p.header.time_encoding, n,
                                 tmp_t.data());
    if (st.ok()) {
      if (cap.is_float) {
        tmp_f.resize(n);
        st = DecodePageColumnF64(p.value_data, p.header.value_encoding, n,
                                 tmp_f.data());
      } else {
        tmp_i.resize(n);
        st = DecodePageColumn(p.value_data, p.header.value_encoding, n,
                              tmp_i.data());
      }
    }
    if (!st.ok()) {
      store_->AbortCompaction(name);
      return st;
    }
    times.insert(times.end(), tmp_t.begin(), tmp_t.end());
    if (cap.is_float) {
      fvalues.insert(fvalues.end(), tmp_f.begin(), tmp_f.end());
    } else {
      ivalues.insert(ivalues.end(), tmp_i.begin(), tmp_i.end());
    }
  }

  // Merge span points with the reconcilable overlap prefix, dropping
  // tombstoned points from both streams. Duplicate timestamps resolve to
  // the overlap point — the later write wins.
  std::vector<int64_t> mt, mi;
  std::vector<double> mf;
  mt.reserve(times.size() + ooo_n);
  if (cap.is_float) {
    mf.reserve(times.size() + ooo_n);
  } else {
    mi.reserve(times.size() + ooo_n);
  }
  size_t a = 0, b = 0;
  uint64_t dropped = 0, merged_ooo = 0;
  while (a < times.size() || b < ooo_n) {
    bool take_ooo;
    if (a >= times.size()) {
      take_ooo = true;
    } else if (b >= ooo_n) {
      take_ooo = false;
    } else if (times[a] < cap.ooo_times[b]) {
      take_ooo = false;
    } else if (times[a] > cap.ooo_times[b]) {
      take_ooo = true;
    } else {
      ++a;  // duplicate: the sealed point is superseded
      ++dropped;
      take_ooo = true;
    }
    int64_t t = take_ooo ? cap.ooo_times[b] : times[a];
    bool deleted =
        !cap.tombstones.empty() && IntervalsContain(cap.tombstones, t);
    if (take_ooo) {
      if (!deleted) {
        mt.push_back(t);
        if (cap.is_float) {
          mf.push_back(cap.ooo_values_f64[b]);
        } else {
          mi.push_back(cap.ooo_values[b]);
        }
        ++merged_ooo;
      } else {
        ++dropped;
      }
      ++b;
    } else {
      if (!deleted) {
        mt.push_back(t);
        if (cap.is_float) {
          mf.push_back(fvalues[a]);
        } else {
          mi.push_back(ivalues[a]);
        }
      } else {
        ++dropped;
      }
      ++a;
    }
  }

  // Was the pass worth anything? A span that decodes to the same points and
  // has no advisor work would be pure churn — but we only got here because
  // something was dirty, so rewrite unconditionally.
  uint8_t level = 0;
  for (size_t i = span_begin; i < span_end; ++i) {
    level = std::max(level, pages[i]->header.level);
  }
  if (level < 255) ++level;

  // Re-chunk into balanced pages: ceil(total/target) chunks sized within
  // one point of each other, so no undersized trailing page re-dirties the
  // series on the next pass.
  std::vector<std::shared_ptr<const Page>> new_pages;
  uint64_t bytes_out = 0, reencoded = 0;
  const size_t total = mt.size();
  if (total > 0) {
    size_t nchunks = (total + target - 1) / target;
    size_t base = total / nchunks, extra = total % nchunks;
    size_t offset = 0;
    for (size_t c = 0; c < nchunks; ++c) {
      size_t len = base + (c < extra ? 1 : 0);
      PageOptions popt = cap.options.page;
      if (options_.adaptive) {
        CodecAdvisor::Advice advice =
            cap.is_float
                ? advisor_.AdviseFloat(mf.data() + offset, len,
                                       popt.value_encoding)
                : advisor_.AdviseInt(mi.data() + offset, len,
                                     popt.value_encoding, popt.block_size);
        popt.value_encoding = advice.encoding;
      }
      Result<Page> built =
          cap.is_float
              ? BuildPageF64(mt.data() + offset, mf.data() + offset, len,
                             popt)
              : BuildPage(mt.data() + offset, mi.data() + offset, len, popt);
      if (!built.ok()) {
        store_->AbortCompaction(name);
        return built.status();
      }
      Page page = std::move(built).value();
      page.header.level = level;
      page.header.tier = 1;
      if (page.header.value_encoding != cap.options.page.value_encoding) {
        ++reencoded;
      }
      bytes_out += page.encoded_bytes();
      new_pages.push_back(std::make_shared<const Page>(std::move(page)));
      offset += len;
    }
  }

  // Tombstones whose reach ends at or before the sealed maximum are now
  // physically applied: every overlapping page sat in the span (the dirty
  // rule put it there) and the tail starts strictly after the sealed
  // maximum, so nothing they could mask survives. Ranges reaching past the
  // sealed maximum keep masking the tail and stay.
  SeriesStore::CompactionInstall install;
  install.replace_begin = span_begin;
  install.replace_end = span_end;
  install.new_pages = std::move(new_pages);
  install.ooo_consumed = ooo_n;
  if (cap.sealed_max_time != INT64_MIN) {
    for (const TimeInterval& t : cap.explicit_tombstones) {
      if (t.hi <= cap.sealed_max_time) {
        install.tombstones_resolved.push_back(t);
      }
    }
  }

  uint64_t bytes_in = 0;
  for (size_t i = span_begin; i < span_end; ++i) {
    bytes_in += pages[i]->encoded_bytes();
  }
  size_t pages_out = install.new_pages.size();
  size_t tombs = install.tombstones_resolved.size();

  Status installed = store_->InstallCompaction(cap, std::move(install));
  if (!installed.ok()) {
    if (installed.code() == StatusCode::kAborted) {
      ++pass->installs_aborted;
      return Status::Ok();
    }
    return installed;
  }
  ++pass->series_compacted;
  pass->pages_in += span_end - span_begin;
  pass->pages_out += pages_out;
  pass->pages_reencoded += reencoded;
  pass->bytes_in += bytes_in;
  pass->bytes_out += bytes_out;
  pass->deleted_points_dropped += dropped;
  pass->tombstones_resolved += tombs;
  pass->ooo_points_merged += merged_ooo;
  return Status::Ok();
}

}  // namespace etsqp::storage
