#include "storage/page_builder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bitstream.h"
#include "encoding/delta_rle.h"
#include "encoding/fastlanes.h"
#include "encoding/chimp.h"
#include "encoding/elf.h"
#include "encoding/gorilla.h"
#include "encoding/rlbe.h"
#include "encoding/sprintz.h"
#include "encoding/streamvbyte.h"
#include "encoding/ts2diff.h"

namespace etsqp::storage {

namespace {

enc::EncodedColumn EncodeColumn(const int64_t* values, size_t n,
                                enc::ColumnEncoding encoding,
                                uint32_t block_size) {
  switch (encoding) {
    case enc::ColumnEncoding::kTs2Diff:
      return enc::Ts2DiffEncoder(block_size).Encode(values, n);
    case enc::ColumnEncoding::kDeltaRle:
      return enc::DeltaRleEncoder().Encode(values, n);
    case enc::ColumnEncoding::kRlbe:
      return enc::RlbeEncoder().Encode(values, n);
    case enc::ColumnEncoding::kSprintz:
      return enc::SprintzEncoder().Encode(values, n);
    case enc::ColumnEncoding::kFastLanes:
      return enc::FastLanesEncoder().Encode(values, n);
    case enc::ColumnEncoding::kStreamVByte:
      return enc::StreamVByteEncoder().Encode(values, n);
    case enc::ColumnEncoding::kGorilla:
      // Delta-of-delta with prefix classes — Gorilla's time dimension
      // (Table I: +-, Flag, Pattern), a natural fit for timestamp columns.
      return enc::GorillaTimestampEncoder().Encode(values, n);
    default: {
      // kPlain fallback: raw Big-Endian i64.
      enc::EncodedColumn col;
      col.encoding = enc::ColumnEncoding::kPlain;
      col.count = static_cast<uint32_t>(n);
      col.bytes.reserve(n * 8);
      for (size_t i = 0; i < n; ++i) {
        PutFixed64BE(&col.bytes, static_cast<uint64_t>(values[i]));
      }
      return col;
    }
  }
}

}  // namespace

Result<Page> BuildPage(const int64_t* times, const int64_t* values, size_t n,
                       const PageOptions& options) {
  if (n == 0) return Status::InvalidArgument("page: empty input");
  for (size_t i = 1; i < n; ++i) {
    if (times[i] <= times[i - 1]) {
      return Status::InvalidArgument("page: times not strictly increasing");
    }
  }
  Page page;
  PageHeader& h = page.header;
  h.count = static_cast<uint32_t>(n);
  h.time_encoding = options.time_encoding;
  h.value_encoding = options.value_encoding;
  h.min_time = times[0];
  h.max_time = times[n - 1];
  h.min_value = *std::min_element(values, values + n);
  h.max_value = *std::max_element(values, values + n);

  enc::EncodedColumn tc =
      EncodeColumn(times, n, options.time_encoding, options.block_size);
  enc::EncodedColumn vc =
      EncodeColumn(values, n, options.value_encoding, options.block_size);
  h.time_bytes = static_cast<uint32_t>(tc.bytes.size());
  h.value_bytes = static_cast<uint32_t>(vc.bytes.size());
  page.time_data.Assign(tc.bytes.data(), tc.bytes.size());
  page.value_data.Assign(vc.bytes.data(), vc.bytes.size());
  return page;
}

Result<Page> BuildPageF64(const int64_t* times, const double* values,
                          size_t n, const PageOptions& options) {
  if (n == 0) return Status::InvalidArgument("page: empty input");
  if (!enc::IsFloatEncoding(options.value_encoding)) {
    return Status::InvalidArgument("page: float build needs float encoding");
  }
  for (size_t i = 1; i < n; ++i) {
    if (times[i] <= times[i - 1]) {
      return Status::InvalidArgument("page: times not strictly increasing");
    }
  }
  Page page;
  PageHeader& h = page.header;
  h.count = static_cast<uint32_t>(n);
  h.time_encoding = options.time_encoding;
  h.value_encoding = options.value_encoding;
  h.min_time = times[0];
  h.max_time = times[n - 1];
  // NaN anywhere in the page poisons both bounds explicitly: finite bounds
  // over the remaining values would let value pruning drop a page whose
  // NaN tuples pass every filter compare. NaN bounds are the "never
  // value-prune this page" signal (storage/pruning_index.h).
  bool has_nan = false;
  double mn = 0, mx = 0;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(values[i])) {
      has_nan = true;
      continue;
    }
    if (!any) {
      mn = mx = values[i];
      any = true;
    } else {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
  }
  if (has_nan) mn = mx = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&h.min_value, &mn, 8);
  std::memcpy(&h.max_value, &mx, 8);

  enc::EncodedColumn tc =
      EncodeColumn(times, n, options.time_encoding, options.block_size);
  enc::EncodedColumn vc;
  switch (options.value_encoding) {
    case enc::ColumnEncoding::kGorillaValue:
      vc = enc::GorillaValueEncoder().EncodeDoubles(values, n);
      break;
    case enc::ColumnEncoding::kChimpValue:
      vc = enc::ChimpEncoder().EncodeDoubles(values, n);
      break;
    default:
      vc = enc::ElfEncoder().EncodeDoubles(values, n);
      break;
  }
  h.time_bytes = static_cast<uint32_t>(tc.bytes.size());
  h.value_bytes = static_cast<uint32_t>(vc.bytes.size());
  page.time_data.Assign(tc.bytes.data(), tc.bytes.size());
  page.value_data.Assign(vc.bytes.data(), vc.bytes.size());
  return page;
}

size_t EncodedColumnBytes(const int64_t* values, size_t n,
                          enc::ColumnEncoding encoding, uint32_t block_size) {
  if (n == 0 || enc::IsFloatEncoding(encoding)) return 0;
  switch (encoding) {
    case enc::ColumnEncoding::kTs2Diff:
    case enc::ColumnEncoding::kDeltaRle:
    case enc::ColumnEncoding::kRlbe:
    case enc::ColumnEncoding::kSprintz:
    case enc::ColumnEncoding::kFastLanes:
    case enc::ColumnEncoding::kStreamVByte:
    case enc::ColumnEncoding::kGorilla:
    case enc::ColumnEncoding::kPlain:
      return EncodeColumn(values, n, encoding, block_size).bytes.size();
    default:
      return 0;
  }
}

size_t EncodedColumnBytesF64(const double* values, size_t n,
                             enc::ColumnEncoding encoding) {
  if (n == 0) return 0;
  switch (encoding) {
    case enc::ColumnEncoding::kGorillaValue:
      return enc::GorillaValueEncoder().EncodeDoubles(values, n).bytes.size();
    case enc::ColumnEncoding::kChimpValue:
      return enc::ChimpEncoder().EncodeDoubles(values, n).bytes.size();
    case enc::ColumnEncoding::kElfValue:
      return enc::ElfEncoder().EncodeDoubles(values, n).bytes.size();
    default:
      return 0;
  }
}

Status DecodePageColumnF64(const AlignedBuffer& data,
                           enc::ColumnEncoding encoding, uint32_t count,
                           double* out) {
  enc::EncodedColumn col;
  col.count = count;
  col.bytes.assign(data.data(), data.data() + data.size());
  switch (encoding) {
    case enc::ColumnEncoding::kGorillaValue:
      return enc::GorillaValueDecodeDoubles(col, out);
    case enc::ColumnEncoding::kChimpValue:
      return enc::ChimpDecodeDoubles(col, out);
    case enc::ColumnEncoding::kElfValue:
      return enc::ElfDecodeDoubles(col, out);
    default:
      return Status::NotSupported("not a float encoding");
  }
}

Status DecodePageColumn(const AlignedBuffer& data, enc::ColumnEncoding encoding,
                        uint32_t count, int64_t* out) {
  switch (encoding) {
    case enc::ColumnEncoding::kTs2Diff: {
      auto col = enc::Ts2DiffColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kDeltaRle: {
      auto col = enc::DeltaRleColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kRlbe: {
      auto col = enc::RlbeColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kSprintz: {
      auto col = enc::SprintzColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kFastLanes: {
      auto col = enc::FastLanesColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kStreamVByte: {
      auto col = enc::StreamVByteColumn::Parse(data.data(), data.size());
      if (!col.ok()) return col.status();
      if (col.value().count() != count) {
        return Status::Corruption("streamvbyte: count mismatch");
      }
      return col.value().DecodeAll(out);
    }
    case enc::ColumnEncoding::kGorilla: {
      enc::EncodedColumn col;
      col.encoding = enc::ColumnEncoding::kGorilla;
      col.count = count;
      col.bytes.assign(data.data(), data.data() + data.size());
      return enc::GorillaTimestampDecode(col, out);
    }
    case enc::ColumnEncoding::kPlain: {
      if (data.size() < count * 8) {
        return Status::Corruption("plain: truncated");
      }
      for (uint32_t i = 0; i < count; ++i) {
        out[i] = static_cast<int64_t>(GetFixed64BE(data.data() + i * 8));
      }
      return Status::Ok();
    }
    default:
      return Status::NotSupported("decode for this encoding");
  }
}

bool PageDecodeSupported(enc::ColumnEncoding encoding) {
  switch (encoding) {
    case enc::ColumnEncoding::kTs2Diff:
    case enc::ColumnEncoding::kDeltaRle:
    case enc::ColumnEncoding::kRlbe:
    case enc::ColumnEncoding::kSprintz:
    case enc::ColumnEncoding::kFastLanes:
    case enc::ColumnEncoding::kStreamVByte:
    case enc::ColumnEncoding::kGorilla:
    case enc::ColumnEncoding::kPlain:
    case enc::ColumnEncoding::kGorillaValue:
    case enc::ColumnEncoding::kChimpValue:
    case enc::ColumnEncoding::kElfValue:
      return true;
    default:
      return false;
  }
}

}  // namespace etsqp::storage
