#include "storage/codec_advisor.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/page_builder.h"

namespace etsqp::storage {

namespace {

int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

}  // namespace

ColumnShape SummarizeInts(const int64_t* values, size_t n) {
  ColumnShape shape;
  shape.count = n;
  if (n == 0) return shape;
  uint64_t value_runs = 1, delta_runs = 0;
  uint64_t max_zz = 0;
  int64_t prev_delta = 0;
  for (size_t i = 1; i < n; ++i) {
    if (values[i] != values[i - 1]) ++value_runs;
    int64_t delta = values[i] - values[i - 1];  // wrap is fine: shape only
    max_zz = std::max(max_zz, ZigZag(delta));
    if (i == 1 || delta != prev_delta) ++delta_runs;
    prev_delta = delta;
  }
  shape.delta_bits = BitWidth(max_zz);
  shape.mean_run = static_cast<double>(n) / static_cast<double>(value_runs);
  shape.mean_delta_run =
      n < 2 ? 1.0
            : static_cast<double>(n - 1) / static_cast<double>(delta_runs);
  return shape;
}

ColumnShape SummarizeFloats(const double* values, size_t n) {
  ColumnShape shape;
  shape.count = n;
  if (n < 2) return shape;
  uint64_t zeros = 0, nonzero = 0, sig_bits = 0;
  uint64_t prev;
  std::memcpy(&prev, &values[0], 8);
  for (size_t i = 1; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &values[i], 8);
    uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      ++zeros;
      continue;
    }
    ++nonzero;
    // Significant span: bits between the leading and trailing zero runs —
    // what all three XOR codecs pay per value.
    int lead = 0;
    for (uint64_t probe = 1ull << 63; (x & probe) == 0; probe >>= 1) ++lead;
    int trail = 0;
    for (uint64_t probe = 1; (x & probe) == 0; probe <<= 1) ++trail;
    sig_bits += static_cast<uint64_t>(64 - lead - trail);
  }
  shape.xor_zero_ratio =
      static_cast<double>(zeros) / static_cast<double>(n - 1);
  if (nonzero > 0) {
    shape.xor_mean_sig_bits =
        static_cast<double>(sig_bits) / static_cast<double>(nonzero);
  }
  return shape;
}

namespace {

struct Trial {
  enc::ColumnEncoding encoding;
  size_t bytes;
};

/// Picks from trial results: smallest bytes, with a cost-hook tie-break
/// inside `tie_band`, then the min-gain damper against `current`.
CodecAdvisor::Advice Pick(std::vector<Trial> trials,
                          enc::ColumnEncoding current, bool is_float,
                          const CodecAdvisor::Options& options) {
  CodecAdvisor::Advice advice;
  advice.encoding = current;
  for (const Trial& t : trials) {
    if (t.encoding == current) advice.current_bytes = t.bytes;
  }
  size_t best = SIZE_MAX;
  for (const Trial& t : trials) best = std::min(best, t.bytes);
  if (best == SIZE_MAX) return advice;

  Trial winner{current, SIZE_MAX};
  double winner_cost = -1;
  double band = static_cast<double>(best) * (1.0 + options.tie_band);
  for (const Trial& t : trials) {
    if (static_cast<double>(t.bytes) > band) continue;
    double cost =
        options.cost_hook ? options.cost_hook(t.encoding, is_float) : -1;
    bool better;
    if (winner.bytes == SIZE_MAX) {
      better = true;
    } else if (cost >= 0 && winner_cost >= 0) {
      better = cost < winner_cost ||
               (cost == winner_cost && t.bytes < winner.bytes);
    } else {
      better = t.bytes < winner.bytes;
    }
    if (better) {
      winner = t;
      winner_cost = cost;
    }
  }

  // Keep the current codec unless the winner's gain clears the damper.
  if (winner.encoding != current && advice.current_bytes > 0) {
    double kept = static_cast<double>(advice.current_bytes);
    if (static_cast<double>(winner.bytes) > kept * (1.0 - options.min_gain)) {
      advice.encoded_bytes = advice.current_bytes;
      return advice;
    }
  }
  advice.encoding = winner.encoding;
  advice.encoded_bytes = winner.bytes;
  return advice;
}

}  // namespace

bool CodecAdvisor::DecodeSupported(enc::ColumnEncoding e) const {
  return options_.decode_support ? options_.decode_support(e)
                                 : PageDecodeSupported(e);
}

CodecAdvisor::Advice CodecAdvisor::AdviseInt(const int64_t* values, size_t n,
                                             enc::ColumnEncoding current,
                                             uint32_t block_size) const {
  ColumnShape shape = SummarizeInts(values, n);
  std::vector<enc::ColumnEncoding> candidates = {
      current, enc::ColumnEncoding::kTs2Diff,
      enc::ColumnEncoding::kStreamVByte};
  if (shape.mean_run >= 1.5 || shape.mean_delta_run >= 1.5) {
    candidates.push_back(enc::ColumnEncoding::kRlbe);
    candidates.push_back(enc::ColumnEncoding::kDeltaRle);
  }
  if (shape.delta_bits <= 32) {
    candidates.push_back(enc::ColumnEncoding::kSprintz);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<Trial> trials;
  for (enc::ColumnEncoding e : candidates) {
    if (e != current && !DecodeSupported(e)) continue;
    size_t bytes = EncodedColumnBytes(values, n, e, block_size);
    if (bytes > 0) trials.push_back({e, bytes});
  }
  Advice advice = Pick(std::move(trials), current, /*is_float=*/false,
                       options_);
  advice.shape = shape;
  return advice;
}

CodecAdvisor::Advice CodecAdvisor::AdviseFloat(
    const double* values, size_t n, enc::ColumnEncoding current) const {
  ColumnShape shape = SummarizeFloats(values, n);
  std::vector<Trial> trials;
  for (enc::ColumnEncoding e :
       {enc::ColumnEncoding::kGorillaValue, enc::ColumnEncoding::kChimpValue,
        enc::ColumnEncoding::kElfValue}) {
    if (e != current && !DecodeSupported(e)) continue;
    size_t bytes = EncodedColumnBytesF64(values, n, e);
    if (bytes > 0) trials.push_back({e, bytes});
  }
  Advice advice = Pick(std::move(trials), current, /*is_float=*/true,
                       options_);
  advice.shape = shape;
  return advice;
}

}  // namespace etsqp::storage
