#include "sim/sched_sim.h"

#include <algorithm>
#include <limits>

namespace etsqp::sim {

SimResult Simulate(const std::vector<SimJob>& jobs, int cores,
                   SchedulePolicy policy) {
  SimResult result;
  size_t n = jobs.size();
  if (n == 0 || cores < 1) return result;
  std::vector<double> finish(n, -1.0);
  std::vector<double> core_free(static_cast<size_t>(cores), 0.0);
  std::vector<double> core_busy(static_cast<size_t>(cores), 0.0);

  if (policy == SchedulePolicy::kStaticPartition) {
    // Each core runs its pre-assigned jobs in order.
    for (size_t i = 0; i < n; ++i) {
      size_t c = i % static_cast<size_t>(cores);
      double ready = jobs[i].depends_on >= 0
                         ? finish[static_cast<size_t>(jobs[i].depends_on)]
                         : 0.0;
      double start = std::max(core_free[c], ready);
      finish[i] = start + jobs[i].cost;
      core_free[c] = finish[i];
      core_busy[c] += jobs[i].cost;
    }
  } else {
    // Shared ready queue: repeatedly give the earliest-free core the first
    // unstarted job whose dependency has finished by that core's free time;
    // if none is ready, the core idles until the earliest dependency
    // completes.
    std::vector<bool> started(n, false);
    size_t remaining = n;
    while (remaining > 0) {
      size_t c = static_cast<size_t>(
          std::min_element(core_free.begin(), core_free.end()) -
          core_free.begin());
      double now = core_free[c];
      // First ready job in queue order.
      size_t pick = n;
      double next_ready = std::numeric_limits<double>::max();
      for (size_t i = 0; i < n; ++i) {
        if (started[i]) continue;
        double ready = jobs[i].depends_on >= 0
                           ? finish[static_cast<size_t>(jobs[i].depends_on)]
                           : 0.0;
        if (ready < 0) ready = std::numeric_limits<double>::max();
        if (ready <= now) {
          pick = i;
          break;
        }
        next_ready = std::min(next_ready, ready);
      }
      if (pick == n) {
        // No job ready: this core idles until one becomes ready.
        core_free[c] = next_ready;
        continue;
      }
      started[pick] = true;
      finish[pick] = now + jobs[pick].cost;
      core_free[c] = finish[pick];
      core_busy[c] += jobs[pick].cost;
      --remaining;
    }
  }
  for (size_t c = 0; c < core_free.size(); ++c) {
    result.makespan = std::max(result.makespan, core_free[c]);
  }
  for (size_t c = 0; c < core_free.size(); ++c) {
    result.total_busy += core_busy[c];
    result.total_idle += result.makespan - core_busy[c];
  }
  return result;
}

std::vector<SimJob> JobsFromCosts(const std::vector<double>& costs) {
  std::vector<SimJob> jobs(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) jobs[i].cost = costs[i];
  return jobs;
}

std::vector<SimJob> SlicedJobs(const std::vector<double>& page_costs,
                               int slices_per_page, double sync_overhead,
                               bool chain_dependencies) {
  std::vector<SimJob> jobs;
  int s = std::max(slices_per_page, 1);
  for (double cost : page_costs) {
    int first = static_cast<int>(jobs.size());
    for (int k = 0; k < s; ++k) {
      SimJob job;
      job.cost = cost / s + sync_overhead;
      job.depends_on = chain_dependencies && k > 0 ? first + k - 1 : -1;
      jobs.push_back(job);
    }
  }
  return jobs;
}

}  // namespace etsqp::sim
