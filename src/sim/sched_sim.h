#ifndef ETSQP_SIM_SCHED_SIM_H_
#define ETSQP_SIM_SCHED_SIM_H_

#include <cstddef>
#include <vector>

namespace etsqp::sim {

/// Deterministic discrete-event scheduler simulator — the multi-core
/// substitution substrate (DESIGN.md §5). The evaluation host exposes a
/// single CPU core, so the thread-scaling behaviour of Figures 8/11/12(a-b)/
/// 14(c-d) is reproduced by replaying *measured* single-core per-job costs
/// over p simulated cores under the two scheduling policies the paper
/// compares.

/// One pipeline job: a page or page slice, with its measured cost and an
/// optional dependency (SBoost-style sub-block slicing makes slice k of a
/// page wait for slice k-1's prefix sums — P1S2 waits for P1S1, Figure 8).
struct SimJob {
  double cost = 0.0;      // measured single-core execution time
  int depends_on = -1;    // index of the prerequisite job, or -1
};

enum class SchedulePolicy {
  /// ETSQP job scheduler: a shared queue; each free core takes the next
  /// *ready* job (dependencies satisfied), scanning past blocked ones.
  kSharedQueue,
  /// SBoost-style static partition: job i is pre-assigned to core i % p and
  /// each core runs its list in order, stalling on unmet dependencies.
  kStaticPartition,
};

struct SimResult {
  double makespan = 0.0;
  double total_busy = 0.0;
  double total_idle = 0.0;  // sum over cores of (makespan - busy)

  double speedup_vs_serial() const {
    return makespan > 0 ? total_busy / makespan : 0.0;
  }
};

/// Simulates executing `jobs` on `cores` workers under `policy`.
/// Dependencies must point to earlier job indices.
SimResult Simulate(const std::vector<SimJob>& jobs, int cores,
                   SchedulePolicy policy);

/// Convenience: jobs from per-page costs with no dependencies.
std::vector<SimJob> JobsFromCosts(const std::vector<double>& costs);

/// Jobs modeling each page split into `slices_per_page` dependent slices
/// (prefix-sum chain within a page), as SBoost's splitting does. Each
/// slice cost = page cost / slices + `sync_overhead` per slice.
std::vector<SimJob> SlicedJobs(const std::vector<double>& page_costs,
                               int slices_per_page, double sync_overhead,
                               bool chain_dependencies);

}  // namespace etsqp::sim

#endif  // ETSQP_SIM_SCHED_SIM_H_
