#ifndef ETSQP_EXEC_TAIL_KERNEL_H_
#define ETSQP_EXEC_TAIL_KERNEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "exec/pipeline.h"

namespace etsqp::exec {

/// Scalar kernels over the unsealed in-memory tail of a series snapshot
/// (storage::SeriesSnapshot::tail_*). The tail is raw, unencoded and small
/// (bounded by the page size times the in-flight seal count), so a scalar
/// pass is the right tool — the SIMD pipelines earn their keep on encoded
/// pages. Times are strictly increasing (Definition 1), which the kernels
/// exploit by binary-searching the time-range bounds.
///
/// Stats: processed tuples count into tuples_scanned like the page kernels,
/// and additionally into tail_tuples_scanned so EXPLAIN ANALYZE can show
/// how much of a query was served from the tail.

Status TailAggregate(const int64_t* times, const int64_t* values, size_t n,
                     const TimeRange& trange, const ValueRange& vrange,
                     AggFunc func, const PipelineOptions& opt,
                     AggAccum* accum, QueryStats* stats);

Status TailAggregateWindows(const int64_t* times, const int64_t* values,
                            size_t n, const SlidingWindow& sw, AggFunc func,
                            const PipelineOptions& opt,
                            std::map<int64_t, AggAccum>* windows,
                            QueryStats* stats);

Status TailAggregateF64(const int64_t* times, const double* values, size_t n,
                        const TimeRange& trange, const ValueRange& vrange,
                        AggFunc func, const PipelineOptions& opt,
                        FloatAggAccum* accum, QueryStats* stats);

Status TailAggregateWindowsF64(const int64_t* times, const double* values,
                               size_t n, const SlidingWindow& sw,
                               AggFunc func, const PipelineOptions& opt,
                               std::map<int64_t, FloatAggAccum>* windows,
                               QueryStats* stats);

/// Emits the filtered (time, value) tuples of the tail — the tail leg of
/// the SELECT / union / join / correlate materialization.
Status TailMaterialize(const int64_t* times, const int64_t* values, size_t n,
                       const TimeRange& trange, const ValueRange& vrange,
                       const PipelineOptions& opt,
                       std::vector<int64_t>* out_times,
                       std::vector<int64_t>* out_values, QueryStats* stats);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_TAIL_KERNEL_H_
