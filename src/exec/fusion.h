#ifndef ETSQP_EXEC_FUSION_H_
#define ETSQP_EXEC_FUSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/delta_rle.h"
#include "encoding/ts2diff.h"

namespace etsqp::exec {

/// Operator fusion (paper Section IV): aggregation without decoding.
/// Associative aggregates over Delta(-Repeat) encoded data are computed as
/// closed-form polynomials over the encoded <delta, run> structure, skipping
/// both the Repeat flatten and the Delta accumulation.

/// Fused SUM over a TS2DIFF column restricted to positions [begin, end).
/// For a block slice, sum X_i = m * X_a + sum (b - i)(base + d_i) — a
/// weighted dot product over *unpacked residuals* with no serial Delta
/// dependency (computed with the WeightedRampSum SIMD kernel). X_a itself is
/// a plain residual sum. Unpacked residuals are cached per block so sliding
/// windows touching the same block unpack once.
class Ts2DiffFusedReader {
 public:
  /// `data` must outlive the reader and carry 32 bytes of slack.
  static Result<Ts2DiffFusedReader> Open(const uint8_t* data, size_t size);

  uint32_t count() const { return col_.count(); }

  /// Sum of values at positions [begin, end). Fails with kOverflow when the
  /// exact sum exceeds int64 (Section VI-C).
  Status SumRange(size_t begin, size_t end, int64_t* out);

  /// Value at a single position (used for AVG cross-checks and tests).
  Status ValueAt(size_t pos, int64_t* out);

 private:
  enc::Ts2DiffColumn col_;
  // Per-block unpacked residuals (lazy).
  std::vector<std::vector<int32_t>> residuals_;
  std::vector<bool> unpacked_;

  Status EnsureUnpacked(size_t block_index);
};

/// Fused aggregates over a Delta-RLE column (Section IV polynomials). Each
/// <delta, run> pair contributes closed-form sums of an arithmetic
/// progression: run work is O(1) regardless of run length — the Figure
/// 12(c-d) effect.
struct DeltaRleAggregates {
  int64_t sum = 0;
  uint64_t count = 0;
  // Sum of squares, for VAR; computed only when requested.
  __int128 sum_sq = 0;
};

/// Aggregates positions [begin, end). `need_sq` additionally computes
/// sum A_i^2. Fails with kOverflow when sums exceed their domains.
Status FusedAggDeltaRle(const enc::DeltaRleColumn& col, size_t begin,
                        size_t end, bool need_sq, DeltaRleAggregates* out);

/// Fused cross product sum A_i * B_i over two position-aligned Delta-RLE
/// columns (the paper's correlation building block): at every step the
/// overlap window of the two current runs is a pair of arithmetic
/// progressions, aggregated with the 4-term polynomial of Section IV.
Status FusedCrossDeltaRle(const enc::DeltaRleColumn& a,
                          const enc::DeltaRleColumn& b, size_t begin,
                          size_t end, __int128* out);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_FUSION_H_
