#include "exec/pruning.h"

#include <algorithm>
#include <vector>

#include "simd/delta_simd.h"
#include "simd/transposed_unpack.h"

namespace etsqp::exec {

namespace {

/// Conservative upper bound of the last timestamp in a block.
__int128 BlockTimeUpperBound(const enc::Ts2DiffBlock& b) {
  __int128 hi = b.first_value;
  __int128 dmax = b.delta_upper_bound();
  if (dmax > 0) hi += dmax * b.num_deltas;
  return hi;
}

/// Decodes block times into `buf` (int64) with the requested strategy.
void DecodeBlockTimes(const enc::Ts2DiffBlock& b, DecodeStrategy strategy,
                      int n_v, std::vector<int64_t>* buf) {
  buf->resize(b.num_values());
  // Narrow path: exact block statistics bound the offset domain.
  bool narrow = strategy != DecodeStrategy::kSerial &&
                b.max_value - b.min_value < (1ll << 30);
  if (!narrow) {
    enc::Ts2DiffColumn::DecodeBlock(b, buf->data());
    return;
  }
  std::vector<int32_t> offsets(b.num_deltas);
  int32_t md = static_cast<int32_t>(b.min_delta);
  switch (strategy) {
    case DecodeStrategy::kEtsqp:
      simd::DeltaDecodeOffsets(b.packed, b.packed_bytes, b.num_deltas,
                               b.width, md, n_v, 0, offsets.data());
      break;
    case DecodeStrategy::kSboost:
      simd::SboostDeltaDecode(b.packed, b.packed_bytes, b.num_deltas, b.width,
                              md, 0, offsets.data());
      break;
    default:
      simd::DeltaDecodeOffsetsScalar(b.packed, b.packed_bytes, b.num_deltas,
                                     b.width, md, 0, offsets.data());
      break;
  }
  (*buf)[0] = b.first_value;
  for (uint32_t i = 0; i < b.num_deltas; ++i) {
    (*buf)[i + 1] = b.first_value + offsets[i];
  }
}

}  // namespace

Status TimeRangePositions(const uint8_t* data, size_t size, uint32_t count,
                          const TimeRange& range, DecodeStrategy strategy,
                          int n_v, bool prune, size_t* first, size_t* last,
                          uint64_t* blocks_pruned, uint64_t* tuples_scanned) {
  Result<enc::Ts2DiffColumn> parsed = enc::Ts2DiffColumn::Parse(data, size);
  if (!parsed.ok()) return parsed.status();
  const enc::Ts2DiffColumn& col = parsed.value();
  if (col.count() != count) return Status::Corruption("time column count");

  size_t lo_pos = count;  // first position with t >= range.lo
  size_t hi_pos = count;  // first position with t > range.hi
  bool lo_found = false;
  std::vector<int64_t> buf;

  for (const enc::Ts2DiffBlock& b : col.blocks()) {
    size_t bs = b.start_index;
    // Stop: this and all later blocks start above the range (times sorted).
    if (b.first_value > range.hi) {
      hi_pos = bs;
      if (!lo_found) lo_pos = bs;
      lo_found = true;
      if (blocks_pruned != nullptr) {
        // Count the remaining blocks as pruned.
        *blocks_pruned += col.blocks().size() -
                          (&b - col.blocks().data());
      }
      break;
    }
    if (prune && !lo_found && BlockTimeUpperBound(b) < range.lo) {
      // Proposition 4 case (1): the whole block is certainly below lo.
      if (blocks_pruned != nullptr) ++(*blocks_pruned);
      continue;
    }
    if (prune && b.constant_interval() && b.min_delta > 0) {
      // Constant interval D: direct position arithmetic, no decoding.
      int64_t d = b.min_delta;
      int64_t f = b.first_value;
      size_t m = b.num_values();
      if (!lo_found) {
        if (f >= range.lo) {
          lo_pos = bs;
          lo_found = true;
        } else {
          // smallest i with f + i*d >= lo
          int64_t i = (range.lo - f + d - 1) / d;
          if (i < static_cast<int64_t>(m)) {
            lo_pos = bs + static_cast<size_t>(i);
            lo_found = true;
          }
        }
      }
      // first i with f + i*d > hi
      if (f + static_cast<int64_t>(m - 1) * d > range.hi) {
        int64_t i = (range.hi - f) / d + 1;
        if (i < 0) i = 0;
        hi_pos = bs + static_cast<size_t>(i);
        if (!lo_found) {
          lo_pos = hi_pos;
          lo_found = true;
        }
        break;
      }
      continue;
    }
    // General case: decode the block and binary-search (times sorted).
    DecodeBlockTimes(b, strategy, n_v, &buf);
    if (tuples_scanned != nullptr) *tuples_scanned += buf.size();
    if (!lo_found) {
      auto it = std::lower_bound(buf.begin(), buf.end(), range.lo);
      if (it != buf.end()) {
        lo_pos = bs + static_cast<size_t>(it - buf.begin());
        lo_found = true;
      }
    }
    if (buf.back() > range.hi) {
      auto it = std::upper_bound(buf.begin(), buf.end(), range.hi);
      hi_pos = bs + static_cast<size_t>(it - buf.begin());
      if (!lo_found) {
        lo_pos = hi_pos;
        lo_found = true;
      }
      break;
    }
  }
  if (!lo_found) lo_pos = hi_pos = count;
  *first = std::min(lo_pos, hi_pos);
  *last = hi_pos;
  return Status::Ok();
}

bool ValueBlockPrunable(const enc::Ts2DiffBlock& block, int64_t lo,
                        int64_t hi) {
  __int128 bmin = block.first_value;
  __int128 bmax = block.first_value;
  __int128 dmin = block.delta_lower_bound();
  __int128 dmax = block.delta_upper_bound();
  if (dmin < 0) bmin += dmin * block.num_deltas;
  if (dmax > 0) bmax += dmax * block.num_deltas;
  return bmax < lo || bmin > hi;
}

void DeltaRleValueBounds(const enc::DeltaRleColumn& col, int64_t* lo,
                         int64_t* hi) {
  __int128 bmin = col.first_value();
  __int128 bmax = col.first_value();
  __int128 dmin = col.delta_lower_bound();
  __int128 dmax = col.delta_upper_bound();
  __int128 steps = col.count() == 0 ? 0 : col.count() - 1;
  if (dmin < 0) bmin += dmin * steps;
  if (dmax > 0) bmax += dmax * steps;
  constexpr __int128 kLo = std::numeric_limits<int64_t>::min();
  constexpr __int128 kHi = std::numeric_limits<int64_t>::max();
  *lo = static_cast<int64_t>(std::max(bmin, kLo));
  *hi = static_cast<int64_t>(std::min(bmax, kHi));
}

}  // namespace etsqp::exec
