#ifndef ETSQP_EXEC_ENGINE_H_
#define ETSQP_EXEC_ENGINE_H_

#include "common/status.h"
#include "exec/expr.h"
#include "exec/pipeline.h"
#include "storage/buffer_manager.h"
#include "storage/series_store.h"

namespace etsqp::exec {

/// The input a query runs against: either an in-memory SeriesStore or a
/// file-backed store (Section VI-C's gradual page loading). Implicitly
/// constructible from both so `engine.Execute(plan, store)` reads the same
/// either way.
class StoreHandle {
 public:
  StoreHandle(const storage::SeriesStore& store)  // NOLINT(runtime/explicit)
      : memory_(&store) {}
  StoreHandle(storage::FileBackedStore* store)  // NOLINT(runtime/explicit)
      : file_(store) {}
  StoreHandle(storage::FileBackedStore& store)  // NOLINT(runtime/explicit)
      : file_(&store) {}

  const storage::SeriesStore* memory() const { return memory_; }
  storage::FileBackedStore* file() const { return file_; }

 private:
  const storage::SeriesStore* memory_ = nullptr;
  storage::FileBackedStore* file_ = nullptr;
};

/// The ETSQP query engine facade: compiles a logical plan with Pipe
/// (Algorithm 2), runs the decoding/aggregation pipelines on the job
/// scheduler, and merges partial results (Figure 9's merge nodes).
///
/// The evaluation baselines are configurations of this engine:
///   ETSQP        PipelineOptions::Etsqp(threads)
///   ETSQP-prune  PipelineOptions::EtsqpPrune(threads)
///   Serial       PipelineOptions::Serial()
///   SBoost       PipelineOptions::Sboost(threads)
///   FastLanes    PipelineOptions::FastLanes(threads) over FLMM1024 pages
class Engine {
 public:
  explicit Engine(PipelineOptions options) : options_(options) {}

  /// Executes `plan` against `store` — the single entry point for both
  /// in-memory and file-backed inputs. File-backed stores stream pages
  /// through the LRU buffer pool and never fetch header-pruned pages; only
  /// kAggregate plans are supported on that path.
  ///
  /// `plan.explain` selects EXPLAIN behaviour: kPlan compiles the Pipe
  /// operator tree into QueryResult::explain_text without executing;
  /// kAnalyze executes with stats collection forced on and renders the tree
  /// annotated with the measured per-stage profile.
  Result<QueryResult> Execute(const LogicalPlan& plan, StoreHandle store) const;

  const PipelineOptions& options() const { return options_; }

 private:
  Result<QueryResult> ExecuteMemory(const LogicalPlan& plan,
                                    const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteFile(const LogicalPlan& plan,
                                  storage::FileBackedStore* store) const;
  Result<QueryResult> ExecuteExplain(const LogicalPlan& plan,
                                     StoreHandle store) const;
  Result<QueryResult> ExecuteAggregate(const LogicalPlan& plan,
                                       const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteSelect(const LogicalPlan& plan,
                                    const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteBinary(const LogicalPlan& plan,
                                    const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteCorrelate(const LogicalPlan& plan,
                                       const storage::SeriesStore& store) const;

  PipelineOptions options_;
};

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_ENGINE_H_
