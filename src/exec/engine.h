#ifndef ETSQP_EXEC_ENGINE_H_
#define ETSQP_EXEC_ENGINE_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "exec/expr.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include "storage/buffer_manager.h"
#include "storage/series_store.h"

namespace etsqp::exec {

/// The input a query runs against: an in-memory SeriesStore, a file-backed
/// store (Section VI-C's gradual page loading), or a SnapshotResolver that
/// maps each input series to a snapshot on whatever store owns it (the db
/// layer's sharded path). Implicitly constructible from all three so
/// `engine.Execute(plan, store)` reads the same either way.
class StoreHandle {
 public:
  StoreHandle(const storage::SeriesStore& store)  // NOLINT(runtime/explicit)
      : memory_(&store) {}
  StoreHandle(storage::FileBackedStore* store)  // NOLINT(runtime/explicit)
      : file_(store) {}
  StoreHandle(storage::FileBackedStore& store)  // NOLINT(runtime/explicit)
      : file_(&store) {}
  StoreHandle(SnapshotResolver resolver)  // NOLINT(runtime/explicit)
      : resolver_(std::move(resolver)) {}

  const storage::SeriesStore* memory() const { return memory_; }
  storage::FileBackedStore* file() const { return file_; }

  /// True when Snapshot() can serve inputs (memory store or resolver).
  bool resolves() const { return memory_ != nullptr || resolver_ != nullptr; }

  /// Snapshot of `name` from whichever backing this handle wraps.
  Result<storage::SeriesSnapshot> Snapshot(const std::string& name) const {
    if (resolver_) return resolver_(name);
    if (memory_ != nullptr) return memory_->GetSnapshot(name);
    return Status::Internal("store handle resolves no snapshots");
  }

 private:
  const storage::SeriesStore* memory_ = nullptr;
  storage::FileBackedStore* file_ = nullptr;
  SnapshotResolver resolver_;
};

/// The ETSQP query engine facade: compiles a logical plan with Pipe
/// (Algorithm 2), runs the decoding/aggregation pipelines on the job
/// scheduler, and merges partial results (Figure 9's merge nodes).
///
/// The evaluation baselines are configurations of this engine:
///   ETSQP        PipelineOptions::Etsqp(threads)
///   ETSQP-prune  PipelineOptions::EtsqpPrune(threads)
///   Serial       PipelineOptions::Serial()
///   SBoost       PipelineOptions::Sboost(threads)
///   FastLanes    PipelineOptions::FastLanes(threads) over FLMM1024 pages
class Engine {
 public:
  explicit Engine(PipelineOptions options) : options_(options) {}

  /// Executes `plan` against `store` — the single entry point for both
  /// in-memory and file-backed inputs. File-backed stores stream pages
  /// through the LRU buffer pool and never fetch header-pruned pages; only
  /// kAggregate plans are supported on that path.
  ///
  /// `plan.explain` selects EXPLAIN behaviour: kPlan compiles the Pipe
  /// operator tree into QueryResult::explain_text without executing;
  /// kAnalyze executes with stats collection forced on and renders the tree
  /// annotated with the measured per-stage profile.
  Result<QueryResult> Execute(const LogicalPlan& plan, StoreHandle store) const;

  const PipelineOptions& options() const { return options_; }

 private:
  Result<QueryResult> ExecuteMemory(const LogicalPlan& plan,
                                    const StoreHandle& store) const;
  Result<QueryResult> ExecuteFile(const LogicalPlan& plan,
                                  storage::FileBackedStore* store) const;
  Result<QueryResult> ExecuteExplain(const LogicalPlan& plan,
                                     StoreHandle store) const;
  Result<QueryResult> ExecuteAggregate(const LogicalPlan& plan,
                                       const StoreHandle& store) const;
  Result<QueryResult> ExecuteSelect(const LogicalPlan& plan,
                                    const StoreHandle& store) const;
  Result<QueryResult> ExecuteBinary(const LogicalPlan& plan,
                                    const StoreHandle& store) const;
  Result<QueryResult> ExecuteCorrelate(const LogicalPlan& plan,
                                       const StoreHandle& store) const;

  PipelineOptions options_;
};

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_ENGINE_H_
