#ifndef ETSQP_EXEC_ENGINE_H_
#define ETSQP_EXEC_ENGINE_H_

#include "common/status.h"
#include "exec/expr.h"
#include "exec/pipeline.h"
#include "storage/buffer_manager.h"
#include "storage/series_store.h"

namespace etsqp::exec {

/// The ETSQP query engine facade: compiles a logical plan with Pipe
/// (Algorithm 2), runs the decoding/aggregation pipelines on the job
/// scheduler, and merges partial results (Figure 9's merge nodes).
///
/// The evaluation baselines are configurations of this engine:
///   ETSQP        {kEtsqp,  prune=false, fusion=true}
///   ETSQP-prune  {kEtsqp,  prune=true,  fusion=true}
///   Serial       {kSerial}
///   SBoost       {kSboost, fusion=false}
///   FastLanes    {kFastLanes} over FLMM1024-encoded pages
class Engine {
 public:
  explicit Engine(PipelineOptions options) : options_(options) {}

  /// Executes `plan` against `store` and returns the result table.
  Result<QueryResult> Execute(const LogicalPlan& plan,
                              const storage::SeriesStore& store) const;

  /// Executes an aggregation plan against a file-backed store (Section
  /// VI-C's gradual page loading): pages pruned by header statistics are
  /// never fetched from the file; the rest stream through the LRU buffer
  /// pool. Only kAggregate plans are supported on this path.
  Result<QueryResult> ExecuteOnFile(const LogicalPlan& plan,
                                    storage::FileBackedStore* store) const;

  const PipelineOptions& options() const { return options_; }

 private:
  Result<QueryResult> ExecuteAggregate(const LogicalPlan& plan,
                                       const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteSelect(const LogicalPlan& plan,
                                    const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteBinary(const LogicalPlan& plan,
                                    const storage::SeriesStore& store) const;
  Result<QueryResult> ExecuteCorrelate(const LogicalPlan& plan,
                                       const storage::SeriesStore& store) const;

  PipelineOptions options_;
};

/// Canonical option sets for the evaluation baselines.
PipelineOptions EtsqpOptions(int threads = 1);
PipelineOptions EtsqpPruneOptions(int threads = 1);
PipelineOptions SerialOptions();
PipelineOptions SboostOptions(int threads = 1);
PipelineOptions FastLanesOptions(int threads = 1);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_ENGINE_H_
