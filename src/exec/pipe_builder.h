#ifndef ETSQP_EXEC_PIPE_BUILDER_H_
#define ETSQP_EXEC_PIPE_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expr.h"
#include "exec/pipeline.h"
#include "exec/scheduler.h"
#include "exec/scheduler_registry.h"
#include "storage/series_store.h"

namespace etsqp::exec {

/// Pipe (paper Algorithm 2): compiles a logical plan plus the storage page
/// map into per-thread pipeline jobs. Single-column filters are pushed into
/// the decoding pipelines (Eq. 1-2); pages that the header statistics rule
/// out are dropped here (whole-page pruning); remaining pages are split into
/// block-aligned slices when there are more cores than pages (Lines 5-6);
/// binary operators get one decoding pipeline per input, grouped by time
/// range and combined by a merge node (Eq. 5-6, Figure 9).

/// One decoding-pipeline job: a slice of one page of one input series, or
/// (when `tail` is set) the unsealed in-memory tail of that input — the
/// streaming-ingest buffer drained by the scalar tail kernels. Tail jobs
/// are emitted after the page jobs of their input so per-input
/// concatenation of job outputs stays in time order.
struct PipeJob {
  int input = 0;  // 0 = plan.series, 1 = plan.series_right
  size_t page_index = 0;
  size_t begin = 0;
  size_t end = 0;
  bool tail = false;  // job covers snapshot.tail_* instead of a page
  /// Index into PipelineSpec::decisions when the registry planned this job
  /// (options.use_registry); -1 = run the options' pinned strategy.
  int decision = -1;
  /// A tombstone partially covers the page: the job decodes the whole page
  /// and filters deleted timestamps before aggregating (scalar masked
  /// drain), instead of running the vectorized slice kernels. Masked jobs
  /// are never sliced. Last field so positional initializers of the
  /// pre-tombstone shape keep compiling.
  bool masked = false;
};

/// The compiled pipeline: jobs ready for the job scheduler, the scheduler
/// decisions the jobs reference (one per distinct page class), plus
/// counters for pages pruned at planning time.
struct PipelineSpec {
  std::vector<PipeJob> jobs;
  std::vector<ScheduleDecision> decisions;
  QueryStats plan_stats;  // pages_total / pages_pruned / tuples_in_pages
  /// Index into `decisions` for the merge stage of multi-input plans
  /// (binary/correlate/concat): which etsqp.merge.* kernel combines the
  /// per-input streams. -1 = single input or registry off.
  int merge_decision = -1;
};

/// Plan-time registry lookups, one per distinct page class: classes are
/// memoized by key so a thousand-page series with one codec and width costs
/// a single Propose() call. A no-op (every Decide returns -1) when the
/// options don't ask for registry planning.
class DecisionCache {
 public:
  DecisionCache(const LogicalPlan& plan, const PipelineOptions& options,
                PipelineSpec* spec);

  /// Decision index for `cls` (memoized); -1 when the registry is off or
  /// nothing can schedule the class.
  int Decide(const PageClass& cls);

  /// EXPLAIN bookkeeping: pages/tuples covered per decision.
  void Cover(int idx, uint64_t pages, uint64_t tuples);

 private:
  bool enabled_;
  PlanContext ctx_;
  const CostCalibration* calibration_;
  PipelineSpec* spec_;
  std::map<std::string, int> index_;
};

/// Maps a series name to a consistent snapshot. The indirection is what
/// lets one compiled pipeline span stores: the db layer's shard router
/// supplies a resolver that looks each input up on its owning shard, so a
/// cross-shard binary plan still compiles into a single PipelineJobSet and
/// merges through the ordinary merge stage.
using SnapshotResolver =
    std::function<Result<storage::SeriesSnapshot>(const std::string&)>;

/// Captures consistent snapshots of the plan's input series (left, plus
/// right for binary operators): sealed pages and the queryable tail in one
/// lock acquisition per input, so execution is stable under concurrent
/// ingest.
Result<std::vector<storage::SeriesSnapshot>> ResolveInputs(
    const LogicalPlan& plan, const storage::SeriesStore& store);

/// Same, but each input snapshot comes from `resolve` — the multi-shard
/// entry point (inputs may live on different stores).
Result<std::vector<storage::SeriesSnapshot>> ResolveInputs(
    const LogicalPlan& plan, const SnapshotResolver& resolve);

/// Builds jobs for `plan` over resolved input snapshots. Applies
/// header-level page pruning (time range vs page min/max always; value
/// range vs page min/max when options.prune), and the same statistics
/// check to the tail (its min/max are computed at snapshot capture), so
/// pruning short-circuits the tail too.
Result<PipelineSpec> BuildPipeline(
    const LogicalPlan& plan,
    const std::vector<storage::SeriesSnapshot>& inputs,
    const PipelineOptions& options);

/// Convenience wrapper: resolves snapshots from `store` and compiles.
Result<PipelineSpec> BuildPipeline(const LogicalPlan& plan,
                                   const storage::SeriesStore& store,
                                   const PipelineOptions& options);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_PIPE_BUILDER_H_
