#ifndef ETSQP_EXEC_COST_MODEL_H_
#define ETSQP_EXEC_COST_MODEL_H_

namespace etsqp::exec {

/// Instruction-cost constants of the Algorithm 1 cost model (Proposition 1 /
/// Theorem 2), in abstract CPU-clock units. Defaults follow the instruction
/// latencies the paper assumes (simple ops ~1, shuffle+or unpack ~2,
/// 3-step permute prefix ~12, cache-resident memory access ~4).
struct CostConstants {
  double t_load = 4.0;
  double t_shuffle = 1.0;
  double t_unpack = 2.0;  // shuffle + or (Line 8)
  double t_and = 1.0;
  double t_shift = 1.0;
  double t_add = 1.0;
  double t_prefix = 12.0;   // Line 13 (3 x (permute + add) + extract)
  double t_vis_mem = 4.0;   // scalar memory visit (t_visMem), cache-hit
  double t_op = 1.0;        // scalar simple op
  double t_reg_save = 1.0;
  int simd_bits = 256;
};

/// Proposition 1: average decode time per data point for a given number of
/// unpacked vectors n_v (packing width w, unpacked width w').
double AverageDecodeTime(int width, int unpacked_width, int n_v,
                         const CostConstants& c);

/// Proposition 1: the optimal (real-valued) n_v, before clamping to the
/// feasible layout set.
double OptimalNvReal(int width, int unpacked_width, const CostConstants& c);

/// The n_v actually used by the kernels (feasible-set clamp); mirrors
/// simd::DefaultNumVectors.
int OptimalNv(int width);

/// Theorem 2: estimated acceleration ratio T_serial / T_parallel for
/// `threads` cores, packing width w, unpacked width w'.
double EstimatedSpeedup(int width, int unpacked_width, int threads,
                        const CostConstants& c);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_COST_MODEL_H_
