#ifndef ETSQP_EXEC_COLUMN_DECODER_H_
#define ETSQP_EXEC_COLUMN_DECODER_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::exec {

/// Which decoding pipeline implementation to use — the evaluation's
/// baselines (Section VII-A).
enum class DecodeStrategy {
  kEtsqp,      // Algorithm 1: transposed-layout SIMD unpack + Delta recovery
  kSerial,     // value-at-a-time scalar pipeline
  kSboost,     // natural-order SIMD unpack + log-step prefix sum
  kFastLanes,  // FLMM1024 layout decode (requires kFastLanes encoding)
};

const char* DecodeStrategyName(DecodeStrategy s);

/// A decoded column range. The narrow form keeps values as 32-bit offsets
/// from `base` — the in-register representation the vectorized operators
/// (filters, aggregations) consume; wide columns hold materialized int64.
struct DecodedColumn {
  bool narrow = true;
  int64_t base = 0;
  std::vector<int32_t> offsets;
  std::vector<int64_t> values64;

  size_t size() const {
    return narrow ? offsets.size() : values64.size();
  }
  int64_t Get(size_t i) const {
    return narrow ? base + offsets[i] : values64[i];
  }
  /// Materializes into `out[size()]` regardless of form.
  void Materialize(int64_t* out) const;
};

/// Decodes a full encoded column with the given strategy. `n_v` selects the
/// transposed-layout vector count for kEtsqp (0 = Proposition 1 default).
/// The buffer must have >= 32 bytes of readable slack (AlignedBuffer).
///
/// `stages` (optional) records decode-stage timings: bit-unpacking —
/// including Algorithm 1's fused unpack+delta kernels — under kUnpack, and
/// the separate delta/RLE flatten passes of non-fused paths under kDelta.
Status DecodeColumn(const uint8_t* data, size_t size,
                    enc::ColumnEncoding encoding, uint32_t count,
                    DecodeStrategy strategy, int n_v, DecodedColumn* out,
                    metrics::StageBreakdown* stages = nullptr);

/// Decodes only blocks overlapping value positions [begin, end) — used by
/// page slices. Positions outside [begin,end) in `out` are unspecified;
/// `out` is sized `end - begin` and holds positions begin..end-1.
///
/// `ordered` false permits the ETSQP strategy to emit offsets in the
/// transposed chunk order (no scatter pass) — valid for order-insensitive
/// consumers (SUM/AVG/MIN/MAX/COUNT and value-range masks), which is how the
/// pipeline shares the SIMD layout between decoders and operators.
Status DecodeColumnRange(const uint8_t* data, size_t size,
                         enc::ColumnEncoding encoding, uint32_t count,
                         DecodeStrategy strategy, int n_v, size_t begin,
                         size_t end, DecodedColumn* out, bool ordered = true,
                         metrics::StageBreakdown* stages = nullptr);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_COLUMN_DECODER_H_
