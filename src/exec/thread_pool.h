#ifndef ETSQP_EXEC_THREAD_POOL_H_
#define ETSQP_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"

namespace etsqp::exec {

class TaskGroup;

/// Process-wide persistent worker pool (paper Section III-C discipline:
/// decode kernels hit memory/issue limits only when orchestration overhead
/// is off the critical path). Replaces the retired fork-join scheduler that
/// spawned and joined fresh std::threads several times per query.
///
/// Structure:
///  - One work-stealing deque per worker. A worker pushes and pops at the
///    back of its own deque (LIFO: cache-warm nested work first) and steals
///    from the front of a victim's deque (FIFO: oldest, largest-granularity
///    work). External submitters distribute round-robin across deques.
///  - Lazy spin-up: constructing the pool (or the process-wide Global()
///    instance) starts no threads; workers launch on first Submit, up to the
///    reserved target (default: hardware concurrency).
///  - TaskGroup is the blocking-wait handle: the waiter *helps* — it drains
///    pool tasks while its group is outstanding — so nested submission
///    (a job submitting jobs and waiting) composes without deadlock even on
///    a single-worker pool.
///  - A task that throws has its exception captured into its TaskGroup and
///    rethrown from Wait() on the caller thread (the retired fork-join
///    scheduler previously hit std::terminate).
///  - Counters (tasks executed, steals, parks, parked nanoseconds) feed
///    EXPLAIN ANALYZE's pool line; see metrics::PoolStats.
///
/// Thread safety: every member is safe to call concurrently. Shutdown()
/// drains queued tasks, joins the workers, and leaves the pool ready to
/// lazily respawn on the next Submit (deterministic shutdown/re-init).
class ThreadPool {
 public:
  /// The shared process-wide pool all queries run on.
  static ThreadPool& Global();

  /// `target_workers` <= 0 means hardware concurrency. No threads start
  /// until the first Submit.
  explicit ThreadPool(int target_workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grows the spin-up target to at least `workers` (never shrinks, capped
  /// at kMaxWorkers). Existing workers keep running; new ones launch on the
  /// next Submit.
  void Reserve(int workers);

  /// Current spin-up target.
  int target_workers() const;
  /// Workers currently running (0 before first Submit / after Shutdown).
  int workers_running() const;

  /// Total std::threads this pool ever launched — the pool-reuse assertion
  /// hook: executing queries on a warm pool must not move this counter.
  uint64_t threads_started() const;

  /// Cumulative pool counters since construction.
  metrics::PoolStats stats() const;

  /// Drains queued tasks, joins all workers. The pool restarts lazily on
  /// the next Submit. Safe to call repeatedly and concurrently with
  /// in-flight TaskGroup waits (waiters help drain, then observe
  /// completion).
  void Shutdown();

  static constexpr int kMaxWorkers = 64;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// One worker's deque. A plain mutex per deque: push/pop/steal critical
  /// sections are a few pointer moves, and the per-worker split keeps them
  /// uncontended in the common case (lock-free Chase-Lev is not worth the
  /// TSan-auditing surface at these task granularities).
  struct WorkerSlot {
    std::mutex mu;
    std::deque<Task> q;
  };

  /// Enqueues a group task and wakes a worker, starting workers lazily.
  void Submit(Task task);
  /// Pops from the calling worker's deque or steals; used by workers and by
  /// helping TaskGroup waiters. Returns false when every deque is empty.
  bool TryAcquire(Task* out, int home_slot);
  void RunTask(Task&& task);
  void WorkerLoop(int slot);
  void StartWorkersLocked();

  mutable std::mutex mu_;          // guards targets, worker vector, lifecycle
  std::condition_variable park_cv_;
  std::unique_ptr<WorkerSlot> slots_[kMaxWorkers];
  std::deque<std::thread> threads_;
  int target_ = 0;
  bool stop_ = false;
  std::atomic<int> running_{0};
  std::atomic<uint64_t> queued_{0};  // tasks enqueued, not yet acquired
  std::atomic<uint64_t> rr_{0};      // round-robin cursor for external pushes
  std::atomic<int> num_slots_{0};    // published slots; entries never move

  std::atomic<uint64_t> threads_started_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> park_nanos_{0};

  static thread_local int tls_slot_;  // this thread's home slot, -1 outside
};

/// A batch of tasks submitted to a ThreadPool and waited on as a unit — the
/// blocking-wait handle every pipeline run uses (via RunPipelineJobs).
///
///   TaskGroup group;                       // uses ThreadPool::Global()
///   for (...) group.Submit([&] { ... });
///   group.Wait();  // helps run tasks; rethrows the first captured throw
///
/// Wait() rethrows the first exception thrown by any task of the group (the
/// remaining tasks still run to completion so shared captures stay alive).
/// The destructor waits but swallows exceptions; call Wait() to observe
/// them.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = &ThreadPool::Global());
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task completed, helping the pool run
  /// tasks (its own first, by LIFO locality) while it waits. Rethrows the
  /// first captured task exception. The group is reusable after Wait().
  void Wait();

  /// Tasks of this group executed so far (any thread).
  uint64_t tasks_run() const { return tasks_run_.load(std::memory_order_relaxed); }

 private:
  friend class ThreadPool;

  void OnTaskDone(std::exception_ptr error);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pending_ = 0;
  std::exception_ptr first_error_;
  std::atomic<uint64_t> tasks_run_{0};
};

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_THREAD_POOL_H_
