#include "exec/fusion.h"

#include <algorithm>
#include <limits>

#include "simd/agg_simd.h"
#include "simd/unpack.h"

namespace etsqp::exec {

namespace {

constexpr __int128 kInt64Max = std::numeric_limits<int64_t>::max();
constexpr __int128 kInt64Min = std::numeric_limits<int64_t>::min();

bool FitsInt64(__int128 v) { return v >= kInt64Min && v <= kInt64Max; }

/// Sum of k over [k1, k2].
inline __int128 SumK(int64_t k1, int64_t k2) {
  if (k1 > k2) return 0;
  return (static_cast<__int128>(k1) + k2) * (k2 - k1 + 1) / 2;
}

/// Sum of k^2 over [k1, k2].
inline __int128 SumK2(int64_t k1, int64_t k2) {
  if (k1 > k2) return 0;
  auto f = [](__int128 m) { return m * (m + 1) * (2 * m + 1) / 6; };
  return f(k2) - f(k1 - 1);
}

}  // namespace

Result<Ts2DiffFusedReader> Ts2DiffFusedReader::Open(const uint8_t* data,
                                                    size_t size) {
  Result<enc::Ts2DiffColumn> parsed = enc::Ts2DiffColumn::Parse(data, size);
  if (!parsed.ok()) return parsed.status();
  Ts2DiffFusedReader reader;
  reader.col_ = std::move(parsed).value();
  reader.residuals_.resize(reader.col_.blocks().size());
  reader.unpacked_.assign(reader.col_.blocks().size(), false);
  return reader;
}

Status Ts2DiffFusedReader::EnsureUnpacked(size_t block_index) {
  if (unpacked_[block_index]) return Status::Ok();
  const enc::Ts2DiffBlock& b = col_.blocks()[block_index];
  if (b.width > 31) {
    return Status::NotSupported("fused sum: residual width > 31");
  }
  std::vector<int32_t>& res = residuals_[block_index];
  res.resize(b.num_deltas);
  simd::UnpackBE32(b.packed, b.packed_bytes, b.num_deltas, b.width,
                   reinterpret_cast<uint32_t*>(res.data()));
  unpacked_[block_index] = true;
  return Status::Ok();
}

Status Ts2DiffFusedReader::SumRange(size_t begin, size_t end, int64_t* out) {
  end = std::min<size_t>(end, col_.count());
  __int128 total = 0;
  for (size_t bi = 0; bi < col_.blocks().size(); ++bi) {
    const enc::Ts2DiffBlock& b = col_.blocks()[bi];
    size_t bs = b.start_index;
    size_t be = bs + b.num_values();
    if (be <= begin || bs >= end) continue;
    ETSQP_RETURN_IF_ERROR(EnsureUnpacked(bi));
    const std::vector<int32_t>& res = residuals_[bi];
    size_t la = std::max(bs, begin) - bs;
    size_t lb = std::min(be, end) - bs;
    int64_t m = static_cast<int64_t>(lb - la);

    // X_la = first + la * base + sum residuals[0..la) — plain SIMD sum, no
    // per-element dependency.
    __int128 x_la = b.first_value +
                    static_cast<__int128>(b.min_delta) * la +
                    simd::SumInt32(res.data(), la);
    // Block slice sum = m*X_la + base*m(m-1)/2 + sum (m-1-k) residual[la+k].
    __int128 block_sum = x_la * m +
                         static_cast<__int128>(b.min_delta) * m * (m - 1) / 2 +
                         simd::WeightedRampSumInt32(res.data() + la,
                                                    lb - la - 1);
    total += block_sum;
    if (!FitsInt64(total)) return Status::Overflow("fused SUM overflow");
  }
  *out = static_cast<int64_t>(total);
  return Status::Ok();
}

Status Ts2DiffFusedReader::ValueAt(size_t pos, int64_t* out) {
  if (pos >= col_.count()) return Status::OutOfRange("pos");
  for (size_t bi = 0; bi < col_.blocks().size(); ++bi) {
    const enc::Ts2DiffBlock& b = col_.blocks()[bi];
    size_t bs = b.start_index;
    size_t be = bs + b.num_values();
    if (pos < bs || pos >= be) continue;
    ETSQP_RETURN_IF_ERROR(EnsureUnpacked(bi));
    size_t la = pos - bs;
    const std::vector<int32_t>& res = residuals_[bi];
    *out = b.first_value + static_cast<int64_t>(b.min_delta) * la +
           simd::SumInt32(res.data(), la);
    return Status::Ok();
  }
  return Status::Internal("block lookup");
}

Status FusedAggDeltaRle(const enc::DeltaRleColumn& col, size_t begin,
                        size_t end, bool need_sq, DeltaRleAggregates* out) {
  end = std::min<size_t>(end, col.count());
  *out = DeltaRleAggregates{};
  if (col.count() == 0 || begin >= end) return Status::Ok();

  __int128 sum = 0;
  __int128 sum_sq = 0;
  uint64_t count = 0;

  // Position 0 is the stored first value.
  int64_t a = col.first_value();
  if (begin == 0) {
    sum += a;
    if (need_sq) sum_sq += static_cast<__int128>(a) * a;
    ++count;
  }

  std::vector<enc::DeltaRun> pairs;
  ETSQP_RETURN_IF_ERROR(col.DecodePairs(&pairs));
  size_t p = 0;  // global position of `a`
  for (const enc::DeltaRun& run : pairs) {
    if (p + 1 >= end) break;
    int64_t d = run.delta;
    int64_t r = run.run;
    // Run covers positions p+1 .. p+r with value a + k*d at position p+k.
    int64_t k1 = std::max<int64_t>(1, static_cast<int64_t>(begin) -
                                          static_cast<int64_t>(p));
    int64_t k2 = std::min<int64_t>(r, static_cast<int64_t>(end) - 1 -
                                          static_cast<int64_t>(p));
    if (k1 <= k2) {
      __int128 cnt = k2 - k1 + 1;
      __int128 s1 = SumK(k1, k2);
      sum += static_cast<__int128>(a) * cnt + static_cast<__int128>(d) * s1;
      if (need_sq) {
        __int128 s2 = SumK2(k1, k2);
        sum_sq += static_cast<__int128>(a) * a * cnt +
                  2 * static_cast<__int128>(a) * d * s1 +
                  static_cast<__int128>(d) * d * s2;
      }
      count += static_cast<uint64_t>(cnt);
      if (!FitsInt64(sum)) return Status::Overflow("fused SUM overflow");
    }
    a += d * r;
    p += static_cast<size_t>(r);
  }
  out->sum = static_cast<int64_t>(sum);
  out->sum_sq = sum_sq;
  out->count = count;
  return Status::Ok();
}

Status FusedCrossDeltaRle(const enc::DeltaRleColumn& ca,
                          const enc::DeltaRleColumn& cb, size_t begin,
                          size_t end, __int128* out) {
  size_t n = std::min<size_t>(ca.count(), cb.count());
  end = std::min(end, n);
  __int128 cross = 0;
  if (begin >= end) {
    *out = 0;
    return Status::Ok();
  }

  int64_t a = ca.first_value();
  int64_t b = cb.first_value();
  if (begin == 0) cross += static_cast<__int128>(a) * b;

  std::vector<enc::DeltaRun> pa, pb;
  ETSQP_RETURN_IF_ERROR(ca.DecodePairs(&pa));
  ETSQP_RETURN_IF_ERROR(cb.DecodePairs(&pb));

  // Walk both pair lists; `valid = min(RLE1, RLE2)` remaining steps share
  // constant deltas on both sides (the Section IV polynomial).
  size_t ia = 0, ib = 0;
  uint32_t ra = ia < pa.size() ? pa[ia].run : 0;  // remaining in current run
  uint32_t rb = ib < pb.size() ? pb[ib].run : 0;
  size_t p = 0;  // global position of (a, b)
  while (ia < pa.size() && ib < pb.size() && p + 1 < end) {
    int64_t da = pa[ia].delta;
    int64_t db = pb[ib].delta;
    uint32_t valid = std::min(ra, rb);
    // Positions p+1 .. p+valid: A = a + k*da, B = b + k*db.
    int64_t k1 = std::max<int64_t>(1, static_cast<int64_t>(begin) -
                                          static_cast<int64_t>(p));
    int64_t k2 = std::min<int64_t>(valid, static_cast<int64_t>(end) - 1 -
                                              static_cast<int64_t>(p));
    if (k1 <= k2) {
      __int128 cnt = k2 - k1 + 1;
      __int128 s1 = SumK(k1, k2);
      __int128 s2 = SumK2(k1, k2);
      cross += static_cast<__int128>(a) * b * cnt +
               static_cast<__int128>(a) * db * s1 +
               static_cast<__int128>(b) * da * s1 +
               static_cast<__int128>(da) * db * s2;
    }
    a += da * valid;
    b += db * valid;
    p += valid;
    ra -= valid;
    rb -= valid;
    if (ra == 0 && ++ia < pa.size()) ra = pa[ia].run;
    if (rb == 0 && ++ib < pb.size()) rb = pb[ib].run;
  }
  *out = cross;
  return Status::Ok();
}

}  // namespace etsqp::exec
