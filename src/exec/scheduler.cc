#include "exec/scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/bit_util.h"

namespace etsqp::exec {

void RunJobs(size_t num_jobs, int threads,
             const std::function<void(size_t)>& fn) {
  if (num_jobs == 0) return;
  size_t workers = std::min<size_t>(std::max(threads, 1), num_jobs);
  if (workers <= 1) {
    for (size_t i = 0; i < num_jobs; ++i) fn(i);
    return;
  }
  std::atomic<size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_jobs) break;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

std::vector<PageSlice> PlanSlices(const std::vector<size_t>& page_counts,
                                  int threads, size_t block_size) {
  std::vector<PageSlice> slices;
  size_t num_pages = page_counts.size();
  if (num_pages == 0) return slices;
  size_t cores = static_cast<size_t>(std::max(threads, 1));
  if (num_pages >= cores) {
    // Enough pages: one job per page; workers drain the queue.
    for (size_t p = 0; p < num_pages; ++p) {
      slices.push_back(PageSlice{p, 0, page_counts[p]});
    }
    return slices;
  }
  // Fewer pages than cores: split each page into at most
  // ceil(cores / num_pages) block-aligned slices (Section III-C: "each page
  // will have at most ceil(#Pages / p_c) slices" — per-page fan-out keeps
  // the total near the core count without over-slicing).
  size_t per_page = CeilDiv(cores, num_pages);
  if (block_size == 0) block_size = 1024;
  for (size_t p = 0; p < num_pages; ++p) {
    size_t n = page_counts[p];
    size_t blocks = std::max<size_t>(1, CeilDiv(n, block_size));
    size_t parts = std::min(per_page, blocks);
    size_t blocks_per_part = CeilDiv(blocks, parts);
    for (size_t s = 0; s < parts; ++s) {
      size_t begin = std::min(n, s * blocks_per_part * block_size);
      size_t end = std::min(n, (s + 1) * blocks_per_part * block_size);
      if (begin >= end) break;
      slices.push_back(PageSlice{p, begin, end});
    }
  }
  return slices;
}

}  // namespace etsqp::exec
