#include "exec/scheduler.h"

#include <algorithm>

#include "common/bit_util.h"

namespace etsqp::exec {

std::vector<PageSlice> PlanSlices(const std::vector<size_t>& page_counts,
                                  int threads, size_t block_size) {
  std::vector<PageSlice> slices;
  size_t num_pages = page_counts.size();
  if (num_pages == 0) return slices;
  size_t cores = static_cast<size_t>(std::max(threads, 1));
  if (num_pages >= cores) {
    // Enough pages: one job per page; workers drain the queue.
    for (size_t p = 0; p < num_pages; ++p) {
      slices.push_back(PageSlice{p, 0, page_counts[p]});
    }
    return slices;
  }
  // Fewer pages than cores: split each page into at most
  // ceil(p_c / #Pages) block-aligned slices, p_c the core count
  // (Section III-C) — per-page fan-out keeps the total near the core count
  // without over-slicing. (An earlier revision of this comment misquoted
  // the bound as ceil(#Pages / p_c), the reciprocal of what both the paper
  // and this implementation do.)
  size_t per_page = CeilDiv(cores, num_pages);
  if (block_size == 0) block_size = 1024;
  for (size_t p = 0; p < num_pages; ++p) {
    size_t n = page_counts[p];
    size_t blocks = std::max<size_t>(1, CeilDiv(n, block_size));
    size_t parts = std::min(per_page, blocks);
    size_t blocks_per_part = CeilDiv(blocks, parts);
    for (size_t s = 0; s < parts; ++s) {
      size_t begin = std::min(n, s * blocks_per_part * block_size);
      size_t end = std::min(n, (s + 1) * blocks_per_part * block_size);
      if (begin >= end) break;
      slices.push_back(PageSlice{p, begin, end});
    }
  }
  return slices;
}

}  // namespace etsqp::exec
