#include "exec/cost_model.h"

#include <cmath>

#include "simd/transposed_unpack.h"

namespace etsqp::exec {

double AverageDecodeTime(int width, int unpacked_width, int n_v,
                         const CostConstants& c) {
  // T_AVG = [ (t_load + t_shuffle) n_ld + t_unpack n_v n_ld
  //           + (t_and + t_shift) n_v + (2 n_v - 1) t_add + t_prefix ]
  //         / (n_v * w_SIMD / w')
  // with n_ld = n_v * w / w' loads per round (use-all-loaded-data layouts).
  double n_ld = static_cast<double>(n_v) * width / unpacked_width;
  double decoded = static_cast<double>(n_v) * c.simd_bits / unpacked_width;
  double cost = (c.t_load + c.t_shuffle) * n_ld + c.t_unpack * n_v * n_ld +
                (c.t_and + c.t_shift) * n_v + (2.0 * n_v - 1.0) * c.t_add +
                c.t_prefix;
  return cost / decoded;
}

double OptimalNvReal(int width, int unpacked_width, const CostConstants& c) {
  return std::sqrt(static_cast<double>(unpacked_width) / width *
                   (c.t_prefix - c.t_add) / c.t_unpack);
}

int OptimalNv(int width) { return simd::DefaultNumVectors(width); }

double EstimatedSpeedup(int width, int unpacked_width, int threads,
                        const CostConstants& c) {
  // Serial: per value, load bits + shift + mask + accumulate + save.
  double t_serial = 2.0 * c.t_vis_mem + c.t_shift + c.t_and + c.t_op +
                    c.t_reg_save;
  // Parallel: Proposition 1 optimum divided over threads.
  int n_v = OptimalNv(width);
  double t_parallel = AverageDecodeTime(width, unpacked_width, n_v, c) /
                      threads;
  return t_serial / t_parallel;
}

}  // namespace etsqp::exec
