#include "exec/expr.h"

#include <cinttypes>
#include <cstdio>

namespace etsqp::exec {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kVariance:
      return "VAR";
  }
  return "?";
}

namespace {

void AppendField(std::string* out, const char* name, uint64_t value,
                 bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64, *first ? "" : ", ",
                name, value);
  *first = false;
  *out += buf;
}

}  // namespace

std::string ExecStats::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "pages_total", pages_total, &first);
  AppendField(&out, "pages_pruned", pages_pruned, &first);
  AppendField(&out, "blocks_pruned", blocks_pruned, &first);
  AppendField(&out, "tuples_in_pages", tuples_in_pages, &first);
  AppendField(&out, "tuples_scanned", tuples_scanned, &first);
  AppendField(&out, "bytes_loaded", bytes_loaded, &first);
  AppendField(&out, "result_tuples", result_tuples, &first);
  AppendField(&out, "tail_tuples", tail_tuples, &first);
  AppendField(&out, "tail_tuples_scanned", tail_tuples_scanned, &first);
  AppendField(&out, "pages_pruned_deleted", pages_pruned_deleted, &first);
  AppendField(&out, "deleted_tuples_masked", deleted_tuples_masked, &first);
  AppendField(&out, "index_probe_nanos", index_probe_nanos, &first);
  AppendField(&out, "series_pruned", series_pruned, &first);
  AppendField(&out, "pages_pruned_index", pages_pruned_index, &first);
  AppendField(&out, "wall_nanos", wall_nanos, &first);
  AppendField(&out, "threads", static_cast<uint64_t>(threads > 0 ? threads : 0),
              &first);
  AppendField(&out, "pool_workers",
              static_cast<uint64_t>(pool_workers > 0 ? pool_workers : 0),
              &first);
  AppendField(&out, "cache_hits", cache_hits, &first);
  AppendField(&out, "cache_misses", cache_misses, &first);
  AppendField(&out, "cache_evictions", cache_evictions, &first);
  AppendField(&out, "admission_wait_nanos", admission_wait_nanos, &first);
  AppendField(&out, "admission_queue_depth", admission_queue_depth, &first);
  out += ", \"pool\": {";
  bool pfirst = true;
  AppendField(&out, "tasks", pool.tasks, &pfirst);
  AppendField(&out, "steals", pool.steals, &pfirst);
  AppendField(&out, "parks", pool.parks, &pfirst);
  AppendField(&out, "park_nanos", pool.park_nanos, &pfirst);
  out += "}";
  if (!scheduler.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"mispredictions\": %" PRIu64,
                  mispredictions);
    out += buf;
    out += ", \"scheduler\": {";
    bool cfirst = true;
    for (const auto& [key, s] : scheduler) {
      if (!cfirst) out += ", ";
      cfirst = false;
      out += '"';
      out += key;
      out += "\": {\"entry\": \"";
      out += s.entry;
      out += "\", \"params\": \"";
      out += s.params;
      out += "\", \"calibrated\": ";
      out += s.calibrated ? "true" : "false";
      bool sfirst = false;
      AppendField(&out, "jobs", s.jobs, &sfirst);
      AppendField(&out, "tuples", s.tuples, &sfirst);
      AppendField(&out, "predicted_nanos",
                  static_cast<uint64_t>(s.predicted_nanos), &sfirst);
      AppendField(&out, "measured_nanos", s.measured_nanos, &sfirst);
      AppendField(&out, "mispredictions", s.mispredictions, &sfirst);
      out += "}";
    }
    out += "}";
  }
  out += ", \"stages\": {";
  for (int i = 0; i < metrics::kNumStages; ++i) {
    const metrics::StageStats& s = stages.stages[i];
    if (i > 0) out += ", ";
    out += '"';
    out += metrics::StageName(static_cast<metrics::Stage>(i));
    out += "\": {";
    bool sfirst = true;
    AppendField(&out, "nanos", s.nanos, &sfirst);
    AppendField(&out, "calls", s.calls, &sfirst);
    AppendField(&out, "tuples", s.tuples, &sfirst);
    AppendField(&out, "bytes", s.bytes, &sfirst);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace etsqp::exec
