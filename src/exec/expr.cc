#include "exec/expr.h"

namespace etsqp::exec {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kVariance:
      return "VAR";
  }
  return "?";
}

}  // namespace etsqp::exec
