#ifndef ETSQP_EXEC_PIPELINE_H_
#define ETSQP_EXEC_PIPELINE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>

#include "common/status.h"
#include "exec/column_decoder.h"
#include "exec/expr.h"
#include "storage/page.h"

namespace etsqp::exec {

class CostCalibration;  // exec/scheduler_registry.h

/// Per-query execution switches: the evaluation's system variants map to
/// these (ETSQP = {kEtsqp, prune off, fusion on}; ETSQP-prune adds prune;
/// Serial = kSerial; SBoost = kSboost; FastLanes = kFastLanes over
/// FLMM1024-encoded pages).
///
/// Construct with the named baseline constructors and refine with the
/// fluent setters:
///   PipelineOptions::Etsqp(4).WithPrune(true).WithStats(true)
struct PipelineOptions {
  DecodeStrategy strategy = DecodeStrategy::kEtsqp;
  bool prune = false;
  bool fusion = true;
  int n_v = 0;  // transposed-layout vector count; 0 = Proposition 1 default
  int threads = 1;
  /// Collect the per-stage ExecStats breakdown (timings, tuples, bytes).
  /// Off by default: instrumented code then skips every clock read.
  bool collect_stats = false;
  /// Plan with the SchedulerRegistry: Pipe classifies every page and asks
  /// the registry for the cheapest feasible SchedulerEntry per page class
  /// instead of running `strategy` uniformly. On for the Etsqp/EtsqpPrune
  /// baselines; WithStrategy() turns it off (an explicit strategy is a
  /// pin, not a preference).
  bool use_registry = false;
  /// Measured per-(entry, page-class) costs for registry proposals; null =
  /// the static Proposition 1 CostConstants fallback.
  std::shared_ptr<const CostCalibration> calibration;
  /// Probe the pruning index (storage/pruning_index.h) before building
  /// jobs: a SIMD interval scan over the snapshot's leaf blocks replaces
  /// the linear page-header walk, and series whose envelope misses the
  /// filters are skipped without touching their pages at all. On by
  /// default — turning it off forces the linear header walk (the
  /// differential-testing baseline; results must be byte-identical).
  bool prune_index = true;

  /// Canonical option sets for the evaluation baselines (Section VII-A).
  static PipelineOptions Etsqp(int threads = 1);
  static PipelineOptions EtsqpPrune(int threads = 1);
  static PipelineOptions Serial();
  static PipelineOptions Sboost(int threads = 1);
  static PipelineOptions FastLanes(int threads = 1);

  PipelineOptions& WithStrategy(DecodeStrategy s) {
    strategy = s;
    use_registry = false;
    return *this;
  }
  PipelineOptions& WithRegistry(bool on) {
    use_registry = on;
    return *this;
  }
  PipelineOptions& WithCalibration(
      std::shared_ptr<const CostCalibration> cal) {
    calibration = std::move(cal);
    return *this;
  }
  PipelineOptions& WithPrune(bool on) {
    prune = on;
    return *this;
  }
  PipelineOptions& WithPruneIndex(bool on) {
    prune_index = on;
    return *this;
  }
  PipelineOptions& WithFusion(bool on) {
    fusion = on;
    return *this;
  }
  PipelineOptions& WithVectors(int vectors) {
    n_v = vectors;
    return *this;
  }
  PipelineOptions& WithThreads(int n) {
    threads = n;
    return *this;
  }
  PipelineOptions& WithStats(bool on) {
    collect_stats = on;
    return *this;
  }
};

/// Algebraic aggregate accumulator: (sum, sum_sq, count, min, max) covers
/// SUM/AVG/COUNT/MIN/MAX/VAR. Sums are tracked in 128-bit and checked
/// against int64 on finalize (Section VI-C overflow behaviour).
struct AggAccum {
  __int128 sum = 0;
  __int128 sum_sq = 0;
  uint64_t count = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void AddValue(int64_t v, bool need_sq) {
    sum += v;
    if (need_sq) sum_sq += static_cast<__int128>(v) * v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void Merge(const AggAccum& o) {
    sum += o.sum;
    sum_sq += o.sum_sq;
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  /// Final value of `func`; kOverflow when the exact sum exceeds int64.
  Status Finalize(AggFunc func, double* out) const;
};

/// Aggregates positions [begin, end) of `page` whose time lies in `trange`
/// and value in `vrange` — the Q1/Q3 pipeline over one page slice.
Status AggregateSlice(const storage::Page& page, size_t begin, size_t end,
                      const TimeRange& trange, const ValueRange& vrange,
                      AggFunc func, const PipelineOptions& opt,
                      AggAccum* accum, QueryStats* stats);

/// Sliding-window aggregation over one page slice: results merge into
/// `windows` keyed by window index k (window = [t_min + k dT, +dT)).
Status AggregateSliceWindows(const storage::Page& page, size_t begin,
                             size_t end, const SlidingWindow& sw,
                             AggFunc func, const PipelineOptions& opt,
                             std::map<int64_t, AggAccum>* windows,
                             QueryStats* stats);

/// Float-series accumulator (double sums; Kahan-free: page-sized partials
/// merged in one pass keep error negligible for the supported scales).
struct FloatAggAccum {
  double sum = 0;
  double sum_sq = 0;
  uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void AddValue(double v, bool need_sq) {
    sum += v;
    if (need_sq) sum_sq += v * v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void Merge(const FloatAggAccum& o) {
    sum += o.sum;
    sum_sq += o.sum_sq;
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  Status Finalize(AggFunc func, double* out) const;
};

/// Aggregation over a float-valued page slice (kGorillaValue / kChimpValue /
/// kElfValue value columns). The time column pipeline is shared with the
/// integer path; the value filter compares doubles against the int64 range.
Status AggregateFloatSlice(const storage::Page& page, size_t begin,
                           size_t end, const TimeRange& trange,
                           const ValueRange& vrange, AggFunc func,
                           const PipelineOptions& opt, FloatAggAccum* accum,
                           QueryStats* stats);

/// Sliding-window variant for float-valued pages.
Status AggregateFloatSliceWindows(const storage::Page& page, size_t begin,
                                  size_t end, const SlidingWindow& sw,
                                  AggFunc func, const PipelineOptions& opt,
                                  std::map<int64_t, FloatAggAccum>* windows,
                                  QueryStats* stats);

/// Decodes the (time, value) tuples of positions [begin, end) that satisfy
/// the filters — the SELECT * pipeline; also the building block for
/// union/join/projection.
Status MaterializeSlice(const storage::Page& page, size_t begin, size_t end,
                        const TimeRange& trange, const ValueRange& vrange,
                        const PipelineOptions& opt,
                        std::vector<int64_t>* times,
                        std::vector<int64_t>* values, QueryStats* stats);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_PIPELINE_H_
