#ifndef ETSQP_EXEC_PRUNING_H_
#define ETSQP_EXEC_PRUNING_H_

#include <cstdint>
#include <utility>

#include "common/status.h"
#include "encoding/delta_rle.h"
#include "encoding/ts2diff.h"
#include "exec/column_decoder.h"
#include "exec/expr.h"

namespace etsqp::exec {

/// Pruning rules from paper Section V: header statistics bound what the
/// undecoded remainder of a sequence can contain, letting the pipeline skip
/// loading/decoding. Bounds derive from packing widths: every delta lies in
/// [minBase, minBase + 2^w - 1] (Propositions 4-5), every run length is at
/// most R_M. All rules are conservative: they may only fail to prune, never
/// skip qualifying tuples.

/// Locates the contiguous position range [first, last) of timestamps within
/// `range` in a sorted TS2DIFF time column.
///
/// With `prune` set, applies Proposition 4: blocks whose width-derived time
/// bounds lie entirely below range.lo are skipped without decoding; the scan
/// stops at the first block starting above range.hi; blocks with a constant
/// interval (width == 0) use direct position arithmetic instead of decoding.
/// `blocks_pruned` (optional) counts skipped blocks.
Status TimeRangePositions(const uint8_t* data, size_t size, uint32_t count,
                          const TimeRange& range, DecodeStrategy strategy,
                          int n_v, bool prune, size_t* first, size_t* last,
                          uint64_t* blocks_pruned, uint64_t* tuples_scanned);

/// Proposition 5 block test for value filters: returns true when the block's
/// width-derived value bounds cannot intersect [lo, hi] — the whole block
/// decodes to out-of-range values and is skipped.
bool ValueBlockPrunable(const enc::Ts2DiffBlock& block, int64_t lo,
                        int64_t hi);

/// Proposition 4/5 bounds for a Delta-RLE column: conservative [min, max]
/// of all values, from the header statistics only.
void DeltaRleValueBounds(const enc::DeltaRleColumn& col, int64_t* lo,
                         int64_t* hi);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_PRUNING_H_
